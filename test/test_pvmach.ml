(* Tests for the target machine models, capabilities, MIR utilities and
   the cost model invariants the experiments lean on. *)

open Pvmach

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- capabilities ---------------- *)

let test_capability_strings () =
  List.iter
    (fun c ->
      match Capability.of_string (Capability.to_string c) with
      | Some c' -> check bool_t "roundtrip" true (Capability.equal c c')
      | None -> Alcotest.fail "capability string did not parse")
    [ Capability.Simd 16; Capability.Simd 8; Capability.Fpu;
      Capability.Narrow_alu; Capability.Dsp_mac ];
  check bool_t "bad string" true (Capability.of_string "simdX" = None);
  check bool_t "bad width" true (Capability.of_string "simd7" = None)

let test_capability_satisfies () =
  check bool_t "wider simd satisfies narrower" true
    (Capability.satisfies (Capability.Simd 16) (Capability.Simd 8));
  check bool_t "narrower does not satisfy wider" false
    (Capability.satisfies (Capability.Simd 8) (Capability.Simd 16));
  check bool_t "fpu satisfies fpu" true
    (Capability.satisfies Capability.Fpu Capability.Fpu);
  check bool_t "fpu does not satisfy simd" false
    (Capability.satisfies Capability.Fpu (Capability.Simd 8))

(* ---------------- machines ---------------- *)

let test_machine_lookup () =
  List.iter
    (fun (m : Machine.t) ->
      match Machine.find m.Machine.name with
      | Some m' -> check bool_t "find self" true (m == m')
      | None -> Alcotest.fail "machine not found by name")
    Machine.all;
  check bool_t "unknown machine" true (Machine.find "vax" = None)

let test_machine_simd_profile () =
  check int_t "x86ish simd width" 16 (Machine.simd_width Machine.x86ish);
  check int_t "sparcish no simd" 0 (Machine.simd_width Machine.sparcish);
  check bool_t "dspish has mac" true
    (Machine.has_cap Machine.dspish Capability.Dsp_mac);
  check bool_t "uchost lacks fpu" false
    (Machine.has_cap Machine.uchost Capability.Fpu);
  (* the Table-1 cast: exactly one SIMD machine *)
  check int_t "one SIMD target in table1" 1
    (List.length (List.filter Machine.has_simd Machine.table1_targets))

let test_machine_sanity () =
  List.iter
    (fun (m : Machine.t) ->
      check bool_t (m.Machine.name ^ " alu positive") true (m.Machine.alu_cost > 0);
      check bool_t (m.Machine.name ^ " regs positive") true (m.Machine.int_regs > 0);
      check bool_t (m.Machine.name ^ " div >= mul >= alu") true
        (m.Machine.div_cost >= m.Machine.mul_cost
        && m.Machine.mul_cost >= m.Machine.alu_cost);
      check bool_t (m.Machine.name ^ " arg regs sane") true
        (Machine.arg_regs m >= 1 && Machine.arg_regs m <= m.Machine.int_regs);
      if Machine.has_simd m then
        check bool_t (m.Machine.name ^ " simd needs vec regs") true
          (m.Machine.vec_regs > 0))
    Machine.all

(* ---------------- MIR utilities ---------------- *)

let test_mir_class_of_type () =
  check bool_t "int -> gpr" true (Mir.class_of_type Pvir.Types.i32 = Mir.Gpr);
  check bool_t "ptr -> gpr" true
    (Mir.class_of_type (Pvir.Types.ptr Pvir.Types.F32) = Mir.Gpr);
  check bool_t "float -> fpr" true (Mir.class_of_type Pvir.Types.f64 = Mir.Fpr);
  check bool_t "vector -> vec" true
    (Mir.class_of_type (Pvir.Types.vec Pvir.Types.F32 4) = Mir.Vec)

let test_mir_uses_defs () =
  let i =
    Mir.inst ~dst:(Mir.V 1) ~srcs:[ Mir.V 2; Mir.V 3 ]
      (Mir.Mbin Pvir.Instr.Add) Pvir.Types.i32
  in
  check bool_t "def" true (Mir.inst_def i = Some (Mir.V 1));
  check bool_t "uses" true (Mir.inst_uses i = [ Mir.V 2; Mir.V 3 ]);
  let t = Mir.Tcbr (Mir.V 4, 1, 2) in
  check bool_t "term uses" true (Mir.term_uses t = [ Mir.V 4 ]);
  check bool_t "successors" true (Mir.term_successors t = [ 1; 2 ]);
  check bool_t "same-target cbr" true
    (Mir.term_successors (Mir.Tcbr (Mir.V 0, 3, 3)) = [ 3 ])

let test_mir_fresh_vregs () =
  let mf =
    {
      Mir.mname = "t";
      mparams = [];
      marg_slots = [];
      mret = None;
      mblocks = [];
      frame_size = 0;
      vreg_ty = Hashtbl.create 4;
      next_vreg = 10;
      target = Machine.x86ish;
      mblock_index = None;
    }
  in
  let a = Mir.fresh_vreg mf Pvir.Types.i64 in
  let b = Mir.fresh_vreg mf Pvir.Types.f32 in
  check bool_t "distinct" true (a <> b);
  check bool_t "typed" true
    (Pvir.Types.equal (Mir.reg_type mf a) Pvir.Types.i64
    && Pvir.Types.equal (Mir.reg_type mf b) Pvir.Types.f32)

(* ---------------- cost model invariants ---------------- *)

let test_cost_scalar_positive () =
  (* every op class costs at least one cycle on every machine *)
  let ops =
    [
      Mir.inst (Mir.Mli (Pvir.Value.i32 0)) Pvir.Types.i32;
      Mir.inst Mir.Mmov Pvir.Types.i64;
      Mir.inst (Mir.Mbin Pvir.Instr.Add) Pvir.Types.i8;
      Mir.inst (Mir.Mbin Pvir.Instr.Div) Pvir.Types.i64;
      Mir.inst (Mir.Mbin Pvir.Instr.Mul) Pvir.Types.f32;
      Mir.inst (Mir.Mcmp Pvir.Instr.Slt) Pvir.Types.i32;
      Mir.inst (Mir.Mload 0) Pvir.Types.f64;
      Mir.inst (Mir.Mstore 0) Pvir.Types.i16;
      Mir.inst (Mir.Mframe_ld 0) Pvir.Types.i64;
      Mir.inst (Mir.Mcall "f") Pvir.Types.i32;
    ]
  in
  List.iter
    (fun (m : Machine.t) ->
      List.iter
        (fun i -> check bool_t (m.Machine.name ^ " positive") true (Cost.of_inst m i > 0))
        ops)
    Machine.all

let test_cost_simd_beats_lanes () =
  (* one 16-lane SIMD add is much cheaper than 16 scalar adds *)
  let m = Machine.x86ish in
  let vadd = Mir.inst (Mir.Mbin Pvir.Instr.Add) (Pvir.Types.vec Pvir.Types.I8 16) in
  let sadd = Mir.inst (Mir.Mbin Pvir.Instr.Add) Pvir.Types.i8 in
  check bool_t "simd wins" true (Cost.of_inst m vadd * 8 <= Cost.of_inst m sadd * 16)

let test_cost_mac_on_dsp () =
  (* the DSP's single-cycle MAC shows up as cheap float multiplies *)
  let fmul = Mir.inst (Mir.Mbin Pvir.Instr.Mul) Pvir.Types.f32 in
  check bool_t "dsp mac cheap" true
    (Cost.of_inst Machine.dspish fmul < Cost.of_inst Machine.sparcish fmul)

let test_cost_soft_float () =
  (* the microcontroller pays dearly for floats *)
  let fadd = Mir.inst (Mir.Mbin Pvir.Instr.Add) Pvir.Types.f64 in
  let iadd = Mir.inst (Mir.Mbin Pvir.Instr.Add) Pvir.Types.i32 in
  check bool_t "uchost soft float" true
    (Cost.of_inst Machine.uchost fadd >= 10 * Cost.of_inst Machine.uchost iadd)

let test_cost_reduce_log () =
  (* reductions cost O(log lanes), not O(lanes) *)
  let m = Machine.x86ish in
  let red n = Mir.inst (Mir.Mreduce Pvir.Instr.Radd) (Pvir.Types.vec Pvir.Types.I8 n) in
  let c4 = Cost.of_inst m (red 4) and c16 = Cost.of_inst m (red 16) in
  check bool_t "log growth" true (c16 < 4 * c4)

let test_static_estimate () =
  (* static estimate orders machines the same way the simulator does for
     straight-line code *)
  let mk target =
    {
      Mir.mname = "t";
      mparams = [];
      marg_slots = [];
      mret = None;
      mblocks =
        [
          {
            Mir.mlabel = 0;
            insts =
              [
                Mir.inst ~dst:(Mir.V 0) (Mir.Mli (Pvir.Value.f64 1.0)) Pvir.Types.f64;
                Mir.inst ~dst:(Mir.V 1) ~srcs:[ Mir.V 0; Mir.V 0 ]
                  (Mir.Mbin Pvir.Instr.Mul) Pvir.Types.f64;
              ];
            mterm = Mir.Tret None;
          };
        ];
      frame_size = 0;
      vreg_ty = Hashtbl.create 4;
      next_vreg = 2;
      target;
      mblock_index = None;
    }
  in
  let est m = Cost.static_estimate m (mk m) in
  check bool_t "uchost slowest at floats" true
    (est Machine.uchost > est Machine.x86ish)

let () =
  Alcotest.run "pvmach"
    [
      ( "capability",
        [
          Alcotest.test_case "strings" `Quick test_capability_strings;
          Alcotest.test_case "satisfies" `Quick test_capability_satisfies;
        ] );
      ( "machine",
        [
          Alcotest.test_case "lookup" `Quick test_machine_lookup;
          Alcotest.test_case "simd profile" `Quick test_machine_simd_profile;
          Alcotest.test_case "sanity" `Quick test_machine_sanity;
        ] );
      ( "mir",
        [
          Alcotest.test_case "class of type" `Quick test_mir_class_of_type;
          Alcotest.test_case "uses/defs" `Quick test_mir_uses_defs;
          Alcotest.test_case "fresh vregs" `Quick test_mir_fresh_vregs;
        ] );
      ( "cost",
        [
          Alcotest.test_case "positive" `Quick test_cost_scalar_positive;
          Alcotest.test_case "simd beats lanes" `Quick test_cost_simd_beats_lanes;
          Alcotest.test_case "dsp mac" `Quick test_cost_mac_on_dsp;
          Alcotest.test_case "soft float" `Quick test_cost_soft_float;
          Alcotest.test_case "reduce is log" `Quick test_cost_reduce_log;
          Alcotest.test_case "static estimate" `Quick test_static_estimate;
        ] );
    ]
