(* Telemetry subsystem tests: metrics registry semantics (including
   histogram bucket edges), span nesting/balance invariants, ledger
   accounting, Chrome trace_event export well-formedness, end-to-end
   reconciliation of the metrics registry against the work accountant and
   VM counters, and the "tracing off costs nothing observable" guard. *)

let check = Alcotest.check
let int_t = Alcotest.int
let int64_t = Alcotest.int64
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* ---------------- metrics ---------------- *)

let test_counters_gauges () =
  let m = Pvtrace.Metrics.create () in
  Pvtrace.Metrics.inc1 m "c";
  Pvtrace.Metrics.inci m "c" 4;
  Pvtrace.Metrics.inc m "c" 5L;
  check (Alcotest.option int64_t) "counter accumulates" (Some 10L)
    (Pvtrace.Metrics.value m "c");
  Pvtrace.Metrics.seti m "g" 7;
  Pvtrace.Metrics.set m "g" 3L;
  check (Alcotest.option int64_t) "gauge keeps last write" (Some 3L)
    (Pvtrace.Metrics.value m "g");
  check (Alcotest.option int64_t) "absent name" None
    (Pvtrace.Metrics.value m "nope");
  check (Alcotest.list string_t) "names sorted" [ "c"; "g" ]
    (Pvtrace.Metrics.names m)

let test_kind_clash () =
  let m = Pvtrace.Metrics.create () in
  Pvtrace.Metrics.inc1 m "x";
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Metrics: x is a counter, not a gauge") (fun () ->
      Pvtrace.Metrics.set m "x" 0L)

let test_hist_bucket_edges () =
  let m = Pvtrace.Metrics.create () in
  let bounds = [| 1L; 2L; 4L; 8L |] in
  let obs v = Pvtrace.Metrics.observe m ~bounds "h" v in
  (* edges: v <= bound lands in that bucket; above the last bound is the
     overflow bucket; zero and negatives land in the first bucket *)
  List.iter obs [ 0L; 1L; 2L; 3L; 4L; 8L; 9L; -5L ];
  let b = Pvtrace.Metrics.hist_buckets m "h" in
  check (Alcotest.array int_t) "bucket counts" [| 3; 1; 2; 1; 1 |] b;
  check int_t "count" 8 (Pvtrace.Metrics.hist_count m "h");
  check int64_t "sum" 22L (Pvtrace.Metrics.hist_sum m "h")

let test_hist_bad_bounds () =
  let m = Pvtrace.Metrics.create () in
  Alcotest.check_raises "empty bounds"
    (Invalid_argument "Metrics.histogram: empty bounds") (fun () ->
      ignore (Pvtrace.Metrics.histogram m ~bounds:[||] "h0"));
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Metrics.histogram: bounds must be strictly increasing")
    (fun () -> ignore (Pvtrace.Metrics.histogram m ~bounds:[| 2L; 2L |] "h1"))

(* ---------------- trace spans ---------------- *)

let test_span_nesting () =
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.begin_at tr ~ts:0L ~cat:"t" "outer";
  Pvtrace.Trace.begin_at tr ~ts:1L ~cat:"t" "inner";
  check int_t "two open" 2 (Pvtrace.Trace.open_depth tr ());
  check bool_t "not balanced while open" false (Pvtrace.Trace.balanced tr);
  Pvtrace.Trace.end_at tr ~ts:2L "inner";
  Pvtrace.Trace.end_at tr ~ts:3L "outer";
  check bool_t "balanced after closing" true (Pvtrace.Trace.balanced tr);
  check int_t "four events" 4 (Pvtrace.Trace.length tr)

let test_span_mismatch_raises () =
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.begin_at tr ~ts:0L ~cat:"t" "a";
  Alcotest.check_raises "closing the wrong span"
    (Invalid_argument "Trace.end_span: closing b but a is open") (fun () ->
      Pvtrace.Trace.end_at tr ~ts:1L "b");
  let tr2 = Pvtrace.Trace.create () in
  Alcotest.check_raises "closing with nothing open"
    (Invalid_argument "Trace.end_span: no open span on track 0 (closing x)")
    (fun () -> Pvtrace.Trace.end_at tr2 ~ts:0L "x")

let test_tracks_independent () =
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.begin_at tr ~ts:0L ~tid:1 ~cat:"t" "a";
  Pvtrace.Trace.begin_at tr ~ts:0L ~tid:2 ~cat:"t" "b";
  (* per-track LIFO: closing b on track 2 is fine while a is open on 1 *)
  Pvtrace.Trace.end_at tr ~ts:1L ~tid:2 "b";
  check int_t "track 1 still open" 1 (Pvtrace.Trace.open_depth tr ~tid:1 ());
  Pvtrace.Trace.end_at tr ~ts:1L ~tid:1 "a";
  check bool_t "balanced" true (Pvtrace.Trace.balanced tr)

let test_with_span () =
  check int_t "None sink is a no-op" 42
    (Pvtrace.Trace.with_span None ~cat:"t" "s" (fun () -> 42));
  let tr = Pvtrace.Trace.create () in
  let r = Pvtrace.Trace.with_span (Some tr) ~cat:"t" "s" (fun () -> 7) in
  check int_t "value through" 7 r;
  check bool_t "balanced" true (Pvtrace.Trace.balanced tr);
  (* exception safety: the span closes, the exception propagates *)
  (match
     Pvtrace.Trace.with_span (Some tr) ~cat:"t" "boom" (fun () ->
         failwith "kaboom")
   with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure m -> check string_t "exception preserved" "kaboom" m);
  check bool_t "balanced after exception" true (Pvtrace.Trace.balanced tr)

let test_virtual_clock () =
  let t = ref 100L in
  let tr = Pvtrace.Trace.create ~clock:(fun () -> !t) () in
  Pvtrace.Trace.begin_span tr ~cat:"t" "s";
  t := 250L;
  Pvtrace.Trace.end_span tr "s";
  match Pvtrace.Trace.events tr with
  | [ b; e ] ->
    check int64_t "begin ts" 100L b.Pvtrace.Trace.ts;
    check int64_t "end ts" 250L e.Pvtrace.Trace.ts
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

(* ---------------- ledger ---------------- *)

let test_ledger () =
  let l = Pvtrace.Ledger.create () in
  Pvtrace.Ledger.record l Pvtrace.Ledger.Annot_reject ~subject:"f"
    ~detail:"bad";
  Pvtrace.Ledger.record l ~ts:9L Pvtrace.Ledger.Accel_remap ~subject:"p"
    ~detail:"core died";
  Pvtrace.Ledger.record_opt (Some l) Pvtrace.Ledger.Annot_reject ~subject:"g"
    ~detail:"worse";
  Pvtrace.Ledger.record_opt None Pvtrace.Ledger.Limit_hit ~subject:"-"
    ~detail:"dropped";
  check int_t "count" 3 (Pvtrace.Ledger.count l);
  check int_t "annot rejects" 2
    (Pvtrace.Ledger.count_kind l Pvtrace.Ledger.Annot_reject);
  check int_t "remaps" 1 (Pvtrace.Ledger.count_kind l Pvtrace.Ledger.Accel_remap);
  match Pvtrace.Ledger.by_kind l Pvtrace.Ledger.Accel_remap with
  | [ e ] ->
    check string_t "subject" "p" e.Pvtrace.Ledger.subject;
    check int64_t "explicit ts" 9L e.Pvtrace.Ledger.ts
  | _ -> Alcotest.fail "expected one remap event"

(* regression: Account.ignore_sink must never accumulate state *)
let test_ignore_sink_discards () =
  let s = Pvir.Account.ignore_sink in
  let before = Pvir.Account.total s in
  Pvir.Account.charge s ~pass:"x" 1000;
  check int_t "total unchanged" before (Pvir.Account.total s);
  check bool_t "no entries" true (Pvir.Account.by_pass s = [])

let test_account_to_metrics () =
  let a = Pvir.Account.create () in
  Pvir.Account.charge a ~pass:"licm" 30;
  Pvir.Account.charge a ~pass:"dce" 12;
  let m = Pvtrace.Metrics.create () in
  Pvir.Account.to_metrics ~prefix:"offline" a m;
  check (Alcotest.option int64_t) "per pass" (Some 30L)
    (Pvtrace.Metrics.value m "offline.work.licm");
  check (Alcotest.option int64_t) "total" (Some 42L)
    (Pvtrace.Metrics.value m "offline.work.total")

(* ---------------- chrome export ---------------- *)

let test_chrome_export_valid () =
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.name_track tr 1 "phase one";
  Pvtrace.Trace.begin_at tr ~ts:0L ~tid:1 ~cat:"c" "outer \"quoted\"\n";
  Pvtrace.Trace.begin_at tr ~ts:1L ~tid:1
    ~args:[ ("k", "v\\with\\backslash") ]
    ~cat:"c" "inner";
  Pvtrace.Trace.end_at tr ~ts:2L ~tid:1 "inner";
  Pvtrace.Trace.instant_at tr ~ts:2L ~tid:1 ~cat:"c" "mark";
  Pvtrace.Trace.counter_at tr ~ts:2L ~tid:1 ~cat:"c" "chan"
    [ ("tokens", 3L) ];
  Pvtrace.Trace.end_at tr ~ts:5L ~tid:1 "outer \"quoted\"\n";
  let ledger = Pvtrace.Ledger.create () in
  Pvtrace.Ledger.record ledger Pvtrace.Ledger.Limit_hit ~subject:"s"
    ~detail:"d";
  let json = Pvtrace.Export.chrome_json ~ledger tr in
  (match Pvtrace.Export.validate_chrome json with
  | Ok n ->
    (* 6 trace events + 1 ledger instant + 2 thread_name metadata
       (the named track and the ledger track) *)
    check int_t "event count" 9 n
  | Error m -> Alcotest.failf "expected valid trace: %s" m);
  (* golden structure: a B and E pair for "inner" on tid 1 survives *)
  check bool_t "has traceEvents" true
    (String.length json > 0 && String.sub json 0 15 = "{\"traceEvents\":")

let test_chrome_export_histograms () =
  (* histograms export as one counter track each: a thread_name metadata
     event plus one C event per bucket (bucket index as timestamp), all
     of it passing the same validator CI runs on real traces *)
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.instant_at tr ~ts:0L ~cat:"c" "mark";
  let m = Pvtrace.Metrics.create () in
  let bounds = [| 1L; 4L; 16L |] in
  ignore (Pvtrace.Metrics.histogram m ~bounds "sim.block_visits");
  List.iter
    (fun v -> Pvtrace.Metrics.observe m ~bounds "sim.block_visits" v)
    [ 0L; 1L; 3L; 5L; 100L ];
  ignore (Pvtrace.Metrics.histogram m ~bounds "jit.span_work");
  let json = Pvtrace.Export.chrome_json ~metrics:m tr in
  (match Pvtrace.Export.validate_chrome json with
  | Ok n ->
    (* 1 instant + 2 histogram thread_name metadata + 2 * 4 bucket
       counters (3 bounds + overflow) *)
    check int_t "event count" 11 n
  | Error e -> Alcotest.failf "histogram export invalid: %s" e);
  (* the counter payload carries the bucket labels and counts *)
  check bool_t "labels present" true
    (let has needle =
       let nl = String.length needle and jl = String.length json in
       let rec at i = i + nl <= jl && (String.sub json i nl = needle || at (i + 1)) in
       at 0
     in
     has "hist:sim.block_visits" && has "\"le_1\":2" && has "\"le_4\":1"
     && has "\"le_16\":1" && has "\"inf\":1")

let test_chrome_export_unbalanced () =
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.begin_at tr ~ts:0L ~cat:"c" "never closed";
  match Pvtrace.Export.validate_chrome (Pvtrace.Export.chrome_json tr) with
  | Ok _ -> Alcotest.fail "unbalanced trace must not validate"
  | Error m ->
    check bool_t "mentions open span" true
      (String.length m > 0)

let test_validate_rejects_garbage () =
  (match Pvtrace.Export.validate_chrome "not json at all" with
  | Ok _ -> Alcotest.fail "garbage must not validate"
  | Error _ -> ());
  match Pvtrace.Export.validate_chrome "{\"notTraceEvents\": []}" with
  | Ok _ -> Alcotest.fail "missing traceEvents must not validate"
  | Error _ -> ()

(* ---------------- loop-annotation validation ---------------- *)

let fn_with_loop_annot annot =
  let src = {|
i64 looped(i64 n) {
  i64 s = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    s = s + i;
  }
  return s;
}
|} in
  let p = Core.Splitc.frontend src in
  let fn = List.hd p.Pvir.Prog.funcs in
  fn.Pvir.Func.loop_annots <- [ (1, annot) ];
  fn

let test_loop_payload_valid () =
  let a =
    Pvir.Annot.add Pvir.Annot.key_trip_count (Pvir.Annot.Int 1024)
      (Pvir.Annot.add Pvir.Annot.key_unit_stride (Pvir.Annot.Bool true)
         (Pvir.Annot.add Pvir.Annot.key_vector_factor (Pvir.Annot.Int 4)
            Pvir.Annot.empty))
  in
  let fn = fn_with_loop_annot a in
  (match Pvjit.Annot_check.check_loops fn with
  | Pvjit.Annot_check.Valid, _ -> ()
  | st, _ ->
    Alcotest.failf "expected Valid, got %s" (Pvjit.Annot_check.status_name st));
  let clean = fn_with_loop_annot Pvir.Annot.empty in
  match Pvjit.Annot_check.check_loops clean with
  | Pvjit.Annot_check.Absent, _ -> ()
  | st, _ ->
    Alcotest.failf "expected Absent, got %s" (Pvjit.Annot_check.status_name st)

let invalid_cases =
  [
    ( "negative trip count",
      Pvir.Annot.add Pvir.Annot.key_trip_count (Pvir.Annot.Int (-3))
        Pvir.Annot.empty );
    ( "trip count not an int",
      Pvir.Annot.add Pvir.Annot.key_trip_count (Pvir.Annot.Str "many")
        Pvir.Annot.empty );
    ( "vector factor not a power of two",
      Pvir.Annot.add Pvir.Annot.key_vector_factor (Pvir.Annot.Int 6)
        Pvir.Annot.empty );
    ( "vector factor too large",
      Pvir.Annot.add Pvir.Annot.key_vector_factor (Pvir.Annot.Int 128)
        Pvir.Annot.empty );
    ( "unit stride not a bool",
      Pvir.Annot.add Pvir.Annot.key_unit_stride (Pvir.Annot.Int 1)
        Pvir.Annot.empty );
    ( "no_alias not a bool",
      Pvir.Annot.add Pvir.Annot.key_no_alias (Pvir.Annot.Str "yes")
        Pvir.Annot.empty );
  ]

let test_loop_payload_invalid () =
  List.iter
    (fun (label, a) ->
      let fn = fn_with_loop_annot a in
      match Pvjit.Annot_check.check_loops fn with
      | Pvjit.Annot_check.Invalid _, per ->
        check int_t (label ^ ": one verdict") 1 (List.length per)
      | st, _ ->
        Alcotest.failf "%s: expected Invalid, got %s" label
          (Pvjit.Annot_check.status_name st))
    invalid_cases

(* a malformed loop payload must surface in the JIT's ledger, and the
   degradation must not change the computed result *)
let test_jit_ledger_integration () =
  let src = {|
i64 looped(i64 n) {
  i64 s = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    s = s + i;
  }
  return s;
}
|} in
  let machine = Pvmach.Machine.x86ish in
  let compile p ledger =
    let img = Pvvm.Image.load (Pvir.Prog.copy p) in
    let sim, report =
      Pvjit.Jit.compile_program ?ledger ~machine
        ~hints:Pvjit.Jit.Hints_annotation img
    in
    (Pvvm.Sim.run sim "looped" [ Pvir.Value.i64 100L ], report)
  in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split (Core.Splitc.frontend src) in
  let clean_result, _ = compile off.Core.Splitc.prog None in
  let corrupted = Pvir.Prog.copy off.Core.Splitc.prog in
  let fn = List.hd corrupted.Pvir.Prog.funcs in
  fn.Pvir.Func.loop_annots <-
    [
      ( 1,
        Pvir.Annot.add Pvir.Annot.key_trip_count (Pvir.Annot.Int (-1))
          Pvir.Annot.empty );
    ];
  let ledger = Pvtrace.Ledger.create () in
  let bad_result, report = compile corrupted (Some ledger) in
  check bool_t "ledger saw the reject" true
    (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Annot_reject >= 1);
  (match (report.Pvjit.Jit.funcs : Pvjit.Jit.func_report list) with
  | [ fr ] -> (
    match fr.Pvjit.Jit.annot_status with
    | Pvjit.Annot_check.Invalid _ -> ()
    | st ->
      Alcotest.failf "expected Invalid verdict, got %s"
        (Pvjit.Annot_check.status_name st))
  | _ -> Alcotest.fail "expected one function report");
  match (clean_result, bad_result) with
  | Some a, Some b ->
    check bool_t "degradation preserves the result" true (Pvir.Value.equal a b)
  | _ -> Alcotest.fail "expected results"

(* ---------------- scheduler timeline ---------------- *)

let sched_fixture () =
  let host = { Pvsched.Mapper.cname = "host"; machine = Pvmach.Machine.ppcish } in
  let accel = { Pvsched.Mapper.cname = "accel"; machine = Pvmach.Machine.dspish } in
  let platform = { Pvsched.Mapper.cores = [ host; accel ]; transfer_cost = 10 } in
  let mk name inputs outputs work =
    {
      Pvsched.Kpn.pname = name;
      inputs;
      outputs;
      fire = (fun toks -> toks);
      annots = Pvir.Annot.empty;
      work;
    }
  in
  let processes =
    [ mk "src" [ "in" ] [ "mid" ] 1; mk "sink" [ "mid" ] [ "out" ] 5 ]
  in
  let cost (p : Pvsched.Kpn.process) (_ : Pvsched.Mapper.core) =
    100 * p.Pvsched.Kpn.work
  in
  let fresh_net () =
    let net = Pvsched.Kpn.create processes in
    for b = 1 to 4 do
      Pvsched.Kpn.push net "in" [| Pvir.Value.i64 (Int64.of_int b) |]
    done;
    net
  in
  (platform, processes, cost, fresh_net)

let test_schedule_matches_makespan () =
  let platform, processes, cost, fresh_net = sched_fixture () in
  let pl = Pvsched.Mapper.place platform cost processes in
  let evs = Pvsched.Mapper.schedule platform cost pl (fresh_net ()) in
  let ms = Pvsched.Mapper.makespan platform cost pl (fresh_net ()) in
  check int_t "one event per firing" 8 (List.length evs);
  check int64_t "makespan = max end time" ms
    (List.fold_left
       (fun acc (e : Pvsched.Mapper.sched_event) -> max acc e.Pvsched.Mapper.se_end)
       0L evs);
  List.iter
    (fun (e : Pvsched.Mapper.sched_event) ->
      check bool_t "start <= end" true
        (Int64.compare e.Pvsched.Mapper.se_start e.Pvsched.Mapper.se_end <= 0);
      check bool_t "not remapped" false e.Pvsched.Mapper.se_remapped)
    evs

let test_schedule_emit_trace_valid () =
  let platform, processes, cost, fresh_net = sched_fixture () in
  let pl = Pvsched.Mapper.place platform cost processes in
  let evs = Pvsched.Mapper.schedule platform cost pl (fresh_net ()) in
  let tr = Pvtrace.Trace.create () in
  Pvsched.Mapper.emit_trace ~channels:[ ("in", 4) ] platform processes evs tr;
  check bool_t "balanced" true (Pvtrace.Trace.balanced tr);
  match Pvtrace.Export.validate_chrome (Pvtrace.Export.chrome_json tr) with
  | Ok n -> check bool_t "has events" true (n > 0)
  | Error m -> Alcotest.failf "schedule trace invalid: %s" m

let test_remap_ledger () =
  let platform, processes, cost, fresh_net = sched_fixture () in
  ignore fresh_net;
  let accel = List.nth platform.Pvsched.Mapper.cores 1 in
  let pl = Pvsched.Mapper.place_all_on accel processes in
  let ledger = Pvtrace.Ledger.create () in
  let pl' =
    Pvsched.Mapper.remap ~ledger platform cost pl ~dead:"accel" processes
  in
  check int_t "every displaced process recorded" 2
    (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Accel_remap);
  List.iter
    (fun (_, (c : Pvsched.Mapper.core)) ->
      check string_t "moved to the survivor" "host" c.Pvsched.Mapper.cname)
    pl'

(* ---------------- end-to-end reconciliation ---------------- *)

let e2e_source =
  {|
f32 xs[256];
f32 ys[256];

f32 saxpy(i64 n, f32 a) {
  f32 acc = 0.0;
  for (i64 i = 0; i < n; i = i + 1) {
    ys[i] = a * xs[i] + ys[i];
    acc = acc + ys[i];
  }
  return acc;
}
|}

let test_e2e_traced_pipeline () =
  let tr = Pvtrace.Trace.create () in
  let metrics = Pvtrace.Metrics.create () in
  let ledger = Pvtrace.Ledger.create () in
  let machine = Pvmach.Machine.x86ish in
  let off, on =
    Core.Splitc.run_source ~mode:Core.Splitc.Split ~machine ~tr ~metrics
      ~ledger e2e_source
  in
  ignore (Pvvm.Sim.run on.Core.Splitc.sim "saxpy" [ Pvir.Value.i64 64L; Pvir.Value.f32 2.0 ]);
  Pvvm.Sim.observe_metrics on.Core.Splitc.sim metrics;
  (* the trace is balanced and exports to valid Chrome JSON *)
  check bool_t "balanced" true (Pvtrace.Trace.balanced tr);
  (match Pvtrace.Export.validate_chrome (Pvtrace.Export.chrome_json ~ledger tr) with
  | Ok n -> check bool_t "nontrivial event count" true (n > 10)
  | Error m -> Alcotest.failf "e2e trace invalid: %s" m);
  (* the registry reconciles with the accountants and the simulator *)
  check (Alcotest.option int64_t) "offline work reconciles"
    (Some (Int64.of_int (Pvir.Account.total off.Core.Splitc.offline_work)))
    (Pvtrace.Metrics.value metrics "offline.work.total");
  check (Alcotest.option int64_t) "online work reconciles"
    (Some (Int64.of_int (Pvir.Account.total on.Core.Splitc.online_work)))
    (Pvtrace.Metrics.value metrics "online.work.total");
  check (Alcotest.option int64_t) "sim cycles reconcile"
    (Some (Pvvm.Sim.cycles on.Core.Splitc.sim))
    (Pvtrace.Metrics.value metrics "sim.cycles");
  (* a clean split-mode run degrades nothing *)
  check int_t "no degradations" 0 (Pvtrace.Ledger.count ledger)

let test_interp_metrics_reconcile () =
  let bc =
    Core.Splitc.distribute
      (Core.Splitc.offline ~mode:Core.Splitc.Split
         (Core.Splitc.frontend e2e_source))
  in
  let profile = Pvvm.Profile.create () in
  let tr = Pvtrace.Trace.create () in
  let it = Core.Splitc.interpret ~profile ~tr bc in
  ignore
    (Pvvm.Interp.run it "saxpy" [ Pvir.Value.i64 64L; Pvir.Value.f32 2.0 ]);
  let m = Pvtrace.Metrics.create () in
  Pvvm.Interp.observe_metrics it m;
  let prog = Pvir.Serial.decode bc in
  Pvvm.Profile.observe_mix profile prog m;
  check (Alcotest.option int64_t) "interp cycles reconcile"
    (Some (Pvvm.Interp.cycles it))
    (Pvtrace.Metrics.value m "interp.cycles");
  (* the mix derived from the profile covers every executed instruction:
     alu + load + store + call equals the instruction count minus the
     per-block terminator charges (branch/ret rows) *)
  let get name =
    match Pvtrace.Metrics.value m name with Some v -> v | None -> 0L
  in
  let mix_total =
    List.fold_left
      (fun acc n -> Int64.add acc (get n))
      0L
      [
        "vm.mix.alu"; "vm.mix.load"; "vm.mix.store"; "vm.mix.call";
        "vm.mix.branch"; "vm.mix.ret";
      ]
  in
  check int64_t "mix covers executed instructions"
    (match Pvtrace.Metrics.value m "interp.instrs" with
    | Some v -> v
    | None -> -1L)
    mix_total;
  check bool_t "vm span on the trace" true (Pvtrace.Trace.length tr > 0);
  check bool_t "balanced" true (Pvtrace.Trace.balanced tr)

(* tracing disabled must not change observable behavior: identical
   cycles, results, and output with and without sinks attached *)
let test_tracing_off_costs_nothing () =
  let machine = Pvmach.Machine.x86ish in
  let run_with ~traced =
    let tr = if traced then Some (Pvtrace.Trace.create ()) else None in
    let metrics = if traced then Some (Pvtrace.Metrics.create ()) else None in
    let ledger = if traced then Some (Pvtrace.Ledger.create ()) else None in
    let _, on =
      Core.Splitc.run_source ~mode:Core.Splitc.Split ~machine ?tr ?metrics
        ?ledger e2e_source
    in
    let result =
      Pvvm.Sim.run on.Core.Splitc.sim "saxpy"
        [ Pvir.Value.i64 64L; Pvir.Value.f32 2.0 ]
    in
    ( result,
      Pvvm.Sim.cycles on.Core.Splitc.sim,
      Pvvm.Sim.output on.Core.Splitc.sim,
      Pvir.Account.total on.Core.Splitc.online_work )
  in
  let r1, c1, o1, w1 = run_with ~traced:false in
  let r2, c2, o2, w2 = run_with ~traced:true in
  (match (r1, r2) with
  | Some a, Some b ->
    check bool_t "same result" true (Pvir.Value.equal a b)
  | None, None -> ()
  | _ -> Alcotest.fail "result presence differs");
  check int64_t "same cycles" c1 c2;
  check string_t "same output" o1 o2;
  check int_t "same online work" w1 w2

let () =
  Alcotest.run "pvtrace"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "histogram bucket edges" `Quick
            test_hist_bucket_edges;
          Alcotest.test_case "histogram bad bounds" `Quick test_hist_bad_bounds;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "mismatch raises" `Quick test_span_mismatch_raises;
          Alcotest.test_case "tracks independent" `Quick test_tracks_independent;
          Alcotest.test_case "with_span" `Quick test_with_span;
          Alcotest.test_case "virtual clock" `Quick test_virtual_clock;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "record and query" `Quick test_ledger;
          Alcotest.test_case "ignore_sink discards" `Quick
            test_ignore_sink_discards;
          Alcotest.test_case "account to metrics" `Quick test_account_to_metrics;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json valid" `Quick test_chrome_export_valid;
          Alcotest.test_case "histogram counter tracks" `Quick
            test_chrome_export_histograms;
          Alcotest.test_case "unbalanced rejected" `Quick
            test_chrome_export_unbalanced;
          Alcotest.test_case "garbage rejected" `Quick
            test_validate_rejects_garbage;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "loop payload valid" `Quick test_loop_payload_valid;
          Alcotest.test_case "loop payload invalid" `Quick
            test_loop_payload_invalid;
          Alcotest.test_case "jit ledger integration" `Quick
            test_jit_ledger_integration;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "schedule matches makespan" `Quick
            test_schedule_matches_makespan;
          Alcotest.test_case "schedule trace valid" `Quick
            test_schedule_emit_trace_valid;
          Alcotest.test_case "remap ledger" `Quick test_remap_ledger;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "traced pipeline" `Quick test_e2e_traced_pipeline;
          Alcotest.test_case "interp metrics reconcile" `Quick
            test_interp_metrics_reconcile;
          Alcotest.test_case "tracing off costs nothing" `Quick
            test_tracing_off_costs_nothing;
        ] );
    ]
