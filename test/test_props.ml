(* Property-based tests (qcheck, run under alcotest).

   The central property of the whole system is *observational equivalence
   across the lifetime of the program*: whatever the offline optimizer,
   the serializer, the JIT, the register allocator and the simulated
   target do, the result of running a program must match the reference
   interpreter on the unoptimized bytecode.  The generators below build
   random-but-well-formed MiniC programs to feed that property; smaller
   algebraic properties pin down Value/Eval and the serializer. *)

(* Failures are reproducible: every qcheck test in this binary draws from
   one seed, chosen at random per run (so repeated CI runs explore
   different inputs) unless PVCHECK_SEED pins it.  The first failing
   property prints the seed and the replay command. *)
let qcheck_seed =
  match Sys.getenv_opt "PVCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg "PVCHECK_SEED must be an integer")
  | None ->
    Random.self_init ();
    Random.int 0x3FFFFFFF

let seed_printed = ref false

let announce_seed name =
  if not !seed_printed then begin
    seed_printed := true;
    Printf.eprintf
      "\n[qcheck] property %S failed under seed %d — replay with \
       PVCHECK_SEED=%d dune exec test/test_props.exe\n%!"
      name qcheck_seed qcheck_seed
  end

let seeded_test ?(count = 100) name gen prop =
  let prop x =
    match prop x with
    | true -> true
    | false ->
      announce_seed name;
      false
    | exception e ->
      announce_seed name;
      raise e
  in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    (QCheck.Test.make ~count ~name gen prop)

(* ---------------- value properties ---------------- *)

let scalar_gen =
  QCheck.Gen.oneofl Pvir.Types.[ I8; I16; I32; I64 ]

let int_scalar_arb =
  QCheck.make
    QCheck.Gen.(pair scalar_gen (map Int64.of_int small_signed_int))
    ~print:(fun (s, x) -> Printf.sprintf "(%s, %Ld)" (Pvir.Types.scalar_name s) x)

let big_int_scalar_arb =
  QCheck.make
    QCheck.Gen.(pair scalar_gen ui64)
    ~print:(fun (s, x) -> Printf.sprintf "(%s, %Ld)" (Pvir.Types.scalar_name s) x)

let prop_normalize_idempotent (s, x) =
  let once = Pvir.Value.normalize s x in
  Int64.equal once (Pvir.Value.normalize s once)

let prop_bytes_roundtrip (s, x) =
  let v = Pvir.Value.int s x in
  let buf = Bytes.make 16 '\000' in
  Pvir.Value.write_bytes buf 0 v;
  Pvir.Value.equal v (Pvir.Value.read_bytes buf 0 (Pvir.Types.Scalar s))

let prop_zext_trunc_identity (s, x) =
  (* widening then truncating gives the original value back *)
  let v = Pvir.Value.int s x in
  let wide = Pvir.Eval.conv Pvir.Instr.Zext Pvir.Types.i64 v in
  let back = Pvir.Eval.conv Pvir.Instr.Trunc (Pvir.Types.Scalar s) wide in
  Pvir.Value.equal v back

let prop_cmp_trichotomy (s, x) =
  let v1 = Pvir.Value.int s x in
  let v2 = Pvir.Value.int s (Int64.add x 1L) in
  let as_bool r = Pvir.Value.to_bool r in
  let lt = as_bool (Pvir.Eval.cmp Pvir.Instr.Slt v1 v2) in
  let eq = as_bool (Pvir.Eval.cmp Pvir.Instr.Eq v1 v2) in
  let gt = as_bool (Pvir.Eval.cmp Pvir.Instr.Sgt v1 v2) in
  List.length (List.filter (fun b -> b) [ lt; eq; gt ]) = 1

let commutative_ops =
  Pvir.Instr.[ Add; Mul; And; Or; Xor; Min; Max; Umin; Umax ]

let prop_binop_commutes ((s, x), (y : int64), op_idx) =
  let op = List.nth commutative_ops (op_idx mod List.length commutative_ops) in
  let a = Pvir.Value.int s x and b = Pvir.Value.int s y in
  Pvir.Value.equal (Pvir.Eval.binop op a b) (Pvir.Eval.binop op b a)

let commute_arb =
  QCheck.make
    QCheck.Gen.(
      triple
        (pair scalar_gen ui64)
        ui64
        (int_bound 100))
    ~print:(fun ((s, x), y, i) ->
      Printf.sprintf "(%s, %Ld, %Ld, %d)" (Pvir.Types.scalar_name s) x y i)

let prop_add_associates ((s, x), y, z) =
  let a = Pvir.Value.int s x
  and b = Pvir.Value.int s y
  and c = Pvir.Value.int s z in
  let ( + ) u v = Pvir.Eval.binop Pvir.Instr.Add u v in
  Pvir.Value.equal (a + (b + c)) (a + b + c)

let assoc_arb =
  QCheck.make
    QCheck.Gen.(triple (pair scalar_gen ui64) ui64 ui64)
    ~print:(fun ((s, x), y, z) ->
      Printf.sprintf "(%s, %Ld, %Ld, %Ld)" (Pvir.Types.scalar_name s) x y z)

(* ---------------- annotation / serializer properties ---------------- *)

let annot_value_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [
                map (fun b -> Pvir.Annot.Bool b) bool;
                map (fun i -> Pvir.Annot.Int i) small_signed_int;
                map (fun s -> Pvir.Annot.Str s) (string_size (int_bound 8));
              ]
          else
            frequency
              [
                (3, self 1);
                (1, map (fun l -> Pvir.Annot.List l) (list_size (int_bound 4) (self (n / 2))));
              ])
        n)

let annot_arb =
  QCheck.make
    QCheck.Gen.(
      list_size (int_bound 6)
        (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 10)) annot_value_gen))
    ~print:(fun a -> Pvir.Annot.to_string a)

(* dedupe keys so Annot.equal's set semantics apply *)
let dedupe (a : Pvir.Annot.t) : Pvir.Annot.t =
  List.fold_left (fun acc (k, v) -> Pvir.Annot.add k v acc) Pvir.Annot.empty a

let prop_annot_roundtrip raw =
  let a = dedupe raw in
  let p = Pvir.Prog.create "t" in
  p.Pvir.Prog.annots <- a;
  let p' = Pvir.Serial.decode (Pvir.Serial.encode p) in
  Pvir.Annot.equal a p'.Pvir.Prog.annots

(* ---------------- random MiniC programs ---------------- *)

(* a small expression language over three i64 variables a, b, c;
   printed as MiniC source.  Division and shifts are guarded. *)
type rexpr =
  | Rlit of int
  | Rvar of int
  | Rbin of string * rexpr * rexpr
  | Rmin of rexpr * rexpr
  | Rmax of rexpr * rexpr
  | Rsel of rexpr * rexpr * rexpr

let rec rexpr_to_src = function
  | Rlit n -> Printf.sprintf "%d" n
  | Rvar v -> [| "a"; "b"; "c" |].(v mod 3)
  | Rbin ("/", e1, e2) ->
    Printf.sprintf "(%s / ((%s) | 1))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin ("%", e1, e2) ->
    Printf.sprintf "(%s %% ((%s) | 1))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin (">>", e1, e2) ->
    Printf.sprintf "(%s >> ((%s) & 15))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin ("<<", e1, e2) ->
    Printf.sprintf "(%s << ((%s) & 15))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin (op, e1, e2) ->
    Printf.sprintf "(%s %s %s)" (rexpr_to_src e1) op (rexpr_to_src e2)
  | Rmin (e1, e2) ->
    Printf.sprintf "__min(%s, %s)" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rmax (e1, e2) ->
    Printf.sprintf "__max(%s, %s)" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rsel (c, t, f) ->
    Printf.sprintf "((%s) > 0 ? %s : %s)" (rexpr_to_src c) (rexpr_to_src t)
      (rexpr_to_src f)

let rexpr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof [ map (fun i -> Rlit (i - 50)) (int_bound 100); map (fun v -> Rvar v) (int_bound 2) ]
          else
            let sub = self (n / 2) in
            frequency
              [
                (2, map (fun i -> Rlit (i - 50)) (int_bound 100));
                (2, map (fun v -> Rvar v) (int_bound 2));
                ( 6,
                  map3
                    (fun op e1 e2 -> Rbin (op, e1, e2))
                    (oneofl [ "+"; "-"; "*"; "&"; "|"; "^"; "/"; "%"; "<<"; ">>" ])
                    sub sub );
                (1, map2 (fun a b -> Rmin (a, b)) sub sub);
                (1, map2 (fun a b -> Rmax (a, b)) sub sub);
                (1, map3 (fun a b c -> Rsel (a, b, c)) sub sub sub);
              ])
        (min n 12))

(* a random program: assignments to a/b/c followed by a combining loop *)
let rprog_gen =
  let open QCheck.Gen in
  map3
    (fun e1 e2 e3 ->
      Printf.sprintf
        {|
i64 main() {
  i64 a = 3;
  i64 b = -7;
  i64 c = 11;
  a = %s;
  b = %s;
  c = %s;
  i64 s = 0;
  for (i64 i = 0; i < 5; i = i + 1) {
    s = s + a - b + (c ^ i);
  }
  return s;
}
|}
        (rexpr_to_src e1) (rexpr_to_src e2) (rexpr_to_src e3))
    rexpr_gen rexpr_gen rexpr_gen

let rprog_arb = QCheck.make rprog_gen ~print:(fun s -> s)


(* random programs with a global array and a loop: stresses the memory
   path, the vectorizer's bail-or-transform decisions, strength reduction
   and the scalarizing backends, all against the interpreter.  Inside the
   loop, a/b/c are all derived from the loaded element so many generated
   loops are genuinely vectorizable. *)
let rloop_expr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [ map (fun i -> Rlit (i - 20)) (int_bound 40); map (fun v -> Rvar v) (int_bound 2) ]
          else
            let sub = self (n / 2) in
            frequency
              [
                (2, map (fun i -> Rlit (i - 20)) (int_bound 40));
                (3, map (fun v -> Rvar v) (int_bound 2));
                ( 5,
                  map3
                    (fun op e1 e2 -> Rbin (op, e1, e2))
                    (oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ])
                    sub sub );
                (1, map2 (fun a b -> Rmin (a, b)) sub sub);
                (1, map2 (fun a b -> Rmax (a, b)) sub sub);
              ])
        (min n 8))

let rloop_gen =
  let open QCheck.Gen in
  map3
    (fun body_expr acc_expr n ->
      Printf.sprintf
        {|
u32 arr[128];
i64 main() {
  for (i64 i = 0; i < 128; i++) { arr[i] = (u32)(i * 7 + 3); }
  u32 acc = 1;
  for (i64 i = 0; i < %d; i++) {
    u32 x = arr[i];
    u32 a = x;
    u32 b = x * 3;
    u32 c = x ^ 5;
    arr[i] = %s;
    acc = acc + (%s);
  }
  i64 out = 0;
  for (i64 i = 0; i < 128; i++) { out = out + (i64)arr[i]; }
  return out * 1000 + (i64)(acc %% 997);
}
|}
        n body_expr acc_expr)
    (map rexpr_to_src rloop_expr_gen)
    (map rexpr_to_src rloop_expr_gen)
    (int_bound 128)

let rloop_arb = QCheck.make rloop_gen ~print:(fun s -> s)

let interp_unopt src =
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create img in
  Pvvm.Interp.run it "main" []

let prop_offline_preserves src =
  let r0 = interp_unopt src in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split (Core.Splitc.frontend src) in
  let img = Pvvm.Image.load off.Core.Splitc.prog in
  let it = Pvvm.Interp.create img in
  let r1 = Pvvm.Interp.run it "main" [] in
  match (r0, r1) with
  | Some a, Some b -> Pvir.Value.equal a b
  | None, None -> true
  | _ -> false

let prop_jit_matches_interp src =
  let r0 = interp_unopt src in
  let _, on = Core.Splitc.run_source ~mode:Core.Splitc.Split
      ~machine:Pvmach.Machine.x86ish src in
  let r1 = Pvvm.Sim.run on.Core.Splitc.sim "main" [] in
  match (r0, r1) with
  | Some a, Some b -> Pvir.Value.equal a b
  | None, None -> true
  | _ -> false

let prop_uchost_matches_interp src =
  (* the register-poor machine exercises spilling heavily *)
  let r0 = interp_unopt src in
  let _, on = Core.Splitc.run_source ~mode:Core.Splitc.Pure_online
      ~machine:Pvmach.Machine.uchost src in
  let r1 = Pvvm.Sim.run on.Core.Splitc.sim "main" [] in
  match (r0, r1) with
  | Some a, Some b -> Pvir.Value.equal a b
  | None, None -> true
  | _ -> false

let prop_bytecode_roundtrip src =
  let p = Core.Splitc.frontend src in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  let bc = Core.Splitc.distribute off in
  let p' = Pvir.Serial.decode bc in
  String.equal
    (Pvir.Pp.program_to_string off.Core.Splitc.prog)
    (Pvir.Pp.program_to_string p')

let prop_text_roundtrip src =
  let p = Core.Splitc.frontend src in
  let txt = Pvir.Pp.program_to_string p in
  let p' = Pvir.Parse.program txt in
  String.equal txt (Pvir.Pp.program_to_string p')

(* ---------------- vectorized kernels at random sizes ---------------- *)

let kernel_n_arb =
  QCheck.make
    QCheck.Gen.(pair (int_bound (List.length Pvkernels.Kernels.table1 - 1)) (int_bound 300))
    ~print:(fun (k, n) ->
      Printf.sprintf "(%s, n=%d)"
        (List.nth Pvkernels.Kernels.table1 k).Pvkernels.Kernels.name n)

let prop_kernel_any_n (ki, n) =
  let k = List.nth Pvkernels.Kernels.table1 ki in
  let interp_obs, _ = Pvkernels.Harness.run_interp ~n k in
  let r =
    Pvkernels.Harness.run_jit ~n ~mode:Core.Splitc.Split
      ~machine:Pvmach.Machine.x86ish k
  in
  Pvkernels.Harness.observation_equal interp_obs r.Pvkernels.Harness.obs

(* ---------------- KPN determinism ---------------- *)

let prop_kpn_determinism perm_seed =
  let tok x = [| Pvir.Value.i64 (Int64.of_int x) |] in
  let mk name inputs outputs f =
    {
      Pvsched.Kpn.pname = name;
      inputs;
      outputs;
      fire =
        (fun toks ->
          List.map
            (fun t -> tok (f (Int64.to_int (Pvir.Value.to_int64 t.(0)))))
            toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let processes =
    [
      mk "p1" [ "in" ] [ "m1" ] (fun x -> x * 3);
      mk "p2" [ "m1" ] [ "m2" ] (fun x -> x - 1);
      mk "p3" [ "m2" ] [ "out" ] (fun x -> x * x);
    ]
  in
  let run order =
    let net = Pvsched.Kpn.create processes in
    List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) [ 1; 2; 3; 4; 5 ];
    ignore (Pvsched.Kpn.run ~order net);
    List.map
      (fun t -> Int64.to_int (Pvir.Value.to_int64 t.(0)))
      (Pvsched.Kpn.drain net "out")
  in
  (* a deterministic "random" permutation from the seed *)
  let permute ps =
    let arr = Array.of_list ps in
    let st = ref perm_seed in
    let n = Array.length arr in
    for i = n - 1 downto 1 do
      st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
      let j = !st mod (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done;
    Array.to_list arr
  in
  run (fun ps -> ps) = run permute

(* ---------------- registration ---------------- *)

let () =
  Alcotest.run "properties"
    [
      ( "values",
        [
          seeded_test ~count:500 "normalize idempotent" big_int_scalar_arb
            prop_normalize_idempotent;
          seeded_test ~count:500 "memory byte roundtrip" big_int_scalar_arb
            prop_bytes_roundtrip;
          seeded_test ~count:500 "zext;trunc = id" big_int_scalar_arb
            prop_zext_trunc_identity;
          seeded_test ~count:200 "signed trichotomy" int_scalar_arb
            prop_cmp_trichotomy;
          seeded_test ~count:500 "commutativity" commute_arb prop_binop_commutes;
          seeded_test ~count:500 "add associativity" assoc_arb prop_add_associates;
        ] );
      ( "serialization",
        [ seeded_test ~count:200 "annotation roundtrip" annot_arb prop_annot_roundtrip ] );
      ( "pipeline",
        [
          seeded_test ~count:60 "offline optimizer preserves semantics"
            rprog_arb prop_offline_preserves;
          seeded_test ~count:40 "jit (x86ish) matches interpreter" rprog_arb
            prop_jit_matches_interp;
          seeded_test ~count:30 "jit (uchost, heavy spilling) matches interpreter"
            rprog_arb prop_uchost_matches_interp;
          seeded_test ~count:40 "bytecode roundtrip" rprog_arb
            prop_bytecode_roundtrip;
          seeded_test ~count:40 "text roundtrip" rprog_arb prop_text_roundtrip;
          seeded_test ~count:40 "array-loop programs: offline preserves"
            rloop_arb prop_offline_preserves;
          seeded_test ~count:30 "array-loop programs: jit (x86ish) matches"
            rloop_arb prop_jit_matches_interp;
          seeded_test ~count:20 "array-loop programs: jit (uchost) matches"
            rloop_arb prop_uchost_matches_interp;
        ] );
      ( "kernels",
        [ seeded_test ~count:25 "vectorized kernels at any n" kernel_n_arb prop_kernel_any_n ] );
      ( "kpn",
        [
          seeded_test ~count:50 "scheduling-order determinism"
            (QCheck.make QCheck.Gen.(int_bound 1000000) ~print:string_of_int)
            prop_kpn_determinism;
        ] );
    ]
