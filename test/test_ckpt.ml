(* Safepoint checkpoint/restore: the snapshot contract.

   Three things are pinned here.  (1) Engine neutrality: all three
   engines (tree-walk, threaded, AOT — which checkpoints through its
   threaded fallback) armed at the same instruction threshold capture
   byte-identical snapshots.  (2) Resume exactness: restoring a snapshot
   into a fresh VM under any engine and running to completion is
   observation-identical — result, output, globals, cycle/instr/call
   counts — to the run that was never interrupted, including across
   repeated re-checkpointing.  (3) Codec hardening: the snapshot decoder
   rejects every truncation and every seeded byte flip with
   [Serial.Corrupt], and restore validation rejects snapshots that do
   not belong to the image with [Snapshot.Invalid] — never a crash,
   never a silently wrong resume. *)

(* Install the real AOT backend so the Aot rows below exercise the
   actual runner (armed checkpoints delegate to the threaded fallback;
   unarmed resumed runs may execute compiled code). *)
let () = Pvaot.install ()

let engines =
  [ Pvvm.Interp.Tree_walk; Pvvm.Interp.Threaded; Pvvm.Interp.Aot ]

(* Guest programs with calls (nested frames at safepoints), loops,
   allocas, globals and printing — the state a snapshot must carry. *)
let prog_calls =
  {|
i64 gacc[4];

i64 leaf(i64 x, i64 y) {
  i64 t = x * y;
  gacc[0] = gacc[0] + t;
  return t + 1;
}

i64 mid(i64 n) {
  i64 s = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    s = s + leaf(i, n - i);
  }
  gacc[1] = s;
  return s;
}

i64 main() {
  i64 total = 0;
  for (i64 k = 1; k < 9; k = k + 1) {
    total = total + mid(k);
    print_i64(total);
  }
  return total;
}
|}

let prog_memory =
  {|
f64 xs[64];

f64 main() {
  f64 acc = 0.0;
  for (i64 i = 0; i < 64; i = i + 1) {
    xs[i] = acc + 1.5;
    acc = acc + xs[i] * 0.5;
  }
  print_f64(acc);
  return acc;
}
|}

let compile src = Core.Splitc.frontend src

(* Small guest memory keeps snapshots (which embed the whole image)
   a few KiB, so the exhaustive truncation sweep stays fast. *)
let mem_size = 1 lsl 12

let load prog = Pvvm.Image.load ~mem_size prog

type obs = {
  result : (Pvir.Value.t option, string) result;
  output : string;
  cycles : int64;
  instrs : int64;
  calls : int;
}

let obs_of it r =
  {
    result = r;
    output = Pvvm.Interp.output it;
    cycles = it.Pvvm.Interp.stats.Pvvm.Interp.cycles;
    instrs = it.Pvvm.Interp.stats.Pvvm.Interp.instrs;
    calls = it.Pvvm.Interp.stats.Pvvm.Interp.calls;
  }

let run_plain ~engine prog =
  let it = Pvvm.Interp.create ~engine (load prog) in
  let r =
    match Pvvm.Interp.run it "main" [] with
    | v -> Ok v
    | exception Pvvm.Interp.Trap m -> Error m
  in
  (obs_of it r, Pvvm.Memory.contents it.Pvvm.Interp.img.Pvvm.Image.mem)

let check_obs what (a : obs) (b : obs) =
  Alcotest.(check (result (option string) string))
    (what ^ ": result")
    (Result.map (Option.map Pvir.Value.to_string) a.result)
    (Result.map (Option.map Pvir.Value.to_string) b.result);
  Alcotest.(check string) (what ^ ": output") a.output b.output;
  Alcotest.(check int64) (what ^ ": cycles") a.cycles b.cycles;
  Alcotest.(check int64) (what ^ ": instrs") a.instrs b.instrs;
  Alcotest.(check int) (what ^ ": calls") a.calls b.calls

(* Total instruction count of a program: where the kill points live. *)
let total_instrs prog =
  let it = Pvvm.Interp.create (load prog) in
  ignore (Pvvm.Interp.run it "main" []);
  it.Pvvm.Interp.stats.Pvvm.Interp.instrs

let checkpoint_at ~engine prog at =
  let it = Pvvm.Interp.create ~engine (load prog) in
  Pvvm.Snapshot.run_until it "main" [] ~at

(* kill points spread over the whole run, including the endpoints *)
let kill_points prog =
  let n = Int64.to_int (total_instrs prog) in
  List.sort_uniq compare
    [ 0; 1; 2; n / 7; n / 3; n / 2; (2 * n) + 1 - n; n - 2; n - 1; n ]
  |> List.filter (fun k -> k >= 0)

(* (1) all engines, same threshold -> byte-identical snapshots *)
let test_cross_engine_identity src () =
  let prog = compile src in
  List.iter
    (fun at ->
      let outcomes =
        List.map
          (fun e -> (e, checkpoint_at ~engine:e prog (Int64.of_int at)))
          engines
      in
      match outcomes with
      | (_, ref_outcome) :: rest ->
        List.iter
          (fun (e, o) ->
            match (ref_outcome, o) with
            | Pvvm.Snapshot.Completed _, Pvvm.Snapshot.Completed _ -> ()
            | Pvvm.Snapshot.Checkpointed s0, Pvvm.Snapshot.Checkpointed s1 ->
              Alcotest.(check string)
                (Printf.sprintf "snapshot bytes at %d (%s)" at
                   (Pvvm.Interp.engine_name e))
                (Pvir.Ckpt.encode s0) (Pvir.Ckpt.encode s1)
            | _ ->
              Alcotest.failf "engines disagree on completion at %d (%s)" at
                (Pvvm.Interp.engine_name e))
          rest
      | [] -> assert false)
    (kill_points prog)

(* (2) checkpoint on engine A, resume on engine B: observations equal
   the uninterrupted run for every (kill point, A, B) *)
let test_migrate_matrix src () =
  let prog = compile src in
  let reference, ref_mem = run_plain ~engine:Pvvm.Interp.Tree_walk prog in
  List.iter
    (fun at ->
      List.iter
        (fun src_engine ->
          match checkpoint_at ~engine:src_engine prog (Int64.of_int at) with
          | Pvvm.Snapshot.Completed _ -> ()
          | Pvvm.Snapshot.Checkpointed snap ->
            (* codec round-trip rides along on every case *)
            let bytes = Pvir.Ckpt.encode snap in
            let snap = Pvir.Ckpt.decode bytes in
            Alcotest.(check string) "round-trip is bit-identical" bytes
              (Pvir.Ckpt.encode snap);
            List.iter
              (fun dst_engine ->
                let it =
                  Pvvm.Snapshot.interp_for ~engine:dst_engine prog snap
                in
                let r =
                  match Pvvm.Snapshot.resume it snap with
                  | v -> Ok v
                  | exception Pvvm.Interp.Trap m -> Error m
                in
                let what =
                  Printf.sprintf "at %d, %s->%s" at
                    (Pvvm.Interp.engine_name src_engine)
                    (Pvvm.Interp.engine_name dst_engine)
                in
                check_obs what reference (obs_of it r);
                Alcotest.(check string) (what ^ ": memory") ref_mem
                  (Pvvm.Memory.contents it.Pvvm.Interp.img.Pvvm.Image.mem))
              engines)
        engines)
    (kill_points prog)

(* (2b) re-checkpointing a resumed run converges to the same answer:
   hop the kernel every ~60 instructions until it finishes *)
let test_repeated_migration () =
  let prog = compile prog_calls in
  let reference, _ = run_plain ~engine:Pvvm.Interp.Tree_walk prog in
  let engine_of i = List.nth engines (i mod 3) in
  let rec hop i outcome =
    match outcome with
    | Pvvm.Snapshot.Completed v, it -> (it, Ok v)
    | Pvvm.Snapshot.Checkpointed snap, _ ->
      if i > 200 then Alcotest.fail "migration did not converge";
      let it = Pvvm.Snapshot.interp_for ~engine:(engine_of i) prog snap in
      let at = Int64.add snap.Pvir.Ckpt.ck_instrs 60L in
      hop (i + 1) (Pvvm.Snapshot.resume_until it snap ~at, it)
  in
  let it0 = Pvvm.Interp.create ~engine:Pvvm.Interp.Threaded (load prog) in
  let it, r = hop 1 (Pvvm.Snapshot.run_until it0 "main" [] ~at:60L, it0) in
  check_obs "hopscotch" reference (obs_of it r)

(* (3a) validation: snapshots that do not belong are rejected *)
let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: restore accepted an invalid snapshot" what
  | exception Pvvm.Snapshot.Invalid _ -> ()

let grab_snapshot ?(at = 40L) prog =
  match
    Pvvm.Snapshot.run_until
      (Pvvm.Interp.create (load prog))
      "main" [] ~at
  with
  | Pvvm.Snapshot.Checkpointed s -> s
  | Pvvm.Snapshot.Completed _ -> Alcotest.fail "program too short to checkpoint"

let test_validation () =
  let prog = compile prog_calls in
  let other = compile prog_memory in
  let snap = grab_snapshot prog in
  expect_invalid "wrong program" (fun () ->
      Pvvm.Snapshot.resume (Pvvm.Snapshot.interp_for other snap) snap);
  expect_invalid "wrong memory size" (fun () ->
      let it = Pvvm.Interp.create (Pvvm.Image.load ~mem_size:(1 lsl 16) prog) in
      Pvvm.Snapshot.resume it snap);
  expect_invalid "wrong fuel budget" (fun () ->
      let it = Pvvm.Interp.create ~fuel:123_456L (load prog) in
      Pvvm.Snapshot.resume it snap);
  (* tampered frame linkage: pretend the innermost frame is mid-block *)
  expect_invalid "forged resume index" (fun () ->
      let forged =
        match snap.Pvir.Ckpt.ck_frames with
        | f :: rest ->
          { snap with Pvir.Ckpt.ck_frames = { f with Pvir.Ckpt.ck_ip = 1 } :: rest }
        | [] -> assert false
      in
      Pvvm.Snapshot.resume (Pvvm.Snapshot.interp_for prog forged) forged);
  (* tampered register type *)
  expect_invalid "forged register type" (fun () ->
      let forged =
        match snap.Pvir.Ckpt.ck_frames with
        | f :: rest ->
          let regs =
            List.map
              (fun (r, _) -> (r, Pvir.Value.Float (Pvir.Types.F64, 1.0)))
              f.Pvir.Ckpt.ck_regs
          in
          { snap with
            Pvir.Ckpt.ck_frames = { f with Pvir.Ckpt.ck_regs = regs } :: rest }
        | [] -> assert false
      in
      Pvvm.Snapshot.resume (Pvvm.Snapshot.interp_for prog forged) forged);
  (* the pristine snapshot still restores fine afterwards *)
  let it = Pvvm.Snapshot.interp_for prog snap in
  ignore (Pvvm.Snapshot.resume it snap)

(* (3b) exhaustive truncations: every proper prefix must be Corrupt *)
let test_truncations () =
  let prog = compile prog_calls in
  let bytes = Pvir.Ckpt.encode (grab_snapshot prog) in
  for n = 0 to String.length bytes - 1 do
    match Pvir.Ckpt.decode_result (String.sub bytes 0 n) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" n
  done

(* (3c) seeded byte flips: decode never crashes; if it still decodes,
   restore validation still never crashes *)
let test_byte_flips () =
  let prog = compile prog_calls in
  let snap = grab_snapshot prog in
  let bytes = Pvir.Ckpt.encode snap in
  let n = String.length bytes in
  let rng = ref 0x9E3779B97F4A7C15L in
  let next () =
    (* splitmix64 step, the repo's seeded-fuzz idiom *)
    rng := Int64.add !rng 0x9E3779B97F4A7C15L;
    let z = !rng in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let survivors = ref 0 in
  for _ = 1 to 4000 do
    let pos = Int64.to_int (Int64.unsigned_rem (next ()) (Int64.of_int n)) in
    let bit = Int64.to_int (Int64.unsigned_rem (next ()) 8L) in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    match Pvir.Ckpt.decode_result (Bytes.to_string b) with
    | Error _ -> ()
    | Ok mutated -> (
      incr survivors;
      (* a decodable mutant must hit the restore wall cleanly *)
      let it = Pvvm.Interp.create (load prog) in
      match Pvvm.Snapshot.restore it mutated with
      | () -> () (* flipped a byte restore cannot distinguish (e.g. memory) *)
      | exception Pvvm.Snapshot.Invalid _ -> ())
  done;
  (* the fuzz is only meaningful if some mutants do get through decode *)
  if !survivors = 0 then Alcotest.fail "no byte flip survived decoding"

(* checkpoint never fires when the threshold is past the end *)
let test_completion_wins () =
  let prog = compile prog_memory in
  let n = total_instrs prog in
  List.iter
    (fun e ->
      match checkpoint_at ~engine:e prog (Int64.add n 1L) with
      | Pvvm.Snapshot.Completed _ -> ()
      | Pvvm.Snapshot.Checkpointed _ ->
        Alcotest.failf "%s checkpointed past the end" (Pvvm.Interp.engine_name e))
    engines

let () =
  Alcotest.run "ckpt"
    [
      ( "engine neutrality",
        [
          Alcotest.test_case "snapshots byte-identical (calls)" `Quick
            (test_cross_engine_identity prog_calls);
          Alcotest.test_case "snapshots byte-identical (memory)" `Quick
            (test_cross_engine_identity prog_memory);
        ] );
      ( "migration",
        [
          Alcotest.test_case "full engine matrix (calls)" `Quick
            (test_migrate_matrix prog_calls);
          Alcotest.test_case "full engine matrix (memory)" `Quick
            (test_migrate_matrix prog_memory);
          Alcotest.test_case "repeated re-checkpointing" `Quick
            test_repeated_migration;
          Alcotest.test_case "completion beats the threshold" `Quick
            test_completion_wins;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "restore validation" `Quick test_validation;
          Alcotest.test_case "exhaustive truncations" `Quick test_truncations;
          Alcotest.test_case "seeded byte flips" `Quick test_byte_flips;
        ] );
    ]
