(* Tier-1 tests for the KPN fuzzing stack (PR 9): generator
   determinism for the new recursive / process-network shapes, a short
   clean Kpncheck campaign, a planted scheduler bug caught and shrunk
   to a minimal network, coverage-guided vs uniform seed scheduling,
   and the fuel-exhaustion regression for generated recursive programs.

   Campaigns are deterministic in their seed.  The cross-engine /
   cross-scheduler properties additionally run under a random seed
   (printed with a replay command) unless PVCHECK_SEED pins it, same
   contract as test_props.ml. *)

module Gen = Pvcheck.Gen
module K = Pvcheck.Kpncheck
module Sched = Pvsched.Sched

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let env_seed =
  match Sys.getenv_opt "PVCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg "PVCHECK_SEED must be an integer")
  | None ->
    Random.self_init ();
    Random.int 0x3FFFFFFF

let seed_printed = ref false

let announce_seed name =
  if not !seed_printed then begin
    seed_printed := true;
    Printf.printf
      "[%s] random campaign seed %d; replay with\n\
      \   PVCHECK_SEED=%d dune exec test/test_kpn_fuzz.exe\n\
       %!"
      name env_seed env_seed
  end

(* ---------------- generator determinism ---------------- *)

let test_recursive_gen_deterministic () =
  for seed = 0 to 9 do
    let p0 = Gen.program_recursive ~seed in
    let p1 = Gen.program_recursive ~seed in
    check string_t
      (Printf.sprintf "recursive seed %d reproducible" seed)
      (Pvir.Pp.program_to_string p0)
      (Pvir.Pp.program_to_string p1);
    match Pvir.Verify.program_result p0 with
    | Ok () -> ()
    | Error m -> Alcotest.failf "recursive seed %d fails verify: %s" seed m
  done;
  let a = Pvir.Pp.program_to_string (Gen.program_recursive ~seed:1) in
  let b = Pvir.Pp.program_to_string (Gen.program_recursive ~seed:2) in
  check bool_t "different seeds differ" true (a <> b)

let test_kpn_gen_deterministic () =
  let p0, pool0 = Gen.node_program ~seed:11 ~count:5 in
  let p1, pool1 = Gen.node_program ~seed:11 ~count:5 in
  check string_t "node program reproducible"
    (Pvir.Pp.program_to_string p0)
    (Pvir.Pp.program_to_string p1);
  check bool_t "function pool reproducible" true (pool0 = pool1);
  check int_t "pool size" 5 (List.length pool0);
  for s = 0 to 9 do
    let cfg =
      {
        K.cprocs = 8;
        ctokens = 2;
        cfanin = 2;
        cfanout = 40;
        cfeedback = 20;
        ccapacity = 3;
        cnet_seed = s;
      }
    in
    check string_t
      (Printf.sprintf "net seed %d reproducible" s)
      (K.net_to_string (K.generate ~fn_pool:pool0 cfg))
      (K.net_to_string (K.generate ~fn_pool:pool1 cfg))
  done

(* ---------------- clean campaign ---------------- *)

let test_short_clean_campaign () =
  announce_seed "clean campaign";
  let findings, stats = K.campaign ~shrink:true ~seed:env_seed ~count:30 () in
  List.iter
    (fun f ->
      Printf.printf "FAIL %s: %s (%s)\nconfig: %s\n%s%!" f.K.kpath f.K.kwhat
        f.K.kdetail
        (K.config_to_string f.K.kconfig)
        (K.net_to_string f.K.knet))
    findings;
  check int_t "no findings" 0 (List.length findings);
  check int_t "all cases ran" 30 stats.K.cs_cases;
  check bool_t "features discovered" true (stats.K.cs_features > 0);
  check bool_t "corpus retained" true (stats.K.cs_corpus > 0)

let test_campaign_pinned_seed_reproducible () =
  (* the whole campaign — programs, configs, corpus growth — is a pure
     function of the seed *)
  let run () =
    let fs, st = K.campaign ~seed:42 ~count:25 () in
    (List.length fs, st.K.cs_cases, st.K.cs_features, st.K.cs_corpus)
  in
  let a = run () in
  let b = run () in
  check bool_t "campaign stats reproducible" true (a = b)

(* ---------------- planted scheduler bug ---------------- *)

let chaos = Pvsched.Sched.Drop_fanin_token

let test_planted_bug_caught_and_shrunk () =
  let prog, fn_pool = Gen.node_program ~seed:7 ~count:6 in
  let cfg =
    {
      K.cprocs = 6;
      ctokens = 2;
      cfanin = 3;
      cfanout = 40;
      cfeedback = 0;
      ccapacity = 4;
      cnet_seed = 0;
    }
  in
  let net = K.generate ~fn_pool cfg in
  let ms = K.check ~chaos ~prog net in
  check bool_t "planted bug caught" true (ms <> []);
  (* the dropped token must be visible to the Kahn oracles *)
  check bool_t "determinism or conservation flagged" true
    (List.exists
       (fun m ->
         let w = m.Pvcheck.Oracle.what in
         w = "determinism" || w = "conservation" || w = "completion"
         || w = "residual" || w = "deadlock")
       ms);
  (* clean scheduler on the same net: no mismatch, so the finding is
     really the planted bug and not a generator artifact *)
  check int_t "net is clean without chaos" 0 (List.length (K.check ~prog net));
  let pred nn = K.check ~chaos ~prog nn <> [] in
  let minimal = K.shrink_net ~pred net in
  check bool_t "still failing after shrink" true (pred minimal);
  check bool_t "shrunk to <= 5 processes" true
    (List.length minimal.K.nodes <= 5);
  check bool_t "shrinking made progress" true
    (List.length minimal.K.nodes < List.length net.K.nodes)

let test_guided_beats_uniform () =
  (* Fresh configs cap data fan-in at 2, and the planted bug needs a
     data fan-in >= 3 join — reachable only by corpus mutation.  So the
     coverage-guided campaign must find the bug and uniform sampling
     must not (or only later). *)
  let guided, _ = K.campaign ~guided:true ~chaos ~seed:5 ~count:200 () in
  let uniform, _ = K.campaign ~guided:false ~chaos ~seed:5 ~count:200 () in
  (match guided with
  | [] -> Alcotest.fail "guided campaign missed the planted bug"
  | f :: _ ->
    check bool_t "guided reached the buggy shape" true (f.K.kcase < 200);
    (match uniform with
    | [] -> () (* uniform never reached fan-in >= 3: strictly worse *)
    | u :: _ ->
      check bool_t "guided found it in fewer cases" true (f.K.kcase < u.K.kcase)));
  ()

(* ---------------- fuel regression ---------------- *)

let engines =
  [
    ("tw", Pvvm.Interp.Tree_walk);
    ("th", Pvvm.Interp.Threaded);
    ("aot", Pvvm.Interp.Aot);
  ]

let run_with_fuel ~fuel ~engine prog =
  if engine = Pvvm.Interp.Aot then Pvaot.install ();
  let it = Pvvm.Interp.create ~engine ~fuel (Pvvm.Image.load (Pvir.Prog.copy prog)) in
  match Pvvm.Interp.run it "main" [] with
  | Some v -> Ok (Pvir.Value.to_string v)
  | None -> Ok "(none)"
  | exception Pvvm.Interp.Trap m -> Error m

let test_recursive_fuel_regression () =
  for seed = 0 to 4 do
    let prog = Gen.program_recursive ~seed in
    (* generous fuel: the generated fuel counter bounds the recursion,
       so every engine terminates with the same value *)
    let ok =
      List.map (fun (tag, e) -> (tag, run_with_fuel ~fuel:100_000_000L ~engine:e prog))
        engines
    in
    (match ok with
    | (_, r0) :: rest ->
      (match r0 with
      | Ok _ -> ()
      | Error m ->
        Alcotest.failf "recursive seed %d trapped under full fuel: %s" seed m);
      List.iter
        (fun (tag, r) ->
          check bool_t
            (Printf.sprintf "seed %d engine %s agrees" seed tag)
            true (r = r0))
        rest
    | [] -> ());
    (* starved fuel: the canonical fuel-exhaustion trap, byte-identical
       on every engine *)
    List.iter
      (fun (tag, e) ->
        match run_with_fuel ~fuel:3L ~engine:e prog with
        | Error m ->
          check string_t
            (Printf.sprintf "seed %d engine %s canonical trap" seed tag)
            Pvvm.Interp.fuel_exhausted_msg m
        | Ok v ->
          Alcotest.failf "seed %d engine %s finished (%s) on 3 fuel" seed tag v)
      engines
  done

let () =
  Alcotest.run "kpn-fuzz"
    [
      ( "gen",
        [
          Alcotest.test_case "recursive deterministic" `Quick
            test_recursive_gen_deterministic;
          Alcotest.test_case "kpn deterministic" `Quick
            test_kpn_gen_deterministic;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "short clean campaign" `Quick
            test_short_clean_campaign;
          Alcotest.test_case "pinned seed reproducible" `Quick
            test_campaign_pinned_seed_reproducible;
        ] );
      ( "planted-bug",
        [
          Alcotest.test_case "caught and shrunk" `Quick
            test_planted_bug_caught_and_shrunk;
          Alcotest.test_case "guided beats uniform" `Quick
            test_guided_beats_uniform;
        ] );
      ( "fuel",
        [
          Alcotest.test_case "recursive fuel regression" `Quick
            test_recursive_fuel_regression;
        ] );
    ]
