(* Tier-1 tests for the deterministic sampling profiler (lib/pvprof).

   The laws under test:

   - zero observer effect: attaching a sampler changes nothing portable
     (result/output/globals) and no accounting counter, on all three
     interpreter engines, over the Table-1 kernels and a pinned corpus
     of generated programs;
   - cross-engine sample agreement: the three engines take byte-identical
     sample streams (canonical Profdata encodings compared);
   - the PVPF codec is hardened: round-trips exactly, rejects every
     truncation, and never crashes on seeded byte flips;
   - the feedback edge closes: sampled hotness annotations are valid
     under the device's annotation checker and survive distribution;
   - the telemetry exports hold their invariants: bounded retention,
     ordered sample events in validated Chrome traces, Prometheus
     round-trip, quantile estimation. *)

open Pvkernels

let () = Pvaot.install ()

(* a deliberately skewed two-function program: [hot] burns ~100x the
   cycles of [cold], so every sensible profile ranks hot > cold *)
let hot_cold_src =
  {|
i32 cold(i32 n) {
  i32 s = 0;
  for (i32 i = 0; i < n; i = i + 1) { s = s + i; }
  return s;
}
i32 hot(i32 n) {
  i32 s = 0;
  for (i32 i = 0; i < n; i = i + 1) { s = s + i * 3 - (s / 7); }
  return s;
}
i32 main() {
  i32 a = cold(40);
  i32 b = hot(4000);
  return a + b;
}
|}

let compile_src src = Core.Splitc.frontend ~name:"profiled" src

let run_sampled ?(period = 64L) ?(engine = Pvvm.Interp.Threaded)
    ?(entry = "main") ?(args = []) prog =
  let img = Pvvm.Image.load (Pvir.Prog.copy prog) in
  Harness.fill_inputs img;
  let sampler = Pvprof.create ~period () in
  let it = Pvvm.Interp.create ~engine ~sampler img in
  ignore (Pvvm.Interp.run it entry args);
  sampler

(* ---------------- codec: round-trip + hardening ---------------- *)

let sample_profile () =
  let prog = compile_src hot_cold_src in
  run_sampled ~period:16L prog

let test_codec_roundtrip () =
  let s = sample_profile () in
  let d = Pvprof.to_data s in
  let bytes = Pvir.Profdata.encode d in
  let d' = Pvir.Profdata.decode bytes in
  Alcotest.(check bool) "round-trip equal" true (d = d');
  (* canonical: re-encode is byte-identical *)
  Alcotest.(check string) "canonical" bytes (Pvir.Profdata.encode d');
  Alcotest.(check bool) "has samples" true (d.Pvir.Profdata.pf_samples > 0)

let test_codec_truncations () =
  let bytes = Pvir.Profdata.encode (Pvprof.to_data (sample_profile ())) in
  for n = 0 to String.length bytes - 1 do
    match Pvir.Profdata.decode_result (String.sub bytes 0 n) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" n
  done

let test_codec_byte_flips () =
  let bytes = Pvir.Profdata.encode (Pvprof.to_data (sample_profile ())) in
  let n = String.length bytes in
  let rng = ref 0x9E3779B97F4A7C15L in
  let next () =
    (* splitmix64 step, the repo's seeded-fuzz idiom *)
    rng := Int64.add !rng 0x9E3779B97F4A7C15L;
    let z = !rng in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  for _ = 1 to 2000 do
    let pos = Int64.to_int (Int64.unsigned_rem (next ()) (Int64.of_int n)) in
    let bit = Int64.to_int (Int64.unsigned_rem (next ()) 8L) in
    let b = Bytes.of_string bytes in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    (* must never raise anything but the structured rejection *)
    match Pvir.Profdata.decode_result (Bytes.to_string b) with
    | Error _ | Ok _ -> ()
  done

let test_codec_rejects_bad_weights () =
  (* a hand-built profile with a zero weight must not encode-then-decode:
     the decoder enforces strictly positive weights *)
  let d =
    {
      Pvir.Profdata.pf_period = 64L;
      pf_total = 10L;
      pf_samples = 1;
      pf_fns = [ ("f", 0L) ];
      pf_blocks = [];
      pf_stacks = [];
    }
  in
  match Pvir.Profdata.decode_result (Pvir.Profdata.encode d) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero weight decoded"

(* ---------------- observer effect + cross-engine agreement -------- *)

(* pinned corpus, same shape as the AOT suite's *)
let corpus_seeds = List.init 25 (fun i -> i)

let test_corpus_seed seed () =
  let prog = Pvcheck.Gen.program ~seed in
  match Pvcheck.Profcheck.check prog with
  | [] -> ()
  | m :: _ ->
    Alcotest.failf "seed %d: %s on %s: %s" seed m.Pvcheck.Oracle.what
      m.Pvcheck.Oracle.path m.Pvcheck.Oracle.detail

let test_kernel_identity (k : Kernels.t) () =
  List.iter
    (fun engine ->
      let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
      let run sampled =
        let img = Pvvm.Image.load (Pvir.Prog.copy p) in
        Harness.fill_inputs img;
        let it =
          if sampled then
            Pvvm.Interp.create ~engine ~sampler:(Pvprof.create ~period:256L ())
              img
          else Pvvm.Interp.create ~engine img
        in
        let result =
          Pvvm.Interp.run it k.Kernels.entry (Harness.args k 256)
        in
        ( {
            Harness.result;
            globals = Harness.observe_globals img;
            printed = Pvvm.Interp.output it;
          },
          it.Pvvm.Interp.stats )
      in
      let obs_p, st_p = run false in
      let obs_s, st_s = run true in
      Alcotest.(check bool)
        (k.Kernels.name ^ ": observation") true
        (Harness.observation_equal obs_p obs_s);
      Alcotest.(check int64)
        (k.Kernels.name ^ ": cycles")
        st_p.Pvvm.Interp.cycles st_s.Pvvm.Interp.cycles;
      Alcotest.(check int64)
        (k.Kernels.name ^ ": instrs")
        st_p.Pvvm.Interp.instrs st_s.Pvvm.Interp.instrs;
      Alcotest.(check int)
        (k.Kernels.name ^ ": calls")
        st_p.Pvvm.Interp.calls st_s.Pvvm.Interp.calls)
    [ Pvvm.Interp.Tree_walk; Pvvm.Interp.Threaded; Pvvm.Interp.Aot ]

(* ---------------- rankings ---------------- *)

let test_hot_cold_ranking () =
  let prog = compile_src hot_cold_src in
  let s = run_sampled ~period:16L prog in
  (match Pvprof.fn_ranking s with
  | (top, _) :: _ ->
    Alcotest.(check string) "hottest function" "hot" top
  | [] -> Alcotest.fail "no samples taken");
  Alcotest.(check bool) "hot outweighs cold" true
    (Int64.compare (Pvprof.fn_weight s "hot") (Pvprof.fn_weight s "cold") > 0);
  (* the folded stacks reach main: every sampled stack is rooted there *)
  let collapsed = Pvprof.to_collapsed s in
  Alcotest.(check bool) "stacks rooted in main" true
    (String.length collapsed > 0
    && List.for_all
         (fun line -> line = "" || String.length line > 5)
         (String.split_on_char '\n' collapsed))

(* the sampled function ranking must agree with the exhaustive profiler's
   visit-weight ranking on the Table-1 kernels (each is dominated by one
   hot kernel function, so cycle weight and visit weight order alike) *)
let test_table1_ranking_matches (k : Kernels.t) () =
  let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
  (* exhaustive run *)
  let img_e = Pvvm.Image.load (Pvir.Prog.copy p) in
  Harness.fill_inputs img_e;
  let profile = Pvvm.Profile.create () in
  let it_e = Pvvm.Interp.create ~profile img_e in
  ignore (Pvvm.Interp.run it_e k.Kernels.entry (Harness.args k 256));
  (* sampled run *)
  let s = run_sampled ~period:256L ~entry:k.Kernels.entry
      ~args:(Harness.args k 256) p
  in
  let exhaustive_top =
    List.fold_left
      (fun acc (fn : Pvir.Func.t) ->
        let w = Pvvm.Profile.weight profile fn.Pvir.Func.name in
        match acc with
        | Some (_, best) when best >= w -> acc
        | _ -> Some (fn.Pvir.Func.name, w))
      None p.Pvir.Prog.funcs
  in
  match (exhaustive_top, Pvprof.fn_ranking s) with
  | Some (ename, _), (sname, _) :: _ ->
    Alcotest.(check string)
      (k.Kernels.name ^ ": hottest function agrees")
      ename sname
  | _ -> Alcotest.failf "%s: no profile data" k.Kernels.name

(* ---------------- feedback edge: annotations ---------------- *)

let test_annotations_valid () =
  let prog = compile_src hot_cold_src in
  let s = run_sampled ~period:16L prog in
  Pvprof.to_annotations s prog;
  List.iter
    (fun (fn : Pvir.Func.t) ->
      (match Pvjit.Annot_check.check_hotness fn with
      | Pvjit.Annot_check.Valid -> ()
      | Pvjit.Annot_check.Absent ->
        Alcotest.failf "%s: hotness absent" fn.Pvir.Func.name
      | Pvjit.Annot_check.Invalid r ->
        Alcotest.failf "%s: %s" fn.Pvir.Func.name r);
      match Pvjit.Annot_check.check_func fn with
      | Pvjit.Annot_check.Invalid r ->
        Alcotest.failf "%s: check_func: %s" fn.Pvir.Func.name r
      | _ -> ())
    prog.Pvir.Prog.funcs;
  (* fractions sum to ~1 over the program *)
  let total =
    List.fold_left
      (fun acc (fn : Pvir.Func.t) ->
        match Pvir.Annot.find Pvir.Annot.key_hotness fn.Pvir.Func.annots with
        | Some (Pvir.Annot.Flt h) -> acc +. h
        | _ -> acc)
      0.0 prog.Pvir.Prog.funcs
  in
  Alcotest.(check bool) "fractions sum to 1" true (abs_float (total -. 1.0) < 1e-9)

let test_check_hotness_rejects () =
  let prog = compile_src hot_cold_src in
  let fn = List.hd prog.Pvir.Prog.funcs in
  fn.Pvir.Func.annots <-
    Pvir.Annot.add Pvir.Annot.key_hotness (Pvir.Annot.Flt 1.5)
      fn.Pvir.Func.annots;
  (match Pvjit.Annot_check.check_hotness fn with
  | Pvjit.Annot_check.Invalid _ -> ()
  | _ -> Alcotest.fail "hotness 1.5 accepted");
  fn.Pvir.Func.annots <-
    Pvir.Annot.add Pvir.Annot.key_hotness (Pvir.Annot.Int 3)
      fn.Pvir.Func.annots;
  match Pvjit.Annot_check.check_func fn with
  | Pvjit.Annot_check.Invalid _ -> ()
  | _ -> Alcotest.fail "non-float hotness accepted"

(* the full pvsc --profile-in shape, at the API level: sampled run ->
   PVPF bytes -> annotate the linked program -> distribute -> decode on
   the device -> annotations still present and valid *)
let test_profile_in_roundtrip () =
  let prog = compile_src hot_cold_src in
  let s = run_sampled ~period:16L (Pvir.Prog.copy prog) in
  let bytes = Pvir.Profdata.encode (Pvprof.to_data s) in
  let data = Pvir.Profdata.decode bytes in
  Pvir.Profdata.annotate data prog;
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split prog in
  let shipped = Core.Splitc.distribute off in
  let device = Pvir.Serial.decode shipped in
  List.iter
    (fun (fn : Pvir.Func.t) ->
      match Pvjit.Annot_check.check_hotness fn with
      | Pvjit.Annot_check.Valid -> ()
      | Pvjit.Annot_check.Absent ->
        Alcotest.failf "%s: hotness lost in distribution" fn.Pvir.Func.name
      | Pvjit.Annot_check.Invalid r ->
        Alcotest.failf "%s: %s" fn.Pvir.Func.name r)
    device.Pvir.Prog.funcs

(* ---------------- adaptive: profile-guided generation ---------------- *)

let test_generations_sampled () =
  let prog = compile_src hot_cold_src in
  let bytecode =
    Core.Splitc.distribute
      (Core.Splitc.offline ~mode:Core.Splitc.Pure_online prog)
  in
  let gens, hot =
    Core.Adaptive.generations_sampled ~period:16L
      ~machine:Pvmach.Machine.x86ish
      ~prepare:(fun _ -> ())
      ~entry:"main" ~args:[] bytecode
  in
  Alcotest.(check int) "three generations" 3 (List.length gens);
  Alcotest.(check bool) "hot set nonempty" true (hot <> []);
  Alcotest.(check string) "hot set starts with hot" "hot" (List.hd hot)

(* ---------------- trace + retention ---------------- *)

let test_trace_merge_validates () =
  let prog = compile_src hot_cold_src in
  let tr = Pvtrace.Trace.create () in
  let img = Pvvm.Image.load (Pvir.Prog.copy prog) in
  let sampler = Pvprof.create ~period:16L () in
  let it = Pvvm.Interp.create ~sampler ~tr img in
  ignore (Pvvm.Interp.run it "main" []);
  Pvprof.to_trace sampler tr;
  let json = Pvtrace.Export.chrome_json tr in
  (match Pvtrace.Export.validate_chrome json with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "merged trace invalid: %s" m);
  Alcotest.(check bool) "instants present" true
    (Pvprof.samples_taken sampler > 0)

let test_out_of_order_samples_rejected () =
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.instant_at tr ~ts:100L ~tid:Pvtrace.Trace.track_prof
    ~cat:"sample" "f:b0";
  Pvtrace.Trace.instant_at tr ~ts:50L ~tid:Pvtrace.Trace.track_prof
    ~cat:"sample" "f:b1";
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  match Pvtrace.Export.validate_chrome (Pvtrace.Export.chrome_json tr) with
  | Error m ->
    Alcotest.(check bool) "names the disorder" true (contains m "out of order")
  | Ok _ -> Alcotest.fail "out-of-order samples validated"

let test_sample_span_rejected () =
  (* a span event claiming the sample category is not a legal export *)
  let tr = Pvtrace.Trace.create () in
  Pvtrace.Trace.begin_span tr ~cat:"sample" "bogus";
  Pvtrace.Trace.end_span tr "bogus";
  match Pvtrace.Export.validate_chrome (Pvtrace.Export.chrome_json tr) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sample-category span validated"

let test_bounded_retention () =
  let s = Pvprof.create ~period:1L ~cap:16 () in
  (* feed a long synthetic run straight through the sampling entry *)
  for i = 1 to 10_000 do
    Pvprof.sample s
      ~cycles:(Int64.of_int (i * 7))
      ~stack:[ "f" ] ~fn:"f" ~block:(i mod 3)
  done;
  let kept = Pvprof.kept_samples s in
  Alcotest.(check bool) "bounded" true (List.length kept <= 16);
  Alcotest.(check int) "all samples counted" 10_000 (Pvprof.samples_taken s);
  (* retention is a decimation: kept indices are strictly increasing *)
  let rec increasing = function
    | a :: (b :: _ as tl) -> a.Pvprof.s_idx < b.Pvprof.s_idx && increasing tl
    | _ -> true
  in
  Alcotest.(check bool) "ordered" true (increasing kept)

(* ---------------- metrics: Prometheus + quantiles ---------------- *)

let test_prom_roundtrip () =
  let m = Pvtrace.Metrics.create () in
  Pvtrace.Metrics.inc m "interp.cycles" 12345L;
  Pvtrace.Metrics.set m "fuel.headroom" (-7L);
  List.iter
    (fun v -> Pvtrace.Metrics.observe m "span.dur" v)
    [ 1L; 3L; 3L; 90L; 5000L ];
  let text = Pvtrace.Metrics.to_prom m in
  match Pvtrace.Metrics.of_prom text with
  | Error e -> Alcotest.failf "of_prom failed: %s" e
  | Ok m' ->
    Alcotest.(check string) "round-trip law" text (Pvtrace.Metrics.to_prom m');
    Alcotest.(check (option int64)) "counter" (Some 12345L)
      (Pvtrace.Metrics.value m' "interp_cycles");
    Alcotest.(check int) "hist count" 5
      (Pvtrace.Metrics.hist_count m' "span_dur")

let test_prom_rejects_garbage () =
  List.iter
    (fun text ->
      match Pvtrace.Metrics.of_prom text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" text)
    [
      "pv_x 1";  (* sample without TYPE *)
      "# TYPE pv_x widget\npv_x 1";  (* unknown kind *)
      "# TYPE pv_x counter\npv_x noise";  (* malformed number *)
      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
       h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5";  (* non-cumulative *)
      "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\n\
       h_sum 1";  (* missing _count *)
    ]

let test_quantiles () =
  let m = Pvtrace.Metrics.create () in
  let bounds = Array.init 10 (fun i -> Int64.of_int ((i + 1) * 10)) in
  (* uniform: one observation per bucket midpoint *)
  Array.iter
    (fun b -> Pvtrace.Metrics.observe m ~bounds "u" (Int64.sub b 5L))
    bounds;
  let q x =
    match Pvtrace.Metrics.quantile m "u" x with
    | Some v -> v
    | None -> Alcotest.fail "no quantile"
  in
  (* p50 of 10 uniform observations in (0,100] sits at the 5th bucket *)
  Alcotest.(check bool) "p50 in range" true (q 0.5 >= 40.0 && q 0.5 <= 60.0);
  Alcotest.(check bool) "p90 in range" true (q 0.9 >= 80.0 && q 0.9 <= 95.0);
  Alcotest.(check bool) "monotone" true (q 0.5 <= q 0.9 && q 0.9 <= q 0.99);
  (* overflow clamps to the highest finite bound *)
  Pvtrace.Metrics.observe m ~bounds "o" 1_000_000L;
  (match Pvtrace.Metrics.quantile m "o" 0.99 with
  | Some v -> Alcotest.(check (float 0.001)) "overflow clamps" 100.0 v
  | None -> Alcotest.fail "no overflow quantile");
  (* empty/missing -> None *)
  Alcotest.(check bool) "missing is None" true
    (Pvtrace.Metrics.quantile m "absent" 0.5 = None)

(* ---------------- registration ---------------- *)

let () =
  Alcotest.run "pvprof"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "exhaustive truncations" `Quick
            test_codec_truncations;
          Alcotest.test_case "seeded byte flips" `Quick test_codec_byte_flips;
          Alcotest.test_case "rejects non-positive weights" `Quick
            test_codec_rejects_bad_weights;
        ] );
      ( "identity",
        Alcotest.test_case "table1 kernels x 3 engines" `Quick (fun () ->
            List.iter (fun k -> test_kernel_identity k ()) Kernels.table1)
        :: List.map
             (fun seed ->
               Alcotest.test_case
                 (Printf.sprintf "corpus seed %d" seed)
                 `Quick (test_corpus_seed seed))
             corpus_seeds );
      ( "ranking",
        Alcotest.test_case "hot/cold program" `Quick test_hot_cold_ranking
        :: List.map
             (fun (k : Kernels.t) ->
               Alcotest.test_case
                 ("table1 " ^ k.Kernels.name)
                 `Quick (test_table1_ranking_matches k))
             Kernels.table1 );
      ( "feedback",
        [
          Alcotest.test_case "annotations valid" `Quick test_annotations_valid;
          Alcotest.test_case "checker rejects bad hotness" `Quick
            test_check_hotness_rejects;
          Alcotest.test_case "profile-in round-trip" `Quick
            test_profile_in_roundtrip;
          Alcotest.test_case "generations_sampled" `Quick
            test_generations_sampled;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "trace merge validates" `Quick
            test_trace_merge_validates;
          Alcotest.test_case "out-of-order samples rejected" `Quick
            test_out_of_order_samples_rejected;
          Alcotest.test_case "sample-category span rejected" `Quick
            test_sample_span_rejected;
          Alcotest.test_case "bounded retention" `Quick test_bounded_retention;
          Alcotest.test_case "prometheus round-trip" `Quick test_prom_roundtrip;
          Alcotest.test_case "prometheus rejects garbage" `Quick
            test_prom_rejects_garbage;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
        ] );
    ]
