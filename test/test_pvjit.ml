(* Unit tests for the online compiler: lowering, legalization,
   immediate folding, register allocation, peephole — validated by
   simulating the produced MIR and comparing against the interpreter. *)

open Pvmach

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* compile [src] for [machine] with [hints]; return (img, sim, reports) *)
let compile ?(mode = Core.Splitc.Split) ?(hints = Pvjit.Jit.Hints_annotation)
    ~machine src =
  let p = Core.Splitc.frontend src in
  let off = Core.Splitc.offline ~mode p in
  let prog = Pvir.Serial.decode (Core.Splitc.distribute off) in
  let img = Pvvm.Image.load prog in
  let sim, report = Pvjit.Jit.compile_program ~machine ~hints img in
  (img, sim, report)

(* reference interpretation of the same source *)
let interp_result src entry args =
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  Pvkernels.Harness.fill_inputs img;
  let it = Pvvm.Interp.create img in
  let r = Pvvm.Interp.run it entry args in
  (r, Pvvm.Interp.output it)

let jit_matches_interp ?mode ?hints ~machine src entry args =
  let r0, out0 = interp_result src entry args in
  let img, sim, _ = compile ?mode ?hints ~machine src in
  Pvkernels.Harness.fill_inputs img;
  let r = Pvvm.Sim.run sim entry args in
  check Alcotest.string "output" out0 (Pvvm.Sim.output sim);
  match (r0, r) with
  | None, None -> ()
  | Some a, Some b ->
    check bool_t
      (Printf.sprintf "result on %s" machine.Machine.name)
      true (Pvir.Value.equal a b)
  | _ -> Alcotest.fail "result presence mismatch"

(* ---------------- lowering ---------------- *)

let test_lower_shapes () =
  let src = "i64 main(i64 a, i64 b) { return a * b + 7; }" in
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  let fn = Pvir.Prog.find_func_exn p "main" in
  let mf =
    Pvjit.Lower.run ~machine:Machine.x86ish
      ~resolve_global:(Pvvm.Image.global_address img)
      fn
  in
  check bool_t "same block count" true
    (List.length mf.Mir.mblocks = List.length fn.Pvir.Func.blocks);
  check bool_t "has mul" true
    (List.exists
       (fun (b : Mir.block) ->
         List.exists
           (fun (i : Mir.inst) ->
             match i.Mir.op with Mir.Mbin Pvir.Instr.Mul -> true | _ -> false)
           b.Mir.insts)
       mf.Mir.mblocks)

let test_lower_gaddr_resolved () =
  let src = "i32 g = 7; i64 main() { return (i64)g; }" in
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  let fn = Pvir.Prog.find_func_exn p "main" in
  let mf =
    Pvjit.Lower.run ~machine:Machine.x86ish
      ~resolve_global:(Pvvm.Image.global_address img)
      fn
  in
  (* the global's address appears as an immediate load *)
  let addr = Pvvm.Image.global_address img "g" in
  let found =
    List.exists
      (fun (b : Mir.block) ->
        List.exists
          (fun (i : Mir.inst) ->
            match i.Mir.op with
            | Mir.Mli v -> (
              match v with
              | Pvir.Value.Int (_, x) -> Int64.to_int x = addr
              | _ -> false)
            | _ -> false)
          b.Mir.insts)
      mf.Mir.mblocks
  in
  check bool_t "address burned in" true found

let test_lower_alloca_frame () =
  let src = "i64 main() { i32 t[10]; t[0] = 1; return (i64)t[0]; }" in
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  let fn = Pvir.Prog.find_func_exn p "main" in
  let mf =
    Pvjit.Lower.run ~machine:Machine.x86ish
      ~resolve_global:(Pvvm.Image.global_address img)
      fn
  in
  check bool_t "frame covers alloca" true (mf.Mir.frame_size >= 40)

let test_calling_convention_stack_args () =
  (* 9 parameters on a machine with arg_regs = 3: the rest arrive in
     frame slots, and the function still computes correctly *)
  let src =
    {|
i64 f(i64 a, i64 b, i64 c, i64 d, i64 e, i64 g, i64 h, i64 i, i64 j) {
  return a + 2*b + 3*c + 4*d + 5*e + 6*g + 7*h + 8*i + 9*j;
}
|}
  in
  let machine = Machine.x86ish in
  check int_t "x86ish passes 3 in regs" 3 (Machine.arg_regs machine);
  let img, sim, _ = compile ~machine src in
  ignore img;
  let args = List.init 9 (fun i -> Pvir.Value.i64 (Int64.of_int (i + 1))) in
  (* 1+4+9+16+25+36+49+64+81 = 285 *)
  match Pvvm.Sim.run sim "f" args with
  | Some v ->
    check bool_t "stack args work" true (Pvir.Value.equal v (Pvir.Value.i64 285L))
  | None -> Alcotest.fail "no result"

(* ---------------- legalize ---------------- *)

let vec_src =
  {|
u8 a[128]; u8 b[128];
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { b[i] = a[i] + b[i]; } }
|}

let compile_mir ~machine src fname =
  let p = Core.Splitc.frontend src in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  let img = Pvvm.Image.load off.Core.Splitc.prog in
  let fn = Pvir.Prog.find_func_exn off.Core.Splitc.prog fname in
  let mf =
    Pvjit.Lower.run ~machine ~resolve_global:(Pvvm.Image.global_address img) fn
  in
  (img, mf)

let has_vector_inst (mf : Mir.func) =
  List.exists
    (fun (b : Mir.block) ->
      List.exists
        (fun (i : Mir.inst) -> Pvir.Types.is_vector i.Mir.ty)
        b.Mir.insts)
    mf.Mir.mblocks

let test_legalize_keeps_simd () =
  let _, mf = compile_mir ~machine:Machine.x86ish vec_src "f" in
  check bool_t "vector before" true (has_vector_inst mf);
  ignore (Pvjit.Legalize.run mf);
  check bool_t "vector kept on SIMD machine" true (has_vector_inst mf)

let test_legalize_scalarizes () =
  let _, mf = compile_mir ~machine:Machine.sparcish vec_src "f" in
  let before = Mir.size mf in
  ignore (Pvjit.Legalize.run mf);
  check bool_t "no vector left" false (has_vector_inst mf);
  check bool_t "code expanded" true (Mir.size mf > before)

let test_legalize_execution_equal () =
  (* scalarized code must compute the same result *)
  List.iter
    (fun machine ->
      jit_matches_interp ~machine vec_src "f" [ Pvir.Value.i64 100L ])
    [ Machine.sparcish; Machine.ppcish; Machine.uchost ]

(* ---------------- immfold ---------------- *)

let test_immfold_folds_and_shrinks () =
  let src = "i64 main(i64 n) { return n + 123; }" in
  let p = Core.Splitc.frontend src in
  Pvopt.Passes.cleanup p;
  let img = Pvvm.Image.load p in
  let fn = Pvir.Prog.find_func_exn p "main" in
  let mf =
    Pvjit.Lower.run ~machine:Machine.x86ish
      ~resolve_global:(Pvvm.Image.global_address img)
      fn
  in
  let before = Mir.size mf in
  let folded = Pvjit.Immfold.run mf in
  check bool_t "folded something" true (folded > 0);
  check bool_t "code shrank" true (Mir.size mf < before);
  (* the add now carries an immediate *)
  let has_imm_add =
    List.exists
      (fun (b : Mir.block) ->
        List.exists
          (fun (i : Mir.inst) ->
            match (i.Mir.op, i.Mir.imm) with
            | Mir.Mbin Pvir.Instr.Add, Some _ -> true
            | _ -> false)
          b.Mir.insts)
      mf.Mir.mblocks
  in
  check bool_t "imm add" true has_imm_add

let test_immfold_keeps_semantics () =
  jit_matches_interp ~machine:Machine.x86ish
    "i64 main(i64 n) { return (n + 5) * 3 - 100; }" "main"
    [ Pvir.Value.i64 9L ]

(* ---------------- register allocation ---------------- *)

let test_regalloc_all_physical () =
  let src = "i64 main(i64 a, i64 b) { return a * 2 + b; }" in
  let _, mf = compile_mir ~machine:Machine.x86ish src "main" in
  ignore (Pvjit.Immfold.run mf);
  let stats = Pvjit.Regalloc.run ~quality:Pvjit.Regalloc.Heuristic mf in
  check int_t "no spills needed" 0 stats.Pvjit.Regalloc.spilled_regs;
  (* every register must now be physical *)
  let all_physical = ref true in
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (i : Mir.inst) ->
          List.iter
            (fun r -> match r with Mir.V _ -> all_physical := false | _ -> ())
            (Mir.inst_uses i);
          match Mir.inst_def i with
          | Some (Mir.V _) -> all_physical := false
          | _ -> ())
        b.Mir.insts)
    mf.Mir.mblocks;
  check bool_t "all physical" true !all_physical

let test_regalloc_respects_register_count () =
  let src = Pvkernels.Kernels.poly8.Pvkernels.Kernels.source in
  let _, mf = compile_mir ~machine:Machine.x86ish src "poly8" in
  ignore (Pvjit.Legalize.run mf);
  ignore (Pvjit.Immfold.run mf);
  ignore (Pvjit.Regalloc.run ~quality:Pvjit.Regalloc.Heuristic mf);
  let max_gpr = ref (-1) in
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (i : Mir.inst) ->
          List.iter
            (fun r ->
              match r with
              | Mir.P (Mir.Gpr, k) -> max_gpr := max !max_gpr k
              | _ -> ())
            (Mir.inst_uses i
            @ match Mir.inst_def i with Some d -> [ d ] | None -> []))
        b.Mir.insts)
    mf.Mir.mblocks;
  check bool_t "gpr indices within machine" true
    (!max_gpr < Machine.x86ish.Machine.int_regs)

let test_regalloc_spills_under_pressure () =
  let src = Pvkernels.Kernels.poly8.Pvkernels.Kernels.source in
  let _, mf = compile_mir ~machine:Machine.x86ish src "poly8" in
  ignore (Pvjit.Legalize.run mf);
  ignore (Pvjit.Immfold.run mf);
  let stats = Pvjit.Regalloc.run ~quality:Pvjit.Regalloc.Heuristic mf in
  check bool_t "spills happened" true (stats.Pvjit.Regalloc.spilled_regs > 0);
  check bool_t "spill code inserted" true (stats.Pvjit.Regalloc.spill_instrs > 0)

let test_regalloc_weights_beat_heuristic () =
  (* the E3 setup: scalar bytecode + offline spill-order annotations on
     the register-poor target.  Annotation-guided allocation must beat
     the blind heuristic on dynamic spill traffic, and must exactly match
     the quality of weights recomputed online. *)
  let k = Pvkernels.Kernels.poly8 in
  let machine = Machine.x86ish in
  let p = Core.Splitc.frontend k.Pvkernels.Kernels.source in
  Pvopt.Passes.offline_traditional p;
  Pvopt.Regalloc_annotate.run p;
  let bc = Pvir.Serial.encode p in
  let spills hints =
    let img = Pvvm.Image.load (Pvir.Serial.decode bc) in
    let sim, _ = Pvjit.Jit.compile_program ~machine ~hints img in
    Pvkernels.Harness.fill_inputs img;
    ignore (Pvvm.Sim.run sim "poly8" (Pvkernels.Harness.args k 256));
    sim.Pvvm.Sim.stats.Pvvm.Sim.spill_ops
  in
  let none = spills Pvjit.Jit.Hints_none in
  let annot = spills Pvjit.Jit.Hints_annotation in
  let recomputed = spills Pvjit.Jit.Hints_recompute in
  check bool_t "pressure kernel spills" true (Int64.compare none 0L > 0);
  check bool_t "annotation < blind" true (Int64.compare annot none < 0);
  check bool_t "annotation == recomputed quality" true
    (Int64.equal annot recomputed)

let test_regalloc_correct_under_spills () =
  (* execution equality for the pressure kernel on every machine *)
  List.iter
    (fun machine ->
      let k = Pvkernels.Kernels.poly8 in
      let r0, _ = interp_result k.Pvkernels.Kernels.source "poly8"
          (Pvkernels.Harness.args k 64) in
      let r =
        Pvkernels.Harness.run_jit ~n:64 ~mode:Core.Splitc.Split ~machine k
      in
      match (r0, r.Pvkernels.Harness.obs.Pvkernels.Harness.result) with
      | None, None -> ()
      | Some a, Some b ->
        check bool_t "equal" true (Pvir.Value.equal a b)
      | _ -> Alcotest.fail "presence mismatch")
    [ Machine.x86ish; Machine.uchost ]

(* ---------------- peephole ---------------- *)

let test_peephole_removes_self_movs () =
  let mf =
    {
      Mir.mname = "t";
      mparams = [];
      marg_slots = [];
      mret = None;
      mblocks =
        [
          {
            Mir.mlabel = 0;
            insts =
              [
                Mir.inst ~dst:(Mir.P (Mir.Gpr, 1)) ~srcs:[ Mir.P (Mir.Gpr, 1) ]
                  Mir.Mmov Pvir.Types.i64;
                Mir.inst ~dst:(Mir.P (Mir.Gpr, 2)) ~srcs:[ Mir.P (Mir.Gpr, 1) ]
                  Mir.Mmov Pvir.Types.i64;
              ];
            mterm = Mir.Tret None;
          };
        ];
      frame_size = 0;
      vreg_ty = Hashtbl.create 1;
      next_vreg = 0;
      target = Machine.x86ish;
      mblock_index = None;
    }
  in
  let removed = Pvjit.Peephole.run mf in
  check int_t "one mov removed" 1 removed;
  check int_t "one inst left" 1 (List.length (List.hd mf.Mir.mblocks).Mir.insts)

let test_peephole_store_load_forward () =
  let slot = 0 in
  let mf =
    {
      Mir.mname = "t";
      mparams = [];
      marg_slots = [];
      mret = None;
      mblocks =
        [
          {
            Mir.mlabel = 0;
            insts =
              [
                Mir.inst ~srcs:[ Mir.P (Mir.Gpr, 1) ] (Mir.Mframe_st slot)
                  Pvir.Types.i64;
                Mir.inst ~dst:(Mir.P (Mir.Gpr, 2)) (Mir.Mframe_ld slot)
                  Pvir.Types.i64;
              ];
            mterm = Mir.Tret None;
          };
        ];
      frame_size = 8;
      vreg_ty = Hashtbl.create 1;
      next_vreg = 0;
      target = Machine.x86ish;
      mblock_index = None;
    }
  in
  let removed = Pvjit.Peephole.run mf in
  check bool_t "forwarded" true (removed > 0);
  let has_reload =
    List.exists
      (fun (i : Mir.inst) ->
        match i.Mir.op with Mir.Mframe_ld _ -> true | _ -> false)
      (List.hd mf.Mir.mblocks).Mir.insts
  in
  check bool_t "reload gone" false has_reload

(* ---------------- cost model ---------------- *)

let test_cost_vector_chunks () =
  let m = Machine.x86ish in
  let v16 = Mir.inst (Mir.Mbin Pvir.Instr.Add) (Pvir.Types.vec Pvir.Types.I8 16) in
  let v64 =
    Mir.inst (Mir.Mbin Pvir.Instr.Add) (Pvir.Types.vec Pvir.Types.I32 16)
  in
  (* a 64-byte vector costs 4x a 16-byte vector on a 16-byte SIMD unit *)
  check int_t "chunking" (4 * Cost.of_inst m v16) (Cost.of_inst m v64)

let test_cost_narrow_penalty () =
  let op s = Mir.inst (Mir.Mbin Pvir.Instr.Add) (Pvir.Types.Scalar s) in
  let sparc_narrow = Cost.of_inst Machine.sparcish (op Pvir.Types.I8) in
  let sparc_wide = Cost.of_inst Machine.sparcish (op Pvir.Types.I32) in
  check bool_t "sparc pays for narrow ops" true (sparc_narrow > sparc_wide);
  let ppc_narrow = Cost.of_inst Machine.ppcish (op Pvir.Types.I8) in
  let ppc_wide = Cost.of_inst Machine.ppcish (op Pvir.Types.I32) in
  check int_t "ppc does not" ppc_wide ppc_narrow

let test_cost_div_expensive () =
  let m = Machine.x86ish in
  let div = Mir.inst (Mir.Mbin Pvir.Instr.Div) Pvir.Types.i32 in
  let add = Mir.inst (Mir.Mbin Pvir.Instr.Add) Pvir.Types.i32 in
  check bool_t "div costs more" true (Cost.of_inst m div > Cost.of_inst m add)

(* ---------------- whole-JIT equivalence ---------------- *)

let test_jit_equivalence_matrix () =
  (* a few programs across all machines and modes *)
  let programs =
    [
      ("i64 main() { i64 s = 0; for (i64 i = 0; i < 50; i = i + 1) { s = s + i * i; } return s; }",
       "main", []);
      ("f64 main(f64 x) { if (x > 1.5) { return x * 2.0; } return x / 2.0; }",
       "main", [ Pvir.Value.f64 3.0 ]);
      ( {|
u8 t[32];
i64 main() {
  for (i64 i = 0; i < 32; i = i + 1) { t[i] = (u8)(i * 7); }
  u8 m = 0;
  for (i64 i = 0; i < 32; i = i + 1) { m = t[i] > m ? t[i] : m; }
  return (i64)m;
}
|},
        "main", [] );
    ]
  in
  List.iter
    (fun (src, entry, args) ->
      List.iter
        (fun machine ->
          List.iter
            (fun mode -> jit_matches_interp ~mode ~machine src entry args)
            Core.Splitc.all_modes)
        Machine.all)
    programs

let test_jit_work_ordering () =
  (* online work: split mode must be far cheaper than pure-online *)
  let k = Pvkernels.Kernels.saxpy_fp in
  let machine = Machine.x86ish in
  let split =
    Pvkernels.Harness.run_jit ~mode:Core.Splitc.Split ~machine k
  in
  let pure =
    Pvkernels.Harness.run_jit ~mode:Core.Splitc.Pure_online ~machine k
  in
  check bool_t "split online work < 1/3 pure-online" true
    (split.Pvkernels.Harness.online_work * 3
    < pure.Pvkernels.Harness.online_work);
  check bool_t "same code quality" true
    (Int64.equal split.Pvkernels.Harness.cycles pure.Pvkernels.Harness.cycles)

let () =
  Alcotest.run "pvjit"
    [
      ( "lower",
        [
          Alcotest.test_case "shapes" `Quick test_lower_shapes;
          Alcotest.test_case "gaddr resolved" `Quick test_lower_gaddr_resolved;
          Alcotest.test_case "alloca frame" `Quick test_lower_alloca_frame;
          Alcotest.test_case "stack args" `Quick test_calling_convention_stack_args;
        ] );
      ( "legalize",
        [
          Alcotest.test_case "keeps SIMD" `Quick test_legalize_keeps_simd;
          Alcotest.test_case "scalarizes" `Quick test_legalize_scalarizes;
          Alcotest.test_case "execution equal" `Quick test_legalize_execution_equal;
        ] );
      ( "immfold",
        [
          Alcotest.test_case "folds+shrinks" `Quick test_immfold_folds_and_shrinks;
          Alcotest.test_case "semantics" `Quick test_immfold_keeps_semantics;
        ] );
      ( "regalloc",
        [
          Alcotest.test_case "all physical" `Quick test_regalloc_all_physical;
          Alcotest.test_case "register bound" `Quick test_regalloc_respects_register_count;
          Alcotest.test_case "spills under pressure" `Quick test_regalloc_spills_under_pressure;
          Alcotest.test_case "weights beat heuristic" `Quick test_regalloc_weights_beat_heuristic;
          Alcotest.test_case "correct with spills" `Quick test_regalloc_correct_under_spills;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "self movs" `Quick test_peephole_removes_self_movs;
          Alcotest.test_case "store-load forward" `Quick test_peephole_store_load_forward;
        ] );
      ( "cost",
        [
          Alcotest.test_case "vector chunks" `Quick test_cost_vector_chunks;
          Alcotest.test_case "narrow penalty" `Quick test_cost_narrow_penalty;
          Alcotest.test_case "div expensive" `Quick test_cost_div_expensive;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "matrix" `Quick test_jit_equivalence_matrix;
          Alcotest.test_case "work ordering" `Quick test_jit_work_ordering;
        ] );
    ]
