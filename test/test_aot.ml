(* Tier-1 tests for the AOT native backend (lib/pvaot).

   The AOT engine must be *invisible* relative to the threaded
   interpreter: same results, same printed output, same final global
   memory, and bit-identical cycle/instruction/call accounting — on the
   Table-1 kernels and on a pinned corpus of randomly generated verified
   programs.  The compiled-code cache must be equally invisible: loading
   a cached artifact behaves exactly like a fresh compile.  And when the
   toolchain is unavailable the engine must degrade to threaded
   execution, recording the degradation in the ledger rather than
   erroring. *)

open Pvkernels

let () = Pvaot.install ()

(* ---------------- direct interpreter runs ---------------- *)

type run = {
  obs : Harness.observation;
  cycles : int64;
  instrs : int64;
  calls : int;
}

let run_kernel ?(n = 256) (engine : Pvvm.Interp.engine) (k : Kernels.t) : run =
  let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
  let img = Pvvm.Image.load p in
  Harness.fill_inputs img;
  let it = Pvvm.Interp.create ~engine img in
  let result = Pvvm.Interp.run it k.Kernels.entry (Harness.args k n) in
  let st = it.Pvvm.Interp.stats in
  {
    obs =
      {
        Harness.result;
        globals = Harness.observe_globals img;
        printed = Pvvm.Interp.output it;
      };
    cycles = st.Pvvm.Interp.cycles;
    instrs = st.Pvvm.Interp.instrs;
    calls = st.Pvvm.Interp.calls;
  }

let check_run_equal name (th : run) (aot : run) =
  Alcotest.(check bool)
    (name ^ ": observation (result/output/globals)")
    true
    (Harness.observation_equal th.obs aot.obs);
  Alcotest.(check int64) (name ^ ": cycles") th.cycles aot.cycles;
  Alcotest.(check int64) (name ^ ": instrs") th.instrs aot.instrs;
  Alcotest.(check int) (name ^ ": calls") th.calls aot.calls

(* The backend must actually be live in this environment: these tests
   pin the compiled path, not the fallback. *)
let test_available () =
  match Pvaot.unavailable_reason () with
  | None -> ()
  | Some r -> Alcotest.failf "AOT backend unavailable: %s" r

(* Compiled code must really be used for a kernel image (no silent
   fallback-to-threaded making the equality tests vacuous). *)
let test_compiles_kernels () =
  let k = List.hd Kernels.table1 in
  let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create ~engine:Pvvm.Interp.Aot img in
  match Pvaot.interp_status it with
  | Ok (_digest, _origin) -> ()
  | Error r -> Alcotest.failf "kernel %s fell back: %s" k.Kernels.name r

let test_table1_kernel (k : Kernels.t) () =
  let th = run_kernel Pvvm.Interp.Threaded k in
  let aot = run_kernel Pvvm.Interp.Aot k in
  check_run_equal k.Kernels.name th aot

(* ---------------- pinned random-program corpus ---------------- *)

let is_fuel_outcome = function
  | Pvcheck.Oracle.Trapped m -> String.equal m Pvvm.Interp.fuel_exhausted_msg
  | _ -> false

let test_corpus_seed seed () =
  let prog = Pvcheck.Gen.program ~seed in
  let th = Pvcheck.Oracle.run_interp prog Pvvm.Interp.Threaded in
  let aot = Pvcheck.Oracle.run_interp prog Pvvm.Interp.Aot in
  let ms =
    Pvcheck.Oracle.compare_obs ~path:"interp-aot" th.Pvcheck.Oracle.iobs
      aot.Pvcheck.Oracle.iobs
  in
  (match ms with
  | [] -> ()
  | m :: _ ->
    Alcotest.failf "seed %d: %s mismatch: %s" seed m.Pvcheck.Oracle.what
      m.Pvcheck.Oracle.detail);
  (* Accounting is bit-identical except when fuel ran out: block-batched
     charging only diverges in the counter values observed *inside* a
     fuel trap (DESIGN.md section 10). *)
  if not (is_fuel_outcome th.Pvcheck.Oracle.iobs.Pvcheck.Oracle.outcome) then begin
    Alcotest.(check int64)
      (Printf.sprintf "seed %d: cycles" seed)
      th.Pvcheck.Oracle.icycles aot.Pvcheck.Oracle.icycles;
    Alcotest.(check int64)
      (Printf.sprintf "seed %d: instrs" seed)
      th.Pvcheck.Oracle.iinstrs aot.Pvcheck.Oracle.iinstrs;
    Alcotest.(check int)
      (Printf.sprintf "seed %d: calls" seed)
      th.Pvcheck.Oracle.icalls aot.Pvcheck.Oracle.icalls
  end

(* ---------------- simulator engine (JIT-lowered MIR) ---------------- *)

(* The simulator backend charges per instruction, so its accounting is
   compared unconditionally — fuel outcomes included. *)
let test_sim_kernel (machine : Pvmach.Machine.t) (k : Kernels.t) () =
  let th =
    Harness.run_jit ~mode:Core.Splitc.Split ~machine
      ~engine:Pvvm.Sim.Threaded k
  in
  let aot =
    Harness.run_jit ~mode:Core.Splitc.Split ~machine ~engine:Pvvm.Sim.Aot k
  in
  let name = Printf.sprintf "%s on %s" k.Kernels.name machine.Pvmach.Machine.name in
  Alcotest.(check bool)
    (name ^ ": observation")
    true
    (Harness.observation_equal th.Harness.obs aot.Harness.obs);
  Alcotest.(check int64) (name ^ ": cycles") th.Harness.cycles aot.Harness.cycles;
  Alcotest.(check int64)
    (name ^ ": spill ops")
    th.Harness.spill_ops aot.Harness.spill_ops

(* The compiled path must really be taken for JIT output (the sim tests
   above would be vacuous if every run fell back to threaded). *)
let test_sim_compiles () =
  let k = List.hd Kernels.table1 in
  let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  let bc = Core.Splitc.distribute off in
  let on =
    Core.Splitc.online ~mode:Core.Splitc.Split
      ~machine:Pvmach.Machine.x86ish bc
  in
  match Pvaot.sim_status on.Core.Splitc.sim with
  | Ok (_digest, _origin) -> ()
  | Error r -> Alcotest.failf "sim code cache fell back: %s" r

let test_sim_corpus_seed seed () =
  let prog = Pvcheck.Gen.program ~seed in
  let hints = Pvjit.Jit.Hints_recompute in
  List.iter
    (fun (m : Pvmach.Machine.t) ->
      let th = Pvcheck.Oracle.run_jit prog m hints Pvvm.Sim.Threaded in
      let aot = Pvcheck.Oracle.run_jit prog m hints Pvvm.Sim.Aot in
      let path = Printf.sprintf "jit-%s-aot" m.Pvmach.Machine.name in
      (match
         Pvcheck.Oracle.compare_obs ~path th.Pvcheck.Oracle.jobs
           aot.Pvcheck.Oracle.jobs
       with
      | [] -> ()
      | mm :: _ ->
        Alcotest.failf "seed %d %s: %s mismatch: %s" seed path
          mm.Pvcheck.Oracle.what mm.Pvcheck.Oracle.detail);
      Alcotest.(check int64)
        (Printf.sprintf "seed %d %s: cycles" seed path)
        th.Pvcheck.Oracle.jcycles aot.Pvcheck.Oracle.jcycles;
      Alcotest.(check int64)
        (Printf.sprintf "seed %d %s: instrs" seed path)
        th.Pvcheck.Oracle.jinstrs aot.Pvcheck.Oracle.jinstrs;
      Alcotest.(check int64)
        (Printf.sprintf "seed %d %s: spill ops" seed path)
        th.Pvcheck.Oracle.jspill_ops aot.Pvcheck.Oracle.jspill_ops)
    Pvmach.Machine.all

(* ---------------- cache correctness ---------------- *)

(* A plugin loaded from the on-disk artifact cache must behave exactly
   like the fresh compile that produced it. *)
(* The compiled-code cache key must see annotation-only differences.
   [Pp] never prints global annotations, so a digest of the
   pretty-printed program alone lets two programs differing only in
   [gannots] collide — and the second request would be served the first
   one's artifact.  The key folds in [Prog.annotations_dump] to break
   the tie. *)
let test_annot_cache_key () =
  let k = List.hd Kernels.table1 in
  let mk () = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
  let p1 = mk () and p2 = mk () in
  (match p2.Pvir.Prog.globals with
  | [] -> Alcotest.fail "kernel has no globals"
  | g :: rest ->
    p2.Pvir.Prog.globals <-
      { g with Pvir.Prog.gannots = [ ("layout", Pvir.Annot.Str "banked") ] }
      :: rest);
  (* the collision surface is real: the printer renders both the same *)
  Alcotest.(check string) "pretty-printer blind to global annotations"
    (Pvir.Pp.program_to_string p1)
    (Pvir.Pp.program_to_string p2);
  let digest p =
    let d, _, _ =
      Pvaot.Interp_gen.generate (Pvvm.Image.load p) ~dispatch_cost:1
    in
    d
  in
  Alcotest.(check bool) "cache digests differ for annotation-only change"
    false
    (String.equal (digest p1) (digest p2))

let test_cache_roundtrip () =
  let dir =
    (* reserve a unique name without depending on Unix *)
    let stamp = Filename.temp_file "pvaot-test-cache" "" in
    Sys.remove stamp;
    stamp ^ ".d"
  in
  Pvaot.set_cache_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      Pvaot.set_cache_dir None;
      Pvaot.reset_memos ())
    (fun () ->
      let k = List.nth Kernels.table1 1 (* saxpy_fp *) in
      let status () =
        let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
        let img = Pvvm.Image.load p in
        let it = Pvvm.Interp.create ~engine:Pvvm.Interp.Aot img in
        match Pvaot.interp_status it with
        | Ok (digest, origin) -> (digest, origin)
        | Error r -> Alcotest.failf "fell back: %s" r
      in
      Pvaot.reset_memos ();
      let d1, o1 = status () in
      Alcotest.(check string) "first build compiles" "compiled" o1;
      let fresh = run_kernel Pvvm.Interp.Aot k in
      (* Drop in-memory state: the next prepare must hit the disk cache
         and dynlink the stored artifact. *)
      Pvaot.reset_memos ();
      let d2, o2 = status () in
      Alcotest.(check string) "second build loads from disk" "disk-cache" o2;
      Alcotest.(check string) "digest is stable" d1 d2;
      let cached = run_kernel Pvvm.Interp.Aot k in
      check_run_equal "cached vs fresh" fresh cached)

(* ---------------- cache staleness guard ---------------- *)

let read_file p = In_channel.with_open_bin p In_channel.input_all

let write_file p s =
  Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc s)

let string_contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  go 0

let find_substring s sub =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i + n > m then None
    else if String.equal (String.sub s i n) sub then Some i
    else go (i + 1)
  in
  go 0

(* Replace the source-body digest inside the generated plugin's
   [A.register_src _ ~src:"<hex32>"] epilogue — producing exactly what an
   older generator would have left in the cache under the same key. *)
let tamper_src_digest src =
  let marker = "~src:\"" in
  match find_substring src marker with
  | None -> Alcotest.fail "generated source has no ~src: registration"
  | Some i ->
    let j = i + String.length marker in
    String.sub src 0 j ^ String.make 32 '0'
    ^ String.sub src (j + 32) (String.length src - j - 32)

(* A cached artifact whose registered source digest disagrees with the
   current generator (the forgotten-codegen_version-bump scenario) must
   be detected at load time, recorded in the ledger, evicted and rebuilt
   fresh — never silently executed. *)
let test_stale_cache () =
  let tc =
    match Pvaot.Build.toolchain () with
    | Ok tc -> tc
    | Error r -> Alcotest.failf "AOT backend unavailable: %s" r
  in
  let dir =
    let stamp = Filename.temp_file "pvaot-test-stale" "" in
    Sys.remove stamp;
    stamp ^ ".d"
  in
  let ledger = Pvtrace.Ledger.create () in
  Pvaot.set_cache_dir (Some dir);
  Pvaot.set_ledger (Some ledger);
  Fun.protect
    ~finally:(fun () ->
      Pvaot.set_cache_dir None;
      Pvaot.set_ledger None;
      Pvaot.reset_memos ())
    (fun () ->
      let k = List.hd Kernels.table1 in
      let status () =
        let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
        let img = Pvvm.Image.load p in
        let it = Pvvm.Interp.create ~engine:Pvvm.Interp.Aot img in
        match Pvaot.interp_status it with
        | Ok (digest, origin) -> (digest, origin)
        | Error r -> Alcotest.failf "fell back: %s" r
      in
      Pvaot.reset_memos ();
      let d1, o1 = status () in
      Alcotest.(check string) "first build compiles" "compiled" o1;
      let good = run_kernel Pvvm.Interp.Aot k in
      (* Plant the stale artifact over the cached one: same cache key,
         tampered source-body registration. *)
      let ext = Pvaot.Build.artifact_ext tc in
      let artifact = Filename.concat dir ("pvaot_" ^ d1 ^ ext) in
      let src = read_file (Filename.concat dir ("pvaot_" ^ d1 ^ ".ml")) in
      let stale_dir = Filename.concat dir "stale" in
      Sys.mkdir stale_dir 0o755;
      let stale_src = Filename.concat stale_dir ("pvaot_" ^ d1 ^ ".ml") in
      let stale_out = Filename.concat stale_dir ("pvaot_" ^ d1 ^ ext) in
      write_file stale_src (tamper_src_digest src);
      (match Pvaot.Build.compile tc ~src_path:stale_src ~out_path:stale_out with
      | Ok () -> ()
      | Error e -> Alcotest.failf "stale plant compile failed: %s" e);
      write_file artifact (read_file stale_out);
      (* The next prepare hits the disk cache, must reject the plant. *)
      Pvaot.reset_memos ();
      let d2, o2 = status () in
      Alcotest.(check string) "stale cache digest unchanged" d1 d2;
      Alcotest.(check string) "stale artifact evicted and rebuilt"
        "recompiled" o2;
      Alcotest.(check int) "staleness recorded in ledger" 1
        (Pvtrace.Ledger.count_kind ledger
           (Pvtrace.Ledger.Other "aot-stale-cache"));
      (* ...and the rebuilt plugin behaves like the original. *)
      let rebuilt = run_kernel Pvvm.Interp.Aot k in
      check_run_equal "rebuilt vs original" good rebuilt)

(* ---------------- compile retry ---------------- *)

(* A failing out-of-process compile is retried on the bounded schedule
   and the final error carries the attempt count (it becomes the
   Aot_unavailable ledger detail when the backend degrades). *)
let test_compile_retry () =
  Pvaot.Build.set_retry_delays [ 0.0; 0.0 ];
  Fun.protect
    ~finally:(fun () ->
      Pvaot.Build.set_retry_delays Pvaot.Build.default_retry_delays)
    (fun () ->
      let tc =
        { Pvaot.Build.native = false; compiler = "false"; incdirs = [] }
      in
      let src = Filename.temp_file "pvaot_retry" ".ml" in
      let out = Filename.chop_extension src ^ ".cmo" in
      let before = Pvaot.Build.compile_attempts () in
      (match Pvaot.Build.compile tc ~src_path:src ~out_path:out with
      | Ok () -> Alcotest.fail "compile under /bin/false succeeded"
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error %S carries the attempt count" e)
          true
          (string_contains e "after 3 attempts"));
      Alcotest.(check int) "three bounded attempts" 3
        (Pvaot.Build.compile_attempts () - before);
      Sys.remove src)

(* ---------------- graceful degradation ---------------- *)

let test_degrades_when_unavailable () =
  let ledger = Pvtrace.Ledger.create () in
  Pvaot.set_forced_unavailable (Some "forced by test");
  Fun.protect
    ~finally:(fun () ->
      Pvaot.set_forced_unavailable None;
      Pvaot.set_ledger None;
      Pvaot.reset_memos ())
    (fun () ->
      Pvaot.set_ledger (Some ledger);
      Pvaot.reset_memos ();
      Alcotest.(check bool) "reports unavailable" false (Pvaot.available ());
      let k = List.hd Kernels.table1 in
      let th = run_kernel Pvvm.Interp.Threaded k in
      (* Selecting the AOT engine must still work, via threaded. *)
      let aot = run_kernel Pvvm.Interp.Aot k in
      check_run_equal "degraded run" th aot;
      Alcotest.(check int) "one ledger entry" 1
        (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Aot_unavailable);
      (* ...and only one, even after more runs. *)
      ignore (run_kernel Pvvm.Interp.Aot k);
      Alcotest.(check int) "still one ledger entry" 1
        (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Aot_unavailable))

(* ---------------- suite ---------------- *)

let corpus_seeds = List.init 25 (fun i -> i)

let () =
  Alcotest.run "pvaot"
    [
      ( "backend",
        [
          Alcotest.test_case "toolchain available" `Quick test_available;
          Alcotest.test_case "kernels compile (no fallback)" `Quick
            test_compiles_kernels;
        ] );
      ( "table1",
        List.map
          (fun (k : Kernels.t) ->
            Alcotest.test_case k.Kernels.name `Quick (test_table1_kernel k))
          Kernels.table1 );
      ( "corpus",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d" seed)
              `Quick (test_corpus_seed seed))
          corpus_seeds );
      ( "sim",
        Alcotest.test_case "jit output compiles (no fallback)" `Quick
          test_sim_compiles
        :: List.concat_map
             (fun (m : Pvmach.Machine.t) ->
               List.map
                 (fun (k : Kernels.t) ->
                   Alcotest.test_case
                     (Printf.sprintf "%s on %s" k.Kernels.name
                        m.Pvmach.Machine.name)
                     `Quick (test_sim_kernel m k))
                 Kernels.table1)
             Pvmach.Machine.table1_targets
        @ List.map
            (fun seed ->
              Alcotest.test_case
                (Printf.sprintf "seed %d (all machines)" seed)
                `Quick (test_sim_corpus_seed seed))
            [ 0; 5; 11; 17; 23 ] );
      ( "cache",
        [
          Alcotest.test_case "annotation-only change changes key" `Quick
            test_annot_cache_key;
          Alcotest.test_case "cached load = fresh compile" `Quick
            test_cache_roundtrip;
          Alcotest.test_case "stale artifact rejected and rebuilt" `Quick
            test_stale_cache;
        ] );
      ( "retry",
        [
          Alcotest.test_case "bounded compile retry" `Quick
            test_compile_retry;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "falls back with ledger entry" `Quick
            test_degrades_when_unavailable;
        ] );
    ]
