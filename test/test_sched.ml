(* Tests for the Kahn process network runtime and the heterogeneous
   mapper. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let tok x = [| Pvir.Value.i64 (Int64.of_int x) |]
let tok_val (t : Pvsched.Kpn.token) = Int64.to_int (Pvir.Value.to_int64 t.(0))

(* a 3-stage pipeline: double -> add1 -> out *)
let pipeline () =
  let map name inputs outputs f =
    {
      Pvsched.Kpn.pname = name;
      inputs;
      outputs;
      fire =
        (fun toks -> List.map (fun t -> tok (f (tok_val t))) toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  [
    map "double" [ "in" ] [ "mid" ] (fun x -> x * 2);
    map "add1" [ "mid" ] [ "out" ] (fun x -> x + 1);
  ]

let test_kpn_pipeline () =
  let net = Pvsched.Kpn.create (pipeline ()) in
  List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) [ 1; 2; 3 ];
  let firings = Pvsched.Kpn.run net in
  check int_t "firings" 6 firings;
  let out = List.map tok_val (Pvsched.Kpn.drain net "out") in
  check bool_t "fifo order preserved" true (out = [ 3; 5; 7 ])

let test_kpn_determinism () =
  (* Kahn's theorem: any scheduling order produces the same streams *)
  let run_with order =
    let net = Pvsched.Kpn.create (pipeline ()) in
    List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) [ 5; 6; 7; 8 ];
    ignore (Pvsched.Kpn.run ~order net);
    List.map tok_val (Pvsched.Kpn.drain net "out")
  in
  let forward = run_with (fun ps -> ps) in
  let reverse = run_with List.rev in
  let rotated = run_with (fun ps -> List.tl ps @ [ List.hd ps ]) in
  check bool_t "reverse order same" true (forward = reverse);
  check bool_t "rotated order same" true (forward = rotated)

let test_kpn_multi_input () =
  (* a join process consumes one token from each input per firing *)
  let join =
    {
      Pvsched.Kpn.pname = "join";
      inputs = [ "a"; "b" ];
      outputs = [ "sum" ];
      fire =
        (fun toks ->
          match toks with
          | [ x; y ] -> [ tok (tok_val x + tok_val y) ]
          | _ -> assert false);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let net = Pvsched.Kpn.create [ join ] in
  List.iter (fun x -> Pvsched.Kpn.push net "a" (tok x)) [ 1; 2; 3 ];
  List.iter (fun x -> Pvsched.Kpn.push net "b" (tok x)) [ 10; 20 ];
  ignore (Pvsched.Kpn.run net);
  (* only two firings possible: channel b has two tokens *)
  let out = List.map tok_val (Pvsched.Kpn.drain net "sum") in
  check bool_t "join sums pairwise" true (out = [ 11; 22 ]);
  (* the unmatched token remains *)
  check int_t "leftover" 1 (List.length (Pvsched.Kpn.drain net "a"))

let test_kpn_firing_budget () =
  (* a self-feeding process never terminates: the budget must trip *)
  let loop_p =
    {
      Pvsched.Kpn.pname = "loop";
      inputs = [ "c" ];
      outputs = [ "c" ];
      fire = (fun toks -> toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let net = Pvsched.Kpn.create [ loop_p ] in
  Pvsched.Kpn.push net "c" (tok 1);
  match Pvsched.Kpn.run ~max_firings:100 net with
  | exception Pvsched.Kpn.Deadlock _ -> ()
  | _ -> Alcotest.fail "self-feeding network terminated"

(* ---------------- kpn edge cases ---------------- *)

let test_kpn_unknown_channel () =
  let net = Pvsched.Kpn.create (pipeline ()) in
  (match Pvsched.Kpn.push net "nonesuch" (tok 1) with
  | exception Invalid_argument m ->
    check bool_t "names the channel" true
      (String.length m > 0 && String.sub m (String.length m - 8) 8 = "nonesuch")
  | () -> Alcotest.fail "push on unknown channel succeeded");
  (match Pvsched.Kpn.drain net "nonesuch" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "drain on unknown channel succeeded")

let test_kpn_feedback_initial_tokens () =
  (* a two-process cycle is dead without an initial marking and runs
     exactly as far as its input supply with one *)
  let stage name src dst =
    {
      Pvsched.Kpn.pname = name;
      inputs = [ src ];
      outputs = [ dst ];
      fire = (fun toks -> List.map (fun t -> tok (tok_val t + 1)) toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let gate =
    (* consumes one external token and one loop token per firing *)
    {
      Pvsched.Kpn.pname = "gate";
      inputs = [ "in"; "loop" ];
      outputs = [ "fwd" ];
      fire =
        (fun toks ->
          match toks with
          | [ x; c ] -> [ tok (tok_val x + tok_val c) ]
          | _ -> assert false);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let ps = [ gate; stage "back" "fwd" "loop" ] in
  (* no initial marking: the cycle is dead *)
  let dead = Pvsched.Kpn.create ps in
  List.iter (fun x -> Pvsched.Kpn.push dead "in" (tok x)) [ 1; 2; 3 ];
  check int_t "unmarked cycle never fires" 0 (Pvsched.Kpn.run dead);
  (* one initial token on the feedback edge: 3 external tokens flow *)
  let live = Pvsched.Kpn.create ps in
  List.iter (fun x -> Pvsched.Kpn.push live "in" (tok x)) [ 1; 2; 3 ];
  Pvsched.Kpn.push live "loop" (tok 0);
  check int_t "marked cycle fires through" 6 (Pvsched.Kpn.run live);
  (* the marking is conserved: one token is back on the loop *)
  check int_t "marking conserved" 1
    (List.length (Pvsched.Kpn.drain live "loop"))

let test_kpn_starvation () =
  (* a process whose input channel never receives a token never fires,
     while the rest of the net quiesces normally *)
  let ps =
    pipeline ()
    @ [
        {
          Pvsched.Kpn.pname = "starved";
          inputs = [ "never" ];
          outputs = [ "unreached" ];
          fire = (fun toks -> toks);
          annots = Pvir.Annot.empty;
          work = 1;
        };
      ]
  in
  let net = Pvsched.Kpn.create ps in
  List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) [ 1; 2 ];
  check int_t "only the pipeline fires" 4 (Pvsched.Kpn.run net);
  check int_t "starved produced nothing" 0
    (List.length (Pvsched.Kpn.drain net "unreached"));
  let r = Pvsched.Sched.execute (Pvsched.Kpn.create ps) in
  check bool_t "sched reports starvation" true
    (r.Pvsched.Sched.stats.Pvsched.Sched.starved = [ "double"; "add1"; "starved" ])

let test_kpn_drain_ordering () =
  let net = Pvsched.Kpn.create (pipeline ()) in
  List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) [ 9; 1; 4 ];
  ignore (Pvsched.Kpn.run net);
  check bool_t "drain is FIFO" true
    (List.map tok_val (Pvsched.Kpn.drain net "out") = [ 19; 3; 9 ]);
  check bool_t "drain empties" true (Pvsched.Kpn.drain net "out" = [])

(* ---------------- bounded scheduler ---------------- *)

let sched_pipeline_net tokens =
  let net = Pvsched.Kpn.create (pipeline ()) in
  List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) tokens;
  net

let stream_of r name =
  List.map (fun (t : Pvsched.Kpn.token) -> Int64.to_int (Pvir.Value.to_int64 t.(0)))
    (List.assoc name r.Pvsched.Sched.streams)

let test_sched_policies_agree () =
  let digests =
    List.map
      (fun policy ->
        let r = Pvsched.Sched.execute ~policy (sched_pipeline_net [ 1; 2; 3; 4 ]) in
        check int_t "all firings happen" 8 r.Pvsched.Sched.stats.Pvsched.Sched.firings;
        Pvsched.Sched.streams_digest r)
      Pvsched.Sched.all_policies
  in
  match digests with
  | d :: rest -> List.iter (check Alcotest.string "streams identical" d) rest
  | [] -> ()

let test_sched_backpressure () =
  (* capacity 1 forces strict alternation but cannot change the streams
     (deadlock-free by the marked-graph argument) *)
  let r1 = Pvsched.Sched.execute ~capacity:1 (sched_pipeline_net [ 1; 2; 3 ]) in
  let r8 = Pvsched.Sched.execute ~capacity:8 (sched_pipeline_net [ 1; 2; 3 ]) in
  check bool_t "bounded streams match unbounded" true
    (Pvsched.Sched.streams_digest r1 = Pvsched.Sched.streams_digest r8);
  check bool_t "output stream correct" true (stream_of r1 "out" = [ 3; 5; 7 ]);
  check int_t "sink keeps its tokens" 3 (List.assoc "out" r1.Pvsched.Sched.residual);
  check int_t "consumed channels drained" 0 (List.assoc "mid" r1.Pvsched.Sched.residual)

let test_sched_conservation () =
  let r = Pvsched.Sched.execute (sched_pipeline_net [ 1; 2; 3; 4; 5 ]) in
  (* 5 external + 10 produced = 10 consumed + 5 residual *)
  check int_t "produced" 10 r.Pvsched.Sched.produced;
  check int_t "consumed" 10 r.Pvsched.Sched.consumed;
  let residual =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.Pvsched.Sched.residual
  in
  check int_t "residual" 5 residual

let test_sched_work_stealing_steals () =
  (* many independent single-firing processes homed by the placement:
     an idle core must steal rather than sit idle *)
  let ps =
    List.init 16 (fun i ->
        let name = Printf.sprintf "w%d" i in
        {
          Pvsched.Kpn.pname = name;
          inputs = [ name ^ "_in" ];
          outputs = [ name ^ "_out" ];
          fire = (fun toks -> toks);
          annots = Pvir.Annot.empty;
          work = 10;
        })
  in
  let net = Pvsched.Kpn.create ps in
  List.iteri (fun i _ -> Pvsched.Kpn.push net (Printf.sprintf "w%d_in" i) (tok i)) ps;
  (* pathological placement: everything on core0 *)
  let platform = Pvsched.Sched.default_platform ~cores:4 () in
  let c0 = List.hd platform.Pvsched.Mapper.cores in
  let placement = Pvsched.Mapper.place_all_on c0 ps in
  let fifo =
    Pvsched.Sched.execute ~policy:Pvsched.Sched.Fifo ~platform ~placement
      (Pvsched.Kpn.create ps |> fun t ->
       List.iteri (fun i _ -> Pvsched.Kpn.push t (Printf.sprintf "w%d_in" i) (tok i)) ps;
       t)
  in
  let ws =
    Pvsched.Sched.execute ~policy:Pvsched.Sched.Work_stealing ~platform
      ~placement net
  in
  check bool_t "steals happened" true (ws.Pvsched.Sched.stats.Pvsched.Sched.steals > 0);
  check bool_t "stealing beats the pile-up" true
    (Int64.compare ws.Pvsched.Sched.stats.Pvsched.Sched.makespan
       fifo.Pvsched.Sched.stats.Pvsched.Sched.makespan
    < 0);
  check bool_t "same streams anyway" true
    (Pvsched.Sched.streams_digest ws = Pvsched.Sched.streams_digest fifo)

let test_sched_deadlock_budget () =
  let loop_p =
    {
      Pvsched.Kpn.pname = "loop";
      inputs = [ "c" ];
      outputs = [ "c"; "out" ];
      fire = (fun toks -> [ List.hd toks; List.hd toks ]);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let net = Pvsched.Kpn.create [ loop_p ] in
  Pvsched.Kpn.push net "c" (tok 1);
  match Pvsched.Sched.execute ~max_firings:64 net with
  | exception Pvsched.Kpn.Deadlock _ -> ()
  | _ -> Alcotest.fail "self-feeding network terminated under Sched"

(* ---------------- mapper ---------------- *)

let platform () =
  let host = { Pvsched.Mapper.cname = "host"; machine = Pvmach.Machine.ppcish } in
  let accel = { Pvsched.Mapper.cname = "accel"; machine = Pvmach.Machine.dspish } in
  (host, accel, { Pvsched.Mapper.cores = [ host; accel ]; transfer_cost = 100 })

let offload_processes () =
  let control name inputs outputs =
    {
      Pvsched.Kpn.pname = name;
      inputs;
      outputs;
      fire = (fun toks -> toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let numeric =
    {
      Pvsched.Kpn.pname = "numeric";
      inputs = [ "raw" ];
      outputs = [ "cooked" ];
      fire = (fun toks -> toks);
      annots =
        Pvir.Annot.add Pvir.Annot.key_hw_prefs
          (Pvir.Annot.List [ Pvir.Annot.Str "simd128" ])
          Pvir.Annot.empty;
      work = 100;
    }
  in
  [ control "src" [ "in" ] [ "raw" ]; numeric; control "snk" [ "cooked" ] [ "out" ] ]

let cost (p : Pvsched.Kpn.process) (c : Pvsched.Mapper.core) =
  match p.Pvsched.Kpn.pname with
  | "numeric" -> if c.Pvsched.Mapper.cname = "accel" then 500 else 2000
  | _ -> if c.Pvsched.Mapper.cname = "accel" then 400 else 50

let test_mapper_placement () =
  let _, accel, plat = platform () in
  let ps = offload_processes () in
  let placement = Pvsched.Mapper.place plat cost ps in
  check bool_t "numeric offloaded" true
    (List.assoc "numeric" placement == accel);
  check bool_t "control on host" true
    ((List.assoc "src" placement).Pvsched.Mapper.cname = "host")

let fresh_net n =
  let net = Pvsched.Kpn.create (offload_processes ()) in
  for i = 1 to n do
    Pvsched.Kpn.push net "in" (tok i)
  done;
  net

let test_mapper_makespan_offload_wins () =
  let host, _, plat = platform () in
  let ps = offload_processes () in
  let host_only = Pvsched.Mapper.place_all_on host ps in
  let auto = Pvsched.Mapper.place plat cost ps in
  let t_host = Pvsched.Mapper.makespan plat cost host_only (fresh_net 32) in
  let t_auto = Pvsched.Mapper.makespan plat cost auto (fresh_net 32) in
  check bool_t "offload faster" true (Int64.compare t_auto t_host < 0);
  (* with the numeric stage dominant, the win approaches the stage ratio *)
  let ratio = Int64.to_float t_host /. Int64.to_float t_auto in
  check bool_t "meaningful speedup" true (ratio > 1.5)

let test_mapper_transfer_cost_matters () =
  (* an extreme transfer cost makes offload lose *)
  let host, _, plat0 = platform () in
  let plat = { plat0 with Pvsched.Mapper.transfer_cost = 1_000_000 } in
  let ps = offload_processes () in
  let host_only = Pvsched.Mapper.place_all_on host ps in
  let auto = Pvsched.Mapper.place plat0 cost ps in
  let t_host = Pvsched.Mapper.makespan plat cost host_only (fresh_net 8) in
  let t_auto = Pvsched.Mapper.makespan plat cost auto (fresh_net 8) in
  check bool_t "expensive transfers kill offload" true
    (Int64.compare t_auto t_host > 0)

let test_makespan_monotone_in_tokens () =
  let host, _, plat = platform () in
  let ps = offload_processes () in
  let pl = Pvsched.Mapper.place_all_on host ps in
  let t8 = Pvsched.Mapper.makespan plat cost pl (fresh_net 8) in
  let t16 = Pvsched.Mapper.makespan plat cost pl (fresh_net 16) in
  check bool_t "more tokens, more time" true (Int64.compare t16 t8 > 0)


let test_mapper_balances_two_accelerators () =
  (* two heavy parallel numeric stages, one host + two identical
     accelerators: load-aware placement must use both accelerators *)
  let accel1 = { Pvsched.Mapper.cname = "dsp1"; machine = Pvmach.Machine.dspish } in
  let accel2 = { Pvsched.Mapper.cname = "dsp2"; machine = Pvmach.Machine.dspish } in
  let host2 = { Pvsched.Mapper.cname = "host"; machine = Pvmach.Machine.ppcish } in
  let plat =
    { Pvsched.Mapper.cores = [ host2; accel1; accel2 ]; transfer_cost = 50 }
  in
  let numeric name =
    {
      Pvsched.Kpn.pname = name;
      inputs = [ name ^ "_in" ];
      outputs = [ name ^ "_out" ];
      fire = (fun toks -> toks);
      annots =
        Pvir.Annot.add Pvir.Annot.key_hw_prefs
          (Pvir.Annot.List [ Pvir.Annot.Str "simd128" ])
          Pvir.Annot.empty;
      work = 100;
    }
  in
  let ps = [ numeric "fft"; numeric "filter2" ] in
  let cost2 (p : Pvsched.Kpn.process) (c : Pvsched.Mapper.core) =
    ignore p;
    if c.Pvsched.Mapper.cname = "host" then 2000 else 500
  in
  let pl = Pvsched.Mapper.place plat cost2 ps in
  let c1 = (List.assoc "fft" pl).Pvsched.Mapper.cname in
  let c2 = (List.assoc "filter2" pl).Pvsched.Mapper.cname in
  check bool_t "both on accelerators" true
    (c1 <> "host" && c2 <> "host");
  check bool_t "spread across both" true (c1 <> c2)

let () =
  Alcotest.run "pvsched"
    [
      ( "kpn",
        [
          Alcotest.test_case "pipeline" `Quick test_kpn_pipeline;
          Alcotest.test_case "determinism" `Quick test_kpn_determinism;
          Alcotest.test_case "multi input" `Quick test_kpn_multi_input;
          Alcotest.test_case "firing budget" `Quick test_kpn_firing_budget;
          Alcotest.test_case "unknown channel" `Quick test_kpn_unknown_channel;
          Alcotest.test_case "feedback initial tokens" `Quick
            test_kpn_feedback_initial_tokens;
          Alcotest.test_case "starvation" `Quick test_kpn_starvation;
          Alcotest.test_case "drain ordering" `Quick test_kpn_drain_ordering;
        ] );
      ( "sched",
        [
          Alcotest.test_case "policies agree" `Quick test_sched_policies_agree;
          Alcotest.test_case "backpressure" `Quick test_sched_backpressure;
          Alcotest.test_case "conservation" `Quick test_sched_conservation;
          Alcotest.test_case "work stealing steals" `Quick
            test_sched_work_stealing_steals;
          Alcotest.test_case "deadlock budget" `Quick test_sched_deadlock_budget;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "placement" `Quick test_mapper_placement;
          Alcotest.test_case "offload wins" `Quick test_mapper_makespan_offload_wins;
          Alcotest.test_case "transfer cost" `Quick test_mapper_transfer_cost_matters;
          Alcotest.test_case "monotone" `Quick test_makespan_monotone_in_tokens;
          Alcotest.test_case "balances accelerators" `Quick test_mapper_balances_two_accelerators;
        ] );
    ]
