(* Fuzzing the binary decoder — the hardened trust boundary.

   The contract under test: for EVERY byte string, [Serial.decode_result]
   returns [Ok] or [Error] — it never raises, never loops, never
   stack-overflows, never allocates unboundedly.  Two input populations:

   - pure random bytes (mostly die on the magic check, but varints and
     short prefixes get through);
   - seeded mutations of real, valid bytecode (the hard population: almost
     all structure is intact, so corruption lands deep inside the
     decoder).

   12k cases total, far past the 10k floor demanded by the issue.  Every
   case is replayable: the mutation fault list is part of the failure
   message. *)

let seeded_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* a result that is neither Ok nor Error can't exist; what we really
   assert is "no exception escapes" *)
let decodes_totally (s : string) : bool =
  match Pvir.Serial.decode_result s with
  | Ok p ->
    (* a decoded program must also be safe to verify (the next pipeline
       stage): Verify may reject it, but must not raise anything else *)
    (match Pvir.Verify.program_result p with Ok () | Error _ -> true)
  | Error _ -> true
  | exception e ->
    Printf.eprintf "decoder raised %s\n" (Printexc.to_string e);
    false

(* ---------------- population 1: random bytes ---------------- *)

let random_bytes_arb =
  QCheck.make
    QCheck.Gen.(string_size ~gen:char (int_range 0 512))
    ~print:(fun s -> Printf.sprintf "%d raw bytes: %S" (String.length s) s)

(* random bytes behind a valid magic, so the decoder proper is reached *)
let magic_prefixed_arb =
  QCheck.make
    QCheck.Gen.(map (fun s -> "PVIR" ^ s) (string_size ~gen:char (int_range 0 512)))
    ~print:(fun s -> Printf.sprintf "%d magic-prefixed bytes: %S" (String.length s) s)

(* ---------------- population 2: mutated real bytecode ---------------- *)

(* one serialized module per Table-1 kernel, compiled through the real
   offline pipeline so annotations, globals and vector types are present *)
let corpus : string list =
  List.map
    (fun (k : Pvkernels.Kernels.t) ->
      let p =
        Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name
          k.Pvkernels.Kernels.source
      in
      Core.Splitc.distribute (Core.Splitc.offline ~mode:Core.Splitc.Split p))
    Pvkernels.Kernels.table1

let mutant_arb =
  QCheck.make
    QCheck.Gen.(pair (int_range 0 (List.length corpus - 1)) (int_bound 1_000_000))
    ~print:(fun (i, seed) ->
      let bc = List.nth corpus i in
      let _, faults = Pvinject.Inject.mutate_bytes ~seed bc in
      Printf.sprintf "kernel #%d, seed %d: %s" i seed
        (String.concat "; "
           (List.map Pvinject.Inject.byte_fault_to_string faults)))

let prop_mutant_decodes_totally (i, seed) =
  let bc = List.nth corpus i in
  let mutant, _ = Pvinject.Inject.mutate_bytes ~seed bc in
  decodes_totally mutant

(* ---------------- sanity: the corpus itself round-trips ---------------- *)

let test_corpus_roundtrips () =
  List.iter
    (fun bc ->
      match Pvir.Serial.decode_result bc with
      | Ok p -> Pvir.Verify.program p
      | Error c ->
        Alcotest.failf "valid corpus rejected: %s"
          (Pvir.Serial.corruption_to_string c))
    corpus

(* truncations of valid bytecode at every single prefix length: the
   classic decoder killer, checked exhaustively rather than sampled *)
let test_all_truncations () =
  List.iter
    (fun bc ->
      for len = 0 to String.length bc - 1 do
        let cut = String.sub bc 0 len in
        if not (decodes_totally cut) then
          Alcotest.failf "truncation to %d bytes escaped the decoder" len
      done)
    corpus

let () =
  Alcotest.run "fuzz_serial"
    [
      ( "decoder-total",
        [
          seeded_test ~count:4000 "random bytes" random_bytes_arb
            decodes_totally;
          seeded_test ~count:4000 "magic-prefixed random bytes"
            magic_prefixed_arb decodes_totally;
          seeded_test ~count:4000 "mutated real bytecode" mutant_arb
            prop_mutant_decodes_totally;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "valid corpus decodes" `Quick
            test_corpus_roundtrips;
          Alcotest.test_case "every truncation is handled" `Quick
            test_all_truncations;
        ] );
    ]
