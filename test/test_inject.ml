(* Fault-injection tests: annotation mutations, accelerator failure, trap
   parity and the resource-limit / error-taxonomy plumbing.

   The load-bearing property (the issue's acceptance bar): annotations are
   hints, not trusted facts — for EVERY annotation mutation, on every
   Table-1 kernel, the program's observable results are bit-identical to
   the unannotated run.  Only JIT work accounting and spill counts may
   move. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- annotation mutations on Table-1 kernels ---------------- *)

(* run a (possibly mutated) already-offline-optimized program through the
   online pipeline and observe everything *)
let run_prog (p : Pvir.Prog.t) (k : Pvkernels.Kernels.t) :
    Pvkernels.Harness.observation * Pvjit.Jit.report =
  let machine = Pvmach.Machine.x86ish in
  let bc = Pvir.Serial.encode p in
  let on = Core.Splitc.online ~mode:Core.Splitc.Split ~machine bc in
  Pvkernels.Harness.fill_inputs on.Core.Splitc.img;
  let result =
    Pvvm.Sim.run on.Core.Splitc.sim k.Pvkernels.Kernels.entry
      (Pvkernels.Harness.args k Pvkernels.Kernels.n_default)
  in
  ( {
      Pvkernels.Harness.result;
      globals = Pvkernels.Harness.observe_globals on.Core.Splitc.img;
      printed = Pvvm.Sim.output on.Core.Splitc.sim;
    },
    on.Core.Splitc.jit )

let offline_prog (k : Pvkernels.Kernels.t) : Pvir.Prog.t =
  let p =
    Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name
      k.Pvkernels.Kernels.source
  in
  (Core.Splitc.offline ~mode:Core.Splitc.Split p).Core.Splitc.prog

let test_annotation_mutations_preserve_results () =
  List.iter
    (fun (k : Pvkernels.Kernels.t) ->
      let annotated = offline_prog k in
      (* the reference: all hints stripped — the pure "ignore annotations"
         run the paper requires to be semantically complete *)
      let baseline, _ =
        run_prog (Pvinject.Inject.drop_annotations annotated) k
      in
      List.iter
        (fun fault ->
          List.iter
            (fun seed ->
              let mutant =
                Pvinject.Inject.apply_annot_fault ~seed fault annotated
              in
              let obs, _ = run_prog mutant k in
              check bool_t
                (Printf.sprintf "%s: results identical under '%s' (seed %d)"
                   k.Pvkernels.Kernels.name
                   (Pvinject.Inject.annot_fault_to_string fault)
                   seed)
                true
                (Pvkernels.Harness.observation_equal baseline obs))
            [ 1; 42; 4096 ])
        Pvinject.Inject.all_annot_faults)
    Pvkernels.Kernels.table1

let test_corrupt_annotations_degrade_gracefully () =
  (* a kernel whose spill order is garbage must (a) still run correctly
     (above) and (b) be visibly downgraded: Invalid status in the report
     and an annot_fallback charge in the work accounting *)
  let k = List.hd Pvkernels.Kernels.table1 in
  let mutant =
    Pvinject.Inject.corrupt_spill_order ~seed:7 (offline_prog k)
  in
  let _, jit = run_prog mutant k in
  check bool_t "some function reports Invalid annotations" true
    (List.exists
       (fun (f : Pvjit.Jit.func_report) ->
         match f.Pvjit.Jit.annot_status with
         | Pvjit.Annot_check.Invalid _ -> true
         | _ -> false)
       jit.Pvjit.Jit.funcs);
  check bool_t "fallback is charged to the online account" true
    (Pvir.Account.find jit.Pvjit.Jit.work "jit.annot_fallback" > 0)

let test_valid_annotations_stay_valid () =
  let k = List.hd Pvkernels.Kernels.table1 in
  let _, jit = run_prog (offline_prog k) k in
  check bool_t "no Invalid status on untouched bytecode" true
    (List.for_all
       (fun (f : Pvjit.Jit.func_report) ->
         match f.Pvjit.Jit.annot_status with
         | Pvjit.Annot_check.Invalid _ -> false
         | _ -> true)
       jit.Pvjit.Jit.funcs)

(* ---------------- accelerator failure mid-schedule ---------------- *)

let tok x = [| Pvir.Value.i64 (Int64.of_int x) |]
let tok_val (t : Pvsched.Kpn.token) = Int64.to_int (Pvir.Value.to_int64 t.(0))

let failure_processes () =
  let stage name inputs outputs work annots =
    { Pvsched.Kpn.pname = name; inputs; outputs; fire = (fun t -> t); annots; work }
  in
  let numeric =
    stage "numeric" [ "raw" ] [ "cooked" ] 100
      (Pvir.Annot.add Pvir.Annot.key_hw_prefs
         (Pvir.Annot.List [ Pvir.Annot.Str "simd128" ])
         Pvir.Annot.empty)
  in
  [
    stage "src" [ "in" ] [ "raw" ] 1 Pvir.Annot.empty;
    numeric;
    stage "snk" [ "cooked" ] [ "out" ] 1 Pvir.Annot.empty;
  ]

let failure_platform () =
  let host = { Pvsched.Mapper.cname = "host"; machine = Pvmach.Machine.ppcish } in
  let accel = { Pvsched.Mapper.cname = "accel"; machine = Pvmach.Machine.dspish } in
  (host, accel, { Pvsched.Mapper.cores = [ host; accel ]; transfer_cost = 10 })

let failure_cost (p : Pvsched.Kpn.process) (c : Pvsched.Mapper.core) =
  match p.Pvsched.Kpn.pname with
  | "numeric" -> if c.Pvsched.Mapper.cname = "accel" then 50 else 400
  | _ -> if c.Pvsched.Mapper.cname = "accel" then 40 else 5

let fresh_failure_net n =
  let net = Pvsched.Kpn.create (failure_processes ()) in
  for i = 1 to n do
    Pvsched.Kpn.push net "in" (tok i)
  done;
  net

let test_remap_abandons_dead_core () =
  let _, accel, plat = failure_platform () in
  let ps = failure_processes () in
  let pl = Pvsched.Mapper.place plat failure_cost ps in
  check bool_t "numeric initially on the accelerator" true
    ((List.assoc "numeric" pl).Pvsched.Mapper.cname = accel.Pvsched.Mapper.cname);
  let pl' = Pvsched.Mapper.remap plat failure_cost pl ~dead:"accel" ps in
  List.iter
    (fun (name, (c : Pvsched.Mapper.core)) ->
      check bool_t (name ^ " off the dead core") true
        (c.Pvsched.Mapper.cname <> "accel"))
    pl'

let test_accelerator_failure_only_moves_makespan () =
  let _, _, plat = failure_platform () in
  let ps = failure_processes () in
  let pl = Pvsched.Mapper.place plat failure_cost ps in
  (* KPN results: identical with and without the failure (the mapper never
     touches the dataflow — Kahn determinism makes remapping safe) *)
  let out_of net =
    ignore (Pvsched.Kpn.run net);
    List.map tok_val (Pvsched.Kpn.drain net "out")
  in
  let healthy_out = out_of (fresh_failure_net 16) in
  let failed_out = out_of (fresh_failure_net 16) in
  check bool_t "identical channel streams" true (healthy_out = failed_out);
  (* the makespan is what moves: kill the accelerator mid-schedule *)
  let t_healthy = Pvsched.Mapper.makespan plat failure_cost pl (fresh_failure_net 16) in
  let failure = { Pvsched.Mapper.dead_core = "accel"; at = 200L } in
  let t_failed =
    Pvsched.Mapper.makespan_with_failure plat failure_cost pl ~failure
      (fresh_failure_net 16)
  in
  check bool_t "failure costs cycles" true (Int64.compare t_failed t_healthy > 0);
  (* a failure after the schedule completes changes nothing *)
  let late = { Pvsched.Mapper.dead_core = "accel"; at = Int64.max_int } in
  let t_late =
    Pvsched.Mapper.makespan_with_failure plat failure_cost pl ~failure:late
      (fresh_failure_net 16)
  in
  check bool_t "late failure is free" true (Int64.equal t_late t_healthy)

let test_failure_at_time_zero_equals_no_accel_placement () =
  (* dying at cycle 0 must cost at least as much as never having the
     accelerator's help for the displaced stage *)
  let _, _, plat = failure_platform () in
  let ps = failure_processes () in
  let pl = Pvsched.Mapper.place plat failure_cost ps in
  let failure = { Pvsched.Mapper.dead_core = "accel"; at = 0L } in
  let t0 =
    Pvsched.Mapper.makespan_with_failure plat failure_cost pl ~failure
      (fresh_failure_net 8)
  in
  let t_healthy = Pvsched.Mapper.makespan plat failure_cost pl (fresh_failure_net 8) in
  check bool_t "immediate failure is the worst case" true
    (Int64.compare t0 t_healthy >= 0)

(* ---------------- trap parity and resource limits ---------------- *)

let test_sim_fuel_trap_parity () =
  let run engine =
    let src = "i64 main() { for (;;) { } return 0; }" in
    let p = Core.Splitc.frontend src in
    let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
    let bc = Core.Splitc.distribute off in
    let on =
      Core.Splitc.online ~machine:Pvmach.Machine.x86ish ~engine bc
    in
    let sim = on.Core.Splitc.sim in
    sim.Pvvm.Sim.fuel <- 10_000L;
    match Pvvm.Sim.run sim "main" [] with
    | _ -> Alcotest.fail "infinite loop terminated"
    | exception Pvvm.Sim.Trap m -> (m, sim.Pvvm.Sim.stats.Pvvm.Sim.instrs)
  in
  let m0, i0 = run Pvvm.Sim.Tree_walk and m1, i1 = run Pvvm.Sim.Threaded in
  check Alcotest.string "same trap message" m0 m1;
  check bool_t "canonical fuel message" true
    (String.equal m0 Pvvm.Sim.fuel_exhausted_msg);
  check bool_t "same trap point" true (Int64.equal i0 i1)

let test_interp_max_fuel_clamp () =
  (* the threaded engine folds the Int64 budget into a native int
     ([ectx_of] clamps >= max_int): an unlimited budget must behave as
     unlimited on both engines, not wrap negative and trap instantly *)
  List.iter
    (fun engine ->
      let p = Core.Splitc.frontend "i64 main() { return 41 + 1; }" in
      let it = Pvvm.Interp.create ~engine ~fuel:Int64.max_int (Pvvm.Image.load p) in
      match Pvvm.Interp.run it "main" [] with
      | Some v ->
        check bool_t "computes through max fuel" true
          (Int64.equal (Pvir.Value.to_int64 v) 42L)
      | None -> Alcotest.fail "no result")
    [ Pvvm.Interp.Tree_walk; Pvvm.Interp.Threaded ]

let test_memory_alloc_limit () =
  (match Pvvm.Memory.create ~alloc_limit:4096 8192 with
  | _ -> Alcotest.fail "over-limit allocation succeeded"
  | exception Pvvm.Memory.Limit _ -> ());
  (* within the cap: fine *)
  ignore (Pvvm.Memory.create ~alloc_limit:4096 4096);
  (* and through the image loader *)
  let p = Core.Splitc.frontend "i64 main() { return 0; }" in
  match Pvvm.Image.load ~mem_size:(1 lsl 20) ~alloc_limit:(1 lsl 16) p with
  | _ -> Alcotest.fail "image loader ignored the allocation cap"
  | exception Pvvm.Memory.Limit _ -> ()

(* ---------------- error taxonomy ---------------- *)

let test_classify_taxonomy () =
  let code e =
    match Core.Splitc.classify e with
    | Some err -> Core.Splitc.exit_code err
    | None -> -1
  in
  check int_t "frontend" 2 (code (Minic.Parser.Error "x"));
  check int_t "decode" 3
    (code (Pvir.Serial.Corrupt { Pvir.Serial.offset = 0; reason = "x" }));
  check int_t "verify" 4 (code (Pvir.Verify.Error "x"));
  check int_t "link" 5 (code (Pvir.Link.Error "x"));
  check int_t "jit" 6 (code (Pvjit.Regalloc.Error "x"));
  check int_t "trap" 7 (code (Pvvm.Interp.Trap "division by zero"));
  check int_t "interp fuel = resource limit" 8
    (code (Pvvm.Interp.Trap Pvvm.Interp.fuel_exhausted_msg));
  check int_t "sim fuel = resource limit" 8
    (code (Pvvm.Sim.Trap Pvvm.Sim.fuel_exhausted_msg));
  check int_t "memory cap = resource limit" 8
    (code (Pvvm.Memory.Limit "x"));
  check int_t "io" 9 (code (Sys_error "x"));
  check bool_t "unknown exceptions are not swallowed" true
    (Core.Splitc.classify Exit = None)

(* ---------------- degradation ledger ---------------- *)

let test_byte_scenarios_fill_ledger () =
  (* sweep seeded byte-fault scenarios over a real kernel's bytecode: every
     mutant must hit one of the two nets or be explicitly tolerated, and
     each tolerated one must leave a Decode_tolerated ledger entry naming
     its faults — graceful degradation that is recorded, never silent *)
  let k = List.hd Pvkernels.Kernels.table1 in
  let bc = Pvir.Serial.encode (offline_prog k) in
  let ledger = Pvtrace.Ledger.create () in
  let tolerated = ref 0 and rejected = ref 0 in
  for seed = 0 to 199 do
    match fst (Pvinject.Inject.byte_scenario ~seed ~ledger bc) with
    | Pvinject.Inject.Tolerated p ->
      incr tolerated;
      (* tolerated means it passed the verifier too *)
      check bool_t
        (Printf.sprintf "tolerated mutant of seed %d verifies" seed)
        true
        (Pvir.Verify.program_result p = Ok ())
    | Pvinject.Inject.Rejected_decode _ | Pvinject.Inject.Rejected_verify _ ->
      incr rejected
  done;
  check bool_t "sweep produced tolerated mutants" true (!tolerated > 0);
  check bool_t "sweep produced rejected mutants" true (!rejected > 0);
  check int_t "one ledger entry per tolerated mutant" !tolerated
    (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Decode_tolerated);
  check bool_t "entries name their faults" true
    (List.for_all
       (fun (e : Pvtrace.Ledger.event) ->
         e.Pvtrace.Ledger.subject = "distribution"
         && String.length e.Pvtrace.Ledger.detail > 0)
       (Pvtrace.Ledger.by_kind ledger Pvtrace.Ledger.Decode_tolerated))

let test_annot_rejects_land_in_ledger () =
  (* the other ledger kind on the distribution path: corrupted spill-order
     annotations must be rejected into the ledger by the online JIT *)
  let k = List.hd Pvkernels.Kernels.table1 in
  let mutant =
    Pvinject.Inject.corrupt_spill_order ~seed:7 (offline_prog k)
  in
  let ledger = Pvtrace.Ledger.create () in
  let _ =
    Core.Splitc.online ~mode:Core.Splitc.Split ~machine:Pvmach.Machine.x86ish
      ~ledger
      (Pvir.Serial.encode mutant)
  in
  check bool_t "corrupt hints recorded as Annot_reject" true
    (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Annot_reject > 0);
  let clean = Pvtrace.Ledger.create () in
  let _ =
    Core.Splitc.online ~mode:Core.Splitc.Split ~machine:Pvmach.Machine.x86ish
      ~ledger:clean
      (Pvir.Serial.encode (offline_prog k))
  in
  check int_t "clean bytecode records nothing" 0 (Pvtrace.Ledger.count clean)

let test_guard_total_on_corrupt_input () =
  match
    Core.Splitc.online_r ~machine:Pvmach.Machine.x86ish "PVIR garbage here"
  with
  | Error (Core.Splitc.Decode_error _) -> ()
  | Error e ->
    Alcotest.failf "wrong class: %s" (Core.Splitc.error_message e)
  | Ok _ -> Alcotest.fail "garbage decoded"

let () =
  Alcotest.run "inject"
    [
      ( "annotations",
        [
          Alcotest.test_case "mutations preserve results (Table 1)" `Quick
            test_annotation_mutations_preserve_results;
          Alcotest.test_case "corrupt hints degrade gracefully" `Quick
            test_corrupt_annotations_degrade_gracefully;
          Alcotest.test_case "clean hints stay valid" `Quick
            test_valid_annotations_stay_valid;
        ] );
      ( "accelerator-failure",
        [
          Alcotest.test_case "remap abandons dead core" `Quick
            test_remap_abandons_dead_core;
          Alcotest.test_case "failure only moves makespan" `Quick
            test_accelerator_failure_only_moves_makespan;
          Alcotest.test_case "failure at t=0 is worst case" `Quick
            test_failure_at_time_zero_equals_no_accel_placement;
        ] );
      ( "limits",
        [
          Alcotest.test_case "sim fuel trap parity" `Quick
            test_sim_fuel_trap_parity;
          Alcotest.test_case "interp max-fuel clamp" `Quick
            test_interp_max_fuel_clamp;
          Alcotest.test_case "memory allocation cap" `Quick
            test_memory_alloc_limit;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "byte scenarios fill the ledger" `Quick
            test_byte_scenarios_fill_ledger;
          Alcotest.test_case "annot rejects land in the ledger" `Quick
            test_annot_rejects_land_in_ledger;
        ] );
      ( "taxonomy",
        [
          Alcotest.test_case "classify covers the pipeline" `Quick
            test_classify_taxonomy;
          Alcotest.test_case "guard is total on corrupt input" `Quick
            test_guard_total_on_corrupt_input;
        ] );
    ]
