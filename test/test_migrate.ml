(* Live migration of running kernels across heterogeneous cores.

   Two layers are pinned here.  Scheduler level: a firing caught
   mid-execution by an accelerator failure is split into a truncated
   span on the dying core and a resumed remainder on a survivor, pays
   only the migration overhead plus the rescaled remaining work (so it
   beats the rerun-from-scratch recovery), records a Migrate ledger
   event and shows up as a migrate: instant on the timeline.  VM level:
   the migration oracle — checkpoint on one engine at a fuzzed kill
   point, restore and resume on another — holds over generated
   programs, random kill points and every engine pair, including
   accounting. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let int64_t = Alcotest.int64
let string_t = Alcotest.string

let string_contains hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i =
    i + n <= m && (String.equal (String.sub hay i n) sub || go (i + 1))
  in
  go 0

(* ---------------- scheduler-level migration ---------------- *)

let tok x = [| Pvir.Value.i64 (Int64.of_int x) |]

let platform () =
  let host = { Pvsched.Mapper.cname = "host"; machine = Pvmach.Machine.ppcish } in
  let accel = { Pvsched.Mapper.cname = "accel"; machine = Pvmach.Machine.dspish } in
  { Pvsched.Mapper.cores = [ host; accel ]; transfer_cost = 10 }

(* src -> numeric -> snk; numeric is cheap on the accelerator and
   painful on the host, so the mapper offloads it *)
let processes () =
  let control name inputs outputs =
    {
      Pvsched.Kpn.pname = name;
      inputs;
      outputs;
      fire = (fun toks -> toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let numeric =
    {
      Pvsched.Kpn.pname = "numeric";
      inputs = [ "raw" ];
      outputs = [ "cooked" ];
      fire = (fun toks -> toks);
      annots =
        Pvir.Annot.add Pvir.Annot.key_hw_prefs
          (Pvir.Annot.List [ Pvir.Annot.Str "simd128" ])
          Pvir.Annot.empty;
      work = 100;
    }
  in
  [ control "src" [ "in" ] [ "raw" ]; numeric; control "snk" [ "cooked" ] [ "out" ] ]

let cost (p : Pvsched.Kpn.process) (c : Pvsched.Mapper.core) =
  match p.Pvsched.Kpn.pname with
  | "numeric" -> if String.equal c.Pvsched.Mapper.cname "accel" then 500 else 2000
  | _ -> if String.equal c.Pvsched.Mapper.cname "accel" then 400 else 50

let n_tokens = 8

let fresh_net () =
  let net = Pvsched.Kpn.create (processes ()) in
  for i = 1 to n_tokens do
    Pvsched.Kpn.push net "in" (tok i)
  done;
  net

let migration = { Pvsched.Mapper.checkpoint_cost = 64; restore_cost = 256 }

(* Kill the accelerator 400 cycles into the first 500-cycle numeric
   firing: exactly that firing must be caught mid-execution. *)
let mid_firing_failure (evs : Pvsched.Mapper.sched_event list) =
  match
    List.find_opt
      (fun (e : Pvsched.Mapper.sched_event) ->
        String.equal e.Pvsched.Mapper.se_proc "numeric"
        && String.equal e.Pvsched.Mapper.se_core "accel")
      evs
  with
  | Some e ->
    {
      Pvsched.Mapper.dead_core = "accel";
      at = Int64.add e.Pvsched.Mapper.se_start 400L;
    }
  | None -> Alcotest.fail "numeric never scheduled on the accelerator"

let migrated_schedule () =
  let plat = platform () in
  let pl = Pvsched.Mapper.place plat cost (processes ()) in
  let clean = Pvsched.Mapper.schedule plat cost pl (fresh_net ()) in
  let failure = mid_firing_failure clean in
  let ledger = Pvtrace.Ledger.create () in
  let evs =
    Pvsched.Mapper.schedule_with_migration ~ledger plat cost pl ~failure
      ~migration (fresh_net ())
  in
  (plat, failure, ledger, evs)

let test_split_spans () =
  let _, failure, _, evs = migrated_schedule () in
  let migrated =
    List.filter
      (fun (e : Pvsched.Mapper.sched_event) -> e.Pvsched.Mapper.se_migrated)
      evs
  in
  check int_t "exactly one truncated + one resumed span" 2
    (List.length migrated);
  let truncated, resumed =
    match migrated with
    | [ (a : Pvsched.Mapper.sched_event); b ] ->
      if String.equal a.Pvsched.Mapper.se_core failure.Pvsched.Mapper.dead_core
      then (a, b)
      else (b, a)
    | _ -> assert false
  in
  check string_t "truncated half on the dying core"
    failure.Pvsched.Mapper.dead_core truncated.Pvsched.Mapper.se_core;
  check int64_t "truncated half ends at the failure instant"
    failure.Pvsched.Mapper.at truncated.Pvsched.Mapper.se_end;
  check bool_t "truncated half is not remapped" false
    truncated.Pvsched.Mapper.se_remapped;
  check bool_t "resumed half runs on a survivor" true
    (not
       (String.equal resumed.Pvsched.Mapper.se_core
          failure.Pvsched.Mapper.dead_core));
  check bool_t "resumed half is remapped" true
    resumed.Pvsched.Mapper.se_remapped;
  check int_t "both halves carry the same firing index"
    truncated.Pvsched.Mapper.se_firing resumed.Pvsched.Mapper.se_firing;
  check string_t "both halves name the same process"
    truncated.Pvsched.Mapper.se_proc resumed.Pvsched.Mapper.se_proc;
  (* the resume waits for checkpoint + restore *)
  let earliest =
    Int64.add failure.Pvsched.Mapper.at
      (Int64.of_int
         (migration.Pvsched.Mapper.checkpoint_cost
         + migration.Pvsched.Mapper.restore_cost))
  in
  check bool_t "resume pays the migration overhead" true
    (Int64.compare resumed.Pvsched.Mapper.se_start earliest >= 0);
  (* 100/500 of the accel work remains; rescaled to the host's 2000
     that is exactly 400 cycles *)
  check int64_t "remainder rescaled to the survivor's speed" 400L
    (Int64.sub resumed.Pvsched.Mapper.se_end resumed.Pvsched.Mapper.se_start)

let test_dead_core_stops () =
  let _, failure, _, evs = migrated_schedule () in
  List.iter
    (fun (e : Pvsched.Mapper.sched_event) ->
      if String.equal e.Pvsched.Mapper.se_core failure.Pvsched.Mapper.dead_core
      then
        check bool_t "no work on the dead core past the failure" true
          (Int64.compare e.Pvsched.Mapper.se_end failure.Pvsched.Mapper.at <= 0))
    evs

let test_every_firing_covered () =
  let _, _, _, evs = migrated_schedule () in
  (* n_tokens through 3 processes; each firing appears once, the
     migrated one twice (its two halves) *)
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (e : Pvsched.Mapper.sched_event) ->
      let k = (e.Pvsched.Mapper.se_proc, e.Pvsched.Mapper.se_firing) in
      Hashtbl.replace tbl k ((try Hashtbl.find tbl k with Not_found -> 0) + 1))
    evs;
  check int_t "all firings scheduled" (3 * n_tokens) (Hashtbl.length tbl);
  Hashtbl.iter
    (fun (p, f) n ->
      if n <> 1 && n <> 2 then
        Alcotest.failf "firing %s#%d scheduled %d times" p f n)
    tbl

let test_migration_beats_rerun () =
  let plat = platform () in
  let pl = Pvsched.Mapper.place plat cost (processes ()) in
  let clean = Pvsched.Mapper.schedule plat cost pl (fresh_net ()) in
  let failure = mid_firing_failure clean in
  let rerun =
    Pvsched.Mapper.makespan_with_failure plat cost pl ~failure (fresh_net ())
  in
  let migrated =
    Pvsched.Mapper.makespan_with_migration plat cost pl ~failure ~migration
      (fresh_net ())
  in
  check bool_t
    (Printf.sprintf "migration (%Ld cycles) beats rerun-from-scratch (%Ld)"
       migrated rerun)
    true
    (Int64.compare migrated rerun < 0)

let test_migrate_ledger_and_trace () =
  let plat, _, ledger, evs = migrated_schedule () in
  check int_t "one Migrate ledger event" 1
    (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Migrate);
  (match Pvtrace.Ledger.by_kind ledger Pvtrace.Ledger.Migrate with
  | [ e ] ->
    check string_t "subject is the migrated process" "numeric"
      e.Pvtrace.Ledger.subject;
    check bool_t "detail names both cores" true
      (string_contains e.Pvtrace.Ledger.detail "accel"
      && string_contains e.Pvtrace.Ledger.detail "host")
  | _ -> Alcotest.fail "expected exactly one Migrate event");
  (* the not-yet-started displaced firings still count as a remap *)
  check bool_t "Accel_remap recorded for the displaced process" true
    (Pvtrace.Ledger.count_kind ledger Pvtrace.Ledger.Accel_remap > 0);
  let tr = Pvtrace.Trace.create () in
  Pvsched.Mapper.emit_trace plat (processes ()) evs tr;
  let json = Pvtrace.Export.chrome_json ~ledger tr in
  check bool_t "timeline carries migrate: instants" true
    (string_contains json "migrate:numeric");
  check bool_t "timeline carries the ledger migrate event" true
    (string_contains json "\"migrate\"")

(* ---------------- VM-level migration oracle ---------------- *)

let no_mismatches what = function
  | [] -> ()
  | (m : Pvcheck.Oracle.mismatch) :: _ ->
    Alcotest.failf "%s: %s/%s: %s" what m.Pvcheck.Oracle.path
      m.Pvcheck.Oracle.what m.Pvcheck.Oracle.detail

(* Seeded kills over generated programs: every (program, kill point,
   source engine, target engine) drawn must satisfy the full migration
   contract. *)
let test_oracle_seeded_kills () =
  for seed = 0 to 14 do
    let prog = Pvcheck.Gen.program ~seed in
    no_mismatches
      (Printf.sprintf "gen seed %d" seed)
      (Pvcheck.Migrate.check ~kill_seed:((seed * 31) + 7) prog)
  done

(* Exhaustive kill-point sweep on one program for a fixed heterogeneous
   engine pair: no instruction count is a bad place to die. *)
let test_oracle_kill_sweep () =
  let prog = Pvcheck.Gen.program ~seed:3 in
  let reference = Pvcheck.Oracle.run_interp prog Pvvm.Interp.Tree_walk in
  let total = Int64.to_int reference.Pvcheck.Oracle.iinstrs in
  check bool_t "program runs long enough to sweep" true (total > 10);
  let step = max 1 (total / 60) in
  let at = ref 1 in
  while !at <= total do
    let k =
      { Pvinject.Inject.kill_at = Int64.of_int !at; kill_src = 1; kill_dst = 2 }
    in
    no_mismatches
      (Printf.sprintf "kill at instr %d" !at)
      (Pvcheck.Migrate.check_scenario prog reference k);
    at := !at + step
  done

(* A short campaign through the same entry point pvfuzz and CI use. *)
let test_oracle_campaign () =
  match
    Pvcheck.Migrate.campaign ~seed:20260808 ~count:25 ~max_findings:3 ()
  with
  | [] -> ()
  | (f : Pvcheck.Harness.finding) :: _ ->
    Alcotest.failf "case %d (gen seed %d): %s/%s: %s" f.Pvcheck.Harness.case
      f.Pvcheck.Harness.gen_seed f.Pvcheck.Harness.stage
      f.Pvcheck.Harness.what f.Pvcheck.Harness.detail

let () =
  Alcotest.run "migrate"
    [
      ( "scheduler",
        [
          Alcotest.test_case "in-flight firing splits" `Quick test_split_spans;
          Alcotest.test_case "dead core stops" `Quick test_dead_core_stops;
          Alcotest.test_case "every firing covered" `Quick
            test_every_firing_covered;
          Alcotest.test_case "migration beats rerun" `Quick
            test_migration_beats_rerun;
          Alcotest.test_case "ledger + timeline" `Quick
            test_migrate_ledger_and_trace;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "seeded kills" `Quick test_oracle_seeded_kills;
          Alcotest.test_case "kill-point sweep" `Quick test_oracle_kill_sweep;
          Alcotest.test_case "campaign" `Quick test_oracle_campaign;
        ] );
    ]
