(* Tier-1 slice of the differential fuzzing harness (lib/pvcheck).

   The full campaign lives in bin/pvfuzz (and the CI fuzz-smoke job);
   here we pin the properties that make the harness trustworthy:

   - the generator is deterministic and only emits verifier-clean
     programs;
   - a short run of the full differential matrix (all engines, all
     passes) is green;
   - a deliberately broken pass injected through the harness's pass-list
     hook is caught and shrunk to a tiny reproducer whose dump parses
     back and still fails — the end-to-end fuzz→catch→shrink→replay
     loop;
   - the paper's §4 split-regalloc claim holds as a property over a
     pinned generated corpus: annotation-guided allocation never costs
     more dynamic spill traffic than the online heuristic, and matches
     recomputed-online quality. *)

open Pvir

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- generator ---------------- *)

let test_gen_deterministic () =
  let a = Pp.program_to_string (Pvcheck.Gen.program ~seed:7) in
  let b = Pp.program_to_string (Pvcheck.Gen.program ~seed:7) in
  check string_t "same seed, same program" a b;
  let c = Pp.program_to_string (Pvcheck.Gen.program ~seed:8) in
  check bool_t "different seed, different program" false (String.equal a c)

let test_gen_verifies () =
  for seed = 0 to 29 do
    let p = Pvcheck.Gen.program ~seed in
    (match Verify.program_result p with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d does not verify: %s" seed m);
    check bool_t
      (Printf.sprintf "seed %d has main" seed)
      true
      (Prog.find_func p "main" <> None)
  done

let test_gen_round_trips () =
  (* generated programs survive both distribution formats *)
  for seed = 0 to 9 do
    let p = Pvcheck.Gen.program ~seed in
    let txt = Pp.program_to_string p in
    check string_t
      (Printf.sprintf "seed %d text round-trip" seed)
      txt
      (Pp.program_to_string (Parse.program txt));
    ignore (Serial.decode (Serial.encode p))
  done

(* ---------------- differential matrix ---------------- *)

let test_matrix_covers_all_machines () =
  List.iter
    (fun (m : Pvmach.Machine.t) ->
      check bool_t
        ("matrix has jit-" ^ m.Pvmach.Machine.name)
        true
        (Pvcheck.Oracle.path_known ("jit-" ^ m.Pvmach.Machine.name)))
    Pvmach.Machine.all

let test_short_campaign_green () =
  (* every engine, every pass, every machine — a fast slice of what
     bin/pvfuzz runs at scale *)
  let findings = Pvcheck.Harness.run ~seed:1 ~count:20 () in
  (match findings with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "case %d (gen seed %d) failed at %s: %s — %s"
      f.Pvcheck.Harness.case f.Pvcheck.Harness.gen_seed
      f.Pvcheck.Harness.stage f.Pvcheck.Harness.what f.Pvcheck.Harness.detail)

let test_replay_seed_matches () =
  (* the (run seed, case index) -> generator seed mapping the CLI prints
     must regenerate the very program the run saw *)
  let seen = ref [] in
  ignore
    (Pvcheck.Harness.run ~paths:[ "interp-th" ] ~passes:[] ~seed:5 ~count:4
       ~on_progress:(fun _ -> seen := !seen @ [ () ])
       ());
  check int_t "progress for every case" 4 (List.length !seen);
  for case = 0 to 3 do
    let gs = Pvcheck.Harness.replay_seed ~seed:5 ~case in
    ignore (Pvcheck.Gen.program ~seed:gs)
  done

(* ---------------- planted bug: catch and shrink ---------------- *)

(* The test hook from the issue: a deliberately broken "optimization"
   injected into the real pass list.  It silently deletes every store —
   the kind of over-eager DCE a real pass could ship with. *)
let evil_dce : Pvcheck.Passcheck.pass =
  {
    Pvcheck.Passcheck.pname = "evil-dce";
    papply =
      (fun p ->
        List.iter
          (fun (fn : Func.t) ->
            List.iter
              (fun (b : Func.block) ->
                b.Func.instrs <-
                  List.filter
                    (fun i ->
                      match i with Instr.Store _ -> false | _ -> true)
                    b.Func.instrs)
              fn.Func.blocks)
          p.Prog.funcs);
  }

let test_planted_bug_caught_and_shrunk () =
  let passes = Pvcheck.Passcheck.all_passes @ [ evil_dce ] in
  let findings =
    Pvcheck.Harness.run ~paths:[] ~passes ~shrink:true ~seed:2026 ~count:5 ()
  in
  match findings with
  | [] -> Alcotest.fail "planted pass bug not caught within 5 cases"
  | f :: _ ->
    check string_t "caught at the injected pass" "evil-dce"
      f.Pvcheck.Harness.stage;
    let shrunk =
      match f.Pvcheck.Harness.shrunk with
      | Some q -> q
      | None -> Alcotest.fail "no shrunk reproducer"
    in
    let sz = Pvcheck.Shrink.size shrunk in
    check bool_t
      (Printf.sprintf "reproducer is tiny (%d instrs <= 10)" sz)
      true (sz <= 10);
    check bool_t "reproducer still verifies" true
      (Verify.program_result shrunk = Ok ());
    (* the dumped .pvir must parse back and still trip the same bug —
       that is what makes it a reproducer rather than a printout *)
    let reparsed = Parse.program (Pvcheck.Shrink.to_pvir shrunk) in
    let still_fails =
      List.exists
        (fun (stage, _, _) -> stage = "evil-dce")
        (Pvcheck.Harness.check_case ~paths:[] ~passes:[ evil_dce ] reparsed)
    in
    check bool_t "dumped reproducer replays the failure" true still_fails

(* ---------------- §4 property: split regalloc never costs more -------- *)

let test_split_regalloc_property () =
  (* Paper §4: offline spill-order annotations must never make the online
     allocator produce *more dynamic spill traffic* than its own blind
     heuristic, and must match the quality of weights recomputed online —
     measured over a pinned generated corpus on the register-poorest
     machine.  (Static spilled-reg counts can legitimately go either way:
     the annotation optimizes traffic, not slot count.) *)
  let machine = Pvmach.Machine.find_exn "uchost" in
  let annot = ref 0L and recomputed = ref 0L and heuristic = ref 0L in
  for seed = 100 to 140 do
    let prog = Pvcheck.Gen.program ~seed in
    let q = Prog.copy prog in
    Pvopt.Regalloc_annotate.run q;
    let ops p hints =
      (Pvcheck.Oracle.run_jit p machine hints Pvvm.Sim.Threaded)
        .Pvcheck.Oracle.jspill_ops
    in
    annot := Int64.add !annot (ops q Pvjit.Jit.Hints_annotation);
    recomputed := Int64.add !recomputed (ops q Pvjit.Jit.Hints_recompute);
    heuristic := Int64.add !heuristic (ops prog Pvjit.Jit.Hints_none)
  done;
  check bool_t "corpus exercises spill pressure" true
    (Int64.compare !heuristic 0L > 0);
  check bool_t
    (Printf.sprintf "annotation (%Ld ops) <= heuristic (%Ld ops)" !annot
       !heuristic)
    true
    (Int64.compare !annot !heuristic <= 0);
  check bool_t
    (Printf.sprintf "annotation (%Ld ops) matches recomputed (%Ld ops)" !annot
       !recomputed)
    true
    (Int64.equal !annot !recomputed)

let () =
  Alcotest.run "pvcheck"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_gen_deterministic;
          Alcotest.test_case "always verifier-clean" `Quick test_gen_verifies;
          Alcotest.test_case "distribution round-trips" `Quick
            test_gen_round_trips;
        ] );
      ( "differential matrix",
        [
          Alcotest.test_case "covers every machine" `Quick
            test_matrix_covers_all_machines;
          Alcotest.test_case "short campaign green" `Quick
            test_short_campaign_green;
          Alcotest.test_case "replay seed mapping" `Quick
            test_replay_seed_matches;
        ] );
      ( "planted bug",
        [
          Alcotest.test_case "caught and shrunk to <= 10 instrs" `Quick
            test_planted_bug_caught_and_shrunk;
        ] );
      ( "split regalloc",
        [
          Alcotest.test_case "annotations never cost dynamic spills" `Quick
            test_split_regalloc_property;
        ] );
    ]
