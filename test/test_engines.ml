(* Differential tests pinning the threaded (pre-decoded) execution
   engines to the tree-walking reference engines.

   The pre-decode pass in Pvvm.Decode/Pvvm.Mdecode must be invisible:
   for any program, the threaded interpreter and simulator must produce
   the same result, the same printed output, the *exact* same
   cycle/instruction (and, for the simulator, spill-op) counts, and the
   same trap message at the same point as the tree-walkers.  Random
   programs cover the well-formed path; hand-built ill-formed functions
   cover the trap paths the frontend can never emit. *)

let seeded_test ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* ---------------- random MiniC programs ---------------- *)

(* Expressions over three i64 variables; division/shift guarded so the
   generated programs differ in values, not in traps (trap parity has
   its own dedicated cases below). *)
type rexpr =
  | Rlit of int
  | Rvar of int
  | Rbin of string * rexpr * rexpr
  | Rsel of rexpr * rexpr * rexpr

let rec rexpr_to_src = function
  | Rlit n -> Printf.sprintf "%d" n
  | Rvar v -> [| "a"; "b"; "c" |].(v mod 3)
  | Rbin ("/", e1, e2) ->
    Printf.sprintf "(%s / ((%s) | 1))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin ("%", e1, e2) ->
    Printf.sprintf "(%s %% ((%s) | 1))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin (">>", e1, e2) ->
    Printf.sprintf "(%s >> ((%s) & 15))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin ("<<", e1, e2) ->
    Printf.sprintf "(%s << ((%s) & 15))" (rexpr_to_src e1) (rexpr_to_src e2)
  | Rbin (op, e1, e2) ->
    Printf.sprintf "(%s %s %s)" (rexpr_to_src e1) op (rexpr_to_src e2)
  | Rsel (c, t, f) ->
    Printf.sprintf "((%s) > 0 ? %s : %s)" (rexpr_to_src c) (rexpr_to_src t)
      (rexpr_to_src f)

let rexpr_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            oneof
              [
                map (fun i -> Rlit (i - 50)) (int_bound 100);
                map (fun v -> Rvar v) (int_bound 2);
              ]
          else
            let sub = self (n / 2) in
            frequency
              [
                (2, map (fun i -> Rlit (i - 50)) (int_bound 100));
                (2, map (fun v -> Rvar v) (int_bound 2));
                ( 6,
                  map3
                    (fun op e1 e2 -> Rbin (op, e1, e2))
                    (oneofl
                       [ "+"; "-"; "*"; "&"; "|"; "^"; "/"; "%"; "<<"; ">>" ])
                    sub sub );
                (1, map3 (fun a b c -> Rsel (a, b, c)) sub sub sub);
              ])
        (min n 10))

(* Straight-line assignments followed by a short loop; prints the
   accumulator so the output channel is exercised too. *)
let rprog_gen =
  let open QCheck.Gen in
  map3
    (fun e1 e2 e3 ->
      Printf.sprintf
        {|
i64 main() {
  i64 a = 3;
  i64 b = -7;
  i64 c = 11;
  a = %s;
  b = %s;
  c = %s;
  i64 s = 0;
  for (i64 i = 0; i < 6; i = i + 1) {
    s = s + a - b + (c ^ i);
  }
  print_i64(s);
  return s;
}
|}
        (rexpr_to_src e1) (rexpr_to_src e2) (rexpr_to_src e3))
    rexpr_gen rexpr_gen rexpr_gen

let rprog_arb = QCheck.make rprog_gen ~print:(fun s -> s)

(* Loops over a global array: exercises the memory fast paths (all
   scalar widths via u16/u32 elements) and, on uchost, heavy spilling. *)
let rloop_gen =
  let open QCheck.Gen in
  map3
    (fun e1 e2 n ->
      Printf.sprintf
        {|
u16 arr[64];
i64 main() {
  for (i64 i = 0; i < 64; i++) { arr[i] = (u16)(i * 7 + 3); }
  i64 a = 1;
  i64 b = 2;
  i64 c = 3;
  for (i64 i = 0; i < %d; i++) {
    a = (i64)arr[i];
    b = %s;
    c = %s;
    arr[i] = (u16)(a + b + c);
  }
  i64 out = 0;
  for (i64 i = 0; i < 64; i++) { out = out + (i64)arr[i]; }
  return out;
}
|}
        n (rexpr_to_src e1) (rexpr_to_src e2))
    rexpr_gen rexpr_gen (int_bound 64)

let rloop_arb = QCheck.make rloop_gen ~print:(fun s -> s)

(* ---------------- observations ---------------- *)

(* Everything the engines must agree on, including the trap message when
   execution traps. *)
type 'a outcome = Value of 'a | Trapped of string

let run_interp ~engine src =
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create ~engine img in
  let r =
    match Pvvm.Interp.run it "main" [] with
    | v -> Value v
    | exception Pvvm.Interp.Trap m -> Trapped m
  in
  ( r,
    Pvvm.Interp.output it,
    it.Pvvm.Interp.stats.Pvvm.Interp.cycles,
    it.Pvvm.Interp.stats.Pvvm.Interp.instrs )

let interp_agree src =
  let r0, o0, c0, i0 = run_interp ~engine:Pvvm.Interp.Tree_walk src in
  let r1, o1, c1, i1 = run_interp ~engine:Pvvm.Interp.Threaded src in
  let same_r =
    match (r0, r1) with
    | Value (Some a), Value (Some b) -> Pvir.Value.equal a b
    | Value None, Value None -> true
    | Trapped a, Trapped b -> String.equal a b
    | _ -> false
  in
  same_r && String.equal o0 o1 && Int64.equal c0 c1 && Int64.equal i0 i1

let run_sim ~engine ~machine src =
  let _, on =
    Core.Splitc.run_source ~mode:Core.Splitc.Split ~machine ~engine src
  in
  let sim = on.Core.Splitc.sim in
  let r =
    match Pvvm.Sim.run sim "main" [] with
    | v -> Value v
    | exception Pvvm.Sim.Trap m -> Trapped m
  in
  ( r,
    Pvvm.Sim.output sim,
    sim.Pvvm.Sim.stats.Pvvm.Sim.cycles,
    sim.Pvvm.Sim.stats.Pvvm.Sim.instrs,
    sim.Pvvm.Sim.stats.Pvvm.Sim.spill_ops )

let sim_agree ~machine src =
  let r0, o0, c0, i0, s0 = run_sim ~engine:Pvvm.Sim.Tree_walk ~machine src in
  let r1, o1, c1, i1, s1 = run_sim ~engine:Pvvm.Sim.Threaded ~machine src in
  let same_r =
    match (r0, r1) with
    | Value (Some a), Value (Some b) -> Pvir.Value.equal a b
    | Value None, Value None -> true
    | Trapped a, Trapped b -> String.equal a b
    | _ -> false
  in
  same_r && String.equal o0 o1 && Int64.equal c0 c1 && Int64.equal i0 i1
  && Int64.equal s0 s1

let prop_interp_engines_agree src = interp_agree src
let prop_sim_engines_agree_x86 src = sim_agree ~machine:Pvmach.Machine.x86ish src

(* uchost has few registers, so the allocator spills: the spill_ops
   counter must match between engines, not just cycles *)
let prop_sim_engines_agree_uchost src =
  sim_agree ~machine:Pvmach.Machine.uchost src

(* ---------------- trap parity on ill-formed code ---------------- *)

let check = Alcotest.check Alcotest.bool

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* The frontend never emits a read of a never-written register, so build
   the PVIR by hand: the verifier only checks types, and both engines
   must raise the same Trap at runtime. *)
let test_uninitialized_register () =
  let run engine =
    let p = Pvir.Prog.create "t" in
    let fn = Pvir.Func.create ~name:"main" ~params:[] ~ret:(Some Pvir.Types.i64) in
    let d = Pvir.Func.fresh_reg fn Pvir.Types.i64 in
    let a = Pvir.Func.fresh_reg fn Pvir.Types.i64 in
    let b = Pvir.Func.add_block fn in
    b.Pvir.Func.instrs <- [ Pvir.Instr.Binop (Pvir.Instr.Add, d, a, a) ];
    b.Pvir.Func.term <- Pvir.Instr.Ret (Some d);
    Pvir.Prog.add_func p fn;
    let it = Pvvm.Interp.create ~engine (Pvvm.Image.load p) in
    match Pvvm.Interp.run it "main" [] with
    | _ -> Alcotest.fail "uninitialized read did not trap"
    | exception Pvvm.Interp.Trap m -> m
  in
  let m0 = run Pvvm.Interp.Tree_walk and m1 = run Pvvm.Interp.Threaded in
  check "same message" true (String.equal m0 m1);
  check "mentions uninitialized" true (contains_sub m0 "uninitialized register")

let test_empty_spill_slot () =
  let run engine =
    let p = Core.Splitc.frontend "i64 main() { return 0; }" in
    let img = Pvvm.Image.load p in
    let sim = Pvvm.Sim.create ~engine img Pvmach.Machine.x86ish in
    (* a function that reloads spill slot 0 without ever storing it *)
    let vreg_ty = Hashtbl.create 4 in
    Hashtbl.replace vreg_ty 0 Pvir.Types.i64;
    let fn =
      {
        Pvmach.Mir.mname = "spilly";
        mparams = [];
        marg_slots = [];
        mret = Some Pvir.Types.i64;
        mblocks =
          [
            {
              Pvmach.Mir.mlabel = 0;
              insts =
                [
                  Pvmach.Mir.inst ~dst:(Pvmach.Mir.V 0)
                    (Pvmach.Mir.Mframe_ld 0) Pvir.Types.i64;
                ];
              mterm = Pvmach.Mir.Tret (Some (Pvmach.Mir.V 0));
            };
          ];
        frame_size = 8;
        vreg_ty;
        next_vreg = 1;
        target = Pvmach.Machine.x86ish;
        mblock_index = None;
      }
    in
    Pvvm.Sim.add_func sim fn;
    match Pvvm.Sim.run sim "spilly" [] with
    | _ -> Alcotest.fail "empty spill reload did not trap"
    | exception Pvvm.Sim.Trap m -> m
  in
  let m0 = run Pvvm.Sim.Tree_walk and m1 = run Pvvm.Sim.Threaded in
  check "same message" true (String.equal m0 m1);
  check "mentions spill slot" true (contains_sub m0 "spill slot")

let test_fuel_exhaustion () =
  let run engine =
    let p = Core.Splitc.frontend "i64 main() { for (;;) { } return 0; }" in
    let it = Pvvm.Interp.create ~engine ~fuel:10_000L (Pvvm.Image.load p) in
    match Pvvm.Interp.run it "main" [] with
    | _ -> Alcotest.fail "infinite loop terminated"
    | exception Pvvm.Interp.Trap m ->
      (m, it.Pvvm.Interp.stats.Pvvm.Interp.instrs)
  in
  let m0, i0 = run Pvvm.Interp.Tree_walk
  and m1, i1 = run Pvvm.Interp.Threaded in
  check "same message" true (String.equal m0 m1);
  (* the trap must fire after the exact same number of instructions *)
  check "same trap point" true (Int64.equal i0 i1)

let test_division_by_zero_parity () =
  let src = "i64 main() { i64 z = 0; print_i64(7); return 5 / z; }" in
  check "interp engines agree on div-by-zero" true (interp_agree src);
  check "sim engines agree on div-by-zero" true
    (sim_agree ~machine:Pvmach.Machine.x86ish src)

(* ---------------- exact kernel cycle parity ---------------- *)

let test_kernel_cycle_parity () =
  List.iter
    (fun (k : Pvkernels.Kernels.t) ->
      let obs0, cyc0 =
        Pvkernels.Harness.run_interp ~engine:Pvvm.Interp.Tree_walk k
      in
      let obs1, cyc1 =
        Pvkernels.Harness.run_interp ~engine:Pvvm.Interp.Threaded k
      in
      check (k.Pvkernels.Kernels.name ^ " interp obs") true
        (Pvkernels.Harness.observation_equal obs0 obs1);
      check (k.Pvkernels.Kernels.name ^ " interp cycles") true
        (Int64.equal cyc0 cyc1);
      let r0 =
        Pvkernels.Harness.run_jit ~engine:Pvvm.Sim.Tree_walk
          ~mode:Core.Splitc.Split ~machine:Pvmach.Machine.x86ish k
      in
      let r1 =
        Pvkernels.Harness.run_jit ~engine:Pvvm.Sim.Threaded
          ~mode:Core.Splitc.Split ~machine:Pvmach.Machine.x86ish k
      in
      check (k.Pvkernels.Kernels.name ^ " sim obs") true
        (Pvkernels.Harness.observation_equal r0.Pvkernels.Harness.obs
           r1.Pvkernels.Harness.obs);
      check (k.Pvkernels.Kernels.name ^ " sim cycles") true
        (Int64.equal r0.Pvkernels.Harness.cycles r1.Pvkernels.Harness.cycles))
    Pvkernels.Kernels.table1

(* ---------------- registration ---------------- *)

let () =
  Alcotest.run "engines"
    [
      ( "differential",
        [
          seeded_test ~count:60 "interpreter engines agree" rprog_arb
            prop_interp_engines_agree;
          seeded_test ~count:40 "interpreter engines agree (array loops)"
            rloop_arb prop_interp_engines_agree;
          seeded_test ~count:25 "simulator engines agree (x86ish)" rprog_arb
            prop_sim_engines_agree_x86;
          seeded_test ~count:20 "simulator engines agree (uchost, spills)"
            rloop_arb prop_sim_engines_agree_uchost;
        ] );
      ( "trap parity",
        [
          Alcotest.test_case "uninitialized register" `Quick
            test_uninitialized_register;
          Alcotest.test_case "empty spill slot" `Quick test_empty_spill_slot;
          Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
          Alcotest.test_case "division by zero" `Quick
            test_division_by_zero_parity;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "table-1 kernels: exact cycle parity" `Quick
            test_kernel_cycle_parity;
        ] );
    ]
