(* Tier-1 tests for the split-compilation service (lib/pvserve).

   The service's contract is "invisible concurrency": whatever mix of
   Domains, cache hits, in-flight coalescing and LRU eviction a request
   meets, the artifact it receives must be byte-identical to a fresh
   single-threaded compile — and concurrent misses on one key must cost
   exactly one compile.  The registry tests at the bottom pin the
   domain-safety bugfixes this PR ships: the metrics and ledger
   registries are hammered from several Domains and must neither crash
   nor lose updates. *)

let kernel n = List.nth Pvkernels.Kernels.table1 n

let bytecode_of (k : Pvkernels.Kernels.t) =
  let p = Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name k.Pvkernels.Kernels.source in
  Core.Splitc.distribute (Core.Splitc.offline ~mode:Core.Splitc.Split p)

let machine = List.hd Pvmach.Machine.table1_targets

let artifact_exn (r : Pvserve.Service.reply) =
  match r.Pvserve.Service.outcome with
  | Ok a -> a
  | Error e -> Alcotest.failf "error reply: %s" e

(* ---------------- cache keys ---------------- *)

(* Service-level twin of the AOT cache-key regression: a program
   re-annotated on a surface the pretty-printer does not render (global
   annotations) must still get its own key. *)
let test_key_sees_annotations () =
  let k = kernel 0 in
  let mk () = Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name k.Pvkernels.Kernels.source in
  let p1 = mk () and p2 = mk () in
  (match p2.Pvir.Prog.globals with
  | [] -> Alcotest.fail "kernel has no globals"
  | g :: rest ->
    p2.Pvir.Prog.globals <-
      { g with Pvir.Prog.gannots = [ ("bank", Pvir.Annot.Int 1) ] } :: rest);
  let key p = Pvserve.Key.to_string (Pvserve.Key.of_program ~machine p) in
  Alcotest.(check bool) "annotation-only difference separates keys" false
    (String.equal (key p1) (key p2));
  let k1 = Pvserve.Key.of_program ~machine p1
  and k2 = Pvserve.Key.of_program ~machine p2 in
  Alcotest.(check string) "code digest unchanged" k1.Pvserve.Key.pvir
    k2.Pvserve.Key.pvir;
  Alcotest.(check string) "machine digest unchanged" k1.Pvserve.Key.machine
    k2.Pvserve.Key.machine

let test_key_sees_machine () =
  let k = kernel 0 in
  let p = Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name k.Pvkernels.Kernels.source in
  let keys =
    List.map
      (fun m -> Pvserve.Key.to_string (Pvserve.Key.of_program ~machine:m p))
      Pvmach.Machine.all
  in
  Alcotest.(check int) "one key per machine descriptor"
    (List.length Pvmach.Machine.all)
    (List.length (List.sort_uniq String.compare keys))

(* ---------------- dedup under contention ---------------- *)

(* Many identical requests racing through a multi-Domain worker pool:
   exactly one compile, every artifact byte-identical, and the replies
   partition into one Compiled plus Hit/Coalesced. *)
let test_concurrent_dedup () =
  let bc = bytecode_of (kernel 0) in
  let svc = Pvserve.Service.create ~workers:4 () in
  let n = 32 in
  let tickets =
    List.init n (fun _ ->
        Pvserve.Service.submit svc
          { Pvserve.Service.bytecode = bc; Pvserve.Service.machine })
  in
  let replies = List.map Pvserve.Service.await tickets in
  Pvserve.Service.shutdown svc;
  let arts = List.map artifact_exn replies in
  let first = List.hd arts in
  List.iter
    (fun a -> Alcotest.(check string) "byte-identical artifact" first a)
    arts;
  Alcotest.(check int) "exactly one compile" 1
    (Pvserve.Service.compile_count svc);
  Alcotest.(check (option int64)) "compile-counter metric agrees" (Some 1L)
    (Pvtrace.Metrics.value (Pvserve.Service.metrics svc) "serve.compiles");
  let compiled =
    List.length
      (List.filter
         (fun r -> r.Pvserve.Service.origin = Pvserve.Service.Compiled)
         replies)
  in
  Alcotest.(check int) "exactly one Compiled reply" 1 compiled

(* The oracle the load generator uses: a fresh single-threaded compile
   must reproduce what the concurrent service served. *)
let test_matches_single_threaded () =
  let bc = bytecode_of (kernel 1) in
  let svc = Pvserve.Service.create ~workers:3 () in
  let tk =
    Pvserve.Service.submit svc
      { Pvserve.Service.bytecode = bc; Pvserve.Service.machine }
  in
  let served = artifact_exn (Pvserve.Service.await tk) in
  Pvserve.Service.shutdown svc;
  match Pvserve.Service.compile_artifact ~machine bc with
  | Ok fresh -> Alcotest.(check string) "oracle equality" fresh served
  | Error e -> Alcotest.failf "fresh compile failed: %s" e

(* ---------------- eviction ---------------- *)

(* A budget that holds only one artifact: A, then B (evicts A), then A
   again — which must recompile and produce the identical artifact. *)
let test_eviction_recompiles_identically () =
  let bc_a = bytecode_of (kernel 0) and bc_b = bytecode_of (kernel 2) in
  let ledger = Pvtrace.Ledger.create () in
  let svc =
    Pvserve.Service.create ~ledger ~cache_budget:1024 ~workers:2 ()
  in
  let ask bc =
    artifact_exn
      (Pvserve.Service.await
         (Pvserve.Service.submit svc
            { Pvserve.Service.bytecode = bc; Pvserve.Service.machine }))
  in
  let a1 = ask bc_a in
  let _b = ask bc_b in
  let a2 = ask bc_a in
  Pvserve.Service.shutdown svc;
  Alcotest.(check string) "recompiled artifact is byte-identical" a1 a2;
  Alcotest.(check int) "three compiles (A, B, A again)" 3
    (Pvserve.Service.compile_count svc);
  let cs = Pvserve.Service.cache_stats svc in
  Alcotest.(check bool) "evictions happened" true
    (cs.Pvserve.Cache.s_evictions > 0);
  Alcotest.(check bool) "evictions are ledgered" true
    (Pvtrace.Ledger.count_kind ledger (Pvtrace.Ledger.Other "cache-evict") > 0)

(* Backpressure: a tiny queue must not deadlock or drop requests. *)
let test_bounded_queue () =
  let bc = bytecode_of (kernel 0) in
  let svc = Pvserve.Service.create ~queue_capacity:2 ~workers:2 () in
  let tickets =
    List.init 50 (fun _ ->
        Pvserve.Service.submit svc
          { Pvserve.Service.bytecode = bc; Pvserve.Service.machine })
  in
  let replies = List.map Pvserve.Service.await tickets in
  Pvserve.Service.shutdown svc;
  Alcotest.(check int) "all 50 answered" 50 (List.length replies);
  List.iter (fun r -> ignore (artifact_exn r)) replies

(* Untrusted input: garbage bytecode answers with an error, not a crash,
   and does not poison the cache or the in-flight table. *)
let test_garbage_bytecode () =
  let svc = Pvserve.Service.create ~workers:2 () in
  let bad =
    Pvserve.Service.await
      (Pvserve.Service.submit svc
         { Pvserve.Service.bytecode = "not bytecode"; Pvserve.Service.machine })
  in
  (match bad.Pvserve.Service.outcome with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage decoded to an artifact");
  let good =
    Pvserve.Service.await
      (Pvserve.Service.submit svc
         {
           Pvserve.Service.bytecode = bytecode_of (kernel 0);
           Pvserve.Service.machine;
         })
  in
  Pvserve.Service.shutdown svc;
  ignore (artifact_exn good)

(* ---------------- load generator ---------------- *)

let test_load_smoke () =
  let spec =
    {
      Pvserve.Load.default_spec with
      Pvserve.Load.requests = 300;
      workers = 2;
      gen_seeds = [ 1; 2 ];
      machines = Pvmach.Machine.table1_targets;
    }
  in
  let r = Pvserve.Load.run spec in
  Alcotest.(check int) "no oracle mismatches" 0
    r.Pvserve.Load.r_oracle_mismatches;
  Alcotest.(check int) "no error replies" 0 r.Pvserve.Load.r_errors;
  Alcotest.(check int) "replies partition requests" 300
    (r.Pvserve.Load.r_hits + r.Pvserve.Load.r_compiled
    + r.Pvserve.Load.r_coalesced);
  if r.Pvserve.Load.r_evictions = 0 then
    Alcotest.(check int) "dedup exact: compiles = unique keys"
      r.Pvserve.Load.r_unique_keys r.Pvserve.Load.r_compiles

let test_load_deterministic_corpus () =
  (* same seed => same population and same unique-key count *)
  let spec =
    {
      Pvserve.Load.default_spec with
      Pvserve.Load.requests = 100;
      workers = 2;
      gen_seeds = [ 3 ];
      machines = [ machine ];
    }
  in
  let r1 = Pvserve.Load.run spec and r2 = Pvserve.Load.run spec in
  Alcotest.(check int) "population stable" r1.Pvserve.Load.r_population
    r2.Pvserve.Load.r_population;
  Alcotest.(check int) "unique keys stable" r1.Pvserve.Load.r_unique_keys
    r2.Pvserve.Load.r_unique_keys

(* ---------------- registry domain-safety ---------------- *)

(* The bugfix half of the PR: global registries must survive multi-Domain
   mutation without losing updates.  Before the fix these were plain
   Hashtbls — concurrent resize corrupts them (crash or lost counts). *)
let test_metrics_multidomain () =
  let m = Pvtrace.Metrics.create () in
  let per_domain = 10_000 and domains = 4 in
  let work () =
    for i = 1 to per_domain do
      Pvtrace.Metrics.inc1 m "race.counter";
      Pvtrace.Metrics.seti m "race.gauge" i;
      Pvtrace.Metrics.observe m "race.hist" (Int64.of_int i)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join ds;
  Alcotest.(check (option int64)) "no lost increments"
    (Some (Int64.of_int (domains * per_domain)))
    (Pvtrace.Metrics.value m "race.counter");
  Alcotest.(check int) "no lost observations" (domains * per_domain)
    (Pvtrace.Metrics.hist_count m "race.hist");
  (* rendering while racing must not crash either *)
  let stop = Atomic.make false in
  let renderer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          ignore (Pvtrace.Metrics.to_prom m)
        done)
  in
  let ds = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join ds;
  Atomic.set stop true;
  Domain.join renderer;
  Alcotest.(check (option int64)) "second round intact"
    (Some (Int64.of_int (2 * domains * per_domain)))
    (Pvtrace.Metrics.value m "race.counter")

let test_ledger_multidomain () =
  let l = Pvtrace.Ledger.create () in
  let per_domain = 2_000 and domains = 4 in
  let work () =
    for i = 1 to per_domain do
      Pvtrace.Ledger.record l Pvtrace.Ledger.Limit_hit ~subject:"race"
        ~detail:(string_of_int i)
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn work) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost events" (domains * per_domain)
    (Pvtrace.Ledger.count l)

let () =
  Alcotest.run "pvserve"
    [
      ( "key",
        [
          Alcotest.test_case "annotation set is part of the key" `Quick
            test_key_sees_annotations;
          Alcotest.test_case "machine descriptor is part of the key" `Quick
            test_key_sees_machine;
        ] );
      ( "service",
        [
          Alcotest.test_case "concurrent misses compile once" `Quick
            test_concurrent_dedup;
          Alcotest.test_case "served = single-threaded compile" `Quick
            test_matches_single_threaded;
          Alcotest.test_case "eviction recompiles identically" `Quick
            test_eviction_recompiles_identically;
          Alcotest.test_case "bounded queue backpressure" `Quick
            test_bounded_queue;
          Alcotest.test_case "garbage bytecode is an error reply" `Quick
            test_garbage_bytecode;
        ] );
      ( "load",
        [
          Alcotest.test_case "zipf load, oracle clean" `Quick test_load_smoke;
          Alcotest.test_case "deterministic corpus" `Quick
            test_load_deterministic_corpus;
        ] );
      ( "registries",
        [
          Alcotest.test_case "metrics survive domain races" `Quick
            test_metrics_multidomain;
          Alcotest.test_case "ledger survives domain races" `Quick
            test_ledger_multidomain;
        ] );
    ]
