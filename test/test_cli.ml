(* Integration tests for the command-line tools: pvsc (offline compiler)
   and pvrun (device VM), exercised as real processes over real files. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let pvsc = "../bin/pvsc.exe"
let pvrun = "../bin/pvrun.exe"

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* run a command, capture stdout, return (exit code, output) *)
let run cmd =
  let out = Filename.temp_file "cli" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code = Sys.command (Printf.sprintf "%s > %s 2>/dev/null" cmd out) in
      (code, read_file out))

(* same, but capture stderr (where usage errors go) *)
let run_err cmd =
  let out = Filename.temp_file "cli" ".err" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code = Sys.command (Printf.sprintf "%s 2> %s >/dev/null" cmd out) in
      (code, read_file out))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let sample_source =
  {|
f64 acc_store;

f64 triangle(i64 n) {
  f64 s = 0.0;
  for (i64 i = 1; i <= n; i = i + 1) {
    s = s + (f64)i;
  }
  acc_store = s;
  return s;
}

i64 main() {
  f64 t = triangle(100);
  print_f64(t);
  return (i64)t;
}
|}

let with_compiled f =
  let src = Filename.temp_file "cli" ".mc" in
  let out = Filename.temp_file "cli" ".pvir" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove src;
      if Sys.file_exists out then Sys.remove out)
    (fun () ->
      write_file src sample_source;
      let code, _ = run (Printf.sprintf "%s %s -o %s" pvsc src out) in
      check int_t "pvsc exit code" 0 code;
      f out)

let test_pvsc_produces_bytecode () =
  with_compiled (fun out ->
      let bc = read_file out in
      check bool_t "magic" true (String.length bc > 4 && String.sub bc 0 4 = "PVIR");
      (* and it decodes + verifies *)
      let p = Pvir.Serial.decode bc in
      Pvir.Verify.program p)

let test_pvsc_emit_text () =
  let src = Filename.temp_file "cli" ".mc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove src)
    (fun () ->
      write_file src sample_source;
      let code, text = run (Printf.sprintf "%s %s --emit-text" pvsc src) in
      check int_t "exit" 0 code;
      check bool_t "textual program" true
        (String.length text > 0
        && String.sub text 0 7 = "program");
      (* the emitted text parses back *)
      let p = Pvir.Parse.program text in
      Pvir.Verify.program p)

let test_pvsc_rejects_bad_source () =
  let src = Filename.temp_file "cli" ".mc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove src)
    (fun () ->
      write_file src "i64 main( { return }";
      let code, _ = run (Printf.sprintf "%s %s" pvsc src) in
      check bool_t "nonzero exit" true (code <> 0))

let test_pvrun_executes () =
  with_compiled (fun out ->
      List.iter
        (fun target ->
          let code, output =
            run (Printf.sprintf "%s %s -e main -t %s" pvrun out target)
          in
          check int_t (target ^ " exit") 0 code;
          (* triangle(100) = 5050 *)
          check bool_t (target ^ " prints 5050") true
            (let re = "5050" in
             let rec find i =
               i + String.length re <= String.length output
               && (String.sub output i (String.length re) = re || find (i + 1))
             in
             find 0))
        [ "x86ish"; "sparcish"; "ppcish"; "dspish"; "uchost" ])

let test_pvrun_interp_matches () =
  with_compiled (fun out ->
      let _, jit_out = run (Printf.sprintf "%s %s -e main -t x86ish" pvrun out) in
      let _, int_out = run (Printf.sprintf "%s %s -e main --interp" pvrun out) in
      let first_line s =
        match String.index_opt s '\n' with
        | Some i -> String.sub s 0 i
        | None -> s
      in
      check Alcotest.string "same printed value" (first_line jit_out)
        (first_line int_out))

let test_pvrun_entry_args () =
  with_compiled (fun out ->
      let code, output =
        run (Printf.sprintf "%s %s -e triangle -t ppcish 10" pvrun out)
      in
      check int_t "exit" 0 code;
      check bool_t "result 55" true
        (let re = "55" in
         let rec find i =
           i + String.length re <= String.length output
           && (String.sub output i (String.length re) = re || find (i + 1))
         in
         find 0))

let test_pvrun_rejects_unknown_target () =
  with_compiled (fun out ->
      let code, _ = run (Printf.sprintf "%s %s -t z80" pvrun out) in
      check bool_t "nonzero exit" true (code <> 0))

let test_pvrun_rejects_corrupt_file () =
  let path = Filename.temp_file "cli" ".pvir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "definitely not bytecode";
      let code, _ = run (Printf.sprintf "%s %s -e main" pvrun path) in
      check bool_t "nonzero exit" true (code <> 0))

(* ---------------- exit-code taxonomy ----------------

   The documented contract (DESIGN.md / Core.Splitc.exit_code): 0 ok,
   2 frontend/usage, 3 decode, 4 verify, 5 link, 6 jit, 7 runtime trap,
   8 resource limit, 9 i/o.  These tests pin the codes the tools actually
   return — and that hostile inputs produce a clean one-line diagnostic,
   never a backtrace. *)

let test_exit_code_frontend () =
  let src = Filename.temp_file "cli" ".mc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove src)
    (fun () ->
      write_file src "i64 main( { return }";
      let code, _ = run (Printf.sprintf "%s %s" pvsc src) in
      check int_t "frontend error is exit 2" 2 code)

let test_exit_code_decode () =
  let path = Filename.temp_file "cli" ".pvir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_file path "PVIR garbage that is definitely not a module";
      let code, _ = run (Printf.sprintf "%s %s -e main" pvrun path) in
      check int_t "corrupt bytecode is exit 3" 3 code)

let test_exit_code_decode_truncated () =
  with_compiled (fun out ->
      let bc = read_file out in
      let cut = Filename.temp_file "cli" ".pvir" in
      Fun.protect
        ~finally:(fun () -> Sys.remove cut)
        (fun () ->
          write_file cut (String.sub bc 0 (String.length bc / 2));
          let code, _ = run (Printf.sprintf "%s %s -e main" pvrun cut) in
          check int_t "truncated bytecode is exit 3" 3 code))

let test_exit_code_usage () =
  with_compiled (fun out ->
      (* triangle expects one argument; give it three *)
      let code, _ = run (Printf.sprintf "%s %s -e triangle 1 2 3" pvrun out) in
      check int_t "bad argument count is exit 2" 2 code;
      let code, _ = run (Printf.sprintf "%s %s -e no_such_fn" pvrun out) in
      check int_t "unknown entry is exit 2" 2 code;
      let code, _ = run (Printf.sprintf "%s %s -e triangle banana" pvrun out) in
      check int_t "unparseable argument is exit 2" 2 code)

(* --engine: one parser for every spelling; unknown names are usage
   errors (exit 2) whose message lists the valid engines. *)
let test_engine_selection () =
  with_compiled (fun out ->
      let code, reference = run (Printf.sprintf "%s %s --interp" pvrun out) in
      check int_t "threaded default runs" 0 code;
      List.iter
        (fun engine ->
          List.iter
            (fun extra ->
              let code, o =
                run
                  (Printf.sprintf "%s %s %s --engine %s" pvrun out extra engine)
              in
              check int_t
                (Printf.sprintf "engine %s%s exit code" engine extra)
                0 code;
              if extra = "--interp" then
                check Alcotest.string
                  (Printf.sprintf "engine %s output" engine)
                  reference o)
            [ ""; "--interp" ])
        [ "tree"; "tree-walk"; "threaded"; "aot" ];
      let code, err =
        run_err (Printf.sprintf "%s %s --engine bogus" pvrun out)
      in
      check int_t "unknown engine is exit 2" 2 code;
      check bool_t "message lists the valid engines" true
        (contains err "valid engines: tree, threaded, aot"))

let test_exit_code_trap () =
  let src = Filename.temp_file "cli" ".mc" in
  let out = Filename.temp_file "cli" ".pvir" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove src;
      if Sys.file_exists out then Sys.remove out)
    (fun () ->
      write_file src "i64 main() { i64 z = 0; return 5 / z; }";
      let code, _ = run (Printf.sprintf "%s %s -o %s" pvsc src out) in
      check int_t "compiles" 0 code;
      let code, _ = run (Printf.sprintf "%s %s -e main" pvrun out) in
      check int_t "division by zero is exit 7" 7 code;
      let code, _ = run (Printf.sprintf "%s %s -e main --interp" pvrun out) in
      check int_t "interpreted trap is also exit 7" 7 code)

let test_exit_code_io () =
  (* cmdliner validates `pos file` existence itself (exit 124); reach our
     i/o path via pvsc's output file instead *)
  let src = Filename.temp_file "cli" ".mc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove src)
    (fun () ->
      write_file src sample_source;
      let code, _ =
        run (Printf.sprintf "%s %s -o /nonexistent-dir/out.pvir" pvsc src)
      in
      check int_t "unwritable output is exit 9" 9 code)

let () =
  Alcotest.run "cli"
    [
      ( "pvsc",
        [
          Alcotest.test_case "produces bytecode" `Quick test_pvsc_produces_bytecode;
          Alcotest.test_case "emit text" `Quick test_pvsc_emit_text;
          Alcotest.test_case "rejects bad source" `Quick test_pvsc_rejects_bad_source;
        ] );
      ( "pvrun",
        [
          Alcotest.test_case "executes on all targets" `Quick test_pvrun_executes;
          Alcotest.test_case "interp matches jit" `Quick test_pvrun_interp_matches;
          Alcotest.test_case "entry with args" `Quick test_pvrun_entry_args;
          Alcotest.test_case "unknown target" `Quick test_pvrun_rejects_unknown_target;
          Alcotest.test_case "corrupt file" `Quick test_pvrun_rejects_corrupt_file;
          Alcotest.test_case "engine selection" `Quick test_engine_selection;
        ] );
      ( "exit-codes",
        [
          Alcotest.test_case "frontend = 2" `Quick test_exit_code_frontend;
          Alcotest.test_case "decode = 3" `Quick test_exit_code_decode;
          Alcotest.test_case "truncated = 3" `Quick test_exit_code_decode_truncated;
          Alcotest.test_case "usage = 2" `Quick test_exit_code_usage;
          Alcotest.test_case "trap = 7" `Quick test_exit_code_trap;
          Alcotest.test_case "io = 9" `Quick test_exit_code_io;
        ] );
    ]
