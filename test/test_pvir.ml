(* Unit tests for the PVIR library: types, values, operator semantics,
   annotations, the verifier, and both serialization formats. *)

open Pvir

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- types ---------------- *)

let test_type_sizes () =
  check int_t "i8 size" 1 (Types.size Types.i8);
  check int_t "i16 size" 2 (Types.size Types.i16);
  check int_t "i32 size" 4 (Types.size Types.i32);
  check int_t "i64 size" 8 (Types.size Types.i64);
  check int_t "f32 size" 4 (Types.size Types.f32);
  check int_t "f64 size" 8 (Types.size Types.f64);
  check int_t "ptr size" 8 (Types.size (Types.ptr Types.I8));
  check int_t "vec size" 16 (Types.size (Types.vec Types.I8 16));
  check int_t "vec f32x4" 16 (Types.size (Types.vec Types.F32 4))

let test_type_predicates () =
  check bool_t "f32 is float" true (Types.is_float Types.f32);
  check bool_t "i32 not float" false (Types.is_float Types.i32);
  check bool_t "vec i8 is integer" true (Types.is_integer (Types.vec Types.I8 4));
  check bool_t "ptr is pointer" true (Types.is_pointer (Types.ptr Types.F32));
  check int_t "lanes of scalar" 1 (Types.lanes Types.i32);
  check int_t "lanes of vec" 8 (Types.lanes (Types.vec Types.I16 8));
  check bool_t "with_lanes 1" true
    (Types.equal (Types.with_lanes Types.I8 1) Types.i8);
  check bool_t "with_lanes 4" true
    (Types.equal (Types.with_lanes Types.F32 4) (Types.vec Types.F32 4))

let test_type_names () =
  check string_t "i64 name" "i64" (Types.to_string Types.i64);
  check string_t "vec name" "<4 x f32>" (Types.to_string (Types.vec Types.F32 4));
  check string_t "ptr name" "i8*" (Types.to_string (Types.ptr Types.I8));
  List.iter
    (fun s ->
      match Types.scalar_of_name (Types.scalar_name s) with
      | Some s' -> check bool_t "scalar name roundtrip" true (s = s')
      | None -> Alcotest.fail "scalar name did not parse")
    Types.all_scalars

let test_vec_rejects_lanes () =
  Alcotest.check_raises "vec of 1 lane rejected"
    (Invalid_argument "Types.vec: lanes < 2") (fun () ->
      ignore (Types.vec Types.I8 1))

(* ---------------- values ---------------- *)

let test_value_normalization () =
  check bool_t "i8 300 wraps" true (Value.equal (Value.i8 300) (Value.i8 44));
  check bool_t "i8 -1 = 255 bits" true
    (Value.equal (Value.i8 255) (Value.i8 (-1)));
  check bool_t "i16 wrap" true
    (Value.equal (Value.i16 65536) (Value.i16 0));
  check bool_t "i32 wrap" true
    (Value.equal
       (Value.int Types.I32 0x1_0000_0001L)
       (Value.i32 1));
  (* unsigned view *)
  check bool_t "unsigned i8" true
    (Int64.equal (Value.unsigned Types.I8 (-1L)) 255L)

let test_value_f32_rounding () =
  (* a double not representable in f32 must round when stored as f32 *)
  let v = Value.f32 1.1 in
  let x = Value.to_float v in
  check bool_t "f32 rounded" true (x <> 1.1);
  check bool_t "f32 stable" true (Value.equal v (Value.f32 x))

let test_value_bytes_roundtrip () =
  let buf = Bytes.make 64 '\000' in
  let cases =
    [
      Value.i8 (-7);
      Value.i16 1234;
      Value.i32 (-100000);
      Value.i64 0x1234_5678_9ABC_DEFL;
      Value.f32 3.5;
      Value.f64 (-0.125);
      Value.vec (Array.init 4 (fun i -> Value.i32 (i * 1000)));
      Value.vec (Array.init 8 (fun i -> Value.i16 (i - 4)));
    ]
  in
  List.iter
    (fun v ->
      Value.write_bytes buf 8 v;
      let v' = Value.read_bytes buf 8 (Value.ty v) in
      check bool_t (Value.to_string v) true (Value.equal v v'))
    cases

let test_value_zero () =
  check bool_t "zero i32" true (Value.equal (Value.zero Types.i32) (Value.i32 0));
  check bool_t "zero f64" true (Value.equal (Value.zero Types.f64) (Value.f64 0.));
  match Value.zero (Types.vec Types.I8 4) with
  | Value.Vec a -> check int_t "zero vec lanes" 4 (Array.length a)
  | _ -> Alcotest.fail "zero of vector is not a vector"

(* ---------------- eval ---------------- *)

let test_eval_int_arith () =
  let i32 = Value.i32 in
  let e op a b = Eval.binop op (i32 a) (i32 b) in
  check bool_t "add" true (Value.equal (e Instr.Add 3 4) (i32 7));
  check bool_t "sub" true (Value.equal (e Instr.Sub 3 4) (i32 (-1)));
  check bool_t "mul" true (Value.equal (e Instr.Mul 5 (-6)) (i32 (-30)));
  check bool_t "div" true (Value.equal (e Instr.Div (-7) 2) (i32 (-3)));
  check bool_t "udiv" true
    (Value.equal (Eval.binop Instr.Udiv (i32 (-1)) (i32 2)) (i32 0x7FFFFFFF));
  check bool_t "rem" true (Value.equal (e Instr.Rem (-7) 2) (i32 (-1)));
  check bool_t "and" true (Value.equal (e Instr.And 0xFF 0x0F) (i32 0x0F));
  check bool_t "shl" true (Value.equal (e Instr.Shl 1 10) (i32 1024));
  check bool_t "ashr" true (Value.equal (e Instr.Ashr (-8) 1) (i32 (-4)));
  check bool_t "lshr i32" true
    (Value.equal (Eval.binop Instr.Lshr (i32 (-1)) (i32 28)) (i32 15));
  check bool_t "smin" true (Value.equal (e Instr.Min (-5) 3) (i32 (-5)));
  check bool_t "umin" true (Value.equal (e Instr.Umin (-5) 3) (i32 3));
  check bool_t "umax" true (Value.equal (e Instr.Umax (-5) 3) (i32 (-5)))

let test_eval_narrow_wraparound () =
  (* 8-bit arithmetic wraps at 8 bits even though stored in int64 *)
  let r = Eval.binop Instr.Add (Value.i8 200) (Value.i8 100) in
  check bool_t "u8 wrap" true (Value.equal r (Value.i8 44));
  let r = Eval.binop Instr.Mul (Value.i8 16) (Value.i8 16) in
  check bool_t "u8 mul wrap" true (Value.equal r (Value.i8 0))

let test_eval_division_by_zero () =
  Alcotest.check_raises "div by zero" Eval.Division_by_zero (fun () ->
      ignore (Eval.binop Instr.Div (Value.i32 1) (Value.i32 0)));
  Alcotest.check_raises "urem by zero" Eval.Division_by_zero (fun () ->
      ignore (Eval.binop Instr.Urem (Value.i32 1) (Value.i32 0)))

let test_eval_float_arith () =
  let f op a b = Eval.binop op (Value.f64 a) (Value.f64 b) in
  check bool_t "fadd" true (Value.equal (f Instr.Add 1.5 2.25) (Value.f64 3.75));
  check bool_t "fdiv" true (Value.equal (f Instr.Div 1.0 4.0) (Value.f64 0.25));
  check bool_t "fmin" true (Value.equal (f Instr.Min 1.0 2.0) (Value.f64 1.0));
  Alcotest.check_raises "float xor rejected"
    (Invalid_argument "Eval: binop xor on float") (fun () ->
      ignore (f Instr.Xor 1.0 2.0))

let test_eval_cmp () =
  let t = Value.i32 1 and f = Value.i32 0 in
  check bool_t "slt" true
    (Value.equal (Eval.cmp Instr.Slt (Value.i32 (-1)) (Value.i32 1)) t);
  check bool_t "ult" true
    (Value.equal (Eval.cmp Instr.Ult (Value.i32 (-1)) (Value.i32 1)) f);
  check bool_t "ugt narrow" true
    (Value.equal (Eval.cmp Instr.Ugt (Value.i8 200) (Value.i8 100)) t);
  check bool_t "sgt narrow" true
    (Value.equal (Eval.cmp Instr.Sgt (Value.i8 200) (Value.i8 100)) f);
  check bool_t "feq" true
    (Value.equal (Eval.cmp Instr.Eq (Value.f32 2.0) (Value.f32 2.0)) t)

let test_eval_conv () =
  let c kind dst v = Eval.conv kind dst v in
  check bool_t "zext u8" true
    (Value.equal (c Instr.Zext Types.i32 (Value.i8 (-1))) (Value.i32 255));
  check bool_t "sext i8" true
    (Value.equal (c Instr.Sext Types.i32 (Value.i8 (-1))) (Value.i32 (-1)));
  check bool_t "trunc" true
    (Value.equal (c Instr.Trunc Types.i8 (Value.i32 511)) (Value.i8 (-1)));
  check bool_t "sitofp" true
    (Value.equal (c Instr.Sitofp Types.f64 (Value.i32 (-3))) (Value.f64 (-3.0)));
  check bool_t "uitofp" true
    (Value.equal (c Instr.Uitofp Types.f64 (Value.i8 (-1))) (Value.f64 255.0));
  check bool_t "fptosi" true
    (Value.equal (c Instr.Fptosi Types.i32 (Value.f64 (-2.7))) (Value.i32 (-2)));
  check bool_t "fpconv" true
    (Value.equal (c Instr.Fpconv Types.f32 (Value.f64 0.5)) (Value.f32 0.5))

let test_eval_vector_ops () =
  let va = Value.vec (Array.init 4 (fun i -> Value.i32 i)) in
  let vb = Value.vec (Array.init 4 (fun i -> Value.i32 (10 * i))) in
  let sum = Eval.binop Instr.Add va vb in
  check bool_t "vec add lane 3" true
    (Value.equal (Eval.extract sum 3) (Value.i32 33));
  let red = Eval.reduce Instr.Radd sum in
  check bool_t "vec reduce" true (Value.equal red (Value.i32 66));
  let m = Eval.reduce Instr.Rumax va in
  check bool_t "vec rumax" true (Value.equal m (Value.i32 3));
  let s = Eval.splat 4 (Value.i32 9) in
  check bool_t "splat" true (Value.equal (Eval.extract s 2) (Value.i32 9));
  (* lane-wise conversion *)
  let bytes = Value.vec (Array.init 4 (fun i -> Value.i8 (100 + (i * 40)))) in
  let wide = Eval.conv Instr.Zext (Types.vec Types.I32 4) bytes in
  check bool_t "vec zext lane 2" true
    (Value.equal (Eval.extract wide 2) (Value.i32 180))

(* ---------------- annotations ---------------- *)

let test_annot_basic () =
  let a =
    Annot.empty
    |> Annot.add "k1" (Annot.Int 42)
    |> Annot.add "k2" (Annot.Bool true)
    |> Annot.add "k3" (Annot.Str "hello")
  in
  check bool_t "find int" true (Annot.find_int "k1" a = Some 42);
  check bool_t "has flag" true (Annot.has_flag "k2" a);
  check bool_t "find str" true (Annot.find_str "k3" a = Some "hello");
  check bool_t "missing" true (Annot.find "nope" a = None);
  let a = Annot.add "k1" (Annot.Int 7) a in
  check bool_t "overwrite" true (Annot.find_int "k1" a = Some 7);
  let a = Annot.remove "k1" a in
  check bool_t "remove" true (Annot.find "k1" a = None)

let test_annot_equal_order_insensitive () =
  let a = [ ("x", Annot.Int 1); ("y", Annot.Bool false) ] in
  let b = [ ("y", Annot.Bool false); ("x", Annot.Int 1) ] in
  check bool_t "order-insensitive equal" true (Annot.equal a b);
  check bool_t "different" false
    (Annot.equal a [ ("x", Annot.Int 2); ("y", Annot.Bool false) ])

let test_annot_size () =
  let a = Annot.add "pv.vectorized" (Annot.Int 4) Annot.empty in
  check bool_t "size positive" true (Annot.size a > 0);
  let bigger =
    Annot.add "pv.spill_order"
      (Annot.List [ Annot.List [ Annot.Int 0; Annot.Int 10 ] ])
      a
  in
  check bool_t "size grows" true (Annot.size bigger > Annot.size a)

(* ---------------- builder & verifier ---------------- *)

let build_valid_func () =
  let b =
    Builder.create ~name:"f" ~params:[ Types.i64; Types.ptr Types.F32 ]
      ~ret:(Some Types.f32)
  in
  (match Builder.params b with
  | [ n; p ] ->
    ignore n;
    let x = Builder.load b Types.f32 ~base:p () in
    let two = Builder.const b (Value.f32 2.0) in
    let y = Builder.mul b x two in
    Builder.ret b (Some y)
  | _ -> assert false);
  Builder.func b

let test_verify_accepts_valid () =
  let p = Prog.create "t" in
  Prog.add_func p (build_valid_func ());
  match Verify.program_result p with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let expect_verify_error build =
  let p = Prog.create "t" in
  Prog.add_func p (build ());
  match Verify.program_result p with
  | Ok () -> Alcotest.fail "verifier accepted ill-formed program"
  | Error _ -> ()

let test_verify_rejects_type_mismatch () =
  expect_verify_error (fun () ->
      let fn = Func.create ~name:"bad" ~params:[ Types.i32; Types.f32 ] ~ret:None in
      let blk = Func.add_block fn in
      let d = Func.fresh_reg fn Types.i32 in
      blk.instrs <- [ Instr.Binop (Instr.Add, d, 0, 1) ];
      blk.term <- Instr.Ret None;
      fn)

let test_verify_rejects_bad_label () =
  expect_verify_error (fun () ->
      let fn = Func.create ~name:"bad" ~params:[] ~ret:None in
      let blk = Func.add_block fn in
      blk.term <- Instr.Br 99;
      fn)

let test_verify_rejects_float_bitop () =
  expect_verify_error (fun () ->
      let fn = Func.create ~name:"bad" ~params:[ Types.f32; Types.f32 ] ~ret:None in
      let blk = Func.add_block fn in
      let d = Func.fresh_reg fn Types.f32 in
      blk.instrs <- [ Instr.Binop (Instr.Xor, d, 0, 1) ];
      blk.term <- Instr.Ret None;
      fn)

let test_verify_rejects_unknown_call () =
  expect_verify_error (fun () ->
      let fn = Func.create ~name:"bad" ~params:[] ~ret:None in
      let blk = Func.add_block fn in
      blk.instrs <- [ Instr.Call (None, "nonexistent", []) ];
      blk.term <- Instr.Ret None;
      fn)

let test_verify_rejects_bad_ret () =
  expect_verify_error (fun () ->
      let fn = Func.create ~name:"bad" ~params:[ Types.i32 ] ~ret:None in
      let blk = Func.add_block fn in
      blk.term <- Instr.Ret (Some 0);
      fn)

let test_verify_rejects_unknown_global () =
  expect_verify_error (fun () ->
      let fn = Func.create ~name:"bad" ~params:[] ~ret:None in
      let blk = Func.add_block fn in
      let d = Func.fresh_reg fn (Types.ptr Types.I8) in
      blk.instrs <- [ Instr.Gaddr (d, "nope") ];
      blk.term <- Instr.Ret None;
      fn)

let test_verify_rejects_dup_functions () =
  let p = Prog.create "t" in
  Prog.add_func p (build_valid_func ());
  Prog.add_func p (build_valid_func ());
  match Verify.program_result p with
  | Ok () -> Alcotest.fail "duplicate functions accepted"
  | Error _ -> ()

let test_verify_rejects_extract_lane () =
  expect_verify_error (fun () ->
      let fn =
        Func.create ~name:"bad" ~params:[ Types.vec Types.I8 4 ] ~ret:None
      in
      let blk = Func.add_block fn in
      let d = Func.fresh_reg fn Types.i8 in
      blk.instrs <- [ Instr.Extract (d, 0, 9) ];
      blk.term <- Instr.Ret None;
      fn)

(* ---------------- instruction metadata ---------------- *)

let test_instr_def_uses () =
  let i = Instr.Binop (Instr.Add, 5, 1, 2) in
  check bool_t "def" true (Instr.def i = Some 5);
  check bool_t "uses" true (Instr.uses i = [ 1; 2 ]);
  let s = Instr.Store (Types.i32, 3, 4, 8) in
  check bool_t "store no def" true (Instr.def s = None);
  check bool_t "store uses" true (Instr.uses s = [ 3; 4 ]);
  check bool_t "store effect" true (Instr.has_side_effect s);
  check bool_t "load reads" true
    (Instr.reads_memory (Instr.Load (Types.i32, 0, 1, 0)));
  let c = Instr.Call (Some 1, "f", [ 2; 3 ]) in
  check bool_t "call def" true (Instr.def c = Some 1);
  check bool_t "call uses" true (Instr.uses c = [ 2; 3 ])

let test_instr_map_regs () =
  let i = Instr.Select (1, 2, 3, 4) in
  let i' = Instr.map_regs (fun r -> r + 10) i in
  check bool_t "mapped" true (i' = Instr.Select (11, 12, 13, 14));
  let t = Instr.Cbr (1, 2, 3) in
  check bool_t "term regs" true
    (Instr.map_term_regs (fun r -> r + 1) t = Instr.Cbr (2, 2, 3));
  check bool_t "term labels" true
    (Instr.map_term_labels (fun l -> l * 2) t = Instr.Cbr (1, 4, 6))

let test_successors () =
  check bool_t "br" true (Instr.successors (Instr.Br 3) = [ 3 ]);
  check bool_t "cbr" true (Instr.successors (Instr.Cbr (0, 1, 2)) = [ 1; 2 ]);
  check bool_t "cbr same" true (Instr.successors (Instr.Cbr (0, 1, 1)) = [ 1 ]);
  check bool_t "ret" true (Instr.successors (Instr.Ret None) = [])

(* ---------------- serialization ---------------- *)

let sample_program () =
  let p = Prog.create "sample" in
  Prog.add_global p "data" Types.F32 8
    ~init:(Array.init 8 (fun i -> Value.f32 (float_of_int i *. 0.5)));
  Prog.add_global p "bytes" Types.I8 4;
  let fn = build_valid_func () in
  Func.add_annot fn Annot.key_vectorized (Annot.Int 4);
  Func.add_annot fn Annot.key_spill_order
    (Annot.List [ Annot.List [ Annot.Int 0; Annot.Int 3 ] ]);
  Func.set_loop_annot fn 0
    (Annot.add Annot.key_trip_count (Annot.Int 100) Annot.empty);
  Prog.add_func p fn;
  p

let test_binary_roundtrip () =
  let p = sample_program () in
  let bin = Serial.encode p in
  let p' = Serial.decode bin in
  check string_t "binary roundtrip"
    (Pp.program_to_string p)
    (Pp.program_to_string p')

let test_text_roundtrip () =
  let p = sample_program () in
  let txt = Pp.program_to_string p in
  let p' = Parse.program txt in
  check string_t "text roundtrip" txt (Pp.program_to_string p')

let test_decode_rejects_garbage () =
  (match Serial.decode "NOPE it is not bytecode" with
  | exception Serial.Corrupt { reason = "bad magic"; offset = 0 } -> ()
  | exception Serial.Corrupt c ->
    Alcotest.fail ("unexpected corruption: " ^ Serial.corruption_to_string c)
  | _ -> Alcotest.fail "garbage decoded");
  let p = sample_program () in
  let bin = Serial.encode p in
  let truncated = String.sub bin 0 (String.length bin / 2) in
  match Serial.decode truncated with
  | exception Serial.Corrupt _ -> ()
  | exception _ -> ()
  | _ -> Alcotest.fail "truncated bytecode decoded"

let test_stripped_encoding_smaller () =
  let p = sample_program () in
  let full = Serial.encode p in
  let stripped = Serial.encode_stripped p in
  check bool_t "stripping shrinks" true
    (String.length stripped < String.length full);
  (* stripped program still verifies and has no annotations *)
  let p' = Serial.decode stripped in
  Verify.program p';
  List.iter
    (fun (fn : Func.t) ->
      check bool_t "no annots" true (fn.annots = Annot.empty))
    p'.Prog.funcs

let test_file_roundtrip () =
  let p = sample_program () in
  let path = Filename.temp_file "pvir" ".pvir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.to_file path p;
      let p' = Serial.of_file path in
      check string_t "file roundtrip"
        (Pp.program_to_string p)
        (Pp.program_to_string p'))

let test_varint_extremes () =
  (* exercise extreme integers through a value round-trip *)
  let p = Prog.create "x" in
  let fn = Func.create ~name:"f" ~params:[] ~ret:(Some Types.i64) in
  let blk = Func.add_block fn in
  let d = Func.fresh_reg fn Types.i64 in
  blk.instrs <- [ Instr.Const (d, Value.i64 Int64.min_int) ];
  blk.term <- Instr.Ret (Some d);
  Prog.add_func p fn;
  let p' = Serial.decode (Serial.encode p) in
  check string_t "min_int64 survives"
    (Pp.program_to_string p)
    (Pp.program_to_string p')

(* ---------------- account ---------------- *)

let test_account () =
  let a = Account.create () in
  Account.charge a ~pass:"x" 10;
  Account.charge a ~pass:"y" 5;
  Account.charge a ~pass:"x" 3;
  check int_t "total" 18 (Account.total a);
  check bool_t "by pass" true (List.assoc "x" (Account.by_pass a) = 13);
  Account.charge_opt None ~pass:"z" 100;
  check int_t "opt none is noop" 18 (Account.total a)

let () =
  Alcotest.run "pvir"
    [
      ( "types",
        [
          Alcotest.test_case "sizes" `Quick test_type_sizes;
          Alcotest.test_case "predicates" `Quick test_type_predicates;
          Alcotest.test_case "names" `Quick test_type_names;
          Alcotest.test_case "vec lanes guard" `Quick test_vec_rejects_lanes;
        ] );
      ( "values",
        [
          Alcotest.test_case "normalization" `Quick test_value_normalization;
          Alcotest.test_case "f32 rounding" `Quick test_value_f32_rounding;
          Alcotest.test_case "bytes roundtrip" `Quick test_value_bytes_roundtrip;
          Alcotest.test_case "zero" `Quick test_value_zero;
        ] );
      ( "eval",
        [
          Alcotest.test_case "int arith" `Quick test_eval_int_arith;
          Alcotest.test_case "narrow wraparound" `Quick test_eval_narrow_wraparound;
          Alcotest.test_case "division by zero" `Quick test_eval_division_by_zero;
          Alcotest.test_case "float arith" `Quick test_eval_float_arith;
          Alcotest.test_case "comparisons" `Quick test_eval_cmp;
          Alcotest.test_case "conversions" `Quick test_eval_conv;
          Alcotest.test_case "vector ops" `Quick test_eval_vector_ops;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "basic" `Quick test_annot_basic;
          Alcotest.test_case "equality" `Quick test_annot_equal_order_insensitive;
          Alcotest.test_case "size" `Quick test_annot_size;
        ] );
      ( "verify",
        [
          Alcotest.test_case "accepts valid" `Quick test_verify_accepts_valid;
          Alcotest.test_case "type mismatch" `Quick test_verify_rejects_type_mismatch;
          Alcotest.test_case "bad label" `Quick test_verify_rejects_bad_label;
          Alcotest.test_case "float bitop" `Quick test_verify_rejects_float_bitop;
          Alcotest.test_case "unknown call" `Quick test_verify_rejects_unknown_call;
          Alcotest.test_case "bad ret" `Quick test_verify_rejects_bad_ret;
          Alcotest.test_case "unknown global" `Quick test_verify_rejects_unknown_global;
          Alcotest.test_case "dup functions" `Quick test_verify_rejects_dup_functions;
          Alcotest.test_case "bad extract lane" `Quick test_verify_rejects_extract_lane;
        ] );
      ( "instructions",
        [
          Alcotest.test_case "def/uses" `Quick test_instr_def_uses;
          Alcotest.test_case "map_regs" `Quick test_instr_map_regs;
          Alcotest.test_case "successors" `Quick test_successors;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "binary roundtrip" `Quick test_binary_roundtrip;
          Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "stripped smaller" `Quick test_stripped_encoding_smaller;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "varint extremes" `Quick test_varint_extremes;
        ] );
      ("account", [ Alcotest.test_case "charges" `Quick test_account ]);
    ]
