(* Unit tests for the MiniC frontend: lexer, parser, type checker, and
   lowering (checked by executing the produced IR in the interpreter). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- lexer ---------------- *)

let toks src =
  let lx = Minic.Lexer.tokenize src in
  let rec go acc =
    match Minic.Lexer.next lx with
    | Minic.Lexer.EOF -> List.rev acc
    | t -> go (t :: acc)
  in
  go []

let test_lexer_numbers () =
  (match toks "42 0x1F 7L 1.5 2.5f 1e3" with
  | [
   Minic.Lexer.INT (42L, false);
   Minic.Lexer.INT (31L, false);
   Minic.Lexer.INT (7L, true);
   Minic.Lexer.FLOAT (1.5, false);
   Minic.Lexer.FLOAT (2.5, true);
   Minic.Lexer.FLOAT (1000., false);
  ] -> ()
  | _ -> Alcotest.fail "number lexing wrong");
  match toks "i64 foo_bar if" with
  | [ Minic.Lexer.KW "i64"; Minic.Lexer.IDENT "foo_bar"; Minic.Lexer.KW "if" ]
    -> ()
  | _ -> Alcotest.fail "keyword/ident lexing wrong"

let test_lexer_operators () =
  match toks "a<<b <= == && ||" with
  | [
   Minic.Lexer.IDENT "a";
   Minic.Lexer.PUNCT "<<";
   Minic.Lexer.IDENT "b";
   Minic.Lexer.PUNCT "<=";
   Minic.Lexer.PUNCT "==";
   Minic.Lexer.PUNCT "&&";
   Minic.Lexer.PUNCT "||";
  ] -> ()
  | _ -> Alcotest.fail "operator lexing wrong"

let test_lexer_comments () =
  check int_t "comments skipped" 2
    (List.length (toks "1 // line comment\n/* block\ncomment */ 2"))

let test_lexer_errors () =
  (try
     ignore (toks "1 $ 2");
     Alcotest.fail "accepted $"
   with Minic.Lexer.Error _ -> ());
  try
    ignore (toks "/* unterminated");
    Alcotest.fail "accepted unterminated comment"
  with Minic.Lexer.Error _ -> ()

(* ---------------- parser ---------------- *)

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match Minic.Parser.expr "1 + 2 * 3" with
  | Minic.Ast.Binary (Minic.Ast.Add, Minic.Ast.Int_lit (1L, _), Minic.Ast.Binary (Minic.Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parser_ternary_and_cast () =
  (match Minic.Parser.expr "a > b ? a : (i32)b" with
  | Minic.Ast.Ternary (_, Minic.Ast.Var "a", Minic.Ast.Cast (Minic.Ast.Int (Pvir.Types.I32, true), _)) -> ()
  | _ -> Alcotest.fail "ternary/cast wrong");
  match Minic.Parser.expr "f(x, y[2])" with
  | Minic.Ast.Call ("f", [ _; Minic.Ast.Index _ ]) -> ()
  | _ -> Alcotest.fail "call wrong"

let test_parser_program_shapes () =
  let p =
    Minic.Parser.program
      {|
u8 buf[16];
i32 g = 5;
void f(i32 a, f32* p) { if (a > 0) { *p = 1.0; } else { *p = 2.0; } }
i32 main() { f(g, buf); return 0; }
|}
  in
  (* note: f(g, buf) is ill-typed, but parsing succeeds *)
  check int_t "globals" 2 (List.length p.Minic.Ast.globals);
  check int_t "funcs" 2 (List.length p.Minic.Ast.funcs)

let test_parser_errors () =
  List.iter
    (fun src ->
      try
        ignore (Minic.Parser.program src);
        Alcotest.fail (Printf.sprintf "accepted %S" src)
      with Minic.Parser.Error _ | Minic.Lexer.Error _ -> ())
    [
      "void f( { }";
      "void f() { return 1 }";
      "void f() { x = ; }";
      "i32 g[];";
      "void f() { 1 = 2; }";
    ]

(* ---------------- type checker ---------------- *)

let typecheck src = Minic.Check.program (Minic.Parser.program src)

let test_check_rejects () =
  List.iter
    (fun (what, src) ->
      try
        ignore (typecheck src);
        Alcotest.fail (Printf.sprintf "accepted %s" what)
      with Minic.Check.Error _ -> ())
    [
      ("unknown variable", "void f() { x = 1; }");
      ("unknown function", "void f() { g(); }");
      ("arity mismatch", "void g(i32 x) {} void f() { g(); }");
      ("return in void", "void f() { return 3; }");
      ("missing return value", "i32 f() { return; }");
      ("indexing a scalar", "void f(i32 x) { x[0] = 1; }");
      ("deref non-pointer", "void f(i32 x) { *x = 1; }");
      ("assign to array", "i32 a[4]; void f() { i32 b[4]; a = b; }");
      ("float remainder", "void f(f32 x) { f32 y = x % x; }");
      ("redeclaration", "void f() { i32 x = 1; i32 x = 2; }");
      ("void variable", "void f() { void x; }");
    ]

let test_check_widths () =
  (* u8 + u8 stays u8 (our documented deviation from ISO C) *)
  let tp = typecheck "u8 f(u8 a, u8 b) { return a + b; }" in
  match (List.hd tp.Minic.Check.funcs).Minic.Check.fbody with
  | [ Minic.Check.Sreturn (Some e) ] ->
    check bool_t "u8+u8 : u8" true
      (e.Minic.Check.ty = Minic.Ast.Int (Pvir.Types.I8, false))
  | _ -> Alcotest.fail "unexpected body"

let test_check_mixed_conversion () =
  (* u8 + i32 promotes to i32 via zext *)
  let tp = typecheck "i32 f(u8 a, i32 b) { return a + b; }" in
  match (List.hd tp.Minic.Check.funcs).Minic.Check.fbody with
  | [ Minic.Check.Sreturn (Some { Minic.Check.desc = Minic.Check.Tbinary (_, l, _); _ }) ] ->
    (match l.Minic.Check.desc with
    | Minic.Check.Tconv (Pvir.Instr.Zext, _) -> ()
    | _ -> Alcotest.fail "expected zext of u8 operand")
  | _ -> Alcotest.fail "unexpected body"

let test_check_for_scoping () =
  (* two loops may both declare i *)
  ignore
    (typecheck
       {|
void f(i64 n) {
  for (i64 i = 0; i < n; i = i + 1) { }
  for (i64 i = 0; i < n; i = i + 1) { }
}
|})

(* ---------------- lowering, validated by execution ---------------- *)

(* run `i64 main()` through frontend + interpreter and return the result *)
let run_main ?(expect_output = "") src =
  let p = Minic.Lower.compile src in
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create img in
  let r = Pvvm.Interp.run it "main" [] in
  check Alcotest.string "printed" expect_output (Pvvm.Interp.output it);
  match r with
  | Some v -> Pvir.Value.to_int64 v
  | None -> Alcotest.fail "main returned nothing"

let check_main name src expected =
  check Alcotest.int64 name expected (run_main src)

let test_lower_arith () =
  check_main "arith" "i64 main() { return (3 + 4) * 2 - 10 / 3; }" 11L;
  check_main "unsigned div" "i64 main() { u32 x = 7; return (i64)(x / 2); }" 3L;
  check_main "shift" "i64 main() { i64 x = 1; return x << 10; }" 1024L;
  check_main "unsigned shr"
    "i64 main() { u8 x = 255; u8 y = x >> 4; return (i64)y; }" 15L;
  check_main "signed shr"
    "i64 main() { i8 x = -16; i8 y = x >> 2; return (i64)y; }" (-4L);
  check_main "bitops" "i64 main() { return (12 & 10) | (1 ^ 3); }" 10L;
  check_main "neg/not" "i64 main() { return -(~0) ; }" 1L

let test_lower_control () =
  check_main "if" "i64 main() { i64 x = 5; if (x > 3) { x = 10; } else { x = 20; } return x; }" 10L;
  check_main "while"
    "i64 main() { i64 s = 0; i64 i = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }"
    45L;
  check_main "for"
    "i64 main() { i64 s = 0; for (i64 i = 1; i <= 4; i = i + 1) { s = s * 10 + i; } return s; }"
    1234L;
  check_main "break"
    "i64 main() { i64 i = 0; for (; i < 100; i = i + 1) { if (i == 7) { break; } } return i; }"
    7L;
  check_main "continue"
    "i64 main() { i64 s = 0; for (i64 i = 0; i < 10; i = i + 1) { if (i % 2 == 1) { continue; } s = s + i; } return s; }"
    20L;
  check_main "nested loops"
    "i64 main() { i64 s = 0; for (i64 i = 0; i < 3; i = i + 1) { for (i64 j = 0; j < 3; j = j + 1) { s = s + i * j; } } return s; }"
    9L

let test_lower_short_circuit () =
  (* the right operand must not be evaluated when short-circuiting *)
  check_main "and shortcut"
    {|
i32 g = 0;
i32 touch() { g = g + 1; return 1; }
i64 main() { i32 c = 0 && touch(); return (i64)(g * 10 + c); }
|}
    0L;
  check_main "or shortcut"
    {|
i32 g = 0;
i32 touch() { g = g + 1; return 0; }
i64 main() { i32 c = 1 || touch(); return (i64)(g * 10 + c); }
|}
    1L;
  check_main "and both"
    {|
i32 g = 0;
i32 touch() { g = g + 1; return 1; }
i64 main() { i32 c = 1 && touch(); return (i64)(g * 10 + c); }
|}
    11L

let test_lower_ternary () =
  check_main "pure ternary (select)"
    "i64 main() { i64 a = 3; i64 b = 9; return a > b ? a : b; }" 9L;
  check_main "effectful ternary (branches)"
    {|
i32 g = 0;
i32 inc() { g = g + 1; return g; }
i64 main() { i32 x = 1 ? 5 : inc(); return (i64)(x * 10 + g); }
|}
    50L

let test_lower_arrays_pointers () =
  check_main "global array"
    {|
i32 a[8];
i64 main() {
  for (i64 i = 0; i < 8; i = i + 1) { a[i] = (i32)i * 2; }
  i64 s = 0;
  for (i64 i = 0; i < 8; i = i + 1) { s = s + (i64)a[i]; }
  return s;
}
|}
    56L;
  check_main "local array (alloca)"
    {|
i64 main() {
  i16 t[4];
  t[0] = 5; t[1] = 6; t[2] = 7; t[3] = 8;
  return (i64)(t[0] + t[3]);
}
|}
    13L;
  check_main "pointer arithmetic"
    {|
i32 a[4];
i64 main() {
  i32* p = a;
  *p = 10;
  *(p + 3) = 40;
  return (i64)(a[0] + a[3]);
}
|}
    50L;
  check_main "pointer parameter"
    {|
i32 a[4];
void setit(i32* p, i64 i, i32 v) { p[i] = v; }
i64 main() { setit(a, 2, 99); return (i64)a[2]; }
|}
    99L

let test_lower_global_init () =
  check_main "global initializers"
    {|
i32 tbl[4] = {10, 20, 30};
i32 scalar = -5;
i64 main() { return (i64)(tbl[0] + tbl[1] + tbl[2] + tbl[3] + scalar); }
|}
    55L

let test_lower_floats () =
  check_main "float math"
    "i64 main() { f64 x = 1.5; f64 y = x * 4.0 + 0.25; return (i64)y; }" 6L;
  check_main "f32 narrowing"
    "i64 main() { f32 x = 0.5f; f64 y = (f64)x; return (i64)(y * 4.0); }" 2L;
  check_main "float compare"
    "i64 main() { f64 x = 2.0; if (x >= 2.0) { return 1; } return 0; }" 1L;
  check_main "int/float conversions"
    "i64 main() { i32 n = -7; f64 x = (f64)n; return (i64)(x / 2.0); }" (-3L)

let test_lower_builtins () =
  check_main "__min/__max signed"
    "i64 main() { i32 a = -3; i32 b = 2; return (i64)(__max(a, b) * 10 + __min(a, b)); }"
    17L;
  check_main "__max unsigned"
    "i64 main() { u8 a = 200; u8 b = 100; return (i64)__max(a, b); }" 200L

let test_lower_print () =
  let r =
    run_main ~expect_output:"42\n3.5\n"
      {|
i64 main() {
  print_i64(42);
  print_f64(3.5);
  return 0;
}
|}
  in
  check Alcotest.int64 "print result" 0L r

let test_lower_recursion () =
  check_main "recursion"
    {|
i64 fib(i64 n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
i64 main() { return fib(12); }
|}
    144L

let test_compound_assignment () =
  check_main "compound ops"
    {|
i64 main() {
  i64 x = 10;
  x += 5;
  x -= 3;
  x *= 4;
  x /= 2;
  x %= 17;
  x &= 30;
  x |= 1;
  x ^= 6;
  return x;
}
|}
    1L;
  check_main "incr/decr"
    "i64 main() { i64 i = 0; i64 s = 0; while (i < 5) { s += i; i++; } i--; return s * 10 + i; }"
    104L;
  check_main "compound on array element"
    {|
i32 a[4];
i64 main() { a[2] = 7; a[2] += 5; a[2] *= 2; return (i64)a[2]; }
|}
    24L;
  check_main "compound narrow type"
    "i64 main() { u8 x = 250; x += 10; return (i64)x; }" 4L

let test_lower_narrow_semantics () =
  check_main "u8 wraparound"
    "i64 main() { u8 x = 250; x = x + 10; return (i64)x; }" 4L;
  check_main "i8 sign"
    "i64 main() { i8 x = 127; x = x + 1; return (i64)x; }" (-128L);
  check_main "u16 compare"
    "i64 main() { u16 a = 60000; u16 b = 1; if (a > b) { return 1; } return 0; }"
    1L

let test_verifies (src : string) =
  let p = Minic.Lower.compile src in
  Pvir.Verify.program p

let test_lower_always_verifies () =
  (* every lowered program must pass the verifier *)
  List.iter test_verifies
    [
      "void f() { }";
      "i64 main() { i64 x = 0; for (;;) { x = x + 1; if (x > 3) { break; } } return x; }";
      "f32 g(f32* p, i64 n) { f32 s = 0.0; for (i64 i = 0; i < n; i = i + 1) { s = s + p[i]; } return s; }";
    ]

let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "numbers" `Quick test_lexer_numbers;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "ternary and cast" `Quick test_parser_ternary_and_cast;
          Alcotest.test_case "program shapes" `Quick test_parser_program_shapes;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "rejections" `Quick test_check_rejects;
          Alcotest.test_case "natural widths" `Quick test_check_widths;
          Alcotest.test_case "mixed conversion" `Quick test_check_mixed_conversion;
          Alcotest.test_case "for scoping" `Quick test_check_for_scoping;
        ] );
      ( "lowering",
        [
          Alcotest.test_case "arithmetic" `Quick test_lower_arith;
          Alcotest.test_case "control flow" `Quick test_lower_control;
          Alcotest.test_case "short circuit" `Quick test_lower_short_circuit;
          Alcotest.test_case "ternary" `Quick test_lower_ternary;
          Alcotest.test_case "arrays and pointers" `Quick test_lower_arrays_pointers;
          Alcotest.test_case "global init" `Quick test_lower_global_init;
          Alcotest.test_case "floats" `Quick test_lower_floats;
          Alcotest.test_case "builtins" `Quick test_lower_builtins;
          Alcotest.test_case "print intrinsics" `Quick test_lower_print;
          Alcotest.test_case "recursion" `Quick test_lower_recursion;
          Alcotest.test_case "compound assignment" `Quick test_compound_assignment;
          Alcotest.test_case "narrow semantics" `Quick test_lower_narrow_semantics;
          Alcotest.test_case "verifies" `Quick test_lower_always_verifies;
        ] );
    ]
