(* Unit tests for the VM substrate: memory, the loader, the interpreter
   and the profiler. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ---------------- memory ---------------- *)

let test_memory_load_store () =
  let m = Pvvm.Memory.create 256 in
  Pvvm.Memory.store m 16 (Pvir.Value.i32 (-5));
  check bool_t "i32 roundtrip" true
    (Pvir.Value.equal (Pvvm.Memory.load m 16 Pvir.Types.i32) (Pvir.Value.i32 (-5)));
  Pvvm.Memory.store m 32 (Pvir.Value.f64 2.75);
  check bool_t "f64 roundtrip" true
    (Pvir.Value.equal (Pvvm.Memory.load m 32 Pvir.Types.f64) (Pvir.Value.f64 2.75));
  let v = Pvir.Value.vec (Array.init 4 (fun i -> Pvir.Value.i16 (i * 11))) in
  Pvvm.Memory.store m 64 v;
  check bool_t "vec roundtrip" true
    (Pvir.Value.equal (Pvvm.Memory.load m 64 (Pvir.Types.vec Pvir.Types.I16 4)) v)

let test_memory_little_endian () =
  let m = Pvvm.Memory.create 64 in
  Pvvm.Memory.store m 8 (Pvir.Value.i32 0x01020304);
  check bool_t "low byte first" true
    (Pvir.Value.equal (Pvvm.Memory.load m 8 Pvir.Types.i8) (Pvir.Value.i8 4))

let test_memory_bounds () =
  let m = Pvvm.Memory.create 64 in
  List.iter
    (fun addr ->
      match Pvvm.Memory.load m addr Pvir.Types.i64 with
      | exception Pvvm.Memory.Fault _ -> ()
      | _ -> Alcotest.fail "out-of-bounds access allowed")
    [ -8; 0; 57; 64; 1000000 ]

let test_memory_arrays () =
  let m = Pvvm.Memory.create 256 in
  let vs = Array.init 10 (fun i -> Pvir.Value.i16 (i * 3)) in
  Pvvm.Memory.store_array m 100 vs;
  let back = Pvvm.Memory.load_array m 100 Pvir.Types.I16 10 in
  check bool_t "array roundtrip" true (Array.for_all2 Pvir.Value.equal vs back)

(* ---------------- image/loader ---------------- *)

let test_image_layout () =
  let p = Pvir.Prog.create "t" in
  Pvir.Prog.add_global p "a" Pvir.Types.I32 10;
  Pvir.Prog.add_global p "b" Pvir.Types.F64 5
    ~init:(Array.init 5 (fun i -> Pvir.Value.f64 (float_of_int i)));
  let img = Pvvm.Image.load p in
  let aa = Pvvm.Image.global_address img "a" in
  let ba = Pvvm.Image.global_address img "b" in
  check bool_t "null page reserved" true (aa >= 8);
  check bool_t "no overlap" true (ba >= aa + 40);
  check bool_t "aligned" true (aa mod 8 = 0 && ba mod 8 = 0);
  (* initializer applied *)
  let b = Pvvm.Image.read_global img "b" in
  check bool_t "init applied" true
    (Pvir.Value.equal b.(3) (Pvir.Value.f64 3.0));
  (* uninitialized global is zero *)
  let a = Pvvm.Image.read_global img "a" in
  check bool_t "zeroed" true (Pvir.Value.equal a.(7) (Pvir.Value.i32 0))

let test_image_rejects_ill_typed () =
  let p = Pvir.Prog.create "t" in
  let fn = Pvir.Func.create ~name:"bad" ~params:[] ~ret:None in
  let b = Pvir.Func.add_block fn in
  b.Pvir.Func.term <- Pvir.Instr.Br 42;
  Pvir.Prog.add_func p fn;
  match Pvvm.Image.load p with
  | exception Pvir.Verify.Error _ -> ()
  | _ -> Alcotest.fail "ill-typed program loaded"

let test_image_oom () =
  let p = Pvir.Prog.create "t" in
  Pvir.Prog.add_global p "big" Pvir.Types.I64 100000;
  match Pvvm.Image.load ~mem_size:1024 p with
  | exception Pvvm.Memory.Fault _ -> ()
  | _ -> Alcotest.fail "oversized globals loaded"

(* ---------------- interpreter ---------------- *)

let interp src entry args =
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create img in
  (Pvvm.Interp.run it entry args, it)

let test_interp_basics () =
  let r, _ = interp "i64 main() { return 40 + 2; }" "main" [] in
  check bool_t "42" true
    (match r with Some v -> Pvir.Value.equal v (Pvir.Value.i64 42L) | None -> false)

let test_interp_cycles_grow () =
  let _, it1 = interp "i64 main() { i64 s = 0; for (i64 i = 0; i < 10; i = i + 1) { s = s + i; } return s; }" "main" [] in
  let _, it2 = interp "i64 main() { i64 s = 0; for (i64 i = 0; i < 100; i = i + 1) { s = s + i; } return s; }" "main" [] in
  check bool_t "longer loop costs more" true
    (Int64.compare (Pvvm.Interp.cycles it2) (Pvvm.Interp.cycles it1) > 0)

let test_interp_traps () =
  List.iter
    (fun (what, src) ->
      match interp src "main" [] with
      | exception Pvvm.Interp.Trap _ -> ()
      | exception Pvvm.Memory.Fault _ -> ()
      | _ -> Alcotest.fail ("no trap for " ^ what))
    [
      ("division by zero", "i64 main() { i64 z = 0; return 5 / z; }");
      ("null store", "i64 main() { i64* p = (i64*)(i64)0; *p = 1; return 0; }");
      ("wild store", "i64 main() { i64* p = (i64*)(i64)99999999; *p = 1; return 0; }");
    ]

let test_interp_fuel () =
  let p = Core.Splitc.frontend "i64 main() { for (;;) { } return 0; }" in
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create ~fuel:10_000L img in
  match Pvvm.Interp.run it "main" [] with
  | exception Pvvm.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "infinite loop terminated?!"

let test_interp_stack_discipline () =
  (* allocas are released on return: deep call chains must not leak *)
  let src =
    {|
i64 leaf(i64 x) { i64 t[32]; t[0] = x; return t[0]; }
i64 main() {
  i64 s = 0;
  for (i64 i = 0; i < 200; i = i + 1) { s = s + leaf(i); }
  return s;
}
|}
  in
  let r, _ = interp src "main" [] in
  check bool_t "sum" true
    (match r with
    | Some v -> Pvir.Value.equal v (Pvir.Value.i64 19900L)
    | None -> false)

let test_interp_stack_overflow () =
  let src =
    {|
i64 deep(i64 n) { i64 t[512]; t[0] = n; if (n == 0) { return 0; } return t[0] + deep(n - 1); }
i64 main() { return deep(100000); }
|}
  in
  match interp src "main" [] with
  | exception Pvvm.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected stack overflow trap"

(* ---------------- profiler ---------------- *)

let test_profiler_counts () =
  let src =
    {|
i64 hot() { i64 s = 0; for (i64 i = 0; i < 100; i = i + 1) { s = s + 1; } return s; }
i64 cold() { return 1; }
i64 main() { return hot() + cold(); }
|}
  in
  let p = Core.Splitc.frontend src in
  let img = Pvvm.Image.load p in
  let profile = Pvvm.Profile.create () in
  let it = Pvvm.Interp.create ~profile img in
  ignore (Pvvm.Interp.run it "main" []);
  check int_t "hot called once" 1 (Pvvm.Profile.calls profile "hot");
  check bool_t "hot outweighs cold" true
    (Pvvm.Profile.weight profile "hot" > Pvvm.Profile.weight profile "cold");
  (* hotness annotations *)
  Pvvm.Profile.annotate_hotness profile p;
  let hot = Pvir.Prog.find_func_exn p "hot" in
  let cold = Pvir.Prog.find_func_exn p "cold" in
  let h fn =
    match Pvir.Annot.find Pvir.Annot.key_hotness fn.Pvir.Func.annots with
    | Some (Pvir.Annot.Flt x) -> x
    | _ -> Alcotest.fail "no hotness"
  in
  check bool_t "hotness ordering" true (h hot > h cold)

(* ---------------- interpreter vs simulator cost hierarchy ---------- *)

let test_interp_slower_than_jit () =
  let k = Pvkernels.Kernels.saxpy_fp in
  let _, interp_cycles = Pvkernels.Harness.run_interp k in
  let jit =
    Pvkernels.Harness.run_jit ~mode:Core.Splitc.Split
      ~machine:Pvmach.Machine.x86ish k
  in
  check bool_t "interpreter >5x slower" true
    (Int64.compare interp_cycles
       (Int64.mul 5L jit.Pvkernels.Harness.cycles)
    > 0)

let () =
  Alcotest.run "pvvm"
    [
      ( "memory",
        [
          Alcotest.test_case "load/store" `Quick test_memory_load_store;
          Alcotest.test_case "little endian" `Quick test_memory_little_endian;
          Alcotest.test_case "bounds" `Quick test_memory_bounds;
          Alcotest.test_case "arrays" `Quick test_memory_arrays;
        ] );
      ( "image",
        [
          Alcotest.test_case "layout" `Quick test_image_layout;
          Alcotest.test_case "verification gate" `Quick test_image_rejects_ill_typed;
          Alcotest.test_case "globals too big" `Quick test_image_oom;
        ] );
      ( "interp",
        [
          Alcotest.test_case "basics" `Quick test_interp_basics;
          Alcotest.test_case "cycles grow" `Quick test_interp_cycles_grow;
          Alcotest.test_case "traps" `Quick test_interp_traps;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "stack discipline" `Quick test_interp_stack_discipline;
          Alcotest.test_case "stack overflow" `Quick test_interp_stack_overflow;
        ] );
      ( "profiler",
        [ Alcotest.test_case "counts and hotness" `Quick test_profiler_counts ] );
      ( "hierarchy",
        [ Alcotest.test_case "interp slower than jit" `Quick test_interp_slower_than_jit ] );
    ]
