(* Unit tests for the offline optimizer: each pass is checked both
   structurally (did it do its job?) and semantically (the interpreter
   must observe identical behaviour before and after). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* observation of a program: result of calling [entry args] + all globals *)
let observe (p : Pvir.Prog.t) entry args =
  let img = Pvvm.Image.load (Pvir.Prog.copy p) in
  Pvkernels.Harness.fill_inputs img;
  let it = Pvvm.Interp.create img in
  let r = Pvvm.Interp.run it entry args in
  let globals =
    List.map
      (fun (g : Pvir.Prog.global) ->
        (g.Pvir.Prog.gname, Pvvm.Image.read_global img g.Pvir.Prog.gname))
      img.Pvvm.Image.prog.Pvir.Prog.globals
  in
  (r, globals, Pvvm.Interp.output it)

let same_observation (a, ga, oa) (b, gb, ob) =
  (match (a, b) with
  | None, None -> true
  | Some x, Some y -> Pvir.Value.equal x y
  | _ -> false)
  && String.equal oa ob
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         n1 = n2 && Array.for_all2 Pvir.Value.equal a1 a2)
       ga gb

(* apply [pass] to every function; assert semantics preserved *)
let preserved ?(entry = "main") ?(args = []) src pass =
  let p = Core.Splitc.frontend src in
  let before = observe p entry args in
  List.iter (fun fn -> ignore (pass fn)) p.Pvir.Prog.funcs;
  Pvir.Verify.program p;
  let after = observe p entry args in
  check bool_t "semantics preserved" true (same_observation before after);
  p

let instr_count (p : Pvir.Prog.t) =
  List.fold_left (fun acc fn -> acc + Pvir.Func.instr_count fn) 0 p.Pvir.Prog.funcs

(* count instructions matching a predicate *)
let count_matching (p : Pvir.Prog.t) pred =
  let n = ref 0 in
  List.iter
    (fun fn -> Pvir.Func.iter_instrs (fun _ i -> if pred i then incr n) fn)
    p.Pvir.Prog.funcs;
  !n

(* ---------------- constfold ---------------- *)

let test_constfold_folds () =
  let src = "i64 main() { i64 x = 3 + 4 * 5; return x + 1; }" in
  let p = preserved src (fun fn -> Pvopt.Constfold.run fn) in
  (* after folding, no arithmetic should remain, only constants and movs *)
  check int_t "no binops left" 0
    (count_matching p (function Pvir.Instr.Binop _ -> true | _ -> false))

let test_constfold_branch () =
  let src =
    "i64 main() { if (1 > 2) { return 100; } else { return 7; } }"
  in
  let p = preserved src (fun fn -> Pvopt.Constfold.run fn) in
  (* the conditional branch must have been folded to a direct branch *)
  let has_cbr =
    List.exists
      (fun (fn : Pvir.Func.t) ->
        List.exists
          (fun (b : Pvir.Func.block) ->
            match b.Pvir.Func.term with Pvir.Instr.Cbr _ -> true | _ -> false)
          fn.Pvir.Func.blocks)
      p.Pvir.Prog.funcs
  in
  check bool_t "cbr folded" false has_cbr

let test_constfold_algebraic () =
  let src = "i64 main(i64 n) { return n * 1 + 0; }" in
  let p = Core.Splitc.frontend src in
  List.iter (fun fn -> ignore (Pvopt.Constfold.run fn)) p.Pvir.Prog.funcs;
  check int_t "mul and add gone" 0
    (count_matching p (function
      | Pvir.Instr.Binop ((Pvir.Instr.Mul | Pvir.Instr.Add), _, _, _) -> true
      | _ -> false))

let test_constfold_keeps_div_by_zero () =
  (* folding must not evaluate a trapping division *)
  let src = "i64 main() { i64 z = 0; return 10 / z; }" in
  let p = Core.Splitc.frontend src in
  List.iter (fun fn -> ignore (Pvopt.Constfold.run fn)) p.Pvir.Prog.funcs;
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create img in
  Alcotest.check_raises "still traps" (Pvvm.Interp.Trap "division by zero")
    (fun () -> ignore (Pvvm.Interp.run it "main" []))

(* ---------------- copyprop + dce ---------------- *)

let test_copyprop_removes_movs () =
  let src = "i64 main() { i64 a = 5; i64 b = a; i64 c = b; return c; }" in
  let p =
    preserved src (fun fn ->
        let c1 = Pvopt.Copyprop.run fn in
        let c2 = Pvopt.Dce.run fn in
        c1 || c2)
  in
  check int_t "movs eliminated" 0
    (count_matching p (function Pvir.Instr.Mov _ -> true | _ -> false))

let test_dce_removes_dead () =
  let src = "i64 main() { i64 dead = 1 + 2; i64 dead2 = dead * 3; return 9; }" in
  let p = preserved src (fun fn -> Pvopt.Dce.run fn) in
  check int_t "dead arith removed" 0
    (count_matching p (function Pvir.Instr.Binop _ -> true | _ -> false))

let test_dce_keeps_stores_and_calls () =
  let src =
    {|
i32 g = 0;
void touch() { g = g + 1; }
i64 main() { touch(); g = g + 5; return (i64)g; }
|}
  in
  let p = preserved src (fun fn -> Pvopt.Dce.run fn) in
  check bool_t "store kept" true
    (count_matching p (function Pvir.Instr.Store _ -> true | _ -> false) > 0);
  check bool_t "call kept" true
    (count_matching p (function Pvir.Instr.Call _ -> true | _ -> false) > 0)

(* ---------------- cse ---------------- *)

let test_cse_dedupes () =
  let src =
    "i64 main(i64 a, i64 b) { i64 x = a * b + 1; i64 y = a * b + 2; return x + y; }"
  in
  let p = Core.Splitc.frontend src in
  let muls p =
    count_matching p (function
      | Pvir.Instr.Binop (Pvir.Instr.Mul, _, _, _) -> true
      | _ -> false)
  in
  check int_t "two muls before" 2 (muls p);
  List.iter (fun fn -> ignore (Pvopt.Cse.run fn)) p.Pvir.Prog.funcs;
  List.iter (fun fn -> ignore (Pvopt.Copyprop.run fn)) p.Pvir.Prog.funcs;
  List.iter (fun fn -> ignore (Pvopt.Dce.run fn)) p.Pvir.Prog.funcs;
  check int_t "one mul after" 1 (muls p);
  Pvir.Verify.program p

let test_cse_invalidated_by_store () =
  (* two loads of the same location with a store in between must both
     remain *)
  let src =
    {|
i32 g = 1;
i64 main() { i32 a = g; g = a + 1; i32 b = g; return (i64)(a * 100 + b); }
|}
  in
  let p =
    preserved src (fun fn ->
        let c = Pvopt.Cse.run fn in
        ignore (Pvopt.Copyprop.run fn);
        ignore (Pvopt.Dce.run fn);
        c)
  in
  check int_t "both loads remain" 2
    (count_matching p (function Pvir.Instr.Load _ -> true | _ -> false))

(* ---------------- simplify_cfg ---------------- *)

let test_simplify_merges () =
  let src =
    "i64 main() { i64 x = 1; if (x > 0) { x = 2; } else { x = 3; } return x; }"
  in
  let p = Core.Splitc.frontend src in
  let before = observe p "main" [] in
  List.iter
    (fun fn ->
      ignore (Pvopt.Constfold.run fn);
      ignore (Pvopt.Copyprop.run fn);
      ignore (Pvopt.Constfold.run fn);
      ignore (Pvopt.Simplify_cfg.run fn);
      ignore (Pvopt.Dce.run fn))
    p.Pvir.Prog.funcs;
  Pvir.Verify.program p;
  let after = observe p "main" [] in
  check bool_t "semantics preserved" true (same_observation before after);
  let fn = Pvir.Prog.find_func_exn p "main" in
  check int_t "collapsed to one block" 1 (List.length fn.Pvir.Func.blocks)

let test_prune_unreachable () =
  let fn = Pvir.Func.create ~name:"f" ~params:[] ~ret:None in
  let b0 = Pvir.Func.add_block fn in
  let _dead = Pvir.Func.add_block fn in
  b0.Pvir.Func.term <- Pvir.Instr.Ret None;
  check bool_t "pruned" true (Pvopt.Cfg.prune_unreachable fn);
  check int_t "one block left" 1 (List.length fn.Pvir.Func.blocks)

(* ---------------- idiom ---------------- *)

let test_idiom_minmax () =
  let src =
    "i64 main(i64 a, i64 b) { i64 m = a > b ? a : b; i64 n = a < b ? a : b; return m - n; }"
  in
  let p =
    preserved ~args:[ Pvir.Value.i64 3L; Pvir.Value.i64 9L ] src (fun fn ->
        Pvopt.Idiom.run fn)
  in
  check int_t "selects fused" 0
    (count_matching p (function Pvir.Instr.Select _ -> true | _ -> false));
  check int_t "max+min present" 2
    (count_matching p (function
      | Pvir.Instr.Binop ((Pvir.Instr.Max | Pvir.Instr.Min), _, _, _) -> true
      | _ -> false))

let test_idiom_unsigned () =
  let src = "i64 main(i64 x) { u8 a = (u8)x; u8 b = 7; u8 m = a > b ? a : b; return (i64)m; }" in
  let p =
    preserved ~args:[ Pvir.Value.i64 200L ] src (fun fn -> Pvopt.Idiom.run fn)
  in
  check int_t "umax used" 1
    (count_matching p (function
      | Pvir.Instr.Binop (Pvir.Instr.Umax, _, _, _) -> true
      | _ -> false))

(* ---------------- licm ---------------- *)

let test_licm_hoists () =
  let src =
    {|
i32 a[64];
void f(i64 n, i32 k) {
  for (i64 i = 0; i < n; i = i + 1) {
    a[i] = k * k;
  }
}
|}
  in
  let p = Core.Splitc.frontend src in
  let before = observe p "f" [ Pvir.Value.i64 64L; Pvir.Value.i32 5 ] in
  List.iter
    (fun fn ->
      ignore (Pvopt.Copyprop.run fn);
      ignore (Pvopt.Licm.run fn))
    p.Pvir.Prog.funcs;
  Pvir.Verify.program p;
  let after = observe p "f" [ Pvir.Value.i64 64L; Pvir.Value.i32 5 ] in
  check bool_t "semantics preserved" true (same_observation before after);
  (* k*k must now be outside the loop: the loop blocks contain no Mul on
     i32 *)
  let fn = Pvir.Prog.find_func_exn p "f" in
  let cfg = Pvopt.Cfg.build fn in
  let loops = Pvopt.Loops.find cfg in
  let in_loop_mul =
    List.exists
      (fun (lp : Pvopt.Loops.loop) ->
        List.exists
          (fun l ->
            List.exists
              (fun i ->
                match i with
                | Pvir.Instr.Binop (Pvir.Instr.Mul, d, _, _) ->
                  Pvir.Types.equal (Pvir.Func.reg_type fn d) Pvir.Types.i32
                | _ -> false)
              (Pvir.Func.find_block fn l).Pvir.Func.instrs)
          lp.Pvopt.Loops.blocks)
      loops.Pvopt.Loops.loops
  in
  check bool_t "k*k hoisted" false in_loop_mul

let test_licm_does_not_hoist_load_past_store () =
  (* g is written in the loop: the load of g must not be hoisted *)
  let src =
    {|
i32 g = 0;
i32 a[8];
void f(i64 n) {
  for (i64 i = 0; i < n; i = i + 1) {
    g = g + 1;
    a[i] = g;
  }
}
|}
  in
  ignore
    (preserved ~entry:"f" ~args:[ Pvir.Value.i64 8L ] src (fun fn ->
         ignore (Pvopt.Copyprop.run fn);
         Pvopt.Licm.run fn))

(* ---------------- strength reduction ---------------- *)

let test_strength_removes_loop_mul () =
  let src =
    {|
f64 a[64];
void f(i64 n, f64 v) {
  for (i64 i = 0; i < n; i = i + 1) {
    a[i] = v;
  }
}
|}
  in
  let p = Core.Splitc.frontend src in
  let before = observe p "f" [ Pvir.Value.i64 64L; Pvir.Value.f64 2.5 ] in
  Pvopt.Passes.cleanup p;
  Pvopt.Passes.licm_all p;  (* strength needs the invariant base hoisted *)
  List.iter (fun fn -> ignore (Pvopt.Strength.run fn)) p.Pvir.Prog.funcs;
  Pvopt.Passes.cleanup p;
  Pvir.Verify.program p;
  let after = observe p "f" [ Pvir.Value.i64 64L; Pvir.Value.f64 2.5 ] in
  check bool_t "semantics preserved" true (same_observation before after);
  (* the i*8 multiply must be gone from the loop *)
  let fn = Pvir.Prog.find_func_exn p "f" in
  let cfg = Pvopt.Cfg.build fn in
  let loops = Pvopt.Loops.find cfg in
  let muls_in_loops =
    List.fold_left
      (fun acc (lp : Pvopt.Loops.loop) ->
        List.fold_left
          (fun acc l ->
            acc
            + List.length
                (List.filter
                   (function
                     | Pvir.Instr.Binop (Pvir.Instr.Mul, _, _, _) -> true
                     | _ -> false)
                   (Pvir.Func.find_block fn l).Pvir.Func.instrs))
          acc lp.Pvopt.Loops.blocks)
      0 loops.Pvopt.Loops.loops
  in
  check int_t "no multiply in loop" 0 muls_in_loops

(* ---------------- inline ---------------- *)

let test_inline_small_callee () =
  let src =
    {|
i64 square(i64 x) { return x * x; }
i64 main() { return square(3) + square(4); }
|}
  in
  let p = Core.Splitc.frontend src in
  let before = observe p "main" [] in
  ignore (Pvopt.Inline.run p);
  Pvir.Verify.program p;
  let after = observe p "main" [] in
  check bool_t "semantics preserved" true (same_observation before after);
  let main = Pvir.Prog.find_func_exn p "main" in
  let calls = ref 0 in
  Pvir.Func.iter_instrs
    (fun _ i -> match i with Pvir.Instr.Call _ -> incr calls | _ -> ())
    main;
  check int_t "no calls left in main" 0 !calls

let test_inline_respects_recursion () =
  let src =
    {|
i64 fact(i64 n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
i64 main() { return fact(5); }
|}
  in
  let p = Core.Splitc.frontend src in
  ignore (Pvopt.Inline.run p);
  Pvir.Verify.program p;
  let fact = Pvir.Prog.find_func_exn p "fact" in
  let self_calls = ref 0 in
  Pvir.Func.iter_instrs
    (fun _ i ->
      match i with
      | Pvir.Instr.Call (_, "fact", _) -> incr self_calls
      | _ -> ())
    fact;
  check bool_t "recursive call kept" true (!self_calls > 0);
  let after = observe p "main" [] in
  match after with
  | Some v, _, _ -> check bool_t "fact(5)" true (Pvir.Value.equal v (Pvir.Value.i64 120L))
  | _ -> Alcotest.fail "no result"

(* ---------------- loops analysis ---------------- *)

let test_loop_detection () =
  let src =
    {|
void f(i64 n) {
  for (i64 i = 0; i < n; i = i + 1) {
    for (i64 j = 0; j < n; j = j + 1) { }
  }
}
|}
  in
  let p = Core.Splitc.frontend src in
  let fn = Pvir.Prog.find_func_exn p "f" in
  let cfg = Pvopt.Cfg.build fn in
  let loops = Pvopt.Loops.find cfg in
  check int_t "two loops" 2 (List.length loops.Pvopt.Loops.loops);
  let depths =
    List.sort compare
      (List.map (fun (l : Pvopt.Loops.loop) -> l.Pvopt.Loops.depth)
         loops.Pvopt.Loops.loops)
  in
  check bool_t "nesting depths" true (depths = [ 1; 2 ])

let test_induction_variables () =
  let src = "void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { } }" in
  let p = Core.Splitc.frontend src in
  (* canonical IV shape (i = add i, c) appears after the cleanup pipeline
     (copy coalescing + folding of the sign-extended step constant) *)
  Pvopt.Passes.cleanup p;
  let fn = Pvir.Prog.find_func_exn p "f" in
  let cfg = Pvopt.Cfg.build fn in
  let loops = Pvopt.Loops.find cfg in
  match loops.Pvopt.Loops.loops with
  | [ lp ] -> (
    match Pvopt.Loops.induction_variables fn lp with
    | [ (_, step, _) ] -> check bool_t "unit step" true (Int64.equal step 1L)
    | l -> Alcotest.fail (Printf.sprintf "%d IVs found" (List.length l)))
  | _ -> Alcotest.fail "expected one loop"

(* ---------------- dominators / liveness ---------------- *)

let test_dominators () =
  let src =
    "i64 main(i64 x) { i64 r = 0; if (x > 0) { r = 1; } else { r = 2; } return r; }"
  in
  let p = Core.Splitc.frontend src in
  let fn = Pvir.Prog.find_func_exn p "main" in
  let cfg = Pvopt.Cfg.build fn in
  let dom = Pvopt.Cfg.dominators cfg in
  let entry = (Pvir.Func.entry fn).Pvir.Func.label in
  List.iter
    (fun (b : Pvir.Func.block) ->
      if Pvopt.Cfg.reachable cfg b.Pvir.Func.label then
        check bool_t "entry dominates all" true
          (Pvopt.Cfg.dominates dom entry b.Pvir.Func.label))
    fn.Pvir.Func.blocks

let test_liveness_param () =
  let src = "i64 main(i64 x) { i64 y = 1; while (y < x) { y = y + y; } return y; }" in
  let p = Core.Splitc.frontend src in
  let fn = Pvir.Prog.find_func_exn p "main" in
  let cfg = Pvopt.Cfg.build fn in
  let lv = Pvopt.Cfg.liveness cfg in
  (* x (reg 0) is live into the loop header *)
  let live_somewhere =
    List.exists
      (fun (b : Pvir.Func.block) ->
        Hashtbl.mem (Pvopt.Cfg.live_in_of lv b.Pvir.Func.label) 0)
      fn.Pvir.Func.blocks
  in
  check bool_t "param live" true live_somewhere

(* ---------------- vectorizer ---------------- *)

let vectorize_src src =
  let p = Core.Splitc.frontend src in
  Pvopt.Passes.cleanup p;
  Pvopt.Passes.licm_all p;
  let results = Pvopt.Vectorize.run p in
  Pvir.Verify.program p;
  (p, results)

let vectorized_count results =
  List.fold_left
    (fun acc (_, (r : Pvopt.Vectorize.result)) ->
      acc + List.length r.Pvopt.Vectorize.vectorized)
    0 results

let first_vf results =
  List.find_map
    (fun (_, (r : Pvopt.Vectorize.result)) ->
      match r.Pvopt.Vectorize.vectorized with (_, vf) :: _ -> Some vf | [] -> None)
    results

let test_vectorize_simple_map () =
  let src =
    {|
f32 a[128]; f32 b[128]; f32 c[128];
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { c[i] = a[i] + b[i]; } }
|}
  in
  let p, results = vectorize_src src in
  check int_t "one loop vectorized" 1 (vectorized_count results);
  check bool_t "vf = 4" true (first_vf results = Some 4);
  (* semantics: vectorized == interpreter on original *)
  let p0 = Core.Splitc.frontend src in
  let before = observe p0 "f" [ Pvir.Value.i64 100L ] in
  let after = observe p "f" [ Pvir.Value.i64 100L ] in
  check bool_t "results equal (incl. remainder)" true
    (same_observation before after)

let test_vectorize_bytes_vf16 () =
  let src =
    {|
u8 a[256]; u8 b[256];
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { b[i] = a[i] + b[i]; } }
|}
  in
  let _, results = vectorize_src src in
  check bool_t "vf = 16" true (first_vf results = Some 16)

let test_vectorize_reduction () =
  let src =
    {|
u16 a[256];
u32 f(i64 n) { u32 s = 0; for (i64 i = 0; i < n; i = i + 1) { s = s + (u32)a[i]; } return s; }
|}
  in
  let p, results = vectorize_src src in
  check int_t "reduction vectorized" 1 (vectorized_count results);
  let p0 = Core.Splitc.frontend src in
  (* 203 exercises the scalar remainder loop too *)
  let before = observe p0 "f" [ Pvir.Value.i64 203L ] in
  let after = observe p "f" [ Pvir.Value.i64 203L ] in
  check bool_t "reduction result equal" true (same_observation before after)

let test_vectorize_bails_on_alias () =
  (* pointer params without a no-alias guarantee must not vectorize *)
  let src =
    "void f(f32* a, f32* b, i64 n) { for (i64 i = 0; i < n; i = i + 1) { b[i] = a[i]; } }"
  in
  let _, results = vectorize_src src in
  check int_t "bailed" 0 (vectorized_count results)

let test_vectorize_accepts_noalias_params () =
  let src =
    "void f(f32* a, f32* b, i64 n) { for (i64 i = 0; i < n; i = i + 1) { b[i] = a[i]; } }"
  in
  let p = Core.Splitc.frontend src in
  let fn = Pvir.Prog.find_func_exn p "f" in
  Pvir.Func.add_annot fn Pvir.Annot.key_no_alias (Pvir.Annot.Bool true);
  Pvopt.Passes.cleanup p;
  Pvopt.Passes.licm_all p;
  let results = Pvopt.Vectorize.run p in
  check int_t "vectorized with restrict" 1 (vectorized_count results)

let test_vectorize_bails_on_call () =
  let src =
    {|
f32 a[64];
void g() { }
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { a[i] = 1.0; g(); } }
|}
  in
  let _, results = vectorize_src src in
  check int_t "call bails" 0 (vectorized_count results)

let test_vectorize_bails_on_stride () =
  let src =
    {|
f32 a[256];
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { a[i * 2] = 1.0; } }
|}
  in
  let _, results = vectorize_src src in
  check int_t "non-unit stride bails" 0 (vectorized_count results)

let test_vectorize_bails_on_float_sum () =
  (* float add reduction reassociates: requires fast-math *)
  let src =
    {|
f32 a[64];
f32 f(i64 n) { f32 s = 0.0; for (i64 i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }
|}
  in
  let _, results = vectorize_src src in
  check int_t "float sum bails" 0 (vectorized_count results)

let test_vectorize_float_sum_fast_math () =
  (* ... but vectorizes under the fast-math annotation *)
  let src =
    {|
f32 a[64];
f32 f(i64 n) { f32 s = 0.0; for (i64 i = 0; i < n; i = i + 1) { s = s + a[i]; } return s; }
|}
  in
  let p = Core.Splitc.frontend src in
  let fn = Pvir.Prog.find_func_exn p "f" in
  Pvir.Func.add_annot fn "pv.fast_math" (Pvir.Annot.Bool true);
  Pvopt.Passes.cleanup p;
  Pvopt.Passes.licm_all p;
  let results = Pvopt.Vectorize.run p in
  check int_t "fast-math float sum vectorized" 1 (vectorized_count results)

let test_vectorize_float_max_ok () =
  (* float min/max reductions are exact and must vectorize *)
  let src =
    {|
f32 a[64];
f32 f(i64 n) { f32 m = 0.0; for (i64 i = 0; i < n; i = i + 1) { m = __max(m, a[i]); } return m; }
|}
  in
  let p, results = vectorize_src src in
  check int_t "float max vectorized" 1 (vectorized_count results);
  let p0 = Core.Splitc.frontend src in
  let before = observe p0 "f" [ Pvir.Value.i64 60L ] in
  let after = observe p "f" [ Pvir.Value.i64 60L ] in
  check bool_t "max equal" true (same_observation before after)

let test_vectorize_bails_iv_as_data () =
  let src =
    {|
i32 a[64];
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { a[i] = (i32)i; } }
|}
  in
  let _, results = vectorize_src src in
  check int_t "iv-as-data bails" 0 (vectorized_count results)


let test_vectorize_2d_stencil () =
  (* inner loop of a 2D kernel: addresses are affine in x with an
     invariant row term; distinct globals make the dependence test pass *)
  let src =
    {|
u8 img_in[1056];
u8 img_out[1056];
void scale(i64 w, i64 h) {
  for (i64 y = 0; y < h; y++) {
    i64 row = y * 33;
    for (i64 x = 0; x < w; x++) {
      img_out[row + x] = img_in[row + x] / 2;
    }
  }
}
|}
  in
  let p, results = vectorize_src src in
  check int_t "inner loop vectorized" 1 (vectorized_count results);
  let p0 = Core.Splitc.frontend src in
  let before = observe p0 "scale" [ Pvir.Value.i64 33L; Pvir.Value.i64 32L ] in
  let after = observe p "scale" [ Pvir.Value.i64 33L; Pvir.Value.i64 32L ] in
  check bool_t "2d results equal" true (same_observation before after)

let test_vectorize_2d_inplace_bails () =
  (* same array read at a different row and written: possible loop-carried
     dependence through the dynamic row offsets -> must bail *)
  let src =
    {|
u8 img[1056];
void smear(i64 w, i64 h) {
  for (i64 y = 1; y < h; y++) {
    i64 row = y * 33;
    i64 prev = (y - 1) * 33;
    for (i64 x = 0; x < w; x++) {
      img[row + x] = img[prev + x];
    }
  }
}
|}
  in
  let _, results = vectorize_src src in
  check int_t "in-place 2d bails" 0 (vectorized_count results)

let test_vectorize_annotations_present () =
  let src =
    {|
u8 a[64];
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { a[i] = a[i] + 1; } }
|}
  in
  let p, _ = vectorize_src src in
  let fn = Pvir.Prog.find_func_exn p "f" in
  check bool_t "pv.vectorized set" true
    (Pvir.Annot.find_int Pvir.Annot.key_vectorized fn.Pvir.Func.annots = Some 16)


(* ---------------- if-conversion ---------------- *)

let test_ifconv_half_diamond () =
  let src =
    "i64 main(i64 a, i64 b) { i64 m = a; if (b > a) { m = b; } return m; }"
  in
  let p =
    preserved ~args:[ Pvir.Value.i64 3L; Pvir.Value.i64 9L ] src (fun fn ->
        ignore (Pvopt.Copyprop.run fn);
        Pvopt.Ifconv.run fn)
  in
  (* the branch is gone *)
  let has_cbr =
    count_matching p (fun _ -> false) = -1
    || List.exists
         (fun (fn : Pvir.Func.t) ->
           List.exists
             (fun (b : Pvir.Func.block) ->
               match b.Pvir.Func.term with Pvir.Instr.Cbr _ -> true | _ -> false)
             fn.Pvir.Func.blocks)
         p.Pvir.Prog.funcs
  in
  check bool_t "branch removed" false has_cbr

let test_ifconv_full_diamond () =
  let src =
    "i64 main(i64 a, i64 b) { i64 r = 0; if (a > b) { r = a * 2; } else { r = b * 3; } return r; }"
  in
  List.iter
    (fun args ->
      ignore
        (preserved ~args src (fun fn ->
             ignore (Pvopt.Copyprop.run fn);
             Pvopt.Ifconv.run fn)))
    [ [ Pvir.Value.i64 5L; Pvir.Value.i64 2L ];
      [ Pvir.Value.i64 2L; Pvir.Value.i64 5L ] ]

let test_ifconv_skips_effects () =
  (* stores and calls must not be speculated *)
  let src =
    {|
i32 g = 0;
i64 main(i64 a) { if (a > 0) { g = 1; } return (i64)g; }
|}
  in
  let p = Core.Splitc.frontend src in
  List.iter (fun fn -> ignore (Pvopt.Copyprop.run fn)) p.Pvir.Prog.funcs;
  let changed =
    List.exists (fun fn -> Pvopt.Ifconv.run fn) p.Pvir.Prog.funcs
  in
  check bool_t "store arm untouched" false changed

let test_ifconv_skips_division () =
  (* a guarded division must not be hoisted past its guard *)
  let src =
    "i64 main(i64 a, i64 b) { i64 r = 0; if (b != 0) { r = a / b; } return r; }"
  in
  let p = Core.Splitc.frontend src in
  List.iter (fun fn -> ignore (Pvopt.Copyprop.run fn)) p.Pvir.Prog.funcs;
  List.iter (fun fn -> ignore (Pvopt.Ifconv.run fn)) p.Pvir.Prog.funcs;
  (* whatever happened, dividing by zero must still be safe *)
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create img in
  match Pvvm.Interp.run it "main" [ Pvir.Value.i64 10L; Pvir.Value.i64 0L ] with
  | Some v -> check bool_t "guard held" true (Pvir.Value.equal v (Pvir.Value.i64 0L))
  | None -> Alcotest.fail "no result"

let test_ifconv_enables_vectorization () =
  (* the headline: an if-based max reduction becomes vectorizable through
     ifconv -> select -> idiom -> umax *)
  let src =
    {|
u8 ic_a[256];
u8 f(i64 n) {
  u8 m = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    if (ic_a[i] > m) { m = ic_a[i]; }
  }
  return m;
}
|}
  in
  let p, results = vectorize_src src in
  check int_t "if-max vectorized" 1 (vectorized_count results);
  let p0 = Core.Splitc.frontend src in
  let before = observe p0 "f" [ Pvir.Value.i64 200L ] in
  let after = observe p "f" [ Pvir.Value.i64 200L ] in
  check bool_t "if-max equal" true (same_observation before after)

(* ---------------- regalloc annotations ---------------- *)

let test_regalloc_annotate () =
  let src =
    {|
i32 a[64];
void f(i64 n, i32 k) {
  for (i64 i = 0; i < n; i = i + 1) { a[i] = a[i] * k; }
}
|}
  in
  let p = Core.Splitc.frontend src in
  Pvopt.Passes.cleanup p;
  Pvopt.Regalloc_annotate.run p;
  let fn = Pvir.Prog.find_func_exn p "f" in
  (match Pvopt.Regalloc_annotate.decode_spill_order fn with
  | Some order ->
    check bool_t "order non-empty" true (order <> []);
    (* costs must be sorted ascending (cheapest spill first) *)
    let costs = List.map snd order in
    check bool_t "sorted" true (List.sort compare costs = costs)
  | None -> Alcotest.fail "no spill order annotation");
  check bool_t "pressure recorded" true
    (Pvir.Annot.find_int Pvir.Annot.key_pressure fn.Pvir.Func.annots <> None)

(* ---------------- full pipelines ---------------- *)

let test_pipeline_split_preserves () =
  List.iter
    (fun (k : Pvkernels.Kernels.t) ->
      let p = Core.Splitc.frontend k.Pvkernels.Kernels.source in
      let args = Pvkernels.Harness.args k 100 in
      let before = observe p k.Pvkernels.Kernels.entry args in
      let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
      let after = observe off.Core.Splitc.prog k.Pvkernels.Kernels.entry args in
      check bool_t (k.Pvkernels.Kernels.name ^ " preserved") true
        (same_observation before after))
    Pvkernels.Kernels.all

let test_pipeline_shrinks_code () =
  (* the cleanup pipeline should never grow a straight-line program *)
  let src =
    "i64 main() { i64 a = 1 + 2; i64 b = a; i64 c = b * 1; return c + 0; }"
  in
  let p = Core.Splitc.frontend src in
  let n0 = instr_count p in
  Pvopt.Passes.cleanup p;
  check bool_t "shrinks" true (instr_count p < n0)

let () =
  Alcotest.run "pvopt"
    [
      ( "constfold",
        [
          Alcotest.test_case "folds" `Quick test_constfold_folds;
          Alcotest.test_case "branch folding" `Quick test_constfold_branch;
          Alcotest.test_case "algebraic" `Quick test_constfold_algebraic;
          Alcotest.test_case "keeps trapping div" `Quick test_constfold_keeps_div_by_zero;
        ] );
      ( "copyprop/dce",
        [
          Alcotest.test_case "movs removed" `Quick test_copyprop_removes_movs;
          Alcotest.test_case "dead removed" `Quick test_dce_removes_dead;
          Alcotest.test_case "effects kept" `Quick test_dce_keeps_stores_and_calls;
        ] );
      ( "cse",
        [
          Alcotest.test_case "dedupes" `Quick test_cse_dedupes;
          Alcotest.test_case "store invalidates" `Quick test_cse_invalidated_by_store;
        ] );
      ( "simplify_cfg",
        [
          Alcotest.test_case "merges blocks" `Quick test_simplify_merges;
          Alcotest.test_case "prunes unreachable" `Quick test_prune_unreachable;
        ] );
      ( "idiom",
        [
          Alcotest.test_case "min/max fusion" `Quick test_idiom_minmax;
          Alcotest.test_case "unsigned variant" `Quick test_idiom_unsigned;
        ] );
      ( "licm",
        [
          Alcotest.test_case "hoists invariant" `Quick test_licm_hoists;
          Alcotest.test_case "respects stores" `Quick test_licm_does_not_hoist_load_past_store;
        ] );
      ( "strength",
        [ Alcotest.test_case "removes loop mul" `Quick test_strength_removes_loop_mul ] );
      ( "inline",
        [
          Alcotest.test_case "small callee" `Quick test_inline_small_callee;
          Alcotest.test_case "recursion kept" `Quick test_inline_respects_recursion;
        ] );
      ( "loops",
        [
          Alcotest.test_case "detection" `Quick test_loop_detection;
          Alcotest.test_case "induction variables" `Quick test_induction_variables;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "dominators" `Quick test_dominators;
          Alcotest.test_case "liveness" `Quick test_liveness_param;
        ] );
      ( "vectorize",
        [
          Alcotest.test_case "simple map" `Quick test_vectorize_simple_map;
          Alcotest.test_case "bytes vf16" `Quick test_vectorize_bytes_vf16;
          Alcotest.test_case "reduction" `Quick test_vectorize_reduction;
          Alcotest.test_case "alias bail" `Quick test_vectorize_bails_on_alias;
          Alcotest.test_case "restrict params" `Quick test_vectorize_accepts_noalias_params;
          Alcotest.test_case "call bail" `Quick test_vectorize_bails_on_call;
          Alcotest.test_case "stride bail" `Quick test_vectorize_bails_on_stride;
          Alcotest.test_case "float sum bail" `Quick test_vectorize_bails_on_float_sum;
          Alcotest.test_case "float sum fast-math" `Quick test_vectorize_float_sum_fast_math;
          Alcotest.test_case "float max ok" `Quick test_vectorize_float_max_ok;
          Alcotest.test_case "iv as data bail" `Quick test_vectorize_bails_iv_as_data;
          Alcotest.test_case "annotations" `Quick test_vectorize_annotations_present;
          Alcotest.test_case "2d stencil" `Quick test_vectorize_2d_stencil;
          Alcotest.test_case "2d in-place bail" `Quick test_vectorize_2d_inplace_bails;
        ] );
      ( "ifconv",
        [
          Alcotest.test_case "half diamond" `Quick test_ifconv_half_diamond;
          Alcotest.test_case "full diamond" `Quick test_ifconv_full_diamond;
          Alcotest.test_case "skips effects" `Quick test_ifconv_skips_effects;
          Alcotest.test_case "skips division" `Quick test_ifconv_skips_division;
          Alcotest.test_case "enables vectorization" `Quick test_ifconv_enables_vectorization;
        ] );
      ( "regalloc_annotate",
        [ Alcotest.test_case "spill order" `Quick test_regalloc_annotate ] );
      ( "pipelines",
        [
          Alcotest.test_case "split preserves kernels" `Quick test_pipeline_split_preserves;
          Alcotest.test_case "cleanup shrinks" `Quick test_pipeline_shrinks_code;
        ] );
    ]
