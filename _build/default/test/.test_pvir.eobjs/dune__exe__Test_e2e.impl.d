test/test_e2e.ml: Alcotest Array Core Filename Fun Int64 List Printf Pvir Pvjit Pvkernels Pvmach Pvopt Pvvm String Sys
