test/test_link.ml: Alcotest Array Core Int64 List Printf Pvir Pvjit Pvmach Pvvm String
