test/test_sched.ml: Alcotest Array Int64 List Pvir Pvmach Pvsched
