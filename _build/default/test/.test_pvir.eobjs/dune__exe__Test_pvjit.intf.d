test/test_pvjit.mli:
