test/test_pvvm.ml: Alcotest Array Core Int64 List Pvir Pvkernels Pvmach Pvvm
