test/test_pvir.mli:
