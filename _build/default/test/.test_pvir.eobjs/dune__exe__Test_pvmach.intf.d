test/test_pvmach.mli:
