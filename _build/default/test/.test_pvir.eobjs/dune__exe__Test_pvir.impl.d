test/test_pvir.ml: Account Alcotest Annot Array Builder Bytes Eval Filename Fun Func Instr Int64 List Parse Pp Prog Pvir Serial String Sys Types Value Verify
