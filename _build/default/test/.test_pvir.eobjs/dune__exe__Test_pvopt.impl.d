test/test_pvopt.ml: Alcotest Array Core Hashtbl Int64 List Printf Pvir Pvkernels Pvopt Pvvm String
