test/test_props.ml: Alcotest Array Bytes Core Int64 List Printf Pvir Pvkernels Pvmach Pvsched Pvvm QCheck QCheck_alcotest String
