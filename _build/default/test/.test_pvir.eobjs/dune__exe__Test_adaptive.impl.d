test/test_adaptive.ml: Alcotest Array Core Int64 List Printf Pvir Pvjit Pvkernels Pvmach Pvopt Pvvm
