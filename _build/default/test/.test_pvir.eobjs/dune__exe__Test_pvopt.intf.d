test/test_pvopt.mli:
