test/test_pvmach.ml: Alcotest Capability Cost Hashtbl List Machine Mir Pvir Pvmach
