test/test_pvvm.mli:
