test/test_pvjit.ml: Alcotest Core Cost Hashtbl Int64 List Machine Mir Printf Pvir Pvjit Pvkernels Pvmach Pvopt Pvvm
