(* Tests for the Kahn process network runtime and the heterogeneous
   mapper. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let tok x = [| Pvir.Value.i64 (Int64.of_int x) |]
let tok_val (t : Pvsched.Kpn.token) = Int64.to_int (Pvir.Value.to_int64 t.(0))

(* a 3-stage pipeline: double -> add1 -> out *)
let pipeline () =
  let map name inputs outputs f =
    {
      Pvsched.Kpn.pname = name;
      inputs;
      outputs;
      fire =
        (fun toks -> List.map (fun t -> tok (f (tok_val t))) toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  [
    map "double" [ "in" ] [ "mid" ] (fun x -> x * 2);
    map "add1" [ "mid" ] [ "out" ] (fun x -> x + 1);
  ]

let test_kpn_pipeline () =
  let net = Pvsched.Kpn.create (pipeline ()) in
  List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) [ 1; 2; 3 ];
  let firings = Pvsched.Kpn.run net in
  check int_t "firings" 6 firings;
  let out = List.map tok_val (Pvsched.Kpn.drain net "out") in
  check bool_t "fifo order preserved" true (out = [ 3; 5; 7 ])

let test_kpn_determinism () =
  (* Kahn's theorem: any scheduling order produces the same streams *)
  let run_with order =
    let net = Pvsched.Kpn.create (pipeline ()) in
    List.iter (fun x -> Pvsched.Kpn.push net "in" (tok x)) [ 5; 6; 7; 8 ];
    ignore (Pvsched.Kpn.run ~order net);
    List.map tok_val (Pvsched.Kpn.drain net "out")
  in
  let forward = run_with (fun ps -> ps) in
  let reverse = run_with List.rev in
  let rotated = run_with (fun ps -> List.tl ps @ [ List.hd ps ]) in
  check bool_t "reverse order same" true (forward = reverse);
  check bool_t "rotated order same" true (forward = rotated)

let test_kpn_multi_input () =
  (* a join process consumes one token from each input per firing *)
  let join =
    {
      Pvsched.Kpn.pname = "join";
      inputs = [ "a"; "b" ];
      outputs = [ "sum" ];
      fire =
        (fun toks ->
          match toks with
          | [ x; y ] -> [ tok (tok_val x + tok_val y) ]
          | _ -> assert false);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let net = Pvsched.Kpn.create [ join ] in
  List.iter (fun x -> Pvsched.Kpn.push net "a" (tok x)) [ 1; 2; 3 ];
  List.iter (fun x -> Pvsched.Kpn.push net "b" (tok x)) [ 10; 20 ];
  ignore (Pvsched.Kpn.run net);
  (* only two firings possible: channel b has two tokens *)
  let out = List.map tok_val (Pvsched.Kpn.drain net "sum") in
  check bool_t "join sums pairwise" true (out = [ 11; 22 ]);
  (* the unmatched token remains *)
  check int_t "leftover" 1 (List.length (Pvsched.Kpn.drain net "a"))

let test_kpn_firing_budget () =
  (* a self-feeding process never terminates: the budget must trip *)
  let loop_p =
    {
      Pvsched.Kpn.pname = "loop";
      inputs = [ "c" ];
      outputs = [ "c" ];
      fire = (fun toks -> toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let net = Pvsched.Kpn.create [ loop_p ] in
  Pvsched.Kpn.push net "c" (tok 1);
  match Pvsched.Kpn.run ~max_firings:100 net with
  | exception Pvsched.Kpn.Deadlock _ -> ()
  | _ -> Alcotest.fail "self-feeding network terminated"

(* ---------------- mapper ---------------- *)

let platform () =
  let host = { Pvsched.Mapper.cname = "host"; machine = Pvmach.Machine.ppcish } in
  let accel = { Pvsched.Mapper.cname = "accel"; machine = Pvmach.Machine.dspish } in
  (host, accel, { Pvsched.Mapper.cores = [ host; accel ]; transfer_cost = 100 })

let offload_processes () =
  let control name inputs outputs =
    {
      Pvsched.Kpn.pname = name;
      inputs;
      outputs;
      fire = (fun toks -> toks);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let numeric =
    {
      Pvsched.Kpn.pname = "numeric";
      inputs = [ "raw" ];
      outputs = [ "cooked" ];
      fire = (fun toks -> toks);
      annots =
        Pvir.Annot.add Pvir.Annot.key_hw_prefs
          (Pvir.Annot.List [ Pvir.Annot.Str "simd128" ])
          Pvir.Annot.empty;
      work = 100;
    }
  in
  [ control "src" [ "in" ] [ "raw" ]; numeric; control "snk" [ "cooked" ] [ "out" ] ]

let cost (p : Pvsched.Kpn.process) (c : Pvsched.Mapper.core) =
  match p.Pvsched.Kpn.pname with
  | "numeric" -> if c.Pvsched.Mapper.cname = "accel" then 500 else 2000
  | _ -> if c.Pvsched.Mapper.cname = "accel" then 400 else 50

let test_mapper_placement () =
  let _, accel, plat = platform () in
  let ps = offload_processes () in
  let placement = Pvsched.Mapper.place plat cost ps in
  check bool_t "numeric offloaded" true
    (List.assoc "numeric" placement == accel);
  check bool_t "control on host" true
    ((List.assoc "src" placement).Pvsched.Mapper.cname = "host")

let fresh_net n =
  let net = Pvsched.Kpn.create (offload_processes ()) in
  for i = 1 to n do
    Pvsched.Kpn.push net "in" (tok i)
  done;
  net

let test_mapper_makespan_offload_wins () =
  let host, _, plat = platform () in
  let ps = offload_processes () in
  let host_only = Pvsched.Mapper.place_all_on host ps in
  let auto = Pvsched.Mapper.place plat cost ps in
  let t_host = Pvsched.Mapper.makespan plat cost host_only (fresh_net 32) in
  let t_auto = Pvsched.Mapper.makespan plat cost auto (fresh_net 32) in
  check bool_t "offload faster" true (Int64.compare t_auto t_host < 0);
  (* with the numeric stage dominant, the win approaches the stage ratio *)
  let ratio = Int64.to_float t_host /. Int64.to_float t_auto in
  check bool_t "meaningful speedup" true (ratio > 1.5)

let test_mapper_transfer_cost_matters () =
  (* an extreme transfer cost makes offload lose *)
  let host, _, plat0 = platform () in
  let plat = { plat0 with Pvsched.Mapper.transfer_cost = 1_000_000 } in
  let ps = offload_processes () in
  let host_only = Pvsched.Mapper.place_all_on host ps in
  let auto = Pvsched.Mapper.place plat0 cost ps in
  let t_host = Pvsched.Mapper.makespan plat cost host_only (fresh_net 8) in
  let t_auto = Pvsched.Mapper.makespan plat cost auto (fresh_net 8) in
  check bool_t "expensive transfers kill offload" true
    (Int64.compare t_auto t_host > 0)

let test_makespan_monotone_in_tokens () =
  let host, _, plat = platform () in
  let ps = offload_processes () in
  let pl = Pvsched.Mapper.place_all_on host ps in
  let t8 = Pvsched.Mapper.makespan plat cost pl (fresh_net 8) in
  let t16 = Pvsched.Mapper.makespan plat cost pl (fresh_net 16) in
  check bool_t "more tokens, more time" true (Int64.compare t16 t8 > 0)


let test_mapper_balances_two_accelerators () =
  (* two heavy parallel numeric stages, one host + two identical
     accelerators: load-aware placement must use both accelerators *)
  let accel1 = { Pvsched.Mapper.cname = "dsp1"; machine = Pvmach.Machine.dspish } in
  let accel2 = { Pvsched.Mapper.cname = "dsp2"; machine = Pvmach.Machine.dspish } in
  let host2 = { Pvsched.Mapper.cname = "host"; machine = Pvmach.Machine.ppcish } in
  let plat =
    { Pvsched.Mapper.cores = [ host2; accel1; accel2 ]; transfer_cost = 50 }
  in
  let numeric name =
    {
      Pvsched.Kpn.pname = name;
      inputs = [ name ^ "_in" ];
      outputs = [ name ^ "_out" ];
      fire = (fun toks -> toks);
      annots =
        Pvir.Annot.add Pvir.Annot.key_hw_prefs
          (Pvir.Annot.List [ Pvir.Annot.Str "simd128" ])
          Pvir.Annot.empty;
      work = 100;
    }
  in
  let ps = [ numeric "fft"; numeric "filter2" ] in
  let cost2 (p : Pvsched.Kpn.process) (c : Pvsched.Mapper.core) =
    ignore p;
    if c.Pvsched.Mapper.cname = "host" then 2000 else 500
  in
  let pl = Pvsched.Mapper.place plat cost2 ps in
  let c1 = (List.assoc "fft" pl).Pvsched.Mapper.cname in
  let c2 = (List.assoc "filter2" pl).Pvsched.Mapper.cname in
  check bool_t "both on accelerators" true
    (c1 <> "host" && c2 <> "host");
  check bool_t "spread across both" true (c1 <> c2)

let () =
  Alcotest.run "pvsched"
    [
      ( "kpn",
        [
          Alcotest.test_case "pipeline" `Quick test_kpn_pipeline;
          Alcotest.test_case "determinism" `Quick test_kpn_determinism;
          Alcotest.test_case "multi input" `Quick test_kpn_multi_input;
          Alcotest.test_case "firing budget" `Quick test_kpn_firing_budget;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "placement" `Quick test_mapper_placement;
          Alcotest.test_case "offload wins" `Quick test_mapper_makespan_offload_wins;
          Alcotest.test_case "transfer cost" `Quick test_mapper_transfer_cost_matters;
          Alcotest.test_case "monotone" `Quick test_makespan_monotone_in_tokens;
          Alcotest.test_case "balances accelerators" `Quick test_mapper_balances_two_accelerators;
        ] );
    ]
