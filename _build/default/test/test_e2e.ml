(* End-to-end integration tests: the full lifecycle (source -> offline ->
   bytecode bytes -> decode -> verify -> JIT -> run) for every benchmark
   kernel, on every Table-1 target, in every compilation mode — and the
   qualitative *shape* assertions the reproduced experiments rely on. *)

let check = Alcotest.check
let bool_t = Alcotest.bool

(* ---------------- correctness matrix ---------------- *)

(* every kernel, every mode, every machine: results equal the reference
   interpreter (on an n that exercises remainder loops) *)
let test_kernel_matrix () =
  List.iter
    (fun (k : Pvkernels.Kernels.t) ->
      let interp_obs, _ = Pvkernels.Harness.run_interp ~n:173 k in
      List.iter
        (fun machine ->
          List.iter
            (fun mode ->
              let r = Pvkernels.Harness.run_jit ~n:173 ~mode ~machine k in
              check bool_t
                (Printf.sprintf "%s/%s/%s" k.Pvkernels.Kernels.name
                   machine.Pvmach.Machine.name (Core.Splitc.mode_name mode))
                true
                (Pvkernels.Harness.observation_equal interp_obs
                   r.Pvkernels.Harness.obs))
            Core.Splitc.all_modes)
        Pvmach.Machine.table1_targets)
    Pvkernels.Kernels.all

(* the remaining machines, split mode only (keeps runtime in check) *)
let test_kernel_other_machines () =
  List.iter
    (fun (k : Pvkernels.Kernels.t) ->
      let interp_obs, _ = Pvkernels.Harness.run_interp ~n:96 k in
      List.iter
        (fun machine ->
          let r =
            Pvkernels.Harness.run_jit ~n:96 ~mode:Core.Splitc.Split ~machine k
          in
          check bool_t
            (Printf.sprintf "%s/%s" k.Pvkernels.Kernels.name
               machine.Pvmach.Machine.name)
            true
            (Pvkernels.Harness.observation_equal interp_obs
               r.Pvkernels.Harness.obs))
        [ Pvmach.Machine.dspish; Pvmach.Machine.uchost ])
    Pvkernels.Kernels.table1

(* ---------------- distribution format ---------------- *)

let test_bytecode_is_the_contract () =
  (* the bytecode string fully determines behaviour: re-decoding it on a
     different "device" gives the same results *)
  let k = Pvkernels.Kernels.sum_u16 in
  let p = Core.Splitc.frontend k.Pvkernels.Kernels.source in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  let bc = Core.Splitc.distribute off in
  let results =
    List.map
      (fun machine ->
        let on = Core.Splitc.online ~mode:Core.Splitc.Split ~machine bc in
        Pvkernels.Harness.fill_inputs on.Core.Splitc.img;
        match
          Pvvm.Sim.run on.Core.Splitc.sim k.Pvkernels.Kernels.entry
            (Pvkernels.Harness.args k 200)
        with
        | Some v -> v
        | None -> Alcotest.fail "no result")
      Pvmach.Machine.all
  in
  match results with
  | first :: rest ->
    List.iter
      (fun v -> check bool_t "same result everywhere" true (Pvir.Value.equal first v))
      rest
  | [] -> ()

(* ---------------- Table 1 shape ---------------- *)

let test_table1_shape_x86 () =
  (* on the SIMD machine every kernel must speed up, with max_u8 the
     largest (the paper's 15.6x row) and all fp kernels more modest *)
  let machine = Pvmach.Machine.x86ish in
  let cells =
    List.map
      (fun k -> (k.Pvkernels.Kernels.name, Pvkernels.Harness.table1_cell ~machine k))
      Pvkernels.Kernels.table1
  in
  List.iter
    (fun (name, (c : Pvkernels.Harness.table1_cell)) ->
      check bool_t (name ^ " speeds up on x86ish") true (c.speedup > 1.3))
    cells;
  let speedup name = (List.assoc name cells).Pvkernels.Harness.speedup in
  check bool_t "max_u8 is the largest win" true
    (List.for_all
       (fun (n, c) -> n = "max_u8" || c.Pvkernels.Harness.speedup <= speedup "max_u8")
       cells);
  check bool_t "byte kernels beat fp kernels" true
    (speedup "sum_u8" > speedup "vecadd_fp");
  check bool_t "dscal (f64, 2 lanes) is the smallest fp win" true
    (speedup "dscal_fp" <= speedup "vecadd_fp"
    && speedup "dscal_fp" <= speedup "saxpy_fp")

let test_table1_shape_scalarized () =
  (* on non-SIMD machines scalarized vector bytecode lands close to scalar
     ("no or little penalty"): every ratio within [0.7, 2.9] *)
  List.iter
    (fun machine ->
      List.iter
        (fun k ->
          let c = Pvkernels.Harness.table1_cell ~machine k in
          let r = c.Pvkernels.Harness.speedup in
          check bool_t
            (Printf.sprintf "%s on %s in [0.7, 2.9] (got %.2f)"
               k.Pvkernels.Kernels.name machine.Pvmach.Machine.name r)
            true
            (r > 0.7 && r < 2.9))
        Pvkernels.Kernels.table1)
    [ Pvmach.Machine.sparcish; Pvmach.Machine.ppcish ]

let test_table1_x86_dominates () =
  (* the SIMD target's speedup exceeds both scalarizing targets on every
     kernel — the crossover structure of Table 1 *)
  List.iter
    (fun k ->
      let x86 = Pvkernels.Harness.table1_cell ~machine:Pvmach.Machine.x86ish k in
      let sparc = Pvkernels.Harness.table1_cell ~machine:Pvmach.Machine.sparcish k in
      let ppc = Pvkernels.Harness.table1_cell ~machine:Pvmach.Machine.ppcish k in
      check bool_t (k.Pvkernels.Kernels.name ^ ": x86 wins most") true
        (x86.Pvkernels.Harness.speedup > sparc.Pvkernels.Harness.speedup
        && x86.Pvkernels.Harness.speedup > ppc.Pvkernels.Harness.speedup))
    Pvkernels.Kernels.table1

(* ---------------- Figure 1 / E2 shape ---------------- *)

let test_mode_economics () =
  (* split compilation: traditional-level online cost, pure-online-level
     code quality *)
  let k = Pvkernels.Kernels.saxpy_fp in
  let machine = Pvmach.Machine.x86ish in
  let trad = Pvkernels.Harness.run_jit ~mode:Core.Splitc.Traditional_deferred ~machine k in
  let split = Pvkernels.Harness.run_jit ~mode:Core.Splitc.Split ~machine k in
  let pure = Pvkernels.Harness.run_jit ~mode:Core.Splitc.Pure_online ~machine k in
  (* code quality: split == pure-online, both beat traditional *)
  check bool_t "split == pure-online cycles" true
    (Int64.equal split.Pvkernels.Harness.cycles pure.Pvkernels.Harness.cycles);
  check bool_t "split beats traditional" true
    (Int64.compare split.Pvkernels.Harness.cycles trad.Pvkernels.Harness.cycles < 0);
  (* online budget: split is in the traditional ballpark, far below
     pure-online *)
  check bool_t "split online << pure-online" true
    (split.Pvkernels.Harness.online_work * 3 < pure.Pvkernels.Harness.online_work);
  (* offline work: split pays offline what pure-online pays online *)
  check bool_t "split offline work > traditional offline work" true
    (split.Pvkernels.Harness.offline_work > trad.Pvkernels.Harness.offline_work)

let test_interpreter_is_the_floor () =
  let k = Pvkernels.Kernels.vecadd_fp in
  let _, interp_cycles = Pvkernels.Harness.run_interp k in
  List.iter
    (fun machine ->
      let r = Pvkernels.Harness.run_jit ~mode:Core.Splitc.Split ~machine k in
      check bool_t
        ("JIT beats interpreter on " ^ machine.Pvmach.Machine.name)
        true
        (Int64.compare r.Pvkernels.Harness.cycles interp_cycles < 0))
    Pvmach.Machine.table1_targets

(* ---------------- E5 size shape ---------------- *)

let test_bytecode_compactness () =
  (* annotations cost a bounded fraction of the bytecode; and bytecode is
     not larger than the native code it turns into (CLI compactness) *)
  List.iter
    (fun (k : Pvkernels.Kernels.t) ->
      let p = Core.Splitc.frontend k.Pvkernels.Kernels.source in
      let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
      let full = String.length (Core.Splitc.distribute off) in
      let stripped = String.length (Pvir.Serial.encode_stripped off.Core.Splitc.prog) in
      check bool_t
        (k.Pvkernels.Kernels.name ^ ": annotations < 55% of bytecode")
        true
        (float_of_int (full - stripped) /. float_of_int full < 0.55))
    Pvkernels.Kernels.table1


(* ---------------- a realistic multi-stage application ---------------- *)

(* an audio-style pipeline: DC removal (float reduction -> stays scalar
   without fast-math), gain (vectorizes), clipping via min/max idioms
   (vectorizes), peak detection (float max reduction -> vectorizes).
   Multiple functions, calls, globals, and mixed vectorization outcomes in
   one translation unit. *)
let pipeline_src =
  {|
f32 pipe_buf[512];
f32 pipe_mean;

f32 mean(i64 n) {
  f32 s = 0.0;
  for (i64 i = 0; i < n; i++) { s += pipe_buf[i]; }
  return s / (f32)n;
}

void remove_dc(i64 n, f32 m) {
  for (i64 i = 0; i < n; i++) { pipe_buf[i] -= m; }
}

void gain(i64 n, f32 g) {
  for (i64 i = 0; i < n; i++) { pipe_buf[i] *= g; }
}

void clip(i64 n, f32 lim) {
  for (i64 i = 0; i < n; i++) {
    pipe_buf[i] = __min(__max(pipe_buf[i], -lim), lim);
  }
}

f32 peak(i64 n) {
  f32 m = 0.0;
  for (i64 i = 0; i < n; i++) { m = __max(m, __max(pipe_buf[i], -pipe_buf[i])); }
  return m;
}

f32 process(i64 n) {
  pipe_mean = mean(n);
  remove_dc(n, pipe_mean);
  gain(n, 4.0);
  clip(n, 40.0);
  return peak(n);
}
|}

let test_pipeline_application () =
  (* reference observation via the interpreter *)
  let p0 = Core.Splitc.frontend pipeline_src in
  let img0 = Pvvm.Image.load p0 in
  Pvkernels.Harness.fill_inputs img0;
  let it = Pvvm.Interp.create img0 in
  let r0 = Pvvm.Interp.run it "process" [ Pvir.Value.i64 500L ] in
  let buf0 = Pvvm.Image.read_global img0 "pipe_buf" in
  (* split compilation must vectorize the map stages and the float-max
     reduction, but not the float-sum reduction *)
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split (Core.Splitc.frontend pipeline_src) in
  let vect_of fname =
    match List.assoc_opt fname off.Core.Splitc.vectorized with
    | Some (r : Pvopt.Vectorize.result) -> r.Pvopt.Vectorize.vectorized <> []
    | None -> false
  in
  check bool_t "gain vectorized" true (vect_of "gain");
  check bool_t "clip vectorized" true (vect_of "clip");
  check bool_t "peak vectorized" true (vect_of "peak");
  check bool_t "remove_dc vectorized" true (vect_of "remove_dc");
  check bool_t "mean NOT vectorized (float sum)" false (vect_of "mean");
  (* every machine agrees with the interpreter, including memory state *)
  let bc = Core.Splitc.distribute off in
  List.iter
    (fun machine ->
      let on = Core.Splitc.online ~mode:Core.Splitc.Split ~machine bc in
      Pvkernels.Harness.fill_inputs on.Core.Splitc.img;
      let r = Pvvm.Sim.run on.Core.Splitc.sim "process" [ Pvir.Value.i64 500L ] in
      (match (r0, r) with
      | Some a, Some b ->
        check bool_t (machine.Pvmach.Machine.name ^ " peak equal") true
          (Pvir.Value.equal a b)
      | _ -> Alcotest.fail "missing result");
      let buf = Pvvm.Image.read_global on.Core.Splitc.img "pipe_buf" in
      check bool_t (machine.Pvmach.Machine.name ^ " buffer equal") true
        (Array.for_all2 Pvir.Value.equal buf0 buf))
    Pvmach.Machine.all;
  (* sanity on the value itself: clipped to the limit *)
  match r0 with
  | Some v ->
    let x = Pvir.Value.to_float v in
    check bool_t "peak within clip limit" true (x >= 0.0 && x <= 40.0)
  | None -> Alcotest.fail "no result"

(* ---------------- CLI binaries (wired as library calls) ------------- *)

let test_pvir_file_flow () =
  (* mimic pvsc | pvrun: write bytecode to disk, reload, run *)
  let k = Pvkernels.Kernels.max_u8 in
  let p = Core.Splitc.frontend k.Pvkernels.Kernels.source in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  let path = Filename.temp_file "e2e" ".pvir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pvir.Serial.to_file path off.Core.Splitc.prog;
      let reloaded = Pvir.Serial.of_file path in
      Pvir.Verify.program reloaded;
      let img = Pvvm.Image.load reloaded in
      Pvkernels.Harness.fill_inputs img;
      let sim, _ =
        Pvjit.Jit.compile_program ~machine:Pvmach.Machine.x86ish
          ~hints:Pvjit.Jit.Hints_annotation img
      in
      match Pvvm.Sim.run sim "max_u8" (Pvkernels.Harness.args k 256) with
      | Some _ -> ()
      | None -> Alcotest.fail "no result")

let () =
  Alcotest.run "e2e"
    [
      ( "correctness",
        [
          Alcotest.test_case "kernel matrix" `Slow test_kernel_matrix;
          Alcotest.test_case "other machines" `Quick test_kernel_other_machines;
          Alcotest.test_case "bytecode contract" `Quick test_bytecode_is_the_contract;
        ] );
      ( "table1 shape",
        [
          Alcotest.test_case "x86 speedups" `Quick test_table1_shape_x86;
          Alcotest.test_case "scalarized parity" `Quick test_table1_shape_scalarized;
          Alcotest.test_case "x86 dominates" `Quick test_table1_x86_dominates;
        ] );
      ( "figure1 shape",
        [
          Alcotest.test_case "mode economics" `Quick test_mode_economics;
          Alcotest.test_case "interpreter floor" `Quick test_interpreter_is_the_floor;
        ] );
      ( "application",
        [ Alcotest.test_case "audio pipeline" `Quick test_pipeline_application ] );
      ( "size shape",
        [ Alcotest.test_case "compactness" `Quick test_bytecode_compactness ] );
      ( "file flow",
        [ Alcotest.test_case "pvir file" `Quick test_pvir_file_flow ] );
    ]
