(* Tests for separate compilation and install-time linking: extern
   declarations, symbol resolution, whole-program tree shaking, and
   cross-module optimization after the link (the paper's §4 "link-time
   optimization" direction). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* a math "library" module: two used entry points, one dead function and
   one dead global *)
let mathlib_src =
  {|
i32 ml_scratch[16];
i32 ml_dead_table[64];

i64 square(i64 x) { return x * x; }

i64 cube(i64 x) { return x * square(x); }

i64 dead_helper(i64 x) {
  ml_dead_table[0] = (i32)x;
  return x + (i64)ml_dead_table[0];
}

void touch_scratch(i64 v) { ml_scratch[0] = (i32)v; }
|}

(* the application module, calling the library through extern decls *)
let app_src =
  {|
extern i64 square(i64 x);
extern i64 cube(i64);
extern void touch_scratch(i64 v);

i64 app_main(i64 n) {
  i64 s = 0;
  for (i64 i = 1; i <= n; i++) {
    s += square(i) + cube(i);
  }
  touch_scratch(s);
  return s;
}
|}

let compile name src = Core.Splitc.frontend ~name src

let linked () =
  Pvir.Link.link ~name:"whole"
    [ compile "mathlib" mathlib_src; compile "app" app_src ]

(* sum_{1..5} i^2 + i^3 = 55 + 225 = 280 *)
let expected = 280L

let run_interp p entry args =
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create img in
  (Pvvm.Interp.run it entry args, img)

(* ---------------- linking ---------------- *)

let test_link_resolves_and_runs () =
  let p = linked () in
  check bool_t "externs resolved away or matched" true
    (List.for_all
       (fun (e : Pvir.Prog.extern) ->
         Pvir.Prog.find_func p e.Pvir.Prog.ename <> None)
       p.Pvir.Prog.externs);
  let r, img = run_interp (Pvir.Prog.copy p) "app_main" [ Pvir.Value.i64 5L ] in
  (match r with
  | Some v -> check bool_t "linked result" true (Pvir.Value.equal v (Pvir.Value.i64 expected))
  | None -> Alcotest.fail "no result");
  (* the store through the library function landed *)
  let scratch = Pvvm.Image.read_global img "ml_scratch" in
  check bool_t "cross-module store" true
    (Pvir.Value.equal scratch.(0) (Pvir.Value.i32 280))

let test_unlinked_module_rejected () =
  (* the app alone has unresolved externs: loading it must fail *)
  let app = compile "app" app_src in
  match Pvvm.Image.load app with
  | exception Pvir.Verify.Error _ -> ()
  | _ -> Alcotest.fail "unlinked module loaded"

let test_link_duplicate_symbol () =
  let m1 = compile "m1" "i64 f(i64 x) { return x; }" in
  let m2 = compile "m2" "i64 f(i64 x) { return x + 1; }" in
  match Pvir.Link.link [ m1; m2 ] with
  | exception Pvir.Link.Error _ -> ()
  | _ -> Alcotest.fail "duplicate symbol accepted"

let test_link_duplicate_global () =
  let m1 = compile "m1" "i32 g = 1;" in
  let m2 = compile "m2" "i32 g = 2;" in
  match Pvir.Link.link [ m1; m2 ] with
  | exception Pvir.Link.Error _ -> ()
  | _ -> Alcotest.fail "duplicate global accepted"

let test_link_signature_mismatch () =
  let lib = compile "lib" "i64 f(i64 x) { return x; }" in
  let app = compile "app" "extern i32 f(i32 x); i64 m() { return (i64)f(1); }" in
  match Pvir.Link.link [ lib; app ] with
  | exception Pvir.Link.Error _ -> ()
  | _ -> Alcotest.fail "signature mismatch accepted"

let test_link_unresolved_extern () =
  let app = compile "app" "extern i64 nowhere(i64 x); i64 m() { return nowhere(1); }" in
  match Pvir.Link.link [ app ] with
  | exception Pvir.Link.Error _ -> ()
  | _ -> Alcotest.fail "unresolved extern accepted"

let test_extern_intrinsics_ok () =
  (* declaring a VM intrinsic extern is legal and needs no resolution *)
  let app =
    compile "app"
      "extern void print_i64(i64 x); i64 m() { print_i64(7); return 0; }"
  in
  let p = Pvir.Link.link [ app ] in
  let img = Pvvm.Image.load p in
  let it = Pvvm.Interp.create img in
  ignore (Pvvm.Interp.run it "m" []);
  check Alcotest.string "printed" "7\n" (Pvvm.Interp.output it)

(* ---------------- tree shaking ---------------- *)

let test_treeshake () =
  let p = linked () in
  let funcs_before = List.length p.Pvir.Prog.funcs in
  let removed_f, removed_g = Pvir.Link.treeshake ~roots:[ "app_main" ] p in
  check bool_t "dead function removed" true (removed_f >= 1);
  check bool_t "dead global removed" true (removed_g >= 1);
  check int_t "live functions kept"
    (funcs_before - removed_f)
    (List.length p.Pvir.Prog.funcs);
  Pvir.Verify.program p;
  (* still runs correctly after shaking *)
  let r, _ = run_interp p "app_main" [ Pvir.Value.i64 5L ] in
  match r with
  | Some v -> check bool_t "result survives" true (Pvir.Value.equal v (Pvir.Value.i64 expected))
  | None -> Alcotest.fail "no result"

let test_treeshake_shrinks_bytecode () =
  let p = linked () in
  let before = String.length (Pvir.Serial.encode p) in
  ignore (Pvir.Link.treeshake ~roots:[ "app_main" ] p);
  let after = String.length (Pvir.Serial.encode p) in
  check bool_t "bytecode shrank" true (after < before)

let test_treeshake_missing_root () =
  let p = linked () in
  match Pvir.Link.treeshake ~roots:[ "nonexistent" ] p with
  | exception Pvir.Link.Error _ -> ()
  | _ -> Alcotest.fail "missing root accepted"

(* ---------------- link-time optimization ---------------- *)

let test_cross_module_inlining () =
  (* after linking, the ordinary offline pipeline inlines across what used
     to be module boundaries *)
  let p = linked () in
  ignore (Pvir.Link.treeshake ~roots:[ "app_main" ] p);
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  let app = Pvir.Prog.find_func_exn off.Core.Splitc.prog "app_main" in
  let lib_calls = ref 0 in
  Pvir.Func.iter_instrs
    (fun _ i ->
      match i with
      | Pvir.Instr.Call (_, ("square" | "cube"), _) -> incr lib_calls
      | _ -> ())
    app;
  check int_t "library calls inlined away" 0 !lib_calls;
  (* and the whole thing still computes the same result on a JIT target *)
  let bc = Core.Splitc.distribute off in
  let on = Core.Splitc.online ~mode:Core.Splitc.Split
      ~machine:Pvmach.Machine.x86ish bc in
  match Pvvm.Sim.run on.Core.Splitc.sim "app_main" [ Pvir.Value.i64 5L ] with
  | Some v -> check bool_t "jit result" true (Pvir.Value.equal v (Pvir.Value.i64 expected))
  | None -> Alcotest.fail "no result"

let test_lto_speedup () =
  (* link-time inlining pays: compare cycles with and without the offline
     pipeline on the linked program *)
  let run p =
    let img = Pvvm.Image.load p in
    let sim, _ =
      Pvjit.Jit.compile_program ~machine:Pvmach.Machine.ppcish
        ~hints:Pvjit.Jit.Hints_annotation img
    in
    match Pvvm.Sim.run sim "app_main" [ Pvir.Value.i64 100L ] with
    | Some _ -> Pvvm.Sim.cycles sim
    | None -> Alcotest.fail "no result"
  in
  let raw = linked () in
  let baseline = run (Pvir.Prog.copy raw) in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split raw in
  let optimized = run off.Core.Splitc.prog in
  check bool_t
    (Printf.sprintf "LTO speeds up (%Ld -> %Ld)" baseline optimized)
    true
    (Int64.compare optimized baseline < 0)

(* extern declarations survive the serializers *)
let test_extern_roundtrips () =
  let app = compile "app" app_src in
  let bin = Pvir.Serial.decode (Pvir.Serial.encode app) in
  check int_t "binary externs" 3 (List.length bin.Pvir.Prog.externs);
  check Alcotest.string "binary identical"
    (Pvir.Pp.program_to_string app)
    (Pvir.Pp.program_to_string bin);
  let txt = Pvir.Parse.program (Pvir.Pp.program_to_string app) in
  check Alcotest.string "text identical"
    (Pvir.Pp.program_to_string app)
    (Pvir.Pp.program_to_string txt)

let () =
  Alcotest.run "link"
    [
      ( "linking",
        [
          Alcotest.test_case "resolve and run" `Quick test_link_resolves_and_runs;
          Alcotest.test_case "unlinked rejected" `Quick test_unlinked_module_rejected;
          Alcotest.test_case "duplicate symbol" `Quick test_link_duplicate_symbol;
          Alcotest.test_case "duplicate global" `Quick test_link_duplicate_global;
          Alcotest.test_case "signature mismatch" `Quick test_link_signature_mismatch;
          Alcotest.test_case "unresolved extern" `Quick test_link_unresolved_extern;
          Alcotest.test_case "intrinsic externs" `Quick test_extern_intrinsics_ok;
        ] );
      ( "treeshake",
        [
          Alcotest.test_case "removes dead code" `Quick test_treeshake;
          Alcotest.test_case "shrinks bytecode" `Quick test_treeshake_shrinks_bytecode;
          Alcotest.test_case "missing root" `Quick test_treeshake_missing_root;
        ] );
      ( "lto",
        [
          Alcotest.test_case "cross-module inlining" `Quick test_cross_module_inlining;
          Alcotest.test_case "lto speedup" `Quick test_lto_speedup;
          Alcotest.test_case "extern roundtrips" `Quick test_extern_roundtrips;
        ] );
    ]
