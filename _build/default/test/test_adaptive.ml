(* Tests for loop unrolling and the adaptive (idle-time / iterative)
   optimization layer. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let observe (p : Pvir.Prog.t) entry args =
  let img = Pvvm.Image.load (Pvir.Prog.copy p) in
  Pvkernels.Harness.fill_inputs img;
  let it = Pvvm.Interp.create img in
  let r = Pvvm.Interp.run it entry args in
  let globals =
    List.map
      (fun (g : Pvir.Prog.global) ->
        (g.Pvir.Prog.gname, Pvvm.Image.read_global img g.Pvir.Prog.gname))
      img.Pvvm.Image.prog.Pvir.Prog.globals
  in
  (r, globals)

let same (a, ga) (b, gb) =
  (match (a, b) with
  | None, None -> true
  | Some x, Some y -> Pvir.Value.equal x y
  | _ -> false)
  && List.for_all2
       (fun (n1, a1) (n2, a2) -> n1 = n2 && Array.for_all2 Pvir.Value.equal a1 a2)
       ga gb

(* ---------------- unroll ---------------- *)

let unrolled src ~factor =
  let p = Core.Splitc.frontend src in
  Pvopt.Passes.cleanup p;
  Pvopt.Passes.licm_all p;
  let n =
    List.fold_left
      (fun acc fn -> acc + Pvopt.Unroll.run ~factor p fn)
      0 p.Pvir.Prog.funcs
  in
  Pvopt.Passes.cleanup p;
  Pvir.Verify.program p;
  (p, n)

let test_unroll_fires_and_preserves () =
  let src =
    {|
i32 a[200];
i32 f(i64 n) {
  i32 s = 0;
  for (i64 i = 0; i < n; i = i + 1) { a[i] = a[i] * 3 + 1; s = s + a[i]; }
  return s;
}
|}
  in
  List.iter
    (fun factor ->
      let p0 = Core.Splitc.frontend src in
      (* 173 is not a multiple of any factor: remainder loop must run *)
      let before = observe p0 "f" [ Pvir.Value.i64 173L ] in
      let p, n = unrolled src ~factor in
      check int_t (Printf.sprintf "one loop unrolled (x%d)" factor) 1 n;
      let after = observe p "f" [ Pvir.Value.i64 173L ] in
      check bool_t
        (Printf.sprintf "semantics preserved (x%d)" factor)
        true (same before after))
    [ 2; 4; 8 ]

let test_unroll_rejects_bad_factor () =
  let p = Core.Splitc.frontend "void f(i64 n) { }" in
  let fn = Pvir.Prog.find_func_exn p "f" in
  (* factor 3 is not a power of two: no loop gets unrolled, no exception
     escapes (the per-loop Bail is caught) *)
  check int_t "no loops" 0 (Pvopt.Unroll.run ~factor:3 p fn)

let test_unroll_skips_calls () =
  let src =
    {|
i32 g = 0;
void touch() { g = g + 1; }
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { touch(); } }
|}
  in
  let p = Core.Splitc.frontend src in
  Pvopt.Passes.cleanup p;
  let n =
    List.fold_left
      (fun acc fn -> acc + Pvopt.Unroll.run ~factor:2 p fn)
      0 p.Pvir.Prog.funcs
  in
  (* the call gets inlined only by the inliner; here the raw loop has a
     call and must not unroll *)
  check int_t "call loop not unrolled" 0 n

let test_unroll_reduction_and_kernels () =
  (* the Table-1 kernels stay correct under unrolling at awkward sizes *)
  List.iter
    (fun (k : Pvkernels.Kernels.t) ->
      let p0 = Core.Splitc.frontend k.Pvkernels.Kernels.source in
      let args = Pvkernels.Harness.args k 157 in
      let before = observe p0 k.Pvkernels.Kernels.entry args in
      let p, _ = unrolled k.Pvkernels.Kernels.source ~factor:4 in
      let after = observe p k.Pvkernels.Kernels.entry args in
      check bool_t (k.Pvkernels.Kernels.name ^ " unrolled x4") true
        (same before after))
    Pvkernels.Kernels.table1

let test_unroll_reduces_branches () =
  (* dynamic branch count shrinks roughly by the unroll factor *)
  let src =
    {|
i32 a[512];
void f(i64 n) { for (i64 i = 0; i < n; i = i + 1) { a[i] = a[i] + 1; } }
|}
  in
  let run p =
    let img = Pvvm.Image.load (Pvir.Prog.copy p) in
    let sim, _ =
      Pvjit.Jit.compile_program ~machine:Pvmach.Machine.ppcish
        ~hints:Pvjit.Jit.Hints_none img
    in
    Pvkernels.Harness.fill_inputs img;
    ignore (Pvvm.Sim.run sim "f" [ Pvir.Value.i64 512L ]);
    Pvvm.Sim.cycles sim
  in
  let p0 = Core.Splitc.frontend src in
  Pvopt.Passes.offline_traditional p0;
  let base = run p0 in
  let p4, n = unrolled src ~factor:4 in
  List.iter (fun fn -> ignore (Pvopt.Strength.run fn)) p4.Pvir.Prog.funcs;
  Pvopt.Passes.cleanup p4;
  check int_t "unrolled" 1 n;
  let fast = run p4 in
  check bool_t
    (Printf.sprintf "x4 faster on branchy target (%Ld vs %Ld)" fast base)
    true
    (Int64.compare fast base < 0)

(* ---------------- adaptive ---------------- *)

let raw_bytecode (k : Pvkernels.Kernels.t) =
  let p = Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name k.Pvkernels.Kernels.source in
  Core.Splitc.distribute (Core.Splitc.offline ~mode:Core.Splitc.Pure_online p)

let test_adaptive_generations_improve () =
  let k = Pvkernels.Kernels.sum_u16 in
  let bc = raw_bytecode k in
  List.iter
    (fun machine ->
      let gens =
        Core.Adaptive.generations ~machine
          ~prepare:Pvkernels.Harness.fill_inputs
          ~entry:k.Pvkernels.Kernels.entry
          ~args:(Pvkernels.Harness.args k 500)
          bc
      in
      match gens with
      | [ g0; g1; g2 ] ->
        check bool_t "gen1 beats interpreter" true
          (Int64.compare g1.Core.Adaptive.exec_cycles g0.Core.Adaptive.exec_cycles < 0);
        check bool_t "gen2 no worse than gen1" true
          (Int64.compare g2.Core.Adaptive.exec_cycles g1.Core.Adaptive.exec_cycles <= 0);
        check bool_t "tuning costs compile work" true
          (g2.Core.Adaptive.gcompile_work > g1.Core.Adaptive.gcompile_work)
      | _ -> Alcotest.fail "expected three generations")
    Pvmach.Machine.table1_targets

let test_adaptive_search_agrees () =
  (* all configurations must compute the same result (checked internally;
     a failure raises) and come back sorted best-first *)
  let k = Pvkernels.Kernels.max_u8 in
  let bc = raw_bytecode k in
  let samples =
    Core.Adaptive.search ~machine:Pvmach.Machine.x86ish
      ~prepare:Pvkernels.Harness.fill_inputs
      ~entry:k.Pvkernels.Kernels.entry
      ~args:(Pvkernels.Harness.args k 300)
      (Pvir.Serial.decode bc)
  in
  let cycles = List.map (fun s -> s.Core.Adaptive.cycles) samples in
  check bool_t "sorted best-first" true (List.sort Int64.compare cycles = cycles);
  check int_t "all configs measured" (List.length Core.Adaptive.default_configs)
    (List.length samples)

let test_adaptive_picks_simd_on_x86 () =
  let k = Pvkernels.Kernels.max_u8 in
  let bc = raw_bytecode k in
  let samples =
    Core.Adaptive.search ~machine:Pvmach.Machine.x86ish
      ~prepare:Pvkernels.Harness.fill_inputs
      ~entry:k.Pvkernels.Kernels.entry
      ~args:(Pvkernels.Harness.args k 1000)
      (Pvir.Serial.decode bc)
  in
  let best = List.hd samples in
  check bool_t "x86 winner vectorizes" true best.Core.Adaptive.config.Core.Adaptive.vectorize

let test_adaptive_profile_feedback () =
  (* generations annotates hotness from the gen-0 profile *)
  let k = Pvkernels.Kernels.saxpy_fp in
  let bc = raw_bytecode k in
  let prog = Pvir.Serial.decode bc in
  let img = Pvvm.Image.load prog in
  let profile = Pvvm.Profile.create () in
  let it = Pvvm.Interp.create ~profile img in
  Pvkernels.Harness.fill_inputs img;
  ignore (Pvvm.Interp.run it k.Pvkernels.Kernels.entry (Pvkernels.Harness.args k 100));
  Pvvm.Profile.annotate_hotness profile prog;
  let fn = Pvir.Prog.find_func_exn prog k.Pvkernels.Kernels.entry in
  check bool_t "hotness annotated" true
    (Pvir.Annot.find Pvir.Annot.key_hotness fn.Pvir.Func.annots <> None)

let () =
  Alcotest.run "adaptive"
    [
      ( "unroll",
        [
          Alcotest.test_case "fires and preserves" `Quick test_unroll_fires_and_preserves;
          Alcotest.test_case "bad factor" `Quick test_unroll_rejects_bad_factor;
          Alcotest.test_case "skips calls" `Quick test_unroll_skips_calls;
          Alcotest.test_case "kernels x4" `Quick test_unroll_reduction_and_kernels;
          Alcotest.test_case "reduces branch overhead" `Quick test_unroll_reduces_branches;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "generations improve" `Quick test_adaptive_generations_improve;
          Alcotest.test_case "search agrees + sorted" `Quick test_adaptive_search_agrees;
          Alcotest.test_case "x86 picks SIMD" `Quick test_adaptive_picks_simd_on_x86;
          Alcotest.test_case "profile feedback" `Quick test_adaptive_profile_feedback;
        ] );
    ]
