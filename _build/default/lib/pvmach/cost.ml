(** Cycle cost model: how many cycles one MIR instruction takes on a given
    machine.

    The model is deliberately simple — in-order, no cache hierarchy — but
    it carries the three effects the paper's Table 1 turns on:

    + a SIMD operation processes a whole vector register per [vec_op_cost],
      and a vector wider than the machine's SIMD register is split into
      chunks that each pay full price (this is what keeps the widening
      [sum u8] speedup below the 16x lane count);
    + machines without {!Capability.Narrow_alu} pay [narrow_penalty] per
      8/16-bit ALU operation (masking to preserve wraparound);
    + branches cost [branch_cost], so the implicit unrolling of scalarized
      vector code is a real (small) win on branch-heavy machines. *)

let is_narrow (s : Pvir.Types.scalar) =
  match s with
  | Pvir.Types.I8 | Pvir.Types.I16 -> true
  | Pvir.Types.I32 | Pvir.Types.I64 | Pvir.Types.F32 | Pvir.Types.F64 -> false

(** Number of machine-register-sized chunks a vector type occupies. *)
let vec_chunks (m : Machine.t) (ty : Pvir.Types.t) =
  match ty with
  | Pvir.Types.Vector _ ->
    let w = Machine.simd_width m in
    if w = 0 then invalid_arg "Cost.vec_chunks: machine has no SIMD"
    else max 1 ((Pvir.Types.size ty + w - 1) / w)
  | _ -> 1

let scalar_bin_cost (m : Machine.t) (op : Pvir.Instr.binop) (s : Pvir.Types.scalar) =
  let base =
    if Pvir.Types.is_float_scalar s then
      match op with
      | Pvir.Instr.Div -> m.fdiv_cost
      | Pvir.Instr.Mul when Machine.has_cap m Capability.Dsp_mac -> 1
      | _ -> m.fp_cost
    else
      match op with
      | Pvir.Instr.Mul -> m.mul_cost
      | Pvir.Instr.Div | Pvir.Instr.Udiv | Pvir.Instr.Rem | Pvir.Instr.Urem ->
        m.div_cost
      | Pvir.Instr.Min | Pvir.Instr.Max | Pvir.Instr.Umin | Pvir.Instr.Umax ->
        (* compare + conditional move *)
        2 * m.alu_cost
      | _ -> m.alu_cost
  in
  let narrow =
    if is_narrow s && not (Machine.has_narrow_alu m) then m.narrow_penalty
    else 0
  in
  base + narrow

(** Cost of one MIR instruction.  [inst.ty] must already be legal for the
    machine (the JIT legalizes before emitting): vector-typed instructions
    only reach machines with SIMD. *)
let of_inst (m : Machine.t) (i : Mir.inst) : int =
  let scalar = Pvir.Types.elem i.ty in
  match i.op with
  | Mir.Mli _ -> m.mov_cost
  | Mir.Mmov -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.mov_cost * vec_chunks m i.ty
    | _ -> m.mov_cost)
  | Mir.Mbin op -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_op_cost * vec_chunks m i.ty
    | _ -> scalar_bin_cost m op scalar)
  | Mir.Mun _ -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_op_cost * vec_chunks m i.ty
    | _ -> m.alu_cost)
  | Mir.Mconv _ -> (
    match i.ty with
    | Pvir.Types.Vector _ ->
      (* widening/narrowing needs an unpack/pack step per produced chunk *)
      vec_chunks m i.ty * (m.vec_op_cost + m.vec_pack_cost)
    | Pvir.Types.Scalar s when Pvir.Types.is_float_scalar s ->
      if Machine.has_cap m Capability.Fpu then m.fp_cost else m.fp_cost
    | _ -> m.alu_cost)
  | Mir.Mcmp _ -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_op_cost * vec_chunks m i.ty
    | Pvir.Types.Scalar s when Pvir.Types.is_float_scalar s -> m.fp_cost
    | _ -> m.alu_cost)
  | Mir.Msel -> 2 * m.alu_cost
  | Mir.Mload _ -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_mem_cost * vec_chunks m i.ty
    | _ -> m.load_cost)
  | Mir.Mstore _ -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_mem_cost * vec_chunks m i.ty
    | _ -> m.store_cost)
  | Mir.Mframe_addr _ -> m.alu_cost
  | Mir.Mframe_ld _ -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_mem_cost * vec_chunks m i.ty
    | _ -> m.load_cost)
  | Mir.Mframe_st _ -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_mem_cost * vec_chunks m i.ty
    | _ -> m.store_cost)
  | Mir.Msplat -> (
    match i.ty with
    | Pvir.Types.Vector _ -> m.vec_pack_cost * vec_chunks m i.ty
    | _ -> m.mov_cost)
  | Mir.Mextract _ -> m.vec_pack_cost + m.mov_cost
  | Mir.Mreduce _ -> (
    (* log2(lanes) shuffle+op steps, plus a final extract *)
    match i.ty with
    | Pvir.Types.Vector (_, n) ->
      let steps = max 1 (int_of_float (ceil (log (float_of_int n) /. log 2.))) in
      (steps * (m.vec_pack_cost + m.vec_op_cost)) + m.vec_pack_cost
    | _ -> m.alu_cost)
  | Mir.Mcall _ -> m.call_cost

let of_term (m : Machine.t) (t : Mir.term) : int =
  match t with
  | Mir.Tbr _ -> m.branch_cost
  | Mir.Tcbr _ -> m.branch_cost
  | Mir.Tret _ -> m.branch_cost

(** Static cost estimate of a whole function: sum over instructions with
    every block weighted once.  Used by the scheduler's placement
    heuristic, not by the simulator (which counts real dynamic cycles). *)
let static_estimate (m : Machine.t) (fn : Mir.func) : int =
  List.fold_left
    (fun acc (b : Mir.block) ->
      List.fold_left (fun acc i -> acc + of_inst m i) acc b.insts
      + of_term m b.mterm)
    0 fn.mblocks
