(** Hardware capabilities of a target core.

    Capabilities drive the two target-specific decisions the paper
    describes: the JIT's choice between SIMD emission and scalarization of
    the portable vector builtins, and the heterogeneous scheduler's mapping
    of annotated kernels onto cores. *)

type t =
  | Simd of int  (** SIMD unit with a register width of [n] bytes *)
  | Fpu  (** hardware floating point *)
  | Narrow_alu  (** native 8/16-bit ALU operations (no masking needed) *)
  | Dsp_mac  (** single-cycle multiply-accumulate *)

let to_string = function
  | Simd n -> Printf.sprintf "simd%d" (n * 8)
  | Fpu -> "fpu"
  | Narrow_alu -> "narrow_alu"
  | Dsp_mac -> "dsp_mac"

let of_string s =
  match s with
  | "fpu" -> Some Fpu
  | "narrow_alu" -> Some Narrow_alu
  | "dsp_mac" -> Some Dsp_mac
  | _ ->
    if String.length s > 4 && String.sub s 0 4 = "simd" then
      match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
      | Some bits when bits mod 8 = 0 && bits > 0 -> Some (Simd (bits / 8))
      | _ -> None
    else None

let equal (a : t) (b : t) = a = b

(** [satisfies have want] — does capability [have] provide [want]?  A wider
    SIMD unit satisfies a narrower requirement. *)
let satisfies have want =
  match (have, want) with
  | Simd w, Simd r -> w >= r
  | _ -> equal have want
