lib/pvmach/cost.ml: Capability List Machine Mir Pvir
