lib/pvmach/machine.ml: Capability List Printf String
