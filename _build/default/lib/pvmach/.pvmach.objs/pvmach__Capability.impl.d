lib/pvmach/capability.ml: Printf String
