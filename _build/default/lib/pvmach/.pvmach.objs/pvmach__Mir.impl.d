lib/pvmach/mir.ml: Buffer Hashtbl List Machine Option Printf Pvir String
