(** Execution profiler.

    Implements the "idle time between different runs" step of the program
    lifetime (§2.2): profiles collected by the VM feed back into the
    offline compiler, which turns them into hotness annotations
    ({!Pvir.Annot.key_hotness}) for the next deployment. *)

type t = {
  fn_calls : (string, int ref) Hashtbl.t;
  block_visits : (string * int, int ref) Hashtbl.t;
}

let create () = { fn_calls = Hashtbl.create 16; block_visits = Hashtbl.create 64 }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let enter p fname = bump p.fn_calls fname
let block p fname label = bump p.block_visits (fname, label)

let calls p fname =
  match Hashtbl.find_opt p.fn_calls fname with Some r -> !r | None -> 0

let block_count p fname label =
  match Hashtbl.find_opt p.block_visits (fname, label) with
  | Some r -> !r
  | None -> 0

(** Total block visits per function — a proxy for time spent. *)
let weight p fname =
  Hashtbl.fold
    (fun (f, _) r acc -> if String.equal f fname then acc + !r else acc)
    p.block_visits 0

(** Annotate every function of [prog] with its measured hotness in [0;1]
    (fraction of total profile weight).  This is the feedback edge of the
    split-compilation flow. *)
let annotate_hotness p (prog : Pvir.Prog.t) =
  let total =
    List.fold_left
      (fun acc (fn : Pvir.Func.t) -> acc + weight p fn.name)
      0 prog.funcs
  in
  if total > 0 then
    List.iter
      (fun (fn : Pvir.Func.t) ->
        let h = float_of_int (weight p fn.name) /. float_of_int total in
        Pvir.Func.add_annot fn Pvir.Annot.key_hotness (Pvir.Annot.Flt h))
      prog.funcs
