(** PVIR bytecode interpreter.

    This is the "first virtual machines only had an interpreter" baseline
    from §2.1 of the paper: correct on every target, no compilation cost,
    but a dispatch penalty on every instruction.  It doubles as the
    reference semantics — every optimization and every JIT backend is
    tested for result-equality against it.

    Cost model: each interpreted instruction costs [dispatch_cost] cycles of
    decode/dispatch plus the work of the operation itself (vector builtins
    are scalarized lane by lane, as a portable interpreter would). *)

exception Trap of string

type stats = {
  mutable cycles : int64;
  mutable instrs : int64;
  mutable calls : int;
}

type t = {
  img : Image.t;
  mutable sp : int;
  out : Buffer.t;  (** captured output of the print intrinsics *)
  stats : stats;
  dispatch_cost : int;
  profile : Profile.t option;
  fuel : int64;  (** execution budget; Trap when exhausted *)
}

let create ?(dispatch_cost = 8) ?profile ?(fuel = 1_000_000_000L) img =
  {
    img;
    sp = Image.initial_sp img;
    out = Buffer.create 64;
    stats = { cycles = 0L; instrs = 0L; calls = 0 };
    dispatch_cost;
    profile;
    fuel;
  }

let output t = Buffer.contents t.out
let cycles t = t.stats.cycles

let charge t n =
  t.stats.cycles <- Int64.add t.stats.cycles (Int64.of_int n);
  t.stats.instrs <- Int64.add t.stats.instrs 1L;
  if Int64.compare t.stats.instrs t.fuel > 0 then
    raise (Trap "interpreter fuel exhausted (infinite loop?)")

(* operation cost on top of dispatch: 1 per produced lane *)
let op_cost (i : Pvir.Instr.t) =
  match i with
  | Pvir.Instr.Binop (_, d, _, _)
  | Pvir.Instr.Unop (_, d, _)
  | Pvir.Instr.Conv (_, d, _) ->
    ignore d;
    1
  | _ -> 1

type frame = {
  regs : Pvir.Value.t option array;
  fn : Pvir.Func.t;
}

let reg_value frame r =
  match frame.regs.(r) with
  | Some v -> v
  | None ->
    raise
      (Trap
         (Printf.sprintf "read of uninitialized register r%d in %s" r
            frame.fn.name))

let set_reg frame r v = frame.regs.(r) <- Some v

let intrinsic t name (args : Pvir.Value.t list) : Pvir.Value.t option =
  match (name, args) with
  | "print_i64", [ v ] ->
    Buffer.add_string t.out (Int64.to_string (Pvir.Value.to_int64 v));
    Buffer.add_char t.out '\n';
    None
  | "print_f64", [ v ] ->
    Buffer.add_string t.out (Printf.sprintf "%.6g" (Pvir.Value.to_float v));
    Buffer.add_char t.out '\n';
    None
  | "abort", [] -> raise (Trap "abort called")
  | _ -> raise (Trap (Printf.sprintf "unknown intrinsic %s" name))

let rec call t (fn : Pvir.Func.t) (args : Pvir.Value.t list) :
    Pvir.Value.t option =
  t.stats.calls <- t.stats.calls + 1;
  Option.iter (fun p -> Profile.enter p fn.name) t.profile;
  if List.length args <> List.length fn.params then
    raise (Trap (Printf.sprintf "arity mismatch calling %s" fn.name));
  let frame = { regs = Array.make fn.next_reg None; fn } in
  List.iter2 (fun r v -> set_reg frame r v) fn.params args;
  let saved_sp = t.sp in
  let result = exec_block t frame (Pvir.Func.entry fn) in
  t.sp <- saved_sp;
  result

and exec_block t frame (blk : Pvir.Func.block) : Pvir.Value.t option =
  List.iter (exec_instr t frame) blk.instrs;
  charge t t.dispatch_cost;
  Option.iter
    (fun p -> Profile.block p frame.fn.name blk.label)
    t.profile;
  match blk.term with
  | Pvir.Instr.Br l -> exec_block t frame (Pvir.Func.find_block frame.fn l)
  | Pvir.Instr.Cbr (c, l1, l2) ->
    let target = if Pvir.Value.to_bool (reg_value frame c) then l1 else l2 in
    exec_block t frame (Pvir.Func.find_block frame.fn target)
  | Pvir.Instr.Ret None -> None
  | Pvir.Instr.Ret (Some r) -> Some (reg_value frame r)

and exec_instr t frame (i : Pvir.Instr.t) : unit =
  let v = reg_value frame in
  let lanes_of r = Pvir.Types.lanes (Pvir.Value.ty (v r)) in
  (match i with
  | Pvir.Instr.Binop (_, _, a, _) -> charge t (t.dispatch_cost + lanes_of a)
  | Pvir.Instr.Load (ty, _, _, _) | Pvir.Instr.Store (ty, _, _, _) ->
    charge t (t.dispatch_cost + Pvir.Types.lanes ty)
  | _ -> charge t (t.dispatch_cost + op_cost i));
  match i with
  | Pvir.Instr.Const (d, value) -> set_reg frame d value
  | Pvir.Instr.Mov (d, a) -> set_reg frame d (v a)
  | Pvir.Instr.Gaddr (d, g) ->
    set_reg frame d (Pvir.Value.i64 (Int64.of_int (Image.global_address t.img g)))
  | Pvir.Instr.Binop (op, d, a, b) -> (
    try set_reg frame d (Pvir.Eval.binop op (v a) (v b))
    with Pvir.Eval.Division_by_zero -> raise (Trap "division by zero"))
  | Pvir.Instr.Unop (op, d, a) -> set_reg frame d (Pvir.Eval.unop op (v a))
  | Pvir.Instr.Conv (kind, d, a) ->
    let dst_ty = Pvir.Func.reg_type frame.fn d in
    set_reg frame d (Pvir.Eval.conv kind dst_ty (v a))
  | Pvir.Instr.Cmp (op, d, a, b) ->
    set_reg frame d (Pvir.Eval.cmp op (v a) (v b))
  | Pvir.Instr.Select (d, c, a, b) ->
    set_reg frame d (Pvir.Eval.select (v c) (v a) (v b))
  | Pvir.Instr.Load (ty, d, base, off) ->
    let addr = Int64.to_int (Pvir.Value.to_int64 (v base)) + off in
    set_reg frame d (Memory.load t.img.mem addr ty)
  | Pvir.Instr.Store (_, src, base, off) ->
    let addr = Int64.to_int (Pvir.Value.to_int64 (v base)) + off in
    Memory.store t.img.mem addr (v src)
  | Pvir.Instr.Alloca (d, bytes) ->
    t.sp <- t.sp - bytes;
    if t.sp < t.img.globals_end then raise (Trap "stack overflow");
    set_reg frame d (Pvir.Value.i64 (Int64.of_int t.sp))
  | Pvir.Instr.Call (d, name, args) -> (
    let argv = List.map v args in
    let result =
      match Image.find_func t.img name with
      | Some callee -> call t callee argv
      | None -> intrinsic t name argv
    in
    match (d, result) with
    | None, _ -> ()
    | Some d, Some r -> set_reg frame d r
    | Some _, None ->
      raise (Trap (Printf.sprintf "call to %s produced no value" name)))
  | Pvir.Instr.Splat (d, a) ->
    let n =
      match Pvir.Func.reg_type frame.fn d with
      | Pvir.Types.Vector (_, n) -> n
      | _ -> raise (Trap "splat destination is not a vector")
    in
    set_reg frame d (Pvir.Eval.splat n (v a))
  | Pvir.Instr.Extract (d, a, lane) ->
    set_reg frame d (Pvir.Eval.extract (v a) lane)
  | Pvir.Instr.Reduce (op, d, a) ->
    set_reg frame d (Pvir.Eval.reduce op (v a))

(** Run function [name] with [args].  Returns the result value (if any)
    and leaves cycle/instruction counts in [stats]. *)
let run t name args =
  match Image.find_func t.img name with
  | Some fn -> call t fn args
  | None -> raise (Trap (Printf.sprintf "no function %s" name))
