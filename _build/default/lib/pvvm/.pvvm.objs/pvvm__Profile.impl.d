lib/pvvm/profile.ml: Hashtbl List Pvir String
