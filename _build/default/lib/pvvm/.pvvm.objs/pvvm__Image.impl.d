lib/pvvm/image.ml: Hashtbl List Memory Printf Pvir
