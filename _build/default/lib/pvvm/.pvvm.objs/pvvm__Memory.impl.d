lib/pvvm/memory.ml: Array Bytes Char Printf Pvir
