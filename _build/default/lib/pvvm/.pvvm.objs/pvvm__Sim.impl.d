lib/pvvm/sim.ml: Array Buffer Cost Hashtbl Image Int64 List Machine Memory Mir Printf Pvir Pvmach
