lib/pvvm/interp.ml: Array Buffer Image Int64 List Memory Option Printf Profile Pvir
