(** Cycle-counting simulator for MIR — the stand-in for real silicon.

    Executes the native code the JIT produced against the VM memory and a
    per-target register file, accumulating cycles from the {!Pvmach.Cost}
    model.  Values flow through the same {!Pvir.Value} representation as
    the interpreter, so JIT-compiled code can be checked for bit-exact
    equality with interpreted bytecode. *)

open Pvmach

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type stats = {
  mutable cycles : int64;
  mutable instrs : int64;
  mutable spill_ops : int64;  (** executed spill stores + reloads *)
}

type t = {
  img : Image.t;
  code : (string, Mir.func) Hashtbl.t;  (** compiled code cache *)
  machine : Machine.t;
  mutable sp : int;
  out : Buffer.t;
  stats : stats;
  fuel : int64;
}

let create ?(fuel = 2_000_000_000L) img machine =
  {
    img;
    code = Hashtbl.create 16;
    machine;
    sp = Image.initial_sp img;
    out = Buffer.create 64;
    stats = { cycles = 0L; instrs = 0L; spill_ops = 0L };
    fuel;
  }

let add_func t (fn : Mir.func) = Hashtbl.replace t.code fn.mname fn
let output t = Buffer.contents t.out
let cycles t = t.stats.cycles
let reset_cycles t = t.stats.cycles <- 0L

let charge t n =
  t.stats.cycles <- Int64.add t.stats.cycles (Int64.of_int n);
  t.stats.instrs <- Int64.add t.stats.instrs 1L;
  if Int64.compare t.stats.instrs t.fuel > 0 then
    trap "simulation fuel exhausted (infinite loop?)"

(* Register state: physical files per class plus a spill-free virtual
   environment (so pre-RA MIR can be simulated in tests). *)
type regfile = {
  gpr : Pvir.Value.t option array;
  fpr : Pvir.Value.t option array;
  vec : Pvir.Value.t option array;
  virt : (int, Pvir.Value.t) Hashtbl.t;
}

let new_regfile (m : Machine.t) =
  {
    (* size generously; the RA respects the machine's allocatable counts,
       and the simulator checks that indices stay within them *)
    gpr = Array.make (max 1 m.int_regs) None;
    fpr = Array.make (max 1 m.fp_regs) None;
    vec = Array.make (max 1 m.vec_regs) None;
    virt = Hashtbl.create 64;
  }

let class_file rf = function
  | Mir.Gpr -> rf.gpr
  | Mir.Fpr -> rf.fpr
  | Mir.Vec -> rf.vec

let get_reg rf (r : Mir.reg) =
  match r with
  | Mir.V v -> (
    match Hashtbl.find_opt rf.virt v with
    | Some x -> x
    | None -> trap "read of uninitialized virtual register v%d" v)
  | Mir.P (cls, i) -> (
    let file = class_file rf cls in
    if i < 0 || i >= Array.length file then
      trap "physical register index %d out of range" i;
    match file.(i) with
    | Some x -> x
    | None -> trap "read of uninitialized register %s" (Mir.reg_to_string r))

let set_reg rf (r : Mir.reg) v =
  match r with
  | Mir.V vr -> Hashtbl.replace rf.virt vr v
  | Mir.P (cls, i) ->
    let file = class_file rf cls in
    if i < 0 || i >= Array.length file then
      trap "physical register index %d out of range" i;
    file.(i) <- Some v

type frame = {
  rf : regfile;
  fp : int;  (** frame base address *)
  slots : (int, Pvir.Value.t) Hashtbl.t;  (** spill slots *)
  fn : Mir.func;
}

let intrinsic t name (args : Pvir.Value.t list) : Pvir.Value.t option =
  match (name, args) with
  | "print_i64", [ v ] ->
    Buffer.add_string t.out (Int64.to_string (Pvir.Value.to_int64 v));
    Buffer.add_char t.out '\n';
    None
  | "print_f64", [ v ] ->
    Buffer.add_string t.out (Printf.sprintf "%.6g" (Pvir.Value.to_float v));
    Buffer.add_char t.out '\n';
    None
  | "abort", [] -> trap "abort called"
  | _ -> trap "unknown intrinsic %s" name

let rec call t (fn : Mir.func) (args : Pvir.Value.t list) : Pvir.Value.t option =
  charge t t.machine.Machine.call_cost;
  let n_reg = List.length fn.mparams in
  if List.length args <> n_reg + List.length fn.marg_slots then
    trap "arity mismatch calling %s" fn.mname;
  let saved_sp = t.sp in
  t.sp <- t.sp - fn.frame_size;
  if t.sp < t.img.globals_end then trap "stack overflow in %s" fn.mname;
  let frame =
    { rf = new_regfile t.machine; fp = t.sp; slots = Hashtbl.create 16; fn }
  in
  (* calling convention: leading args in registers, the rest in the
     callee's argument frame slots *)
  let reg_args = List.filteri (fun i _ -> i < n_reg) args in
  let stack_args = List.filteri (fun i _ -> i >= n_reg) args in
  List.iter2 (fun r v -> set_reg frame.rf r v) fn.mparams reg_args;
  List.iter2
    (fun (slot, _) v -> Hashtbl.replace frame.slots slot v)
    fn.marg_slots stack_args;
  let result = exec_block t frame (Mir.entry fn) in
  t.sp <- saved_sp;
  result

and exec_block t frame (blk : Mir.block) : Pvir.Value.t option =
  List.iter (exec_inst t frame) blk.insts;
  charge t (Cost.of_term t.machine blk.mterm);
  match blk.mterm with
  | Mir.Tbr l -> exec_block t frame (Mir.find_block frame.fn l)
  | Mir.Tcbr (c, l1, l2) ->
    let target =
      if Pvir.Value.to_bool (get_reg frame.rf c) then l1 else l2
    in
    exec_block t frame (Mir.find_block frame.fn target)
  | Mir.Tret None -> None
  | Mir.Tret (Some r) -> Some (get_reg frame.rf r)

and exec_inst t frame (i : Mir.inst) : unit =
  charge t (Cost.of_inst t.machine i);
  (match i.Mir.op with
  | Mir.Mframe_ld _ | Mir.Mframe_st _ ->
    t.stats.spill_ops <- Int64.add t.stats.spill_ops 1L
  | _ -> ());
  let rf = frame.rf in
  let v r = get_reg rf r in
  let dst () =
    match i.dst with
    | Some d -> d
    | None -> trap "instruction %s lacks a destination" (Mir.inst_to_string i)
  in
  (* operands: the immediate, when present, is always the last operand *)
  let operand k =
    let n_regs = List.length i.srcs in
    if k < n_regs then v (List.nth i.srcs k)
    else
      match i.imm with
      | Some value when k = n_regs -> value
      | _ -> trap "instruction %s lacks operand %d" (Mir.inst_to_string i) k
  in
  let src1 () = operand 0 in
  let src2 () = operand 1 in
  match i.op with
  | Mir.Mli value -> set_reg rf (dst ()) value
  | Mir.Mmov -> set_reg rf (dst ()) (src1 ())
  | Mir.Mbin op -> (
    try set_reg rf (dst ()) (Pvir.Eval.binop op (src1 ()) (src2 ()))
    with Pvir.Eval.Division_by_zero -> trap "division by zero")
  | Mir.Mun op -> set_reg rf (dst ()) (Pvir.Eval.unop op (src1 ()))
  | Mir.Mconv kind -> set_reg rf (dst ()) (Pvir.Eval.conv kind i.ty (src1 ()))
  | Mir.Mcmp op -> set_reg rf (dst ()) (Pvir.Eval.cmp op (src1 ()) (src2 ()))
  | Mir.Msel ->
    set_reg rf (dst ()) (Pvir.Eval.select (operand 0) (operand 1) (operand 2))
  | Mir.Mload off ->
    let addr = Int64.to_int (Pvir.Value.to_int64 (src1 ())) + off in
    set_reg rf (dst ()) (Memory.load t.img.mem addr i.ty)
  | Mir.Mstore off ->
    (* store operands are (value, base); with a folded immediate the value
       is the immediate and the base is the remaining register *)
    let value, base =
      match (i.srcs, i.imm) with
      | [ s; b ], None -> (v s, v b)
      | [ b ], Some value -> (value, v b)
      | _ -> trap "store expects (value, base)"
    in
    let addr = Int64.to_int (Pvir.Value.to_int64 base) + off in
    Memory.store t.img.mem addr value
  | Mir.Mframe_addr off ->
    set_reg rf (dst ()) (Pvir.Value.i64 (Int64.of_int (frame.fp + off)))
  | Mir.Mframe_ld slot -> (
    match Hashtbl.find_opt frame.slots slot with
    | Some value -> set_reg rf (dst ()) value
    | None -> trap "reload of empty spill slot %d in %s" slot frame.fn.mname)
  | Mir.Mframe_st slot -> Hashtbl.replace frame.slots slot (src1 ())
  | Mir.Msplat -> (
    match i.ty with
    | Pvir.Types.Vector (_, n) ->
      set_reg rf (dst ()) (Pvir.Eval.splat n (src1 ()))
    | _ -> trap "splat at non-vector type")
  | Mir.Mextract lane -> set_reg rf (dst ()) (Pvir.Eval.extract (src1 ()) lane)
  | Mir.Mreduce op -> set_reg rf (dst ()) (Pvir.Eval.reduce op (src1 ()))
  | Mir.Mcall name -> (
    let argv = List.map v i.srcs in
    let result =
      match Hashtbl.find_opt t.code name with
      | Some callee -> call t callee argv
      | None -> intrinsic t name argv
    in
    match (i.dst, result) with
    | None, _ -> ()
    | Some d, Some value -> set_reg rf d value
    | Some _, None -> trap "call to %s produced no value" name)

(** Run compiled function [name].  All callees it reaches must have been
    registered with {!add_func} (the cache models the JIT's code cache). *)
let run t name args =
  match Hashtbl.find_opt t.code name with
  | Some fn -> call t fn args
  | None -> trap "no compiled code for %s" name
