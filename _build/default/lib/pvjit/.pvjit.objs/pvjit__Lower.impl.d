lib/pvjit/lower.ml: Hashtbl Int64 List Machine Mir Option Printf Pvir Pvmach
