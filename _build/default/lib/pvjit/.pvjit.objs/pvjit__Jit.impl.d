lib/pvjit/jit.ml: Array Hashtbl Immfold Legalize List Lower Machine Mir Peephole Pvir Pvmach Pvopt Pvvm Regalloc
