lib/pvjit/immfold.ml: Hashtbl List Mir Pvir Pvmach
