lib/pvjit/legalize.ml: Array Hashtbl List Machine Mir Printf Pvir Pvmach
