lib/pvjit/peephole.ml: List Mir Pvir Pvmach
