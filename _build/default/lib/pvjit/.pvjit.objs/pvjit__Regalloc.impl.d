lib/pvjit/regalloc.ml: Hashtbl List Machine Mir Option Printf Pvir Pvmach Queue String Sys
