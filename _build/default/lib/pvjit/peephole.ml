(** Post-allocation peephole cleanup.

    After linear scan, copy coalescing falls out for free: a [mov] whose
    source and destination landed in the same physical register is a
    no-op and is deleted.  Also removes immediate reloads of a value just
    stored to the same spill slot (store-to-load forwarding within a
    block). *)

open Pvmach

let run ?account (mf : Mir.func) : int =
  Pvir.Account.charge_opt account ~pass:"jit.peephole" (Mir.size mf);
  let removed = ref 0 in
  List.iter
    (fun (b : Mir.block) ->
      (* self-movs *)
      b.Mir.insts <-
        List.filter
          (fun (i : Mir.inst) ->
            match (i.Mir.op, i.Mir.dst, i.Mir.srcs) with
            | Mir.Mmov, Some d, [ s ] when d = s ->
              incr removed;
              false
            | _ -> true)
          b.Mir.insts;
      (* store-to-load forwarding: [spill slot <- r; t <- reload slot]
         becomes [spill slot <- r; t <- mov r] *)
      let rec forward = function
        | ({ Mir.op = Mir.Mframe_st slot; srcs = [ r ]; _ } as st)
          :: { Mir.op = Mir.Mframe_ld slot'; dst = Some t; ty; _ }
          :: rest
          when slot = slot' ->
          incr removed;
          st :: Mir.inst ~dst:t ~srcs:[ r ] Mir.Mmov ty :: forward rest
        | i :: rest -> i :: forward rest
        | [] -> []
      in
      b.Mir.insts <- forward b.Mir.insts)
    mf.Mir.mblocks;
  !removed
