(** Immediate folding: turn constant register operands into immediate
    operands.

    Hoisted constants (loop steps, masks, scales) otherwise occupy a
    register for the whole loop — on a register-poor target that one
    register is the difference between a clean loop and spill traffic.
    Any virtual register defined exactly once, by an [Mli] of a scalar
    value, is folded into the instructions that use it (binops, compares,
    selects, stores, splats); [Mli]s left without uses are deleted.

    Runs after legalization and before register allocation. *)

open Pvmach

let commutative (op : Pvir.Instr.binop) =
  match op with
  | Pvir.Instr.Add | Pvir.Instr.Mul | Pvir.Instr.And | Pvir.Instr.Or
  | Pvir.Instr.Xor | Pvir.Instr.Min | Pvir.Instr.Max | Pvir.Instr.Umin
  | Pvir.Instr.Umax -> true
  | _ -> false

let run ?account (mf : Mir.func) : int =
  Pvir.Account.charge_opt account ~pass:"jit.immfold" (Mir.size mf);
  (* single-def Mli-of-scalar registers *)
  let def_count = Hashtbl.create 32 in
  let const_of = Hashtbl.create 16 in
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (i : Mir.inst) ->
          match i.Mir.dst with
          | Some (Mir.V v) ->
            Hashtbl.replace def_count v
              (1 + try Hashtbl.find def_count v with Not_found -> 0)
          | _ -> ())
        b.Mir.insts)
    mf.Mir.mblocks;
  List.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (i : Mir.inst) ->
          match (i.Mir.op, i.Mir.dst) with
          | Mir.Mli (Pvir.Value.Vec _), _ -> ()
          | Mir.Mli value, Some (Mir.V v)
            when (try Hashtbl.find def_count v with Not_found -> 0) = 1 ->
            Hashtbl.replace const_of v value
          | _ -> ())
        b.Mir.insts)
    mf.Mir.mblocks;
  let const_reg r =
    match r with Mir.V v -> Hashtbl.find_opt const_of v | Mir.P _ -> None
  in
  let folded = ref 0 in
  let fold (i : Mir.inst) : Mir.inst =
    if i.Mir.imm <> None then i
    else
      match (i.Mir.op, i.Mir.srcs) with
      | Mir.Mbin op, [ a; b ] -> (
        match (const_reg a, const_reg b) with
        | _, Some value ->
          incr folded;
          { i with Mir.srcs = [ a ]; imm = Some value }
        | Some value, None when commutative op ->
          incr folded;
          { i with Mir.srcs = [ b ]; imm = Some value }
        | _ -> i)
      | Mir.Mcmp _, [ a; b ] -> (
        match const_reg b with
        | Some value ->
          incr folded;
          { i with Mir.srcs = [ a ]; imm = Some value }
        | None -> i)
      | Mir.Mstore _, [ src; base ] -> (
        match const_reg src with
        | Some value ->
          incr folded;
          { i with Mir.srcs = [ base ]; imm = Some value }
        | None -> i)
      | Mir.Msplat, [ a ] -> (
        match const_reg a with
        | Some value ->
          incr folded;
          { i with Mir.srcs = []; imm = Some value }
        | None -> i)
      | _ -> i
  in
  List.iter
    (fun (b : Mir.block) -> b.Mir.insts <- List.map fold b.Mir.insts)
    mf.Mir.mblocks;
  (* delete Mli definitions that no longer have any use *)
  let used = Hashtbl.create 32 in
  let mark r = match r with Mir.V v -> Hashtbl.replace used v () | Mir.P _ -> () in
  List.iter
    (fun (b : Mir.block) ->
      List.iter (fun i -> List.iter mark i.Mir.srcs) b.Mir.insts;
      List.iter mark (Mir.term_uses b.Mir.mterm))
    mf.Mir.mblocks;
  List.iter
    (fun (b : Mir.block) ->
      b.Mir.insts <-
        List.filter
          (fun (i : Mir.inst) ->
            match (i.Mir.op, i.Mir.dst) with
            | Mir.Mli _, Some (Mir.V v) when Hashtbl.mem const_of v ->
              Hashtbl.mem used v
            | _ -> true)
          b.Mir.insts)
    mf.Mir.mblocks;
  !folded
