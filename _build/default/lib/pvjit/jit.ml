(** The online compiler: bytecode to target code at load/run time.

    [compile_program] drives the per-function pipeline

    {v  lower -> legalize (scalarize w/o SIMD) -> regalloc -> peephole  v}

    and registers the results in a {!Pvvm.Sim} ready to execute.  The
    register-allocation spill choice depends on [hints]:

    - [Hints_none]: the blind heuristic of a budget-constrained JIT;
    - [Hints_annotation]: consume the offline {!Pvir.Annot.key_spill_order}
      annotation — the split-compilation path (near-free online);
    - [Hints_recompute]: recompute offline-quality weights online, paying
      the full analysis price (the pure-online upper bound).

    All work is charged to [account]. *)

open Pvmach

type hints = Hints_none | Hints_annotation | Hints_recompute

type func_report = {
  fname : string;
  ra : Regalloc.stats;
  mir_size : int;  (** instructions after compilation, "native code size" *)
}

type report = {
  funcs : func_report list;
  work : Pvir.Account.t;  (** online work spent *)
}

let weight_fun_of_annotation (fn : Pvir.Func.t) : (int -> float) option =
  match Pvopt.Regalloc_annotate.decode_spill_order fn with
  | None -> None
  | Some order ->
    let tbl = Hashtbl.create 32 in
    List.iter (fun (r, c) -> Hashtbl.replace tbl r (float_of_int c)) order;
    Some
      (fun v ->
        match Hashtbl.find_opt tbl v with Some w -> w | None -> infinity)

let weight_fun_recomputed ?account (fn : Pvir.Func.t) : int -> float =
  (* same analysis as the offline annotator, but paid for online *)
  Pvir.Account.charge_opt account ~pass:"jit.online_weights"
    (6 * Pvir.Func.instr_count fn);
  let costs = Pvopt.Regalloc_annotate.spill_costs fn in
  let tbl = Hashtbl.create 32 in
  List.iter (fun (r, c) -> Hashtbl.replace tbl r c) costs;
  fun v ->
    match Hashtbl.find_opt tbl v with Some w -> w | None -> infinity

(** Extend vreg weights across scalarization: a lane register inherits the
    weight of the vector register it came from. *)
let extend_weights (exp : Legalize.expansion) (w : int -> float) : int -> float =
  let lane_parent = Hashtbl.create 32 in
  Hashtbl.iter
    (fun parent lanes ->
      Array.iter
        (fun r ->
          match r with
          | Mir.V v -> Hashtbl.replace lane_parent v parent
          | Mir.P _ -> ())
        lanes)
    exp.Legalize.lanes_of;
  fun v ->
    match Hashtbl.find_opt lane_parent v with
    | Some parent -> w parent
    | None -> w v

(** Compile one function for [machine]. *)
let compile_func ?account ~(machine : Machine.t) ~(img : Pvvm.Image.t)
    ~(hints : hints) (fn : Pvir.Func.t) : Mir.func * func_report =
  let mf =
    Lower.run ?account ~machine
      ~resolve_global:(Pvvm.Image.global_address img)
      fn
  in
  let exp = Legalize.run ?account mf in
  ignore (Immfold.run ?account mf);
  let quality =
    match hints with
    | Hints_none -> Regalloc.Heuristic
    | Hints_annotation -> (
      match weight_fun_of_annotation fn with
      | Some w ->
        (* reading the annotation is (nearly) free *)
        Pvir.Account.charge_opt account ~pass:"jit.read_annotations"
          (List.length fn.params + 4);
        Regalloc.Weights (extend_weights exp w)
      | None -> Regalloc.Heuristic)
    | Hints_recompute ->
      Regalloc.Weights (extend_weights exp (weight_fun_recomputed ?account fn))
  in
  let ra = Regalloc.run ?account ~quality mf in
  ignore (Peephole.run ?account mf);
  (mf, { fname = fn.name; ra; mir_size = Mir.size mf })

(** Compile all functions of the image's program and return a simulator
    loaded with the generated code. *)
let compile_program ?account ~(machine : Machine.t) ~(hints : hints)
    (img : Pvvm.Image.t) : Pvvm.Sim.t * report =
  let sim = Pvvm.Sim.create img machine in
  let reports =
    List.map
      (fun fn ->
        let mf, report = compile_func ?account ~machine ~img ~hints fn in
        Pvvm.Sim.add_func sim mf;
        report)
      img.Pvvm.Image.prog.Pvir.Prog.funcs
  in
  let work =
    match account with Some a -> a | None -> Pvir.Account.create ()
  in
  (sim, { funcs = reports; work })
