lib/pvkernels/harness.ml: Account Array Core Int64 Kernels List Printf Prog Pvir Pvjit Pvmach Pvopt Pvvm String Types Value
