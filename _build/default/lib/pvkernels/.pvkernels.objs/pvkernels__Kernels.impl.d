lib/pvkernels/kernels.ml: List Printf String
