(** Benchmark kernels.

    The six kernels of the paper's Table 1 ([vecadd fp], [saxpy fp],
    [dscal fp], [max u8], [sum u8], [sum u16]) written in MiniC exactly as
    their BLAS/DSP archetypes: [fp] is f32 except [dscal] (double
    precision, as in BLAS), the byte/halfword kernels use unsigned data.
    All arrays are globals so the offline dependence analysis can prove
    them distinct (the paper's originals were compiled with equivalent
    knowledge via the vectorization builtins of ref [42]).

    Extra kernels exercise the rest of the system: [dot_f32] (float
    reduction — only vectorizes under the fast-math annotation), [fir]
    (inner loop with two live arrays), [memcpy8], and a register-pressure
    kernel [poly8] for the split-regalloc experiment E3. *)

type t = {
  name : string;
  source : string;  (** self-contained MiniC translation unit *)
  entry : string;  (** function to run *)
  elem_bytes : int;  (** element size the vectorizer keys on *)
  description : string;
}

let n_default = 1024

(* All kernels take the element count as their first argument. *)

let vecadd_fp =
  {
    name = "vecadd_fp";
    entry = "vecadd";
    elem_bytes = 4;
    description = "c[i] = a[i] + b[i] over f32";
    source =
      {|
f32 va_a[1024];
f32 va_b[1024];
f32 va_c[1024];

void vecadd(i64 n) {
  for (i64 i = 0; i < n; i = i + 1) {
    va_c[i] = va_a[i] + va_b[i];
  }
}
|};
  }

let saxpy_fp =
  {
    name = "saxpy_fp";
    entry = "saxpy";
    elem_bytes = 4;
    description = "y[i] = a*x[i] + y[i] over f32";
    source =
      {|
f32 sx_x[1024];
f32 sx_y[1024];

void saxpy(i64 n, f32 a) {
  for (i64 i = 0; i < n; i = i + 1) {
    sx_y[i] = a * sx_x[i] + sx_y[i];
  }
}
|};
  }

let dscal_fp =
  {
    name = "dscal_fp";
    entry = "dscal";
    elem_bytes = 8;
    description = "x[i] = a*x[i] over f64 (BLAS dscal)";
    source =
      {|
f64 ds_x[1024];

void dscal(i64 n, f64 a) {
  for (i64 i = 0; i < n; i = i + 1) {
    ds_x[i] = a * ds_x[i];
  }
}
|};
  }

let max_u8 =
  {
    name = "max_u8";
    entry = "max_u8";
    elem_bytes = 1;
    description = "unsigned byte maximum reduction";
    source =
      {|
u8 mx_a[1024];

u8 max_u8(i64 n) {
  u8 m = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    m = mx_a[i] > m ? mx_a[i] : m;
  }
  return m;
}
|};
  }

let sum_u8 =
  {
    name = "sum_u8";
    entry = "sum_u8";
    elem_bytes = 1;
    description = "unsigned byte sum into u32 (widening reduction)";
    source =
      {|
u8 su8_a[1024];

u32 sum_u8(i64 n) {
  u32 s = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    s = s + (u32)su8_a[i];
  }
  return s;
}
|};
  }

let sum_u16 =
  {
    name = "sum_u16";
    entry = "sum_u16";
    elem_bytes = 2;
    description = "unsigned halfword sum into u32 (widening reduction)";
    source =
      {|
u16 su16_a[1024];

u32 sum_u16(i64 n) {
  u32 s = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    s = s + (u32)su16_a[i];
  }
  return s;
}
|};
  }

(** The six kernels of Table 1, in the paper's row order. *)
let table1 = [ vecadd_fp; saxpy_fp; dscal_fp; max_u8; sum_u8; sum_u16 ]

(* ---------------- extra workloads ---------------- *)

let dot_f32 =
  {
    name = "dot_f32";
    entry = "dot";
    elem_bytes = 4;
    description = "f32 dot product (float reduction; needs fast-math)";
    source =
      {|
f32 dp_a[1024];
f32 dp_b[1024];

f32 dot(i64 n) {
  f32 s = 0.0;
  for (i64 i = 0; i < n; i = i + 1) {
    s = s + dp_a[i] * dp_b[i];
  }
  return s;
}
|};
  }

let fir =
  {
    name = "fir";
    entry = "fir";
    elem_bytes = 4;
    description = "4-tap FIR filter (unrolled taps, shifted loads)";
    source =
      {|
f32 fir_x[1032];
f32 fir_y[1024];
f32 fir_c0;
f32 fir_c1;
f32 fir_c2;
f32 fir_c3;

void fir(i64 n) {
  f32 c0 = fir_c0;
  f32 c1 = fir_c1;
  f32 c2 = fir_c2;
  f32 c3 = fir_c3;
  for (i64 i = 0; i < n; i = i + 1) {
    fir_y[i] = c0 * fir_x[i] + c1 * fir_x[i + 1]
             + c2 * fir_x[i + 2] + c3 * fir_x[i + 3];
  }
}
|};
  }

let memcpy8 =
  {
    name = "memcpy8";
    entry = "copy";
    elem_bytes = 1;
    description = "byte copy between distinct arrays";
    source =
      {|
u8 mc_src[1024];
u8 mc_dst[1024];

void copy(i64 n) {
  for (i64 i = 0; i < n; i = i + 1) {
    mc_dst[i] = mc_src[i];
  }
}
|};
  }

(** Register-pressure stress: a degree-7 polynomial evaluated with eight
    live coefficients plus running state — more simultaneously-live
    values than x86ish has registers, the E3 scenario. *)
let poly8 =
  {
    name = "poly8";
    entry = "poly8";
    elem_bytes = 4;
    description = "degree-7 Horner polynomial, register pressure stress";
    source =
      {|
i32 p8_x[1024];
i32 p8_y[1024];

void poly8(i64 n, i32 c0, i32 c1, i32 c2, i32 c3, i32 c4, i32 c5, i32 c6, i32 c7) {
  for (i64 i = 0; i < n; i = i + 1) {
    i32 x = p8_x[i];
    i32 acc = c7;
    acc = acc * x + c6;
    acc = acc * x + c5;
    acc = acc * x + c4;
    acc = acc * x + c3;
    acc = acc * x + c2;
    acc = acc * x + c1;
    acc = acc * x + c0;
    p8_y[i] = acc;
  }
}
|};
  }

(** Four interacting running accumulators plus a loaded value: more live
    integers than x86ish's six registers (E3 workload). *)
let mix4 =
  {
    name = "mix4";
    entry = "mix4";
    elem_bytes = 4;
    description = "4 interlocking accumulators, register pressure stress";
    source =
      {|
u32 mx4_g[1024];

u32 mix4(i64 n) {
  u32 a = 1;
  u32 b = 2;
  u32 c = 3;
  u32 d = 4;
  for (i64 i = 0; i < n; i = i + 1) {
    u32 x = mx4_g[i];
    a = a + x;
    b = b ^ (a << 3);
    c = c + (b >> 2);
    d = d ^ (c + x);
  }
  return a + b + c + d;
}
|};
  }

(** Two interleaved Horner evaluations sharing one input stream: twice the
    live coefficients of [poly8] (E3 workload). *)
let horner2 =
  {
    name = "horner2";
    entry = "horner2";
    elem_bytes = 4;
    description = "two interleaved Horner chains, extreme register pressure";
    source =
      {|
i32 h2_x[1024];
i32 h2_y[1024];

void horner2(i64 n, i32 p0, i32 p1, i32 p2, i32 p3, i32 q0, i32 q1, i32 q2, i32 q3) {
  for (i64 i = 0; i < n; i = i + 1) {
    i32 x = h2_x[i];
    i32 p = p3;
    p = p * x + p2;
    p = p * x + p1;
    p = p * x + p0;
    i32 q = q3;
    q = q * x + q2;
    q = q * x + q1;
    q = q * x + q0;
    h2_y[i] = p ^ q;
  }
}
|};
  }

(** Six channel accumulators with four gain parameters: accumulators
    outlive the loop (they merge at the end), so a blind furthest-end
    allocator evicts exactly the wrong registers (E3 workload). *)
let filterbank =
  {
    name = "filterbank";
    entry = "filterbank";
    elem_bytes = 4;
    description = "6 channel accumulators + 4 gains, adversarial for blind RA";
    source =
      {|
u32 fb_x[1024];

u32 filterbank(i64 n, u32 g0, u32 g1, u32 g2, u32 g3) {
  u32 a0 = 0;
  u32 a1 = 0;
  u32 a2 = 0;
  u32 a3 = 0;
  u32 a4 = 0;
  u32 a5 = 0;
  for (i64 i = 0; i < n; i = i + 1) {
    u32 x = fb_x[i];
    a0 = a0 + x * g0;
    a1 = a1 + x * g1;
    a2 = a2 + x * g2;
    a3 = a3 + x * g3;
    a4 = a4 + (x >> 3);
    a5 = a5 ^ x;
  }
  return a0 + a1 + a2 + a3 + a4 + a5;
}
|};
  }

(** 3x3 box blur on a padded 66x66 byte image: the 2D stencil case — the
    inner loop's addresses are affine in x with a loop-invariant row
    offset, so it vectorizes at 16 lanes with widening accumulation. *)
let blur3x3 =
  {
    name = "blur3x3";
    entry = "blur";
    elem_bytes = 1;
    description = "3x3 box blur over a 2D byte image (stencil, 16 lanes)";
    source =
      {|
u8 bl_src[4356];
u8 bl_dst[4356];

void blur(i64 w, i64 h) {
  for (i64 y = 1; y < h - 1; y++) {
    i64 row = y * 66;
    for (i64 x = 1; x < w - 1; x++) {
      u32 s = (u32)bl_src[row + x - 67] + (u32)bl_src[row + x - 66]
            + (u32)bl_src[row + x - 65] + (u32)bl_src[row + x - 1]
            + (u32)bl_src[row + x]      + (u32)bl_src[row + x + 1]
            + (u32)bl_src[row + x + 65] + (u32)bl_src[row + x + 66]
            + (u32)bl_src[row + x + 67];
      bl_dst[row + x] = (u8)(s / 9);
    }
  }
}
|};
  }

let extras = [ dot_f32; fir; memcpy8; poly8; mix4; horner2; filterbank; blur3x3 ]
let all = table1 @ extras

let find name = List.find_opt (fun k -> String.equal k.name name) all

let find_exn name =
  match find name with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Kernels.find: unknown kernel %s" name)
