(** Recursive-descent parser for MiniC with standard C precedence. *)

exception Error of string

let fail lx fmt =
  Printf.ksprintf
    (fun s -> raise (Error (Printf.sprintf "line %d: %s" (Lexer.line lx) s)))
    fmt

let expect_punct lx p =
  match Lexer.next lx with
  | Lexer.PUNCT q when String.equal p q -> ()
  | t -> fail lx "expected '%s', got %s" p (Lexer.token_to_string t)

let accept_punct lx p =
  match Lexer.peek lx with
  | Lexer.PUNCT q when String.equal p q ->
    ignore (Lexer.next lx);
    true
  | _ -> false

let ident lx =
  match Lexer.next lx with
  | Lexer.IDENT s -> s
  | t -> fail lx "expected identifier, got %s" (Lexer.token_to_string t)

let base_ty_of_kw = function
  | "void" -> Some Ast.Void
  | "i8" -> Some (Ast.Int (Pvir.Types.I8, true))
  | "i16" -> Some (Ast.Int (Pvir.Types.I16, true))
  | "i32" -> Some (Ast.Int (Pvir.Types.I32, true))
  | "i64" -> Some (Ast.Int (Pvir.Types.I64, true))
  | "u8" -> Some (Ast.Int (Pvir.Types.I8, false))
  | "u16" -> Some (Ast.Int (Pvir.Types.I16, false))
  | "u32" -> Some (Ast.Int (Pvir.Types.I32, false))
  | "u64" -> Some (Ast.Int (Pvir.Types.I64, false))
  | "f32" -> Some (Ast.Flt Pvir.Types.F32)
  | "f64" -> Some (Ast.Flt Pvir.Types.F64)
  | _ -> None

(** Is the current token the start of a type? *)
let peek_ty lx =
  match Lexer.peek lx with
  | Lexer.KW k -> base_ty_of_kw k <> None
  | _ -> false

let parse_base_ty lx =
  match Lexer.next lx with
  | Lexer.KW k -> (
    match base_ty_of_kw k with
    | Some t -> t
    | None -> fail lx "expected type, got %s" k)
  | t -> fail lx "expected type, got %s" (Lexer.token_to_string t)

(* type = base ('*')* *)
let parse_ty lx =
  let t = ref (parse_base_ty lx) in
  while accept_punct lx "*" do
    t := Ast.Ptr !t
  done;
  !t

(* ---------------- expressions ---------------- *)

let rec parse_primary lx =
  match Lexer.next lx with
  | Lexer.INT (v, suffixed) ->
    Ast.Int_lit (v, if suffixed then Some (Ast.Int (Pvir.Types.I64, true)) else None)
  | Lexer.FLOAT (v, suffixed) ->
    Ast.Float_lit (v, if suffixed then Some (Ast.Flt Pvir.Types.F32) else None)
  | Lexer.IDENT name ->
    if accept_punct lx "(" then (
      let args = ref [] in
      (if not (accept_punct lx ")") then
         let rec go () =
           args := parse_expr lx :: !args;
           if accept_punct lx "," then go () else expect_punct lx ")"
         in
         go ());
      Ast.Call (name, List.rev !args))
    else Ast.Var name
  | Lexer.PUNCT "(" ->
    if peek_ty lx then (
      let ty = parse_ty lx in
      expect_punct lx ")";
      Ast.Cast (ty, parse_unary lx))
    else (
      let e = parse_expr lx in
      expect_punct lx ")";
      e)
  | t -> fail lx "expected expression, got %s" (Lexer.token_to_string t)

and parse_postfix lx =
  let e = ref (parse_primary lx) in
  while accept_punct lx "[" do
    let idx = parse_expr lx in
    expect_punct lx "]";
    e := Ast.Index (!e, idx)
  done;
  !e

and parse_unary lx =
  match Lexer.peek lx with
  | Lexer.PUNCT "-" ->
    ignore (Lexer.next lx);
    Ast.Unary (Ast.Neg, parse_unary lx)
  | Lexer.PUNCT "!" ->
    ignore (Lexer.next lx);
    Ast.Unary (Ast.Lnot, parse_unary lx)
  | Lexer.PUNCT "~" ->
    ignore (Lexer.next lx);
    Ast.Unary (Ast.Bnot, parse_unary lx)
  | Lexer.PUNCT "*" ->
    ignore (Lexer.next lx);
    Ast.Deref (parse_unary lx)
  | _ -> parse_postfix lx

(* precedence climbing; higher binds tighter *)
and binop_of_punct = function
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Rem, 10)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Ne, 6)
  | "&" -> Some (Ast.Band, 5)
  | "^" -> Some (Ast.Bxor, 4)
  | "|" -> Some (Ast.Bor, 3)
  | "&&" -> Some (Ast.Land, 2)
  | "||" -> Some (Ast.Lor, 1)
  | _ -> None

and parse_binary lx min_prec =
  let lhs = ref (parse_unary lx) in
  let continue_ = ref true in
  while !continue_ do
    match Lexer.peek lx with
    | Lexer.PUNCT p -> (
      match binop_of_punct p with
      | Some (op, prec) when prec >= min_prec ->
        ignore (Lexer.next lx);
        let rhs = parse_binary lx (prec + 1) in
        lhs := Ast.Binary (op, !lhs, rhs)
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_expr lx =
  let cond = parse_binary lx 1 in
  if accept_punct lx "?" then (
    let then_e = parse_expr lx in
    expect_punct lx ":";
    let else_e = parse_expr lx in
    Ast.Ternary (cond, then_e, else_e))
  else cond

(* ---------------- statements ---------------- *)

let is_lvalue = function
  | Ast.Var _ | Ast.Index _ | Ast.Deref _ -> true
  | _ -> false

let rec parse_stmt lx : Ast.stmt =
  match Lexer.peek lx with
  | Lexer.PUNCT "{" ->
    ignore (Lexer.next lx);
    Ast.Block (parse_block_tail lx)
  | Lexer.KW "if" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let cond = parse_expr lx in
    expect_punct lx ")";
    let then_s = parse_stmt_as_block lx in
    let else_s =
      match Lexer.peek lx with
      | Lexer.KW "else" ->
        ignore (Lexer.next lx);
        parse_stmt_as_block lx
      | _ -> []
    in
    Ast.If (cond, then_s, else_s)
  | Lexer.KW "while" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let cond = parse_expr lx in
    expect_punct lx ")";
    Ast.While (cond, parse_stmt_as_block lx)
  | Lexer.KW "for" ->
    ignore (Lexer.next lx);
    expect_punct lx "(";
    let init =
      if accept_punct lx ";" then None
      else (
        let s = parse_simple_stmt lx in
        expect_punct lx ";";
        Some s)
    in
    let cond = if accept_punct lx ";" then None
      else (
        let e = parse_expr lx in
        expect_punct lx ";";
        Some e)
    in
    let step =
      if accept_punct lx ")" then None
      else (
        let s = parse_simple_stmt lx in
        expect_punct lx ")";
        Some s)
    in
    Ast.For (init, cond, step, parse_stmt_as_block lx)
  | Lexer.KW "return" ->
    ignore (Lexer.next lx);
    if accept_punct lx ";" then Ast.Return None
    else (
      let e = parse_expr lx in
      expect_punct lx ";";
      Ast.Return (Some e))
  | Lexer.KW "break" ->
    ignore (Lexer.next lx);
    expect_punct lx ";";
    Ast.Break
  | Lexer.KW "continue" ->
    ignore (Lexer.next lx);
    expect_punct lx ";";
    Ast.Continue
  | _ ->
    let s = parse_simple_stmt lx in
    expect_punct lx ";";
    s

(* declaration / assignment / expression, without the trailing ';' *)
and parse_simple_stmt lx : Ast.stmt =
  if peek_ty lx then (
    let ty = parse_ty lx in
    let name = ident lx in
    let ty =
      if accept_punct lx "[" then (
        match Lexer.next lx with
        | Lexer.INT (n, _) ->
          expect_punct lx "]";
          Ast.Arr (ty, Int64.to_int n)
        | t -> fail lx "expected array size, got %s" (Lexer.token_to_string t))
      else ty
    in
    let init = if accept_punct lx "=" then Some (parse_expr lx) else None in
    Ast.Decl (ty, name, init))
  else
    let e = parse_expr lx in
    let compound op =
      if not (is_lvalue e) then fail lx "assignment to non-lvalue";
      Ast.Assign (e, Ast.Binary (op, e, parse_expr lx))
    in
    if accept_punct lx "=" then (
      if not (is_lvalue e) then fail lx "assignment to non-lvalue";
      Ast.Assign (e, parse_expr lx))
    else if accept_punct lx "+=" then compound Ast.Add
    else if accept_punct lx "-=" then compound Ast.Sub
    else if accept_punct lx "*=" then compound Ast.Mul
    else if accept_punct lx "/=" then compound Ast.Div
    else if accept_punct lx "%=" then compound Ast.Rem
    else if accept_punct lx "&=" then compound Ast.Band
    else if accept_punct lx "|=" then compound Ast.Bor
    else if accept_punct lx "^=" then compound Ast.Bxor
    else if accept_punct lx "++" then (
      if not (is_lvalue e) then fail lx "++ on non-lvalue";
      Ast.Assign (e, Ast.Binary (Ast.Add, e, Ast.Int_lit (1L, None))))
    else if accept_punct lx "--" then (
      if not (is_lvalue e) then fail lx "-- on non-lvalue";
      Ast.Assign (e, Ast.Binary (Ast.Sub, e, Ast.Int_lit (1L, None))))
    else Ast.Expr_stmt e

and parse_stmt_as_block lx =
  match parse_stmt lx with Ast.Block stmts -> stmts | s -> [ s ]

and parse_block_tail lx =
  let stmts = ref [] in
  while not (accept_punct lx "}") do
    stmts := parse_stmt lx :: !stmts
  done;
  List.rev !stmts

(* ---------------- top level ---------------- *)

let parse_top lx (globals, funcs, externs) =
  match Lexer.peek lx with
  | Lexer.KW "extern" ->
    ignore (Lexer.next lx);
    let xret = parse_ty lx in
    let xname = ident lx in
    expect_punct lx "(";
    let params = ref [] in
    (if not (accept_punct lx ")") then
       let rec go () =
         let pty = parse_ty lx in
         (* parameter name is optional in a declaration *)
         (match Lexer.peek lx with
         | Lexer.IDENT _ -> ignore (Lexer.next lx)
         | _ -> ());
         params := pty :: !params;
         if accept_punct lx "," then go () else expect_punct lx ")"
       in
       go ());
    expect_punct lx ";";
    ( globals,
      funcs,
      { Ast.xname; xret; xparams = List.rev !params } :: externs )
  | _ ->
  let ty = parse_ty lx in
  let name = ident lx in
  if accept_punct lx "(" then (
    let params = ref [] in
    (if not (accept_punct lx ")") then
       let rec go () =
         let pty = parse_ty lx in
         let pname = ident lx in
         params := (pty, pname) :: !params;
         if accept_punct lx "," then go () else expect_punct lx ")"
       in
       go ());
    expect_punct lx "{";
    let body = parse_block_tail lx in
    ( globals,
      { Ast.fname = name; fret = ty; fparams = List.rev !params; fbody = body }
      :: funcs,
      externs ))
  else
    let ty =
      if accept_punct lx "[" then (
        match Lexer.next lx with
        | Lexer.INT (n, _) ->
          expect_punct lx "]";
          Ast.Arr (ty, Int64.to_int n)
        | t -> fail lx "expected array size, got %s" (Lexer.token_to_string t))
      else ty
    in
    let init =
      if accept_punct lx "=" then
        if accept_punct lx "{" then (
          let elems = ref [] in
          (if not (accept_punct lx "}") then
             let rec go () =
               elems := parse_expr lx :: !elems;
               if accept_punct lx "," then go () else expect_punct lx "}"
             in
             go ());
          Some (List.rev !elems))
        else Some [ parse_expr lx ]
      else None
    in
    expect_punct lx ";";
    ({ Ast.gname = name; gty = ty; ginit = init } :: globals, funcs, externs)

(** Parse a full MiniC translation unit.
    @raise Error or {!Lexer.Error} on malformed input. *)
let program (src : string) : Ast.program =
  let lx = Lexer.tokenize src in
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.EOF ->
      let globals, funcs, externs = acc in
      {
        Ast.globals = List.rev globals;
        funcs = List.rev funcs;
        externs = List.rev externs;
      }
    | _ -> go (parse_top lx acc)
  in
  go ([], [], [])

(** Parse a single expression (for tests). *)
let expr (src : string) : Ast.expr =
  let lx = Lexer.tokenize src in
  let e = parse_expr lx in
  (match Lexer.peek lx with
  | Lexer.EOF -> ()
  | t -> fail lx "trailing tokens after expression: %s" (Lexer.token_to_string t));
  e
