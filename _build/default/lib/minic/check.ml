(** Type checker for MiniC.

    Produces a typed AST with every implicit conversion made explicit, so
    that lowering to PVIR is a mechanical traversal.  Conversion rules (a
    simplification of C's, documented in {!Ast}): arithmetic happens at the
    wider operand type; equal-width mixed-signedness picks unsigned; integer
    widening sign-extends iff the source is signed; floats win over
    integers.  Pointer arithmetic scales by the element size. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---------------- typed AST ---------------- *)

type lval =
  | Lvar of string  (** scalar local or parameter *)
  | Lmem of texpr * Ast.ty  (** address expression, element type *)

and texpr = { desc : desc; ty : Ast.ty }

and desc =
  | Tint of int64
  | Tfloat of float
  | Tread of lval  (** rvalue read *)
  | Taddr of string  (** address of array variable (decay) *)
  | Tconv of Pvir.Instr.conv * texpr
  | Tretype of texpr  (** same bits, different MiniC type (sign changes) *)
  | Tunary of Ast.unop * texpr
  | Tbinary of Ast.binop * texpr * texpr
  | Tternary of texpr * texpr * texpr
  | Tcall of string * texpr list

type tstmt =
  | Sdecl of Ast.ty * string * texpr option
  | Sassign of lval * texpr
  | Sexpr of texpr
  | Sif of texpr * tstmt list * tstmt list
  | Swhile of texpr * tstmt list
  | Sfor of tstmt option * texpr option * tstmt option * tstmt list
  | Sreturn of texpr option
  | Sbreak
  | Scontinue

type tfunc = {
  fname : string;
  fret : Ast.ty;
  fparams : (Ast.ty * string) list;
  fbody : tstmt list;
}

type tglobal = { gname : string; gelem : Ast.ty; gcount : int; ginit : texpr list option }

type tprogram = {
  globals : tglobal list;
  funcs : tfunc list;
  externs : Ast.extern_decl list;
}

(* ---------------- environments ---------------- *)

type env = {
  vars : (string, Ast.ty) Hashtbl.t;  (** locals and params, innermost wins *)
  globals : (string, Ast.ty) Hashtbl.t;
  funcs : (string, Ast.ty list * Ast.ty) Hashtbl.t;
  mutable ret : Ast.ty;
}

(** Built-in functions available to every MiniC program.  [__min]/[__max]
    are polymorphic over arithmetic types (resolved at the call site);
    the print intrinsics map to VM intrinsics. *)
let builtins = [ ("print_i64", ([ Ast.Int (Pvir.Types.I64, true) ], Ast.Void));
                 ("print_f64", ([ Ast.Flt Pvir.Types.F64 ], Ast.Void)) ]

(* ---------------- conversions ---------------- *)

let rec decay (t : Ast.ty) =
  match t with Ast.Arr (elem, _) -> Ast.Ptr (decay elem) | t -> t

(** [coerce e ty] converts typed expression [e] to type [ty], inserting the
    right conversion node.  Fails when no implicit conversion exists. *)
let coerce (e : texpr) (ty : Ast.ty) : texpr =
  if Ast.ty_equal e.ty ty then e
  else
    match (e.ty, ty) with
    | Ast.Int (s1, signed1), Ast.Int (s2, _) ->
      let w1 = Pvir.Types.scalar_size s1 and w2 = Pvir.Types.scalar_size s2 in
      if w1 = w2 then { desc = Tretype e; ty }
      else if w1 < w2 then
        let kind = if signed1 then Pvir.Instr.Sext else Pvir.Instr.Zext in
        { desc = Tconv (kind, e); ty }
      else { desc = Tconv (Pvir.Instr.Trunc, e); ty }
    | Ast.Int (_, signed1), Ast.Flt _ ->
      let kind = if signed1 then Pvir.Instr.Sitofp else Pvir.Instr.Uitofp in
      { desc = Tconv (kind, e); ty }
    | Ast.Flt _, Ast.Int (_, signed2) ->
      let kind = if signed2 then Pvir.Instr.Fptosi else Pvir.Instr.Fptoui in
      { desc = Tconv (kind, e); ty }
    | Ast.Flt s1, Ast.Flt s2 when s1 <> s2 -> { desc = Tconv (Pvir.Instr.Fpconv, e); ty }
    | Ast.Ptr _, Ast.Ptr _ -> { desc = Tretype e; ty }
    | Ast.Ptr _, Ast.Int (Pvir.Types.I64, _) -> { desc = Tretype e; ty }
    | Ast.Int (Pvir.Types.I64, _), Ast.Ptr _ -> { desc = Tretype e; ty }
    | _ ->
      fail "cannot convert %s to %s" (Ast.ty_to_string e.ty)
        (Ast.ty_to_string ty)

(** Common arithmetic type of two operand types. *)
let common_ty (a : Ast.ty) (b : Ast.ty) : Ast.ty =
  match (a, b) with
  | Ast.Flt s1, Ast.Flt s2 ->
    if Pvir.Types.scalar_size s1 >= Pvir.Types.scalar_size s2 then a else b
  | Ast.Flt _, Ast.Int _ -> a
  | Ast.Int _, Ast.Flt _ -> b
  | Ast.Int (s1, signed1), Ast.Int (s2, signed2) ->
    let w1 = Pvir.Types.scalar_size s1 and w2 = Pvir.Types.scalar_size s2 in
    if w1 > w2 then a
    else if w2 > w1 then b
    else Ast.Int (s1, signed1 && signed2)
  | _ ->
    fail "no common arithmetic type for %s and %s" (Ast.ty_to_string a)
      (Ast.ty_to_string b)

let i32_ty = Ast.Int (Pvir.Types.I32, true)
let i64_ty = Ast.Int (Pvir.Types.I64, true)

(* ---------------- expression checking ---------------- *)

let lookup_var env name =
  match Hashtbl.find_opt env.vars name with
  | Some t -> Some t
  | None -> Hashtbl.find_opt env.globals name

let rec check_expr env (e : Ast.expr) : texpr =
  match e with
  | Ast.Int_lit (v, Some ty) -> { desc = Tint v; ty }
  | Ast.Int_lit (v, None) ->
    (* fits in i32? then i32, else i64 *)
    let ty =
      if Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0
      then i32_ty
      else i64_ty
    in
    { desc = Tint v; ty }
  | Ast.Float_lit (v, Some ty) -> { desc = Tfloat v; ty }
  | Ast.Float_lit (v, None) -> { desc = Tfloat v; ty = Ast.Flt Pvir.Types.F64 }
  | Ast.Var name -> (
    match lookup_var env name with
    | None -> fail "unknown variable %s" name
    | Some (Ast.Arr _ as t) -> { desc = Taddr name; ty = decay t }
    | Some t when Hashtbl.mem env.vars name -> { desc = Tread (Lvar name); ty = t }
    | Some t ->
      (* scalar global: a memory location, not a register *)
      let addr = { desc = Taddr name; ty = Ast.Ptr t } in
      { desc = Tread (Lmem (addr, t)); ty = t })
  | Ast.Index (base, idx) ->
    let addr, elem = check_address env base idx in
    { desc = Tread (Lmem (addr, elem)); ty = elem }
  | Ast.Deref p ->
    let tp = check_expr env p in
    (match tp.ty with
    | Ast.Ptr elem -> { desc = Tread (Lmem (tp, elem)); ty = elem }
    | t -> fail "cannot dereference %s" (Ast.ty_to_string t))
  | Ast.Unary (op, a) -> check_unary env op a
  | Ast.Binary (op, a, b) -> check_binary env op a b
  | Ast.Ternary (c, a, b) ->
    let tc = check_cond env c in
    let ta = check_expr env a in
    let tb = check_expr env b in
    let ty = common_ty ta.ty tb.ty in
    { desc = Tternary (tc, coerce ta ty, coerce tb ty); ty }
  | Ast.Call (name, args) -> check_call env name args
  | Ast.Cast (ty, a) ->
    let ta = check_expr env a in
    coerce ta ty

(* address of base[idx]; returns (address expression : Ptr elem, elem) *)
and check_address env base idx =
  let tb = check_expr env base in
  let elem =
    match tb.ty with
    | Ast.Ptr elem -> elem
    | t -> fail "cannot index %s" (Ast.ty_to_string t)
  in
  let ti = coerce (check_expr env idx) i64_ty in
  let scale =
    { desc = Tint (Int64.of_int (Ast.width elem)); ty = i64_ty }
  in
  let off = { desc = Tbinary (Ast.Mul, ti, scale); ty = i64_ty } in
  let addr =
    { desc = Tbinary (Ast.Add, coerce tb i64_ty, off); ty = Ast.Ptr elem }
  in
  (addr, elem)

and check_unary env op a =
  let ta = check_expr env a in
  match op with
  | Ast.Neg ->
    if not (Ast.is_arith_ty ta.ty) then
      fail "cannot negate %s" (Ast.ty_to_string ta.ty);
    { desc = Tunary (op, ta); ty = ta.ty }
  | Ast.Bnot ->
    if not (Ast.is_integer_ty ta.ty) then
      fail "~ requires an integer, got %s" (Ast.ty_to_string ta.ty);
    { desc = Tunary (op, ta); ty = ta.ty }
  | Ast.Lnot -> { desc = Tunary (op, ta); ty = i32_ty }

and check_binary env op a b =
  match op with
  | Ast.Land | Ast.Lor ->
    let ta = check_cond env a in
    let tb = check_cond env b in
    { desc = Tbinary (op, ta, tb); ty = i32_ty }
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    let ta = check_expr env a in
    let tb = check_expr env b in
    let ty = common_ty (decay ta.ty) (decay tb.ty) in
    { desc = Tbinary (op, coerce ta ty, coerce tb ty); ty = i32_ty }
  | Ast.Add | Ast.Sub ->
    let ta = check_expr env a in
    let tb = check_expr env b in
    (match (ta.ty, tb.ty) with
    | Ast.Ptr elem, _ when Ast.is_integer_ty tb.ty ->
      check_ptr_arith op ta tb elem
    | _, Ast.Ptr elem when Ast.is_integer_ty ta.ty && op = Ast.Add ->
      check_ptr_arith op tb ta elem
    | _ ->
      let ty = common_ty ta.ty tb.ty in
      { desc = Tbinary (op, coerce ta ty, coerce tb ty); ty })
  | Ast.Mul | Ast.Div | Ast.Rem | Ast.Band | Ast.Bor | Ast.Bxor ->
    let ta = check_expr env a in
    let tb = check_expr env b in
    let ty = common_ty ta.ty tb.ty in
    (match op with
    | Ast.Rem | Ast.Band | Ast.Bor | Ast.Bxor when not (Ast.is_integer_ty ty)
      -> fail "integer operator on %s" (Ast.ty_to_string ty)
    | _ -> ());
    { desc = Tbinary (op, coerce ta ty, coerce tb ty); ty }
  | Ast.Shl | Ast.Shr ->
    let ta = check_expr env a in
    let tb = check_expr env b in
    if not (Ast.is_integer_ty ta.ty && Ast.is_integer_ty tb.ty) then
      fail "shift requires integers";
    { desc = Tbinary (op, ta, coerce tb ta.ty); ty = ta.ty }

and check_ptr_arith op (tp : texpr) (ti : texpr) elem =
  let ti = coerce ti i64_ty in
  let scale = { desc = Tint (Int64.of_int (Ast.width elem)); ty = i64_ty } in
  let off = { desc = Tbinary (Ast.Mul, ti, scale); ty = i64_ty } in
  { desc = Tbinary (op, coerce tp i64_ty, off); ty = tp.ty }

(* conditions: any arithmetic/pointer value; normalized to i32 0/1 *)
and check_cond env e =
  let te = check_expr env e in
  match te.ty with
  | Ast.Int (Pvir.Types.I32, true) -> te
  | Ast.Int _ | Ast.Flt _ | Ast.Ptr _ ->
    let zero =
      if Ast.is_float_ty te.ty then { desc = Tfloat 0.0; ty = te.ty }
      else { desc = Tint 0L; ty = decay te.ty }
    in
    { desc = Tbinary (Ast.Ne, te, zero); ty = i32_ty }
  | t -> fail "invalid condition of type %s" (Ast.ty_to_string t)

and check_call env name args =
  (* polymorphic builtins *)
  match (name, args) with
  | ("__min" | "__max"), [ a; b ] ->
    let ta = check_expr env a in
    let tb = check_expr env b in
    let ty = common_ty ta.ty tb.ty in
    { desc = Tcall (name, [ coerce ta ty; coerce tb ty ]); ty }
  | ("__min" | "__max"), _ -> fail "%s expects 2 arguments" name
  | _ -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> fail "unknown function %s" name
    | Some (param_tys, ret) ->
      if List.length args <> List.length param_tys then
        fail "%s expects %d arguments, got %d" name (List.length param_tys)
          (List.length args);
      let targs =
        List.map2 (fun a ty -> coerce (check_expr env a) ty) args param_tys
      in
      { desc = Tcall (name, targs); ty = ret })

(* ---------------- statements ---------------- *)

let rec check_stmt env (s : Ast.stmt) : tstmt list =
  match s with
  | Ast.Decl (ty, name, init) -> (
    if Hashtbl.mem env.vars name then fail "redeclaration of %s" name;
    match ty with
    | Ast.Arr (elem, n) ->
      if not (Ast.is_arith_ty elem) then
        fail "array of non-arithmetic type %s" (Ast.ty_to_string elem);
      if n <= 0 then fail "array %s has non-positive size" name;
      if init <> None then fail "array initializers only allowed on globals";
      Hashtbl.add env.vars name ty;
      [ Sdecl (ty, name, None) ]
    | Ast.Void -> fail "void variable %s" name
    | _ ->
      let tinit = Option.map (fun e -> coerce (check_expr env e) ty) init in
      Hashtbl.add env.vars name ty;
      [ Sdecl (ty, name, tinit) ])
  | Ast.Assign (lhs, rhs) ->
    let lv, lty = check_lvalue env lhs in
    let trhs = coerce (check_expr env rhs) lty in
    [ Sassign (lv, trhs) ]
  | Ast.Expr_stmt e -> [ Sexpr (check_expr env e) ]
  | Ast.If (c, t, f) ->
    let tc = check_cond env c in
    [ Sif (tc, check_stmts env t, check_stmts env f) ]
  | Ast.While (c, body) ->
    let tc = check_cond env c in
    [ Swhile (tc, check_stmts env body) ]
  | Ast.For (init, cond, step, body) ->
    (* the induction variable declared in the for-header is scoped to the
       loop, so successive loops can all declare `i64 i` *)
    let tinit = Option.map (fun s -> one_stmt env s) init in
    let tcond = Option.map (check_cond env) cond in
    let tstep = Option.map (fun s -> one_stmt env s) step in
    let tbody = check_stmts env body in
    (match init with
    | Some (Ast.Decl (_, name, _)) -> Hashtbl.remove env.vars name
    | _ -> ());
    [ Sfor (tinit, tcond, tstep, tbody) ]
  | Ast.Return None ->
    if env.ret <> Ast.Void then fail "missing return value";
    [ Sreturn None ]
  | Ast.Return (Some e) ->
    if env.ret = Ast.Void then fail "return with value in void function";
    [ Sreturn (Some (coerce (check_expr env e) env.ret)) ]
  | Ast.Block stmts -> check_stmts env stmts
  | Ast.Break -> [ Sbreak ]
  | Ast.Continue -> [ Scontinue ]

and one_stmt env s =
  match check_stmt env s with
  | [ t ] -> t
  | _ -> fail "compound statement not allowed here"

and check_stmts env stmts = List.concat_map (check_stmt env) stmts

and check_lvalue env (e : Ast.expr) : lval * Ast.ty =
  match e with
  | Ast.Var name -> (
    match lookup_var env name with
    | None -> fail "unknown variable %s" name
    | Some (Ast.Arr _) -> fail "cannot assign to array %s" name
    | Some t ->
      if Hashtbl.mem env.vars name then (Lvar name, t)
      else
        (* scalar global: memory location *)
        let addr = { desc = Taddr name; ty = Ast.Ptr t } in
        (Lmem (addr, t), t))
  | Ast.Index (base, idx) ->
    let addr, elem = check_address env base idx in
    (Lmem (addr, elem), elem)
  | Ast.Deref p -> (
    let tp = check_expr env p in
    match tp.ty with
    | Ast.Ptr elem -> (Lmem (tp, elem), elem)
    | t -> fail "cannot dereference %s" (Ast.ty_to_string t))
  | _ -> fail "invalid lvalue"

(* ---------------- top level ---------------- *)

let const_fold_init (e : texpr) : Pvir.Value.t =
  let rec go (e : texpr) =
    match e.desc with
    | Tint v -> Pvir.Value.int (Ast.scalar_of_ty e.ty) v
    | Tfloat v -> Pvir.Value.float (Ast.scalar_of_ty e.ty) v
    | Tunary (Ast.Neg, a) -> Pvir.Eval.unop Pvir.Instr.Neg (go a)
    | Tconv (kind, a) ->
      Pvir.Eval.conv kind (Pvir.Types.Scalar (Ast.scalar_of_ty e.ty)) (go a)
    | Tretype a -> go a
    | _ -> fail "global initializer must be a constant expression"
  in
  go e

(** Type-check a parsed program.
    @raise Error on type errors. *)
let program (p : Ast.program) : tprogram =
  let genv = Hashtbl.create 16 in
  let fenv = Hashtbl.create 16 in
  List.iter (fun (n, (ps, r)) -> Hashtbl.replace fenv n (ps, r)) builtins;
  List.iter
    (fun (g : Ast.global) ->
      if Hashtbl.mem genv g.gname then fail "redeclaration of global %s" g.gname;
      Hashtbl.replace genv g.gname g.gty)
    p.globals;
  List.iter
    (fun (x : Ast.extern_decl) ->
      (match Hashtbl.find_opt fenv x.xname with
      | Some (ps, r)
        when List.mem (x.xname, (ps, r)) builtins
             && ps = List.map decay x.xparams && r = x.xret ->
        (* re-declaring a VM intrinsic with the right signature is fine *)
        ()
      | Some _ -> fail "redeclaration of extern %s" x.xname
      | None -> ());
      List.iter
        (fun t ->
          if not (Ast.is_arith_ty (decay t) || Ast.is_pointer_ty (decay t)) then
            fail "extern %s has an unsupported parameter type" x.xname)
        x.xparams;
      Hashtbl.replace fenv x.xname (List.map decay x.xparams, x.xret))
    p.externs;
  List.iter
    (fun (f : Ast.func) ->
      if Hashtbl.mem fenv f.fname then fail "redeclaration of function %s" f.fname;
      Hashtbl.replace fenv f.fname (List.map (fun (t, _) -> decay t) f.fparams, f.fret))
    p.funcs;
  let globals =
    List.map
      (fun (g : Ast.global) ->
        let elem, count =
          match g.gty with
          | Ast.Arr (elem, n) ->
            if not (Ast.is_arith_ty elem) then
              fail "global array %s of non-arithmetic type" g.gname;
            (elem, n)
          | t when Ast.is_arith_ty t -> (t, 1)
          | t -> fail "unsupported global type %s" (Ast.ty_to_string t)
        in
        let env = { vars = Hashtbl.create 1; globals = genv; funcs = fenv; ret = Ast.Void } in
        let ginit =
          Option.map
            (fun exprs ->
              if List.length exprs > count then
                fail "too many initializers for %s" g.gname;
              List.map (fun e -> coerce (check_expr env e) elem) exprs)
            g.ginit
        in
        { gname = g.gname; gelem = elem; gcount = count; ginit })
      p.globals
  in
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        let env =
          { vars = Hashtbl.create 16; globals = genv; funcs = fenv; ret = f.fret }
        in
        let fparams = List.map (fun (t, n) -> (decay t, n)) f.fparams in
        List.iter
          (fun (t, n) ->
            if Hashtbl.mem env.vars n then fail "duplicate parameter %s" n;
            Hashtbl.add env.vars n t)
          fparams;
        { fname = f.fname; fret = f.fret; fparams; fbody = check_stmts env f.fbody })
      p.funcs
  in
  { globals; funcs; externs = p.externs }
