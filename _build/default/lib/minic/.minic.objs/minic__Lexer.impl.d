lib/minic/lexer.ml: Array Int64 List Printf String
