lib/minic/ast.ml: Printf Pvir String
