lib/minic/lower.ml: Array Ast Builder Check Func Hashtbl Instr List Option Parser Printf Prog Pvir Types Value Verify
