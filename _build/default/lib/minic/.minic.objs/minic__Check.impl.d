lib/minic/check.ml: Ast Hashtbl Int64 List Option Printf Pvir
