(** Abstract syntax of MiniC, the C-subset input language of the offline
    compiler.

    MiniC covers the low-level imperative style the paper targets: sized
    integer and float types (signed and unsigned), pointers, arrays, loops
    and straightforward arithmetic.  One deliberate deviation from ISO C is
    that arithmetic happens at the *natural width* of the operands (no
    promotion of everything to [int]): [u8 + u8] stays an 8-bit operation.
    This keeps narrow computations narrow in the IR, which is what gives the
    auto-vectorizer its 16-lane opportunities on byte data — the same
    property the paper's CLI tool chain obtains from its typed bytecode. *)

type ty =
  | Void
  | Int of Pvir.Types.scalar * bool  (** scalar, signed? *)
  | Flt of Pvir.Types.scalar
  | Ptr of ty
  | Arr of ty * int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | Band
  | Bor
  | Bxor
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land  (** short-circuit && *)
  | Lor  (** short-circuit || *)

type unop = Neg | Lnot | Bnot

type expr =
  | Int_lit of int64 * ty option  (** value, optional suffix type *)
  | Float_lit of float * ty option
  | Var of string
  | Index of expr * expr  (** a[i] *)
  | Deref of expr  (** *p *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Ternary of expr * expr * expr
  | Call of string * expr list
  | Cast of ty * expr

type stmt =
  | Decl of ty * string * expr option
  | Assign of expr * expr  (** lvalue (Var/Index/Deref), rvalue *)
  | Expr_stmt of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Block of stmt list
  | Break
  | Continue

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fbody : stmt list;
}

type global = {
  gname : string;
  gty : ty;  (** scalar or array type *)
  ginit : expr list option;
}

(** Declaration of a function defined in another compilation unit
    ([extern i32 f(i32 x);]); resolved by the install-time linker. *)
type extern_decl = { xname : string; xret : ty; xparams : ty list }

type program = {
  globals : global list;
  funcs : func list;
  externs : extern_decl list;
}

let rec ty_to_string = function
  | Void -> "void"
  | Int (s, signed) ->
    let base = Pvir.Types.scalar_name s in
    if signed then base else "u" ^ String.sub base 1 (String.length base - 1)
  | Flt s -> Pvir.Types.scalar_name s
  | Ptr t -> ty_to_string t ^ "*"
  | Arr (t, n) -> Printf.sprintf "%s[%d]" (ty_to_string t) n

let is_integer_ty = function Int _ -> true | _ -> false
let is_float_ty = function Flt _ -> true | _ -> false
let is_arith_ty t = is_integer_ty t || is_float_ty t
let is_pointer_ty = function Ptr _ -> true | _ -> false

let is_signed = function
  | Int (_, signed) -> signed
  | Flt _ -> true
  | Void | Ptr _ | Arr _ -> false

(** Width in bytes of an arithmetic type. *)
let width = function
  | Int (s, _) | Flt s -> Pvir.Types.scalar_size s
  | Void | Ptr _ | Arr _ -> invalid_arg "Ast.width: not arithmetic"

(** The PVIR scalar underlying an arithmetic or pointer type. *)
let scalar_of_ty = function
  | Int (s, _) | Flt s -> s
  | Ptr _ -> Pvir.Types.I64
  | Void | Arr _ -> invalid_arg "Ast.scalar_of_ty"

let ty_equal (a : ty) (b : ty) = a = b
