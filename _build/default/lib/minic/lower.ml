(** Lowering from the typed MiniC AST to PVIR.

    This is the first half of the paper's Figure-1 flow: the
    µproc-independent compiler that turns source code into portable
    bytecode.  No optimization happens here — that is the job of the
    offline pass pipeline (`Pvopt`), which runs on the produced IR. *)

open Pvir

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type ctx = {
  b : Builder.t;
  vars : (string, Instr.reg) Hashtbl.t;  (** scalar locals -> registers *)
  arrays : (string, Instr.reg) Hashtbl.t;  (** local arrays -> alloca reg *)
  (* (continue target, break target) stack, innermost first *)
  mutable loop_stack : (Func.block * Func.block) list;
}

let ir_ty (t : Ast.ty) : Types.t =
  match t with
  | Ast.Int (s, _) -> Types.Scalar s
  | Ast.Flt s -> Types.Scalar s
  | Ast.Ptr elem -> (
    match elem with
    | Ast.Int (s, _) | Ast.Flt s -> Types.Ptr s
    | _ -> Types.ptr Types.I64 (* pointer to pointer: address-sized *))
  | Ast.Void | Ast.Arr _ -> fail "ir_ty: %s has no IR type" (Ast.ty_to_string t)

(* binop selection honoring MiniC signedness *)
let ir_binop (op : Ast.binop) (t : Ast.ty) : Instr.binop =
  let unsigned = Ast.is_integer_ty t && not (Ast.is_signed t) in
  match op with
  | Ast.Add -> Instr.Add
  | Ast.Sub -> Instr.Sub
  | Ast.Mul -> Instr.Mul
  | Ast.Div -> if unsigned then Instr.Udiv else Instr.Div
  | Ast.Rem -> if unsigned then Instr.Urem else Instr.Rem
  | Ast.Shl -> Instr.Shl
  | Ast.Shr -> if unsigned then Instr.Lshr else Instr.Ashr
  | Ast.Band -> Instr.And
  | Ast.Bor -> Instr.Or
  | Ast.Bxor -> Instr.Xor
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Land | Ast.Lor
    -> fail "ir_binop: not an arithmetic operator"

let ir_relop (op : Ast.binop) (operand_ty : Ast.ty) : Instr.relop =
  let unsigned =
    (Ast.is_integer_ty operand_ty && not (Ast.is_signed operand_ty))
    || Ast.is_pointer_ty operand_ty
  in
  match op with
  | Ast.Eq -> Instr.Eq
  | Ast.Ne -> Instr.Ne
  | Ast.Lt -> if unsigned then Instr.Ult else Instr.Slt
  | Ast.Le -> if unsigned then Instr.Ule else Instr.Sle
  | Ast.Gt -> if unsigned then Instr.Ugt else Instr.Sgt
  | Ast.Ge -> if unsigned then Instr.Uge else Instr.Sge
  | _ -> fail "ir_relop: not a comparison"

let rec is_pure (e : Check.texpr) =
  match e.desc with
  | Check.Tint _ | Check.Tfloat _ | Check.Taddr _ -> true
  | Check.Tread (Check.Lvar _) -> true
  | Check.Tread (Check.Lmem (a, _)) -> is_pure a
  | Check.Tconv (_, a) | Check.Tretype a | Check.Tunary (_, a) -> is_pure a
  | Check.Tbinary (_, a, b) -> is_pure a && is_pure b
  | Check.Tternary (c, a, b) -> is_pure c && is_pure a && is_pure b
  | Check.Tcall (("__min" | "__max"), args) -> List.for_all is_pure args
  | Check.Tcall _ -> false

(* ---------------- expressions ---------------- *)

let rec lower_expr ctx (e : Check.texpr) : Instr.reg =
  let b = ctx.b in
  match e.desc with
  | Check.Tint v -> Builder.const b (Value.int (Ast.scalar_of_ty e.ty) v)
  | Check.Tfloat v -> Builder.const b (Value.float (Ast.scalar_of_ty e.ty) v)
  | Check.Tread (Check.Lvar name) -> (
    match Hashtbl.find_opt ctx.vars name with
    | Some r -> r
    | None -> fail "lower: unbound variable %s" name)
  | Check.Tread (Check.Lmem (addr, elem)) ->
    let base = lower_expr ctx addr in
    Builder.load b (ir_ty elem) ~base ()
  | Check.Taddr name -> (
    match Hashtbl.find_opt ctx.arrays name with
    | Some r -> r
    | None ->
      let d = Func.fresh_reg (Builder.func b) (ir_ty e.ty) in
      Builder.append b (Instr.Gaddr (d, name));
      d)
  | Check.Tconv (kind, a) ->
    let src = lower_expr ctx a in
    Builder.conv b kind ~dst_ty:(ir_ty e.ty) src
  | Check.Tretype a -> lower_expr ctx a
  | Check.Tunary (Ast.Neg, a) -> Builder.unop b Instr.Neg (lower_expr ctx a)
  | Check.Tunary (Ast.Bnot, a) -> Builder.unop b Instr.Not (lower_expr ctx a)
  | Check.Tunary (Ast.Lnot, a) ->
    let ra = lower_expr ctx a in
    let zero = Builder.const b (Value.zero (Func.reg_type (Builder.func b) ra)) in
    Builder.cmp b Instr.Eq ra zero
  | Check.Tbinary ((Ast.Land | Ast.Lor) as op, a, rhs) ->
    lower_short_circuit ctx op a rhs
  | Check.Tbinary (op, a, bb) -> (
    match op with
    | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
      let ra = lower_expr ctx a in
      let rb = lower_expr ctx bb in
      Builder.cmp b (ir_relop op a.ty) ra rb
    | _ ->
      let ra = lower_expr ctx a in
      let rb = lower_expr ctx bb in
      Builder.binop b (ir_binop op e.ty) ra rb)
  | Check.Tternary (c, a, bb) when is_pure a && is_pure bb ->
    (* if-conversion: pure branches lower to select, which keeps loop
       bodies branch-free and vectorizable (the `max u8` kernel shape) *)
    let rc = lower_expr ctx c in
    let ra = lower_expr ctx a in
    let rb = lower_expr ctx bb in
    Builder.select b rc ra rb
  | Check.Tternary (c, a, bb) ->
    let rc = lower_expr ctx c in
    let fn = Builder.func b in
    let dst = Func.fresh_reg fn (ir_ty e.ty) in
    let bt = Builder.new_block b in
    let bf = Builder.new_block b in
    let join = Builder.new_block b in
    Builder.cbr b rc bt bf;
    Builder.position b bt;
    let ra = lower_expr ctx a in
    Builder.append b (Instr.Mov (dst, ra));
    Builder.br b join;
    Builder.position b bf;
    let rb = lower_expr ctx bb in
    Builder.append b (Instr.Mov (dst, rb));
    Builder.br b join;
    Builder.position b join;
    dst
  | Check.Tcall (("__min" | "__max") as name, [ a; bb ]) ->
    let unsigned = Ast.is_integer_ty e.ty && not (Ast.is_signed e.ty) in
    let op =
      match (name, unsigned) with
      | "__min", false -> Instr.Min
      | "__min", true -> Instr.Umin
      | "__max", false -> Instr.Max
      | _ -> Instr.Umax
    in
    let ra = lower_expr ctx a in
    let rb = lower_expr ctx bb in
    Builder.binop b op ra rb
  | Check.Tcall (name, args) -> (
    let rargs = List.map (lower_expr ctx) args in
    let ret = if e.ty = Ast.Void then None else Some (ir_ty e.ty) in
    match Builder.call b ?ret name rargs with
    | Some r -> r
    | None ->
      (* void call in expression position: produce a dummy zero *)
      Builder.const b (Value.i32 0))

and lower_short_circuit ctx op a bb =
  let b = ctx.b in
  let fn = Builder.func b in
  let dst = Func.fresh_reg fn Types.i32 in
  let eval_b = Builder.new_block b in
  let done_ = Builder.new_block b in
  let ra = lower_expr ctx a in
  Builder.append b (Instr.Mov (dst, ra));
  (match op with
  | Ast.Land -> Builder.cbr b ra eval_b done_
  | _ -> Builder.cbr b ra done_ eval_b);
  Builder.position b eval_b;
  let rb = lower_expr ctx bb in
  Builder.append b (Instr.Mov (dst, rb));
  Builder.br b done_;
  Builder.position b done_;
  dst

(* ---------------- statements ---------------- *)

let rec lower_stmt ctx (s : Check.tstmt) : unit =
  let b = ctx.b in
  match s with
  | Check.Sdecl (Ast.Arr (elem, n), name, _) ->
    let r = Builder.alloca b ~elem:(Ast.scalar_of_ty elem) ~count:n in
    Hashtbl.replace ctx.arrays name r
  | Check.Sdecl (ty, name, init) ->
    let fn = Builder.func b in
    let r = Func.fresh_reg fn (ir_ty ty) in
    Hashtbl.replace ctx.vars name r;
    let src =
      match init with
      | Some e -> lower_expr ctx e
      | None -> Builder.const b (Value.zero (ir_ty ty))
    in
    Builder.append b (Instr.Mov (r, src))
  | Check.Sassign (Check.Lvar name, e) -> (
    match Hashtbl.find_opt ctx.vars name with
    | Some r ->
      let src = lower_expr ctx e in
      Builder.append b (Instr.Mov (r, src))
    | None -> fail "lower: unbound variable %s" name)
  | Check.Sassign (Check.Lmem (addr, elem), e) ->
    let src = lower_expr ctx e in
    let base = lower_expr ctx addr in
    Builder.store b (ir_ty elem) ~src ~base ()
  | Check.Sexpr e -> ignore (lower_expr ctx e)
  | Check.Sif (c, then_s, else_s) ->
    let rc = lower_expr ctx c in
    let bt = Builder.new_block b in
    let bf = Builder.new_block b in
    let join = Builder.new_block b in
    Builder.cbr b rc bt (if else_s = [] then join else bf);
    Builder.position b bt;
    List.iter (lower_stmt ctx) then_s;
    Builder.br b join;
    if else_s <> [] then (
      Builder.position b bf;
      List.iter (lower_stmt ctx) else_s;
      Builder.br b join);
    Builder.position b join
  | Check.Swhile (c, body) ->
    let header = Builder.new_block b in
    let body_blk = Builder.new_block b in
    let exit_blk = Builder.new_block b in
    Builder.br b header;
    Builder.position b header;
    let rc = lower_expr ctx c in
    Builder.cbr b rc body_blk exit_blk;
    Builder.position b body_blk;
    ctx.loop_stack <- (header, exit_blk) :: ctx.loop_stack;
    List.iter (lower_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    Builder.br b header;
    Builder.position b exit_blk
  | Check.Sfor (init, cond, step, body) ->
    Option.iter (lower_stmt ctx) init;
    let header = Builder.new_block b in
    let body_blk = Builder.new_block b in
    let step_blk = Builder.new_block b in
    let exit_blk = Builder.new_block b in
    Builder.br b header;
    Builder.position b header;
    (match cond with
    | Some c ->
      let rc = lower_expr ctx c in
      Builder.cbr b rc body_blk exit_blk
    | None -> Builder.br b body_blk);
    Builder.position b body_blk;
    ctx.loop_stack <- (step_blk, exit_blk) :: ctx.loop_stack;
    List.iter (lower_stmt ctx) body;
    ctx.loop_stack <- List.tl ctx.loop_stack;
    Builder.br b step_blk;
    Builder.position b step_blk;
    Option.iter (lower_stmt ctx) step;
    Builder.br b header;
    Builder.position b exit_blk
  | Check.Sreturn None -> seal_ret ctx None
  | Check.Sreturn (Some e) ->
    let r = lower_expr ctx e in
    seal_ret ctx (Some r)
  | Check.Sbreak -> (
    match ctx.loop_stack with
    | (_, exit_blk) :: _ ->
      Builder.br b exit_blk;
      Builder.position b (Builder.new_block b)
    | [] -> fail "break outside loop")
  | Check.Scontinue -> (
    match ctx.loop_stack with
    | (cont, _) :: _ ->
      Builder.br b cont;
      Builder.position b (Builder.new_block b)
    | [] -> fail "continue outside loop")

(* after a return, later statements in the block go to a fresh dead block *)
and seal_ret ctx r =
  Builder.ret ctx.b r;
  Builder.position ctx.b (Builder.new_block ctx.b)

(* ---------------- top level ---------------- *)

let lower_func (f : Check.tfunc) : Func.t =
  let params = List.map (fun (t, _) -> ir_ty t) f.fparams in
  let ret = if f.fret = Ast.Void then None else Some (ir_ty f.fret) in
  let b = Builder.create ~name:f.fname ~params ~ret in
  let ctx =
    { b; vars = Hashtbl.create 16; arrays = Hashtbl.create 4; loop_stack = [] }
  in
  List.iteri
    (fun i (_, name) -> Hashtbl.replace ctx.vars name (List.nth (Builder.params b) i))
    f.fparams;
  List.iter (lower_stmt ctx) f.fbody;
  let fn = Builder.func b in
  (* Blocks still carrying the default [Ret None] terminator are either
     the fall-off-the-end path or dead continuations created after
     break/continue/return.  In a non-void function they must still
     verify, so they return a zero of the right type. *)
  if f.fret <> Ast.Void then
    List.iter
      (fun (blk : Func.block) ->
        if blk.Func.term = Instr.Ret None then begin
          let z = Func.fresh_reg fn (ir_ty f.fret) in
          blk.Func.instrs <-
            blk.Func.instrs @ [ Instr.Const (z, Value.zero (ir_ty f.fret)) ];
          blk.Func.term <- Instr.Ret (Some z)
        end)
      fn.Func.blocks;
  fn

(** Compile a type-checked program to PVIR.  The result passes
    {!Pvir.Verify.program}. *)
let program ?(name = "minic") (tp : Check.tprogram) : Prog.t =
  let p = Prog.create name in
  List.iter
    (fun (g : Check.tglobal) ->
      let elem = Ast.scalar_of_ty g.gelem in
      let init =
        Option.map
          (fun exprs ->
            let vals = List.map Check.const_fold_init exprs in
            let arr = Array.make g.gcount (Value.zero (Types.Scalar elem)) in
            List.iteri (fun i v -> arr.(i) <- v) vals;
            arr)
          g.ginit
      in
      Prog.add_global p g.gname elem g.gcount ?init)
    tp.globals;
  List.iter
    (fun (x : Ast.extern_decl) ->
      let params = List.map (fun t -> ir_ty (Check.decay t)) x.Ast.xparams in
      let ret = if x.Ast.xret = Ast.Void then None else Some (ir_ty x.Ast.xret) in
      Prog.add_extern p x.Ast.xname params ret)
    tp.externs;
  List.iter (fun f -> Prog.add_func p (lower_func f)) tp.funcs;
  p

(** One-call frontend: source text to verified PVIR. *)
let compile ?(name = "minic") (src : string) : Prog.t =
  let ast = Parser.program src in
  let typed = Check.program ast in
  let p = program ~name typed in
  Verify.program p;
  p
