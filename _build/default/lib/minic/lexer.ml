(** Hand-written lexer for MiniC.  Tracks line numbers for error
    messages. *)

type token =
  | INT of int64 * bool  (** value, has 'L' suffix *)
  | FLOAT of float * bool  (** value, has 'f' suffix *)
  | IDENT of string
  | KW of string  (** keywords and type names *)
  | PUNCT of string  (** operators and punctuation, longest-match *)
  | EOF

type t = { tokens : (token * int) array; mutable pos : int }

exception Error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Error (Printf.sprintf "line %d: %s" line s))) fmt

let keywords =
  [
    "void"; "i8"; "i16"; "i32"; "i64"; "u8"; "u16"; "u32"; "u64"; "f32";
    "f64"; "if"; "else"; "while"; "for"; "return"; "break"; "continue";
    "extern";
  ]

let two_char_puncts =
  [
    "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^="; "++"; "--";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : t =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let push t = out := (t, !line) :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (
      incr line;
      incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && peek 1 = Some '/' then
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && peek 1 = Some '*' then (
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then fail !line "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then (
          i := !i + 2;
          fin := true)
        else (
          if src.[!i] = '\n' then incr line;
          incr i)
      done)
    else if is_digit c then (
      let start = !i in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then i := !i + 2;
      let is_float = ref false in
      let fin = ref false in
      while not !fin && !i < n do
        let d = src.[!i] in
        if
          is_digit d
          || (hex && ((d >= 'a' && d <= 'f') || (d >= 'A' && d <= 'F')))
        then incr i
        else if d = '.' && not hex then (
          is_float := true;
          incr i)
        else if (d = 'e' || d = 'E') && not hex then (
          is_float := true;
          incr i;
          match peek 0 with Some ('+' | '-') -> incr i | _ -> ())
        else fin := true
      done;
      let text = String.sub src start (!i - start) in
      if !is_float then (
        let suffix = peek 0 = Some 'f' in
        if suffix then incr i;
        match float_of_string_opt text with
        | Some v -> push (FLOAT (v, suffix))
        | None -> fail !line "bad float literal %s" text)
      else
        let suffix = peek 0 = Some 'L' || peek 0 = Some 'l' in
        if suffix then incr i;
        match Int64.of_string_opt text with
        | Some v -> push (INT (v, suffix))
        | None -> fail !line "bad integer literal %s" text)
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let w = String.sub src start (!i - start) in
      if List.mem w keywords then push (KW w) else push (IDENT w))
    else
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some p when List.mem p two_char_puncts ->
        push (PUNCT p);
        i := !i + 2
      | _ ->
        (match c with
        | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '!' | '<'
        | '>' | '=' | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' | '?'
        | ':' -> push (PUNCT (String.make 1 c))
        | _ -> fail !line "unexpected character %C" c);
        incr i
  done;
  push EOF;
  { tokens = Array.of_list (List.rev !out); pos = 0 }

let peek lx = fst lx.tokens.(lx.pos)
let peek2 lx =
  if lx.pos + 1 < Array.length lx.tokens then fst lx.tokens.(lx.pos + 1)
  else EOF
let line lx = snd lx.tokens.(lx.pos)

let next lx =
  let t = peek lx in
  if lx.pos + 1 < Array.length lx.tokens then lx.pos <- lx.pos + 1;
  t

let token_to_string = function
  | INT (v, _) -> Int64.to_string v
  | FLOAT (v, _) -> string_of_float v
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "<eof>"
