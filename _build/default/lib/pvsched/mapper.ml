(** Heterogeneous mapping of process networks onto multicore platforms.

    Implements the paper's §3 scenario: "the JIT compiler for an IBM Cell
    processor could process the same code and decide to offload some of the
    numerical computations to a vector accelerator (SPU), running the
    control-oriented code on the PowerPC core."  Because the final code
    generation happens at run time, the mapper knows the actual platform;
    because the bytecode carries {!Pvir.Annot.key_hw_prefs} annotations, it
    knows what each kernel wants.

    The makespan simulation is a simple list schedule over the KPN firing
    trace: a firing starts when its core is free and all its input tokens
    have arrived (plus an inter-core transfer latency when producer and
    consumer sit on different cores). *)

type core = {
  cname : string;
  machine : Pvmach.Machine.t;
}

type platform = {
  cores : core list;
  transfer_cost : int;  (** cycles to move one token between cores *)
}

(** Per-(process, core) firing cost in cycles.  Typically obtained by
    JIT-compiling the process kernel for each core's machine and measuring
    (or statically estimating) it — see the offload example. *)
type cost_model = Kpn.process -> core -> int

type placement = (string * core) list  (** process name -> core *)

let core_of (pl : placement) (p : Kpn.process) =
  match List.assoc_opt p.Kpn.pname pl with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Mapper.core_of: %s unplaced" p.Kpn.pname)

(** Greedy annotation- and load-aware placement.  Processes are placed
    heaviest-first; each goes to the core minimizing
    [accumulated load + firing cost], with hardware-preference
    satisfaction breaking ties.  The load term spreads parallel numeric
    stages across multiple accelerators instead of piling them onto the
    single cheapest core. *)
let place (platform : platform) (cost : cost_model) (ps : Kpn.process list) :
    placement =
  if platform.cores = [] then invalid_arg "Mapper.place: empty platform";
  let load = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace load c.cname 0) platform.cores;
  (* heaviest processes first so they get first pick of the fast cores *)
  let by_weight =
    List.stable_sort
      (fun (a : Kpn.process) (b : Kpn.process) -> compare b.Kpn.work a.Kpn.work)
      ps
  in
  let placed =
    List.map
      (fun (p : Kpn.process) ->
        let prefs =
          match Pvir.Annot.find_list Pvir.Annot.key_hw_prefs p.Kpn.annots with
          | Some l ->
            List.filter_map
              (function
                | Pvir.Annot.Str s -> Pvmach.Capability.of_string s
                | _ -> None)
              l
          | None -> []
        in
        let score c =
          let prefs_met =
            List.length
              (List.filter (fun cap -> Pvmach.Machine.has_cap c.machine cap) prefs)
          in
          let l = try Hashtbl.find load c.cname with Not_found -> 0 in
          (l + cost p c, -prefs_met)
        in
        let best =
          match platform.cores with
          | c :: rest ->
            List.fold_left
              (fun acc c' -> if score c' < score acc then c' else acc)
              c rest
          | [] -> assert false
        in
        Hashtbl.replace load best.cname
          ((try Hashtbl.find load best.cname with Not_found -> 0)
          + cost p best);
        (p.Kpn.pname, best))
      by_weight
  in
  (* return in the caller's process order *)
  List.map (fun (p : Kpn.process) -> (p.Kpn.pname, List.assoc p.Kpn.pname placed)) ps

(** Place everything on a single core (the baseline the paper's scenario
    contrasts against: third-party code confined to the host). *)
let place_all_on (c : core) (ps : Kpn.process list) : placement =
  List.map (fun (p : Kpn.process) -> (p.Kpn.pname, c)) ps

(** Simulate the makespan of running [net]'s firing trace under a
    placement.  Returns total cycles (on the slowest path). *)
let makespan (platform : platform) (cost : cost_model) (pl : placement)
    (net : Kpn.t) : int64 =
  (* tokens already in a channel before the run are external inputs,
     available at time 0; internally produced tokens come after them *)
  let external_count = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name q -> Hashtbl.replace external_count name (Queue.length q))
    net.Kpn.channels;
  let tr = Kpn.trace net in
  (* core availability and per-channel last-producer info *)
  let core_free = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace core_free c.cname 0L) platform.cores;
  (* time at which the k-th token of each channel is available, plus the
     core that produced it *)
  let chan_tokens : (string, (int64 * string) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let chan_consumed = Hashtbl.create 16 in
  let token_ready chan ~consumer_core =
    let produced =
      match Hashtbl.find_opt chan_tokens chan with
      | Some l -> List.rev !l
      | None -> []
    in
    let k = try Hashtbl.find chan_consumed chan with Not_found -> 0 in
    Hashtbl.replace chan_consumed chan (k + 1);
    let ext = try Hashtbl.find external_count chan with Not_found -> 0 in
    if k < ext then 0L
    else
    match List.nth_opt produced (k - ext) with
    | Some (t, producer_core) ->
      if String.equal producer_core consumer_core then t
      else Int64.add t (Int64.of_int platform.transfer_cost)
    | None -> 0L  (* externally provided input: available at time 0 *)
  in
  let finish = ref 0L in
  List.iter
    (fun ((p : Kpn.process), _) ->
      let core = core_of pl p in
      let inputs_ready =
        List.fold_left
          (fun acc chan -> max acc (token_ready chan ~consumer_core:core.cname))
          0L p.Kpn.inputs
      in
      let free = try Hashtbl.find core_free core.cname with Not_found -> 0L in
      let start = max inputs_ready free in
      let t_end = Int64.add start (Int64.of_int (cost p core)) in
      Hashtbl.replace core_free core.cname t_end;
      List.iter
        (fun chan ->
          let l =
            match Hashtbl.find_opt chan_tokens chan with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace chan_tokens chan l;
              l
          in
          l := (t_end, core.cname) :: !l)
        p.Kpn.outputs;
      if Int64.compare t_end !finish > 0 then finish := t_end)
    tr;
  !finish
