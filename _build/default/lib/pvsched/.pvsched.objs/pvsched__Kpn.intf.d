lib/pvsched/kpn.mli: Hashtbl Pvir Queue
