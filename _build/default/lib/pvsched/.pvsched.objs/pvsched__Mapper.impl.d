lib/pvsched/mapper.ml: Hashtbl Int64 Kpn List Printf Pvir Pvmach Queue String
