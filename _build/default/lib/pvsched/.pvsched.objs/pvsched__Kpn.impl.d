lib/pvsched/kpn.ml: Hashtbl List Printf Pvir Queue
