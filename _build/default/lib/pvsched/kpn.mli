(** Kahn process networks — the deterministic concurrency substrate the
    paper (§4) proposes as the semantic basis for portable parallel
    bytecode.

    Processes connected by unbounded FIFO channels; a process fires when
    every input has a token.  By Kahn's theorem the stream on every
    channel is independent of scheduling order (checked by the property
    tests), which is what makes {!Mapper}'s placement freedom safe. *)

type token = Pvir.Value.t array

type process = {
  pname : string;
  inputs : string list;  (** channels consumed, one token each per firing *)
  outputs : string list;  (** channels produced, one token each per firing *)
  fire : token list -> token list;
      (** pure function: one token per input -> one token per output *)
  annots : Pvir.Annot.t;  (** hardware preferences etc. *)
  work : int;  (** abstract work per firing (for cost models) *)
}

type t = {
  processes : process list;
  mutable channels : (string, token Queue.t) Hashtbl.t;
}

exception Deadlock of string

val create : process list -> t

(** @raise Invalid_argument on an unknown channel name. *)
val channel : t -> string -> token Queue.t

(** Feed an external input token into a channel. *)
val push : t -> string -> token -> unit

(** Drain all tokens currently in a channel, in FIFO order. *)
val drain : t -> string -> token list

val enabled : t -> process -> bool

(** Fire [p] once (inputs must be available). *)
val fire_once : t -> process -> unit

(** Run until no process is enabled; [order] permutes scheduling
    preference (the result is the same for every order).  Returns the
    number of firings.
    @raise Deadlock when [max_firings] is exceeded. *)
val run : ?order:(process list -> process list) -> ?max_firings:int -> t -> int

(** Like {!run}, returning the firing trace in dataflow order:
    [(process, per-process firing index)]. *)
val trace :
  ?order:(process list -> process list) ->
  ?max_firings:int ->
  t ->
  (process * int) list
