(** Kahn process networks.

    The paper (§4) names KPNs as the semantic basis for the "portable,
    deterministic and composable concurrency information" future bytecode
    should carry.  This module implements the deterministic core: processes
    connected by unbounded FIFO channels, each process firing when every
    input has a token.  Determinism — the stream on every channel is
    independent of the scheduling order — is the property the property
    tests check (it is what makes the mapping freedom of {!Mapper} safe).

    Tokens are {!Pvir.Value.t} vectors, so a process can stand for a
    compiled kernel invocation over a block of data. *)

type token = Pvir.Value.t array

type process = {
  pname : string;
  inputs : string list;  (** channel names consumed, one token each *)
  outputs : string list;  (** channel names produced, one token each *)
  fire : token list -> token list;
      (** pure function: one token per input -> one token per output *)
  annots : Pvir.Annot.t;  (** hardware preferences etc. *)
  work : int;  (** abstract work per firing (for cost models) *)
}

type t = {
  processes : process list;
  mutable channels : (string, token Queue.t) Hashtbl.t;
}

exception Deadlock of string

let create (processes : process list) : t =
  let channels = Hashtbl.create 16 in
  List.iter
    (fun p ->
      List.iter
        (fun c ->
          if not (Hashtbl.mem channels c) then
            Hashtbl.replace channels c (Queue.create ()))
        (p.inputs @ p.outputs))
    processes;
  { processes; channels }

let channel t name =
  match Hashtbl.find_opt t.channels name with
  | Some q -> q
  | None -> invalid_arg (Printf.sprintf "Kpn.channel: no channel %s" name)

(** Feed external input tokens into a channel. *)
let push t name (tok : token) = Queue.add tok (channel t name)

(** Drain all tokens currently in a channel. *)
let drain t name : token list =
  let q = channel t name in
  let acc = ref [] in
  while not (Queue.is_empty q) do
    acc := Queue.pop q :: !acc
  done;
  List.rev !acc

let enabled t (p : process) =
  List.for_all (fun c -> not (Queue.is_empty (channel t c))) p.inputs

(** Fire [p] once (inputs must be available). *)
let fire_once t (p : process) =
  let ins = List.map (fun c -> Queue.pop (channel t c)) p.inputs in
  let outs = p.fire ins in
  if List.length outs <> List.length p.outputs then
    invalid_arg (Printf.sprintf "Kpn.fire: %s produced %d tokens, declared %d"
                   p.pname (List.length outs) (List.length p.outputs));
  List.iter2 (fun c tok -> Queue.add tok (channel t c)) p.outputs outs

(** Run until no process is enabled.  [order] permutes the scheduling
    preference — by Kahn's theorem the resulting channel streams are
    identical for every order, which the test suite verifies.  Returns the
    number of firings. *)
let run ?(order = fun ps -> ps) ?(max_firings = 1_000_000) t : int =
  let firings = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match List.find_opt (enabled t) (order t.processes) with
    | Some p ->
      if !firings >= max_firings then
        raise (Deadlock "firing budget exhausted (unbounded network?)");
      incr firings;
      fire_once t p
    | None -> continue_ := false
  done;
  !firings

(** Firing trace in dataflow order, for the makespan simulation: each entry
    is (process, firing index of that process). *)
let trace ?(order = fun ps -> ps) ?(max_firings = 1_000_000) t :
    (process * int) list =
  let counts = Hashtbl.create 8 in
  let tr = ref [] in
  let firings = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match List.find_opt (enabled t) (order t.processes) with
    | Some p ->
      if !firings >= max_firings then
        raise (Deadlock "firing budget exhausted (unbounded network?)");
      incr firings;
      let k = try Hashtbl.find counts p.pname with Not_found -> 0 in
      Hashtbl.replace counts p.pname (k + 1);
      tr := (p, k) :: !tr;
      fire_once t p
    | None -> continue_ := false
  done;
  List.rev !tr
