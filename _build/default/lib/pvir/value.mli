(** Runtime and compile-time constant values.

    One representation shared by the constant folder, the interpreter and
    the machine simulator, so optimized and executed arithmetic agree
    bit-for-bit.  Integers are [int64]s normalized (sign-extended) to the
    width of their scalar type; [F32] floats are rounded to single
    precision on construction. *)

type t =
  | Int of Types.scalar * int64  (** always normalized, see {!normalize} *)
  | Float of Types.scalar * float
  | Vec of t array

(** Bit width of an integer scalar.
    @raise Invalid_argument on float scalars. *)
val bits : Types.scalar -> int

(** Sign-extend the low [bits s] bits. *)
val normalize : Types.scalar -> int64 -> int64

(** Zero-extended (unsigned) view of a normalized value. *)
val unsigned : Types.scalar -> int64 -> int64

(** Round to F32 precision when the scalar demands it. *)
val normalize_float : Types.scalar -> float -> float

(** Constructors (normalizing).  [int]/[float] raise [Invalid_argument]
    when the scalar kind does not match. *)

val int : Types.scalar -> int64 -> t
val float : Types.scalar -> float -> t
val of_int : Types.scalar -> int -> t
val i8 : int -> t
val i16 : int -> t
val i32 : int -> t
val i64 : int64 -> t
val f32 : float -> t
val f64 : float -> t

(** @raise Invalid_argument on fewer than 2 lanes. *)
val vec : t array -> t

(** Replicate a scalar into an [n]-lane vector. *)
val splat : int -> t -> t

val ty : t -> Types.t
val zero : Types.t -> t

val to_int64 : t -> int64
val to_float : t -> float
val to_bool : t -> bool

(** The value's lanes ([[v]] for scalars). *)
val lanes : t -> t list

(** Structural equality; floats compare by bit pattern. *)
val equal : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Little-endian byte encoding, shared by VM memory and the harness. *)

val write_bytes : Bytes.t -> int -> t -> unit
val read_bytes : Bytes.t -> int -> Types.t -> t
