(** Install-time linker: combine separately-compiled PVIR modules into one
    whole program.

    This is the paper's §4 "whole-program and link-time optimization"
    direction: because deployment goes through the virtualization layer,
    the device (or installer) sees *all* the bytecode of an application at
    once, no matter how many vendors shipped pieces of it.  After
    {!link}, the ordinary offline/online pipelines run on the merged
    program — so cross-module inlining, whole-program dependence analysis
    and annotation generation need no special machinery — and
    {!treeshake} drops everything unreachable, the code-size
    optimization embedded systems care about. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(** Link modules into one program.

    Rules: function and global names must be unique across modules; every
    [extern] declaration must be resolved by a function with the exact
    same signature (VM intrinsics never need externs); resolved externs
    disappear.  The result is verified.
    @raise Error on duplicate symbols, unresolved externs, or signature
    mismatches. *)
let link ?(name = "linked") (modules : Prog.t list) : Prog.t =
  let out = Prog.create name in
  let fun_owner = Hashtbl.create 32 in
  let glob_owner = Hashtbl.create 32 in
  List.iter
    (fun (m : Prog.t) ->
      List.iter
        (fun (fn : Func.t) ->
          (match Hashtbl.find_opt fun_owner fn.Func.name with
          | Some other ->
            fail "duplicate symbol @%s (defined in %s and %s)" fn.Func.name
              other m.Prog.pname
          | None -> Hashtbl.replace fun_owner fn.Func.name m.Prog.pname);
          Prog.add_func out fn)
        m.Prog.funcs;
      List.iter
        (fun (g : Prog.global) ->
          (match Hashtbl.find_opt glob_owner g.Prog.gname with
          | Some other ->
            fail "duplicate global @%s (defined in %s and %s)" g.Prog.gname
              other m.Prog.pname
          | None -> Hashtbl.replace glob_owner g.Prog.gname m.Prog.pname);
          out.Prog.globals <- out.Prog.globals @ [ g ])
        m.Prog.globals;
      out.Prog.annots <-
        List.fold_left
          (fun acc (k, v) -> Annot.add k v acc)
          out.Prog.annots (List.rev m.Prog.annots))
    modules;
  (* resolve externs against the merged function set *)
  List.iter
    (fun (m : Prog.t) ->
      List.iter
        (fun (e : Prog.extern) ->
          match Prog.find_func out e.Prog.ename with
          | None ->
            if Prog.intrinsic_sig e.Prog.ename = None then
              fail "unresolved extern @%s (declared in %s)" e.Prog.ename
                m.Prog.pname
          | Some fn ->
            let params = List.map (Func.reg_type fn) fn.Func.params in
            if
              not
                (List.length params = List.length e.Prog.eparams
                && List.for_all2 Types.equal params e.Prog.eparams
                &&
                match (fn.Func.ret, e.Prog.eret) with
                | None, None -> true
                | Some a, Some b -> Types.equal a b
                | _ -> false)
            then
              fail "extern @%s (declared in %s) does not match its definition"
                e.Prog.ename m.Prog.pname)
        m.Prog.externs)
    modules;
  Verify.program out;
  out

(** Whole-program dead-code elimination: keep only the functions reachable
    from [roots] (by call) and the globals they reference (by [Gaddr]).
    Returns [(functions removed, globals removed)].
    @raise Error if a root does not exist. *)
let treeshake ~(roots : string list) (p : Prog.t) : int * int =
  List.iter
    (fun r ->
      if Prog.find_func p r = None then fail "treeshake: no root function @%s" r)
    roots;
  let live_funcs = Hashtbl.create 32 in
  let live_globs = Hashtbl.create 32 in
  let rec visit name =
    if not (Hashtbl.mem live_funcs name) then begin
      Hashtbl.replace live_funcs name ();
      match Prog.find_func p name with
      | None -> ()  (* intrinsic *)
      | Some fn ->
        Func.iter_instrs
          (fun _ i ->
            match i with
            | Instr.Call (_, callee, _) -> visit callee
            | Instr.Gaddr (_, g) -> Hashtbl.replace live_globs g ()
            | _ -> ())
          fn
    end
  in
  List.iter visit roots;
  let before_f = List.length p.Prog.funcs in
  let before_g = List.length p.Prog.globals in
  p.Prog.funcs <-
    List.filter (fun (fn : Func.t) -> Hashtbl.mem live_funcs fn.Func.name) p.Prog.funcs;
  p.Prog.globals <-
    List.filter (fun (g : Prog.global) -> Hashtbl.mem live_globs g.Prog.gname) p.Prog.globals;
  ( before_f - List.length p.Prog.funcs,
    before_g - List.length p.Prog.globals )
