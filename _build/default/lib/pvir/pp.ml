(** Textual form of PVIR programs.

    The printer emits a stable, line-oriented syntax that {!Parse} reads
    back; [Parse.program (Pp.program_to_string p)] round-trips every
    construct.  Example:

    {v
    program "kernels"
    global @a : f32 x 1024
    func @saxpy(r0 : i64, r1 : f32 ptr) : f32 {
      !pv.vectorized = 4
      block 0:
        r2 = const 0:i64
        br 1
      block 1:
        r3 = cmp slt r2, r0
        cbr r3, 2, 3
      ...
    }
    v} *)

open Format

let pp_reg ppf r = fprintf ppf "r%d" r

let pp_operand_list ppf regs =
  pp_print_list
    ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
    pp_reg ppf regs

let pp_instr ppf (i : Instr.t) =
  match i with
  | Const (d, v) -> fprintf ppf "%a = const %a" pp_reg d Value.pp v
  | Mov (d, a) -> fprintf ppf "%a = mov %a" pp_reg d pp_reg a
  | Gaddr (d, g) -> fprintf ppf "%a = gaddr @%s" pp_reg d g
  | Binop (op, d, a, b) ->
    fprintf ppf "%a = %s %a, %a" pp_reg d (Instr.binop_name op) pp_reg a
      pp_reg b
  | Unop (op, d, a) ->
    fprintf ppf "%a = %s %a" pp_reg d (Instr.unop_name op) pp_reg a
  | Conv (c, d, a) ->
    fprintf ppf "%a = %s %a" pp_reg d (Instr.conv_name c) pp_reg a
  | Cmp (op, d, a, b) ->
    fprintf ppf "%a = cmp %s %a, %a" pp_reg d (Instr.relop_name op) pp_reg a
      pp_reg b
  | Select (d, c, a, b) ->
    fprintf ppf "%a = select %a, %a, %a" pp_reg d pp_reg c pp_reg a pp_reg b
  | Load (ty, d, base, off) ->
    fprintf ppf "%a = load %a %a + %d" pp_reg d Types.pp ty pp_reg base off
  | Store (ty, s, base, off) ->
    fprintf ppf "store %a %a, %a + %d" Types.pp ty pp_reg s pp_reg base off
  | Alloca (d, n) -> fprintf ppf "%a = alloca %d" pp_reg d n
  | Call (None, name, args) ->
    fprintf ppf "call @%s(%a)" name pp_operand_list args
  | Call (Some d, name, args) ->
    fprintf ppf "%a = call @%s(%a)" pp_reg d name pp_operand_list args
  | Splat (d, a) -> fprintf ppf "%a = splat %a" pp_reg d pp_reg a
  | Extract (d, a, lane) ->
    fprintf ppf "%a = extract %a, %d" pp_reg d pp_reg a lane
  | Reduce (op, d, a) ->
    fprintf ppf "%a = %s %a" pp_reg d (Instr.redop_name op) pp_reg a

let pp_term ppf (t : Instr.term) =
  match t with
  | Br l -> fprintf ppf "br %d" l
  | Cbr (c, l1, l2) -> fprintf ppf "cbr %a, %d, %d" pp_reg c l1 l2
  | Ret None -> fprintf ppf "ret"
  | Ret (Some r) -> fprintf ppf "ret %a" pp_reg r

let pp_annots ~indent ppf (a : Annot.t) =
  List.iter
    (fun (k, v) ->
      fprintf ppf "%s!%s = %s@\n" indent k (Annot.value_to_string v))
    (List.rev a)

let pp_block fn ppf (b : Func.block) =
  ignore fn;
  fprintf ppf "  block %d:@\n" b.label;
  List.iter (fun i -> fprintf ppf "    %a@\n" pp_instr i) b.instrs;
  fprintf ppf "    %a@\n" pp_term b.term

let pp_func ppf (fn : Func.t) =
  let pp_param ppf r =
    fprintf ppf "%a : %a" pp_reg r Types.pp (Func.reg_type fn r)
  in
  fprintf ppf "func @%s(%a)" fn.name
    (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") pp_param)
    fn.params;
  (match fn.ret with
  | Some ty -> fprintf ppf " : %a" Types.pp ty
  | None -> ());
  fprintf ppf " {@\n";
  (* Register declarations for non-parameter registers, so that the parser
     can rebuild the type table without inference. *)
  let param_set = List.sort_uniq compare fn.params in
  let decls =
    List.filter (fun r -> not (List.mem r param_set)) (Func.all_regs fn)
  in
  List.iter
    (fun r ->
      fprintf ppf "  reg %a : %a@\n" pp_reg r Types.pp (Func.reg_type fn r))
    decls;
  pp_annots ~indent:"  " ppf fn.annots;
  List.iter
    (fun (header, a) ->
      if a <> Annot.empty then
        fprintf ppf "  loop %d { @[%a@] }@\n" header Annot.pp a)
    (List.sort compare fn.loop_annots);
  List.iter (fun b -> pp_block fn ppf b) fn.blocks;
  fprintf ppf "}@\n"

let pp_global ppf (g : Prog.global) =
  fprintf ppf "global @@%s : %a x %d" g.gname Types.pp_scalar g.gelem g.gcount;
  (match g.ginit with
  | None -> ()
  | Some init ->
    fprintf ppf " = {";
    Array.iteri
      (fun i v ->
        if i > 0 then fprintf ppf ", ";
        Value.pp ppf v)
      init;
    fprintf ppf "}");
  fprintf ppf "@\n"

let pp_extern ppf (e : Prog.extern) =
  fprintf ppf "extern @@%s(%a)" e.ename
    (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") Types.pp)
    e.eparams;
  (match e.eret with
  | Some ty -> fprintf ppf " : %a" Types.pp ty
  | None -> ());
  fprintf ppf "@\n"

let pp_program ppf (p : Prog.t) =
  fprintf ppf "program %S@\n" p.pname;
  pp_annots ~indent:"" ppf p.annots;
  List.iter (pp_extern ppf) p.externs;
  List.iter (pp_global ppf) p.globals;
  List.iter (fun fn -> fprintf ppf "@\n%a" pp_func fn) p.funcs

let func_to_string fn = Format.asprintf "%a" pp_func fn
let program_to_string p = Format.asprintf "%a" pp_program p
