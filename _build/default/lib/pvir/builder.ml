(** Imperative convenience layer for constructing PVIR functions.

    A builder keeps a current insertion block; [emit]-style helpers allocate
    the destination register with the right type and return it, which keeps
    hand-written IR (tests, kernels, lowering) short and well-typed. *)

type t = {
  fn : Func.t;
  mutable cur : Func.block;
}

let create ~name ~params ~ret =
  let fn = Func.create ~name ~params ~ret in
  let entry = Func.add_block fn in
  { fn; cur = entry }

let func b = b.fn

(** Parameter registers, in declaration order. *)
let params b = Func.(b.fn.params)

let new_block b = Func.add_block b.fn

(** Move the insertion point. *)
let position b blk = b.cur <- blk

let current b = b.cur

let append b i = b.cur.instrs <- b.cur.instrs @ [ i ]

let set_term b t = b.cur.term <- t

(* -- value-producing helpers ---------------------------------------- *)

let const b v =
  let d = Func.fresh_reg b.fn (Value.ty v) in
  append b (Instr.Const (d, v));
  d

let iconst b ?(ty = Types.I64) x = const b (Value.of_int ty x)
let fconst b ?(ty = Types.F64) x = const b (Value.float ty x)

let binop b op x y =
  let d = Func.fresh_reg b.fn (Func.reg_type b.fn x) in
  append b (Instr.Binop (op, d, x, y));
  d

let add b x y = binop b Instr.Add x y
let sub b x y = binop b Instr.Sub x y
let mul b x y = binop b Instr.Mul x y

let unop b op x =
  let d = Func.fresh_reg b.fn (Func.reg_type b.fn x) in
  append b (Instr.Unop (op, d, x));
  d

let conv b kind ~dst_ty x =
  let d = Func.fresh_reg b.fn dst_ty in
  append b (Instr.Conv (kind, d, x));
  d

let cmp b op x y =
  let d = Func.fresh_reg b.fn Types.i32 in
  append b (Instr.Cmp (op, d, x, y));
  d

let select b c x y =
  let d = Func.fresh_reg b.fn (Func.reg_type b.fn x) in
  append b (Instr.Select (d, c, x, y));
  d

let load b ty ~base ?(off = 0) () =
  let d = Func.fresh_reg b.fn ty in
  append b (Instr.Load (ty, d, base, off));
  d

let store b ty ~src ~base ?(off = 0) () =
  append b (Instr.Store (ty, src, base, off))

let alloca b ~elem ~count =
  let bytes = Types.scalar_size elem * count in
  let bytes = (bytes + 7) land lnot 7 in
  let d = Func.fresh_reg b.fn (Types.ptr elem) in
  append b (Instr.Alloca (d, bytes));
  d

let call b ?ret name args =
  let d = Option.map (Func.fresh_reg b.fn) ret in
  append b (Instr.Call (d, name, args));
  d

let splat b ~lanes x =
  let s = Types.elem (Func.reg_type b.fn x) in
  let d = Func.fresh_reg b.fn (Types.vec s lanes) in
  append b (Instr.Splat (d, x));
  d

let extract b x lane =
  let s = Types.elem (Func.reg_type b.fn x) in
  let d = Func.fresh_reg b.fn (Types.Scalar s) in
  append b (Instr.Extract (d, x, lane));
  d

let reduce b op x =
  let s = Types.elem (Func.reg_type b.fn x) in
  let d = Func.fresh_reg b.fn (Types.Scalar s) in
  append b (Instr.Reduce (op, d, x));
  d

(* -- control flow ---------------------------------------------------- *)

let br b (blk : Func.block) = set_term b (Instr.Br blk.label)

let cbr b c (bt : Func.block) (bf : Func.block) =
  set_term b (Instr.Cbr (c, bt.label, bf.label))

let ret b r = set_term b (Instr.Ret r)

(** Build a counted loop [for i = 0 to n-1 by step].  [body] receives the
    builder positioned inside the loop body and the induction register;
    after [body] returns, control falls through to the increment.  The
    builder is left positioned in the exit block.  Returns the header block
    label (useful for attaching loop annotations). *)
let counted_loop b ~n ~step body =
  let fn = b.fn in
  let i = Func.fresh_reg fn Types.i64 in
  let zero = const b (Value.i64 0L) in
  append b (Instr.Binop (Instr.Add, i, zero, zero));
  let header = new_block b in
  let body_blk = new_block b in
  let exit_blk = new_block b in
  br b header;
  position b header;
  let c = cmp b Instr.Slt i n in
  cbr b c body_blk exit_blk;
  position b body_blk;
  body b i;
  let stepr = const b (Value.i64 (Int64.of_int step)) in
  append b (Instr.Binop (Instr.Add, i, i, stepr));
  br b header;
  position b exit_blk;
  header.label
