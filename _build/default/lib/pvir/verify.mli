(** PVIR verifier: the gate every program passes offline after compilation
    and online at load time — a device never JITs an ill-typed program.

    Checks register typing of every instruction, branch-target existence,
    call signatures against visible callees (program functions and
    intrinsics), pointer-typed memory operands, return-type agreement, and
    name uniqueness. *)

exception Error of string

(** @raise Error describing the first problem found. *)
val program : Prog.t -> unit

(** [Ok ()] or [Error message]. *)
val program_result : Prog.t -> (unit, string) result

(** Verify a single function in the context of [p] (exposed for tests). *)
val check_func : Prog.t -> Func.t -> unit
