(** Evaluation of PVIR operations on {!Value.t}.

    This is the single source of truth for operator semantics: the constant
    folder, the bytecode interpreter and the machine simulator all call into
    this module, so an optimization can never change the meaning of an
    operation without the test suite noticing. *)

exception Division_by_zero

let ( %% ) = Int64.rem

(* Scalar integer binop at scalar type [s]; both operands normalized. *)
let int_binop op s a b =
  let u = Value.unsigned s in
  let r =
    match (op : Instr.binop) with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Div ->
      if Int64.equal b 0L then raise Division_by_zero else Int64.div a b
    | Udiv ->
      if Int64.equal b 0L then raise Division_by_zero
      else Int64.unsigned_div (u a) (u b)
    | Rem -> if Int64.equal b 0L then raise Division_by_zero else a %% b
    | Urem ->
      if Int64.equal b 0L then raise Division_by_zero
      else Int64.unsigned_rem (u a) (u b)
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl -> Int64.shift_left a (Int64.to_int b land 63)
    | Lshr -> Int64.shift_right_logical (u a) (Int64.to_int b land 63)
    | Ashr -> Int64.shift_right a (Int64.to_int b land 63)
    | Min -> if Int64.compare a b <= 0 then a else b
    | Max -> if Int64.compare a b >= 0 then a else b
    | Umin -> if Int64.unsigned_compare (u a) (u b) <= 0 then a else b
    | Umax -> if Int64.unsigned_compare (u a) (u b) >= 0 then a else b
  in
  Value.int s r

let float_binop op s a b =
  let r =
    match (op : Instr.binop) with
    | Add -> a +. b
    | Sub -> a -. b
    | Mul -> a *. b
    | Div -> a /. b
    | Min -> Float.min a b
    | Max -> Float.max a b
    | Udiv | Rem | Urem | And | Or | Xor | Shl | Lshr | Ashr | Umin | Umax ->
      invalid_arg
        (Printf.sprintf "Eval: binop %s on float" (Instr.binop_name op))
  in
  Value.float s r

let scalar_binop op a b =
  match (a, b) with
  | Value.Int (s, x), Value.Int (_, y) -> int_binop op s x y
  | Value.Float (s, x), Value.Float (_, y) -> float_binop op s x y
  | _ -> invalid_arg "Eval.scalar_binop: mixed or vector operands"

(** Apply a binary operation; vector operands are processed lane-wise. *)
let binop op a b =
  match (a, b) with
  | Value.Vec ea, Value.Vec eb ->
    if Array.length ea <> Array.length eb then
      invalid_arg "Eval.binop: lane count mismatch";
    Value.Vec (Array.mapi (fun i x -> scalar_binop op x eb.(i)) ea)
  | _ -> scalar_binop op a b

let scalar_unop op v =
  match ((op : Instr.unop), v) with
  | Neg, Value.Int (s, x) -> Value.int s (Int64.neg x)
  | Neg, Value.Float (s, x) -> Value.float s (-.x)
  | Not, Value.Int (s, x) -> Value.int s (Int64.lognot x)
  | Not, Value.Float _ -> invalid_arg "Eval: not on float"
  | _, Value.Vec _ -> invalid_arg "Eval.scalar_unop: vector"

let unop op = function
  | Value.Vec elems -> Value.Vec (Array.map (scalar_unop op) elems)
  | v -> scalar_unop op v

let scalar_cmp op a b =
  let bool_to_value c = Value.i32 (if c then 1 else 0) in
  match (a, b) with
  | Value.Int (s, x), Value.Int (_, y) ->
    let u = Value.unsigned s in
    let c =
      match (op : Instr.relop) with
      | Eq -> Int64.equal x y
      | Ne -> not (Int64.equal x y)
      | Slt -> Int64.compare x y < 0
      | Sle -> Int64.compare x y <= 0
      | Sgt -> Int64.compare x y > 0
      | Sge -> Int64.compare x y >= 0
      | Ult -> Int64.unsigned_compare (u x) (u y) < 0
      | Ule -> Int64.unsigned_compare (u x) (u y) <= 0
      | Ugt -> Int64.unsigned_compare (u x) (u y) > 0
      | Uge -> Int64.unsigned_compare (u x) (u y) >= 0
    in
    bool_to_value c
  | Value.Float (_, x), Value.Float (_, y) ->
    let c =
      match (op : Instr.relop) with
      | Eq -> x = y
      | Ne -> x <> y
      | Slt -> x < y
      | Sle -> x <= y
      | Sgt -> x > y
      | Sge -> x >= y
      | Ult | Ule | Ugt | Uge ->
        invalid_arg "Eval: unsigned comparison on float"
    in
    bool_to_value c
  | _ -> invalid_arg "Eval.scalar_cmp: mixed or vector operands"

(** Comparisons always produce a scalar [i32] 0/1 (vector compares are not
    part of the portable builtin set; the vectorizer uses min/max/select
    shapes instead). *)
let cmp op a b = scalar_cmp op a b

let select cond if_true if_false =
  if Value.to_bool cond then if_true else if_false

(** Conversion to the destination type [dst_ty].  Vector conversions apply
    lane-wise (both sides must have the same lane count — checked by the
    verifier). *)
let rec conv kind (dst_ty : Types.t) v =
  match (dst_ty, v) with
  | Types.Vector (s, n), Value.Vec elems ->
    if Array.length elems <> n then
      invalid_arg "Eval.conv: lane count mismatch";
    Value.Vec (Array.map (conv kind (Types.Scalar s)) elems)
  | _ -> conv_scalar kind dst_ty v

and conv_scalar kind (dst_ty : Types.t) v =
  let s =
    match dst_ty with
    | Types.Scalar s -> s
    | Types.Ptr _ -> Types.I64
    | Types.Vector _ -> invalid_arg "Eval.conv: vector destination"
  in
  match ((kind : Instr.conv), v) with
  | Zext, Value.Int (src, x) -> Value.int s (Value.unsigned src x)
  | Sext, Value.Int (_, x) -> Value.int s x
  | Trunc, Value.Int (_, x) -> Value.int s x
  | Sitofp, Value.Int (_, x) -> Value.float s (Int64.to_float x)
  | Uitofp, Value.Int (src, x) ->
    let u = Value.unsigned src x in
    let f =
      if Int64.compare u 0L >= 0 then Int64.to_float u
      else Int64.to_float u +. 0x1p64
    in
    Value.float s f
  | Fptosi, Value.Float (_, x) -> Value.int s (Int64.of_float x)
  | Fptoui, Value.Float (_, x) ->
    let i =
      if x >= 0x1p63 then Int64.add Int64.min_int (Int64.of_float (x -. 0x1p63))
      else Int64.of_float x
    in
    Value.int s i
  | Fpconv, Value.Float (_, x) -> Value.float s x
  | _, Value.Vec _ -> invalid_arg "Eval.conv: vector operand"
  | _ -> invalid_arg "Eval.conv: ill-typed conversion"

let reduce op v =
  match v with
  | Value.Vec elems ->
    let bin =
      match (op : Instr.redop) with
      | Radd -> Instr.Add
      | Rmin -> Instr.Min
      | Rmax -> Instr.Max
      | Rumin -> Instr.Umin
      | Rumax -> Instr.Umax
    in
    let acc = ref elems.(0) in
    for i = 1 to Array.length elems - 1 do
      acc := scalar_binop bin !acc elems.(i)
    done;
    !acc
  | Value.Int _ | Value.Float _ -> invalid_arg "Eval.reduce: scalar operand"

let extract v lane =
  match v with
  | Value.Vec elems ->
    if lane < 0 || lane >= Array.length elems then
      invalid_arg "Eval.extract: lane out of range";
    elems.(lane)
  | Value.Int _ | Value.Float _ -> invalid_arg "Eval.extract: scalar operand"

let splat n v = Value.splat n v
