(** Install-time linker: combine separately-compiled PVIR modules into one
    whole program (the paper's §4 "whole-program and link-time
    optimization" direction).

    After {!link}, the ordinary offline/online pipelines run on the merged
    program, so cross-module inlining and whole-program analyses need no
    special machinery; {!treeshake} then drops everything unreachable. *)

exception Error of string

(** Link modules into one program.

    Function and global names must be unique across modules; every
    [extern] declaration must be resolved by a function with the exact
    same signature (VM intrinsics never need resolution).  The result is
    verified.
    @raise Error on duplicate symbols, unresolved externs, or signature
    mismatches. *)
val link : ?name:string -> Prog.t list -> Prog.t

(** Whole-program dead-code elimination: keep only the functions reachable
    from [roots] (by call) and the globals they reference (by [Gaddr]).
    Mutates [p]; returns [(functions removed, globals removed)].
    @raise Error if a root does not exist. *)
val treeshake : roots:string list -> Prog.t -> int * int
