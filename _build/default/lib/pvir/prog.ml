(** PVIR programs (compilation units): globals + functions + annotations.

    A program is the unit of distribution — what the offline compiler emits
    and what the runtime loads on the device. *)

type global = {
  gname : string;
  gelem : Types.scalar;  (** element type *)
  gcount : int;  (** number of elements *)
  ginit : Value.t array option;  (** optional initializer, length [gcount] *)
  gannots : Annot.t;
}

(** Declaration of a function defined in another compilation unit, to be
    resolved by {!Link} at install time. *)
type extern = {
  ename : string;
  eparams : Types.t list;
  eret : Types.t option;
}

type t = {
  pname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
  mutable externs : extern list;
  mutable annots : Annot.t;
}

let create name =
  { pname = name; globals = []; funcs = []; externs = []; annots = Annot.empty }

let add_func p fn = p.funcs <- p.funcs @ [ fn ]

let add_global p ?(annots = Annot.empty) ?init name elem count =
  (match init with
  | Some a when Array.length a <> count ->
    invalid_arg "Prog.add_global: initializer length mismatch"
  | _ -> ());
  p.globals <-
    p.globals
    @ [ { gname = name; gelem = elem; gcount = count; ginit = init; gannots = annots } ]

let find_func p name = List.find_opt (fun (f : Func.t) -> f.name = name) p.funcs

let find_func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Prog.find_func: no function %s" name)

let find_global p name =
  List.find_opt (fun g -> g.gname = name) p.globals

let global_size g = Types.scalar_size g.gelem * g.gcount

(** Replace a function by a transformed copy (used by optimization passes
    that rebuild rather than mutate). *)
let replace_func p fn =
  p.funcs <-
    List.map (fun (f : Func.t) -> if f.name = Func.(fn.name) then fn else f) p.funcs

(** Runtime intrinsics every VM provides.  Name, parameter types, return. *)
let intrinsics : (string * Types.t list * Types.t option) list =
  [
    ("print_i64", [ Types.i64 ], None);
    ("print_f64", [ Types.f64 ], None);
    ("abort", [], None);
  ]

let intrinsic_sig name =
  List.find_map
    (fun (n, ps, r) -> if n = name then Some (ps, r) else None)
    intrinsics

let add_extern p ename eparams eret =
  p.externs <- p.externs @ [ { ename; eparams; eret } ]

let find_extern p name =
  List.find_opt (fun e -> String.equal e.ename name) p.externs

(** Signature of a callee visible from [p]: an intrinsic, a program
    function, or an extern declaration (resolved later by {!Link}). *)
let callee_sig p name =
  match intrinsic_sig name with
  | Some s -> Some s
  | None -> (
    match
      Option.map
        (fun (f : Func.t) ->
          (List.map (fun r -> Func.reg_type f r) f.params, f.ret))
        (find_func p name)
    with
    | Some s -> Some s
    | None ->
      Option.map (fun e -> (e.eparams, e.eret)) (find_extern p name))

let copy p =
  {
    pname = p.pname;
    globals = p.globals;
    funcs = List.map Func.copy p.funcs;
    externs = p.externs;
    annots = p.annots;
  }
