(** Binary serialization of PVIR programs — the bytecode distribution
    format.

    Compact varint-based encoding; annotations are stored as a skippable
    section so readers that do not understand a key can ignore it.
    [decode (encode p)] reproduces [p] exactly (checked by round-trip
    property tests). *)

(** Raised by {!decode} / {!of_file} on malformed input. *)
exception Corrupt of string

(** File magic ("PVIR") and format version. *)
val magic : string

val version : int

(** Serialize a program to its binary bytecode form. *)
val encode : Prog.t -> string

(** Parse binary bytecode back into a program.
    @raise Corrupt on malformed input. *)
val decode : string -> Prog.t

(** Encode with every annotation stripped — the size baseline of the
    compactness experiment (E5). *)
val encode_stripped : Prog.t -> string

val to_file : string -> Prog.t -> unit
val of_file : string -> Prog.t
