(** Types of the portable virtual IR (PVIR).

    PVIR is the target-independent distribution format of the toolchain: the
    moral equivalent of the CLI bytecode used by the paper, except that it is
    register-based (like PTX or LLVM bitcode).  Types are deliberately
    low-level — sized integers, IEEE floats, short vectors and pointers — so
    that a JIT can map them onto any embedded target. *)

(** Scalar machine types.  Integers are sign-agnostic bit patterns; the
    operations (not the types) carry signedness, exactly as in LLVM. *)
type scalar = I8 | I16 | I32 | I64 | F32 | F64

(** A PVIR type: a scalar, a short SIMD vector of [lanes] scalars, or a
    pointer to values of a given scalar type.  Pointers are byte addresses
    into the VM's flat memory. *)
type t =
  | Scalar of scalar
  | Vector of scalar * int
  | Ptr of scalar

let i8 = Scalar I8
let i16 = Scalar I16
let i32 = Scalar I32
let i64 = Scalar I64
let f32 = Scalar F32
let f64 = Scalar F64

let ptr s = Ptr s
let vec s lanes =
  if lanes < 2 then invalid_arg "Types.vec: lanes < 2";
  Vector (s, lanes)

let scalar_size = function
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | F32 -> 4
  | F64 -> 8

(** Size of a value of this type in bytes.  Pointers are 64-bit. *)
let size = function
  | Scalar s -> scalar_size s
  | Vector (s, n) -> scalar_size s * n
  | Ptr _ -> 8

let is_float_scalar = function F32 | F64 -> true | I8 | I16 | I32 | I64 -> false

let is_float = function
  | Scalar s | Vector (s, _) -> is_float_scalar s
  | Ptr _ -> false

let is_integer = function
  | Scalar s | Vector (s, _) -> not (is_float_scalar s)
  | Ptr _ -> false

let is_vector = function Vector _ -> true | Scalar _ | Ptr _ -> false
let is_pointer = function Ptr _ -> true | Scalar _ | Vector _ -> false

(** Element scalar of a type: the scalar itself, the vector lane type, or the
    pointee type. *)
let elem = function Scalar s | Vector (s, _) | Ptr s -> s

let lanes = function Vector (_, n) -> n | Scalar _ | Ptr _ -> 1

(** [with_lanes s n] is the scalar [s] when [n = 1] and the [n]-lane vector
    of [s] otherwise. *)
let with_lanes s n = if n = 1 then Scalar s else Vector (s, n)

let equal_scalar (a : scalar) (b : scalar) = a = b
let equal (a : t) (b : t) = a = b

let scalar_name = function
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "f32"
  | F64 -> "f64"

let scalar_of_name = function
  | "i8" -> Some I8
  | "i16" -> Some I16
  | "i32" -> Some I32
  | "i64" -> Some I64
  | "f32" -> Some F32
  | "f64" -> Some F64
  | _ -> None

let to_string = function
  | Scalar s -> scalar_name s
  | Vector (s, n) -> Printf.sprintf "<%d x %s>" n (scalar_name s)
  | Ptr s -> scalar_name s ^ "*"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let pp_scalar ppf s = Format.pp_print_string ppf (scalar_name s)

let all_scalars = [ I8; I16; I32; I64; F32; F64 ]
