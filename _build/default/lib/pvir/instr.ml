(** PVIR instructions.

    The IR is a conventional three-address code over an unbounded set of
    *mutable* virtual registers (like CLI locals — the distribution format
    the paper builds on — and unlike SSA).  A function is a control-flow
    graph of basic blocks; every block ends in exactly one terminator. *)

(** Virtual register.  Types are recorded per-function in [Func.t]. *)
type reg = int

(** Binary operations.  Integer ops are sign-agnostic except where a signed
    and unsigned variant exist.  On float types, [Div] is float division and
    [Min]/[Max] are IEEE min/max; [Udiv], [Urem], shifts and bitwise ops are
    invalid on floats (rejected by the verifier). *)
type binop =
  | Add
  | Sub
  | Mul
  | Div  (** signed division on integers, ordinary division on floats *)
  | Udiv
  | Rem  (** signed remainder on integers *)
  | Urem
  | And
  | Or
  | Xor
  | Shl
  | Lshr  (** logical shift right *)
  | Ashr  (** arithmetic shift right *)
  | Min  (** signed min on integers, fmin on floats *)
  | Max
  | Umin
  | Umax

(** Comparison predicates.  [S*] are signed (and the only valid ordering
    predicates on floats); [U*] are unsigned. *)
type relop = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type unop =
  | Neg  (** arithmetic negation *)
  | Not  (** bitwise complement (integers only) *)

(** Conversions.  The destination type is the type of the destination
    register. *)
type conv =
  | Zext  (** integer zero extension *)
  | Sext  (** integer sign extension *)
  | Trunc  (** integer truncation *)
  | Sitofp  (** signed integer to float *)
  | Uitofp
  | Fptosi  (** float to signed integer (truncating) *)
  | Fptoui
  | Fpconv  (** f32 <-> f64 *)

(** Horizontal vector reductions. *)
type redop =
  | Radd
  | Rmin  (** signed *)
  | Rmax
  | Rumin
  | Rumax

(** Instructions.  [Load]/[Store] take a pointer register plus a static byte
    offset.  The vector operations ([Splat], [Extract], [Reduce], and any
    [Binop]/[Unop]/[Load]/[Store] at a vector type) are the paper's
    "portable vectorization builtins": a JIT without SIMD hardware is free
    to scalarize them. *)
type t =
  | Const of reg * Value.t
  | Mov of reg * reg  (** register copy (MiniC locals are mutable) *)
  | Gaddr of reg * string  (** address of a global, resolved at load time *)
  | Binop of binop * reg * reg * reg  (** dst, lhs, rhs *)
  | Unop of unop * reg * reg
  | Conv of conv * reg * reg
  | Cmp of relop * reg * reg * reg  (** dst (i32 0/1), lhs, rhs *)
  | Select of reg * reg * reg * reg  (** dst, cond, if-true, if-false *)
  | Load of Types.t * reg * reg * int  (** ty, dst, base pointer, offset *)
  | Store of Types.t * reg * reg * int  (** ty, src, base pointer, offset *)
  | Alloca of reg * int  (** dst pointer, frame bytes (8-byte aligned) *)
  | Call of reg option * string * reg list
  | Splat of reg * reg  (** dst vector, scalar source *)
  | Extract of reg * reg * int  (** dst scalar, vector source, lane *)
  | Reduce of redop * reg * reg  (** dst scalar, vector source *)

(** Block terminators.  Labels are block ids local to the function. *)
type term =
  | Br of int
  | Cbr of reg * int * int  (** condition, if-true, if-false *)
  | Ret of reg option

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Udiv -> "udiv"
  | Rem -> "rem"
  | Urem -> "urem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Lshr -> "lshr"
  | Ashr -> "ashr"
  | Min -> "min"
  | Max -> "max"
  | Umin -> "umin"
  | Umax -> "umax"

let relop_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Slt -> "slt"
  | Sle -> "sle"
  | Sgt -> "sgt"
  | Sge -> "sge"
  | Ult -> "ult"
  | Ule -> "ule"
  | Ugt -> "ugt"
  | Uge -> "uge"

let unop_name = function Neg -> "neg" | Not -> "not"

let conv_name = function
  | Zext -> "zext"
  | Sext -> "sext"
  | Trunc -> "trunc"
  | Sitofp -> "sitofp"
  | Uitofp -> "uitofp"
  | Fptosi -> "fptosi"
  | Fptoui -> "fptoui"
  | Fpconv -> "fpconv"

let redop_name = function
  | Radd -> "radd"
  | Rmin -> "rmin"
  | Rmax -> "rmax"
  | Rumin -> "rumin"
  | Rumax -> "rumax"

let all_binops =
  [ Add; Sub; Mul; Div; Udiv; Rem; Urem; And; Or; Xor; Shl; Lshr; Ashr;
    Min; Max; Umin; Umax ]

let all_relops = [ Eq; Ne; Slt; Sle; Sgt; Sge; Ult; Ule; Ugt; Uge ]
let all_redops = [ Radd; Rmin; Rmax; Rumin; Rumax ]

(** [binop_valid_on op s] — is [op] defined at element scalar [s]? *)
let binop_valid_on op s =
  if Types.is_float_scalar s then
    match op with
    | Add | Sub | Mul | Div | Min | Max -> true
    | Udiv | Rem | Urem | And | Or | Xor | Shl | Lshr | Ashr | Umin | Umax ->
      false
  else true

(** Destination register of an instruction, if any. *)
let def = function
  | Const (d, _)
  | Mov (d, _)
  | Gaddr (d, _)
  | Binop (_, d, _, _)
  | Unop (_, d, _)
  | Conv (_, d, _)
  | Cmp (_, d, _, _)
  | Select (d, _, _, _)
  | Load (_, d, _, _)
  | Alloca (d, _)
  | Splat (d, _)
  | Extract (d, _, _)
  | Reduce (_, d, _) -> Some d
  | Store _ -> None
  | Call (d, _, _) -> d

(** Registers read by an instruction. *)
let uses = function
  | Const _ | Gaddr _ -> []
  | Binop (_, _, a, b) | Cmp (_, _, a, b) -> [ a; b ]
  | Mov (_, a) | Unop (_, _, a) | Conv (_, _, a) | Splat (_, a)
  | Extract (_, a, _)
  | Reduce (_, _, a) -> [ a ]
  | Select (_, c, a, b) -> [ c; a; b ]
  | Load (_, _, base, _) -> [ base ]
  | Store (_, src, base, _) -> [ src; base ]
  | Alloca _ -> []
  | Call (_, _, args) -> args

(** Registers read by a terminator. *)
let term_uses = function
  | Br _ | Ret None -> []
  | Cbr (c, _, _) -> [ c ]
  | Ret (Some r) -> [ r ]

(** Successor labels of a terminator. *)
let successors = function
  | Br l -> [ l ]
  | Cbr (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ -> []

(** Does the instruction touch memory or have other side effects?  Pure
    instructions can be removed when dead and hoisted when invariant. *)
let has_side_effect = function
  | Store _ | Call _ | Alloca _ -> true
  | Const _ | Mov _ | Gaddr _ | Binop _ | Unop _ | Conv _ | Cmp _ | Select _
  | Load _ | Splat _ | Extract _ | Reduce _ -> false

(** Loads are not side effects but cannot be removed across stores. *)
let reads_memory = function
  | Load _ -> true
  | Const _ | Mov _ | Gaddr _ | Binop _ | Unop _ | Conv _ | Cmp _ | Select _
  | Store _ | Alloca _ | Call _ | Splat _ | Extract _ | Reduce _ -> false

(** Rewrite every register of the instruction through [f] (definitions and
    uses alike).  Used by the inliner and the vectorizer when renaming. *)
let map_regs f = function
  | Const (d, v) -> Const (f d, v)
  | Mov (d, a) -> Mov (f d, f a)
  | Gaddr (d, g) -> Gaddr (f d, g)
  | Binop (op, d, a, b) -> Binop (op, f d, f a, f b)
  | Unop (op, d, a) -> Unop (op, f d, f a)
  | Conv (c, d, a) -> Conv (c, f d, f a)
  | Cmp (r, d, a, b) -> Cmp (r, f d, f a, f b)
  | Select (d, c, a, b) -> Select (f d, f c, f a, f b)
  | Load (t, d, base, off) -> Load (t, f d, f base, off)
  | Store (t, s, base, off) -> Store (t, f s, f base, off)
  | Alloca (d, n) -> Alloca (f d, n)
  | Call (d, name, args) -> Call (Option.map f d, name, List.map f args)
  | Splat (d, a) -> Splat (f d, f a)
  | Extract (d, a, i) -> Extract (f d, f a, i)
  | Reduce (op, d, a) -> Reduce (op, f d, f a)

let map_term_regs f = function
  | Br l -> Br l
  | Cbr (c, l1, l2) -> Cbr (f c, l1, l2)
  | Ret r -> Ret (Option.map f r)

let map_term_labels f = function
  | Br l -> Br (f l)
  | Cbr (c, l1, l2) -> Cbr (c, f l1, f l2)
  | Ret r -> Ret r
