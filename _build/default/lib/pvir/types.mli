(** Types of the portable virtual IR (PVIR).

    Deliberately low-level — sized sign-agnostic integers, IEEE floats,
    short SIMD vectors, byte-address pointers — so a JIT can map them onto
    any embedded target.  Signedness lives on operations, not types (as in
    LLVM). *)

type scalar = I8 | I16 | I32 | I64 | F32 | F64

type t =
  | Scalar of scalar
  | Vector of scalar * int  (** element scalar, lane count >= 2 *)
  | Ptr of scalar  (** byte address of values of the given scalar *)

val i8 : t
val i16 : t
val i32 : t
val i64 : t
val f32 : t
val f64 : t
val ptr : scalar -> t

(** [vec s lanes] — @raise Invalid_argument when [lanes < 2]. *)
val vec : scalar -> int -> t

val scalar_size : scalar -> int

(** Size in bytes (pointers are 64-bit). *)
val size : t -> int

val is_float_scalar : scalar -> bool
val is_float : t -> bool
val is_integer : t -> bool
val is_vector : t -> bool
val is_pointer : t -> bool

(** Element scalar: the scalar itself, the lane type, or the pointee. *)
val elem : t -> scalar

(** Lane count; 1 for scalars and pointers. *)
val lanes : t -> int

(** [with_lanes s n] is [Scalar s] when [n = 1], else the [n]-lane vector. *)
val with_lanes : scalar -> int -> t

val equal_scalar : scalar -> scalar -> bool
val equal : t -> t -> bool
val scalar_name : scalar -> string
val scalar_of_name : string -> scalar option
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val pp_scalar : Format.formatter -> scalar -> unit
val all_scalars : scalar list
