lib/pvir/annot.ml: Format Int64 List Printf String
