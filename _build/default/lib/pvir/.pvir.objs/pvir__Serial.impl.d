lib/pvir/serial.ml: Annot Array Buffer Char Fun Func Hashtbl Instr Int64 List Printf Prog String Types Value
