lib/pvir/value.mli: Bytes Format Types
