lib/pvir/builder.ml: Func Instr Int64 Option Types Value
