lib/pvir/func.ml: Annot Hashtbl Instr List Option Printf Types
