lib/pvir/pp.ml: Annot Array Format Func Instr List Prog Types Value
