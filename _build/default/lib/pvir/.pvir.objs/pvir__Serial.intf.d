lib/pvir/serial.mli: Prog
