lib/pvir/link.ml: Annot Func Hashtbl Instr List Printf Prog Types Verify
