lib/pvir/types.mli: Format
