lib/pvir/verify.ml: Func Instr List Printf Prog String Types Value
