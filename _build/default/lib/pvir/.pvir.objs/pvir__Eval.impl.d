lib/pvir/eval.ml: Array Float Instr Int64 Printf Types Value
