lib/pvir/value.ml: Array Bytes Format Int32 Int64 Printf String Types
