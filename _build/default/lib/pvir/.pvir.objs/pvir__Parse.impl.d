lib/pvir/parse.ml: Annot Array Func Hashtbl Instr Int64 List Printf Prog Scanf String Types Value
