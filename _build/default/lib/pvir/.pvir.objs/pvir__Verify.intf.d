lib/pvir/verify.mli: Func Prog
