lib/pvir/types.ml: Format Printf
