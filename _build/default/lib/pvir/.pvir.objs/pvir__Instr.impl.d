lib/pvir/instr.ml: List Option Types Value
