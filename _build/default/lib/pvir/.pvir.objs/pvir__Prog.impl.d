lib/pvir/prog.ml: Annot Array Func List Option Printf String Types Value
