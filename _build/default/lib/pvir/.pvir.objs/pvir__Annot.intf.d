lib/pvir/annot.mli: Format
