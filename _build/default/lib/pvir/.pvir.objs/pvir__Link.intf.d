lib/pvir/link.mli: Prog
