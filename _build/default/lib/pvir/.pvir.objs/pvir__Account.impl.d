lib/pvir/account.ml: List Printf String
