lib/core/adaptive.ml: Int64 List Printf Pvir Pvjit Pvopt Pvvm
