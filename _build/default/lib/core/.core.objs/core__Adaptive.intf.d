lib/core/adaptive.mli: Pvir Pvmach Pvvm
