lib/core/splitc.mli: Pvir Pvjit Pvmach Pvopt Pvvm
