lib/core/splitc.ml: Minic Pvir Pvjit Pvmach Pvopt Pvvm
