(** Loop unrolling on canonical counted loops.

    Used by the adaptive-optimization layer (the paper's §4 "iterative
    compilation" direction): unrolling is the textbook example of a
    transformation whose *legality* is target-independent but whose
    *profitability* is not — it trades code size for loop overhead, so the
    right factor depends on the target's branch cost and I-cache budget.
    The offline compiler proves legality; the factor is chosen per target,
    either by a heuristic or by the VM-driven iterative search in
    [Core.Adaptive].

    Mechanics mirror the vectorizer's epilogue scheme: the loop runs on
    [n & ~(k-1)] with the body repeated [k] times, and the original loop
    finishes the remainder.  Registers private to one body iteration
    (first occurrence is a definition) are renamed per copy; loop-carried
    registers (first occurrence is a use — accumulators, derived pointers)
    keep their names so cross-iteration dataflow is preserved by
    sequential order. *)

open Pvir

exception Bail of string

let bail fmt = Printf.ksprintf (fun s -> raise (Bail s)) fmt

(* reuse the vectorizer's canonical-loop recognizer *)
let recognize = Vectorize.recognize

(** Unroll one recognized loop by [factor] (a power of two >= 2).
    Returns unit; raises [Bail] when the loop shape does not allow it. *)
let transform (fn : Func.t) (info : Vectorize.loop_info) ~factor : unit =
  if factor < 2 || factor land (factor - 1) <> 0 then
    bail "factor must be a power of two >= 2";
  let body =
    List.concat_map
      (fun l -> (Func.find_block fn l).instrs)
      info.Vectorize.body_blocks
  in
  List.iter
    (fun i ->
      match i with
      | Instr.Call _ -> bail "call inside loop"
      | Instr.Alloca _ -> bail "alloca inside loop"
      | _ -> ())
    body;
  (* classify: private (first occurrence is a def) vs loop-carried *)
  let seen_use = Hashtbl.create 16 in
  let private_regs = Hashtbl.create 16 in
  List.iter
    (fun i ->
      List.iter (fun u -> Hashtbl.replace seen_use u ()) (Instr.uses i);
      match Instr.def i with
      | Some d when (not (Hashtbl.mem seen_use d)) && d <> info.Vectorize.iv ->
        Hashtbl.replace private_regs d ()
      | _ -> ())
    body;
  (* fresh blocks: upre (guard computation), uheader, ubody, -> original *)
  let upre = Func.add_block fn in
  let uheader = Func.add_block fn in
  let ubody = Func.add_block fn in
  List.iter
    (fun p ->
      let pb = Func.find_block fn p in
      pb.term <-
        Instr.map_term_labels
          (fun l -> if l = info.Vectorize.header then upre.label else l)
          pb.term)
    info.Vectorize.preheaders;
  let mask = Func.fresh_reg fn Types.i64 in
  let n_unroll = Func.fresh_reg fn Types.i64 in
  upre.instrs <-
    [
      Instr.Const (mask, Value.i64 (Int64.lognot (Int64.of_int (factor - 1))));
      Instr.Binop (Instr.And, n_unroll, info.Vectorize.bound, mask);
    ];
  upre.term <- Instr.Br uheader.label;
  let ucmp = Func.fresh_reg fn Types.i32 in
  uheader.instrs <- [ Instr.Cmp (Instr.Slt, ucmp, info.Vectorize.iv, n_unroll) ];
  uheader.term <- Instr.Cbr (ucmp, ubody.label, info.Vectorize.header);
  (* repeat the body; private regs renamed per copy *)
  let out = ref [] in
  for copy = 0 to factor - 1 do
    let rename = Hashtbl.create 16 in
    let map r =
      if copy = 0 then r
      else
        match Hashtbl.find_opt rename r with
        | Some r' -> r'
        | None ->
          if Hashtbl.mem private_regs r then begin
            let r' = Func.fresh_reg fn (Func.reg_type fn r) in
            Hashtbl.replace rename r r';
            r'
          end
          else r
    in
    List.iter (fun i -> out := Instr.map_regs map i :: !out) body
  done;
  ubody.instrs <- List.rev !out;
  ubody.term <- Instr.Br uheader.label

(** Unroll every eligible innermost loop of [fn] by [factor].  Returns the
    number of loops unrolled. *)
let run ?account ~factor (p : Prog.t) (fn : Func.t) : int =
  Account.charge_opt account ~pass:"unroll" (2 * Func.instr_count fn);
  let cfg = Cfg.build fn in
  let loops = Loops.find cfg in
  let innermost =
    List.filter
      (fun (lp : Loops.loop) ->
        not
          (List.exists
             (fun (other : Loops.loop) ->
               other.Loops.header <> lp.Loops.header
               && List.mem other.Loops.header lp.Loops.blocks)
             loops.Loops.loops))
      loops.Loops.loops
  in
  ignore p;
  List.fold_left
    (fun acc lp ->
      match
        let info = recognize fn cfg lp in
        transform fn info ~factor
      with
      | () -> acc + 1
      | exception Bail _ -> acc
      | exception Vectorize.Bail _ -> acc)
    0 innermost
