(** Natural-loop detection and loop-level facts (nesting depth, induction
    variables, trip counts).  Feeds LICM, the vectorizer and the offline
    register-allocation annotator. *)

open Pvir

type loop = {
  header : int;
  blocks : int list;  (** labels of all blocks in the loop, header included *)
  latches : int list;  (** sources of back edges *)
  depth : int;  (** nesting depth, outermost = 1 *)
}

type t = { loops : loop list; depth_of : (int, int) Hashtbl.t }

(** Back edge: edge [l -> h] where [h] dominates [l]. *)
let find (cfg : Cfg.t) : t =
  let dom = Cfg.dominators cfg in
  let back_edges =
    List.concat_map
      (fun (b : Func.block) ->
        List.filter_map
          (fun s ->
            if Cfg.reachable cfg b.label && Cfg.dominates dom s b.label then
              Some (b.label, s)
            else None)
          (Cfg.succs cfg b.label))
      cfg.fn.blocks
  in
  (* natural loop of a back edge (l, h): h plus all blocks reaching l
     without passing through h *)
  let loop_of_edges h latches =
    let body = Hashtbl.create 8 in
    Hashtbl.replace body h ();
    let rec pull l =
      if not (Hashtbl.mem body l) then (
        Hashtbl.replace body l ();
        List.iter pull (Cfg.preds cfg l))
    in
    List.iter pull latches;
    Hashtbl.fold (fun l () acc -> l :: acc) body []
  in
  (* group back edges by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (l, h) ->
      let old = try Hashtbl.find by_header h with Not_found -> [] in
      Hashtbl.replace by_header h (l :: old))
    back_edges;
  let loops =
    Hashtbl.fold
      (fun h latches acc ->
        { header = h; blocks = loop_of_edges h latches; latches; depth = 1 }
        :: acc)
      by_header []
  in
  (* nesting depth: number of loops whose body contains the block *)
  let depth_of = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      let d =
        List.length (List.filter (fun lp -> List.mem b.label lp.blocks) loops)
      in
      Hashtbl.replace depth_of b.label d)
    cfg.fn.blocks;
  let loops =
    List.map
      (fun lp -> { lp with depth = (try Hashtbl.find depth_of lp.header with Not_found -> 1) })
      loops
  in
  { loops; depth_of }

let depth_of_block (t : t) l =
  match Hashtbl.find_opt t.depth_of l with Some d -> d | None -> 0

let in_loop lp l = List.mem l lp.blocks

(** Registers defined anywhere inside the loop. *)
let defs_in (fn : Func.t) (lp : loop) =
  let defs = Hashtbl.create 16 in
  List.iter
    (fun l ->
      let b = Func.find_block fn l in
      List.iter
        (fun i -> Option.iter (fun d -> Hashtbl.replace defs d ()) (Instr.def i))
        b.instrs)
    lp.blocks;
  defs

(** Is register [r] invariant in [lp] (never defined inside)? *)
let invariant_reg defs r = not (Hashtbl.mem defs r)

(** Induction variable: a register [i] with exactly one definition inside
    the loop, of the shape [i = add i, c] with [c] a constant; returns
    [(i, step, increment_block)] candidates. *)
let induction_variables (fn : Func.t) (lp : loop) :
    (Instr.reg * int64 * int) list =
  (* registers holding known integer constants: defined exactly once in
     the whole function, by a Const (LICM may have hoisted the step
     constant out of the loop) *)
  let const_of = Hashtbl.create 16 in
  let fun_defs = Hashtbl.create 16 in
  Func.iter_instrs
    (fun _ i ->
      Option.iter
        (fun d ->
          Hashtbl.replace fun_defs d
            (1 + try Hashtbl.find fun_defs d with Not_found -> 0))
        (Instr.def i))
    fn;
  Func.iter_instrs
    (fun _ i ->
      match i with
      | Instr.Const (d, Value.Int (_, v))
        when (try Hashtbl.find fun_defs d with Not_found -> 0) = 1 ->
        Hashtbl.replace const_of d v
      | _ -> ())
    fn;
  let defs_count = Hashtbl.create 16 in
  let candidates = ref [] in
  List.iter
    (fun l ->
      let b = Func.find_block fn l in
      List.iter
        (fun i ->
          Option.iter
            (fun d ->
              let c = try Hashtbl.find defs_count d with Not_found -> 0 in
              Hashtbl.replace defs_count d (c + 1))
            (Instr.def i);
          match i with
          | Instr.Binop (Instr.Add, d, a, b') when d = a -> (
            match Hashtbl.find_opt const_of b' with
            | Some step -> candidates := (d, step, l) :: !candidates
            | None -> ())
          | Instr.Binop (Instr.Add, d, a, b') when d = b' -> (
            match Hashtbl.find_opt const_of a with
            | Some step -> candidates := (d, step, l) :: !candidates
            | None -> ())
          | _ -> ())
        b.instrs)
    lp.blocks;
  List.filter
    (fun (r, _, _) ->
      (* exactly one def inside the loop: the increment itself... note the
         Const feeding the step counts separately *)
      (try Hashtbl.find defs_count r with Not_found -> 0) = 1)
    !candidates
