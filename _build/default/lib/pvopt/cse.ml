(** Local common-subexpression elimination.

    Within a block, a pure computation whose operands have not been
    redefined since an identical earlier computation is replaced by a copy
    of the earlier result.  Loads participate until the next store or call
    invalidates memory.  (Copy propagation then erases the copies.) *)

open Pvir

(* key identifying a computation up to its destination *)
type key =
  | Kbin of Instr.binop * Instr.reg * Instr.reg
  | Kun of Instr.unop * Instr.reg
  | Kconv of Instr.conv * Types.t * Instr.reg
  | Kcmp of Instr.relop * Instr.reg * Instr.reg
  | Ksel of Instr.reg * Instr.reg * Instr.reg
  | Kload of Types.t * Instr.reg * int
  | Kgaddr of string
  | Ksplat of Types.t * Instr.reg
  | Kextract of Instr.reg * int
  | Kreduce of Instr.redop * Instr.reg
  | Kconst of string  (** printed value, cheap structural key *)

let key_of (fn : Func.t) (i : Instr.t) : key option =
  match i with
  | Instr.Binop (op, _, a, b) ->
    (* exploit commutativity for a canonical key *)
    let a, b =
      match op with
      | Instr.Add | Instr.Mul | Instr.And | Instr.Or | Instr.Xor | Instr.Min
      | Instr.Max | Instr.Umin | Instr.Umax ->
        if a <= b then (a, b) else (b, a)
      | _ -> (a, b)
    in
    Some (Kbin (op, a, b))
  | Instr.Unop (op, _, a) -> Some (Kun (op, a))
  | Instr.Conv (c, d, a) -> Some (Kconv (c, Func.reg_type fn d, a))
  | Instr.Cmp (op, _, a, b) -> Some (Kcmp (op, a, b))
  | Instr.Select (_, c, a, b) -> Some (Ksel (c, a, b))
  | Instr.Load (ty, _, base, off) -> Some (Kload (ty, base, off))
  | Instr.Gaddr (_, g) -> Some (Kgaddr g)
  | Instr.Splat (d, a) -> Some (Ksplat (Func.reg_type fn d, a))
  | Instr.Extract (_, a, lane) -> Some (Kextract (a, lane))
  | Instr.Reduce (op, _, a) -> Some (Kreduce (op, a))
  | Instr.Const (_, v) -> Some (Kconst (Value.to_string v))
  | Instr.Mov _ | Instr.Store _ | Instr.Alloca _ | Instr.Call _ -> None

let run_block (fn : Func.t) (b : Func.block) : bool =
  let changed = ref false in
  let available : (key, Instr.reg) Hashtbl.t = Hashtbl.create 16 in
  let kill_defs d =
    (* drop table entries mentioning d (as operand or result) *)
    let stale =
      Hashtbl.fold
        (fun k r acc ->
          let mentions =
            r = d
            ||
            match k with
            | Kbin (_, a, b') | Kcmp (_, a, b') -> a = d || b' = d
            | Kun (_, a) | Kconv (_, _, a) | Kload (_, a, _) | Ksplat (_, a)
            | Kextract (a, _)
            | Kreduce (_, a) -> a = d
            | Ksel (c, a, b') -> c = d || a = d || b' = d
            | Kgaddr _ | Kconst _ -> false
          in
          if mentions then k :: acc else acc)
        available []
    in
    List.iter (Hashtbl.remove available) stale
  in
  let kill_memory () =
    let stale =
      Hashtbl.fold
        (fun k _ acc -> match k with Kload _ -> k :: acc | _ -> acc)
        available []
    in
    List.iter (Hashtbl.remove available) stale
  in
  let rewrite i =
    match i with
    | Instr.Store _ ->
      kill_memory ();
      i
    | Instr.Call _ ->
      kill_memory ();
      Option.iter kill_defs (Instr.def i);
      i
    | _ -> (
      match (key_of fn i, Instr.def i) with
      | Some k, Some d -> (
        match Hashtbl.find_opt available k with
        | Some r
          when Types.equal (Func.reg_type fn r) (Func.reg_type fn d)
               (* never rewrite self-referential updates (i = add i, 1):
                  they are the canonical induction-variable shape *)
               && not (List.mem d (Instr.uses i)) ->
          changed := true;
          kill_defs d;
          Instr.Mov (d, r)
        | _ ->
          kill_defs d;
          (* do not record self-referential computations (d = add d, x) *)
          if not (List.mem d (Instr.uses i)) then Hashtbl.replace available k d;
          i)
      | _ ->
        Option.iter kill_defs (Instr.def i);
        i)
  in
  b.instrs <- List.map rewrite b.instrs;
  !changed

let run ?account (fn : Func.t) : bool =
  Account.charge_opt account ~pass:"cse" (2 * Func.instr_count fn);
  List.fold_left (fun acc b -> run_block fn b || acc) false fn.blocks
