(** CFG cleanup: remove unreachable blocks, thread trivial jumps, merge
    single-predecessor/single-successor block pairs.

    Keeps the IR small for later passes (and for the bytecode size
    experiment E5) without changing semantics. *)

open Pvir

(* block whose body is empty and terminator is an unconditional branch *)
let trivial_target (fn : Func.t) l =
  let b = Func.find_block fn l in
  match (b.instrs, b.term) with
  | [], Instr.Br t when t <> l -> Some t
  | _ -> None

(* follow chains of empty forwarding blocks (with cycle guard) *)
let rec resolve fn seen l =
  if List.mem l seen then l
  else
    match trivial_target fn l with
    | Some t -> resolve fn (l :: seen) t
    | None -> l

let thread_jumps (fn : Func.t) : bool =
  let changed = ref false in
  List.iter
    (fun (b : Func.block) ->
      let retarget l =
        let t = resolve fn [ b.label ] l in
        if t <> l then changed := true;
        t
      in
      b.term <- Instr.map_term_labels retarget b.term)
    fn.blocks;
  !changed

let merge_pairs (fn : Func.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let cfg = Cfg.build fn in
    let candidate =
      List.find_opt
        (fun (b : Func.block) ->
          match b.term with
          | Instr.Br t ->
            t <> b.label
            && t <> (Func.entry fn).label
            && (match Cfg.preds cfg t with [ _ ] -> true | _ -> false)
          | _ -> false)
        (List.filter (fun (b : Func.block) -> Cfg.reachable cfg b.label) fn.blocks)
    in
    match candidate with
    | Some b -> (
      match b.term with
      | Instr.Br t ->
        let tb = Func.find_block fn t in
        b.instrs <- b.instrs @ tb.instrs;
        b.term <- tb.term;
        fn.blocks <-
          List.filter (fun (x : Func.block) -> x.label <> t) fn.blocks;
        changed := true;
        continue_ := true
      | _ -> ())
    | None -> ()
  done;
  !changed

let run ?account (fn : Func.t) : bool =
  Account.charge_opt account ~pass:"simplify_cfg" (Func.instr_count fn);
  let a = thread_jumps fn in
  let b = Cfg.prune_unreachable fn in
  let c = merge_pairs fn in
  a || b || c
