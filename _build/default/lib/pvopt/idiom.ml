(** Idiom recognition: rewrite compare+select pairs into min/max
    operations.

    The ternary-based `max` kernels of Table 1 lower to
    [c = cmp ugt x, y; d = select c, x, y]; rewriting them to [d = umax x, y]
    (i) produces better scalar code and (ii) turns the reduction into an
    associative operation the vectorizer can handle. *)

open Pvir

let minmax_of (rel : Instr.relop) ~(takes_lhs : bool) : Instr.binop option =
  (* select picks x (the lhs) when the comparison holds *)
  match (rel, takes_lhs) with
  | Instr.Sgt, true | Instr.Sge, true | Instr.Slt, false | Instr.Sle, false ->
    Some Instr.Max
  | Instr.Slt, true | Instr.Sle, true | Instr.Sgt, false | Instr.Sge, false ->
    Some Instr.Min
  | Instr.Ugt, true | Instr.Uge, true | Instr.Ult, false | Instr.Ule, false ->
    Some Instr.Umax
  | Instr.Ult, true | Instr.Ule, true | Instr.Ugt, false | Instr.Uge, false ->
    Some Instr.Umin
  | (Instr.Eq | Instr.Ne), _ -> None

let run_block (fn : Func.t) (b : Func.block) : bool =
  let changed = ref false in
  (* count uses of each register in the function to make sure the compare
     result is used only by the select we fuse *)
  let uses = Copyprop.count_uses fn in
  let use_count r = try Hashtbl.find uses r with Not_found -> 0 in
  (* the compare and its select need not be adjacent (if-conversion puts
     speculated arm code in between): track the last compare defining each
     register, invalidated when any of its registers is redefined *)
  let pending : (Instr.reg, Instr.relop * Instr.reg * Instr.reg) Hashtbl.t =
    Hashtbl.create 4
  in
  let fused_cmps = Hashtbl.create 4 in
  let invalidate d =
    Hashtbl.remove pending d;
    let stale =
      Hashtbl.fold
        (fun c (_, x, y) acc -> if x = d || y = d then c :: acc else acc)
        pending []
    in
    List.iter (Hashtbl.remove pending) stale
  in
  let rewrite i =
    let i' =
      match i with
      | Instr.Select (d, c, a, b') -> (
        match Hashtbl.find_opt pending c with
        | Some (rel, x, y) when use_count c = 1 -> (
          let float_operands = Types.is_float (Func.reg_type fn x) in
          let signed_ok op =
            (* floats only have the ordered predicates; min/max = fmin/fmax *)
            match op with
            | Instr.Umin | Instr.Umax -> not float_operands
            | _ -> true
          in
          let fuse op =
            changed := true;
            Hashtbl.replace fused_cmps c ();
            Instr.Binop (op, d, x, y)
          in
          if a = x && b' = y then
            match minmax_of rel ~takes_lhs:true with
            | Some op when signed_ok op -> fuse op
            | _ -> i
          else if a = y && b' = x then
            match minmax_of rel ~takes_lhs:false with
            | Some op when signed_ok op -> fuse op
            | _ -> i
          else i)
        | _ -> i)
      | _ -> i
    in
    (match Instr.def i' with Some d -> invalidate d | None -> ());
    (match i' with
    | Instr.Cmp (rel, c, x, y) -> Hashtbl.replace pending c (rel, x, y)
    | _ -> ());
    i'
  in
  let rewritten = List.map rewrite b.instrs in
  (* drop the compares consumed by fusion (their only use is gone) *)
  b.instrs <-
    List.filter
      (fun i ->
        match i with
        | Instr.Cmp (_, c, _, _) -> not (Hashtbl.mem fused_cmps c)
        | _ -> true)
      rewritten;
  !changed

let run ?account (fn : Func.t) : bool =
  Account.charge_opt account ~pass:"idiom" (Func.instr_count fn);
  List.fold_left (fun acc b -> run_block fn b || acc) false fn.blocks
