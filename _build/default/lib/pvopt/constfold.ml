(** Constant folding, local constant propagation, algebraic simplification
    and branch folding.

    Works block-locally (PVIR registers are mutable, so global propagation
    would need reaching definitions; the block-local version already
    catches everything the frontend generates, because lowering emits
    constants next to their uses). *)

open Pvir

let fold_block (fn : Func.t) (b : Func.block) : bool =
  let changed = ref false in
  let consts : (Instr.reg, Value.t) Hashtbl.t = Hashtbl.create 8 in
  let const_of r = Hashtbl.find_opt consts r in
  let kill d =
    Hashtbl.remove consts d
  in
  let as_const i =
    (* evaluate instruction when all operands are known constants *)
    match i with
    | Instr.Binop (op, _, a, b') -> (
      match (const_of a, const_of b') with
      | Some va, Some vb -> (
        try Some (Eval.binop op va vb) with
        | Eval.Division_by_zero -> None
        | Invalid_argument _ -> None)
      | _ -> None)
    | Instr.Unop (op, _, a) -> (
      match const_of a with
      | Some va -> ( try Some (Eval.unop op va) with Invalid_argument _ -> None)
      | None -> None)
    | Instr.Conv (kind, d, a) -> (
      match const_of a with
      | Some va -> (
        try Some (Eval.conv kind (Func.reg_type fn d) va)
        with Invalid_argument _ -> None)
      | None -> None)
    | Instr.Cmp (op, _, a, b') -> (
      match (const_of a, const_of b') with
      | Some va, Some vb -> (
        try Some (Eval.cmp op va vb) with Invalid_argument _ -> None)
      | _ -> None)
    | Instr.Select (_, c, a, b') -> (
      match (const_of c, const_of a, const_of b') with
      | Some vc, Some va, Some vb -> Some (Eval.select vc va vb)
      | _ -> None)
    | Instr.Mov (_, a) -> const_of a
    | _ -> None
  in
  let is_int_const r v =
    match const_of r with
    | Some (Value.Int (_, x)) -> Int64.equal x v
    | _ -> false
  in
  let algebraic i =
    (* identity/zero simplifications that keep typing intact *)
    match i with
    | Instr.Binop (Instr.Add, d, a, b') when is_int_const b' 0L ->
      Some (Instr.Mov (d, a))
    | Instr.Binop (Instr.Add, d, a, b') when is_int_const a 0L ->
      Some (Instr.Mov (d, b'))
    | Instr.Binop (Instr.Sub, d, a, b') when is_int_const b' 0L ->
      Some (Instr.Mov (d, a))
    | Instr.Binop (Instr.Mul, d, a, b') when is_int_const b' 1L ->
      Some (Instr.Mov (d, a))
    | Instr.Binop (Instr.Mul, d, a, b') when is_int_const a 1L ->
      Some (Instr.Mov (d, b'))
    | Instr.Binop ((Instr.Div | Instr.Udiv), d, a, b') when is_int_const b' 1L
      -> Some (Instr.Mov (d, a))
    | Instr.Binop ((Instr.Shl | Instr.Lshr | Instr.Ashr), d, a, b')
      when is_int_const b' 0L -> Some (Instr.Mov (d, a))
    | Instr.Binop ((Instr.Or | Instr.Xor), d, a, b') when is_int_const b' 0L
      -> Some (Instr.Mov (d, a))
    | _ -> None
  in
  let rewrite i =
    let i =
      match algebraic i with
      | Some i' ->
        changed := true;
        i'
      | None -> i
    in
    let i =
      match Instr.def i with
      | Some d when not (Instr.has_side_effect i) -> (
        match as_const i with
        | Some v ->
          (match i with Instr.Const _ -> () | _ -> changed := true);
          Instr.Const (d, v)
        | None -> i)
      | _ -> i
    in
    (* update the constant environment *)
    (match Instr.def i with Some d -> kill d | None -> ());
    (match i with
    | Instr.Const (d, v) -> Hashtbl.replace consts d v
    | _ -> ());
    i
  in
  b.instrs <- List.map rewrite b.instrs;
  (* branch folding *)
  (match b.term with
  | Instr.Cbr (c, l1, l2) -> (
    match const_of c with
    | Some v ->
      b.term <- Instr.Br (if Value.to_bool v then l1 else l2);
      changed := true
    | None -> if l1 = l2 then (b.term <- Instr.Br l1; changed := true))
  | _ -> ());
  !changed

let run ?account (fn : Func.t) : bool =
  Account.charge_opt account ~pass:"constfold" (Func.instr_count fn);
  List.fold_left (fun acc b -> fold_block fn b || acc) false fn.blocks
