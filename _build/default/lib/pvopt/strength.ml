(** Strength reduction on derived induction variables.

    The frontend addresses [a\[i\]] as [base + i * esz], leaving a multiply
    and an add in every loop iteration.  For a unit-step induction
    variable [i], each such address is itself an induction variable:

    {v
    loop:  m = mul i, c            preheader: t = mul i, c
           addr = add base, m  ->             addr = add base, t
           ...                      loop:     ...
           i = add i, step                    i = add i, step
                                              addr = add addr, c*step
    v}

    The [c = 1] case ([addr = add base, i], byte-indexed arrays) is
    handled the same way.  The dead multiply is left for DCE.  Runs
    *after* vectorization (the vectorizer wants the affine form) and
    benefits scalar and vector loops alike — keeping the Table-1 scalar
    baseline honest. *)

open Pvir

(* the increment must be the last instruction of the unique latch so the
   derived-IV updates can be appended after it *)
let latch_increment (fn : Func.t) (lp : Loops.loop) ivs =
  match lp.latches with
  | [ latch ] -> (
    let b = Func.find_block fn latch in
    match List.rev b.instrs with
    | Instr.Binop (Instr.Add, d, _, _) :: _ ->
      List.find_opt (fun (iv, _, _) -> iv = d) ivs
      |> Option.map (fun (iv, step, _) -> (latch, iv, step))
    | _ -> None)
  | _ -> None

let run_loop (fn : Func.t) (cfg : Cfg.t) (lp : Loops.loop) : bool =
  let defs = Loops.defs_in fn lp in
  let consts = Vectorize.function_consts fn in
  let ivs = Loops.induction_variables fn lp in
  match latch_increment fn lp ivs with
  | None -> false
  | Some (latch, iv, step) ->
    let outside_preds =
      List.filter (fun p -> not (Loops.in_loop lp p)) (Cfg.preds cfg lp.header)
    in
    if outside_preds = [] then false
    else begin
      (* registers used outside the loop must not become derived IVs *)
      let used_outside = Hashtbl.create 8 in
      List.iter
        (fun (b : Func.block) ->
          if not (Loops.in_loop lp b.label) then (
            List.iter
              (fun i ->
                List.iter (fun r -> Hashtbl.replace used_outside r ()) (Instr.uses i))
              b.instrs;
            List.iter
              (fun r -> Hashtbl.replace used_outside r ())
              (Instr.term_uses b.term)))
        fn.blocks;
      (* muls of the IV by a constant, defined inside the loop *)
      let scaled = Hashtbl.create 4 in
      List.iter
        (fun l ->
          List.iter
            (fun i ->
              match i with
              | Instr.Binop (Instr.Mul, m, a, b) when a = iv || b = iv -> (
                let other = if a = iv then b else a in
                match Hashtbl.find_opt consts other with
                | Some c -> Hashtbl.replace scaled m c
                | None -> ())
              | _ -> ())
            (Func.find_block fn l).instrs)
        lp.blocks;
      (* scale of an operand feeding an address add: the IV itself has
         scale 1, a scaled multiply has its constant *)
      let scale_of r =
        if r = iv then Some 1L else Hashtbl.find_opt scaled r
      in
      (* only rewrite registers with a single definition in the loop *)
      let def_count = Hashtbl.create 16 in
      List.iter
        (fun l ->
          List.iter
            (fun i ->
              Option.iter
                (fun d ->
                  Hashtbl.replace def_count d
                    (1 + try Hashtbl.find def_count d with Not_found -> 0))
                (Instr.def i))
            (Func.find_block fn l).instrs)
        lp.blocks;
      let pre = ref [] in
      let post_incr = ref [] in
      let changed = ref false in
      List.iter
        (fun l ->
          let b = Func.find_block fn l in
          b.instrs <-
            List.filter
              (fun i ->
                match i with
                | Instr.Binop (Instr.Add, addr, x, y)
                  when addr <> iv
                       && (not (Hashtbl.mem used_outside addr))
                       && (try Hashtbl.find def_count addr with Not_found -> 0)
                          = 1 -> (
                  let classify inv idx =
                    if
                      Loops.invariant_reg defs inv
                      && (not (Types.is_float (Func.reg_type fn addr)))
                    then Option.map (fun s -> (inv, s)) (scale_of idx)
                    else None
                  in
                  let hit =
                    match (classify x y, classify y x) with
                    | Some h, _ -> Some h
                    | None, (Some _ as h) -> h
                    | None, None -> None
                  in
                  match hit with
                  | Some (base, scale) ->
                    changed := true;
                    (* preheader: addr = base + iv*scale *)
                    (if Int64.equal scale 1L then
                       pre := !pre @ [ Instr.Binop (Instr.Add, addr, base, iv) ]
                     else begin
                       let sc = Func.fresh_reg fn Types.i64 in
                       let t = Func.fresh_reg fn Types.i64 in
                       pre :=
                         !pre
                         @ [
                             Instr.Const (sc, Value.i64 scale);
                             Instr.Binop (Instr.Mul, t, iv, sc);
                             Instr.Binop (Instr.Add, addr, base, t);
                           ]
                     end);
                    (* latch: addr += scale*step *)
                    let inc = Func.fresh_reg fn Types.i64 in
                    post_incr :=
                      !post_incr
                      @ [
                          Instr.Const (inc, Value.i64 (Int64.mul scale step));
                          Instr.Binop (Instr.Add, addr, addr, inc);
                        ];
                    false  (* drop the in-loop add *)
                  | None -> true)
                | _ -> true)
              b.instrs)
        lp.blocks;
      if not !changed then false
      else begin
        (* install the preheader *)
        let preb = Func.add_block fn in
        preb.instrs <- !pre;
        preb.term <- Instr.Br lp.header;
        List.iter
          (fun p ->
            let pb = Func.find_block fn p in
            pb.term <-
              Instr.map_term_labels
                (fun l -> if l = lp.header then preb.label else l)
                pb.term)
          outside_preds;
        (* derived-IV updates after the increment *)
        let lb = Func.find_block fn latch in
        lb.instrs <- lb.instrs @ !post_incr;
        true
      end
    end

let run ?account (fn : Func.t) : bool =
  Account.charge_opt account ~pass:"strength" (2 * Func.instr_count fn);
  let cfg = Cfg.build fn in
  let loops = Loops.find cfg in
  List.fold_left
    (fun acc lp -> run_loop fn cfg lp || acc)
    false loops.Loops.loops
