(** Control-flow-graph utilities over {!Pvir.Func} used by every pass:
    predecessor maps, reachability, reverse postorder, and block-level
    liveness. *)

open Pvir

type t = {
  fn : Func.t;
  preds : (int, int list) Hashtbl.t;
  succs : (int, int list) Hashtbl.t;
  rpo : int list;  (** reverse postorder of reachable labels, entry first *)
}

let successors (b : Func.block) = Instr.successors b.term

let build (fn : Func.t) : t =
  let preds = Hashtbl.create 16 in
  let succs = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      Hashtbl.replace succs b.label (successors b);
      if not (Hashtbl.mem preds b.label) then Hashtbl.replace preds b.label [])
    fn.blocks;
  List.iter
    (fun (b : Func.block) ->
      List.iter
        (fun s ->
          let old = try Hashtbl.find preds s with Not_found -> [] in
          Hashtbl.replace preds s (b.label :: old))
        (successors b))
    fn.blocks;
  (* depth-first postorder from entry *)
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec dfs l =
    if not (Hashtbl.mem visited l) then (
      Hashtbl.replace visited l ();
      List.iter dfs (try Hashtbl.find succs l with Not_found -> []);
      order := l :: !order)
  in
  dfs (Func.entry fn).label;
  { fn; preds; succs; rpo = !order }

let preds t l = try Hashtbl.find t.preds l with Not_found -> []
let succs t l = try Hashtbl.find t.succs l with Not_found -> []
let reachable t l = List.mem l t.rpo

(** Remove blocks unreachable from the entry.  Returns true if anything
    changed. *)
let prune_unreachable (fn : Func.t) : bool =
  let t = build fn in
  let keep = List.filter (fun (b : Func.block) -> reachable t b.label) fn.blocks in
  let changed = List.length keep <> List.length fn.blocks in
  if changed then fn.blocks <- keep;
  changed

(* ---------------- dominators (Cooper-Harvey-Kennedy) ---------------- *)

type dom = { idom : (int, int) Hashtbl.t (* entry maps to itself *) }

let dominators (t : t) : dom =
  let rpo = Array.of_list t.rpo in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i l -> Hashtbl.replace index l i) rpo;
  let idom = Hashtbl.create 16 in
  let entry = (Func.entry t.fn).label in
  Hashtbl.replace idom entry entry;
  let intersect a b =
    let rec go a b =
      if a = b then a
      else
        let ia = Hashtbl.find index a and ib = Hashtbl.find index b in
        if ia > ib then go (Hashtbl.find idom a) b else go a (Hashtbl.find idom b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun l ->
        if l <> entry then
          let processed =
            List.filter (fun p -> Hashtbl.mem idom p && Hashtbl.mem index p)
              (preds t l)
          in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if Hashtbl.find_opt idom l <> Some new_idom then (
              Hashtbl.replace idom l new_idom;
              changed := true))
      rpo
  done;
  { idom }

(** [dominates dom a b] — does block [a] dominate block [b]? *)
let dominates (d : dom) a b =
  let rec go b =
    if a = b then true
    else
      match Hashtbl.find_opt d.idom b with
      | Some p when p <> b -> go p
      | _ -> false
  in
  go b

(* ---------------- liveness ---------------- *)

type liveness = {
  live_in : (int, (Pvir.Instr.reg, unit) Hashtbl.t) Hashtbl.t;
  live_out : (int, (Pvir.Instr.reg, unit) Hashtbl.t) Hashtbl.t;
}

let block_use_def (b : Func.block) =
  let use = Hashtbl.create 8 and def = Hashtbl.create 8 in
  List.iter
    (fun i ->
      List.iter
        (fun r -> if not (Hashtbl.mem def r) then Hashtbl.replace use r ())
        (Instr.uses i);
      Option.iter (fun d -> Hashtbl.replace def d ()) (Instr.def i))
    b.instrs;
  List.iter
    (fun r -> if not (Hashtbl.mem def r) then Hashtbl.replace use r ())
    (Instr.term_uses b.term);
  (use, def)

(** Classic backward block-level liveness. *)
let liveness (t : t) : liveness =
  let fn = t.fn in
  let use_def = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) -> Hashtbl.replace use_def b.label (block_use_def b))
    fn.blocks;
  let live_in = Hashtbl.create 16 and live_out = Hashtbl.create 16 in
  List.iter
    (fun (b : Func.block) ->
      Hashtbl.replace live_in b.label (Hashtbl.create 8);
      Hashtbl.replace live_out b.label (Hashtbl.create 8))
    fn.blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in postorder (reverse of rpo) for fast convergence *)
    List.iter
      (fun l ->
        let out = Hashtbl.find live_out l in
        List.iter
          (fun s ->
            match Hashtbl.find_opt live_in s with
            | Some sin ->
              Hashtbl.iter
                (fun r () ->
                  if not (Hashtbl.mem out r) then (
                    Hashtbl.replace out r ();
                    changed := true))
                sin
            | None -> ())
          (succs t l);
        let use, def = Hashtbl.find use_def l in
        let inn = Hashtbl.find live_in l in
        Hashtbl.iter
          (fun r () ->
            if not (Hashtbl.mem inn r) then (
              Hashtbl.replace inn r ();
              changed := true))
          use;
        Hashtbl.iter
          (fun r () ->
            if (not (Hashtbl.mem def r)) && not (Hashtbl.mem inn r) then (
              Hashtbl.replace inn r ();
              changed := true))
          out)
      (List.rev t.rpo)
  done;
  { live_in; live_out }

let live_out_of (lv : liveness) l =
  match Hashtbl.find_opt lv.live_out l with
  | Some h -> h
  | None -> Hashtbl.create 1

let live_in_of (lv : liveness) l =
  match Hashtbl.find_opt lv.live_in l with
  | Some h -> h
  | None -> Hashtbl.create 1
