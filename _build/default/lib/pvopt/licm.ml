(** Loop-invariant code motion.

    Pure instructions whose operands are loop-invariant move to a
    preheader block inserted on the non-backedge entries of the loop.
    Because PVIR registers are mutable, an instruction is only hoisted if
    its destination has a single definition inside the loop and is not
    live into the loop header from outside (the hoisted def must not
    clobber a value the first iteration still needs). *)

open Pvir

let hoist_loop (fn : Func.t) (lp : Loops.loop) : bool =
  let cfg = Cfg.build fn in
  let lv = Cfg.liveness cfg in
  (* build/locate the preheader: a fresh block taking every entry edge *)
  let outside_preds =
    List.filter (fun p -> not (Loops.in_loop lp p)) (Cfg.preds cfg lp.header)
  in
  if outside_preds = [] then false
  else begin
    let defs = Loops.defs_in fn lp in
    (* count defs per register inside the loop *)
    let def_count = Hashtbl.create 16 in
    List.iter
      (fun l ->
        let b = Func.find_block fn l in
        List.iter
          (fun i ->
            Option.iter
              (fun d ->
                Hashtbl.replace def_count d
                  (1 + try Hashtbl.find def_count d with Not_found -> 0))
              (Instr.def i))
          b.instrs)
      lp.blocks;
    let live_into_header = Cfg.live_in_of lv lp.header in
    let hoistable = ref [] in
    let invariant = Hashtbl.create 16 in
    let is_invariant_reg r =
      Loops.invariant_reg defs r || Hashtbl.mem invariant r
    in
    (* single forward scan over loop blocks in rpo; catches chains in order *)
    let loop_blocks_rpo = List.filter (fun l -> Loops.in_loop lp l) cfg.rpo in
    List.iter
      (fun l ->
        let b = Func.find_block fn l in
        List.iter
          (fun i ->
            match Instr.def i with
            | Some d
              when (not (Instr.has_side_effect i))
                   && (not (Instr.reads_memory i))
                   && List.for_all is_invariant_reg (Instr.uses i)
                   && (try Hashtbl.find def_count d with Not_found -> 0) = 1
                   && not (Hashtbl.mem live_into_header d) ->
              Hashtbl.replace invariant d ();
              hoistable := i :: !hoistable
            | _ -> ())
          b.instrs)
      loop_blocks_rpo;
    let hoistable = List.rev !hoistable in
    if hoistable = [] then false
    else begin
      (* create the preheader and retarget outside edges *)
      let pre = Func.add_block fn in
      pre.instrs <- hoistable;
      pre.term <- Instr.Br lp.header;
      List.iter
        (fun p ->
          let pb = Func.find_block fn p in
          pb.term <-
            Instr.map_term_labels
              (fun l -> if l = lp.header then pre.label else l)
              pb.term)
        outside_preds;
      (* remove hoisted instructions from the loop *)
      List.iter
        (fun l ->
          let b = Func.find_block fn l in
          b.instrs <-
            List.filter (fun i -> not (List.memq i hoistable)) b.instrs)
        lp.blocks;
      true
    end
  end

let run ?account (fn : Func.t) : bool =
  Account.charge_opt account ~pass:"licm" (3 * Func.instr_count fn);
  let cfg = Cfg.build fn in
  let loops = Loops.find cfg in
  (* innermost first so invariants can bubble outward over repeated runs *)
  let sorted =
    List.sort
      (fun (a : Loops.loop) b -> compare b.depth a.depth)
      loops.Loops.loops
  in
  List.fold_left (fun acc lp -> hoist_loop fn lp || acc) false sorted
