(** Function inlining.

    Small or annotation-marked ({!Pvir.Annot.key_inline}) callees are
    inlined at their call sites: callee blocks are copied with registers
    and labels renamed, parameters become movs, and returns become jumps
    to a continuation block.  Recursive callees are never inlined. *)

open Pvir

let default_threshold = 24  (* instructions *)

let is_recursive (fn : Func.t) =
  let found = ref false in
  Func.iter_instrs
    (fun _ i ->
      match i with
      | Instr.Call (_, name, _) when String.equal name fn.name -> found := true
      | _ -> ())
    fn;
  !found

let should_inline ~threshold (callee : Func.t) =
  (not (is_recursive callee))
  && (Annot.has_flag Annot.key_inline callee.annots
     || Func.instr_count callee <= threshold)

(* splice one call; returns true if inlined *)
let inline_call (p : Prog.t) (fn : Func.t) (blk : Func.block) ~threshold :
    bool =
  let call_site =
    let rec find idx = function
      | [] -> None
      | Instr.Call (dst, name, args) :: _
        when (match Prog.find_func p name with
             | Some callee ->
               (not (String.equal callee.name fn.name))
               && should_inline ~threshold callee
             | None -> false) ->
        let callee = Prog.find_func_exn p name in
        Some (idx, dst, callee, args)
      | _ :: rest -> find (idx + 1) rest
    in
    find 0 blk.instrs
  in
  match call_site with
  | None -> false
  | Some (idx, dst, callee, args) ->
    (* split the block at the call *)
    let before = List.filteri (fun i _ -> i < idx) blk.instrs in
    let after = List.filteri (fun i _ -> i > idx) blk.instrs in
    let cont = Func.add_block fn in
    cont.instrs <- after;
    cont.term <- blk.term;
    (* rename callee registers and labels into fn *)
    let reg_map = Hashtbl.create 32 in
    let map_reg r =
      match Hashtbl.find_opt reg_map r with
      | Some r' -> r'
      | None ->
        let r' = Func.fresh_reg fn (Func.reg_type callee r) in
        Hashtbl.replace reg_map r r';
        r'
    in
    let label_map = Hashtbl.create 8 in
    List.iter
      (fun (cb : Func.block) ->
        let nb = Func.add_block fn in
        Hashtbl.replace label_map cb.label nb.label)
      callee.blocks;
    let map_label l = Hashtbl.find label_map l in
    List.iter
      (fun (cb : Func.block) ->
        let nb = Func.find_block fn (map_label cb.label) in
        nb.instrs <- List.map (Instr.map_regs map_reg) cb.instrs;
        nb.term <-
          (match cb.term with
          | Instr.Ret None -> Instr.Br cont.label
          | Instr.Ret (Some r) -> (
            match dst with
            | Some d ->
              nb.instrs <- nb.instrs @ [ Instr.Mov (d, map_reg r) ];
              Instr.Br cont.label
            | None -> Instr.Br cont.label)
          | t -> Instr.map_term_labels map_label (Instr.map_term_regs map_reg t)))
      callee.blocks;
    (* argument movs, then jump into the inlined entry *)
    let param_movs =
      List.map2
        (fun param arg -> Instr.Mov (map_reg param, arg))
        callee.params args
    in
    blk.instrs <- before @ param_movs;
    blk.term <- Instr.Br (map_label (Func.entry callee).label);
    true

let run ?account ?(threshold = default_threshold) (p : Prog.t) : bool =
  let changed = ref false in
  List.iter
    (fun (fn : Func.t) ->
      Account.charge_opt account ~pass:"inline" (Func.instr_count fn);
      let budget = ref 8 in
      let continue_ = ref true in
      while !continue_ && !budget > 0 do
        decr budget;
        let did =
          List.exists (fun b -> inline_call p fn b ~threshold) fn.blocks
        in
        if did then changed := true else continue_ := false
      done)
    p.funcs;
  !changed
