(** If-conversion: turn short, side-effect-free branch diamonds into
    straight-line selects.

    The common source shape

    {v  if (a[i] > m) { m = a[i]; }  v}

    lowers to a two-armed CFG diamond that defeats the vectorizer (its
    loops must be straight-line).  This pass rewrites a diamond

    {v
        A: ... cbr c, B, C          A: ...
        B: pure instrs, br D   ->      <B's instrs, renamed>
        C: pure instrs, br D            <C's instrs, renamed>
        D: ...                          r := select c, rB, rC   (per def)
                                        br D
    v}

    by executing *both* arms speculatively and selecting the results.
    Only legal when both arms are short and every instruction is
    speculation-safe: pure, non-trapping, no loads (a guarded load may
    protect against a fault), no divisions (trap on zero).  After this
    pass, {!Idiom} fuses compare+select into min/max, and loops that
    expressed reductions with [if] become vectorizable. *)

open Pvir

let max_arm_instrs = 8

(* structural value equality through single-definition chains: two
   registers provably hold the same value when their defining expressions
   match (constants, global addresses, pure operator trees).  Used to
   recognize an arm load as a *re*-load of an address already dereferenced
   in the dominating block. *)
let same_value (fn : Func.t) =
  let def_count = Hashtbl.create 32 in
  let def_of = Hashtbl.create 32 in
  Func.iter_instrs
    (fun _ i ->
      Option.iter
        (fun d ->
          Hashtbl.replace def_count d
            (1 + try Hashtbl.find def_count d with Not_found -> 0);
          Hashtbl.replace def_of d i)
        (Instr.def i))
    fn;
  let single d = (try Hashtbl.find def_count d with Not_found -> 0) = 1 in
  let rec same a b =
    a = b
    || single a && single b
       &&
       match (Hashtbl.find_opt def_of a, Hashtbl.find_opt def_of b) with
       | Some (Instr.Gaddr (_, g1)), Some (Instr.Gaddr (_, g2)) ->
         String.equal g1 g2
       | Some (Instr.Const (_, v1)), Some (Instr.Const (_, v2)) ->
         Value.equal v1 v2
       | Some (Instr.Mov (_, x)), _ -> same x b
       | _, Some (Instr.Mov (_, y)) -> same a y
       | Some (Instr.Binop (op1, _, x1, y1)), Some (Instr.Binop (op2, _, x2, y2))
         -> op1 = op2 && same x1 x2 && same y1 y2
       | Some (Instr.Conv (k1, _, x1)), Some (Instr.Conv (k2, _, x2)) ->
         k1 = k2 && same x1 x2
         && Types.equal (Func.reg_type fn a) (Func.reg_type fn b)
       | _ -> false
  in
  same

(* a load in an arm is speculation-safe when the same location was already
   loaded in the dominating block [a] and nothing in [a] writes memory *)
let arm_load_safe fn (a : Func.block) =
  let writes =
    List.exists
      (fun i -> match i with Instr.Store _ | Instr.Call _ -> true | _ -> false)
      a.instrs
  in
  let same = same_value fn in
  fun (ty : Types.t) base off ->
    (not writes)
    && List.exists
         (fun i ->
           match i with
           | Instr.Load (ty', _, base', off') ->
             Types.equal ty ty' && off = off' && same base base'
           | _ -> false)
         a.instrs

let speculation_safe ~load_safe (i : Instr.t) =
  match i with
  | Instr.Const _ | Instr.Mov _ | Instr.Gaddr _ | Instr.Unop _ | Instr.Conv _
  | Instr.Cmp _ | Instr.Select _ | Instr.Splat _ | Instr.Extract _
  | Instr.Reduce _ -> true
  | Instr.Binop (op, _, _, _) -> (
    match op with
    | Instr.Div | Instr.Udiv | Instr.Rem | Instr.Urem -> false  (* traps *)
    | _ -> true)
  | Instr.Load (ty, _, base, off) ->
    (* only when it provably re-loads an address the dominating block
       already dereferenced *)
    load_safe ty base off
  | Instr.Store _ | Instr.Alloca _ | Instr.Call _ -> false

(* self-referential updates (d = add d, x) cannot be cloned with the
   simple def-renaming below *)
let self_referential (i : Instr.t) =
  match Instr.def i with
  | Some d -> List.mem d (Instr.uses i)
  | None -> false

(* registers used anywhere outside the two arm blocks (these are the ones
   whose merged value needs a select; arm-local temps stay dead and are
   cleaned by DCE) *)
let used_outside (fn : Func.t) ~(arms : int list) =
  let used = Hashtbl.create 16 in
  List.iter
    (fun (blk : Func.block) ->
      if not (List.mem blk.label arms) then begin
        List.iter
          (fun i -> List.iter (fun r -> Hashtbl.replace used r ()) (Instr.uses i))
          blk.instrs;
        List.iter (fun r -> Hashtbl.replace used r ()) (Instr.term_uses blk.term)
      end)
    fn.blocks;
  used

(* clone an arm's instructions, renaming every def to a fresh register;
   returns (cloned instrs, def map old->new) *)
let clone_arm (fn : Func.t) (instrs : Instr.t list) =
  let map = Hashtbl.create 8 in
  let cloned =
    List.map
      (fun i ->
        let d = Instr.def i in
        let i' =
          Instr.map_regs
            (fun r ->
              if Some r = d then r  (* defs handled below *)
              else match Hashtbl.find_opt map r with Some r' -> r' | None -> r)
            i
        in
        match d with
        | Some d ->
          let d' = Func.fresh_reg fn (Func.reg_type fn d) in
          Hashtbl.replace map d d';
          Instr.map_regs (fun r -> if r = d then d' else r) i'
        | None -> i')
      instrs
  in
  (cloned, map)

(* try to convert the diamond rooted at block [a]; true if converted *)
let convert_at (fn : Func.t) (cfg : Cfg.t) (a : Func.block) : bool =
  match a.term with
  | Instr.Cbr (c, bl, cl) when bl <> cl -> (
    let b = Func.find_block fn bl and cb = Func.find_block fn cl in
    let speculation_safe = speculation_safe ~load_safe:(arm_load_safe fn a) in
    let single_pred (blk : Func.block) =
      match Cfg.preds cfg blk.label with [ p ] -> p = a.label | _ -> false
    in
    match (b.term, cb.term) with
    | Instr.Br d1, Instr.Br d2
      when d1 = d2 && d1 <> a.label && d1 <> bl && d1 <> cl
           && single_pred b && single_pred cb
           && List.length b.instrs <= max_arm_instrs
           && List.length cb.instrs <= max_arm_instrs
           && List.for_all speculation_safe b.instrs
           && List.for_all speculation_safe cb.instrs
           && (not (List.exists self_referential b.instrs))
           && not (List.exists self_referential cb.instrs) ->
      let live = used_outside fn ~arms:[ bl; cl ] in
      let cloned_b, map_b = clone_arm fn b.instrs in
      let cloned_c, map_c = clone_arm fn cb.instrs in
      (* registers defined by either arm get a select *)
      let defs = Hashtbl.create 8 in
      let note map = Hashtbl.iter (fun d _ -> Hashtbl.replace defs d ()) map in
      note map_b;
      note map_c;
      let selects =
        Hashtbl.fold
          (fun d () acc ->
            if not (Hashtbl.mem live d) then acc
            else
              let vb = match Hashtbl.find_opt map_b d with Some r -> r | None -> d in
              let vc = match Hashtbl.find_opt map_c d with Some r -> r | None -> d in
              Instr.Select (d, c, vb, vc) :: acc)
          defs []
        (* deterministic order for reproducible bytecode *)
        |> List.sort compare
      in
      a.instrs <- a.instrs @ cloned_b @ cloned_c @ selects;
      a.term <- Instr.Br d1;
      fn.blocks <-
        List.filter (fun (x : Func.block) -> x.label <> bl && x.label <> cl) fn.blocks;
      true
    | Instr.Br d1, _
      when d1 = cl && single_pred b
           && List.length b.instrs <= max_arm_instrs
           && List.for_all speculation_safe b.instrs
           && not (List.exists self_referential b.instrs) ->
      (* half diamond: cbr c, B, D with B -> D (an if without else) *)
      let live = used_outside fn ~arms:[ bl ] in
      let cloned_b, map_b = clone_arm fn b.instrs in
      let selects =
        Hashtbl.fold
          (fun d d' acc ->
            if Hashtbl.mem live d then Instr.Select (d, c, d', d) :: acc else acc)
          map_b []
        |> List.sort compare
      in
      a.instrs <- a.instrs @ cloned_b @ selects;
      a.term <- Instr.Br d1;
      fn.blocks <- List.filter (fun (x : Func.block) -> x.label <> bl) fn.blocks;
      true
    | _, Instr.Br d2
      when d2 = bl && single_pred cb
           && List.length cb.instrs <= max_arm_instrs
           && List.for_all speculation_safe cb.instrs
           && not (List.exists self_referential cb.instrs) ->
      (* mirrored half diamond: cbr c, D, C with C -> D *)
      let live = used_outside fn ~arms:[ cl ] in
      let cloned_c, map_c = clone_arm fn cb.instrs in
      let selects =
        Hashtbl.fold
          (fun d d' acc ->
            if Hashtbl.mem live d then Instr.Select (d, c, d, d') :: acc else acc)
          map_c []
        |> List.sort compare
      in
      a.instrs <- a.instrs @ cloned_c @ selects;
      a.term <- Instr.Br d2;
      fn.blocks <- List.filter (fun (x : Func.block) -> x.label <> cl) fn.blocks;
      true
    | _ -> false)
  | _ -> false

let run ?account (fn : Func.t) : bool =
  Account.charge_opt account ~pass:"ifconv" (2 * Func.instr_count fn);
  let changed = ref false in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 8 do
    incr rounds;
    let cfg = Cfg.build fn in
    let did = List.exists (fun b -> convert_at fn cfg b) fn.blocks in
    if did then changed := true else continue_ := false
  done;
  !changed
