(** Pass manager: named pipelines corresponding to the compilation modes
    of the Figure-1 experiment.

    - {!cleanup}: the target-independent scalar pipeline every mode runs
      (copy propagation, constant folding, CSE, DCE, CFG simplification,
      idiom recognition, LICM) to a fixpoint.
    - {!offline_split}: the full offline step of split compilation —
      cleanup, inlining, vectorization to portable builtins, register
      allocation annotations, hotness defaults.
    - {!offline_traditional}: what a conventional deferred-compilation
      toolchain ships — cleanup only; target-dependent optimizations are
      dropped rather than annotated (this is the strawman the paper
      argues against).
    - {!online_full}: what a Pure-online JIT must redo by itself; the same
      passes as {!offline_split}, charged to the online accountant. *)

open Pvir

let cleanup ?account (p : Prog.t) : unit =
  List.iter
    (fun fn ->
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds < 6 do
        incr rounds;
        let c1 = Copyprop.run ?account fn in
        let c2 = Constfold.run ?account fn in
        let c3 = Cse.run ?account fn in
        let c4 = Ifconv.run ?account fn in
        let c5 = Idiom.run ?account fn in
        let c6 = Dce.run ?account fn in
        let c7 = Simplify_cfg.run ?account fn in
        changed := c1 || c2 || c3 || c4 || c5 || c6 || c7
      done)
    p.funcs

let licm_all ?account (p : Prog.t) : unit =
  List.iter (fun fn -> ignore (Licm.run ?account fn)) p.funcs

(** Offline pipeline of the split-compilation flow: everything expensive
    runs here; the results ship as vector builtins + annotations. *)
let offline_split ?account (p : Prog.t) : (string * Vectorize.result) list =
  cleanup ?account p;
  ignore (Inline.run ?account p);
  cleanup ?account p;
  licm_all ?account p;
  let vect = Vectorize.run ?account p in
  List.iter (fun fn -> ignore (Strength.run ?account fn)) p.funcs;
  cleanup ?account p;
  Regalloc_annotate.run ?account p;
  Verify.program p;
  vect

(** Traditional deferred compilation: target-independent cleanup only;
    vectorization is dropped because it is "target-dependent" and regalloc
    annotations do not exist. *)
let offline_traditional ?account (p : Prog.t) : unit =
  cleanup ?account p;
  ignore (Inline.run ?account p);
  cleanup ?account p;
  licm_all ?account p;
  List.iter (fun fn -> ignore (Strength.run ?account fn)) p.funcs;
  cleanup ?account p;
  Verify.program p

(** The work a pure-online JIT has to do by itself on the device, charged
    to the (online) accountant. *)
let online_full ?account (p : Prog.t) : (string * Vectorize.result) list =
  offline_split ?account p
