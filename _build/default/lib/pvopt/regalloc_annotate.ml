(** Offline half of split register allocation (Diouf et al. [18], §4 of the
    paper).

    The offline compiler can afford a global analysis the JIT cannot: it
    computes, for every virtual register, a *dynamic spill cost* — the
    number of extra memory operations the program would execute if that
    register lived in memory, weighted by loop nesting depth (10^depth, the
    classic Chaitin weight).  Registers sorted by increasing cost form the
    {!Pvir.Annot.key_spill_order} annotation: under pressure, the online
    linear-scan allocator simply spills the earliest entries — a
    linear-time decision with near-offline quality, instead of the blind
    interval-length heuristic it must otherwise fall back on.

    The annotation is compact (a few bytes per register, measured in
    experiment E5) and purely advisory: a JIT that ignores it still
    produces correct code. *)

open Pvir

(** Per-register offline spill costs: [(reg, cost)].

    The cost of spilling a register is the dynamic memory traffic it
    creates — loop-depth-weighted definitions + uses (a spilled def is a
    store, a spilled use a reload) — divided by the *extent* of its live
    range, because evicting a register frees its slot only for that
    extent.  A loop-carried pointer (long range, few ops) is a far better
    victim than a chain temporary (two ops but a two-instruction range,
    evicting it relieves nothing).  This ratio is exactly what a
    linear-scan allocator wants and exactly what it cannot afford to
    compute online. *)
let spill_costs (fn : Func.t) : (Instr.reg * float) list =
  let cfg = Cfg.build fn in
  let loops = Loops.find cfg in
  let costs = Hashtbl.create 32 in
  let first_pos = Hashtbl.create 32 in
  let last_pos = Hashtbl.create 32 in
  let bump r w =
    Hashtbl.replace costs r (w +. try Hashtbl.find costs r with Not_found -> 0.)
  in
  let touch r pos =
    if not (Hashtbl.mem first_pos r) then Hashtbl.replace first_pos r pos;
    Hashtbl.replace last_pos r pos
  in
  List.iter (fun r -> touch r 0) fn.params;
  let pos = ref 0 in
  List.iter
    (fun (b : Func.block) ->
      let depth = Loops.depth_of_block loops b.label in
      let w = 10. ** float_of_int depth in
      List.iter
        (fun i ->
          incr pos;
          Option.iter
            (fun d ->
              bump d w;
              touch d !pos)
            (Instr.def i);
          List.iter
            (fun u ->
              bump u w;
              touch u !pos)
            (Instr.uses i))
        b.instrs;
      incr pos;
      List.iter
        (fun u ->
          bump u w;
          touch u !pos)
        (Instr.term_uses b.term))
    fn.blocks;
  Hashtbl.fold
    (fun r c acc ->
      let span =
        float_of_int
          (1 + Hashtbl.find last_pos r - Hashtbl.find first_pos r)
      in
      (r, c /. span) :: acc)
    costs []

(** Maximum register pressure (simultaneously live registers) across the
    function, per block boundary — a cheap offline estimate the JIT can use
    to skip allocation effort entirely when pressure is low. *)
let max_pressure (fn : Func.t) : int =
  let cfg = Cfg.build fn in
  let lv = Cfg.liveness cfg in
  List.fold_left
    (fun acc (b : Func.block) ->
      let live = Hashtbl.copy (Cfg.live_out_of lv b.label) in
      let here = ref (Hashtbl.length live) in
      List.iter
        (fun i ->
          Option.iter (fun d -> Hashtbl.replace live d ()) (Instr.def i);
          List.iter (fun u -> Hashtbl.replace live u ()) (Instr.uses i);
          here := max !here (Hashtbl.length live))
        (List.rev b.instrs);
      max acc !here)
    0 fn.blocks

(** Annotate [fn] with its spill order and pressure estimate. *)
let run_func ?account (fn : Func.t) : unit =
  (* global analysis: liveness + loop forest + a sort — the expensive,
     offline-only part *)
  let n = Func.instr_count fn in
  Account.charge_opt account ~pass:"regalloc.offline_analysis" (6 * n);
  let costs = spill_costs fn in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) costs in
  (* exclude parameters? no — spilling a parameter is fine; exclude nothing *)
  let order =
    (* costs are ratios; fixed-point x100 keeps the annotation integral *)
    List.map
      (fun (r, c) ->
        Annot.List
          [ Annot.Int r; Annot.Int (int_of_float (Float.min (100. *. c) 1e9)) ])
      sorted
  in
  Func.add_annot fn Annot.key_spill_order (Annot.List order);
  Func.add_annot fn Annot.key_pressure (Annot.Int (max_pressure fn))

let run ?account (p : Prog.t) : unit =
  List.iter (fun fn -> run_func ?account fn) p.funcs

(** Decode the spill-order annotation: registers cheapest-to-spill first.
    Used by the online allocator ([Pvjit.Regalloc]) in split mode. *)
let decode_spill_order (fn : Func.t) : (Instr.reg * int) list option =
  match Annot.find_list Annot.key_spill_order fn.annots with
  | None -> None
  | Some entries ->
    let decode = function
      | Annot.List [ Annot.Int r; Annot.Int c ] -> Some (r, c)
      | _ -> None
    in
    let decoded = List.filter_map decode entries in
    if List.length decoded = List.length entries then Some decoded else None
