(** Dead-code elimination.

    A pure instruction whose destination is dead (not live out of the
    instruction) is removed.  Uses block-level liveness plus a backward
    scan inside each block, iterated to a fixpoint so chains of dead
    definitions disappear. *)

open Pvir

let once (fn : Func.t) : bool =
  let cfg = Cfg.build fn in
  let lv = Cfg.liveness cfg in
  let changed = ref false in
  List.iter
    (fun (b : Func.block) ->
      let live = Hashtbl.copy (Cfg.live_out_of lv b.label) in
      List.iter (fun r -> Hashtbl.replace live r ()) (Instr.term_uses b.term);
      (* walk backwards *)
      let keep =
        List.fold_left
          (fun acc i ->
            let dead =
              (not (Instr.has_side_effect i))
              &&
              match Instr.def i with
              | Some d -> not (Hashtbl.mem live d)
              | None -> true
            in
            if dead then (
              changed := true;
              acc)
            else (
              (match Instr.def i with
              | Some d -> Hashtbl.remove live d
              | None -> ());
              List.iter (fun r -> Hashtbl.replace live r ()) (Instr.uses i);
              i :: acc))
          []
          (List.rev b.instrs)
      in
      b.instrs <- keep)
    fn.blocks;
  !changed

let run ?account (fn : Func.t) : bool =
  let changed = ref false in
  let continue_ = ref true in
  let rounds = ref 0 in
  while !continue_ && !rounds < 8 do
    incr rounds;
    Account.charge_opt account ~pass:"dce" (2 * Func.instr_count fn);
    if once fn then changed := true else continue_ := false
  done;
  !changed
