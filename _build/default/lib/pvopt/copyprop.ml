(** Copy propagation and copy coalescing.

    The frontend's lowering of mutable MiniC locals produces many
    [t = op ...; mov x, t] pairs and [mov]-forwarded reads.  Two local
    rewrites clean this up:

    + forward propagation: after [mov d, s], uses of [d] read [s] instead,
      until either register is redefined (within a block);
    + backward coalescing: [t = op ...] immediately followed by [mov x, t]
      where [t] has no other use in the function rewrites the op to define
      [x] directly. *)

open Pvir

let count_uses (fn : Func.t) =
  let counts = Hashtbl.create 64 in
  let bump r =
    Hashtbl.replace counts r (1 + try Hashtbl.find counts r with Not_found -> 0)
  in
  Func.iter_blocks
    (fun b ->
      List.iter (fun i -> List.iter bump (Instr.uses i)) b.instrs;
      List.iter bump (Instr.term_uses b.term))
    fn;
  counts

let forward_block (b : Func.block) : bool =
  let changed = ref false in
  (* current copy map: dst -> src *)
  let map = Hashtbl.create 8 in
  let resolve r =
    match Hashtbl.find_opt map r with
    | Some s ->
      changed := true;
      s
    | None -> r
  in
  let kill r =
    Hashtbl.remove map r;
    (* remove entries whose source is r *)
    let stale =
      Hashtbl.fold (fun d s acc -> if s = r then d :: acc else acc) map []
    in
    List.iter (Hashtbl.remove map) stale
  in
  let rewrite i =
    let i' =
      (* rewrite uses only; leave defs in place *)
      match i with
      | Instr.Mov (d, a) -> Instr.Mov (d, resolve a)
      | Instr.Binop (op, d, a, b') -> Instr.Binop (op, d, resolve a, resolve b')
      | Instr.Unop (op, d, a) -> Instr.Unop (op, d, resolve a)
      | Instr.Conv (c, d, a) -> Instr.Conv (c, d, resolve a)
      | Instr.Cmp (op, d, a, b') -> Instr.Cmp (op, d, resolve a, resolve b')
      | Instr.Select (d, c, a, b') ->
        Instr.Select (d, resolve c, resolve a, resolve b')
      | Instr.Load (ty, d, base, off) -> Instr.Load (ty, d, resolve base, off)
      | Instr.Store (ty, s, base, off) ->
        Instr.Store (ty, resolve s, resolve base, off)
      | Instr.Call (d, name, args) -> Instr.Call (d, name, List.map resolve args)
      | Instr.Splat (d, a) -> Instr.Splat (d, resolve a)
      | Instr.Extract (d, a, lane) -> Instr.Extract (d, resolve a, lane)
      | Instr.Reduce (op, d, a) -> Instr.Reduce (op, d, resolve a)
      | Instr.Const _ | Instr.Gaddr _ | Instr.Alloca _ -> i
    in
    (match Instr.def i' with Some d -> kill d | None -> ());
    (match i' with
    | Instr.Mov (d, a) when d <> a -> Hashtbl.replace map d a
    | _ -> ());
    i'
  in
  b.instrs <- List.map rewrite b.instrs;
  b.term <- Instr.map_term_regs resolve b.term;
  !changed

let backward_coalesce (fn : Func.t) : bool =
  let uses = count_uses fn in
  let changed = ref false in
  Func.iter_blocks
    (fun b ->
      let rec go = function
        | i :: Instr.Mov (x, t) :: rest
          when Instr.def i = Some t
               && (try Hashtbl.find uses t with Not_found -> 0) = 1
               && t <> x
               && not (List.mem t (Instr.uses i))
               && Types.equal (Func.reg_type fn t) (Func.reg_type fn x) ->
          changed := true;
          let retarget r = if r = t then x else r in
          (* only the def is t here, and t is not among the uses *)
          Instr.map_regs retarget i :: go rest
        | i :: rest -> i :: go rest
        | [] -> []
      in
      b.instrs <- go b.instrs)
    fn;
  !changed

(** Run copy propagation to a fixpoint (bounded).  Returns true if the
    function changed. *)
let run ?account (fn : Func.t) : bool =
  let changed = ref false in
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 8 do
    incr rounds;
    Account.charge_opt account ~pass:"copyprop" (Func.instr_count fn);
    let fwd =
      List.fold_left
        (fun acc b -> forward_block b || acc)
        false fn.blocks
    in
    let bwd = backward_coalesce fn in
    if fwd || bwd then changed := true else continue_ := false
  done;
  !changed
