lib/pvopt/vectorize.ml: Account Annot Cfg Func Hashtbl Instr Int64 List Loops Option Printf Prog Pvir String Types Value
