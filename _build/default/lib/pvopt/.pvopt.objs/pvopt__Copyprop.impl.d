lib/pvopt/copyprop.ml: Account Func Hashtbl Instr List Pvir Types
