lib/pvopt/licm.ml: Account Cfg Func Hashtbl Instr List Loops Option Pvir
