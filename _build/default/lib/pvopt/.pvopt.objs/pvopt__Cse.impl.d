lib/pvopt/cse.ml: Account Func Hashtbl Instr List Option Pvir Types Value
