lib/pvopt/dce.ml: Account Cfg Func Hashtbl Instr List Pvir
