lib/pvopt/idiom.ml: Account Copyprop Func Hashtbl Instr List Pvir Types
