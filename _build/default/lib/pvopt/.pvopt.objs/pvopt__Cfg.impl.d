lib/pvopt/cfg.ml: Array Func Hashtbl Instr List Option Pvir
