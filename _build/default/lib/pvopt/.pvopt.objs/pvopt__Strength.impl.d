lib/pvopt/strength.ml: Account Cfg Func Hashtbl Instr Int64 List Loops Option Pvir Types Value Vectorize
