lib/pvopt/ifconv.ml: Account Cfg Func Hashtbl Instr List Option Pvir String Types Value
