lib/pvopt/passes.ml: Constfold Copyprop Cse Dce Idiom Ifconv Inline Licm List Prog Pvir Regalloc_annotate Simplify_cfg Strength Vectorize Verify
