lib/pvopt/loops.ml: Cfg Func Hashtbl Instr List Option Pvir Value
