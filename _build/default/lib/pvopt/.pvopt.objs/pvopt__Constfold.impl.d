lib/pvopt/constfold.ml: Account Eval Func Hashtbl Instr Int64 List Pvir Value
