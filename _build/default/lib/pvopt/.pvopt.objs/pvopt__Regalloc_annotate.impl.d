lib/pvopt/regalloc_annotate.ml: Account Annot Cfg Float Func Hashtbl Instr List Loops Option Prog Pvir
