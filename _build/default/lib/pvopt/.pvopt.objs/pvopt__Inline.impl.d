lib/pvopt/inline.ml: Account Annot Func Hashtbl Instr List Prog Pvir String
