lib/pvopt/unroll.ml: Account Cfg Func Hashtbl Instr Int64 List Loops Printf Prog Pvir Types Value Vectorize
