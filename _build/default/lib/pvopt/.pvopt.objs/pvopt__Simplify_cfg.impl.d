lib/pvopt/simplify_cfg.ml: Account Cfg Func Instr List Pvir
