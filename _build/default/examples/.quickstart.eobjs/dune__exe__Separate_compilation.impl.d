examples/separate_compilation.ml: Array Core List Printf Pvir Pvmach Pvvm String
