examples/quickstart.ml: Array Core List Printf Pvir Pvmach Pvopt Pvvm String
