examples/adaptive_tuning.mli:
