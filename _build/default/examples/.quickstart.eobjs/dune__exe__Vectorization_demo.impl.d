examples/vectorization_demo.ml: Array Core List Printf Pvir Pvkernels Pvmach Sys
