examples/adaptive_tuning.ml: Array Core List Printf Pvkernels Pvmach Sys
