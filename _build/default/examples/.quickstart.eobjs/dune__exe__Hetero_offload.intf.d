examples/hetero_offload.mli:
