examples/quickstart.mli:
