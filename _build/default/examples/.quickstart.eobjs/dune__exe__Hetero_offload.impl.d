examples/hetero_offload.ml: Array Core Int64 List Printf Pvir Pvkernels Pvmach Pvsched
