examples/vectorization_demo.mli:
