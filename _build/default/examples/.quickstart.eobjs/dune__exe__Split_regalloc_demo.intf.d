examples/split_regalloc_demo.mli:
