examples/split_regalloc_demo.ml: Core List Printf Pvir Pvjit Pvkernels Pvmach Pvvm
