(* Split automatic vectorization (the paper's Table 1, single-kernel view).

   The same bytecode — vectorized once, offline, with portable builtins —
   is JIT-compiled on three machines.  The x86-class JIT emits SIMD; the
   two RISC JITs scalarize the builtins and land close to plain scalar
   performance, exactly the behaviour the paper reports.

   Run with:  dune exec examples/vectorization_demo.exe [kernel] *)

let () =
  let kernel_name =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "max_u8"
  in
  let k = Pvkernels.Kernels.find_exn kernel_name in
  Printf.printf "kernel %s: %s\n\n" k.Pvkernels.Kernels.name
    k.Pvkernels.Kernels.description;
  Printf.printf "%-10s %14s %14s %10s\n" "target" "scalar (cyc)" "vector (cyc)"
    "relative";
  List.iter
    (fun machine ->
      let cell = Pvkernels.Harness.table1_cell ~machine k in
      Printf.printf "%-10s %14Ld %14Ld %9.2fx\n" machine.Pvmach.Machine.name
        cell.Pvkernels.Harness.scalar_cycles
        cell.Pvkernels.Harness.vector_cycles
        cell.Pvkernels.Harness.speedup)
    Pvmach.Machine.table1_targets;
  print_newline ();
  (* show what the vectorizer actually did to the bytecode *)
  let p = Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name k.Pvkernels.Kernels.source in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  print_string (Pvir.Pp.program_to_string off.Core.Splitc.prog)
