(* Split register allocation (the paper's §4, after Diouf et al. [18]).

   The poly8 kernel keeps more values live than the register-poor x86ish
   target has registers, so somebody must be spilled.  Three online
   allocators compete:

     none        - blind linear scan (furthest-end eviction)
     annotation  - linear scan guided by the offline spill-order
                   annotation (split compilation: near-free online)
     recompute   - linear scan with the same weights recomputed online
                   (what a pure-online JIT would pay)

   Run with:  dune exec examples/split_regalloc_demo.exe *)

let () =
  let k = Pvkernels.Kernels.poly8 in
  let machine = Pvmach.Machine.x86ish in
  let n = 1024 in
  Printf.printf "kernel %s on %s (%d int registers)\n\n"
    k.Pvkernels.Kernels.name machine.Pvmach.Machine.name
    machine.Pvmach.Machine.int_regs;
  (* offline: split mode (annotations present in the bytecode) *)
  let p = Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name k.Pvkernels.Kernels.source in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split p in
  let bc = Core.Splitc.distribute off in
  Printf.printf "%-12s %14s %12s %14s\n" "hints" "dyn spill ops" "cycles"
    "online work";
  let reference = ref None in
  List.iter
    (fun (label, hints) ->
      let account = Pvir.Account.create () in
      let prog = Pvir.Serial.decode bc in
      let img = Pvvm.Image.load prog in
      let sim, _report =
        Pvjit.Jit.compile_program ~account ~machine ~hints img
      in
      Pvkernels.Harness.fill_inputs img;
      let result =
        Pvvm.Sim.run sim k.Pvkernels.Kernels.entry (Pvkernels.Harness.args k n)
      in
      (match (!reference, result) with
      | None, r -> reference := Some r
      | Some r0, r ->
        let same =
          match (r0, r) with
          | None, None -> true
          | Some a, Some b -> Pvir.Value.equal a b
          | _ -> false
        in
        if not same then failwith "allocators disagree on the result!");
      Printf.printf "%-12s %14Ld %12Ld %14d\n" label
        sim.Pvvm.Sim.stats.Pvvm.Sim.spill_ops (Pvvm.Sim.cycles sim)
        (Pvir.Account.total account))
    [
      ("none", Pvjit.Jit.Hints_none);
      ("annotation", Pvjit.Jit.Hints_annotation);
      ("recompute", Pvjit.Jit.Hints_recompute);
    ]
