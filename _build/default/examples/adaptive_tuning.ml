(* Adaptive optimization across runs (paper §2.2 "idle time" + §4
   "iterative compilation").

   The device receives raw bytecode and improves it run over run:

     generation 0: interpret, collecting a profile (no compile cost);
     generation 1: quick baseline JIT;
     generation 2: during idle time, the VM tries several optimization
                   configurations (vectorize? unroll by how much?) on its
                   own simulator and keeps the measured winner.

   The interesting output: different machines pick different winners from
   identical bytecode.

   Run with:  dune exec examples/adaptive_tuning.exe [kernel] *)

let () =
  let kernel_name =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "sum_u16"
  in
  let k = Pvkernels.Kernels.find_exn kernel_name in
  Printf.printf "kernel %s: %s\n\n" k.Pvkernels.Kernels.name
    k.Pvkernels.Kernels.description;
  let p =
    Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name
      k.Pvkernels.Kernels.source
  in
  (* ship raw bytecode: the device owns every optimization decision *)
  let bytecode =
    Core.Splitc.distribute (Core.Splitc.offline ~mode:Core.Splitc.Pure_online p)
  in
  let prepare img = Pvkernels.Harness.fill_inputs img in
  let args = Pvkernels.Harness.args k 1000 in
  List.iter
    (fun machine ->
      Printf.printf "%s (%s):\n" machine.Pvmach.Machine.name
        machine.Pvmach.Machine.description;
      let gens =
        Core.Adaptive.generations ~machine ~prepare
          ~entry:k.Pvkernels.Kernels.entry ~args bytecode
      in
      List.iter
        (fun (g : Core.Adaptive.generation) ->
          Printf.printf "  gen %d  %-32s %10Ld cycles\n" g.Core.Adaptive.gen
            g.Core.Adaptive.glabel g.Core.Adaptive.exec_cycles)
        gens;
      print_newline ())
    Pvmach.Machine.table1_targets
