(* Heterogeneous offload (the paper's §3 Cell scenario).

   A three-stage Kahn process network processes blocks of samples:

     produce (control code)  ->  filter (numeric kernel)  ->  collect

   The filter kernel's bytecode carries a hardware-preference annotation
   (it benefits from SIMD).  The platform has a PowerPC-style host and a
   DSP/SPU-style accelerator.  Running the mapper with annotations in
   view offloads the filter to the accelerator; the makespan simulation
   shows the speedup over the host-only baseline.

   Run with:  dune exec examples/hetero_offload.exe *)

let blocks = 64
let block_elems = 1024

(* per-core firing costs for the numeric stage, measured by JIT-compiling
   the saxpy kernel for each machine and running it in the simulator *)
let measured_kernel_cost (machine : Pvmach.Machine.t) : int =
  let k = Pvkernels.Kernels.saxpy_fp in
  let r =
    Pvkernels.Harness.run_jit ~n:block_elems ~mode:Core.Splitc.Split ~machine k
  in
  Int64.to_int r.Pvkernels.Harness.cycles

let () =
  let host = { Pvsched.Mapper.cname = "host-ppc"; machine = Pvmach.Machine.ppcish } in
  let accel = { Pvsched.Mapper.cname = "accel-dsp"; machine = Pvmach.Machine.dspish } in
  let platform =
    { Pvsched.Mapper.cores = [ host; accel ]; transfer_cost = 600 }
  in
  (* stage definitions; fire functions move data, costs come from the model *)
  let produce =
    {
      Pvsched.Kpn.pname = "produce";
      inputs = [ "in" ];
      outputs = [ "raw" ];
      fire = (fun tokens -> tokens);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let filter =
    {
      Pvsched.Kpn.pname = "filter";
      inputs = [ "raw" ];
      outputs = [ "filtered" ];
      fire =
        (fun tokens ->
          List.map
            (fun tok ->
              Array.map
                (fun v ->
                  Pvir.Eval.binop Pvir.Instr.Mul v (Pvir.Value.f32 2.0))
                tok)
            tokens);
      annots =
        Pvir.Annot.add Pvir.Annot.key_hw_prefs
          (Pvir.Annot.List [ Pvir.Annot.Str "simd128"; Pvir.Annot.Str "dsp_mac" ])
          Pvir.Annot.empty;
      work = 100;
    }
  in
  let collect =
    {
      Pvsched.Kpn.pname = "collect";
      inputs = [ "filtered" ];
      outputs = [ "out" ];
      fire = (fun tokens -> tokens);
      annots = Pvir.Annot.empty;
      work = 1;
    }
  in
  let processes = [ produce; filter; collect ] in
  (* cost model: control stages are cheap on the host and painful on the
     DSP (branches); the numeric stage cost is measured per machine *)
  let filter_cost_host = measured_kernel_cost host.machine in
  let filter_cost_accel = measured_kernel_cost accel.machine in
  let cost (p : Pvsched.Kpn.process) (c : Pvsched.Mapper.core) =
    match p.Pvsched.Kpn.pname with
    | "filter" ->
      if c.Pvsched.Mapper.cname = "accel-dsp" then filter_cost_accel
      else filter_cost_host
    | _ ->
      (* control code: branch-heavy *)
      200 * c.machine.Pvmach.Machine.branch_cost
  in
  let fresh_net () =
    let net = Pvsched.Kpn.create processes in
    for b = 0 to blocks - 1 do
      Pvsched.Kpn.push net "in"
        (Array.init 4 (fun i -> Pvir.Value.f32 (float_of_int (b + i))))
    done;
    net
  in
  Printf.printf "filter kernel: %d cycles/block on host, %d on accelerator\n\n"
    filter_cost_host filter_cost_accel;
  let host_only = Pvsched.Mapper.place_all_on host processes in
  let t_host = Pvsched.Mapper.makespan platform cost host_only (fresh_net ()) in
  let auto = Pvsched.Mapper.place platform cost processes in
  let t_auto = Pvsched.Mapper.makespan platform cost auto (fresh_net ()) in
  Printf.printf "placement (annotation-driven):\n";
  List.iter
    (fun (p, (c : Pvsched.Mapper.core)) ->
      Printf.printf "  %-8s -> %s\n" p c.Pvsched.Mapper.cname)
    auto;
  Printf.printf "\nmakespan host-only : %Ld cycles\n" t_host;
  Printf.printf "makespan offloaded : %Ld cycles\n" t_auto;
  Printf.printf "offload speedup    : %.2fx\n"
    (Int64.to_float t_host /. Int64.to_float t_auto)
