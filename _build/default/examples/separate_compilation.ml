(* Separate compilation and install-time linking (paper §4, experiment E8).

   A "vendor" ships a math library module; the application module calls it
   through extern declarations.  Both travel as independent bytecode; the
   device links them at install time, tree-shakes dead vendor code, runs
   the whole-program optimizer (which now inlines across the old module
   boundary), and only then JITs.

   Run with:  dune exec examples/separate_compilation.exe *)

let vendor_lib =
  {|
f32 win_coef[512];

f32 window(f32 x, i64 i) { return x * win_coef[i]; }

f32 gain(f32 x, f32 g) { return x * g; }

/* dead vendor code the application never calls */
f32 legacy_filter(f32 x) { return x * 0.5f + 1.0f; }
f32 legacy_filter2(f32 x) { return legacy_filter(x) * 2.0f; }
|}

let application =
  {|
extern f32 window(f32 x, i64 i);
extern f32 gain(f32 x, f32 g);

f32 samples[512];

void process(i64 n, f32 g) {
  for (i64 i = 0; i < n; i++) {
    samples[i] = gain(window(samples[i], i), g);
  }
}
|}

let () =
  (* each vendor compiles its module independently *)
  let lib = Core.Splitc.frontend ~name:"vendor_lib" vendor_lib in
  let app = Core.Splitc.frontend ~name:"application" application in
  let size p = String.length (Pvir.Serial.encode p) in
  Printf.printf "shipped: vendor_lib %d bytes, application %d bytes\n"
    (size lib) (size app);
  (* install time on the device: link, shake, whole-program optimize *)
  let whole = Pvir.Link.link ~name:"installed" [ lib; app ] in
  let removed_f, removed_g = Pvir.Link.treeshake ~roots:[ "process" ] whole in
  Printf.printf "linked + tree-shaken: %d bytes (-%d functions, -%d globals)\n"
    (size whole) removed_f removed_g;
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split whole in
  let calls_left =
    let n = ref 0 in
    Pvir.Func.iter_instrs
      (fun _ i -> match i with Pvir.Instr.Call _ -> incr n | _ -> ())
      (Pvir.Prog.find_func_exn off.Core.Splitc.prog "process");
    !n
  in
  Printf.printf "after whole-program optimization: %d library calls left in the loop\n\n"
    calls_left;
  (* run on two very different cores from the same installed image *)
  let bc = Core.Splitc.distribute off in
  List.iter
    (fun machine ->
      let on = Core.Splitc.online ~mode:Core.Splitc.Split ~machine bc in
      let img = on.Core.Splitc.img in
      Pvvm.Image.write_global img "samples"
        (Array.init 512 (fun i -> Pvir.Value.f32 (float_of_int (i mod 16))));
      Pvvm.Image.write_global img "win_coef"
        (Array.init 512 (fun i -> Pvir.Value.f32 (if i mod 2 = 0 then 1.0 else 2.0)));
      ignore
        (Pvvm.Sim.run on.Core.Splitc.sim "process"
           [ Pvir.Value.i64 512L; Pvir.Value.f32 0.5 ]);
      Printf.printf "%-9s: %Ld cycles\n" machine.Pvmach.Machine.name
        (Pvvm.Sim.cycles on.Core.Splitc.sim))
    [ Pvmach.Machine.x86ish; Pvmach.Machine.uchost ]
