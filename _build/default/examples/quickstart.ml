(* Quickstart: the whole split-compilation flow in one file.

   1. Write a MiniC kernel.
   2. Offline-compile it to annotated portable bytecode (the artifact you
      would ship).
   3. On each "device", load the same bytecode, JIT it for the local
      machine and run it.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
f32 samples[512];
f32 gains[512];
f32 out[512];

void apply_gain(i64 n) {
  for (i64 i = 0; i < n; i = i + 1) {
    out[i] = samples[i] * gains[i];
  }
}

f32 peak(i64 n) {
  f32 m = 0.0;
  for (i64 i = 0; i < n; i = i + 1) {
    m = __max(m, out[i]);
  }
  return m;
}
|}

let () =
  (* offline: source -> optimized, annotated bytecode *)
  let prog = Core.Splitc.frontend ~name:"quickstart" source in
  let off = Core.Splitc.offline ~mode:Core.Splitc.Split prog in
  let bytecode = Core.Splitc.distribute off in
  Printf.printf "shipped bytecode: %d bytes (offline work: %d units)\n"
    (String.length bytecode)
    (Pvir.Account.total off.Core.Splitc.offline_work);
  List.iter
    (fun (f, (r : Pvopt.Vectorize.result)) ->
      List.iter
        (fun (_, vf) -> Printf.printf "  %s auto-vectorized at %d lanes\n" f vf)
        r.Pvopt.Vectorize.vectorized)
    off.Core.Splitc.vectorized;
  (* online: the same bytecode runs on every device *)
  List.iter
    (fun machine ->
      let on = Core.Splitc.online ~mode:Core.Splitc.Split ~machine bytecode in
      let img = on.Core.Splitc.img in
      (* feed inputs by writing the globals directly *)
      Pvvm.Image.write_global img "samples"
        (Array.init 512 (fun i -> Pvir.Value.f32 (float_of_int (i mod 32))));
      Pvvm.Image.write_global img "gains"
        (Array.init 512 (fun i -> Pvir.Value.f32 (if i mod 2 = 0 then 2.0 else 0.5)));
      let sim = on.Core.Splitc.sim in
      ignore (Pvvm.Sim.run sim "apply_gain" [ Pvir.Value.i64 512L ]);
      let peak = Pvvm.Sim.run sim "peak" [ Pvir.Value.i64 512L ] in
      Printf.printf
        "%-9s: peak = %-6s  %Ld cycles  (online compile: %d work units)\n"
        machine.Pvmach.Machine.name
        (match peak with
        | Some v -> Printf.sprintf "%g" (Pvir.Value.to_float v)
        | None -> "?")
        (Pvvm.Sim.cycles sim)
        (Pvir.Account.total on.Core.Splitc.online_work))
    Pvmach.Machine.all
