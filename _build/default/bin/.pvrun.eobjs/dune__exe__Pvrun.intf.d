bin/pvrun.mli:
