bin/pvrun.ml: Arg Cmd Cmdliner Core Format Fun Int64 List Printf Pvir Pvmach Pvvm String Term
