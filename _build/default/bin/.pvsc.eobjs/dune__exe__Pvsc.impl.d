bin/pvsc.ml: Arg Cmd Cmdliner Core Filename Format Fun List Minic Printf Pvir Pvopt String Term
