bin/pvsc.mli:
