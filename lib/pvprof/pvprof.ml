(** Deterministic cycle-driven sampling profiler.

    The exhaustive profiler ({!Pvvm.Profile}) bumps a hashtable counter
    at every block — fine for short runs, unaffordable for the week-long
    virtual workloads the paper's §2.2 "idle time between runs" loop is
    meant to observe.  This module is the sampling alternative: the VM
    arms a period on its *virtual cycle clock* and polls it at block
    entries — the same safepoints the checkpoint machinery uses (PR 7),
    so sampling adds one integer compare per executed block and no new
    hot-loop cost model.

    Determinism is the whole design: a sample fires at the first block
    entry whose cycle count reaches the armed threshold, and the cycle
    clock is part of the portable semantics (bit-identical across the
    tree-walking, threaded and AOT engines — the profiled-vs-unprofiled
    oracle in [lib/pvcheck] pins this).  Two runs of the same program
    with the same period therefore take the *same* samples on *any*
    engine, which makes profiles comparable, testable and mergeable in a
    way wall-clock signal profilers never are.

    Each sample attributes the cycles elapsed since the previous sample
    to the current (function, block) and to the current folded activation
    stack (maintained by the VM as a shadow stack of function names).
    Three export surfaces:

    - {!to_collapsed}: flamegraph.pl / speedscope collapsed-stack text;
    - {!to_trace}: sampled instants + a cumulative counter track merged
      into the Chrome exporter, with deterministic stride decimation so
      an arbitrarily long run produces a bounded trace;
    - {!ranking} / {!ranking_table}: the hot-block table.

    {!to_data} distills everything into the canonical {!Pvir.Profdata}
    codec for the feedback edge ([pvsc --profile-in]). *)

(** Default sampling period in virtual cycles: fine enough to rank the
    blocks of a Table-1 kernel run (a handful of samples per pass over
    1024 elements), coarse enough that per-sample bookkeeping stays far
    below the 5% overhead budget (E14) — the poll itself is one integer
    compare, but each fired sample pays hashtable updates. *)
let default_period = 32768L

(** One retained sample, for the bounded trace export. *)
type sample = {
  s_idx : int;  (** 0-based sample index *)
  s_ts : int64;  (** virtual cycle stamp *)
  s_fn : string;
  s_block : int;
  s_depth : int;  (** activation stack depth at the sample *)
  s_cum : int64;  (** cumulative attributed weight including this sample *)
}

type t = {
  period : int64;
  mutable next_at : int64;  (** cycle threshold of the next sample *)
  mutable last_cycles : int64;  (** stamp of the previous sample *)
  mutable total : int64;  (** total attributed cycle weight *)
  mutable nsamples : int;
  fn_w : (string, int64 ref) Hashtbl.t;
  blk_w : (string * int, int64 ref) Hashtbl.t;
  folded : (string list, int64 ref) Hashtbl.t;
      (** key: outermost frame first, leaf ["fn:bN"] last *)
  (* bounded retention for the trace export: keep samples whose index is
     a multiple of [stride]; when more than [cap] are held, double the
     stride and drop the odd half.  Deterministic — retention depends
     only on sample indices, never on time or memory pressure. *)
  cap : int;
  mutable stride : int;
  mutable kept : sample list;  (** newest first *)
  mutable nkept : int;
}

let create ?(period = default_period) ?(cap = 512) () =
  if Int64.compare period 1L < 0 then
    invalid_arg "Pvprof.create: period must be >= 1";
  if cap < 2 then invalid_arg "Pvprof.create: cap must be >= 2";
  {
    period;
    next_at = period;
    last_cycles = 0L;
    total = 0L;
    nsamples = 0;
    fn_w = Hashtbl.create 16;
    blk_w = Hashtbl.create 64;
    folded = Hashtbl.create 64;
    cap;
    stride = 1;
    kept = [];
    nkept = 0;
  }

let period t = t.period
let next_at t = t.next_at
let samples_taken t = t.nsamples
let total_weight t = t.total

let bump tbl key w =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := Int64.add !r w
  | None -> Hashtbl.replace tbl key (ref w)

(** Record one sample.  [cycles] is the VM's cycle counter at the block
    entry that tripped the threshold; [stack] is the activation stack,
    innermost frame first, whose head is the sampled function [fn];
    [block] is the label of the block being entered.  The cycles elapsed
    since the previous sample are attributed here, and the threshold
    re-arms at [cycles + period] (not [next_at + period]: a single long
    block must not be followed by a burst of catch-up samples). *)
let sample t ~cycles ~(stack : string list) ~fn ~block : unit =
  let w = Int64.max 1L (Int64.sub cycles t.last_cycles) in
  t.last_cycles <- cycles;
  t.next_at <- Int64.add cycles t.period;
  t.total <- Int64.add t.total w;
  bump t.fn_w fn w;
  bump t.blk_w (fn, block) w;
  (* concatenation, not sprintf: this runs once per fired sample and is
     the bulk of the sampling overhead measured by E14 *)
  let leaf = fn ^ ":b" ^ string_of_int block in
  let key =
    match stack with
    | [] -> [ leaf ]
    | _ :: callers -> List.rev (leaf :: callers)
  in
  bump t.folded key w;
  let idx = t.nsamples in
  t.nsamples <- idx + 1;
  if idx mod t.stride = 0 then begin
    t.kept <-
      {
        s_idx = idx;
        s_ts = cycles;
        s_fn = fn;
        s_block = block;
        s_depth = List.length stack;
        s_cum = t.total;
      }
      :: t.kept;
    t.nkept <- t.nkept + 1;
    if t.nkept > t.cap then begin
      t.stride <- t.stride * 2;
      t.kept <- List.filter (fun s -> s.s_idx mod t.stride = 0) t.kept;
      t.nkept <- List.length t.kept
    end
  end

(** Retained samples, oldest first (a decimated, bounded subset of the
    full stream — see the retention note on {!t}). *)
let kept_samples t : sample list = List.rev t.kept

(* ---------------- rankings ---------------- *)

let weights_of tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []

(* heaviest first; ties broken by key so the order is total *)
let by_weight_desc (ka, wa) (kb, wb) =
  match Int64.compare wb wa with 0 -> compare ka kb | c -> c

(** Sampled per-function cycle weight, heaviest first. *)
let fn_ranking t : (string * int64) list =
  List.sort by_weight_desc (weights_of t.fn_w)

(** Sampled per-(function, block) cycle weight, heaviest first — the
    hot-block table. *)
let ranking t : ((string * int) * int64) list =
  List.sort by_weight_desc (weights_of t.blk_w)

let fn_weight t fname =
  match Hashtbl.find_opt t.fn_w fname with Some r -> !r | None -> 0L

let block_weight t fname label =
  match Hashtbl.find_opt t.blk_w (fname, label) with
  | Some r -> !r
  | None -> 0L

(** Human-readable hot-block table (heaviest first, cycle weight and
    share of the total). *)
let ranking_table ?(limit = 20) t : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %14s %7s\n" "function:block" "cycles" "share");
  let total = Int64.to_float (Int64.max 1L t.total) in
  List.iteri
    (fun i ((fn, blk), w) ->
      if i < limit then
        Buffer.add_string buf
          (Printf.sprintf "%-28s %14Ld %6.1f%%\n"
             (Printf.sprintf "%s:b%d" fn blk)
             w
             (100.0 *. Int64.to_float w /. total)))
    (ranking t);
  Buffer.contents buf

(* ---------------- exports ---------------- *)

(** Collapsed-stack text, one ["frame;frame;leaf weight"] line per folded
    stack, sorted — feed it to flamegraph.pl or paste into speedscope. *)
let to_collapsed t : string =
  let lines =
    Hashtbl.fold
      (fun stack r acc ->
        (Printf.sprintf "%s %Ld" (String.concat ";" stack) !r) :: acc)
      t.folded []
  in
  String.concat "\n" (List.sort String.compare lines)
  ^ if lines = [] then "" else "\n"

(** Merge the retained samples into a trace as instants (category
    ["sample"]) plus a cumulative counter track on the profiler track —
    both timestamped by the virtual cycle clock, so they interleave
    correctly with the VM spans.  Bounded by the retention cap however
    long the run was. *)
let to_trace t (tr : Pvtrace.Trace.t) : unit =
  let tid = Pvtrace.Trace.track_prof in
  Pvtrace.Trace.name_track tr tid "profiler";
  List.iter
    (fun s ->
      Pvtrace.Trace.instant_at tr ~ts:s.s_ts ~tid ~cat:"sample"
        ~args:
          [
            ("fn", s.s_fn);
            ("block", string_of_int s.s_block);
            ("depth", string_of_int s.s_depth);
          ]
        (Printf.sprintf "%s:b%d" s.s_fn s.s_block);
      Pvtrace.Trace.counter_at tr ~ts:s.s_ts ~tid ~cat:"sample" "prof.weight"
        [ ("cycles", s.s_cum); ("samples", Int64.of_int (s.s_idx + 1)) ])
    (kept_samples t)

(** Distill the profile into its canonical codec form (sorted tables —
    byte-identical across engines for the same run). *)
let to_data t : Pvir.Profdata.t =
  {
    Pvir.Profdata.pf_period = t.period;
    pf_total = t.total;
    pf_samples = t.nsamples;
    pf_fns = List.sort compare (weights_of t.fn_w);
    pf_blocks = List.sort compare (weights_of t.blk_w);
    pf_stacks = List.sort compare (weights_of t.folded);
  }

(** The profile → annotation feedback edge: write sampled hotness
    fractions onto [prog] under {!Pvir.Annot.key_hotness} (same key as
    the exhaustive profiler — downstream consumers cannot tell sampled
    and exhaustive hotness apart). *)
let to_annotations t (prog : Pvir.Prog.t) : unit =
  Pvir.Profdata.annotate (to_data t) prog

(** Observational summary for a metrics registry. *)
let observe_metrics t (m : Pvtrace.Metrics.t) : unit =
  Pvtrace.Metrics.inci m "prof.samples" t.nsamples;
  Pvtrace.Metrics.inc m "prof.weight_cycles" t.total;
  Pvtrace.Metrics.seti m "prof.retained" t.nkept;
  Pvtrace.Metrics.seti m "prof.stride" t.stride;
  List.iter
    (fun (_, w) -> Pvtrace.Metrics.observe m "prof.fn_weight" w)
    (fn_ranking t)
