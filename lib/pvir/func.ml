(** PVIR functions: a CFG of basic blocks plus per-register type
    information and split-compilation annotations. *)

type block = {
  label : int;
  mutable instrs : Instr.t list;
  mutable term : Instr.term;
}

type t = {
  name : string;
  params : Instr.reg list;
  ret : Types.t option;
  mutable blocks : block list;  (** entry block first *)
  reg_ty : (Instr.reg, Types.t) Hashtbl.t;
  mutable next_reg : int;
  mutable next_label : int;
  mutable annots : Annot.t;
  mutable loop_annots : (int * Annot.t) list;
      (** keyed by loop-header block label *)
  mutable block_index : (block list * (int, block) Hashtbl.t) option;
      (** memoized label→block table, valid only while the [blocks] list it
          was built from is physically the current one (passes that rebuild
          [blocks] invalidate it for free) *)
}

let create ~name ~params ~ret =
  let reg_ty = Hashtbl.create 32 in
  List.iteri (fun i (ty : Types.t) -> Hashtbl.replace reg_ty i ty) params;
  {
    name;
    params = List.mapi (fun i _ -> i) params;
    ret;
    blocks = [];
    reg_ty;
    next_reg = List.length params;
    next_label = 0;
    annots = Annot.empty;
    loop_annots = [];
    block_index = None;
  }

(** Allocate a fresh virtual register of type [ty]. *)
let fresh_reg fn ty =
  let r = fn.next_reg in
  fn.next_reg <- r + 1;
  Hashtbl.replace fn.reg_ty r ty;
  r

let reg_type fn r =
  match Hashtbl.find_opt fn.reg_ty r with
  | Some ty -> ty
  | None -> invalid_arg (Printf.sprintf "Func.reg_type: unknown register r%d in %s" r fn.name)

let set_reg_type fn r ty = Hashtbl.replace fn.reg_ty r ty

(** Append an empty block (terminated by [Ret None] until sealed). *)
let add_block fn =
  let label = fn.next_label in
  fn.next_label <- label + 1;
  let b = { label; instrs = []; term = Instr.Ret None } in
  fn.blocks <- fn.blocks @ [ b ];
  b

(* O(1) after the first lookup: the table is rebuilt whenever [fn.blocks]
   is a different list from the one it was computed for.  Labels stay
   first-match to mirror the original [List.find_opt] behaviour. *)
let block_table fn =
  match fn.block_index with
  | Some (blocks, tbl) when blocks == fn.blocks -> tbl
  | _ ->
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b -> if not (Hashtbl.mem tbl b.label) then Hashtbl.add tbl b.label b)
      fn.blocks;
    fn.block_index <- Some (fn.blocks, tbl);
    tbl

let find_block fn label =
  match Hashtbl.find_opt (block_table fn) label with
  | Some b -> b
  | None ->
    invalid_arg (Printf.sprintf "Func.find_block: no block %d in %s" label fn.name)

let entry fn =
  match fn.blocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Func.entry: %s has no blocks" fn.name)

let iter_blocks f fn = List.iter f fn.blocks

let iter_instrs f fn =
  List.iter (fun b -> List.iter (f b) b.instrs) fn.blocks

(** Number of instructions, terminators included — the unit in which the
    JIT work accountant measures pass costs. *)
let instr_count fn =
  List.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 fn.blocks

let loop_annot fn header =
  match List.assoc_opt header fn.loop_annots with
  | Some a -> a
  | None -> Annot.empty

let set_loop_annot fn header a =
  fn.loop_annots <- (header, a) :: List.remove_assoc header fn.loop_annots

let add_annot fn key v = fn.annots <- Annot.add key v fn.annots

(** All registers mentioned anywhere in the function (defs, uses, params). *)
let all_regs fn =
  let seen = Hashtbl.create 64 in
  let touch r = Hashtbl.replace seen r () in
  List.iter touch fn.params;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          Option.iter touch (Instr.def i);
          List.iter touch (Instr.uses i))
        b.instrs;
      List.iter touch (Instr.term_uses b.term))
    fn.blocks;
  Hashtbl.fold (fun r () acc -> r :: acc) seen [] |> List.sort compare

(** Deep copy (blocks and tables are fresh; annotations are shared since
    they are immutable). *)
let copy fn =
  {
    fn with
    blocks =
      List.map (fun b -> { b with instrs = b.instrs }) fn.blocks;
    reg_ty = Hashtbl.copy fn.reg_ty;
    block_index = None;
  }
