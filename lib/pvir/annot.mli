(** Bytecode annotations — the central mechanism of split compilation.

    Key/value metadata attached to programs, functions and loops.  The
    offline compiler distills expensive analyses into annotations; the
    online compiler may consume them and must be free to ignore them (the
    code stays correct either way).  The [key_*] values below document
    the coding conventions both halves agree on. *)

type value =
  | Bool of bool
  | Int of int
  | Flt of float
  | Str of string
  | List of value list

type t = (string * value) list

val empty : t

(** [add key v a] binds [key] (replacing any previous binding). *)
val add : string -> value -> t -> t

val remove : string -> t -> t
val find : string -> t -> value option
val mem : string -> t -> bool
val find_int : string -> t -> int option
val find_bool : string -> t -> bool option
val find_str : string -> t -> string option
val find_list : string -> t -> value list option

(** [has_flag k a] is [true] iff [k] is bound to [Bool true]. *)
val has_flag : string -> t -> bool

(** {1 Well-known keys} *)

(** Function was auto-vectorized offline; value is the lane width used. *)
val key_vectorized : string

(** Loop: countable with unit stride. *)
val key_unit_stride : string

(** Loop: statically known trip count. *)
val key_trip_count : string

(** Loop: memory accesses in the body do not alias. *)
val key_no_alias : string

(** Loop: lanes per vectorized iteration chosen by the offline
    vectorizer. *)
val key_vector_factor : string

(** Function: split register-allocation payload — a list of
    [List [Int reg; Int cost]] pairs, cheapest-to-spill first. *)
val key_spill_order : string

(** Function: maximum register pressure measured offline. *)
val key_pressure : string

(** Function: estimated hotness in [0;1] from profiling. *)
val key_hotness : string

(** Function: hardware capabilities this code benefits from (list of
    capability name strings, e.g. "simd128", "dsp_mac"). *)
val key_hw_prefs : string

(** Function: pure (no memory writes, no calls). *)
val key_pure : string

(** Function: profitable inlining candidate. *)
val key_inline : string

(** {1 Utilities} *)

val value_to_string : value -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal_value : value -> value -> bool

(** Order-insensitive equality on annotation sets. *)
val equal : t -> t -> bool

val value_size : value -> int

(** Approximate serialized size in bytes (compactness experiment E5). *)
val size : t -> int
