(** Compilation work accounting.

    The paper's core economic argument (§3, §5) is that JIT compilers run
    under a CPU and memory budget, so expensive analyses must move offline
    and flow forward as annotations.  To make that measurable, every
    compiler pass — offline or online — reports its work here in abstract
    *work units* (roughly: simple operations per IR instruction processed,
    with super-linear analyses charging their asymptotic factor).  The
    Figure-1 experiment (E2) compares, per compilation mode, online work
    units against the quality of the generated code. *)

type t = {
  mutable entries : (string * int) list;  (** pass name, work units *)
  mutable total : int;
  discard : bool;  (** a sink that records nothing (see {!ignore_sink}) *)
}

let create () = { entries = []; total = 0; discard = false }

(** [charge t ~pass n] records [n] work units against [pass]. *)
let charge t ~pass n =
  if not t.discard then begin
    let n = max 0 n in
    t.total <- t.total + n;
    t.entries <-
      (match List.assoc_opt pass t.entries with
      | Some old ->
        (pass, old + n) :: List.remove_assoc pass t.entries
      | None -> (pass, n) :: t.entries)
  end

let total t = t.total
let by_pass t = List.rev t.entries

(** Work units recorded against one pass (0 if it never ran). *)
let find t pass =
  match List.assoc_opt pass t.entries with Some n -> n | None -> 0

let to_string t =
  let items =
    List.map (fun (p, n) -> Printf.sprintf "%s=%d" p n) (by_pass t)
  in
  Printf.sprintf "%d work units (%s)" t.total (String.concat ", " items)

(** A sink that records nothing — used when accounting is irrelevant.
    Charges against it are truly discarded: it is shared and global, so
    it must never accumulate cross-run state. *)
let ignore_sink = { entries = []; total = 0; discard = true }

(** Charge helper tolerating an absent accountant. *)
let charge_opt t ~pass n =
  match t with Some t -> charge t ~pass n | None -> ()

(** Absorb this account into a metrics registry: one counter per pass
    ([<prefix>.work.<pass>]) plus the total ([<prefix>.work.total]), so
    compile-work economics and VM counters live in one place. *)
let to_metrics ?(prefix = "") (t : t) (m : Pvtrace.Metrics.t) : unit =
  let name s = if prefix = "" then s else prefix ^ "." ^ s in
  List.iter
    (fun (pass, n) ->
      Pvtrace.Metrics.inci m (name ("work." ^ pass)) n)
    (by_pass t);
  Pvtrace.Metrics.inci m (name "work.total") t.total
