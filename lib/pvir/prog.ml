(** PVIR programs (compilation units): globals + functions + annotations.

    A program is the unit of distribution — what the offline compiler emits
    and what the runtime loads on the device. *)

type global = {
  gname : string;
  gelem : Types.scalar;  (** element type *)
  gcount : int;  (** number of elements *)
  ginit : Value.t array option;  (** optional initializer, length [gcount] *)
  gannots : Annot.t;
}

(** Declaration of a function defined in another compilation unit, to be
    resolved by {!Link} at install time. *)
type extern = {
  ename : string;
  eparams : Types.t list;
  eret : Types.t option;
}

type t = {
  pname : string;
  mutable globals : global list;
  mutable funcs : Func.t list;
  mutable externs : extern list;
  mutable annots : Annot.t;
}

let create name =
  { pname = name; globals = []; funcs = []; externs = []; annots = Annot.empty }

let add_func p fn = p.funcs <- p.funcs @ [ fn ]

let add_global p ?(annots = Annot.empty) ?init name elem count =
  (match init with
  | Some a when Array.length a <> count ->
    invalid_arg "Prog.add_global: initializer length mismatch"
  | _ -> ());
  p.globals <-
    p.globals
    @ [ { gname = name; gelem = elem; gcount = count; ginit = init; gannots = annots } ]

let find_func p name = List.find_opt (fun (f : Func.t) -> f.name = name) p.funcs

let find_func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Prog.find_func: no function %s" name)

let find_global p name =
  List.find_opt (fun g -> g.gname = name) p.globals

let global_size g = Types.scalar_size g.gelem * g.gcount

(** Replace a function by a transformed copy (used by optimization passes
    that rebuild rather than mutate). *)
let replace_func p fn =
  p.funcs <-
    List.map (fun (f : Func.t) -> if f.name = Func.(fn.name) then fn else f) p.funcs

(** Runtime intrinsics every VM provides.  Name, parameter types, return. *)
let intrinsics : (string * Types.t list * Types.t option) list =
  [
    ("print_i64", [ Types.i64 ], None);
    ("print_f64", [ Types.f64 ], None);
    ("abort", [], None);
  ]

let intrinsic_sig name =
  List.find_map
    (fun (n, ps, r) -> if n = name then Some (ps, r) else None)
    intrinsics

let add_extern p ename eparams eret =
  p.externs <- p.externs @ [ { ename; eparams; eret } ]

let find_extern p name =
  List.find_opt (fun e -> String.equal e.ename name) p.externs

(** Signature of a callee visible from [p]: an intrinsic, a program
    function, or an extern declaration (resolved later by {!Link}). *)
let callee_sig p name =
  match intrinsic_sig name with
  | Some s -> Some s
  | None -> (
    match
      Option.map
        (fun (f : Func.t) ->
          (List.map (fun r -> Func.reg_type f r) f.params, f.ret))
        (find_func p name)
    with
    | Some s -> Some s
    | None ->
      Option.map (fun e -> (e.eparams, e.eret)) (find_extern p name))

let copy p =
  {
    pname = p.pname;
    globals = p.globals;
    funcs = List.map Func.copy p.funcs;
    externs = p.externs;
    annots = p.annots;
  }

(** Canonical dump of {e every} annotation surface of [p]: program-level,
    per-global, per-function and per-loop sets, each sorted by key.
    Two programs get equal dumps iff their annotation sets are equal —
    this is the "annotation-set digest" half of content-addressed
    compiled-code cache keys.  Note that the pretty-printer is {e not} a
    substitute: {!Pp.program_to_string} never prints global annotations,
    so programs differing only in [gannots] render identically. *)
let annotations_dump (p : t) : string =
  let buf = Buffer.create 256 in
  let set scope (a : Annot.t) =
    List.iter
      (fun (k, v) ->
        Printf.bprintf buf "%s!%s=%s\n" scope k (Annot.value_to_string v))
      (List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) a)
  in
  set "prog:" p.annots;
  List.iter (fun g -> set (Printf.sprintf "global:%s:" g.gname) g.gannots)
    p.globals;
  List.iter
    (fun (fn : Func.t) ->
      set (Printf.sprintf "func:%s:" fn.Func.name) fn.Func.annots;
      List.iter
        (fun (header, a) ->
          set (Printf.sprintf "loop:%s:%d:" fn.Func.name header) a)
        (List.sort compare fn.Func.loop_annots))
    p.funcs;
  Buffer.contents buf
