(** Binary profile format — the feedback half of split compilation.

    What the sampling profiler distills from a run: sampling period plus
    cycle weight per function, per (function, block) and per folded
    activation stack.  Crosses the device → offline-compiler trust
    boundary, so the codec reuses {!Serial}'s hardened reader/writer core:
    every malformed stream is rejected with {!Serial.Corrupt}.  Encoding
    is canonical (all tables sorted, weights strictly positive), so
    identical sampling runs produce byte-identical profiles. *)

(** File magic ("PVPF") and format version. *)
val magic : string

val version : int

type t = {
  pf_period : int64;  (** sampling period, virtual cycles; > 0 *)
  pf_total : int64;  (** total cycle weight attributed across samples *)
  pf_samples : int;  (** number of samples taken *)
  pf_fns : (string * int64) list;  (** per-function weight, sorted by name *)
  pf_blocks : ((string * int) * int64) list;
      (** per-(function, block-label) weight, sorted *)
  pf_stacks : (string list * int64) list;
      (** folded activation stacks, outermost frame first, sorted *)
}

val encode : t -> string

(** @raise Serial.Corrupt on malformed input. *)
val decode : ?limits:Serial.limits -> string -> t

(** Exceptionless {!decode} for callers at the trust boundary. *)
val decode_result : ?limits:Serial.limits -> string -> (t, Serial.corruption) result

(** Sampled cycle weight of one function (0 if never sampled). *)
val fn_weight : t -> string -> int64

(** Write {!Annot.key_hotness} fractions (sampled weight / total) onto
    every function of the program — the profile → annotation feedback
    edge consumed by [pvsc --profile-in]. *)
val annotate : t -> Prog.t -> unit

val to_file : string -> t -> unit
val of_file : string -> t
