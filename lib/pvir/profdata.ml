(** Binary profile format — the feedback half of split compilation.

    A profile is what the sampling profiler ({!Pvprof} in [lib/pvprof])
    distills from a run: the sampling period, the cycle weight attributed
    to each function, to each (function, block) pair, and to each folded
    activation stack.  It travels from the device back to the offline
    compiler ([pvsc --profile-in]), so — like bytecode and snapshots — it
    crosses a trust boundary and its codec reuses {!Serial}'s hardened
    reader/writer core: every truncation or byte flip is rejected with
    {!Serial.Corrupt}, never another exception, and no length field
    drives an allocation beyond the size of the input.

    Encoding is canonical: all three weight tables are sorted (functions
    by name, blocks by (name, label), stacks lexicographically) and
    weights are strictly positive, so two identical sampling runs
    produce byte-identical profiles (the profiled-vs-unprofiled oracle
    compares engines through this encoding). *)

let magic = "PVPF"
let version = 1

type t = {
  pf_period : int64;  (** sampling period, virtual cycles; > 0 *)
  pf_total : int64;  (** total cycle weight attributed across samples *)
  pf_samples : int;  (** number of samples taken *)
  pf_fns : (string * int64) list;  (** per-function weight, sorted by name *)
  pf_blocks : ((string * int) * int64) list;
      (** per-(function, block-label) weight, sorted *)
  pf_stacks : (string list * int64) list;
      (** folded activation stacks, outermost frame first, sorted *)
}

(* ---------------- encode ---------------- *)

let encode (p : t) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b magic;
  Serial.w_u8 b version;
  Serial.w_varint b p.pf_period;
  Serial.w_varint b p.pf_total;
  Serial.w_int b p.pf_samples;
  Serial.w_list b
    (fun b (fn, w) ->
      Serial.w_string b fn;
      Serial.w_varint b w)
    p.pf_fns;
  Serial.w_list b
    (fun b ((fn, blk), w) ->
      Serial.w_string b fn;
      Serial.w_int b blk;
      Serial.w_varint b w)
    p.pf_blocks;
  Serial.w_list b
    (fun b (stack, w) ->
      Serial.w_list b Serial.w_string stack;
      Serial.w_varint b w)
    p.pf_stacks;
  Buffer.contents b

(* ---------------- decode ---------------- *)

(* Weights travel as unsigned varints; bit 63 set decodes to a negative
   OCaml int64, which no real profile produces. *)
let r_weight r what =
  let w = Serial.r_varint r in
  if Int64.compare w 0L <= 0 then
    Serial.corrupt r "non-positive %s weight" what;
  w

let decode ?(limits = Serial.default_limits) (s : string) : t =
  let r = { Serial.buf = s; pos = 0; lim = limits } in
  if String.length s < 5 || not (String.equal (String.sub s 0 4) magic) then
    Serial.corrupt r "bad profile magic";
  r.Serial.pos <- 4;
  (* Belt and braces, same as [Serial.decode]: only [Corrupt] may escape
     on any input. *)
  try
    let v = Serial.r_u8 r in
    if v <> version then Serial.corrupt r "unsupported profile version %d" v;
    let pf_period = Serial.r_varint r in
    if Int64.compare pf_period 1L < 0 then
      Serial.corrupt r "non-positive sampling period";
    let pf_total = Serial.r_varint r in
    if Int64.compare pf_total 0L < 0 then
      Serial.corrupt r "negative total weight";
    let pf_samples = Serial.r_int r in
    if pf_samples < 0 then Serial.corrupt r "negative sample count";
    (* canonical order is enforced, not just trusted: a profile that is
       not sorted (or repeats a key) did not come from our writer *)
    let last_fn = ref "" in
    let first_fn = ref true in
    let pf_fns =
      Serial.r_list r (fun r ->
          let fn = Serial.r_string r in
          if (not !first_fn) && String.compare fn !last_fn <= 0 then
            Serial.corrupt r "function table not strictly sorted at %s" fn;
          first_fn := false;
          last_fn := fn;
          (fn, r_weight r "function"))
    in
    let last_blk = ref ("", -1) in
    let first_blk = ref true in
    let pf_blocks =
      Serial.r_list r (fun r ->
          let fn = Serial.r_string r in
          let blk = Serial.r_int r in
          if blk < 0 then Serial.corrupt r "bad block label %d" blk;
          if (not !first_blk) && compare (fn, blk) !last_blk <= 0 then
            Serial.corrupt r "block table not strictly sorted at %s/b%d" fn blk;
          first_blk := false;
          last_blk := (fn, blk);
          ((fn, blk), r_weight r "block"))
    in
    let last_stack = ref [] in
    let first_stack = ref true in
    let pf_stacks =
      Serial.r_list r (fun r ->
          let stack = Serial.r_list r Serial.r_string in
          if stack = [] then Serial.corrupt r "empty folded stack";
          if (not !first_stack) && compare stack !last_stack <= 0 then
            Serial.corrupt r "stack table not strictly sorted";
          first_stack := false;
          last_stack := stack;
          (stack, r_weight r "stack"))
    in
    if Serial.remaining r <> 0 then
      Serial.corrupt r "%d trailing bytes" (Serial.remaining r);
    { pf_period; pf_total; pf_samples; pf_fns; pf_blocks; pf_stacks }
  with
  | Serial.Corrupt _ as e -> raise e
  | Stack_overflow -> Serial.corrupt r "decoder recursion limit"
  | Invalid_argument m | Failure m ->
    Serial.corrupt r "decoder invariant: %s" m

let decode_result ?limits (s : string) : (t, Serial.corruption) result =
  match decode ?limits s with
  | p -> Ok p
  | exception Serial.Corrupt c -> Error c

(* ---------------- feedback edge ---------------- *)

let fn_weight (p : t) fname =
  match List.assoc_opt fname p.pf_fns with Some w -> w | None -> 0L

(** Annotate every function of [prog] with its sampled hotness in [0;1]
    (fraction of total sampled cycle weight) under
    {!Annot.key_hotness} — the same key the exhaustive profiler writes,
    so the offline compiler and the JIT cannot tell the two apart.
    Functions the profile never sampled get hotness 0 explicitly: "we
    looked and it was cold" is information. *)
let annotate (p : t) (prog : Prog.t) : unit =
  let total =
    List.fold_left (fun acc (_, w) -> Int64.add acc w) 0L p.pf_fns
  in
  if Int64.compare total 0L > 0 then
    List.iter
      (fun (fn : Func.t) ->
        let h = Int64.to_float (fn_weight p fn.name) /. Int64.to_float total in
        Func.add_annot fn Annot.key_hotness (Annot.Flt h))
      prog.funcs

(* ---------------- files ---------------- *)

let to_file path (p : t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode p))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      decode (really_input_string ic n))
