(** PVIR verifier.

    Verification runs offline after compilation and online at load time — a
    device never JITs an ill-typed program.  Checks: every used register has
    a declared type and correct operand types, branch targets exist, calls
    match visible signatures, the entry block exists and memory operands are
    pointers. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let check_scalar_op fn where op ty =
  match (ty : Types.t) with
  | Types.Scalar s | Types.Vector (s, _) ->
    if not (Instr.binop_valid_on op s) then
      fail "%s: %s not valid at type %s in %s" where (Instr.binop_name op)
        (Types.to_string ty) Func.(fn.name)
  | Types.Ptr _ ->
    (* pointer arithmetic: only add/sub of pointers with integers is
       expressed as i64 math before a conv; direct ptr binops are limited *)
    (match op with
    | Instr.Add | Instr.Sub -> ()
    | _ ->
      fail "%s: %s not valid on pointer in %s" where (Instr.binop_name op)
        Func.(fn.name))

let same_ty fn where a b =
  let ta = Func.reg_type fn a and tb = Func.reg_type fn b in
  (* Pointer registers may mix with i64 in address computations. *)
  let norm (t : Types.t) = match t with Types.Ptr _ -> Types.i64 | t -> t in
  if not (Types.equal (norm ta) (norm tb)) then
    fail "%s: operand types %s vs %s in %s" where (Types.to_string ta)
      (Types.to_string tb) Func.(fn.name)

let check_instr p fn (i : Instr.t) =
  let rt r = Func.reg_type fn r in
  match i with
  | Const (d, v) ->
    if not (Types.equal (rt d) (Value.ty v)) then
      (* pointer-typed register receiving an integer constant is fine *)
      if not (Types.is_pointer (rt d) && Types.equal (Value.ty v) Types.i64)
      then
        fail "const: register r%d has type %s but value has type %s in %s" d
          (Types.to_string (rt d))
          (Types.to_string (Value.ty v))
          Func.(fn.name)
  | Mov (d, a) -> same_ty fn "mov" d a
  | Gaddr (d, g) ->
    if not (Types.is_pointer (rt d) || Types.equal (rt d) Types.i64) then
      fail "gaddr: destination r%d is not a pointer in %s" d Func.(fn.name);
    if Prog.find_global p g = None then
      fail "gaddr: unknown global @%s in %s" g Func.(fn.name)
  | Binop (op, d, a, b) ->
    same_ty fn "binop" a b;
    same_ty fn "binop" d a;
    check_scalar_op fn "binop" op (rt d)
  | Unop (op, d, a) ->
    same_ty fn "unop" d a;
    if op = Instr.Not && Types.is_float (rt d) then
      fail "unop: not on float in %s" Func.(fn.name)
  | Conv (_, d, a) -> (
    match (rt d, rt a) with
    | Types.Vector (_, nd), Types.Vector (_, na) ->
      if nd <> na then
        fail "conv: vector lane count mismatch in %s" Func.(fn.name)
    | Types.Vector _, _ | _, Types.Vector _ ->
      fail "conv: mixed vector/scalar operands in %s" Func.(fn.name)
    | _ -> ())
  | Cmp (op, d, a, b) ->
    same_ty fn "cmp" a b;
    if Types.is_vector (rt a) then fail "cmp: vector operand in %s" Func.(fn.name);
    if not (Types.equal (rt d) Types.i32) then
      fail "cmp: destination must be i32 in %s" Func.(fn.name);
    (match op with
    | Instr.Ult | Instr.Ule | Instr.Ugt | Instr.Uge ->
      if Types.is_float (rt a) then
        fail "cmp: unsigned predicate on float in %s" Func.(fn.name)
    | _ -> ())
  | Select (d, c, a, b) ->
    same_ty fn "select" a b;
    same_ty fn "select" d a;
    if not (Types.equal (rt c) Types.i32) then
      fail "select: condition must be i32 in %s" Func.(fn.name)
  | Load (ty, d, base, _) ->
    if not (Types.equal (rt d) ty) then
      fail "load: destination type mismatch in %s" Func.(fn.name);
    if not (Types.is_pointer (rt base) || Types.equal (rt base) Types.i64)
    then fail "load: base r%d is not a pointer in %s" base Func.(fn.name)
  | Store (ty, s, base, _) ->
    if not (Types.equal (rt s) ty) then
      fail "store: source type mismatch in %s" Func.(fn.name);
    if not (Types.is_pointer (rt base) || Types.equal (rt base) Types.i64)
    then fail "store: base r%d is not a pointer in %s" base Func.(fn.name)
  | Alloca (d, n) ->
    if n < 0 then fail "alloca: negative size in %s" Func.(fn.name);
    if not (Types.is_pointer (rt d)) then
      fail "alloca: destination r%d is not a pointer in %s" d Func.(fn.name)
  | Call (d, name, args) -> (
    match Prog.callee_sig p name with
    | None -> fail "call: unknown callee @%s in %s" name Func.(fn.name)
    | Some (param_tys, ret_ty) ->
      if List.length args <> List.length param_tys then
        fail "call: @%s expects %d arguments, got %d in %s" name
          (List.length param_tys) (List.length args)
          Func.(fn.name);
      List.iter2
        (fun a ty ->
          if not (Types.equal (rt a) ty) then
            fail "call: argument type mismatch for @%s in %s" name
              Func.(fn.name))
        args param_tys;
      match (d, ret_ty) with
      | None, _ -> ()
      | Some _, None ->
        fail "call: @%s returns nothing in %s" name Func.(fn.name)
      | Some d, Some ty ->
        if not (Types.equal (rt d) ty) then
          fail "call: return type mismatch for @%s in %s" name Func.(fn.name))
  | Splat (d, a) -> (
    match rt d with
    | Types.Vector (s, _) ->
      if not (Types.equal (rt a) (Types.Scalar s)) then
        fail "splat: lane type mismatch in %s" Func.(fn.name)
    | _ -> fail "splat: destination is not a vector in %s" Func.(fn.name))
  | Extract (d, a, lane) -> (
    match rt a with
    | Types.Vector (s, n) ->
      if lane < 0 || lane >= n then
        fail "extract: lane %d out of range in %s" lane Func.(fn.name);
      if not (Types.equal (rt d) (Types.Scalar s)) then
        fail "extract: destination type mismatch in %s" Func.(fn.name)
    | _ -> fail "extract: source is not a vector in %s" Func.(fn.name))
  | Reduce (op, d, a) -> (
    match rt a with
    | Types.Vector (s, _) ->
      if not (Types.equal (rt d) (Types.Scalar s)) then
        fail "reduce: destination type mismatch in %s" Func.(fn.name);
      if Types.is_float_scalar s then (
        match op with
        | Instr.Rumin | Instr.Rumax ->
          fail "reduce: unsigned reduction on float in %s" Func.(fn.name)
        | _ -> ())
    | _ -> fail "reduce: source is not a vector in %s" Func.(fn.name))

let check_term fn labels (t : Instr.term) =
  let check_label l =
    if not (List.mem l labels) then
      fail "terminator: no block %d in %s" l Func.(fn.name)
  in
  match t with
  | Br l -> check_label l
  | Cbr (c, l1, l2) ->
    if not (Types.equal (Func.reg_type fn c) Types.i32) then
      fail "cbr: condition must be i32 in %s" Func.(fn.name);
    check_label l1;
    check_label l2
  | Ret None ->
    if Func.(fn.ret) <> None then
      fail "ret: missing return value in %s" Func.(fn.name)
  | Ret (Some r) -> (
    match Func.(fn.ret) with
    | None -> fail "ret: unexpected return value in %s" Func.(fn.name)
    | Some ty ->
      if not (Types.equal (Func.reg_type fn r) ty) then
        fail "ret: return type mismatch in %s" Func.(fn.name))

(* Registers must be checked for *declaration* before any type rule runs:
   [Func.reg_type] raises [Invalid_argument] on an unknown register, and a
   decoded (untrusted) program can reference any register id it likes.
   This pre-check turns that into a typed [Error] at the boundary. *)
let check_regs_declared (fn : Func.t) =
  List.iter
    (fun r ->
      if not (Hashtbl.mem fn.reg_ty r) then
        fail "undeclared register r%d in %s" r fn.name)
    (Func.all_regs fn)

let check_func p (fn : Func.t) =
  if fn.blocks = [] then fail "function %s has no blocks" fn.name;
  check_regs_declared fn;
  let labels = List.map (fun (b : Func.block) -> b.label) fn.blocks in
  let sorted = List.sort compare labels in
  let rec dup = function
    | a :: (b :: _ as tl) -> if a = b then Some a else dup tl
    | _ -> None
  in
  (match dup sorted with
  | Some l -> fail "duplicate block label %d in %s" l fn.name
  | None -> ());
  List.iter
    (fun (b : Func.block) ->
      List.iter (check_instr p fn) b.instrs;
      check_term fn labels b.term)
    fn.blocks

(** [program p] raises {!Error} if [p] is ill-formed. *)
let program (p : Prog.t) =
  let names = List.map (fun (f : Func.t) -> f.name) p.funcs in
  let sorted = List.sort compare names in
  let rec dup = function
    | a :: (b :: _ as tl) -> if String.equal a b then Some a else dup tl
    | _ -> None
  in
  (match dup sorted with
  | Some n -> fail "duplicate function @%s" n
  | None -> ());
  (* all functions first: a call-site check reads the *callee*'s parameter
     types, which must be known declared before any caller is visited *)
  List.iter check_regs_declared p.funcs;
  List.iter (check_func p) p.funcs

(** [program_result p] is [Ok ()] or [Error message]. *)
let program_result p =
  match program p with () -> Ok () | exception Error m -> Error m
