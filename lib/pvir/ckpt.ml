(** Binary snapshot format for checkpointed executions.

    A snapshot is the target-neutral state of a running PVIR activation,
    captured at a safepoint (a block boundary): the guest memory image,
    stack pointer, accounting counters, remaining fuel, pending host
    output, and the virtual-register call stack.  It deliberately
    contains no host-engine state — the same bytes restore into the
    tree-walking, threaded or AOT engine — and no program text: programs
    travel through {!Serial}; a snapshot names its program by digest and
    is only valid against a bit-identical bytecode image.

    The codec reuses {!Serial}'s reader/writer core so a snapshot
    received over the migration channel is exactly as adversarially
    hardened as bytecode: every malformed stream is rejected with
    {!Serial.Corrupt}, never another exception, and no length field
    drives an allocation beyond the size of the input.

    Encoding is canonical: register lists are sorted by strictly
    increasing index and only initialized registers appear, so two
    engines checkpointing the same abstract state produce byte-identical
    snapshots (the migration oracle depends on this). *)

let magic = "PVCK"
let version = 1

(** One activation record of the guest call stack, innermost first.
    [ck_ip] is the index of the next instruction to execute in block
    [ck_block]; for every frame but the innermost, the instruction at
    [ck_ip - 1] is the [Call] being waited on and [ck_dst] is its
    destination register (if any). [ck_sp] is the stack pointer to
    restore when this frame returns (callee allocas unwind). *)
type frame = {
  ck_fn : string;
  ck_block : int;  (** block label *)
  ck_ip : int;  (** resume instruction index within the block *)
  ck_dst : int option;  (** pending call destination (outer frames) *)
  ck_regs : (int * Value.t) list;  (** initialized registers, sorted *)
  ck_sp : int;  (** sp to restore on return from this frame *)
}

type t = {
  ck_prog : string;  (** MD5 hex digest of [Serial.encode prog] *)
  ck_mem : string;  (** full guest memory image *)
  ck_gsp : int;  (** stack pointer at capture *)
  ck_cycles : int64;
  ck_instrs : int64;
  ck_calls : int;
  ck_fuel : int64;  (** fuel remaining at capture *)
  ck_output : string;  (** host output emitted so far *)
  ck_frames : frame list;  (** call stack, innermost first *)
}

(* ---------------- encode ---------------- *)

let w_frame b (f : frame) =
  Serial.w_string b f.ck_fn;
  Serial.w_int b f.ck_block;
  Serial.w_int b f.ck_ip;
  Serial.w_option b Serial.w_int f.ck_dst;
  Serial.w_list b
    (fun b (r, v) ->
      Serial.w_int b r;
      Serial.w_value b v)
    f.ck_regs;
  Serial.w_int b f.ck_sp

let encode (s : t) : string =
  let b = Buffer.create (String.length s.ck_mem + 256) in
  Buffer.add_string b magic;
  Serial.w_u8 b version;
  Serial.w_string b s.ck_prog;
  Serial.w_string b s.ck_mem;
  Serial.w_int b s.ck_gsp;
  Serial.w_varint b s.ck_cycles;
  Serial.w_varint b s.ck_instrs;
  Serial.w_int b s.ck_calls;
  Serial.w_varint b s.ck_fuel;
  Serial.w_string b s.ck_output;
  Serial.w_list b w_frame s.ck_frames;
  Buffer.contents b

(* ---------------- decode ---------------- *)

(* Counters travel as unsigned varints; a value with bit 63 set decodes
   to a negative OCaml int64, which no real execution produces. *)
let r_counter r what =
  let v = Serial.r_varint r in
  if Int64.compare v 0L < 0 then Serial.corrupt r "negative %s counter" what;
  v

let r_frame r : frame =
  let ck_fn = Serial.r_string r in
  let ck_block = Serial.r_int r in
  if ck_block < 0 then Serial.corrupt r "bad block label %d" ck_block;
  let ck_ip = Serial.r_int r in
  if ck_ip < 0 then Serial.corrupt r "bad instruction index %d" ck_ip;
  let ck_dst = Serial.r_option r Serial.r_int in
  (match ck_dst with
  | Some d when d < 0 || d >= r.Serial.lim.max_regs ->
    Serial.corrupt r "bad call destination r%d" d
  | _ -> ());
  (* Strictly increasing register indices make the encoding canonical
     (and reject duplicates in one check). *)
  let last = ref (-1) in
  let ck_regs =
    Serial.r_list r (fun r ->
        let reg = Serial.r_int r in
        if reg <= !last then
          Serial.corrupt r "register list not strictly increasing at r%d" reg;
        if reg >= r.Serial.lim.max_regs then
          Serial.corrupt r "register r%d over limit" reg;
        last := reg;
        let v = Serial.r_value r in
        (reg, v))
  in
  let ck_sp = Serial.r_int r in
  if ck_sp < 0 then Serial.corrupt r "bad frame stack pointer %d" ck_sp;
  { ck_fn; ck_block; ck_ip; ck_dst; ck_regs; ck_sp }

let decode ?(limits = Serial.default_limits) (s : string) : t =
  let r = { Serial.buf = s; pos = 0; lim = limits } in
  if String.length s < 5 || not (String.equal (String.sub s 0 4) magic) then
    Serial.corrupt r "bad snapshot magic";
  r.Serial.pos <- 4;
  (* Belt and braces, same as [Serial.decode]: only [Corrupt] may escape
     on any input; anything else slipping through a future reader bug is
     converted at the current offset instead of crashing the restorer. *)
  try
    let v = Serial.r_u8 r in
    if v <> version then Serial.corrupt r "unsupported snapshot version %d" v;
    let ck_prog = Serial.r_string r in
    if String.length ck_prog <> 32 then
      Serial.corrupt r "bad program digest length %d" (String.length ck_prog);
    let ck_mem = Serial.r_string r in
    let ck_gsp = Serial.r_int r in
    if ck_gsp < 0 || ck_gsp > String.length ck_mem then
      Serial.corrupt r "stack pointer %d outside memory image" ck_gsp;
    let ck_cycles = r_counter r "cycle" in
    let ck_instrs = r_counter r "instruction" in
    let ck_calls = Serial.r_int r in
    if ck_calls < 0 then Serial.corrupt r "negative call counter";
    let ck_fuel = r_counter r "fuel" in
    let ck_output = Serial.r_string r in
    let ck_frames = Serial.r_list r r_frame in
    if ck_frames = [] then Serial.corrupt r "snapshot has no frames";
    if Serial.remaining r <> 0 then
      Serial.corrupt r "%d trailing bytes" (Serial.remaining r);
    {
      ck_prog;
      ck_mem;
      ck_gsp;
      ck_cycles;
      ck_instrs;
      ck_calls;
      ck_fuel;
      ck_output;
      ck_frames;
    }
  with
  | Serial.Corrupt _ as e -> raise e
  | Stack_overflow -> Serial.corrupt r "decoder recursion limit"
  | Invalid_argument m | Failure m ->
    Serial.corrupt r "decoder invariant: %s" m

let decode_result ?limits (s : string) : (t, Serial.corruption) result =
  match decode ?limits s with
  | snap -> Ok snap
  | exception Serial.Corrupt c -> Error c

(** Digest a program the way snapshots name one. *)
let prog_digest (p : Prog.t) : string =
  Digest.to_hex (Digest.string (Serial.encode p))

let to_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode s))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      decode (really_input_string ic n))
