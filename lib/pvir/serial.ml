(** Binary serialization of PVIR programs — the actual "bytecode" format.

    Layout goals follow the paper's compactness argument (§2.1, ref [15]):
    compact varint-style integers, one byte per opcode, annotations stored
    out of line so a reader that does not understand them can skip them
    wholesale.  [decode (encode p)] reproduces [p] exactly (checked by the
    round-trip property tests). *)

let magic = "PVIR"
let version = 1

(** Why a stream was rejected: the byte offset where decoding stopped and
    a human-readable reason.  Bytecode received over the distribution
    channel is untrusted input; the decoder's contract is that *every*
    malformed stream — random bytes, truncations, bit flips, adversarial
    length fields — is rejected with [Corrupt], never with [Failure],
    [Invalid_argument], [Out_of_memory] or a stack overflow. *)
type corruption = { offset : int; reason : string }

exception Corrupt of corruption

let corruption_to_string { offset; reason } =
  Printf.sprintf "%s at byte %d" reason offset

(** Decode-time resource bounds.  A length field in a hostile stream can
    claim any 64-bit value; every count that drives an allocation is
    checked against these limits (and against the bytes actually
    remaining) before the allocation happens. *)
type limits = {
  max_vec_lanes : int;  (** lanes in a vector type or value *)
  max_regs : int;  (** virtual registers per function *)
  max_global_elems : int;  (** elements per global array *)
  max_annot_depth : int;  (** nesting of list-valued annotations *)
}

let default_limits =
  {
    max_vec_lanes = 4096;
    max_regs = 1 lsl 20;
    max_global_elems = 1 lsl 26;
    max_annot_depth = 32;
  }

(* ---------------- primitive writers ---------------- *)

type writer = Buffer.t

let w_u8 (b : writer) v = Buffer.add_uint8 b (v land 0xFF)

(* LEB128-style unsigned varint over int64 *)
let w_varint b (v : int64) =
  let v = ref v in
  let continue_ = ref true in
  while !continue_ do
    let byte = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then (
      w_u8 b byte;
      continue_ := false)
    else w_u8 b (byte lor 0x80)
  done

let w_int b (v : int) = w_varint b (Int64.of_int v)

(* zig-zag for signed values *)
let w_svarint b (v : int64) =
  w_varint b (Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63))

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_f64 b (v : float) =
  Buffer.add_int64_le b (Int64.bits_of_float v)

let w_bool b v = w_u8 b (if v then 1 else 0)

let w_option b f = function
  | None -> w_u8 b 0
  | Some x ->
    w_u8 b 1;
    f b x

let w_list b f l =
  w_int b (List.length l);
  List.iter (f b) l

(* ---------------- primitive readers ---------------- *)

type reader = { buf : string; mutable pos : int; lim : limits }

let corrupt r fmt =
  Printf.ksprintf (fun s -> raise (Corrupt { offset = r.pos; reason = s })) fmt

let remaining r = String.length r.buf - r.pos

let r_u8 r =
  if r.pos >= String.length r.buf then corrupt r "unexpected end of input";
  let v = Char.code r.buf.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_varint r =
  let rec go shift acc =
    if shift > 63 then corrupt r "varint too long";
    let byte = r_u8 r in
    let acc =
      Int64.logor acc (Int64.shift_left (Int64.of_int (byte land 0x7F)) shift)
    in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0L

let r_int r = Int64.to_int (r_varint r)

let r_svarint r =
  let v = r_varint r in
  Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

let r_string r =
  let n = r_int r in
  (* [n > remaining] also rejects the overflowing lengths ([r.pos + n]
     wrapping negative) that the seed's check let through *)
  if n < 0 || n > remaining r then corrupt r "bad string length %d" n;
  let s = String.sub r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_f64 r =
  if remaining r < 8 then corrupt r "truncated f64";
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.buf.[r.pos + i]))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !v

let r_bool r = r_u8 r <> 0

let r_option r f = match r_u8 r with 0 -> None | _ -> Some (f r)

(* Every list element costs at least one encoded byte, so a claimed count
   larger than the bytes left is corrupt — checked *before* [List.init]
   allocates, so a hostile length field cannot make the decoder allocate
   (or loop) beyond the size of its input. *)
let r_count r n =
  if n < 0 || n > remaining r then corrupt r "bad element count %d" n

let r_list r f =
  let n = r_int r in
  r_count r n;
  List.init n (fun _ -> f r)

(* ---------------- enums ---------------- *)

let scalar_tag = function
  | Types.I8 -> 0
  | Types.I16 -> 1
  | Types.I32 -> 2
  | Types.I64 -> 3
  | Types.F32 -> 4
  | Types.F64 -> 5

let scalar_of_tag r = function
  | 0 -> Types.I8
  | 1 -> Types.I16
  | 2 -> Types.I32
  | 3 -> Types.I64
  | 4 -> Types.F32
  | 5 -> Types.F64
  | t -> corrupt r "bad scalar tag %d" t

let w_ty b = function
  | Types.Scalar s -> w_u8 b (scalar_tag s)
  | Types.Vector (s, n) ->
    w_u8 b (0x10 lor scalar_tag s);
    w_int b n
  | Types.Ptr s -> w_u8 b (0x20 lor scalar_tag s)

let r_ty r =
  let t = r_u8 r in
  let s = scalar_of_tag r (t land 0x0F) in
  match t land 0xF0 with
  | 0 -> Types.Scalar s
  | 0x10 ->
    let n = r_int r in
    if n < 2 || n > r.lim.max_vec_lanes then
      corrupt r "bad vector lane count %d" n;
    Types.Vector (s, n)
  | 0x20 -> Types.Ptr s
  | _ -> corrupt r "bad type tag %d" t

let index_of x l =
  let rec go i = function
    | [] -> invalid_arg "Serial.index_of"  (* encoder-side: op list is total *)
    | y :: tl -> if y = x then i else go (i + 1) tl
  in
  go 0 l

let nth_or_corrupt r name l i =
  match List.nth_opt l i with
  | Some x -> x
  | None -> corrupt r "bad %s tag %d" name i

let w_binop b op = w_u8 b (index_of op Instr.all_binops)
let r_binop r = nth_or_corrupt r "binop" Instr.all_binops (r_u8 r)
let w_relop b op = w_u8 b (index_of op Instr.all_relops)
let r_relop r = nth_or_corrupt r "relop" Instr.all_relops (r_u8 r)
let w_redop b op = w_u8 b (index_of op Instr.all_redops)
let r_redop r = nth_or_corrupt r "redop" Instr.all_redops (r_u8 r)

let all_convs =
  Instr.[ Zext; Sext; Trunc; Sitofp; Uitofp; Fptosi; Fptoui; Fpconv ]

let w_conv b c = w_u8 b (index_of c all_convs)
let r_conv r = nth_or_corrupt r "conv" all_convs (r_u8 r)

let all_unops = Instr.[ Neg; Not ]
let w_unop b u = w_u8 b (index_of u all_unops)
let r_unop r = nth_or_corrupt r "unop" all_unops (r_u8 r)

(* ---------------- values ---------------- *)

let rec w_value b = function
  | Value.Int (s, x) ->
    w_u8 b 0;
    w_u8 b (scalar_tag s);
    w_svarint b x
  | Value.Float (s, x) ->
    w_u8 b 1;
    w_u8 b (scalar_tag s);
    w_f64 b x
  | Value.Vec elems ->
    w_u8 b 2;
    w_int b (Array.length elems);
    Array.iter (w_value b) elems

(* Scalar values only: an [Int] carrying a float scalar tag (or the
   reverse) would hit [Value.normalize]'s [Invalid_argument] — reject the
   tag combination instead. *)
let r_scalar_value r =
  match r_u8 r with
  | 0 ->
    let s = scalar_of_tag r (r_u8 r) in
    if Types.is_float_scalar s then corrupt r "int value with float scalar";
    Value.Int (s, Value.normalize s (r_svarint r))
  | 1 ->
    let s = scalar_of_tag r (r_u8 r) in
    if not (Types.is_float_scalar s) then
      corrupt r "float value with int scalar";
    Value.Float (s, Value.normalize_float s (r_f64 r))
  | 2 -> corrupt r "nested vector value"
  | t -> corrupt r "bad value tag %d" t

(* The type system has no vector-of-vector, so well-formed values are one
   level deep: a scalar, or a homogeneous vector of scalars.  Decoding
   enforces that shape (rather than recursing), which removes the
   stack-overflow vector a nested-value encoding would open. *)
let r_value r =
  if remaining r > 0 && Char.code r.buf.[r.pos] = 2 then begin
    r.pos <- r.pos + 1;
    let n = r_int r in
    if n < 2 || n > r.lim.max_vec_lanes then corrupt r "vector with %d lanes" n;
    r_count r n;
    let first = r_scalar_value r in
    let elem_ty = Value.ty first in
    let lanes = Array.make n first in
    for i = 1 to n - 1 do
      let v = r_scalar_value r in
      if not (Types.equal (Value.ty v) elem_ty) then
        corrupt r "mixed lane types in vector value";
      lanes.(i) <- v
    done;
    Value.Vec lanes
  end
  else r_scalar_value r

(* ---------------- annotations ---------------- *)

let rec w_annot_value b = function
  | Annot.Bool v ->
    w_u8 b 0;
    w_bool b v
  | Annot.Int v ->
    w_u8 b 1;
    w_svarint b (Int64.of_int v)
  | Annot.Flt v ->
    w_u8 b 2;
    w_f64 b v
  | Annot.Str v ->
    w_u8 b 3;
    w_string b v
  | Annot.List v ->
    w_u8 b 4;
    w_list b w_annot_value v

(* Annotation lists nest (the spill-order payload is a list of pairs), so
   recursion is real here — bounded by [max_annot_depth] to keep a
   deeply-nested hostile stream from overflowing the decoder's stack. *)
let rec r_annot_value ?(depth = 0) r =
  if depth > r.lim.max_annot_depth then corrupt r "annotation nesting too deep";
  match r_u8 r with
  | 0 -> Annot.Bool (r_bool r)
  | 1 -> Annot.Int (Int64.to_int (r_svarint r))
  | 2 -> Annot.Flt (r_f64 r)
  | 3 -> Annot.Str (r_string r)
  | 4 -> Annot.List (r_list r (r_annot_value ~depth:(depth + 1)))
  | t -> corrupt r "bad annotation tag %d" t

let w_annots b (a : Annot.t) =
  w_list b
    (fun b (k, v) ->
      w_string b k;
      w_annot_value b v)
    a

let r_annots r : Annot.t =
  r_list r (fun r ->
      let k = r_string r in
      let v = r_annot_value r in
      (k, v))

(* ---------------- instructions ---------------- *)

let w_instr b (i : Instr.t) =
  match i with
  | Const (d, v) ->
    w_u8 b 0;
    w_int b d;
    w_value b v
  | Binop (op, d, x, y) ->
    w_u8 b 1;
    w_binop b op;
    w_int b d;
    w_int b x;
    w_int b y
  | Unop (op, d, x) ->
    w_u8 b 2;
    w_unop b op;
    w_int b d;
    w_int b x
  | Conv (c, d, x) ->
    w_u8 b 3;
    w_conv b c;
    w_int b d;
    w_int b x
  | Cmp (op, d, x, y) ->
    w_u8 b 4;
    w_relop b op;
    w_int b d;
    w_int b x;
    w_int b y
  | Select (d, c, x, y) ->
    w_u8 b 5;
    w_int b d;
    w_int b c;
    w_int b x;
    w_int b y
  | Load (ty, d, base, off) ->
    w_u8 b 6;
    w_ty b ty;
    w_int b d;
    w_int b base;
    w_svarint b (Int64.of_int off)
  | Store (ty, s, base, off) ->
    w_u8 b 7;
    w_ty b ty;
    w_int b s;
    w_int b base;
    w_svarint b (Int64.of_int off)
  | Alloca (d, n) ->
    w_u8 b 8;
    w_int b d;
    w_int b n
  | Call (d, name, args) ->
    w_u8 b 9;
    w_option b w_int d;
    w_string b name;
    w_list b w_int args
  | Splat (d, x) ->
    w_u8 b 10;
    w_int b d;
    w_int b x
  | Extract (d, x, lane) ->
    w_u8 b 11;
    w_int b d;
    w_int b x;
    w_int b lane
  | Reduce (op, d, x) ->
    w_u8 b 12;
    w_redop b op;
    w_int b d;
    w_int b x
  | Mov (d, x) ->
    w_u8 b 13;
    w_int b d;
    w_int b x
  | Gaddr (d, g) ->
    w_u8 b 14;
    w_int b d;
    w_string b g

let r_instr r : Instr.t =
  match r_u8 r with
  | 0 ->
    let d = r_int r in
    Const (d, r_value r)
  | 1 ->
    let op = r_binop r in
    let d = r_int r in
    let x = r_int r in
    let y = r_int r in
    Binop (op, d, x, y)
  | 2 ->
    let op = r_unop r in
    let d = r_int r in
    Unop (op, d, r_int r)
  | 3 ->
    let c = r_conv r in
    let d = r_int r in
    Conv (c, d, r_int r)
  | 4 ->
    let op = r_relop r in
    let d = r_int r in
    let x = r_int r in
    let y = r_int r in
    Cmp (op, d, x, y)
  | 5 ->
    let d = r_int r in
    let c = r_int r in
    let x = r_int r in
    let y = r_int r in
    Select (d, c, x, y)
  | 6 ->
    let ty = r_ty r in
    let d = r_int r in
    let base = r_int r in
    Load (ty, d, base, Int64.to_int (r_svarint r))
  | 7 ->
    let ty = r_ty r in
    let s = r_int r in
    let base = r_int r in
    Store (ty, s, base, Int64.to_int (r_svarint r))
  | 8 ->
    let d = r_int r in
    Alloca (d, r_int r)
  | 9 ->
    let d = r_option r r_int in
    let name = r_string r in
    Call (d, name, r_list r r_int)
  | 10 ->
    let d = r_int r in
    Splat (d, r_int r)
  | 11 ->
    let d = r_int r in
    let x = r_int r in
    Extract (d, x, r_int r)
  | 12 ->
    let op = r_redop r in
    let d = r_int r in
    Reduce (op, d, r_int r)
  | 13 ->
    let d = r_int r in
    Mov (d, r_int r)
  | 14 ->
    let d = r_int r in
    Gaddr (d, r_string r)
  | t -> corrupt r "bad instruction tag %d" t

let w_term b (t : Instr.term) =
  match t with
  | Br l ->
    w_u8 b 0;
    w_int b l
  | Cbr (c, l1, l2) ->
    w_u8 b 1;
    w_int b c;
    w_int b l1;
    w_int b l2
  | Ret None -> w_u8 b 2
  | Ret (Some x) ->
    w_u8 b 3;
    w_int b x

let r_term r : Instr.term =
  match r_u8 r with
  | 0 -> Br (r_int r)
  | 1 ->
    let c = r_int r in
    let l1 = r_int r in
    let l2 = r_int r in
    Cbr (c, l1, l2)
  | 2 -> Ret None
  | 3 -> Ret (Some (r_int r))
  | t -> corrupt r "bad terminator tag %d" t

(* ---------------- functions & programs ---------------- *)

let w_func b (fn : Func.t) =
  w_string b fn.name;
  w_list b
    (fun b r ->
      w_int b r;
      w_ty b (Func.reg_type fn r))
    fn.params;
  w_option b w_ty fn.ret;
  (* full register type table *)
  let regs = Hashtbl.fold (fun r ty acc -> (r, ty) :: acc) fn.reg_ty [] in
  let regs = List.sort compare regs in
  w_list b
    (fun b (r, ty) ->
      w_int b r;
      w_ty b ty)
    regs;
  w_int b fn.next_reg;
  w_int b fn.next_label;
  w_annots b fn.annots;
  w_list b
    (fun b (header, a) ->
      w_int b header;
      w_annots b a)
    fn.loop_annots;
  w_list b
    (fun b (blk : Func.block) ->
      w_int b blk.label;
      w_list b w_instr blk.instrs;
      w_term b blk.term)
    fn.blocks

let r_func r : Func.t =
  let name = r_string r in
  let params =
    r_list r (fun r ->
        let reg = r_int r in
        let ty = r_ty r in
        (reg, ty))
  in
  let ret = r_option r r_ty in
  let reg_list =
    r_list r (fun r ->
        let reg = r_int r in
        let ty = r_ty r in
        (reg, ty))
  in
  let next_reg = r_int r in
  let next_label = r_int r in
  (* [next_reg] sizes the interpreter's register file for every frame of
     this function, so it is allocation-critical: bound it, and require
     every declared register to sit below it (the builder's invariant) so
     a decoded program can never index outside the frame. *)
  if next_reg < 0 || next_reg > r.lim.max_regs then
    corrupt r "bad register count %d" next_reg;
  if next_label < 0 then corrupt r "bad label counter %d" next_label;
  List.iter
    (fun (reg, _) ->
      if reg < 0 || reg >= next_reg then
        corrupt r "parameter register r%d outside register file" reg)
    params;
  List.iter
    (fun (reg, _) ->
      if reg < 0 || reg >= next_reg then
        corrupt r "declared register r%d outside register file" reg)
    reg_list;
  let annots = r_annots r in
  let loop_annots =
    r_list r (fun r ->
        let h = r_int r in
        let a = r_annots r in
        (h, a))
  in
  let blocks =
    r_list r (fun r ->
        let label = r_int r in
        let instrs = r_list r r_instr in
        let term = r_term r in
        { Func.label; instrs; term })
  in
  let reg_ty = Hashtbl.create 32 in
  List.iter (fun (reg, ty) -> Hashtbl.replace reg_ty reg ty) reg_list;
  {
    Func.name;
    params = List.map fst params;
    ret;
    blocks;
    reg_ty;
    next_reg;
    next_label;
    annots;
    loop_annots;
    block_index = None;
  }

let w_extern b (e : Prog.extern) =
  w_string b e.Prog.ename;
  w_list b w_ty e.Prog.eparams;
  w_option b w_ty e.Prog.eret

let r_extern r : Prog.extern =
  let ename = r_string r in
  let eparams = r_list r r_ty in
  let eret = r_option r r_ty in
  { ename; eparams; eret }

let w_global b (g : Prog.global) =
  w_string b g.gname;
  w_u8 b (scalar_tag g.gelem);
  w_int b g.gcount;
  w_option b (fun b a -> w_list b w_value (Array.to_list a)) g.ginit;
  w_annots b g.gannots

let r_global r : Prog.global =
  let gname = r_string r in
  let gelem = scalar_of_tag r (r_u8 r) in
  let gcount = r_int r in
  if gcount < 0 || gcount > r.lim.max_global_elems then
    corrupt r "bad global element count %d" gcount;
  let ginit = r_option r (fun r -> Array.of_list (r_list r r_value)) in
  (* loader invariants, enforced at the trust boundary: the initializer
     covers the array exactly and every element has the declared scalar
     type (a mismatch would silently lay out wrong bytes at load time) *)
  (match ginit with
  | None -> ()
  | Some init ->
    if Array.length init <> gcount then
      corrupt r "initializer has %d elements, global declares %d"
        (Array.length init) gcount;
    Array.iter
      (fun v ->
        if not (Types.equal (Value.ty v) (Types.Scalar gelem)) then
          corrupt r "initializer element type mismatch in @%s" gname)
      init);
  let gannots = r_annots r in
  { gname; gelem; gcount; ginit; gannots }

(** Serialize a program to its binary bytecode form. *)
let encode (p : Prog.t) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  w_u8 b version;
  w_string b p.pname;
  w_annots b p.annots;
  w_list b w_extern p.externs;
  w_list b w_global p.globals;
  w_list b w_func p.funcs;
  Buffer.contents b

(** Parse binary bytecode back into a program.
    @raise Corrupt on malformed input. *)
let decode ?(limits = default_limits) (s : string) : Prog.t =
  let r = { buf = s; pos = 0; lim = limits } in
  if String.length s < 5 || not (String.equal (String.sub s 0 4) magic) then
    corrupt r "bad magic";
  r.pos <- 4;
  (* Belt and braces: the readers above are written so that no exception
     but [Corrupt] can escape on any input; the handler turns anything
     that nevertheless slips through (a future reader bug) into a
     [Corrupt] at the current offset instead of crashing the device. *)
  try
    let v = r_u8 r in
    if v <> version then corrupt r "unsupported version %d" v;
    let pname = r_string r in
    let annots = r_annots r in
    let externs = r_list r r_extern in
    let globals = r_list r r_global in
    let funcs = r_list r r_func in
    if remaining r <> 0 then corrupt r "%d trailing bytes" (remaining r);
    { Prog.pname; globals; funcs; externs; annots }
  with
  | Corrupt _ as e -> raise e
  | Stack_overflow -> corrupt r "decoder recursion limit"
  | Invalid_argument m | Failure m -> corrupt r "decoder invariant: %s" m

(** [decode_result s] is [Ok p] or [Error corruption] — the exceptionless
    face of {!decode} for callers at the trust boundary. *)
let decode_result ?limits (s : string) : (Prog.t, corruption) result =
  match decode ?limits s with
  | p -> Ok p
  | exception Corrupt c -> Error c

(** Encoded size in bytes of a program with its annotations stripped —
    used by the size/compactness experiment (E5). *)
let encode_stripped (p : Prog.t) : string =
  let p' = Prog.copy p in
  p'.annots <- Annot.empty;
  List.iter
    (fun (fn : Func.t) ->
      fn.annots <- Annot.empty;
      fn.loop_annots <- [])
    p'.funcs;
  encode p'

let to_file path p =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode p))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      decode (really_input_string ic n))
