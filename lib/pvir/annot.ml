(** Bytecode annotations — the central mechanism of split compilation.

    An annotation is a key/value pair attached to a program, a function, a
    loop or a register.  The offline compiler distills the results of its
    expensive analyses into annotations; the online compiler *may* use them
    to skip the analysis, and must be free to ignore them (a correct JIT on
    a target that does not understand an annotation simply drops it).  This
    mirrors the paper's design: "annotations and coding conventions in the
    intermediate language coordinate the optimization process over the
    entire lifetime of the program". *)

type value =
  | Bool of bool
  | Int of int
  | Flt of float
  | Str of string
  | List of value list

type t = (string * value) list

let empty : t = []

let add key v (a : t) : t = (key, v) :: List.remove_assoc key a
let remove key (a : t) : t = List.remove_assoc key a
let find key (a : t) = List.assoc_opt key a
let mem key (a : t) = List.mem_assoc key a

let find_int key a =
  match find key a with Some (Int i) -> Some i | _ -> None

let find_bool key a =
  match find key a with Some (Bool b) -> Some b | _ -> None

let find_str key a =
  match find key a with Some (Str s) -> Some s | _ -> None

let find_list key a =
  match find key a with Some (List l) -> Some l | _ -> None

let has_flag key a = match find_bool key a with Some b -> b | None -> false

(* Well-known annotation keys.  Keeping them in one place documents the
   "coding conventions" half of the split-compilation contract. *)

(** Function was auto-vectorized offline; value is the lane width used. *)
let key_vectorized = "pv.vectorized"

(** Loop annotation: the loop is countable with unit stride. *)
let key_unit_stride = "pv.unit_stride"

(** Loop annotation: statically known trip count, when available. *)
let key_trip_count = "pv.trip_count"

(** Loop annotation: memory accesses in the loop body do not alias. *)
let key_no_alias = "pv.no_alias"

let key_vector_factor = "pv.vector_factor"

(** Function annotation: split register-allocation payload.  The value is a
    list of [List [Int reg; Int priority]] pairs: registers the offline
    allocator decided to spill first under pressure, best-first. *)
let key_spill_order = "pv.spill_order"

(** Function annotation: maximum register pressure measured offline. *)
let key_pressure = "pv.pressure"

(** Function annotation: estimated hotness in [0;1] from offline profiling. *)
let key_hotness = "pv.hotness"

(** Function annotation: hardware capabilities this code benefits from
    (list of capability name strings, e.g. "simd128", "dsp_mac", "fpu"). *)
let key_hw_prefs = "pv.hw_prefs"

(** Function annotation: pure function (no memory writes, no calls). *)
let key_pure = "pv.pure"

(** Function annotation: profitable inlining candidate. *)
let key_inline = "pv.inline"

let rec value_to_string = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Flt f -> Printf.sprintf "%h" f
  | Str s -> Printf.sprintf "%S" s
  | List l -> "[" ^ String.concat " " (List.map value_to_string l) ^ "]"

let to_string (a : t) =
  String.concat ", "
    (List.map (fun (k, v) -> k ^ "=" ^ value_to_string v) a)

let pp ppf a = Format.pp_print_string ppf (to_string a)

let rec equal_value a b =
  match (a, b) with
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Flt x, Flt y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Str x, Str y -> String.equal x y
  | List x, List y ->
    List.length x = List.length y && List.for_all2 equal_value x y
  | (Bool _ | Int _ | Flt _ | Str _ | List _), _ -> false

(** Order-insensitive equality on annotation sets. *)
let equal (a : t) (b : t) =
  let cmp (k1, _) (k2, _) = String.compare k1 k2 in
  let a = List.sort cmp a and b = List.sort cmp b in
  List.length a = List.length b
  && List.for_all2
       (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal_value v1 v2)
       a b

(** Total serialized size in bytes (used by the compactness experiment). *)
let rec value_size = function
  | Bool _ -> 2
  | Int _ -> 5
  | Flt _ -> 9
  | Str s -> 5 + String.length s
  | List l -> List.fold_left (fun acc v -> acc + value_size v) 5 l

let size (a : t) =
  List.fold_left (fun acc (k, v) -> acc + 4 + String.length k + value_size v) 0 a
