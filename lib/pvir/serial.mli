(** Binary serialization of PVIR programs — the bytecode distribution
    format.

    Compact varint-based encoding; annotations are stored as a skippable
    section so readers that do not understand a key can ignore it.
    [decode (encode p)] reproduces [p] exactly (checked by round-trip
    property tests).

    The decoder treats its input as *untrusted*: every malformed stream —
    random bytes, truncation, bit flips, adversarial length fields,
    deeply-nested annotations — is rejected with {!Corrupt} carrying the
    byte offset where decoding stopped.  No other exception escapes, no
    allocation is driven by a length field beyond the size of the input,
    and recursion depth is bounded (checked by the fuzz suite in
    [test_fuzz_serial]). *)

(** Why a stream was rejected: byte offset + reason. *)
type corruption = { offset : int; reason : string }

(** Raised by {!decode} / {!of_file} on malformed input. *)
exception Corrupt of corruption

val corruption_to_string : corruption -> string

(** Decode-time resource bounds (see {!default_limits}). *)
type limits = {
  max_vec_lanes : int;  (** lanes in a vector type or value *)
  max_regs : int;  (** virtual registers per function *)
  max_global_elems : int;  (** elements per global array *)
  max_annot_depth : int;  (** nesting of list-valued annotations *)
}

val default_limits : limits

(** File magic ("PVIR") and format version. *)
val magic : string

val version : int

(** {2 Codec primitives}

    The varint reader/writer core is exposed so sibling codecs (the
    snapshot format in {!Ckpt}) share one hardened implementation — same
    bounds discipline, same {!Corrupt} contract — instead of growing a
    second, subtly different decoder. *)

type writer = Buffer.t

val w_u8 : writer -> int -> unit
val w_varint : writer -> int64 -> unit
val w_int : writer -> int -> unit
val w_svarint : writer -> int64 -> unit
val w_string : writer -> string -> unit
val w_f64 : writer -> float -> unit
val w_bool : writer -> bool -> unit
val w_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val w_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val w_value : writer -> Value.t -> unit

type reader = { buf : string; mutable pos : int; lim : limits }

(** Raise {!Corrupt} at the reader's current offset. *)
val corrupt : reader -> ('a, unit, string, 'b) format4 -> 'a

val remaining : reader -> int
val r_u8 : reader -> int
val r_varint : reader -> int64
val r_int : reader -> int
val r_svarint : reader -> int64
val r_string : reader -> string
val r_f64 : reader -> float
val r_bool : reader -> bool
val r_option : reader -> (reader -> 'a) -> 'a option

(** Check a claimed element count against the bytes remaining, {i before}
    any allocation it would drive. *)
val r_count : reader -> int -> unit

val r_list : reader -> (reader -> 'a) -> 'a list
val r_value : reader -> Value.t

(** Serialize a program to its binary bytecode form. *)
val encode : Prog.t -> string

(** Parse binary bytecode back into a program.
    @raise Corrupt on malformed input. *)
val decode : ?limits:limits -> string -> Prog.t

(** Exceptionless {!decode} for callers at the trust boundary. *)
val decode_result : ?limits:limits -> string -> (Prog.t, corruption) result

(** Encode with every annotation stripped — the size baseline of the
    compactness experiment (E5). *)
val encode_stripped : Prog.t -> string

val to_file : string -> Prog.t -> unit
val of_file : string -> Prog.t
