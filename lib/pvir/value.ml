(** Runtime and compile-time constant values.

    Integers are stored as [int64] normalized to the bit width of their
    scalar type (sign-extended from the low bits, so an [I8] value is always
    in [-128, 127] as an [int64]); unsigned interpretations mask back to the
    width.  This single representation is shared by the constant folder, the
    interpreter and the machine simulator, which guarantees that "optimized"
    and "executed" arithmetic agree bit-for-bit. *)

type t =
  | Int of Types.scalar * int64
  | Float of Types.scalar * float
  | Vec of t array

(** Bit width of an integer scalar. *)
let bits = function
  | Types.I8 -> 8
  | Types.I16 -> 16
  | Types.I32 -> 32
  | Types.I64 -> 64
  | Types.F32 | Types.F64 -> invalid_arg "Value.bits: float scalar"

(** Sign-extend the low [bits s] bits of [x]. *)
let normalize s x =
  match s with
  | Types.I64 -> x
  | Types.I8 | Types.I16 | Types.I32 ->
    let b = bits s in
    let shift = 64 - b in
    Int64.shift_right (Int64.shift_left x shift) shift
  | Types.F32 | Types.F64 -> invalid_arg "Value.normalize: float scalar"

(** Zero-extended (unsigned) view of the low bits of a normalized value. *)
let unsigned s x =
  match s with
  | Types.I64 -> x
  | Types.I8 | Types.I16 | Types.I32 ->
    let b = bits s in
    Int64.logand x (Int64.sub (Int64.shift_left 1L b) 1L)
  | Types.F32 | Types.F64 -> invalid_arg "Value.unsigned: float scalar"

(** Round a float to F32 precision when the scalar type demands it. *)
let normalize_float s (x : float) =
  match s with
  | Types.F32 -> Int32.float_of_bits (Int32.bits_of_float x)
  | Types.F64 -> x
  | _ -> invalid_arg "Value.normalize_float: integer scalar"

let int s x =
  if Types.is_float_scalar s then invalid_arg "Value.int: float scalar";
  Int (s, normalize s x)

let float s x =
  if not (Types.is_float_scalar s) then invalid_arg "Value.float: int scalar";
  Float (s, normalize_float s x)

let of_int s (x : int) = int s (Int64.of_int x)

let i8 x = of_int Types.I8 x
let i16 x = of_int Types.I16 x
let i32 x = of_int Types.I32 x
let i64 x = int Types.I64 x
let f32 x = float Types.F32 x
let f64 x = float Types.F64 x

let vec elems =
  if Array.length elems < 2 then invalid_arg "Value.vec: fewer than 2 lanes";
  Vec elems

(** Replicate a scalar value into an [n]-lane vector. *)
let splat n v = Vec (Array.make n v)

let rec ty = function
  | Int (s, _) -> Types.Scalar s
  | Float (s, _) -> Types.Scalar s
  | Vec elems ->
    let s = Types.elem (ty elems.(0)) in
    Types.Vector (s, Array.length elems)

(** Zero value of a given type. *)
let rec zero (t : Types.t) =
  match t with
  | Types.Scalar s | Types.Ptr s ->
    if Types.is_float_scalar s then Float (s, 0.0) else Int (s, 0L)
  | Types.Vector (s, n) -> Vec (Array.init n (fun _ -> zero (Types.Scalar s)))

let to_int64 = function
  | Int (_, x) -> x
  | Float _ | Vec _ -> invalid_arg "Value.to_int64: not an integer"

let to_float = function
  | Float (_, x) -> x
  | Int _ | Vec _ -> invalid_arg "Value.to_float: not a float"

let to_bool = function
  | Int (_, x) -> x <> 0L
  | Float (_, x) -> x <> 0.0
  | Vec _ -> invalid_arg "Value.to_bool: vector"

let lanes = function
  | Vec elems -> Array.to_list elems
  | (Int _ | Float _) as v -> [ v ]

let rec equal a b =
  match (a, b) with
  | Int (sa, xa), Int (sb, xb) -> sa = sb && Int64.equal xa xb
  | Float (sa, xa), Float (sb, xb) ->
    sa = sb
    && Int64.equal (Int64.bits_of_float xa) (Int64.bits_of_float xb)
  | Vec ea, Vec eb ->
    Array.length ea = Array.length eb
    && (let ok = ref true in
        Array.iteri (fun i x -> if not (equal x eb.(i)) then ok := false) ea;
        !ok)
  | (Int _ | Float _ | Vec _), _ -> false

let rec to_string = function
  | Int (s, x) -> Printf.sprintf "%Ld:%s" x (Types.scalar_name s)
  | Float (s, x) -> Printf.sprintf "%h:%s" x (Types.scalar_name s)
  | Vec elems ->
    "<"
    ^ String.concat ", " (Array.to_list (Array.map to_string elems))
    ^ ">"

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Byte-level encoding, shared by the VM memory and the serializer.    *)

(** [write_bytes buf off v] stores [v] at byte offset [off] (little endian).
    Vectors are stored lane after lane. *)
let rec write_bytes (buf : Bytes.t) off v =
  match v with
  | Int (s, x) -> (
    (* direct little-endian stores; each masked store writes the same
       bytes as looping over the [unsigned s x] view one byte at a time *)
    match s with
    | Types.I8 -> Bytes.set_uint8 buf off (Int64.to_int x land 0xFF)
    | Types.I16 -> Bytes.set_uint16_le buf off (Int64.to_int x land 0xFFFF)
    | Types.I32 -> Bytes.set_int32_le buf off (Int64.to_int32 x)
    | Types.I64 -> Bytes.set_int64_le buf off x
    | Types.F32 | Types.F64 -> ignore (unsigned s x : int64))
  | Float (Types.F32, x) ->
    Bytes.set_int32_le buf off (Int32.bits_of_float x)
  | Float (_, x) -> Bytes.set_int64_le buf off (Int64.bits_of_float x)
  | Vec elems ->
    let esz = Types.scalar_size (Types.elem (ty v)) in
    Array.iteri (fun i e -> write_bytes buf (off + (i * esz)) e) elems

(** [read_bytes buf off t] loads a value of type [t] from byte offset [off].
    Pointer-typed loads produce an [I64] address value. *)
let rec read_bytes (buf : Bytes.t) off (t : Types.t) =
  match t with
  | Types.Ptr _ -> read_bytes buf off Types.i64
  (* the signed little-endian getters sign-extend exactly like
     [normalize] applied to the byte-accumulated unsigned view *)
  | Types.Scalar Types.I8 -> Int (Types.I8, Int64.of_int (Bytes.get_int8 buf off))
  | Types.Scalar Types.I16 ->
    Int (Types.I16, Int64.of_int (Bytes.get_int16_le buf off))
  | Types.Scalar Types.I32 ->
    Int (Types.I32, Int64.of_int32 (Bytes.get_int32_le buf off))
  | Types.Scalar Types.I64 -> Int (Types.I64, Bytes.get_int64_le buf off)
  | Types.Scalar Types.F32 ->
    Float (Types.F32, Int32.float_of_bits (Bytes.get_int32_le buf off))
  | Types.Scalar Types.F64 ->
    Float (Types.F64, Int64.float_of_bits (Bytes.get_int64_le buf off))
  | Types.Vector (s, n) -> (
    (* lane-type match hoisted out of the per-lane loop *)
    match s with
    | Types.I8 ->
      Vec
        (Array.init n (fun i ->
             Int (Types.I8, Int64.of_int (Bytes.get_int8 buf (off + i)))))
    | Types.I16 ->
      Vec
        (Array.init n (fun i ->
             Int
               (Types.I16, Int64.of_int (Bytes.get_int16_le buf (off + (i * 2))))))
    | Types.I32 ->
      Vec
        (Array.init n (fun i ->
             Int
               ( Types.I32,
                 Int64.of_int32 (Bytes.get_int32_le buf (off + (i * 4))) )))
    | Types.I64 ->
      Vec
        (Array.init n (fun i ->
             Int (Types.I64, Bytes.get_int64_le buf (off + (i * 8)))))
    | Types.F32 ->
      Vec
        (Array.init n (fun i ->
             Float
               ( Types.F32,
                 Int32.float_of_bits (Bytes.get_int32_le buf (off + (i * 4))) )))
    | Types.F64 ->
      Vec
        (Array.init n (fun i ->
             Float
               ( Types.F64,
                 Int64.float_of_bits (Bytes.get_int64_le buf (off + (i * 8))) ))))
