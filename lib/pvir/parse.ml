(** Parser for the textual PVIR syntax emitted by {!Pp}.

    The textual form exists for tests, debugging and human inspection; the
    distribution format is the binary encoding in {!Serial}.  The grammar is
    exactly what {!Pp} prints, so [Parse.program (Pp.program_to_string p)]
    round-trips. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ---------------- lexer ---------------- *)

type token =
  | Word of string  (** identifiers, keywords, opcode names *)
  | Num of string  (** raw number spelling, int or hex float *)
  | Str of string
  | Punct of char

let is_word_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_word_char c =
  is_word_start c || (c >= '0' && c <= '9') || c = '.' || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize (src : string) : token list =
  let n = String.length src in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  (* Numbers: decimal ints, hex floats as printed by %h
     (e.g. 0x1.8p+3), inf / nan handled as words then reinterpreted. *)
  let lex_number () =
    let start = !i in
    if src.[!i] = '-' then incr i;
    let hex = peek 0 = Some '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
    if hex then i := !i + 2;
    let exp_char = if hex then ('p', 'P') else ('e', 'E') in
    let continue_ = ref true in
    while !continue_ && !i < n do
      let c = src.[!i] in
      let is_digit_here =
        is_digit c || (hex && ((c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')))
      in
      if is_digit_here || c = '.' then incr i
      else if c = fst exp_char || c = snd exp_char then (
        incr i;
        match peek 0 with
        | Some ('+' | '-') -> incr i
        | _ -> ())
      else continue_ := false
    done;
    push (Num (String.sub src start (!i - start)))
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    else if is_digit c then lex_number ()
    else if c = '-' && (match peek 1 with Some d -> is_digit d | None -> false)
    then lex_number ()
    else if is_word_start c then (
      let start = !i in
      while !i < n && is_word_char src.[!i] do
        incr i
      done;
      let w = String.sub src start (!i - start) in
      (* inf / nan are float spellings *)
      if w = "inf" || w = "nan" then push (Num w) else push (Word w))
    else if c = '"' then (
      (* OCaml %S escapes: decode with Scanf *)
      let start = !i in
      incr i;
      let continue_ = ref true in
      while !continue_ && !i < n do
        if src.[!i] = '\\' then i := !i + 2
        else if src.[!i] = '"' then (
          incr i;
          continue_ := false)
        else incr i
      done;
      let lit = String.sub src start (!i - start) in
      let s = Scanf.sscanf lit "%S" (fun s -> s) in
      push (Str s))
    else (
      push (Punct c);
      incr i)
  done;
  List.rev !toks

(* ---------------- token stream ---------------- *)

type stream = { mutable toks : token list }

let tok_to_string = function
  | Word w -> w
  | Num s -> s
  | Str s -> Printf.sprintf "%S" s
  | Punct c -> String.make 1 c

let peek st = match st.toks with [] -> None | t :: _ -> Some t
let advance st = match st.toks with [] -> () | _ :: tl -> st.toks <- tl

let next st =
  match st.toks with
  | [] -> fail "unexpected end of input"
  | t :: tl ->
    st.toks <- tl;
    t

let expect_punct st c =
  match next st with
  | Punct c' when c = c' -> ()
  | t -> fail "expected '%c', got %s" c (tok_to_string t)

let expect_word st w =
  match next st with
  | Word w' when String.equal w w' -> ()
  | t -> fail "expected '%s', got %s" w (tok_to_string t)

let accept_punct st c =
  match peek st with
  | Some (Punct c') when c = c' ->
    advance st;
    true
  | _ -> false

let accept_word st w =
  match peek st with
  | Some (Word w') when String.equal w w' ->
    advance st;
    true
  | _ -> false

let word st =
  match next st with
  | Word w -> w
  | t -> fail "expected identifier, got %s" (tok_to_string t)

let int_lit st =
  match next st with
  | Num s -> (
    match Int64.of_string_opt s with
    | Some v -> Int64.to_int v
    | None -> fail "expected integer, got %s" s)
  | t -> fail "expected integer, got %s" (tok_to_string t)

let num_raw st =
  match next st with
  | Num s -> s
  | t -> fail "expected number, got %s" (tok_to_string t)

let reg st =
  let w = word st in
  if String.length w < 2 || w.[0] <> 'r' then fail "expected register, got %s" w;
  match int_of_string_opt (String.sub w 1 (String.length w - 1)) with
  | Some r -> r
  | None -> fail "expected register, got %s" w

(* ---------------- types & values ---------------- *)

let scalar_of_word w =
  match Types.scalar_of_name w with
  | Some s -> s
  | None -> fail "expected scalar type, got %s" w

let parse_ty st =
  if accept_punct st '<' then (
    let lanes = int_lit st in
    expect_word st "x";
    let s = scalar_of_word (word st) in
    expect_punct st '>';
    Types.Vector (s, lanes))
  else
    let s = scalar_of_word (word st) in
    if accept_punct st '*' then Types.Ptr s else Types.Scalar s

let scalar_value_of st raw =
  expect_punct st ':';
  let s = scalar_of_word (word st) in
  if Types.is_float_scalar s then Value.float s (float_of_string raw)
  else
    match Int64.of_string_opt raw with
    | Some v -> Value.int s v
    | None -> fail "bad integer literal %s" raw

let rec parse_value st =
  if accept_punct st '<' then (
    let first = parse_value st in
    let elems = ref [ first ] in
    while accept_punct st ',' do
      elems := parse_value st :: !elems
    done;
    expect_punct st '>';
    Value.Vec (Array.of_list (List.rev !elems)))
  else
    let raw = num_raw st in
    scalar_value_of st raw

(* ---------------- annotations ---------------- *)

let rec parse_annot_value st =
  match peek st with
  | Some (Word "true") ->
    advance st;
    Annot.Bool true
  | Some (Word "false") ->
    advance st;
    Annot.Bool false
  | Some (Str s) ->
    advance st;
    Annot.Str s
  | Some (Punct '[') ->
    advance st;
    let elems = ref [] in
    let rec go () =
      match peek st with
      | Some (Punct ']') -> advance st
      | Some _ ->
        elems := parse_annot_value st :: !elems;
        go ()
      | None -> fail "unterminated annotation list"
    in
    go ();
    Annot.List (List.rev !elems)
  | Some (Num raw) ->
    advance st;
    (match Int64.of_string_opt raw with
    | Some v -> Annot.Int (Int64.to_int v)
    | None -> Annot.Flt (float_of_string raw))
  | t ->
    fail "expected annotation value, got %s"
      (match t with Some t -> tok_to_string t | None -> "<eof>")

(* one `!key = value` line, starting after the '!' *)
let parse_annot_binding st =
  let k = word st in
  expect_punct st '=';
  let v = parse_annot_value st in
  (k, v)

(* `k=v, k=v` inside loop braces *)
let parse_annot_set st =
  let a = ref Annot.empty in
  let rec go () =
    match peek st with
    | Some (Word _) ->
      let k = word st in
      expect_punct st '=';
      let v = parse_annot_value st in
      a := Annot.add k v !a;
      if accept_punct st ',' then go ()
    | _ -> ()
  in
  go ();
  !a

(* ---------------- instructions ---------------- *)

let parse_call_args st =
  expect_punct st '(';
  let args = ref [] in
  (if not (accept_punct st ')') then
     let rec go () =
       args := reg st :: !args;
       if accept_punct st ',' then go () else expect_punct st ')'
     in
     go ());
  List.rev !args

let binop_of_name w = List.find_opt (fun op -> Instr.binop_name op = w) Instr.all_binops
let redop_of_name w = List.find_opt (fun op -> Instr.redop_name op = w) Instr.all_redops

let conv_of_name w =
  List.find_opt
    (fun c -> Instr.conv_name c = w)
    Instr.[ Zext; Sext; Trunc; Sitofp; Uitofp; Fptosi; Fptoui; Fpconv ]

(* an instruction or terminator; distinguished by first word *)
type parsed_line =
  | Pinstr of Instr.t
  | Pterm of Instr.term
  | Pblock of int  (** `block N:` header *)
  | Pclose  (** '}' *)

let parse_rhs st d =
  (* after `rD = ` *)
  let w = word st in
  match w with
  | "const" -> Instr.Const (d, parse_value st)
  | "mov" -> Instr.Mov (d, reg st)
  | "gaddr" ->
    expect_punct st '@';
    Instr.Gaddr (d, word st)
  | "cmp" ->
    let opw = word st in
    let op =
      match List.find_opt (fun o -> Instr.relop_name o = opw) Instr.all_relops with
      | Some op -> op
      | None -> fail "unknown comparison %s" opw
    in
    let a = reg st in
    expect_punct st ',';
    Instr.Cmp (op, d, a, reg st)
  | "select" ->
    let c = reg st in
    expect_punct st ',';
    let a = reg st in
    expect_punct st ',';
    Instr.Select (d, c, a, reg st)
  | "load" ->
    let ty = parse_ty st in
    let base = reg st in
    expect_punct st '+';
    Instr.Load (ty, d, base, int_lit st)
  | "alloca" -> Instr.Alloca (d, int_lit st)
  | "call" ->
    expect_punct st '@';
    let name = word st in
    Instr.Call (Some d, name, parse_call_args st)
  | "splat" -> Instr.Splat (d, reg st)
  | "extract" ->
    let a = reg st in
    expect_punct st ',';
    Instr.Extract (d, a, int_lit st)
  | "neg" -> Instr.Unop (Instr.Neg, d, reg st)
  | "not" -> Instr.Unop (Instr.Not, d, reg st)
  | _ -> (
    match binop_of_name w with
    | Some op ->
      let a = reg st in
      expect_punct st ',';
      Instr.Binop (op, d, a, reg st)
    | None -> (
      match conv_of_name w with
      | Some c -> Instr.Conv (c, d, reg st)
      | None -> (
        match redop_of_name w with
        | Some op -> Instr.Reduce (op, d, reg st)
        | None -> fail "unknown instruction %s" w)))

let parse_line st : parsed_line =
  match peek st with
  | Some (Punct '}') ->
    advance st;
    Pclose
  | Some (Word "block") ->
    advance st;
    let label = int_lit st in
    expect_punct st ':';
    Pblock label
  | Some (Word "store") ->
    advance st;
    let ty = parse_ty st in
    let s = reg st in
    expect_punct st ',';
    let base = reg st in
    expect_punct st '+';
    Pinstr (Instr.Store (ty, s, base, int_lit st))
  | Some (Word "call") ->
    advance st;
    expect_punct st '@';
    let name = word st in
    Pinstr (Instr.Call (None, name, parse_call_args st))
  | Some (Word "br") ->
    advance st;
    Pterm (Instr.Br (int_lit st))
  | Some (Word "cbr") ->
    advance st;
    let c = reg st in
    expect_punct st ',';
    let l1 = int_lit st in
    expect_punct st ',';
    Pterm (Instr.Cbr (c, l1, int_lit st))
  | Some (Word "ret") -> (
    advance st;
    match peek st with
    | Some (Word w) when String.length w > 1 && w.[0] = 'r' && is_digit w.[1]
      ->
      Pterm (Instr.Ret (Some (reg st)))
    | _ -> Pterm (Instr.Ret None))
  | Some (Word _) ->
    let d = reg st in
    expect_punct st '=';
    Pinstr (parse_rhs st d)
  | t ->
    fail "unexpected token %s in function body"
      (match t with Some t -> tok_to_string t | None -> "<eof>")

(* ---------------- functions & programs ---------------- *)

let parse_func st : Func.t =
  expect_punct st '@';
  let name = word st in
  expect_punct st '(';
  let params = ref [] in
  (if not (accept_punct st ')') then
     let rec go () =
       let r = reg st in
       expect_punct st ':';
       let ty = parse_ty st in
       params := (r, ty) :: !params;
       if accept_punct st ',' then go () else expect_punct st ')'
     in
     go ());
  let params = List.rev !params in
  let ret = if accept_punct st ':' then Some (parse_ty st) else None in
  expect_punct st '{';
  let reg_ty = Hashtbl.create 32 in
  List.iter (fun (r, ty) -> Hashtbl.replace reg_ty r ty) params;
  (* register declarations *)
  let rec parse_decls () =
    if accept_word st "reg" then (
      let r = reg st in
      expect_punct st ':';
      Hashtbl.replace reg_ty r (parse_ty st);
      parse_decls ())
  in
  parse_decls ();
  (* function annotations *)
  let annots = ref Annot.empty in
  while accept_punct st '!' do
    let k, v = parse_annot_binding st in
    annots := Annot.add k v !annots
  done;
  (* loop annotations *)
  let loop_annots = ref [] in
  while accept_word st "loop" do
    let header = int_lit st in
    expect_punct st '{';
    let a = parse_annot_set st in
    expect_punct st '}';
    loop_annots := (header, a) :: !loop_annots
  done;
  (* blocks *)
  let blocks = ref [] in
  let cur : Func.block option ref = ref None in
  let flush () =
    match !cur with
    | Some b ->
      b.Func.instrs <- List.rev b.Func.instrs;
      blocks := b :: !blocks;
      cur := None
    | None -> ()
  in
  let rec go () =
    match parse_line st with
    | Pclose -> flush ()
    | Pblock label ->
      flush ();
      cur := Some { Func.label; instrs = []; term = Instr.Ret None };
      go ()
    | Pinstr i ->
      (match !cur with
      | Some b -> b.Func.instrs <- i :: b.Func.instrs
      | None -> fail "instruction outside block in %s" name);
      go ()
    | Pterm t ->
      (match !cur with
      | Some b -> b.Func.term <- t
      | None -> fail "terminator outside block in %s" name);
      go ()
  in
  go ();
  let blocks = List.rev !blocks in
  let max_reg = Hashtbl.fold (fun r _ acc -> max acc (r + 1)) reg_ty 0 in
  let max_label =
    List.fold_left (fun acc (b : Func.block) -> max acc (b.label + 1)) 0 blocks
  in
  {
    Func.name;
    params = List.map fst params;
    ret;
    blocks;
    reg_ty;
    next_reg = max_reg;
    next_label = max_label;
    annots = !annots;
    loop_annots = List.rev !loop_annots;
    block_index = None;
  }

let parse_global st : Prog.global =
  expect_punct st '@';
  let gname = word st in
  expect_punct st ':';
  let gelem = scalar_of_word (word st) in
  expect_word st "x";
  let gcount = int_lit st in
  let ginit =
    if accept_punct st '=' then (
      expect_punct st '{';
      let elems = ref [] in
      (if not (accept_punct st '}') then
         let rec go () =
           elems := parse_value st :: !elems;
           if accept_punct st ',' then go () else expect_punct st '}'
         in
         go ());
      Some (Array.of_list (List.rev !elems)))
    else None
  in
  { gname; gelem; gcount; ginit; gannots = Annot.empty }

(** Parse a textual PVIR program.
    @raise Error on syntax errors. *)
let program (src : string) : Prog.t =
  let st = { toks = tokenize src } in
  expect_word st "program";
  let pname = match next st with Str s -> s | t -> fail "expected program name, got %s" (tok_to_string t) in
  let annots = ref Annot.empty in
  while accept_punct st '!' do
    let k, v = parse_annot_binding st in
    annots := Annot.add k v !annots
  done;
  let globals = ref [] in
  let funcs = ref [] in
  let externs = ref [] in
  let parse_extern () =
    expect_punct st '@';
    let ename = word st in
    expect_punct st '(';
    let eparams = ref [] in
    (if not (accept_punct st ')') then
       let rec go_p () =
         eparams := parse_ty st :: !eparams;
         if accept_punct st ',' then go_p () else expect_punct st ')'
       in
       go_p ());
    let eret = if accept_punct st ':' then Some (parse_ty st) else None in
    { Prog.ename; eparams = List.rev !eparams; eret }
  in
  let rec go () =
    match peek st with
    | None -> ()
    | Some (Word "extern") ->
      advance st;
      externs := parse_extern () :: !externs;
      go ()
    | Some (Word "global") ->
      advance st;
      globals := parse_global st :: !globals;
      go ()
    | Some (Word "func") ->
      advance st;
      funcs := parse_func st :: !funcs;
      go ()
    | Some t -> fail "expected 'global' or 'func', got %s" (tok_to_string t)
  in
  go ();
  {
    Prog.pname;
    globals = List.rev !globals;
    funcs = List.rev !funcs;
    externs = List.rev !externs;
    annots = !annots;
  }

(** Parse a single function given the surrounding program context (for
    tests). *)
let func (src : string) : Func.t =
  let st = { toks = tokenize src } in
  expect_word st "func";
  parse_func st
