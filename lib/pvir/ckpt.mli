(** Binary snapshot format for checkpointed executions.

    Target-neutral state of a running PVIR activation captured at a
    safepoint: memory image, stack pointer, counters, fuel, pending
    output, and the virtual-register call stack.  The same bytes restore
    into any host engine (tree-walking, threaded, AOT); the encoding is
    canonical, so engines checkpointing the same abstract state produce
    byte-identical snapshots.

    Decoding treats input as untrusted and shares {!Serial}'s hardening
    contract: every malformed stream raises {!Serial.Corrupt}, nothing
    else, and no claimed length drives an allocation beyond the size of
    the input. *)

val magic : string
val version : int

(** One activation record, innermost first.  [ck_ip] is the next
    instruction index in block [ck_block]; for outer frames the
    instruction at [ck_ip - 1] is the pending [Call] and [ck_dst] its
    destination.  [ck_sp] is the stack pointer restored when the frame
    returns. *)
type frame = {
  ck_fn : string;
  ck_block : int;
  ck_ip : int;
  ck_dst : int option;
  ck_regs : (int * Value.t) list;  (** initialized registers, sorted *)
  ck_sp : int;
}

type t = {
  ck_prog : string;  (** MD5 hex digest of [Serial.encode prog] *)
  ck_mem : string;  (** full guest memory image *)
  ck_gsp : int;  (** stack pointer at capture *)
  ck_cycles : int64;
  ck_instrs : int64;
  ck_calls : int;
  ck_fuel : int64;  (** fuel remaining at capture *)
  ck_output : string;  (** host output emitted so far *)
  ck_frames : frame list;  (** call stack, innermost first *)
}

val encode : t -> string

(** @raise Serial.Corrupt on malformed input. *)
val decode : ?limits:Serial.limits -> string -> t

val decode_result :
  ?limits:Serial.limits -> string -> (t, Serial.corruption) result

(** Digest a program the way snapshots name one. *)
val prog_digest : Prog.t -> string

val to_file : string -> t -> unit
val of_file : string -> t
