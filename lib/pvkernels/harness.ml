(** Execution harness shared by the test suite and the benchmark drivers:
    deterministic input data, end-to-end compilation in every mode, and
    observable-state comparison (return value + all global memory +
    printed output) between JIT-compiled code and the reference
    interpreter. *)

open Pvir

(* deterministic LCG so every run sees identical inputs *)
let lcg seed =
  let state = ref (Int64.of_int (0x9E3779B9 land 0xFFFFFF lor (seed + 1))) in
  fun () ->
    state := Int64.add (Int64.mul !state 6364136223846793005L) 1442695040888963407L;
    Int64.to_int (Int64.logand (Int64.shift_right_logical !state 33) 0x7FFFFFFFL)

(** Fill every global of the image with deterministic pseudo-random data.
    Floats get small integer values so that reassociated (vectorized)
    float reductions stay bit-exact. *)
let fill_inputs (img : Pvvm.Image.t) : unit =
  List.iteri
    (fun gi (g : Prog.global) ->
      let next = lcg (gi * 7919) in
      let mk _ =
        match g.gelem with
        | Types.F32 -> Value.f32 (float_of_int ((next () mod 17) - 8))
        | Types.F64 -> Value.f64 (float_of_int ((next () mod 23) - 11))
        | s -> Value.int s (Int64.of_int (next ()))
      in
      Pvvm.Image.write_global img g.gname (Array.init g.gcount mk))
    img.Pvvm.Image.prog.Prog.globals

(** Default argument list for a kernel at element count [n]. *)
let args (k : Kernels.t) (n : int) : Value.t list =
  let n64 = Value.i64 (Int64.of_int n) in
  match k.Kernels.name with
  | "saxpy_fp" -> [ n64; Value.f32 3.0 ]
  | "dscal_fp" -> [ n64; Value.f64 1.5 ]
  | "poly8" ->
    n64
    :: List.map (fun c -> Value.i32 c) [ 3; -2; 5; 1; -4; 2; -1; 7 ]
  | "filterbank" ->
    [ n64; Value.i32 3; Value.i32 5; Value.i32 7; Value.i32 11 ]
  | "blur3x3" -> [ Value.i64 66L; Value.i64 66L ]
  | "horner2" ->
    n64
    :: List.map (fun c -> Value.i32 c) [ 2; -3; 4; -5; 6; -7; 8; -9 ]
  | _ -> [ n64 ]

(** Everything observable after a run. *)
type observation = {
  result : Value.t option;
  globals : (string * Value.t array) list;
  printed : string;
}

let observe_globals (img : Pvvm.Image.t) =
  List.map
    (fun (g : Prog.global) -> (g.gname, Pvvm.Image.read_global img g.gname))
    img.Pvvm.Image.prog.Prog.globals

let observation_equal (a : observation) (b : observation) =
  let value_opt_equal x y =
    match (x, y) with
    | None, None -> true
    | Some x, Some y -> Value.equal x y
    | _ -> false
  in
  value_opt_equal a.result b.result
  && String.equal a.printed b.printed
  && List.for_all2
       (fun (n1, a1) (n2, a2) ->
         String.equal n1 n2
         && Array.length a1 = Array.length a2
         && Array.for_all2 Value.equal a1 a2)
       a.globals b.globals

(** Run [k] under the reference interpreter (on unoptimized bytecode).
    Returns the observation and the interpreter cycle count.  [engine]
    picks the host execution engine; observations and cycle counts do not
    depend on it. *)
let run_interp ?(n = Kernels.n_default) ?(engine = Pvvm.Interp.Threaded)
    (k : Kernels.t) : observation * int64 =
  let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
  let img = Pvvm.Image.load p in
  fill_inputs img;
  let it = Pvvm.Interp.create ~engine img in
  let result = Pvvm.Interp.run it k.Kernels.entry (args k n) in
  ( { result; globals = observe_globals img; printed = Pvvm.Interp.output it },
    Pvvm.Interp.cycles it )

type run = {
  obs : observation;
  cycles : int64;
  spill_ops : int64;
  online_work : int;
  offline_work : int;
  bytecode_bytes : int;
  native_instrs : int;
  vectorized : bool;
}

(** Compile [k] in [mode] for [machine] and execute once with [n]
    elements. *)
let run_jit ?(n = Kernels.n_default) ?engine ~mode ~machine (k : Kernels.t) :
    run =
  let p = Core.Splitc.frontend ~name:k.Kernels.name k.Kernels.source in
  let off = Core.Splitc.offline ~mode p in
  let bc = Core.Splitc.distribute off in
  let on = Core.Splitc.online ~mode ~machine ?engine bc in
  fill_inputs on.Core.Splitc.img;
  let result = Pvvm.Sim.run on.Core.Splitc.sim k.Kernels.entry (args k n) in
  let sim = on.Core.Splitc.sim in
  {
    obs =
      {
        result;
        globals = observe_globals on.Core.Splitc.img;
        printed = Pvvm.Sim.output sim;
      };
    cycles = Pvvm.Sim.cycles sim;
    spill_ops = sim.Pvvm.Sim.stats.Pvvm.Sim.spill_ops;
    online_work = Account.total on.Core.Splitc.online_work;
    offline_work = Account.total off.Core.Splitc.offline_work;
    bytecode_bytes = String.length bc;
    native_instrs =
      List.fold_left
        (fun acc (f : Pvjit.Jit.func_report) -> acc + f.Pvjit.Jit.mir_size)
        0 on.Core.Splitc.jit.Pvjit.Jit.funcs;
    vectorized =
      List.exists
        (fun (_, (r : Pvopt.Vectorize.result)) -> r.Pvopt.Vectorize.vectorized <> [])
        off.Core.Splitc.vectorized;
  }

(** The Table-1 measurement for one kernel on one machine: scalar cycles
    (traditional bytecode) vs vectorized cycles (split bytecode), plus the
    relative speedup. *)
type table1_cell = {
  scalar_cycles : int64;
  vector_cycles : int64;
  speedup : float;
}

let table1_cell ?(n = Kernels.n_default) ?engine ~machine (k : Kernels.t) :
    table1_cell =
  let scalar =
    run_jit ~n ?engine ~mode:Core.Splitc.Traditional_deferred ~machine k
  in
  let vector = run_jit ~n ?engine ~mode:Core.Splitc.Split ~machine k in
  if not (observation_equal scalar.obs vector.obs) then
    failwith
      (Printf.sprintf "kernel %s: scalar and vectorized results differ on %s"
         k.Kernels.name machine.Pvmach.Machine.name);
  {
    scalar_cycles = scalar.cycles;
    vector_cycles = vector.cycles;
    speedup = Int64.to_float scalar.cycles /. Int64.to_float vector.cycles;
  }
