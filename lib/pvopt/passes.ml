(** Pass manager: named pipelines corresponding to the compilation modes
    of the Figure-1 experiment.

    - {!cleanup}: the target-independent scalar pipeline every mode runs
      (copy propagation, constant folding, CSE, DCE, CFG simplification,
      idiom recognition, LICM) to a fixpoint.
    - {!offline_split}: the full offline step of split compilation —
      cleanup, inlining, vectorization to portable builtins, register
      allocation annotations, hotness defaults.
    - {!offline_traditional}: what a conventional deferred-compilation
      toolchain ships — cleanup only; target-dependent optimizations are
      dropped rather than annotated (this is the strawman the paper
      argues against).
    - {!online_full}: what a Pure-online JIT must redo by itself; the same
      passes as {!offline_split}, charged to the online accountant.

    Every pass invocation is wrapped in a telemetry span (optional [tr]
    sink, off by default): the span's virtual clock is whatever the
    caller installed — {!Core.Splitc} points it at the accountant, so
    span durations read directly as work units. *)

open Pvir

(* one span per pass invocation on the offline track; [fn] names the
   function under optimization in the span args *)
let sp tr ?fn name f =
  let args = match fn with Some fn -> [ ("func", fn) ] | None -> [] in
  Pvtrace.Trace.with_span tr ~tid:Pvtrace.Trace.track_offline ~args ~cat:"pass"
    name f

let cleanup ?account ?tr (p : Prog.t) : unit =
  List.iter
    (fun (fn : Func.t) ->
      sp tr ~fn:fn.name "cleanup" (fun () ->
          let changed = ref true in
          let rounds = ref 0 in
          while !changed && !rounds < 6 do
            incr rounds;
            let c1 = sp tr ~fn:fn.name "copyprop" (fun () -> Copyprop.run ?account fn) in
            let c2 = sp tr ~fn:fn.name "constfold" (fun () -> Constfold.run ?account fn) in
            let c3 = sp tr ~fn:fn.name "cse" (fun () -> Cse.run ?account fn) in
            let c4 = sp tr ~fn:fn.name "ifconv" (fun () -> Ifconv.run ?account fn) in
            let c5 = sp tr ~fn:fn.name "idiom" (fun () -> Idiom.run ?account fn) in
            let c6 = sp tr ~fn:fn.name "dce" (fun () -> Dce.run ?account fn) in
            let c7 = sp tr ~fn:fn.name "simplify_cfg" (fun () -> Simplify_cfg.run ?account fn) in
            changed := c1 || c2 || c3 || c4 || c5 || c6 || c7
          done))
    p.funcs

let licm_all ?account ?tr (p : Prog.t) : unit =
  List.iter
    (fun (fn : Func.t) ->
      sp tr ~fn:fn.name "licm" (fun () -> ignore (Licm.run ?account fn)))
    p.funcs

(** Offline pipeline of the split-compilation flow: everything expensive
    runs here; the results ship as vector builtins + annotations. *)
let offline_split ?account ?tr (p : Prog.t) : (string * Vectorize.result) list =
  cleanup ?account ?tr p;
  sp tr "inline" (fun () -> ignore (Inline.run ?account p));
  cleanup ?account ?tr p;
  licm_all ?account ?tr p;
  let vect = sp tr "vectorize" (fun () -> Vectorize.run ?account p) in
  List.iter
    (fun (fn : Func.t) ->
      sp tr ~fn:fn.name "strength" (fun () -> ignore (Strength.run ?account fn)))
    p.funcs;
  cleanup ?account ?tr p;
  sp tr "regalloc_annotate" (fun () -> Regalloc_annotate.run ?account p);
  sp tr "verify" (fun () -> Verify.program p);
  vect

(** Traditional deferred compilation: target-independent cleanup only;
    vectorization is dropped because it is "target-dependent" and regalloc
    annotations do not exist. *)
let offline_traditional ?account ?tr (p : Prog.t) : unit =
  cleanup ?account ?tr p;
  sp tr "inline" (fun () -> ignore (Inline.run ?account p));
  cleanup ?account ?tr p;
  licm_all ?account ?tr p;
  List.iter
    (fun (fn : Func.t) ->
      sp tr ~fn:fn.name "strength" (fun () -> ignore (Strength.run ?account fn)))
    p.funcs;
  cleanup ?account ?tr p;
  sp tr "verify" (fun () -> Verify.program p)

(** The work a pure-online JIT has to do by itself on the device, charged
    to the (online) accountant. *)
let online_full ?account ?tr (p : Prog.t) : (string * Vectorize.result) list =
  offline_split ?account ?tr p
