(** Offline auto-vectorizer — the paper's flagship split optimization
    (Table 1, ref [42]).

    The expensive half runs here, offline: canonical-loop recognition,
    induction-variable and stride analysis, dependence tests, reduction
    detection, and the profitability decision.  The result is *portable*:
    loops are rewritten to the vector builtins of PVIR
    (vector-typed loads/stores/arithmetic, [Splat], [Reduce]) at a
    target-independent vector factor, and the function is annotated with
    {!Pvir.Annot.key_vectorized}.  The cheap half runs online: a JIT with
    SIMD hardware emits vector instructions directly, a JIT without simply
    scalarizes the builtins (see [Pvjit.Legalize]) — "with no or little
    penalty", which is experiment E1.

    Loop shape accepted (exactly what the MiniC frontend emits for
    counted [for] loops after copy-prop/const-fold/idiom cleanup):

    {v
    preheader:  ... i = 0 ...
    header:     c = cmp slt i, n        ; n loop-invariant
                cbr c, body, exit
    body:       straight-line code, br step (or br header)
    step:       i = add i, 1, br header
    v}

    Vector factor: [target_vector_bytes / smallest element size] in the
    loop, i.e. 16 lanes for byte kernels, 4 for f32 — matching the SSE
    register width the paper's x86 JIT targets, while remaining a plain
    number in the bytecode that any other JIT may reinterpret. *)

open Pvir

(** Width in bytes of the portable vector register file assumed by the
    offline vectorizer (one SSE-class register). *)
let target_vector_bytes = 16

type reduction = {
  acc : Instr.reg;  (** accumulator register *)
  op : Instr.binop;  (** associative update operation *)
  vacc : Instr.reg;  (** vector accumulator (filled during transform) *)
}

type memop = {
  base : Instr.reg;  (** loop-invariant base register *)
  origin : origin;  (** what the base points to, for dependence tests *)
  offset_reg : Instr.reg option;  (** the [mul i, esz] register, if any *)
  static_off : int;
  dyn_off : Instr.reg list;
      (** loop-invariant dynamic addends inside the index (e.g. the [y*W]
          of a 2D row), sorted — part of the location identity *)
  esz : int;  (** element size implied by the address arithmetic *)
}

and origin = Oglobal of string | Oparam of int | Ounknown

(* ------------------------------------------------------------------ *)

type loop_info = {
  header : int;
  body_blocks : int list;  (** loop blocks except the header, in order *)
  exit : int;
  iv : Instr.reg;
  bound : Instr.reg;  (** n in [i < n] *)
  cmp_reg : Instr.reg;
  preheaders : int list;  (** outside predecessors of the header *)
}

exception Bail of string

let bail fmt = Printf.ksprintf (fun s -> raise (Bail s)) fmt

(* recognize the canonical counted loop; raises Bail otherwise *)
let recognize (fn : Func.t) (cfg : Cfg.t) (lp : Loops.loop) : loop_info =
  let header_blk = Func.find_block fn lp.header in
  let cmp_reg, iv, bound, body_l, exit_l =
    match (header_blk.instrs, header_blk.term) with
    | [ Instr.Cmp (Instr.Slt, c, i, n) ], Instr.Cbr (c', bt, bf) when c = c'
      -> (c, i, n, bt, bf)
    | _ -> bail "header is not a simple `i < n` guard"
  in
  if Loops.in_loop lp exit_l then bail "unexpected exit structure";
  if not (Loops.in_loop lp body_l) then bail "body is outside the loop";
  (* loop body: walk from body_l back to header, straight line *)
  let rec walk l acc =
    if l = lp.header then List.rev acc
    else
      let b = Func.find_block fn l in
      match b.term with
      | Instr.Br next ->
        if List.mem l acc then bail "cyclic body" else walk next (l :: acc)
      | _ -> bail "control flow inside loop body"
  in
  let body_blocks = walk body_l [] in
  if List.sort compare (lp.header :: body_blocks) <> List.sort compare lp.blocks
  then bail "loop contains blocks outside the straight-line body";
  let ivs = Loops.induction_variables fn lp in
  (match List.find_opt (fun (r, step, _) -> r = iv && Int64.equal step 1L) ivs with
  | Some _ -> ()
  | None -> bail "guard variable is not a unit-step induction variable");
  let defs = Loops.defs_in fn lp in
  if not (Loops.invariant_reg defs bound) then bail "loop bound varies";
  if not (Types.equal (Func.reg_type fn iv) Types.i64) then
    bail "induction variable is not i64";
  let preheaders =
    List.filter (fun p -> not (Loops.in_loop lp p)) (Cfg.preds cfg lp.header)
  in
  if preheaders = [] then bail "no preheader edge";
  {
    header = lp.header;
    body_blocks;
    exit = exit_l;
    iv;
    bound;
    cmp_reg;
    preheaders;
  }

(* ------------------------------------------------------------------ *)
(* classification of the loop body *)

type klass =
  | Kaddress  (** scalar address arithmetic on the induction variable *)
  | Kvector  (** computes a per-lane value; becomes vector code *)
  | Kuniform  (** same value every lane; stays scalar / hoisted *)
  | Kivstep  (** the i = i + 1 increment *)
  | Kreduction of Instr.binop

type body_info = {
  instrs : (Instr.t * klass) list;
  reductions : reduction list;
  memops : (Instr.t * memop) list;  (** loads and stores with their shape *)
  min_esz : int;  (** smallest element size touched *)
}

let origin_of (fn : Func.t) (prog : Prog.t) (defs : (Instr.reg, unit) Hashtbl.t)
    (base : Instr.reg) : origin =
  ignore prog;
  (* find the unique reaching definition outside the loop, best effort *)
  let def = ref Ounknown in
  let count = ref 0 in
  Func.iter_instrs
    (fun _ i ->
      match Instr.def i with
      | Some d when d = base ->
        incr count;
        (match i with Instr.Gaddr (_, g) -> def := Oglobal g | _ -> ())
      | _ -> ())
    fn;
  if Hashtbl.mem defs base then Ounknown
  else if !count = 0 then (
    (* never defined: must be a parameter *)
    match List.find_opt (fun p -> p = base) fn.params with
    | Some p ->
      let rec index_of i = function
        | [] -> Ounknown
        | x :: _ when x = p -> Oparam i
        | _ :: tl -> index_of (i + 1) tl
      in
      index_of 0 fn.params
    | None -> Ounknown)
  else if !count = 1 then !def
  else Ounknown

(** Registers holding known integer constants anywhere in the function
    (single definition, by a Const) — robust to LICM having hoisted them
    out of the loop. *)
let function_consts (fn : Func.t) : (Instr.reg, int64) Hashtbl.t =
  let fun_defs = Hashtbl.create 16 in
  Func.iter_instrs
    (fun _ i ->
      Option.iter
        (fun d ->
          Hashtbl.replace fun_defs d
            (1 + try Hashtbl.find fun_defs d with Not_found -> 0))
        (Instr.def i))
    fn;
  let consts = Hashtbl.create 16 in
  Func.iter_instrs
    (fun _ i ->
      match i with
      | Instr.Const (d, Value.Int (_, v))
        when (try Hashtbl.find fun_defs d with Not_found -> 0) = 1 ->
        Hashtbl.replace consts d v
      | _ -> ())
    fn;
  consts

(** Decompose the address register of a load/store into
    [base + (mul iv esz) + static] form. *)
let memop_shape (fn : Func.t) prog defs (body : Instr.t list) ~iv ~addr
    ~(access_ty : Types.t) ~static_off : memop =
  let access_esz = Types.scalar_size (Types.elem access_ty) in
  let consts = function_consts fn in
  (* find the in-body definition of a register *)
  let find_def r =
    List.find_opt (fun i -> Instr.def i = Some r) body
  in
  let invariant r = Loops.invariant_reg defs r in
  let const_def c = Option.map Int64.to_int (Hashtbl.find_opt consts c) in
  (* r = iv + k + (sum of loop-invariant registers); returns
     (k, sorted invariant addends).  Handles 2D row indexing like
     [y*W + x + 1] where [y*W] is invariant in the inner loop. *)
  let rec iv_affine r =
    if r = iv then Some (0, [])
    else
      match find_def r with
      | Some (Instr.Binop (Instr.Add, _, a, b)) -> (
        let addend other (k, ds) =
          match const_def other with
          | Some c -> Some (k + c, ds)
          | None ->
            if invariant other then Some (k, List.sort compare (other :: ds))
            else None
        in
        match iv_affine a with
        | Some acc -> addend b acc
        | None -> (
          match iv_affine b with
          | Some acc -> addend a acc
          | None -> None))
      | Some (Instr.Binop (Instr.Sub, _, a, b)) -> (
        (* (iv + ...) - const *)
        match (iv_affine a, const_def b) with
        | Some (k, ds), Some c -> Some (k - c, ds)
        | _ -> None)
      | _ -> None
  in
  (* r = (iv + k + dyn) * scale; returns (scale, k*scale, dyn, chain reg) *)
  let as_iv_times r =
    match iv_affine r with
    | Some (k, ds) -> Some (1, k, ds, if r = iv then None else Some r)
    | None -> (
      match find_def r with
      | Some (Instr.Binop (Instr.Mul, _, a, b)) -> (
        let shifted x c =
          match (iv_affine x, const_def c) with
          | Some (k, ds), Some scale -> Some (scale, k * scale, ds, Some r)
          | _ -> None
        in
        match shifted a b with Some s -> Some s | None -> shifted b a)
      | _ -> None)
  in
  match find_def addr with
  | Some (Instr.Binop (Instr.Add, _, x, y)) -> (
    let classify base off =
      if not (invariant base) then bail "base pointer varies in loop";
      match as_iv_times off with
      | Some (scale, shift_bytes, dyn_off, offset_reg) ->
        if scale <> access_esz then
          bail "non-unit stride (scale %d, element %d)" scale access_esz;
        {
          base;
          origin = origin_of fn prog defs base;
          offset_reg;
          static_off = static_off + shift_bytes;
          dyn_off;
          esz = access_esz;
        }
      | None -> bail "address is not affine in the induction variable"
    in
    if invariant x then classify x y
    else if invariant y then classify y x
    else bail "no invariant base in address")
  | _ ->
    if invariant addr then
      (* invariant address: a[0]-style access; treat as uniform scalar *)
      bail "loop-invariant memory access (not vectorizable profitably)"
    else bail "address is not an add"

let classify_body (fn : Func.t) prog (info : loop_info) lp : body_info =
  let defs = Loops.defs_in fn lp in
  let body =
    List.concat_map (fun l -> (Func.find_block fn l).instrs) info.body_blocks
  in
  (* registers used after the loop (outside loop blocks) *)
  let used_after = Hashtbl.create 8 in
  List.iter
    (fun (b : Func.block) ->
      if not (Loops.in_loop lp b.label) then (
        List.iter
          (fun i -> List.iter (fun r -> Hashtbl.replace used_after r ()) (Instr.uses i))
          b.instrs;
        List.iter (fun r -> Hashtbl.replace used_after r ()) (Instr.term_uses b.term)))
    fn.blocks;
  (* i-dependence: fixpoint over body *)
  let idep = Hashtbl.create 16 in
  Hashtbl.replace idep info.iv ();
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        match Instr.def i with
        | Some d when not (Hashtbl.mem idep d) ->
          if List.exists (fun u -> Hashtbl.mem idep u) (Instr.uses i)
             || Instr.reads_memory i
          then (
            Hashtbl.replace idep d ();
            changed := true)
        | _ -> ())
      body
  done;
  (* detect reductions: acc defined exactly once in body as
     acc = op(acc, x) with op associative, acc live after the loop or
     used in the loop only by this op *)
  let assoc_op = function
    | Instr.Add | Instr.Min | Instr.Max | Instr.Umin | Instr.Umax -> true
    | _ -> false
  in
  let def_count = Hashtbl.create 16 in
  List.iter
    (fun i ->
      Option.iter
        (fun d ->
          Hashtbl.replace def_count d
            (1 + try Hashtbl.find def_count d with Not_found -> 0))
        (Instr.def i))
    body;
  let reductions = ref [] in
  List.iter
    (fun i ->
      match i with
      | Instr.Binop (op, d, a, b) when assoc_op op && (d = a || d = b) ->
        (* float *sums* reassociate, so they need the fast-math opt-in;
           float min/max and all integer reductions are exact *)
        let reassociation_safe =
          (not (Types.is_float (Func.reg_type fn d)))
          || (match op with Instr.Min | Instr.Max -> true | _ -> false)
          || Annot.has_flag "pv.fast_math" fn.annots
        in
        if
          (try Hashtbl.find def_count d with Not_found -> 0) = 1
          && d <> info.iv && reassociation_safe
        then reductions := { acc = d; op; vacc = -1 } :: !reductions
      | _ -> ())
    body;
  let is_reduction r = List.exists (fun red -> red.acc = r) !reductions in
  (* memory operations *)
  let memops = ref [] in
  let min_esz = ref max_int in
  List.iter
    (fun i ->
      match i with
      | Instr.Load (ty, _, base, off) ->
        if Types.is_vector ty then bail "loop is already vectorized";
        let m =
          memop_shape fn prog defs body ~iv:info.iv ~addr:base ~access_ty:ty
            ~static_off:off
        in
        min_esz := min !min_esz m.esz;
        memops := (i, m) :: !memops
      | Instr.Store (ty, _, base, off) ->
        if Types.is_vector ty then bail "loop is already vectorized";
        let m =
          memop_shape fn prog defs body ~iv:info.iv ~addr:base ~access_ty:ty
            ~static_off:off
        in
        min_esz := min !min_esz m.esz;
        memops := (i, m) :: !memops
      | Instr.Call _ -> bail "call inside loop"
      | Instr.Alloca _ -> bail "alloca inside loop"
      | _ -> ())
    body;
  if !memops = [] then bail "no memory traffic (nothing to vectorize)";
  (* address registers: those feeding load/store base positions, plus
     their whole i-dependent computation chains (shifted indices like
     [i + 1] introduce intermediate adds) *)
  let address_regs = Hashtbl.create 8 in
  List.iter
    (fun (i, m) ->
      (match i with
      | Instr.Load (_, _, base, _) | Instr.Store (_, _, base, _) ->
        Hashtbl.replace address_regs base ()
      | _ -> ());
      Option.iter (fun r -> Hashtbl.replace address_regs r ()) m.offset_reg)
    !memops;
  let addr_changed = ref true in
  while !addr_changed do
    addr_changed := false;
    List.iter
      (fun i ->
        match Instr.def i with
        | Some d when Hashtbl.mem address_regs d ->
          List.iter
            (fun u ->
              if
                u <> info.iv
                && Hashtbl.mem idep u
                && not (Hashtbl.mem address_regs u)
              then begin
                Hashtbl.replace address_regs u ();
                addr_changed := true
              end)
            (Instr.uses i)
        | _ -> ())
      body
  done;
  (* classify each body instruction *)
  let classify i : klass =
    match i with
    | Instr.Binop (Instr.Add, d, a, b) when d = info.iv && (a = info.iv || b = info.iv)
      -> Kivstep
    | _ -> (
      match Instr.def i with
      | Some d when is_reduction d -> (
        match i with
        | Instr.Binop (op, _, _, _) -> Kreduction op
        | _ -> bail "reduction accumulator redefined strangely")
      | Some d when Hashtbl.mem address_regs d -> (
        (* address arithmetic stays scalar, but it must not feed vector
           computations *)
        match i with
        | Instr.Load _ -> bail "indirect addressing (loaded value as index)"
        | _ -> Kaddress)
      | Some d when Hashtbl.mem idep d -> Kvector
      | Some _ -> Kuniform
      | None -> (
        match i with
        | Instr.Store _ -> Kvector
        | _ -> bail "unsupported effectful instruction in loop"))
  in
  let classified = List.map (fun i -> (i, classify i)) body in
  (* sanity: address regs must not be used by vector instructions, and
     vector regs must not leak into addresses *)
  List.iter
    (fun (i, k) ->
      match k with
      | Kvector -> (
        match i with
        | Instr.Load _ | Instr.Store _ -> ()
        | _ ->
          List.iter
            (fun u ->
              if Hashtbl.mem address_regs u && u <> info.iv then
                bail "address value used in vector computation")
            (Instr.uses i))
      | Kaddress ->
        List.iter
          (fun u ->
            if Hashtbl.mem idep u && u <> info.iv
               && not (Hashtbl.mem address_regs u)
            then bail "vector value used in address computation")
          (Instr.uses i)
      | _ -> ())
    classified;
  (* values defined in the loop must not be observed after it, except
     reductions and the induction variable *)
  Hashtbl.iter
    (fun d () ->
      if Hashtbl.mem used_after d && d <> info.iv && not (is_reduction d)
      then bail "loop value r%d observed after the loop" d)
    defs;
  (* the induction variable itself may appear only in addresses and its own
     increment (a use as data would need an iota vector) *)
  List.iter
    (fun (i, k) ->
      match k with
      | Kvector | Kreduction _ ->
        if List.mem info.iv (Instr.uses i) then
          bail "induction variable used as data"
      | _ -> ())
    classified;
  { instrs = classified; reductions = !reductions; memops = !memops;
    min_esz = (if !min_esz = max_int then 8 else !min_esz) }

(* dependence test over the recognized memops *)
let check_dependences (fn : Func.t) (body : body_info) =
  let stores =
    List.filter (fun (i, _) -> match i with Instr.Store _ -> true | _ -> false)
      body.memops
  in
  let noalias_params = Annot.has_flag Annot.key_no_alias fn.annots in
  let same_location (a : memop) (b : memop) =
    a.base = b.base && a.static_off = b.static_off && a.esz = b.esz
    && a.dyn_off = b.dyn_off
  in
  let provably_distinct (a : memop) (b : memop) =
    match (a.origin, b.origin) with
    | Oglobal g1, Oglobal g2 -> not (String.equal g1 g2)
    | Oparam p1, Oparam p2 -> noalias_params && p1 <> p2
    | Oglobal _, Oparam _ | Oparam _, Oglobal _ -> noalias_params
    | _ -> false
  in
  List.iter
    (fun (_, sm) ->
      List.iter
        (fun (oi, om) ->
          let is_self = same_location sm om in
          match oi with
          | Instr.Load _ | Instr.Store _ ->
            if not (is_self || provably_distinct sm om) then
              bail "possible aliasing between loop memory accesses"
          | _ -> ())
        body.memops)
    stores

(* ------------------------------------------------------------------ *)
(* transformation *)

let identity_value (op : Instr.binop) (s : Types.scalar) : Value.t =
  if Types.is_float_scalar s then
    match op with
    | Instr.Add -> Value.float s 0.0
    | Instr.Min -> Value.float s infinity
    | Instr.Max -> Value.float s neg_infinity
    | _ -> bail "no identity for float op"
  else
    let bits = Types.scalar_size s * 8 in
    match op with
    | Instr.Add -> Value.int s 0L
    | Instr.Min ->
      (* identity of min is the maximum value *)
      Value.int s (Int64.sub (Int64.shift_left 1L (bits - 1)) 1L)
    | Instr.Max -> Value.int s (Int64.neg (Int64.shift_left 1L (bits - 1)))
    | Instr.Umin -> Value.int s (-1L) (* all ones *)
    | Instr.Umax -> Value.int s 0L
    | _ -> bail "no identity for op"

(** Rewrite one recognized loop.  Returns the vector factor used. *)
let transform (fn : Func.t) (info : loop_info) (body : body_info) : int =
  let vf = target_vector_bytes / body.min_esz in
  if vf < 2 then bail "vector factor below 2";
  let vec_ty_of r =
    let s = Types.elem (Func.reg_type fn r) in
    Types.vec s vf
  in
  (* fresh blocks *)
  let vpre = Func.add_block fn in
  let vheader = Func.add_block fn in
  let vbody = Func.add_block fn in
  let vexit = Func.add_block fn in
  (* retarget original entry edges into vpre *)
  List.iter
    (fun p ->
      let pb = Func.find_block fn p in
      pb.term <-
        Instr.map_term_labels
          (fun l -> if l = info.header then vpre.label else l)
          pb.term)
    info.preheaders;
  let pre = ref [] in
  let emit_pre i = pre := i :: !pre in
  (* n_vec = n & ~(vf-1) *)
  let mask = Func.fresh_reg fn Types.i64 in
  emit_pre (Instr.Const (mask, Value.i64 (Int64.lognot (Int64.of_int (vf - 1)))));
  let n_vec = Func.fresh_reg fn Types.i64 in
  emit_pre (Instr.Binop (Instr.And, n_vec, info.bound, mask));
  (* vector accumulators *)
  let reductions =
    List.map
      (fun red ->
        let s = Types.elem (Func.reg_type fn red.acc) in
        let idv = Func.fresh_reg fn (Types.Scalar s) in
        emit_pre (Instr.Const (idv, identity_value red.op s));
        let vacc = Func.fresh_reg fn (Types.vec s vf) in
        emit_pre (Instr.Splat (vacc, idv));
        { red with vacc })
      body.reductions
  in
  let reduction_of r = List.find_opt (fun red -> red.acc = r) reductions in
  (* uniform cloning memo: body-defined uniform values recomputed in vpre *)
  let body_def r =
    List.find_opt (fun (i, _) -> Instr.def i = Some r) body.instrs
  in
  let clone_memo = Hashtbl.create 8 in
  let cloning = Hashtbl.create 8 in
  let rec clone_uniform r =
    match Hashtbl.find_opt clone_memo r with
    | Some r' -> r'
    | None -> (
      match body_def r with
      | None -> r (* defined outside the loop: already invariant *)
      | Some (i, Kuniform) ->
        (* a def reachable from its own operands (r3 = r3 | 0) cannot be
           recomputed in the preheader: leave the loop scalar *)
        if Hashtbl.mem cloning r then
          bail "cyclic uniform definition of r%d" r;
        Hashtbl.replace cloning r ();
        let operands = Instr.uses i in
        let mapped = List.map clone_uniform operands in
        let d = Func.fresh_reg fn (Func.reg_type fn r) in
        let remap u =
          (* positional rewrite via map_regs: replace each use *)
          match List.assoc_opt u (List.combine operands mapped) with
          | Some m -> m
          | None -> u
        in
        let i' =
          Instr.map_regs (fun x -> if x = r then d else remap x) i
        in
        emit_pre i';
        Hashtbl.replace clone_memo r d;
        d
      | Some _ -> bail "vector value where uniform expected")
  in
  (* splat memo for scalar operands of vector instructions *)
  let splat_memo = Hashtbl.create 8 in
  let splat_of r =
    match Hashtbl.find_opt splat_memo r with
    | Some v -> v
    | None ->
      let scalar = clone_uniform r in
      let v = Func.fresh_reg fn (vec_ty_of r) in
      emit_pre (Instr.Splat (v, scalar));
      Hashtbl.replace splat_memo r v;
      v
  in
  (* map from scalar body register to its vector counterpart *)
  let vreg_memo = Hashtbl.create 16 in
  let is_vector_def r =
    match body_def r with
    | Some (_, Kvector) -> true
    | Some (_, Kreduction _) -> true
    | _ -> false
  in
  let vreg_of r =
    match Hashtbl.find_opt vreg_memo r with
    | Some v -> v
    | None ->
      let v = Func.fresh_reg fn (vec_ty_of r) in
      Hashtbl.replace vreg_memo r v;
      v
  in
  (* vector operand: vector reg if defined as vector in body, the vector
     accumulator for reductions, a splat otherwise *)
  let vop r =
    match reduction_of r with
    | Some red -> red.vacc
    | None -> if is_vector_def r then vreg_of r else splat_of r
  in
  (* build the vector body.  Scalar instructions kept in the vector body
     (addresses, uniforms) are cloned onto fresh registers so the two
     loops stay register-disjoint (the scalar remainder loop still runs
     afterwards, and later passes treat the bodies independently). *)
  let vinstrs = ref [] in
  let emit_v i = vinstrs := i :: !vinstrs in
  let sreg_map = Hashtbl.create 8 in
  let sreg r = match Hashtbl.find_opt sreg_map r with Some r' -> r' | None -> r in
  let clone_scalar i =
    (* invariant: only def-carrying instructions are classified Kscalar by
       the analysis above — a def-less instruction never reaches here *)
    let d = match Instr.def i with Some d -> d | None -> assert false in
    let d' = Func.fresh_reg fn (Func.reg_type fn d) in
    let i' = Instr.map_regs (fun x -> if x = d then d' else sreg x) i in
    Hashtbl.replace sreg_map d d';
    emit_v i'
  in
  List.iter
    (fun (i, k) ->
      match k with
      | Kaddress | Kuniform -> clone_scalar i  (* scalar, once per vector step *)
      | Kivstep -> ()  (* re-emitted below with step = vf *)
      | Kreduction _ -> (
        (* invariant: an instruction is classified [Kreduction] only when
           it is the binop of a recognized reduction chain, so both the
           shape match and the [reduction_of] lookup must succeed *)
        match i with
        | Instr.Binop (op, d, a, b) ->
          let red =
            match reduction_of d with Some r -> r | None -> assert false
          in
          let other = if a = d then b else a in
          emit_v (Instr.Binop (op, red.vacc, red.vacc, vop other))
        | _ -> assert false)
      | Kvector -> (
        match i with
        | Instr.Load (ty, d, base, off) ->
          let s = Types.elem ty in
          emit_v (Instr.Load (Types.vec s vf, vreg_of d, sreg base, off))
        | Instr.Store (ty, src, base, off) ->
          let s = Types.elem ty in
          let vsrc = vop src in
          ignore s;
          emit_v (Instr.Store (Func.reg_type fn vsrc, vsrc, sreg base, off))
        | Instr.Binop (op, d, a, b) ->
          emit_v (Instr.Binop (op, vreg_of d, vop a, vop b))
        | Instr.Unop (op, d, a) -> emit_v (Instr.Unop (op, vreg_of d, vop a))
        | Instr.Conv (kind, d, a) -> emit_v (Instr.Conv (kind, vreg_of d, vop a))
        | Instr.Mov (d, a) -> emit_v (Instr.Mov (vreg_of d, vop a))
        | Instr.Select _ -> bail "select in vector position (no vector select)"
        | Instr.Cmp _ -> bail "compare in vector position"
        | _ -> bail "unsupported instruction in vector body")
      )
    body.instrs;
  (* iv step by vf *)
  let step = Func.fresh_reg fn Types.i64 in
  emit_v (Instr.Const (step, Value.i64 (Int64.of_int vf)));
  emit_v (Instr.Binop (Instr.Add, info.iv, info.iv, step));
  (* assemble blocks *)
  vpre.instrs <- List.rev !pre;
  vpre.term <- Instr.Br vheader.label;
  let vcmp = Func.fresh_reg fn Types.i32 in
  vheader.instrs <- [ Instr.Cmp (Instr.Slt, vcmp, info.iv, n_vec) ];
  vheader.term <- Instr.Cbr (vcmp, vbody.label, vexit.label);
  vbody.instrs <- List.rev !vinstrs;
  vbody.term <- Instr.Br vheader.label;
  (* vexit: fold vector accumulators back into the scalar ones, then enter
     the original (now remainder) loop *)
  vexit.instrs <-
    List.concat_map
      (fun red ->
        let s = Types.elem (Func.reg_type fn red.acc) in
        let partial = Func.fresh_reg fn (Types.Scalar s) in
        let redop =
          match red.op with
          | Instr.Add -> Instr.Radd
          | Instr.Min -> Instr.Rmin
          | Instr.Max -> Instr.Rmax
          | Instr.Umin -> Instr.Rumin
          | Instr.Umax -> Instr.Rumax
          (* invariant: [reduction_of] only accepts these five operators *)
          | _ -> assert false
        in
        [
          Instr.Reduce (redop, partial, red.vacc);
          Instr.Binop (red.op, red.acc, red.acc, partial);
        ])
      reductions;
  vexit.term <- Instr.Br info.header;
  vf

(* ------------------------------------------------------------------ *)

type result = {
  vectorized : (int * int) list;  (** (header label, vector factor) *)
  bailed : (int * string) list;  (** (header label, reason) *)
}

(** Vectorize every eligible innermost loop of [fn].  The work is charged
    to the accountant at offline-analysis rates: this is the expensive
    step the paper moves out of the JIT. *)
let run_func ?account (prog : Prog.t) (fn : Func.t) : result =
  let cfg = Cfg.build fn in
  let loops = Loops.find cfg in
  let n = Func.instr_count fn in
  (* loop recognition + dependence testing is the costly part: quadratic in
     the body for the all-pairs dependence test *)
  Account.charge_opt account ~pass:"vectorize.analysis" (8 * n);
  let innermost =
    List.filter
      (fun (lp : Loops.loop) ->
        not
          (List.exists
             (fun (other : Loops.loop) ->
               other.header <> lp.header && List.mem other.header lp.blocks)
             loops.Loops.loops))
      loops.Loops.loops
  in
  let vectorized = ref [] in
  let bailed = ref [] in
  List.iter
    (fun lp ->
      (* [transform] mutates the CFG before its last chance to bail, so
         snapshot the blocks and roll back on Bail to keep the function
         intact for the scalar fallback (and for the remaining loops) *)
      let saved = Func.copy fn in
      match
        let info = recognize fn cfg lp in
        let body = classify_body fn prog info lp in
        Account.charge_opt account ~pass:"vectorize.dependence"
          (List.length body.memops * List.length body.memops * 4);
        check_dependences fn body;
        Account.charge_opt account ~pass:"vectorize.transform" (2 * n);
        transform fn info body
      with
      | vf ->
        vectorized := (lp.Loops.header, vf) :: !vectorized;
        Func.set_loop_annot fn lp.Loops.header
          (Annot.add Annot.key_unit_stride (Annot.Bool true)
             (Annot.add Annot.key_vector_factor (Annot.Int vf)
                (Func.loop_annot fn lp.Loops.header)))
      | exception Bail reason ->
        fn.Func.blocks <- saved.Func.blocks;
        fn.Func.block_index <- None;
        bailed := (lp.Loops.header, reason) :: !bailed)
    innermost;
  if !vectorized <> [] then
    Func.add_annot fn Annot.key_vectorized
      (Annot.Int (List.fold_left (fun acc (_, vf) -> max acc vf) 0 !vectorized));
  { vectorized = !vectorized; bailed = !bailed }

let run ?account (prog : Prog.t) : (string * result) list =
  List.map (fun (fn : Func.t) -> (fn.name, run_func ?account prog fn)) prog.funcs
