(** End-to-end driver for the split-compilation toolchain — the public
    face of the library.

    The flow mirrors the paper's Figure 1: {!frontend} produces portable
    bytecode, {!offline} runs the µproc-independent compiler of the chosen
    mode, {!distribute} serializes the artifact that ships to devices, and
    {!online} plays the device side (decode, verify, load, JIT for a
    concrete machine).  {!interpret} is the no-JIT baseline.  See
    {!Adaptive} for the across-runs layer. *)

(** Compilation modes (experiment E2):
    - [Traditional_deferred]: offline drops target-dependent
      optimizations; cheap blind JIT.
    - [Split]: the paper's proposal — expensive analyses offline, shipped
      as portable vector builtins + annotations; cheap annotation-reading
      JIT.
    - [Pure_online]: nothing offline; the JIT redoes everything on the
      device. *)
type mode = Traditional_deferred | Split | Pure_online

val mode_name : mode -> string
val all_modes : mode list

(** Result of the offline step: optimized bytecode plus the work spent. *)
type offline_result = {
  prog : Pvir.Prog.t;
  offline_work : Pvir.Account.t;
  vectorized : (string * Pvopt.Vectorize.result) list;
      (** per-function vectorization outcomes (empty except in split
          mode) *)
}

(** Result of the online step: a loaded simulator plus online work. *)
type online_result = {
  sim : Pvvm.Sim.t;
  online_work : Pvir.Account.t;
  jit : Pvjit.Jit.report;
  img : Pvvm.Image.t;
}

(** Compile MiniC source to (unoptimized, verified) bytecode.
    @raise Minic.Lexer.Error, Minic.Parser.Error, Minic.Check.Error or
    Minic.Lower.Error on malformed source. *)
val frontend : ?name:string -> string -> Pvir.Prog.t

(** Run the offline half of [mode] on a copy of the program. *)
val offline : ?mode:mode -> Pvir.Prog.t -> offline_result

(** Serialize to the binary distribution format (what ships to devices). *)
val distribute : offline_result -> string

(** The on-device step: decode, verify, load, optimize per [mode], JIT for
    [machine].  [mem_size] is the device memory in bytes (default 1 MiB);
    [engine] selects the simulator's host execution engine (default
    [Threaded]; cycle counts do not depend on it).
    @raise Pvir.Serial.Corrupt or Pvir.Verify.Error on bad bytecode. *)
val online :
  ?mode:mode ->
  machine:Pvmach.Machine.t ->
  ?mem_size:int ->
  ?engine:Pvvm.Sim.engine ->
  string ->
  online_result

(** Interpret the bytecode instead of JIT-compiling it.  [engine] selects
    the interpreter's host execution engine (default [Threaded]; cycle
    counts do not depend on it). *)
val interpret :
  ?mem_size:int -> ?engine:Pvvm.Interp.engine -> string -> Pvvm.Interp.t

(** One call from source text to a device-resident simulator:
    [frontend |> offline |> distribute |> online]. *)
val run_source :
  ?mode:mode ->
  machine:Pvmach.Machine.t ->
  ?mem_size:int ->
  ?engine:Pvvm.Sim.engine ->
  string ->
  offline_result * online_result
