(** End-to-end driver for the split-compilation toolchain — the public
    face of the library.

    The flow mirrors the paper's Figure 1: {!frontend} produces portable
    bytecode, {!offline} runs the µproc-independent compiler of the chosen
    mode, {!distribute} serializes the artifact that ships to devices, and
    {!online} plays the device side (decode, verify, load, JIT for a
    concrete machine).  {!interpret} is the no-JIT baseline.  See
    {!Adaptive} for the across-runs layer. *)

(** Compilation modes (experiment E2):
    - [Traditional_deferred]: offline drops target-dependent
      optimizations; cheap blind JIT.
    - [Split]: the paper's proposal — expensive analyses offline, shipped
      as portable vector builtins + annotations; cheap annotation-reading
      JIT.
    - [Pure_online]: nothing offline; the JIT redoes everything on the
      device. *)
type mode = Traditional_deferred | Split | Pure_online

val mode_name : mode -> string
val all_modes : mode list

(** Result of the offline step: optimized bytecode plus the work spent. *)
type offline_result = {
  prog : Pvir.Prog.t;
  offline_work : Pvir.Account.t;
  vectorized : (string * Pvopt.Vectorize.result) list;
      (** per-function vectorization outcomes (empty except in split
          mode) *)
}

(** Result of the online step: a loaded simulator plus online work. *)
type online_result = {
  sim : Pvvm.Sim.t;
  online_work : Pvir.Account.t;
  jit : Pvjit.Jit.report;
  img : Pvvm.Image.t;
}

(** Compile MiniC source to (unoptimized, verified) bytecode.  With a
    trace sink, the whole phase is a span on the frontend track.
    @raise Minic.Lexer.Error, Minic.Parser.Error, Minic.Check.Error or
    Minic.Lower.Error on malformed source. *)
val frontend : ?name:string -> ?tr:Pvtrace.Trace.t -> string -> Pvir.Prog.t

(** Run the offline half of [mode] on a copy of the program.  With
    telemetry sinks, every pass becomes a span on the offline track
    (virtual clock = offline work units) and the per-pass work breakdown
    lands in [metrics] under the [offline.] prefix. *)
val offline :
  ?mode:mode ->
  ?tr:Pvtrace.Trace.t ->
  ?metrics:Pvtrace.Metrics.t ->
  Pvir.Prog.t ->
  offline_result

(** Serialize to the binary distribution format (what ships to devices). *)
val distribute : ?tr:Pvtrace.Trace.t -> offline_result -> string

(** The on-device step: decode, verify, load, optimize per [mode], JIT for
    [machine].  [mem_size] is the device memory in bytes (default 1 MiB);
    [alloc_limit] caps host allocation for that memory (default
    {!Pvvm.Memory.default_alloc_limit}); [engine] selects the simulator's
    host execution engine (default [Threaded]; cycle counts do not depend
    on it); [limits] bounds the untrusted decode (default
    {!Pvir.Serial.default_limits}).  With telemetry sinks, the
    decode/load/JIT phases become spans (virtual clock = online work
    units), annotation rejects land in [ledger], per-pass work and JIT
    verdicts land in [metrics] under the [online.] prefix, and the
    returned simulator carries [tr] so its runs appear on the VM track.
    @raise Pvir.Serial.Corrupt or Pvir.Verify.Error on bad bytecode.
    @raise Pvvm.Memory.Limit if [mem_size] exceeds [alloc_limit]. *)
val online :
  ?mode:mode ->
  machine:Pvmach.Machine.t ->
  ?mem_size:int ->
  ?alloc_limit:int ->
  ?engine:Pvvm.Sim.engine ->
  ?limits:Pvir.Serial.limits ->
  ?tr:Pvtrace.Trace.t ->
  ?metrics:Pvtrace.Metrics.t ->
  ?ledger:Pvtrace.Ledger.t ->
  string ->
  online_result

(** Interpret the bytecode instead of JIT-compiling it.  [engine] selects
    the interpreter's host execution engine (default [Threaded]; cycle
    counts do not depend on it — [Aot] installs the native backend and
    degrades to [Threaded] when the toolchain is unavailable, recording
    the degradation in [ledger]); [limits] bounds the untrusted decode.
    The returned interpreter carries [tr], [profile] and [sampler] (the
    cycle-driven sampling profiler), so its runs appear on the VM track
    and feed the instruction-mix metrics or the sampled hot-block
    tables. *)
val interpret :
  ?mem_size:int ->
  ?alloc_limit:int ->
  ?engine:Pvvm.Interp.engine ->
  ?limits:Pvir.Serial.limits ->
  ?profile:Pvvm.Profile.t ->
  ?sampler:Pvprof.t ->
  ?tr:Pvtrace.Trace.t ->
  ?ledger:Pvtrace.Ledger.t ->
  string ->
  Pvvm.Interp.t

(** One call from source text to a device-resident simulator:
    [frontend |> offline |> distribute |> online]. *)
val run_source :
  ?mode:mode ->
  machine:Pvmach.Machine.t ->
  ?mem_size:int ->
  ?engine:Pvvm.Sim.engine ->
  ?limits:Pvir.Serial.limits ->
  ?tr:Pvtrace.Trace.t ->
  ?metrics:Pvtrace.Metrics.t ->
  ?ledger:Pvtrace.Ledger.t ->
  string ->
  offline_result * online_result

(** {1 Error taxonomy}

    One typed sum covering every failure the distribution pipeline can
    hit, with stable process exit codes.  Drivers ({!guard}, the [_r]
    functions below, and the [pvsc]/[pvrun] tools) guarantee that no raw
    exception or backtrace escapes to an end user on any input, however
    hostile. *)

type error =
  | Frontend_error of string  (** MiniC lex/parse/type error (exit 2) *)
  | Decode_error of Pvir.Serial.corruption
      (** malformed distribution bytes (exit 3) *)
  | Verify_error of string  (** well-formed but ill-typed PVIR (exit 4) *)
  | Link_error of string  (** module linking failed (exit 5) *)
  | Jit_error of string  (** online compilation failed (exit 6) *)
  | Runtime_trap of string  (** guest program trapped (exit 7) *)
  | Resource_limit of string  (** fuel or memory budget exhausted (exit 8) *)
  | Io_error of string  (** host file system error (exit 9) *)

(** Human-readable one-line rendering (no backtrace). *)
val error_message : error -> string

(** Stable process exit code: 2-9, clear of cmdliner's reserved 123-125.
    0 is success and 1 an unexpected (non-taxonomy) failure. *)
val exit_code : error -> int

(** Classify an exception raised anywhere in the pipeline; [None] means it
    is not part of the failure surface (a genuine bug). *)
val classify : exn -> error option

(** Run a pipeline fragment, folding any classified exception into
    [Error]; unknown exceptions still propagate. *)
val guard : (unit -> 'a) -> ('a, error) result

(** {1 Result-typed driver API} — exception-free variants of the arrows
    above, for embedders that want every failure as a value. *)

val frontend_result :
  ?name:string -> ?tr:Pvtrace.Trace.t -> string -> (Pvir.Prog.t, error) result

val offline_result_r :
  ?mode:mode ->
  ?tr:Pvtrace.Trace.t ->
  ?metrics:Pvtrace.Metrics.t ->
  Pvir.Prog.t ->
  (offline_result, error) result

val online_r :
  ?mode:mode ->
  machine:Pvmach.Machine.t ->
  ?mem_size:int ->
  ?alloc_limit:int ->
  ?engine:Pvvm.Sim.engine ->
  ?limits:Pvir.Serial.limits ->
  ?tr:Pvtrace.Trace.t ->
  ?metrics:Pvtrace.Metrics.t ->
  ?ledger:Pvtrace.Ledger.t ->
  string ->
  (online_result, error) result

val interpret_r :
  ?mem_size:int ->
  ?alloc_limit:int ->
  ?engine:Pvvm.Interp.engine ->
  ?limits:Pvir.Serial.limits ->
  ?profile:Pvvm.Profile.t ->
  ?sampler:Pvprof.t ->
  ?tr:Pvtrace.Trace.t ->
  ?ledger:Pvtrace.Ledger.t ->
  string ->
  (Pvvm.Interp.t, error) result

val run_source_r :
  ?mode:mode ->
  machine:Pvmach.Machine.t ->
  ?mem_size:int ->
  ?engine:Pvvm.Sim.engine ->
  ?limits:Pvir.Serial.limits ->
  ?tr:Pvtrace.Trace.t ->
  ?metrics:Pvtrace.Metrics.t ->
  ?ledger:Pvtrace.Ledger.t ->
  string ->
  (offline_result * online_result, error) result
