(** Adaptive optimization across program runs — the paper's §2.2/§4
    "idle time" and "iterative compilation" directions.

    The paper argues that (a) profiles collected by the VM between runs
    should feed re-optimization (Morph [45]), and (b) iterative
    compilation — trying optimization variants and measuring — beats
    profitability models, with "virtual machine monitors [as] the ideal
    engines to drive adaptive tuning".  Both need exactly the
    infrastructure built here: the VM can measure, the bytecode is
    re-optimizable, and the optimization decisions (vectorize? unroll by
    how much?) are the target-dependent ones split compilation defers.

    {!generations} plays the whole lifecycle on one device:

    - generation 0: interpret the fresh bytecode, collecting a profile
      (zero compile cost, worst execution);
    - generation 1: split-mode JIT using the shipped annotations;
    - generation 2: idle-time iterative search — re-optimize hot
      functions under several configurations (vectorization on/off,
      unroll factors), measure each on the device's own simulator, keep
      the best. *)

(** One point in the optimization space the iterative search explores. *)
type config = { vectorize : bool; unroll : int  (** 1 = no unrolling *) }

let config_label c =
  Printf.sprintf "%s%s"
    (if c.vectorize then "vect" else "scalar")
    (if c.unroll > 1 then Printf.sprintf "+unroll%d" c.unroll else "")

let default_configs =
  [
    { vectorize = false; unroll = 1 };
    { vectorize = false; unroll = 2 };
    { vectorize = false; unroll = 4 };
    { vectorize = false; unroll = 8 };
    { vectorize = true; unroll = 1 };
    { vectorize = true; unroll = 2 };
  ]

(** Apply [config] to a fresh copy of [prog] (offline-style pipeline with
    explicit decisions instead of the default heuristics).

    [prog] must be *decision-open* bytecode — raw or traditional-mode, not
    already vectorized — because the search owns the target-dependent
    decisions.  Strength reduction runs before unrolling so the unrolled
    copies step derived pointer IVs instead of multiplying per copy. *)
let apply_config_untraced ?account (config : config) (prog : Pvir.Prog.t) :
    Pvir.Prog.t =
  let p = Pvir.Prog.copy prog in
  Pvopt.Passes.cleanup ?account p;
  ignore (Pvopt.Inline.run ?account p);
  Pvopt.Passes.cleanup ?account p;
  Pvopt.Passes.licm_all ?account p;
  if config.vectorize then ignore (Pvopt.Vectorize.run ?account p);
  List.iter (fun fn -> ignore (Pvopt.Strength.run ?account fn)) p.Pvir.Prog.funcs;
  if config.unroll > 1 then
    List.iter
      (fun fn -> ignore (Pvopt.Unroll.run ?account ~factor:config.unroll p fn))
      p.Pvir.Prog.funcs;
  Pvopt.Passes.cleanup ?account p;
  Pvopt.Regalloc_annotate.run ?account p;
  Pvir.Verify.program p;
  p

(** As above; with a trace sink, the whole tuning pipeline for this
    configuration becomes one span (category [adaptive]). *)
let apply_config ?account ?tr (config : config) (prog : Pvir.Prog.t) :
    Pvir.Prog.t =
  Pvtrace.Trace.with_span tr ~cat:"adaptive"
    ~args:[ ("config", config_label config) ]
    ("tune:" ^ config_label config)
    (fun () -> apply_config_untraced ?account config prog)

(** Result of measuring one configuration. *)
type sample = {
  config : config;
  cycles : int64;
  compile_work : int;
  degradations : int;
      (** graceful-fallback events (annotation rejects, remaps) this
          configuration triggered, from the degradation ledger *)
  result : Pvir.Value.t option;
}

(** JIT [prog] for [machine] and measure [entry args] once, with
    [prepare] filling the inputs (called after loading). *)
let measure ?account ?tr ?ledger ~machine ~prepare ~entry ~args
    (prog : Pvir.Prog.t) : int64 * Pvir.Value.t option =
  let img = Pvvm.Image.load (Pvir.Prog.copy prog) in
  let sim, _ =
    Pvjit.Jit.compile_program ?account ?tr ?ledger ~machine
      ~hints:Pvjit.Jit.Hints_annotation img
  in
  Pvvm.Sim.set_trace sim tr;
  prepare img;
  let result = Pvvm.Sim.run sim entry args in
  (Pvvm.Sim.cycles sim, result)

(** Iterative search: measure every configuration, best (fewest cycles)
    first.  All candidates must agree on the observable result — a
    mis-compiled variant is a bug, not a tuning choice.  With a [ledger],
    each sample reports how many graceful degradations its configuration
    triggered, so the adaptive layer can prefer configurations that not
    only run fast but also keep their annotations verifiable. *)
let search ?(configs = default_configs) ?tr ?ledger ~machine ~prepare ~entry
    ~args (prog : Pvir.Prog.t) : sample list =
  let ledger_count () =
    match ledger with Some l -> Pvtrace.Ledger.count l | None -> 0
  in
  let samples =
    List.map
      (fun config ->
        let account = Pvir.Account.create () in
        let before = ledger_count () in
        let tuned = apply_config ~account ?tr config prog in
        let cycles, result =
          Pvtrace.Trace.with_span tr ~cat:"adaptive"
            ~args:[ ("config", config_label config) ]
            ("measure:" ^ config_label config)
            (fun () ->
              measure ~account ?tr ?ledger ~machine ~prepare ~entry ~args
                tuned)
        in
        {
          config;
          cycles;
          compile_work = Pvir.Account.total account;
          degradations = ledger_count () - before;
          result;
        })
      configs
  in
  (match samples with
  | first :: rest ->
    List.iter
      (fun s ->
        let same =
          match (first.result, s.result) with
          | None, None -> true
          | Some a, Some b -> Pvir.Value.equal a b
          | _ -> false
        in
        if not same then
          failwith
            (Printf.sprintf "iterative search: config %s changed the result"
               (config_label s.config)))
      rest
  | [] -> ());
  List.sort (fun a b -> Int64.compare a.cycles b.cycles) samples

(** One generation of the adaptive lifecycle. *)
type generation = {
  gen : int;
  glabel : string;
  exec_cycles : int64;
  gcompile_work : int;  (** work paid to reach this generation *)
}

(** Play the three-generation lifecycle for [entry] on [machine].
    [bytecode] must be the *raw* (pure-online) distribution: adaptive
    tuning owns every optimization decision, including the
    target-dependent ones a split-mode distribution has already baked in
    (a strength-reduced loop is no longer vectorizable, for instance). *)
let generations ?configs ?tr ?ledger ~machine ~prepare ~entry ~args
    (bytecode : string) : generation list =
  let prog = Pvir.Serial.decode bytecode in
  (* generation 0: interpret + profile *)
  let img0 = Pvvm.Image.load (Pvir.Prog.copy prog) in
  let profile = Pvvm.Profile.create () in
  let interp = Pvvm.Interp.create ~profile ?tr img0 in
  prepare img0;
  ignore (Pvvm.Interp.run interp entry args);
  let gen0 =
    {
      gen = 0;
      glabel = "interpret + profile";
      exec_cycles = Pvvm.Interp.cycles interp;
      gcompile_work = 0;
    }
  in
  (* the profile flows back as hotness annotations (the Morph feedback) *)
  Pvvm.Profile.annotate_hotness profile prog;
  (* generation 1: quick baseline JIT, no optimization time spent *)
  let account1 = Pvir.Account.create () in
  let cycles1, _ =
    measure ~account:account1 ?tr ?ledger ~machine ~prepare ~entry ~args prog
  in
  let gen1 =
    {
      gen = 1;
      glabel = "quick JIT (no optimization)";
      exec_cycles = cycles1;
      gcompile_work = Pvir.Account.total account1;
    }
  in
  (* generation 2: idle-time iterative tuning of hot code *)
  let samples = search ?configs ?tr ?ledger ~machine ~prepare ~entry ~args prog in
  let best = List.hd samples in
  let total_search_work =
    List.fold_left (fun acc s -> acc + s.compile_work) 0 samples
  in
  let gen2 =
    {
      gen = 2;
      glabel =
        Printf.sprintf "idle-time tuned (%s)" (config_label best.config);
      exec_cycles = best.cycles;
      gcompile_work = total_search_work;
    }
  in
  [ gen0; gen1; gen2 ]

(** The sampled variant of the lifecycle: generation 0 interprets under
    the {e sampling} profiler ({!Pvprof}) instead of the exhaustive
    per-block counter.  This is the deployment-shaped loop the paper's
    "idle time between runs" sketch implies — a week of execution cannot
    afford a hashtable bump per block, but it can afford one compare at
    block entries — and it also exercises the re-JIT trigger: the
    returned [hot] set is the smallest weight-ranked prefix of functions
    covering at least [hot_coverage] (default 90%) of the sampled cycle
    weight, i.e. the functions a tiering policy would hand to the JIT
    first.  Hotness annotations flow back through the same
    {!Pvir.Annot.key_hotness} key the exhaustive profiler uses, so
    generations 1 and 2 are unchanged. *)
let generations_sampled ?configs ?tr ?ledger ?(period = Pvprof.default_period)
    ?(hot_coverage = 0.9) ~machine ~prepare ~entry ~args (bytecode : string) :
    generation list * string list =
  let prog = Pvir.Serial.decode bytecode in
  (* generation 0: interpret + sample *)
  let img0 = Pvvm.Image.load (Pvir.Prog.copy prog) in
  let sampler = Pvprof.create ~period () in
  let interp = Pvvm.Interp.create ~sampler ?tr img0 in
  prepare img0;
  ignore (Pvvm.Interp.run interp entry args);
  (match tr with Some t -> Pvprof.to_trace sampler t | None -> ());
  let gen0 =
    {
      gen = 0;
      glabel =
        Printf.sprintf "interpret + sample (period %Ld, %d samples)" period
          (Pvprof.samples_taken sampler);
      exec_cycles = Pvvm.Interp.cycles interp;
      gcompile_work = 0;
    }
  in
  (* the sampled profile flows back through the same annotation key *)
  Pvprof.to_annotations sampler prog;
  let hot =
    let total = Int64.to_float (Int64.max 1L (Pvprof.total_weight sampler)) in
    let target = hot_coverage *. total in
    let rec take cum = function
      | [] -> []
      | (fn, w) :: tl ->
        if cum >= target then []
        else fn :: take (cum +. Int64.to_float w) tl
    in
    take 0.0 (Pvprof.fn_ranking sampler)
  in
  (* generations 1 and 2 exactly as in {!generations} *)
  let account1 = Pvir.Account.create () in
  let cycles1, _ =
    measure ~account:account1 ?tr ?ledger ~machine ~prepare ~entry ~args prog
  in
  let gen1 =
    {
      gen = 1;
      glabel = "quick JIT (no optimization)";
      exec_cycles = cycles1;
      gcompile_work = Pvir.Account.total account1;
    }
  in
  let samples = search ?configs ?tr ?ledger ~machine ~prepare ~entry ~args prog in
  let best = List.hd samples in
  let total_search_work =
    List.fold_left (fun acc s -> acc + s.compile_work) 0 samples
  in
  let gen2 =
    {
      gen = 2;
      glabel =
        Printf.sprintf "idle-time tuned (%s)" (config_label best.config);
      exec_cycles = best.cycles;
      gcompile_work = total_search_work;
    }
  in
  ([ gen0; gen1; gen2 ], hot)
