(** Shared command-line plumbing for the drivers (pvsc, pvrun, pvfuzz,
    bench).  One engine vocabulary, one mode vocabulary, one set of
    decode-limit builders — so the tools cannot drift apart on spelling
    or defaults. *)

(** Host execution engine, as selected on a command line.  One name
    covers both VMs: the interpreter and the simulator each have a
    tree-walking reference, a pre-decoded threaded engine, and the AOT
    native backend. *)
type engine = Tree_walk | Threaded | Aot

let engine_name = function
  | Tree_walk -> "tree"
  | Threaded -> "threaded"
  | Aot -> "aot"

let all_engines = [ Tree_walk; Threaded; Aot ]
let engine_names = String.concat ", " (List.map engine_name all_engines)

(** [engine_of_string s] — [Error] carries a usage message listing the
    valid spellings. *)
let engine_of_string = function
  | "tree" | "tree-walk" -> Ok Tree_walk
  | "threaded" -> Ok Threaded
  | "aot" -> Ok Aot
  | s ->
    Error
      (Printf.sprintf "unknown engine %s (valid engines: %s)" s engine_names)

let interp_engine = function
  | Tree_walk -> Pvvm.Interp.Tree_walk
  | Threaded -> Pvvm.Interp.Threaded
  | Aot -> Pvvm.Interp.Aot

let sim_engine = function
  | Tree_walk -> Pvvm.Sim.Tree_walk
  | Threaded -> Pvvm.Sim.Threaded
  | Aot -> Pvvm.Sim.Aot

(** [mode_of_string s] — same contract as {!engine_of_string}. *)
let mode_of_string = function
  | "traditional" -> Ok Splitc.Traditional_deferred
  | "split" -> Ok Splitc.Split
  | "pure-online" -> Ok Splitc.Pure_online
  | s ->
    Error
      (Printf.sprintf "unknown mode %s (valid modes: traditional, split, \
                       pure-online)" s)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Decode-time resource bounds: the defaults, overridden per flag. *)
let build_limits ?lanes ?regs ?globals ?annot_depth () : Pvir.Serial.limits =
  let d = Pvir.Serial.default_limits in
  {
    Pvir.Serial.max_vec_lanes =
      Option.value lanes ~default:d.Pvir.Serial.max_vec_lanes;
    max_regs = Option.value regs ~default:d.Pvir.Serial.max_regs;
    max_global_elems =
      Option.value globals ~default:d.Pvir.Serial.max_global_elems;
    max_annot_depth =
      Option.value annot_depth ~default:d.Pvir.Serial.max_annot_depth;
  }
