(** End-to-end driver for the split-compilation toolchain — the public
    face of the library.

    The paper's Figure 1 names two coordinated compilers: a
    µproc-independent offline compiler emitting annotated bytecode, and a
    µproc-specific online (JIT) compiler on the device.  {!offline},
    {!distribute} and {!online} are those arrows; {!run_source} strings
    them together for one-call use.

    Three compilation modes quantify the design space (experiment E2):

    - {!Traditional_deferred}: the pre-split status quo — the offline step
      drops target-dependent optimizations (no vectorization, no
      allocation hints); the online step is cheap but the code is scalar.
    - {!Split}: the paper's proposal — expensive analyses run offline and
      ship as portable vector builtins + annotations; the online step is
      as cheap as the traditional one but reaches aggressive-quality code.
    - {!Pure_online}: the upper bound a JIT could reach with an unbounded
      budget — every expensive pass runs on the device. *)

type mode = Traditional_deferred | Split | Pure_online

let mode_name = function
  | Traditional_deferred -> "traditional"
  | Split -> "split"
  | Pure_online -> "pure-online"

let all_modes = [ Traditional_deferred; Split; Pure_online ]

(** Result of the offline step: optimized bytecode plus the work spent. *)
type offline_result = {
  prog : Pvir.Prog.t;
  offline_work : Pvir.Account.t;
  vectorized : (string * Pvopt.Vectorize.result) list;
}

(** Result of the online step: a loaded simulator plus online work. *)
type online_result = {
  sim : Pvvm.Sim.t;
  online_work : Pvir.Account.t;
  jit : Pvjit.Jit.report;
  img : Pvvm.Image.t;
}

(** Compile MiniC source to (unoptimized, verified) bytecode. *)
let frontend ?(name = "program") (src : string) : Pvir.Prog.t =
  Minic.Lower.compile ~name src

(** Run the offline half of the chosen mode on bytecode [p] (in place on a
    copy; the input program is not modified). *)
let offline ?(mode = Split) (p : Pvir.Prog.t) : offline_result =
  let p = Pvir.Prog.copy p in
  let account = Pvir.Account.create () in
  let vectorized =
    match mode with
    | Traditional_deferred ->
      Pvopt.Passes.offline_traditional ~account p;
      []
    | Split -> Pvopt.Passes.offline_split ~account p
    | Pure_online ->
      (* nothing happens offline beyond verification *)
      Pvir.Verify.program p;
      []
  in
  { prog = p; offline_work = account; vectorized }

(** Serialize to the distribution format (what ships to devices). *)
let distribute (r : offline_result) : string = Pvir.Serial.encode r.prog

(** The on-device step: decode, verify, load, optimize (per mode), and JIT
    for [machine].  [bytecode] is the string produced by {!distribute}. *)
let online ?(mode = Split) ~(machine : Pvmach.Machine.t) ?(mem_size = 1 lsl 20)
    ?(engine = Pvvm.Sim.Threaded) (bytecode : string) : online_result =
  let account = Pvir.Account.create () in
  let p = Pvir.Serial.decode bytecode in
  let p, hints =
    match mode with
    | Traditional_deferred -> (p, Pvjit.Jit.Hints_none)
    | Split -> (p, Pvjit.Jit.Hints_annotation)
    | Pure_online ->
      (* the JIT must redo everything itself, at online prices *)
      ignore (Pvopt.Passes.online_full ~account p);
      (p, Pvjit.Jit.Hints_recompute)
  in
  let img = Pvvm.Image.load ~mem_size p in
  let sim, jit = Pvjit.Jit.compile_program ~account ~machine ~hints img in
  sim.Pvvm.Sim.engine <- engine;
  { sim; online_work = account; jit; img }

(** Interpret the bytecode instead of JIT-compiling it (the baseline
    execution mode of early virtual machines). *)
let interpret ?(mem_size = 1 lsl 20) ?(engine = Pvvm.Interp.Threaded)
    (bytecode : string) : Pvvm.Interp.t =
  let p = Pvir.Serial.decode bytecode in
  let img = Pvvm.Image.load ~mem_size p in
  Pvvm.Interp.create ~engine img

(** One call from source text to a device-resident simulator. *)
let run_source ?(mode = Split) ~(machine : Pvmach.Machine.t) ?mem_size ?engine
    (src : string) : offline_result * online_result =
  let off = offline ~mode (frontend src) in
  let on = online ~mode ~machine ?mem_size ?engine (distribute off) in
  (off, on)
