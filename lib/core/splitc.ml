(** End-to-end driver for the split-compilation toolchain — the public
    face of the library.

    The paper's Figure 1 names two coordinated compilers: a
    µproc-independent offline compiler emitting annotated bytecode, and a
    µproc-specific online (JIT) compiler on the device.  {!offline},
    {!distribute} and {!online} are those arrows; {!run_source} strings
    them together for one-call use.

    Three compilation modes quantify the design space (experiment E2):

    - {!Traditional_deferred}: the pre-split status quo — the offline step
      drops target-dependent optimizations (no vectorization, no
      allocation hints); the online step is cheap but the code is scalar.
    - {!Split}: the paper's proposal — expensive analyses run offline and
      ship as portable vector builtins + annotations; the online step is
      as cheap as the traditional one but reaches aggressive-quality code.
    - {!Pure_online}: the upper bound a JIT could reach with an unbounded
      budget — every expensive pass runs on the device. *)

type mode = Traditional_deferred | Split | Pure_online

let mode_name = function
  | Traditional_deferred -> "traditional"
  | Split -> "split"
  | Pure_online -> "pure-online"

let all_modes = [ Traditional_deferred; Split; Pure_online ]

(** Result of the offline step: optimized bytecode plus the work spent. *)
type offline_result = {
  prog : Pvir.Prog.t;
  offline_work : Pvir.Account.t;
  vectorized : (string * Pvopt.Vectorize.result) list;
}

(** Result of the online step: a loaded simulator plus online work. *)
type online_result = {
  sim : Pvvm.Sim.t;
  online_work : Pvir.Account.t;
  jit : Pvjit.Jit.report;
  img : Pvvm.Image.t;
}

(* Drive the trace's virtual clock from the work accountant of the
   current compilation phase: offline spans are timestamped by offline
   work units, online spans by online work units.  Bit-identical across
   runs and hosts. *)
let install_clock tr (account : Pvir.Account.t) =
  match tr with
  | None -> ()
  | Some tr ->
    Pvtrace.Trace.set_clock tr (fun () ->
        Int64.of_int (Pvir.Account.total account))

(** Compile MiniC source to (unoptimized, verified) bytecode. *)
let frontend ?(name = "program") ?tr (src : string) : Pvir.Prog.t =
  Pvtrace.Trace.with_span tr ~tid:Pvtrace.Trace.track_frontend
    ~args:[ ("name", name) ]
    ~cat:"frontend" "frontend"
    (fun () -> Minic.Lower.compile ~name src)

(** Run the offline half of the chosen mode on bytecode [p] (in place on a
    copy; the input program is not modified).  With telemetry sinks
    attached, every pass becomes a span on the offline track (virtual
    clock = offline work units) and the per-pass work breakdown lands in
    [metrics] under the [offline.] prefix. *)
let offline ?(mode = Split) ?tr ?metrics (p : Pvir.Prog.t) : offline_result =
  let p = Pvir.Prog.copy p in
  let account = Pvir.Account.create () in
  install_clock tr account;
  let span name f =
    Pvtrace.Trace.with_span tr ~tid:Pvtrace.Trace.track_offline
      ~args:[ ("mode", mode_name mode) ]
      ~cat:"offline" name f
  in
  let vectorized =
    span ("offline:" ^ mode_name mode) (fun () ->
        match mode with
        | Traditional_deferred ->
          Pvopt.Passes.offline_traditional ~account ?tr p;
          []
        | Split -> Pvopt.Passes.offline_split ~account ?tr p
        | Pure_online ->
          (* nothing happens offline beyond verification *)
          Pvir.Verify.program p;
          [])
  in
  Option.iter (Pvir.Account.to_metrics ~prefix:"offline" account) metrics;
  { prog = p; offline_work = account; vectorized }

(** Serialize to the distribution format (what ships to devices). *)
let distribute ?tr (r : offline_result) : string =
  Pvtrace.Trace.with_span tr ~tid:Pvtrace.Trace.track_distribute
    ~cat:"distribute" "serialize"
    (fun () -> Pvir.Serial.encode r.prog)

(* absorb the JIT's per-function verdicts and code-size totals *)
let jit_metrics (m : Pvtrace.Metrics.t) (jit : Pvjit.Jit.report) =
  List.iter
    (fun (fr : Pvjit.Jit.func_report) ->
      Pvtrace.Metrics.inci m "online.jit.funcs" 1;
      Pvtrace.Metrics.inci m "online.jit.native_size" fr.mir_size;
      Pvtrace.Metrics.inci m
        ("online.jit.annot_"
        ^ Pvjit.Annot_check.status_name fr.annot_status)
        1)
    jit.Pvjit.Jit.funcs

(** The on-device step: decode, verify, load, optimize (per mode), and JIT
    for [machine].  [bytecode] is the string produced by {!distribute}.
    [limits] bounds the untrusted decode (default
    {!Pvir.Serial.default_limits}).  With telemetry sinks attached the
    decode/load/JIT phases become spans (virtual clock = online work
    units), JIT degradations land in [ledger], and the returned simulator
    carries [tr] so its runs appear on the VM track. *)
let online ?(mode = Split) ~(machine : Pvmach.Machine.t) ?(mem_size = 1 lsl 20)
    ?alloc_limit ?(engine = Pvvm.Sim.Threaded) ?limits ?tr ?metrics ?ledger
    (bytecode : string) : online_result =
  let account = Pvir.Account.create () in
  install_clock tr account;
  let span ~tid name f = Pvtrace.Trace.with_span tr ~tid ~cat:"online" name f in
  let p =
    span ~tid:Pvtrace.Trace.track_distribute "decode" (fun () ->
        Pvir.Serial.decode ?limits bytecode)
  in
  let p, hints =
    match mode with
    | Traditional_deferred -> (p, Pvjit.Jit.Hints_none)
    | Split -> (p, Pvjit.Jit.Hints_annotation)
    | Pure_online ->
      (* the JIT must redo everything itself, at online prices *)
      ignore (Pvopt.Passes.online_full ~account ?tr p);
      (p, Pvjit.Jit.Hints_recompute)
  in
  let img =
    span ~tid:Pvtrace.Trace.track_jit "load" (fun () ->
        Pvvm.Image.load ~mem_size ?alloc_limit p)
  in
  let sim, jit =
    span ~tid:Pvtrace.Trace.track_jit "jit" (fun () ->
        Pvjit.Jit.compile_program ~account ?tr ?ledger ~machine ~hints img)
  in
  if engine = Pvvm.Sim.Aot then Pvaot.install ?ledger ();
  sim.Pvvm.Sim.engine <- engine;
  Pvvm.Sim.set_trace sim tr;
  Option.iter
    (fun m ->
      Pvir.Account.to_metrics ~prefix:"online" account m;
      jit_metrics m jit)
    metrics;
  { sim; online_work = account; jit; img }

(** Interpret the bytecode instead of JIT-compiling it (the baseline
    execution mode of early virtual machines).  The returned interpreter
    carries [tr], [profile] and [sampler], so its runs appear on the VM
    track and feed the instruction-mix metrics or the sampling
    profiler. *)
let interpret ?(mem_size = 1 lsl 20) ?alloc_limit
    ?(engine = Pvvm.Interp.Threaded) ?limits ?profile ?sampler ?tr ?ledger
    (bytecode : string) : Pvvm.Interp.t =
  let p =
    Pvtrace.Trace.with_span tr ~tid:Pvtrace.Trace.track_distribute
      ~cat:"online" "decode"
      (fun () -> Pvir.Serial.decode ?limits bytecode)
  in
  if engine = Pvvm.Interp.Aot then Pvaot.install ?ledger ();
  let img = Pvvm.Image.load ~mem_size ?alloc_limit p in
  Pvvm.Interp.create ~engine ?profile ?sampler ?tr img

(** One call from source text to a device-resident simulator. *)
let run_source ?(mode = Split) ~(machine : Pvmach.Machine.t) ?mem_size ?engine
    ?limits ?tr ?metrics ?ledger (src : string) :
    offline_result * online_result =
  let off = offline ~mode ?tr ?metrics (frontend ?tr src) in
  let on =
    online ~mode ~machine ?mem_size ?engine ?limits ?tr ?metrics ?ledger
      (distribute ?tr off)
  in
  (off, on)

(** {1 Error taxonomy}

    Every failure a distribution pipeline can hit, as one typed sum.  The
    library layers raise their own exceptions (decoder {!Pvir.Serial.Corrupt},
    verifier {!Pvir.Verify.Error}, VM {!Pvvm.Interp.Trap}, ...); drivers and
    tools want a single vocabulary with stable process exit codes, and they
    want it *total* — no raw exception (and no backtrace) may escape to an
    end user on any input, however hostile. *)

type error =
  | Frontend_error of string  (** MiniC lex/parse/type error (exit 2) *)
  | Decode_error of Pvir.Serial.corruption
      (** malformed distribution bytes (exit 3) *)
  | Verify_error of string  (** well-formed but ill-typed PVIR (exit 4) *)
  | Link_error of string  (** module linking failed (exit 5) *)
  | Jit_error of string  (** online compilation failed (exit 6) *)
  | Runtime_trap of string  (** guest program trapped (exit 7) *)
  | Resource_limit of string
      (** fuel or memory budget exhausted (exit 8) *)
  | Io_error of string  (** host file system error (exit 9) *)

let error_message = function
  | Frontend_error m -> Printf.sprintf "frontend error: %s" m
  | Decode_error c ->
    Printf.sprintf "corrupt bytecode: %s" (Pvir.Serial.corruption_to_string c)
  | Verify_error m -> Printf.sprintf "verification failed: %s" m
  | Link_error m -> Printf.sprintf "link error: %s" m
  | Jit_error m -> Printf.sprintf "online compilation error: %s" m
  | Runtime_trap m -> Printf.sprintf "trap: %s" m
  | Resource_limit m -> Printf.sprintf "resource limit: %s" m
  | Io_error m -> Printf.sprintf "i/o error: %s" m

(* Exit codes: 0 ok, 1 unexpected, 2.. the taxonomy below.  The range stays
   clear of 123-125, which cmdliner reserves for its own failures. *)
let exit_code = function
  | Frontend_error _ -> 2
  | Decode_error _ -> 3
  | Verify_error _ -> 4
  | Link_error _ -> 5
  | Jit_error _ -> 6
  | Runtime_trap _ -> 7
  | Resource_limit _ -> 8
  | Io_error _ -> 9

(** Classify an exception raised anywhere in the pipeline.  [None] means
    the exception is not part of the pipeline's failure surface (a genuine
    bug) and should propagate. *)
let classify : exn -> error option = function
  | Minic.Lexer.Error m | Minic.Parser.Error m | Minic.Check.Error m
  | Minic.Lower.Error m ->
    Some (Frontend_error m)
  | Pvir.Serial.Corrupt c -> Some (Decode_error c)
  | Pvir.Verify.Error m -> Some (Verify_error m)
  (* a snapshot is untrusted input too: a decodable checkpoint whose
     state contradicts the program fails validation, not decode *)
  | Pvvm.Snapshot.Invalid m -> Some (Verify_error ("snapshot: " ^ m))
  | Pvir.Link.Error m -> Some (Link_error m)
  | Pvjit.Regalloc.Error m -> Some (Jit_error m)
  | Pvvm.Interp.Trap m when String.equal m Pvvm.Interp.fuel_exhausted_msg ->
    Some (Resource_limit m)
  | Pvvm.Sim.Trap m when String.equal m Pvvm.Sim.fuel_exhausted_msg ->
    Some (Resource_limit m)
  | Pvvm.Memory.Limit m -> Some (Resource_limit m)
  | Pvvm.Interp.Trap m | Pvvm.Sim.Trap m -> Some (Runtime_trap m)
  | Pvvm.Memory.Fault m -> Some (Runtime_trap ("memory fault: " ^ m))
  | Sys_error m -> Some (Io_error m)
  | _ -> None

(** Run [f] and fold any pipeline exception into the taxonomy.  Unknown
    exceptions still propagate: swallowing them would hide real bugs. *)
let guard (f : unit -> 'a) : ('a, error) result =
  match f () with
  | v -> Ok v
  | exception e -> ( match classify e with Some err -> Error err | None -> raise e)

(** {1 Result-typed driver API} — the exception-free face of the pipeline,
    for embedders that want every failure as a value. *)

let frontend_result ?name ?tr src = guard (fun () -> frontend ?name ?tr src)

let offline_result_r ?mode ?tr ?metrics p =
  guard (fun () -> offline ?mode ?tr ?metrics p)

let online_r ?mode ~machine ?mem_size ?alloc_limit ?engine ?limits ?tr
    ?metrics ?ledger bytecode =
  guard (fun () ->
      online ?mode ~machine ?mem_size ?alloc_limit ?engine ?limits ?tr
        ?metrics ?ledger bytecode)

let interpret_r ?mem_size ?alloc_limit ?engine ?limits ?profile ?sampler ?tr
    ?ledger bytecode =
  guard (fun () ->
      interpret ?mem_size ?alloc_limit ?engine ?limits ?profile ?sampler ?tr
        ?ledger bytecode)

let run_source_r ?mode ~machine ?mem_size ?engine ?limits ?tr ?metrics ?ledger
    src =
  guard (fun () ->
      run_source ?mode ~machine ?mem_size ?engine ?limits ?tr ?metrics ?ledger
        src)
