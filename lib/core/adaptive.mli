(** Adaptive optimization across program runs — the paper's §2.2
    (idle-time re-optimization) and §4 (iterative compilation driven by
    the virtual machine monitor).

    Works on *raw* bytecode (a {!Splitc.Pure_online} distribution): the
    device owns every optimization decision and resolves the
    target-dependent ones — vectorize or not, unroll by how much — by
    measuring candidate configurations on its own simulator during idle
    time, seeded by the execution profile of earlier runs. *)

(** One point in the optimization space the iterative search explores. *)
type config = { vectorize : bool; unroll : int  (** 1 = no unrolling *) }

val config_label : config -> string

(** The default search space: scalar/vectorized x unroll {1,2,4,8}. *)
val default_configs : config list

(** Apply a configuration to a fresh copy of decision-open bytecode
    (cleanup, inlining, LICM, optional vectorization, strength reduction,
    optional unrolling, regalloc annotations).  The result verifies.
    With a trace sink, the tuning pipeline becomes one span (category
    [adaptive]). *)
val apply_config :
  ?account:Pvir.Account.t ->
  ?tr:Pvtrace.Trace.t ->
  config ->
  Pvir.Prog.t ->
  Pvir.Prog.t

(** Result of measuring one configuration. *)
type sample = {
  config : config;
  cycles : int64;
  compile_work : int;
  degradations : int;
      (** graceful-fallback events (annotation rejects, remaps) this
          configuration triggered, from the degradation ledger; 0 when no
          ledger was attached *)
  result : Pvir.Value.t option;
}

(** JIT a program for [machine] and measure one run of [entry args];
    [prepare] fills the inputs after loading.  JIT degradations land in
    [ledger]; the measured simulator carries [tr]. *)
val measure :
  ?account:Pvir.Account.t ->
  ?tr:Pvtrace.Trace.t ->
  ?ledger:Pvtrace.Ledger.t ->
  machine:Pvmach.Machine.t ->
  prepare:(Pvvm.Image.t -> unit) ->
  entry:string ->
  args:Pvir.Value.t list ->
  Pvir.Prog.t ->
  int64 * Pvir.Value.t option

(** Measure every configuration; the returned list is sorted best
    (fewest cycles) first.  All candidates must agree on the observable
    result — a mismatch raises [Failure].  With a [ledger], each sample
    reports the graceful degradations its configuration triggered. *)
val search :
  ?configs:config list ->
  ?tr:Pvtrace.Trace.t ->
  ?ledger:Pvtrace.Ledger.t ->
  machine:Pvmach.Machine.t ->
  prepare:(Pvvm.Image.t -> unit) ->
  entry:string ->
  args:Pvir.Value.t list ->
  Pvir.Prog.t ->
  sample list

(** One generation of the adaptive lifecycle. *)
type generation = {
  gen : int;
  glabel : string;
  exec_cycles : int64;
  gcompile_work : int;  (** work paid to reach this generation *)
}

(** Play the three-generation lifecycle (interpret + profile, quick JIT,
    idle-time tuned) for [entry] on [machine].  The bytecode must be the
    raw (pure-online) distribution. *)
val generations :
  ?configs:config list ->
  ?tr:Pvtrace.Trace.t ->
  ?ledger:Pvtrace.Ledger.t ->
  machine:Pvmach.Machine.t ->
  prepare:(Pvvm.Image.t -> unit) ->
  entry:string ->
  args:Pvir.Value.t list ->
  string ->
  generation list

(** The sampled lifecycle: generation 0 interprets under the
    {!Pvprof} sampling profiler (period [period] virtual cycles) instead
    of the exhaustive per-block counter, feeds the sampled hotness back
    through the same annotation key, and additionally returns the re-JIT
    hot set — the smallest weight-ranked prefix of functions covering at
    least [hot_coverage] (default 0.9) of the sampled cycle weight.
    Generations 1 and 2 are identical to {!generations}.  With a trace
    sink, the retained samples are merged onto the profiler track. *)
val generations_sampled :
  ?configs:config list ->
  ?tr:Pvtrace.Trace.t ->
  ?ledger:Pvtrace.Ledger.t ->
  ?period:int64 ->
  ?hot_coverage:float ->
  machine:Pvmach.Machine.t ->
  prepare:(Pvvm.Image.t -> unit) ->
  entry:string ->
  args:Pvir.Value.t list ->
  string ->
  generation list * string list
