(** Deterministic load generator: a simulated fleet of heterogeneous
    devices hammering the split-compilation service.

    The request population is the cross product of a program corpus
    (Table-1 + extra kernels through the offline Split pipeline, plus
    {!Pvcheck.Gen} random programs) and a set of machine descriptors.
    Millions of users induce a heavy-tailed popularity distribution over
    that population, modelled as Zipf(s): the rank-r item is requested
    with probability proportional to [1/r^s].  Rank is decoupled from
    corpus order by a seeded shuffle so popularity does not accidentally
    correlate with program size.

    Everything is driven by a splitmix64 stream from [spec.seed], so a
    run is reproducible bit-for-bit — which is what lets the oracle
    demand byte-identical artifacts.

    The oracle (on by default): every served artifact for a key must be
    byte-identical to (a) every other reply for that key and (b) a fresh
    single-threaded compile of the same request on the coordinating
    domain.  Tracing happens here, on the coordinator, never in the
    workers ({!Pvtrace.Trace} is not domain-safe): one span per
    submission window plus running hit-rate counter samples. *)

type spec = {
  requests : int;
  workers : int;
  zipf : float;  (** popularity exponent [s]; 0 = uniform *)
  seed : int;
  queue_capacity : int;
  cache_budget : int;  (** artifact-cache byte budget *)
  machines : Pvmach.Machine.t list;
  gen_seeds : int list;  (** extra corpus from {!Pvcheck.Gen.program} *)
  window : int;  (** requests submitted before draining replies *)
  oracle : bool;
}

let default_spec =
  {
    requests = 10_000;
    workers = 4;
    zipf = 1.0;
    seed = 42;
    queue_capacity = 256;
    cache_budget = 1 lsl 22;
    machines = Pvmach.Machine.all;
    gen_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    window = 64;
    oracle = true;
  }

type report = {
  r_requests : int;
  r_population : int;  (** corpus x machines *)
  r_unique_keys : int;  (** distinct keys actually requested *)
  r_hits : int;
  r_compiled : int;
  r_coalesced : int;
  r_compiles : int;  (** worker compiles (= unique keys when nothing evicts) *)
  r_evictions : int;
  r_errors : int;
  r_hit_rate : float;  (** hits / requests *)
  r_oracle_mismatches : int;
  r_wall_s : float;
  r_throughput_rps : float;
}

(* ---------------- deterministic randomness ---------------- *)

let splitmix64 (st : int64 ref) : int64 =
  st := Int64.add !st 0x9E3779B97F4A7C15L;
  let z = !st in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform in [0,1): top 53 bits over 2^53 *)
let uniform st =
  Int64.to_float (Int64.shift_right_logical (splitmix64 st) 11)
  /. 9007199254740992.0

let shuffle st arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Int64.to_int (Int64.rem (splitmix64 st) (Int64.of_int (i + 1))) in
    let j = abs j in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* ---------------- corpus ---------------- *)

(** Build the program corpus as distribution bytecode: every kernel and
    every generated program runs through the offline Split optimizer (so
    requests carry real annotation sets) and {!Core.Splitc.distribute}.
    Generated programs the pipeline rejects are skipped — the corpus
    must be whatever survives the real offline path. *)
let corpus ~gen_seeds () : (string * string) list =
  let kernels =
    List.map
      (fun (k : Pvkernels.Kernels.t) ->
        let p =
          Core.Splitc.frontend ~name:k.Pvkernels.Kernels.name
            k.Pvkernels.Kernels.source
        in
        ( k.Pvkernels.Kernels.name,
          Core.Splitc.distribute (Core.Splitc.offline ~mode:Core.Splitc.Split p)
        ))
      Pvkernels.Kernels.all
  in
  let generated =
    List.filter_map
      (fun seed ->
        match
          let p = Pvcheck.Gen.program ~seed in
          Core.Splitc.distribute (Core.Splitc.offline ~mode:Core.Splitc.Split p)
        with
        | bc -> Some (Printf.sprintf "gen-%d" seed, bc)
        | exception _ -> None)
      gen_seeds
  in
  kernels @ generated

(* ---------------- zipf popularity ---------------- *)

(* Cumulative weights over [n] ranks; sample by binary search. *)
let zipf_cumulative ~s n =
  let cum = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) s);
    cum.(r) <- !total
  done;
  cum

let sample_rank cum st =
  let n = Array.length cum in
  let u = uniform st *. cum.(n - 1) in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

(* ---------------- the run ---------------- *)

type item = {
  i_name : string;
  i_bytecode : string;
  i_machine : Pvmach.Machine.t;
  i_key : string;
}

let run ?tr ?(metrics = Pvtrace.Metrics.create ()) ?ledger (spec : spec) :
    report =
  if spec.requests <= 0 then invalid_arg "Load.run: requests must be positive";
  if spec.machines = [] then invalid_arg "Load.run: no machines";
  let progs = corpus ~gen_seeds:spec.gen_seeds () in
  let population =
    Array.of_list
      (List.concat_map
         (fun (name, bc) ->
           List.map
             (fun m ->
               let key =
                 match Pvir.Serial.decode_result bc with
                 | Ok p -> Key.to_string (Key.of_program ~machine:m p)
                 | Error _ -> assert false (* we just encoded it *)
               in
               {
                 i_name = name;
                 i_bytecode = bc;
                 i_machine = m;
                 i_key = key;
               })
             spec.machines)
         progs)
  in
  let st = ref (Int64.of_int spec.seed) in
  shuffle st population;
  let cum = zipf_cumulative ~s:spec.zipf (Array.length population) in
  let svc =
    Service.create ?ledger ~metrics ~queue_capacity:spec.queue_capacity
      ~cache_budget:spec.cache_budget ~workers:spec.workers ()
  in
  (* first Ok artifact seen per key; later replies must match it *)
  let first_artifact : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let requested : (string, item) Hashtbl.t = Hashtbl.create 64 in
  let hits = ref 0
  and compiled = ref 0
  and coalesced = ref 0
  and errors = ref 0
  and mismatches = ref 0 in
  let serve_reply (it : item) (r : Service.reply) =
    (match r.Service.origin with
    | Service.Hit -> incr hits
    | Service.Compiled -> incr compiled
    | Service.Coalesced -> incr coalesced);
    match r.Service.outcome with
    | Error _ -> incr errors
    | Ok artifact -> (
      match Hashtbl.find_opt first_artifact it.i_key with
      | None -> Hashtbl.replace first_artifact it.i_key artifact
      | Some a0 -> if not (String.equal a0 artifact) then incr mismatches)
  in
  let t0 = Unix.gettimeofday () in
  let submitted = ref 0 in
  let wi = ref 0 in
  while !submitted < spec.requests do
    let n = min spec.window (spec.requests - !submitted) in
    incr wi;
    Pvtrace.Trace.with_span tr ~cat:"load"
      ~args:[ ("requests", string_of_int n) ]
      (Printf.sprintf "window:%d" !wi)
      (fun () ->
        let batch =
          List.init n (fun _ ->
              let it = population.(sample_rank cum st) in
              Hashtbl.replace requested it.i_key it;
              ( it,
                Service.submit svc
                  {
                    Service.bytecode = it.i_bytecode;
                    Service.machine = it.i_machine;
                  } ))
        in
        List.iter (fun (it, tk) -> serve_reply it (Service.await tk)) batch);
    submitted := !submitted + n;
    Option.iter
      (fun tr ->
        (* counter values are int64; scale the rate to basis points *)
        Pvtrace.Trace.counter tr ~cat:"load" "hit-rate"
          [ ("hit_bp", Int64.of_int (10_000 * !hits / !submitted)) ])
      tr
  done;
  Service.shutdown svc;
  let wall = Unix.gettimeofday () -. t0 in
  (* oracle second half: fresh single-threaded compiles must reproduce
     every served artifact byte-for-byte *)
  if spec.oracle then
    Hashtbl.iter
      (fun key (it : item) ->
        match
          ( Hashtbl.find_opt first_artifact key,
            Service.compile_artifact ~machine:it.i_machine it.i_bytecode )
        with
        | Some served, Ok fresh ->
          if not (String.equal served fresh) then incr mismatches
        | Some _, Error _ -> incr mismatches
        | None, _ -> ()  (* every reply for this key errored *))
      requested;
  let cs = Service.cache_stats svc in
  let requests = spec.requests in
  {
    r_requests = requests;
    r_population = Array.length population;
    r_unique_keys = Hashtbl.length requested;
    r_hits = !hits;
    r_compiled = !compiled;
    r_coalesced = !coalesced;
    r_compiles = Service.compile_count svc;
    r_evictions = cs.Cache.s_evictions;
    r_errors = !errors;
    r_hit_rate = float_of_int !hits /. float_of_int requests;
    r_oracle_mismatches = !mismatches;
    r_wall_s = wall;
    r_throughput_rps = float_of_int requests /. wall;
  }

let report_to_string r =
  Printf.sprintf
    "requests=%d population=%d unique-keys=%d hits=%d compiled=%d \
     coalesced=%d compiles=%d evictions=%d errors=%d hit-rate=%.4f \
     oracle-mismatches=%d wall=%.3fs throughput=%.0f req/s"
    r.r_requests r.r_population r.r_unique_keys r.r_hits r.r_compiled
    r.r_coalesced r.r_compiles r.r_evictions r.r_errors r.r_hit_rate
    r.r_oracle_mismatches r.r_wall_s r.r_throughput_rps
