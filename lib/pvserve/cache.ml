(** Compiled-artifact cache: content-addressed, LRU-evicted under a byte
    budget, safe to share across {!Domain}s.

    The table maps {!Key.to_string} keys to artifact strings.  Recency is
    a logical tick bumped on every hit/insert; eviction linearly scans
    for the minimum tick, which is plenty at service cache sizes (a few
    hundred artifacts) and keeps the structure obviously correct.  Every
    eviction is written to the degradation ledger — an evicted artifact
    is invisible to callers (the next request recompiles identically)
    but the aggregate is exactly the kind of silent quality loss the
    ledger exists to make visible. *)

type entry = {
  artifact : string;
  abytes : int;
  mutable last_used : int;  (** logical tick of last hit/insert *)
}

type t = {
  tbl : (string, entry) Hashtbl.t;
  mu : Mutex.t;
  budget : int;  (** byte budget over stored artifacts *)
  ledger : Pvtrace.Ledger.t option;
  mutable tick : int;
  mutable bytes : int;
  mutable evictions : int;
}

type stats = { s_entries : int; s_bytes : int; s_evictions : int }

let create ?ledger ~budget_bytes () =
  if budget_bytes <= 0 then invalid_arg "Cache.create: budget must be positive";
  {
    tbl = Hashtbl.create 64;
    mu = Mutex.create ();
    budget = budget_bytes;
    ledger;
    tick = 0;
    bytes = 0;
    evictions = 0;
  }

let protect t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

let find t key =
  protect t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> None
      | Some e ->
        t.tick <- t.tick + 1;
        e.last_used <- t.tick;
        Some e.artifact)

(* Evict least-recently-used entries until [t.bytes <= t.budget].  Called
   under [t.mu]; the ledger has its own lock and is only ever taken after
   ours, so the ordering is acyclic. *)
let evict_to_budget t =
  while t.bytes > t.budget && Hashtbl.length t.tbl > 0 do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (k, e))
        t.tbl None
    in
    match victim with
    | None -> ()
    | Some (k, e) ->
      Hashtbl.remove t.tbl k;
      t.bytes <- t.bytes - e.abytes;
      t.evictions <- t.evictions + 1;
      Pvtrace.Ledger.record_opt t.ledger (Pvtrace.Ledger.Other "cache-evict")
        ~subject:k
        ~detail:
          (Printf.sprintf "%dB evicted at tick %d (budget %dB)" e.abytes
             t.tick t.budget)
  done

(** Insert (or refresh) [key -> artifact], then evict LRU entries until
    the byte budget holds again.  An artifact larger than the whole
    budget still serves its waiters — it just lives alone and is evicted
    by the next insert. *)
let insert t key artifact =
  protect t (fun () ->
      (match Hashtbl.find_opt t.tbl key with
      | Some old -> t.bytes <- t.bytes - old.abytes
      | None -> ());
      t.tick <- t.tick + 1;
      let e =
        { artifact; abytes = String.length artifact; last_used = t.tick }
      in
      Hashtbl.replace t.tbl key e;
      t.bytes <- t.bytes + e.abytes;
      evict_to_budget t)

let stats t =
  protect t (fun () ->
      {
        s_entries = Hashtbl.length t.tbl;
        s_bytes = t.bytes;
        s_evictions = t.evictions;
      })
