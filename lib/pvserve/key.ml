(** Content-addressed cache keys for the split-compilation service.

    A compiled artifact is a pure function of three inputs, so the key is
    the triple of their digests:

    - the PVIR program {e code} — pretty-printed with every annotation
      surface stripped first, so that re-annotating a program moves only
      the annotation digest;
    - the machine descriptor — {!Pvmach.Machine.descriptor_dump}, i.e.
      register files, SIMD shape, capabilities and the full cost table
      (the name alone would not survive a descriptor edit);
    - the annotation set — {!Pvir.Prog.annotations_dump}, the canonical
      dump of program/global/function/loop annotations.  This component
      exists because the pretty-printer never renders global annotations:
      without it, two requests differing only in annotations collide and
      the second tenant is served the first one's artifact. *)

type t = {
  pvir : string;  (** digest of the annotation-stripped program text *)
  machine : string;  (** digest of the machine descriptor *)
  annots : string;  (** digest of the canonical annotation dump *)
}

let hex s = Digest.to_hex (Digest.string s)

(* Strip every annotation surface on a copy; [Prog.copy] shares globals,
   so rebuild those records too. *)
let strip_annotations (p : Pvir.Prog.t) : Pvir.Prog.t =
  let p' = Pvir.Prog.copy p in
  p'.Pvir.Prog.annots <- Pvir.Annot.empty;
  p'.Pvir.Prog.globals <-
    List.map
      (fun g -> { g with Pvir.Prog.gannots = Pvir.Annot.empty })
      p'.Pvir.Prog.globals;
  List.iter
    (fun (fn : Pvir.Func.t) ->
      fn.Pvir.Func.annots <- Pvir.Annot.empty;
      fn.Pvir.Func.loop_annots <- [])
    p'.Pvir.Prog.funcs;
  p'

let of_program ~(machine : Pvmach.Machine.t) (p : Pvir.Prog.t) : t =
  {
    pvir = hex (Pvir.Pp.program_to_string (strip_annotations p));
    machine = hex (Pvmach.Machine.descriptor_dump machine);
    annots = hex (Pvir.Prog.annotations_dump p);
  }

(** Flat form used as hash-table key and in artifact headers. *)
let to_string k = Printf.sprintf "%s/%s/%s" k.pvir k.machine k.annots
