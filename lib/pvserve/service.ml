(** The split-compilation service: a pool of {!Domain} JIT workers behind
    a bounded request queue, fronted by the content-addressed artifact
    cache with in-flight deduplication.

    A request carries distribution bytecode (what a device would upload)
    plus the machine descriptor to compile for.  A worker decodes it,
    derives the {!Key.t}, and then takes exactly one of three paths:

    - {b hit} — the artifact is in the cache; reply immediately;
    - {b miss, first} — mark the key in-flight, compile {e outside} the
      service lock, insert, reply, and wake every waiter that piled up
      behind the same key meanwhile;
    - {b miss, coalesced} — the key is already in flight; park the ticket
      on the in-flight waiter list and move on to the next job.  N
      concurrent misses on one key therefore cost exactly one compile.

    Locking protocol (acyclic, in acquisition order): the queue lock
    covers only the job queue; [smu] covers the cache-lookup/in-flight
    decision (and may take the cache's internal lock below it); the
    compile itself runs lock-free.  Replies are fulfilled through a
    per-ticket mutex+condvar, so callers block only on their own ticket.

    The per-process trace ({!Pvtrace.Trace}) is {e not} domain-safe and
    is deliberately absent here: tracing of a load run happens on the
    coordinating domain only (see {!Load}). *)

type request = {
  bytecode : string;  (** distribution-format bytecode, untrusted *)
  machine : Pvmach.Machine.t;
}

type origin =
  | Hit  (** served from cache *)
  | Compiled  (** this request triggered the compile *)
  | Coalesced  (** waited on another request's in-flight compile *)

let origin_name = function
  | Hit -> "hit"
  | Compiled -> "compiled"
  | Coalesced -> "coalesced"

type reply = {
  outcome : (string, string) result;  (** artifact text, or error *)
  origin : origin;
}

type ticket = {
  req : request;
  tmu : Mutex.t;
  tcv : Condition.t;
  mutable treply : reply option;
}

type job = Job of ticket | Quit

type t = {
  cache : Cache.t;
  metrics : Pvtrace.Metrics.t;
  ledger : Pvtrace.Ledger.t option;
  (* bounded job queue *)
  queue : job Queue.t;
  capacity : int;
  qmu : Mutex.t;
  qnonempty : Condition.t;
  qnonfull : Condition.t;
  (* cache-lookup / in-flight decision *)
  smu : Mutex.t;
  inflight : (string, ticket list ref) Hashtbl.t;
  compiles : int Atomic.t;  (** exact compile count, asserted by tests *)
  mutable workers : unit Domain.t list;
}

(* ------------------------------------------------------------------ *)
(* Compilation proper (pure w.r.t. service state)                      *)

(* Deterministic text rendering of a compile result: header, key, then
   every function's MIR sorted by name.  Byte-equality of two artifacts
   is the service's correctness oracle, so nothing non-deterministic
   (timestamps, hash order) may leak in here. *)
let render_artifact ~(machine : Pvmach.Machine.t) (key : Key.t)
    (sim : Pvvm.Sim.t) (report : Pvjit.Jit.report) : string =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "pvserve-artifact v1\nmachine %s\nkey %s\n"
    machine.Pvmach.Machine.name (Key.to_string key);
  let funcs =
    List.sort
      (fun (a : Pvjit.Jit.func_report) b ->
        String.compare a.Pvjit.Jit.fname b.Pvjit.Jit.fname)
      report.Pvjit.Jit.funcs
  in
  Printf.bprintf buf "funcs %d\n" (List.length funcs);
  List.iter
    (fun (fr : Pvjit.Jit.func_report) ->
      Printf.bprintf buf "func %s spills=%d/%d annots=%s mir=%d\n"
        fr.Pvjit.Jit.fname fr.Pvjit.Jit.ra.Pvjit.Regalloc.spilled_regs
        fr.Pvjit.Jit.ra.Pvjit.Regalloc.spill_instrs
        (Pvjit.Annot_check.status_name fr.Pvjit.Jit.annot_status)
        fr.Pvjit.Jit.mir_size;
      match Hashtbl.find_opt sim.Pvvm.Sim.code fr.Pvjit.Jit.fname with
      | Some ce -> Buffer.add_string buf
          (Pvmach.Mir.func_to_string ce.Pvvm.Sim.cfn)
      | None -> Printf.bprintf buf "  <no code>\n")
    funcs;
  Buffer.contents buf

(** Decode, load and JIT-compile [bytecode] for [machine] — the work a
    cache miss pays.  Also the single-threaded oracle: the load
    generator recompiles served keys through this very function and
    demands byte-identical artifacts. *)
let compile_artifact ~(machine : Pvmach.Machine.t) (bytecode : string) :
    (string, string) result =
  match Pvir.Serial.decode_result bytecode with
  | Error c -> Error ("decode: " ^ Pvir.Serial.corruption_to_string c)
  | Ok prog -> (
    let key = Key.of_program ~machine prog in
    match
      let img = Pvvm.Image.load prog in
      Pvjit.Jit.compile_program ~machine ~hints:Pvjit.Jit.Hints_annotation img
    with
    | sim, report -> Ok (render_artifact ~machine key sim report)
    | exception e -> Error ("compile: " ^ Printexc.to_string e))

(* ------------------------------------------------------------------ *)
(* Tickets                                                             *)

let fulfill (tk : ticket) (r : reply) =
  Mutex.lock tk.tmu;
  tk.treply <- Some r;
  Condition.broadcast tk.tcv;
  Mutex.unlock tk.tmu

(** Block until the ticket's request has been answered. *)
let await (tk : ticket) : reply =
  Mutex.lock tk.tmu;
  let rec wait () =
    match tk.treply with
    | Some r ->
      Mutex.unlock tk.tmu;
      r
    | None ->
      Condition.wait tk.tcv tk.tmu;
      wait ()
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* Worker loop                                                         *)

let protect mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let reply_metrics t (r : reply) =
  Pvtrace.Metrics.inc1 t.metrics ("serve." ^ origin_name r.origin);
  match r.outcome with
  | Ok _ -> ()
  | Error _ -> Pvtrace.Metrics.inc1 t.metrics "serve.errors"

let serve_job t (tk : ticket) =
  let machine = tk.req.machine in
  (* Derive the key outside any lock: decoding is per-request work. *)
  match Pvir.Serial.decode_result tk.req.bytecode with
  | Error c ->
    let r =
      {
        outcome = Error ("decode: " ^ Pvir.Serial.corruption_to_string c);
        origin = Compiled;
      }
    in
    reply_metrics t r;
    fulfill tk r
  | Ok prog -> (
    let key = Key.to_string (Key.of_program ~machine prog) in
    (* One critical section decides hit / first-miss / coalesce, so two
       concurrent misses on one key can never both elect to compile. *)
    let decision =
      protect t.smu (fun () ->
          match Cache.find t.cache key with
          | Some artifact -> `Hit artifact
          | None -> (
            match Hashtbl.find_opt t.inflight key with
            | Some waiters ->
              waiters := tk :: !waiters;
              `Parked
            | None ->
              Hashtbl.replace t.inflight key (ref []);
              `Compile))
    in
    match decision with
    | `Hit artifact ->
      let r = { outcome = Ok artifact; origin = Hit } in
      reply_metrics t r;
      fulfill tk r
    | `Parked -> ()  (* the compiling worker will fulfill this ticket *)
    | `Compile ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        match
          let img = Pvvm.Image.load prog in
          Pvjit.Jit.compile_program ~machine
            ~hints:Pvjit.Jit.Hints_annotation img
        with
        | sim, report ->
          Ok
            (render_artifact ~machine
               (Key.of_program ~machine prog)
               sim report)
        | exception e -> Error ("compile: " ^ Printexc.to_string e)
      in
      Atomic.incr t.compiles;
      Pvtrace.Metrics.inc1 t.metrics "serve.compiles";
      Pvtrace.Metrics.observe t.metrics "serve.compile_us"
        (Int64.of_float ((Unix.gettimeofday () -. t0) *. 1_000_000.));
      (* Publish before unparking: insert on success, then claim the
         waiter list and drop the in-flight mark in the same critical
         section that decided it. *)
      let waiters =
        protect t.smu (fun () ->
            (match outcome with
            | Ok artifact -> Cache.insert t.cache key artifact
            | Error _ -> ());
            let ws =
              match Hashtbl.find_opt t.inflight key with
              | Some ws -> !ws
              | None -> []
            in
            Hashtbl.remove t.inflight key;
            ws)
      in
      let self = { outcome; origin = Compiled } in
      reply_metrics t self;
      fulfill tk self;
      List.iter
        (fun w ->
          let r = { outcome; origin = Coalesced } in
          reply_metrics t r;
          fulfill w r)
        (List.rev waiters);
      let cs = Cache.stats t.cache in
      Pvtrace.Metrics.seti t.metrics "serve.cache_bytes" cs.Cache.s_bytes;
      Pvtrace.Metrics.seti t.metrics "serve.evictions"
        cs.Cache.s_evictions)

let worker_loop t () =
  let rec next () =
    let job =
      protect t.qmu (fun () ->
          while Queue.is_empty t.queue do
            Condition.wait t.qnonempty t.qmu
          done;
          let j = Queue.pop t.queue in
          Condition.signal t.qnonfull;
          j)
    in
    match job with
    | Quit -> ()
    | Job tk ->
      (* A worker must never die: any escape would strand its ticket and
         every future job.  Unexpected exceptions become error replies. *)
      (try serve_job t tk
       with e ->
         fulfill tk
           { outcome = Error ("worker: " ^ Printexc.to_string e);
             origin = Compiled });
      next ()
  in
  next ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let create ?ledger ?(metrics = Pvtrace.Metrics.create ())
    ?(queue_capacity = 256) ?(cache_budget = 1 lsl 20) ~workers () : t =
  if workers <= 0 then invalid_arg "Service.create: workers must be positive";
  if queue_capacity <= 0 then
    invalid_arg "Service.create: queue_capacity must be positive";
  let t =
    {
      cache = Cache.create ?ledger ~budget_bytes:cache_budget ();
      metrics;
      ledger;
      queue = Queue.create ();
      capacity = queue_capacity;
      qmu = Mutex.create ();
      qnonempty = Condition.create ();
      qnonfull = Condition.create ();
      smu = Mutex.create ();
      inflight = Hashtbl.create 32;
      compiles = Atomic.make 0;
      workers = [];
    }
  in
  t.workers <-
    List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t

let push_job t job =
  protect t.qmu (fun () ->
      while Queue.length t.queue >= t.capacity do
        Condition.wait t.qnonfull t.qmu
      done;
      Queue.push job t.queue;
      Condition.signal t.qnonempty)

(** Enqueue a request; blocks while the queue is at capacity
    (backpressure toward the fleet).  The returned ticket is fulfilled
    by a worker; {!await} it. *)
let submit t (req : request) : ticket =
  let tk =
    { req; tmu = Mutex.create (); tcv = Condition.create (); treply = None }
  in
  Pvtrace.Metrics.inc1 t.metrics "serve.requests";
  push_job t (Job tk);
  tk

(** Drain-and-join: workers finish every queued job, then exit. *)
let shutdown t =
  List.iter (fun _ -> push_job t Quit) t.workers;
  List.iter Domain.join t.workers;
  t.workers <- []

let metrics t = t.metrics
let cache_stats t = Cache.stats t.cache
let compile_count t = Atomic.get t.compiles
