(** Deterministic fault injection for the distribution pipeline.

    Split compilation ships bytecode and advisory annotations across a
    trust boundary; this module manufactures the faults the receiving side
    must survive:

    - {b byte-level} mutations of the serialized module (bit flips,
      truncations, insertions) — the decoder must map every one of them to
      {!Pvir.Serial.Corrupt} or decode a program that still verifies;
    - {b annotation-level} mutations of a decoded program (drop, corrupt,
      swap between functions) — the JIT must degrade gracefully, never
      change program semantics;

    Everything is driven by an explicit seed through a splitmix64 stream,
    so every failure a fuzzer finds is replayable from its seed alone —
    no hidden global randomness. *)

(** {1 Seeded randomness} *)

type rng = { mutable state : int64 }

let rng (seed : int) : rng = { state = Int64.of_int seed }

(* splitmix64: tiny, well-distributed, and identical on every platform *)
let next_int64 (r : rng) : int64 =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform draw in [\[0, n)]. *)
let rand_int (r : rng) (n : int) : int =
  if n <= 0 then invalid_arg "Inject.rand_int: non-positive bound";
  Int64.to_int (Int64.rem (Int64.logand (next_int64 r) Int64.max_int) (Int64.of_int n))

(** {1 Byte-level mutations of serialized modules} *)

type byte_fault =
  | Flip of int * int  (** (position, xor mask): one byte corrupted *)
  | Truncate of int  (** stream cut to this length *)
  | Insert of int * char  (** junk byte inserted at position *)

let byte_fault_to_string = function
  | Flip (p, m) -> Printf.sprintf "flip byte %d with mask 0x%02x" p m
  | Truncate n -> Printf.sprintf "truncate to %d bytes" n
  | Insert (p, c) -> Printf.sprintf "insert 0x%02x at byte %d" (Char.code c) p

(** Draw one byte fault for a stream of [len] bytes. *)
let gen_byte_fault (r : rng) ~(len : int) : byte_fault =
  if len = 0 then Insert (0, Char.chr (rand_int r 256))
  else
    match rand_int r 4 with
    | 0 | 1 -> Flip (rand_int r len, 1 + rand_int r 255)
    | 2 -> Truncate (rand_int r len)
    | _ -> Insert (rand_int r (len + 1), Char.chr (rand_int r 256))

let apply_byte_fault (bc : string) (f : byte_fault) : string =
  match f with
  | Flip (p, m) ->
    let b = Bytes.of_string bc in
    Bytes.set b p (Char.chr (Char.code (Bytes.get b p) lxor m));
    Bytes.to_string b
  | Truncate n -> String.sub bc 0 n
  | Insert (p, c) ->
    String.concat "" [ String.sub bc 0 p; String.make 1 c; String.sub bc p (String.length bc - p) ]

(** [mutate_bytes ~seed bc] applies 1-4 seeded faults to [bc] and returns
    the mutant together with the fault list (for failure reports). *)
let mutate_bytes ~(seed : int) (bc : string) : string * byte_fault list =
  let r = rng seed in
  let n = 1 + rand_int r 4 in
  let rec go bc acc k =
    if k = 0 then (bc, List.rev acc)
    else
      let f = gen_byte_fault r ~len:(String.length bc) in
      go (apply_byte_fault bc f) (f :: acc) (k - 1)
  in
  go bc [] n

(** {1 Annotation-level mutations of decoded programs}

    All operate on a {e copy} of the program, leaving the input intact, so
    a harness can compare mutant against original side by side. *)

open Pvir

(** Strip every annotation from every function (and every loop): the
    "annotations lost in transit" scenario.  The JIT must fall back to its
    blind heuristics and still compute the same results. *)
let drop_annotations (p : Prog.t) : Prog.t =
  let p = Prog.copy p in
  List.iter
    (fun (fn : Func.t) ->
      fn.annots <- Annot.empty;
      fn.loop_annots <- [])
    p.funcs;
  p

(** Corrupt the split-regalloc payload of every annotated function:
    registers are remapped to seeded garbage ids and costs to seeded
    garbage magnitudes, keeping the {e shape} valid so only semantic
    validation can catch it. *)
let corrupt_spill_order ~(seed : int) (p : Prog.t) : Prog.t =
  let p = Prog.copy p in
  let r = rng seed in
  List.iter
    (fun (fn : Func.t) ->
      match Annot.find Annot.key_spill_order fn.annots with
      | None -> ()
      | Some _ ->
        let n = 1 + rand_int r 8 in
        let entries =
          List.init n (fun _ ->
              Annot.List
                [
                  (* far beyond any declared register *)
                  Annot.Int (fn.next_reg + 1 + rand_int r 1000);
                  Annot.Int (rand_int r 10_000);
                ])
        in
        Func.add_annot fn Annot.key_spill_order (Annot.List entries))
    p.funcs;
  p

(** Swap the whole annotation sets of adjacent function pairs: a
    structurally plausible payload attached to the wrong function (the
    hardest case for a validator — registers may even exist in both). *)
let swap_annotations (p : Prog.t) : Prog.t =
  let p = Prog.copy p in
  let rec pairs = function
    | (a : Func.t) :: (b : Func.t) :: tl ->
      let tmp_a = a.annots and tmp_la = a.loop_annots in
      a.annots <- b.annots;
      a.loop_annots <- b.loop_annots;
      b.annots <- tmp_a;
      b.loop_annots <- tmp_la;
      pairs tl
    | _ -> ()
  in
  pairs p.funcs;
  p

(** {1 Scenario driver}

    One seeded byte-fault scenario, classified by which of the pipeline's
    two nets the mutant hit: the decoder ({!Pvir.Serial.Corrupt}) or the
    verifier.  A mutant that passes {e both} nets is damage the pipeline
    chose to tolerate — a graceful degradation, so it is written to the
    [ledger] ({!Pvtrace.Ledger.Decode_tolerated}) rather than silently
    absorbed; an operator reading the ledger can tell a clean fleet from
    one quietly digesting corrupted streams. *)

type byte_outcome =
  | Rejected_decode of Serial.corruption  (** first net: decoder *)
  | Rejected_verify of string  (** second net: verifier *)
  | Tolerated of Prog.t  (** passed both nets; ledger entry *)

let byte_scenario ~(seed : int) ?(ledger : Pvtrace.Ledger.t option) (bc : string)
    : byte_outcome * byte_fault list =
  let mutant, faults = mutate_bytes ~seed bc in
  match Serial.decode_result mutant with
  | Error c -> (Rejected_decode c, faults)
  | Ok p -> (
    match Verify.program_result p with
    | Ok () ->
      Pvtrace.Ledger.record_opt ledger Pvtrace.Ledger.Decode_tolerated
        ~subject:"distribution"
        ~detail:
          (Printf.sprintf "seed %d: %s" seed
             (String.concat "; " (List.map byte_fault_to_string faults)));
      (Tolerated p, faults)
    | Error m -> (Rejected_verify m, faults))

(** {1 Accelerator-kill scenarios (checkpoint migration)}

    A heterogeneous platform can lose an accelerator while a kernel is
    mid-flight.  With safepoint checkpointing (see [Pvvm.Snapshot]) the
    runtime responds by capturing the kernel at its next safepoint and
    resuming it on a survivor.  These scenarios drive that path: a seeded
    kill point somewhere inside the run's instruction budget plus a
    seeded (source, target) engine pair.  Engines are indices into the
    harness's engine list — this module stays VM-free; the migration
    oracle ([Pvcheck.Migrate]) interprets them. *)

type kill_scenario = {
  kill_at : int64;  (** checkpoint request armed at this instruction count *)
  kill_src : int;  (** index of the dying host's engine *)
  kill_dst : int;  (** index of the survivor's engine *)
}

let kill_scenario_to_string (k : kill_scenario) =
  Printf.sprintf "kill at instr %Ld, engine %d -> engine %d" k.kill_at
    k.kill_src k.kill_dst

(** Draw one kill scenario for a run that retires [total] instructions
    under [n_engines] available engine kinds.  The kill point lands in
    [\[1, total\]]: at [total] the run completes before the safepoint
    fires (completion-beats-kill is part of the contract under test);
    source and target may coincide — migrating onto a core of the same
    kind must be exact too. *)
let gen_kill (r : rng) ~(total : int) ~(n_engines : int) : kill_scenario =
  if total < 1 then invalid_arg "Inject.gen_kill: empty run";
  {
    kill_at = Int64.of_int (1 + rand_int r total);
    kill_src = rand_int r n_engines;
    kill_dst = rand_int r n_engines;
  }

type annot_fault = Drop | Corrupt_spill_order | Swap

let annot_fault_to_string = function
  | Drop -> "drop all annotations"
  | Corrupt_spill_order -> "corrupt spill-order payloads"
  | Swap -> "swap annotations between functions"

let all_annot_faults = [ Drop; Corrupt_spill_order; Swap ]

(** Apply one named annotation fault (seeded where it draws randomness). *)
let apply_annot_fault ~(seed : int) (f : annot_fault) (p : Prog.t) : Prog.t =
  match f with
  | Drop -> drop_annotations p
  | Corrupt_spill_order -> corrupt_spill_order ~seed p
  | Swap -> swap_annotations p
