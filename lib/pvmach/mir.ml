(** MIR — the generic machine-level IR produced by the online compiler.

    MIR is the common shape of the native code of all simulated targets:
    finite register classes, explicit spill code, resolved global
    addresses and frame slots.  A target's identity lives in (a) which MIR
    the JIT may emit for it (no vector MIR on machines without SIMD) and
    (b) the {!Cost} table used when the simulator executes it. *)

type reg_class = Gpr | Fpr | Vec

(** Registers: virtual before register allocation, physical after.
    The simulator accepts both, so lowering can be tested in isolation. *)
type reg =
  | V of int  (** virtual *)
  | P of reg_class * int  (** physical *)

type op =
  | Mli of Pvir.Value.t  (** load immediate *)
  | Mmov
  | Mbin of Pvir.Instr.binop
  | Mun of Pvir.Instr.unop
  | Mconv of Pvir.Instr.conv
  | Mcmp of Pvir.Instr.relop
  | Msel  (** srcs = [cond; if_true; if_false] *)
  | Mload of int  (** dst <- mem[src + offset] *)
  | Mstore of int  (** mem[src2 + offset] <- src1 *)
  | Mframe_addr of int  (** dst <- frame_pointer + offset (allocas) *)
  | Mframe_ld of int  (** dst <- frame slot (spill reload) *)
  | Mframe_st of int  (** frame slot <- src (spill store) *)
  | Msplat
  | Mextract of int
  | Mreduce of Pvir.Instr.redop
  | Mcall of string  (** dst <- call; srcs are arguments *)

type inst = {
  op : op;
  ty : Pvir.Types.t;  (** operating type: drives semantics and cost *)
  dst : reg option;
  srcs : reg list;
  imm : Pvir.Value.t option;
      (** immediate operand, always the *last* operand of the operation;
          folded in by [Pvjit.Immfold] to relieve register pressure *)
}

type term =
  | Tbr of int
  | Tcbr of reg * int * int
  | Tret of reg option

type block = { mlabel : int; mutable insts : inst list; mutable mterm : term }

type func = {
  mname : string;
  mutable mparams : reg list;
      (** parameters arriving in registers (the first
          {!Machine.arg_regs} of the signature) *)
  marg_slots : (int * Pvir.Types.t) list;
      (** frame slots for the remaining (stack-passed) parameters, in
          signature order after [mparams] *)
  mret : Pvir.Types.t option;
  mutable mblocks : block list;  (** entry first *)
  mutable frame_size : int;  (** bytes: allocas + spill slots *)
  vreg_ty : (int, Pvir.Types.t) Hashtbl.t;
  mutable next_vreg : int;
  target : Machine.t;
  mutable mblock_index : (block list * (int, block) Hashtbl.t) option;
      (** memoized label→block table, valid only while the [mblocks] list
          it was built from is physically the current one *)
}

let class_of_type (ty : Pvir.Types.t) =
  match ty with
  | Pvir.Types.Vector _ -> Vec
  | Pvir.Types.Scalar s when Pvir.Types.is_float_scalar s -> Fpr
  | Pvir.Types.Scalar _ | Pvir.Types.Ptr _ -> Gpr

let inst ?dst ?(srcs = []) ?imm op ty = { op; ty; dst; srcs; imm }

let fresh_vreg fn ty =
  let v = fn.next_vreg in
  fn.next_vreg <- v + 1;
  Hashtbl.replace fn.vreg_ty v ty;
  V v

let vreg_type fn v =
  match Hashtbl.find_opt fn.vreg_ty v with
  | Some ty -> ty
  | None -> invalid_arg (Printf.sprintf "Mir.vreg_type: unknown v%d" v)

let reg_type fn = function
  | V v -> vreg_type fn v
  | P _ -> invalid_arg "Mir.reg_type: physical register"

(* O(1) after the first lookup; rebuilt whenever [fn.mblocks] is a
   different list from the one the table was computed for. *)
let block_table fn =
  match fn.mblock_index with
  | Some (blocks, tbl) when blocks == fn.mblocks -> tbl
  | _ ->
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun b ->
        if not (Hashtbl.mem tbl b.mlabel) then Hashtbl.add tbl b.mlabel b)
      fn.mblocks;
    fn.mblock_index <- Some (fn.mblocks, tbl);
    tbl

let find_block fn l =
  match Hashtbl.find_opt (block_table fn) l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Mir.find_block: no block %d in %s" l fn.mname)

let entry fn =
  match fn.mblocks with
  | b :: _ -> b
  | [] -> invalid_arg (Printf.sprintf "Mir.entry: %s has no blocks" fn.mname)

let term_successors = function
  | Tbr l -> [ l ]
  | Tcbr (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Tret _ -> []

(** Number of instructions (terminators included). *)
let size fn =
  List.fold_left (fun acc b -> acc + List.length b.insts + 1) 0 fn.mblocks

(** Instructions defining / using registers, for liveness. *)
let inst_uses i = i.srcs
let inst_def i = i.dst

let term_uses = function
  | Tbr _ | Tret None -> []
  | Tcbr (c, _, _) -> [ c ]
  | Tret (Some r) -> [ r ]

let map_inst_regs f i =
  { i with dst = Option.map f i.dst; srcs = List.map f i.srcs }

let map_term_regs f = function
  | Tbr l -> Tbr l
  | Tcbr (c, l1, l2) -> Tcbr (f c, l1, l2)
  | Tret r -> Tret (Option.map f r)

(* ---------------- printing (debugging aid) ---------------- *)

let reg_to_string = function
  | V v -> Printf.sprintf "v%d" v
  | P (Gpr, i) -> Printf.sprintf "g%d" i
  | P (Fpr, i) -> Printf.sprintf "f%d" i
  | P (Vec, i) -> Printf.sprintf "x%d" i

let op_to_string = function
  | Mli v -> Printf.sprintf "li %s" (Pvir.Value.to_string v)
  | Mmov -> "mov"
  | Mbin op -> Pvir.Instr.binop_name op
  | Mun op -> Pvir.Instr.unop_name op
  | Mconv c -> Pvir.Instr.conv_name c
  | Mcmp op -> "cmp." ^ Pvir.Instr.relop_name op
  | Msel -> "sel"
  | Mload off -> Printf.sprintf "ld[+%d]" off
  | Mstore off -> Printf.sprintf "st[+%d]" off
  | Mframe_addr off -> Printf.sprintf "frame+%d" off
  | Mframe_ld slot -> Printf.sprintf "reload[%d]" slot
  | Mframe_st slot -> Printf.sprintf "spill[%d]" slot
  | Msplat -> "splat"
  | Mextract lane -> Printf.sprintf "extract.%d" lane
  | Mreduce op -> Pvir.Instr.redop_name op
  | Mcall name -> "call @" ^ name

let inst_to_string i =
  let dst = match i.dst with Some d -> reg_to_string d ^ " = " | None -> "" in
  let srcs = String.concat ", " (List.map reg_to_string i.srcs) in
  let imm =
    match i.imm with
    | Some v -> Printf.sprintf " #%s" (Pvir.Value.to_string v)
    | None -> ""
  in
  Printf.sprintf "%s%s.%s %s%s" dst (op_to_string i.op)
    (Pvir.Types.to_string i.ty)
    srcs imm

let func_to_string fn =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "mfunc %s (frame %d) on %s\n" fn.mname fn.frame_size
    fn.target.Machine.name;
  List.iter
    (fun b ->
      Printf.bprintf buf " L%d:\n" b.mlabel;
      List.iter (fun i -> Printf.bprintf buf "   %s\n" (inst_to_string i)) b.insts;
      let t =
        match b.mterm with
        | Tbr l -> Printf.sprintf "br L%d" l
        | Tcbr (c, l1, l2) ->
          Printf.sprintf "cbr %s, L%d, L%d" (reg_to_string c) l1 l2
        | Tret None -> "ret"
        | Tret (Some r) -> "ret " ^ reg_to_string r
      in
      Printf.bprintf buf "   %s\n" t)
    fn.mblocks;
  Buffer.contents buf
