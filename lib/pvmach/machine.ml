(** Target machine descriptions.

    These stand in for the paper's evaluation hardware (x86 with SSE,
    UltraSparc, PowerPC) plus the heterogeneous-offload cores of the §3
    scenario (a microcontroller host and a DSP-style accelerator).  Each
    description captures the properties that shaped Table 1:

    - SIMD width decides whether the JIT emits vector code or scalarizes;
    - register-file size decides how much scalarized vector state spills;
    - [narrow_penalty] models ISAs without native 8/16-bit ALU operations
      (per-op masking to preserve wraparound semantics);
    - branch/loop costs decide how much the implicit unrolling of
      scalarized vector code pays off.

    The cycle numbers are cost-model parameters, not claims about real
    silicon; the experiments only rely on their relative shape. *)

type t = {
  name : string;
  description : string;
  caps : Capability.t list;
  int_regs : int;  (** allocatable general-purpose registers *)
  fp_regs : int;  (** allocatable floating-point registers *)
  vec_regs : int;  (** allocatable vector registers (0 if no SIMD) *)
  alu_cost : int;
  mul_cost : int;
  div_cost : int;
  fp_cost : int;  (** fp add/sub/mul *)
  fdiv_cost : int;
  load_cost : int;
  store_cost : int;
  branch_cost : int;  (** taken-branch / loop back-edge cost *)
  mov_cost : int;
  narrow_penalty : int;  (** extra cycles per 8/16-bit ALU op *)
  vec_op_cost : int;  (** cost of one SIMD ALU operation on a full register *)
  vec_mem_cost : int;  (** cost of one SIMD load/store *)
  vec_pack_cost : int;  (** cost of one pack/unpack/permute step *)
  call_cost : int;
  clock_mhz : int;  (** nominal clock, for cycle->time conversion *)
}

let simd_width m =
  List.fold_left
    (fun acc c -> match c with Capability.Simd w -> max acc w | _ -> acc)
    0 m.caps

let has_simd m = simd_width m > 0
let has_cap m c = List.exists (fun h -> Capability.satisfies h c) m.caps
let has_narrow_alu m = has_cap m Capability.Narrow_alu

let regs_of_class m = function
  | `Gpr -> m.int_regs
  | `Fpr -> m.fp_regs
  | `Vec -> m.vec_regs

(** How many leading parameters arrive in registers; the rest are passed
    on the stack (they arrive in frame slots). *)
let arg_regs m = max 1 (m.int_regs / 2)

(** x86-class desktop/console core: 128-bit SSE-style SIMD, byte ALU,
    but a small architectural register file — exactly the combination that
    makes both vectorization (Table 1) and split register allocation (E3)
    profitable. *)
let x86ish =
  {
    name = "x86ish";
    description = "x86-class: 128-bit SIMD, byte ALU, register-poor";
    caps = [ Capability.Simd 16; Capability.Fpu; Capability.Narrow_alu ];
    int_regs = 6;
    fp_regs = 8;
    vec_regs = 8;
    alu_cost = 1;
    mul_cost = 3;
    div_cost = 18;
    fp_cost = 2;
    fdiv_cost = 14;
    load_cost = 2;
    store_cost = 2;
    branch_cost = 2;
    mov_cost = 1;
    narrow_penalty = 0;
    vec_op_cost = 1;
    vec_mem_cost = 2;
    vec_pack_cost = 1;
    call_cost = 10;
    clock_mhz = 2000;
  }

(** UltraSparc-class RISC: many registers, no usable SIMD in the JIT, no
    byte/halfword ALU (narrow operations pay a masking penalty). *)
let sparcish =
  {
    name = "sparcish";
    description = "UltraSparc-class: no SIMD, masking penalty on narrow ops";
    caps = [ Capability.Fpu ];
    (* register windows reserve in/out registers: fewer allocatable GPRs *)
    int_regs = 16;
    fp_regs = 16;
    vec_regs = 0;
    alu_cost = 1;
    mul_cost = 4;
    div_cost = 20;
    fp_cost = 2;
    fdiv_cost = 16;
    load_cost = 2;
    store_cost = 2;
    branch_cost = 1;
    mov_cost = 1;
    narrow_penalty = 1;
    vec_op_cost = 1;
    vec_mem_cost = 2;
    vec_pack_cost = 1;
    call_cost = 12;
    clock_mhz = 1200;
  }

(** PowerPC-class RISC: many registers, cheap bit-field ops (no narrow
    penalty), relatively expensive branches — so the unrolling implicit in
    scalarized vector code pays off, as observed in Table 1. *)
let ppcish =
  {
    name = "ppcish";
    description = "PowerPC-class: no SIMD used, free masking, costly branches";
    caps = [ Capability.Fpu; Capability.Narrow_alu ];
    int_regs = 28;
    fp_regs = 32;
    vec_regs = 0;
    alu_cost = 1;
    mul_cost = 3;
    div_cost = 19;
    fp_cost = 2;
    fdiv_cost = 15;
    load_cost = 2;
    store_cost = 2;
    branch_cost = 4;
    mov_cost = 1;
    narrow_penalty = 0;
    vec_op_cost = 1;
    vec_mem_cost = 2;
    vec_pack_cost = 1;
    call_cost = 12;
    clock_mhz = 1000;
  }

(** DSP-style accelerator (the SPU of the paper's Cell scenario): wide
    SIMD and single-cycle MAC, but branches hurt and scalar control code is
    comparatively slow. *)
let dspish =
  {
    name = "dspish";
    description = "DSP/SPU-class accelerator: wide SIMD + MAC, bad branches";
    caps =
      [ Capability.Simd 16; Capability.Fpu; Capability.Dsp_mac;
        Capability.Narrow_alu ];
    int_regs = 32;
    fp_regs = 32;
    vec_regs = 32;
    alu_cost = 2;
    mul_cost = 2;
    div_cost = 30;
    fp_cost = 2;
    fdiv_cost = 20;
    load_cost = 2;
    store_cost = 2;
    branch_cost = 8;
    mov_cost = 1;
    narrow_penalty = 0;
    vec_op_cost = 1;
    vec_mem_cost = 1;
    vec_pack_cost = 1;
    call_cost = 20;
    clock_mhz = 800;
  }

(** Microcontroller host: no FPU, no SIMD, tiny register file — the "host
    processor" third-party code is usually confined to. *)
let uchost =
  {
    name = "uchost";
    description = "microcontroller host: no FPU, no SIMD, tiny register file";
    caps = [ Capability.Narrow_alu ];
    int_regs = 8;
    fp_regs = 4;  (* soft-float value slots *)
    vec_regs = 0;
    alu_cost = 1;
    mul_cost = 5;
    div_cost = 24;
    fp_cost = 30;  (* software floating point *)
    fdiv_cost = 60;
    load_cost = 3;
    store_cost = 3;
    branch_cost = 2;
    mov_cost = 1;
    narrow_penalty = 0;
    vec_op_cost = 2;
    vec_mem_cost = 3;
    vec_pack_cost = 2;
    call_cost = 8;
    clock_mhz = 200;
  }

let all = [ x86ish; sparcish; ppcish; dspish; uchost ]

(** The three targets of the paper's Table 1. *)
let table1_targets = [ x86ish; sparcish; ppcish ]

let find name = List.find_opt (fun m -> String.equal m.name name) all

let find_exn name =
  match find name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Machine.find: unknown target %s" name)

(** Canonical one-line dump of everything code generation and cost
    modelling depend on: register files, SIMD shape, capabilities and the
    full cost table.  Used as the "machine descriptor digest" component of
    compiled-code cache keys (the name alone would not survive a
    descriptor edit).  Format is load-bearing: the AOT sim cache digests
    this string, so changing it invalidates every cached plugin. *)
let descriptor_dump (m : t) =
  Printf.sprintf
    "%s regs=%d,%d,%d simd=%d caps=%b,%b,%b costs=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d"
    m.name m.int_regs m.fp_regs m.vec_regs (simd_width m)
    (has_cap m Capability.Fpu)
    (has_cap m Capability.Dsp_mac)
    (has_narrow_alu m) m.alu_cost m.mul_cost m.div_cost m.fp_cost m.fdiv_cost
    m.load_cost m.store_cost m.branch_cost m.mov_cost m.narrow_penalty
    m.vec_op_cost m.vec_mem_cost m.vec_pack_cost m.call_cost
