(** PVIR → OCaml code generation for the AOT interpreter engine.

    One OCaml function per PVIR function, basic blocks as a tail-recursive
    nest of local functions, registers in one of four storage classes —
    all chosen so the hot paths never allocate:

    - [KNarrow]: I8/I16/I32 scalars as native [int ref]s.  The payload
      invariant of [Value.Int] (always sign-normalized to the scalar
      width) fits a 63-bit [int] with room to spare, and every operation
      re-normalizes exactly like [Value.int] does — with [lsl]/[asr]
      pairs at width 63-w — so results match the engines bit for bit.
      Assigning an immediate [int] to a ref neither allocates nor needs
      a write barrier.
    - [KWide]: I64 scalars and pointers as slots of a per-call int64
      [Bigarray.Array1], accessed with [unsafe_get]/[unsafe_set] on a
      statically-annotated type (indices are generator-assigned
      constants, always in bounds).  The native compiler specializes
      bigarray access of known kind/layout to raw unboxed 64-bit loads
      and stores, so I64 arithmetic chains never box intermediates.  (A
      plain [int64 ref] would allocate a boxed [Int64] per write.)
    - [KFloat]: F32/F64 as slots of a flat [float array], accessed with
      [Array.unsafe_get]/[unsafe_set] (indices are generator-assigned
      constants, always in bounds).  Flat float arrays store unboxed.
    - [KBox]: vectors as [Pvir.Value.t ref]; vector operations delegate
      to [Pvir.Eval] on boxed values, which is the same code the
      interpreter runs.

    Hot scalar operations are emitted inline, mirroring {!Pvir.Eval}'s
    arithmetic *exactly* (including result normalization, unsigned views
    and evaluation order), so results stay bit-identical to both host
    interpreter engines.

    Accounting is batched: per-instruction charges accumulate at *codegen
    time* into a pending (cycles, instrs) pair that is flushed — two
    additions plus one fuel check — before any operation that can raise
    or transfer control, and at every block end.  Because every
    observable effect (store, call, intrinsic, trap check) is a flush
    point, results, output, globals and final counters are bit-identical
    to the threaded engine; the only tolerated divergence is the counter
    *values inside a fuel-exhaustion trap*, which the differential oracle
    gates on separately.

    Generated code contains {e no safepoint polls}: neither the
    checkpoint threshold nor the sampling-profiler threshold is checked
    at block entries, and no shadow activation stack is maintained.
    Activations that need either (an armed checkpoint or an attached
    {!Pvprof.t} sampler) are delegated whole to the threaded engine by
    the runner in [pvaot.ml] — accounting-identical by construction, so
    snapshots and sampled streams still match every engine bit for bit.

    Anything the generator cannot prove it can compile exactly raises
    {!Unsupported}; the caller falls back to the threaded engine, so this
    module never needs to be complete — only correct. *)

module Types = Pvir.Types
module Instr = Pvir.Instr
module Func = Pvir.Func
module Value = Pvir.Value
module IntSet = Set.Make (Int)

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Storage classes                                                     *)

type cls =
  | KNarrow of Types.scalar  (** I8/I16/I32: native [int ref] *)
  | KWide  (** I64/pointer: 8-byte slot in the [ir_] scratch *)
  | KFloat of Types.scalar  (** F32/F64: slot in the [fr_] float array *)
  | KBox  (** vectors: [Value.t ref] *)

let cls_of (ty : Types.t) : cls =
  match ty with
  | Types.Scalar ((Types.I8 | Types.I16 | Types.I32) as s) -> KNarrow s
  | Types.Scalar Types.I64 | Types.Ptr _ -> KWide
  | Types.Scalar ((Types.F32 | Types.F64) as s) -> KFloat s
  | Types.Vector _ -> KBox

let same_cls a b =
  match (a, b) with
  | KNarrow x, KNarrow y -> x = y
  | KWide, KWide -> true
  | KFloat x, KFloat y -> x = y
  | KBox, KBox -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Literal / expression rendering                                      *)

let scalar_lit (s : Types.scalar) =
  match s with
  | Types.I8 -> "Ty.I8"
  | Types.I16 -> "Ty.I16"
  | Types.I32 -> "Ty.I32"
  | Types.I64 -> "Ty.I64"
  | Types.F32 -> "Ty.F32"
  | Types.F64 -> "Ty.F64"

let ty_lit (ty : Types.t) =
  match ty with
  | Types.Scalar s -> Printf.sprintf "(Ty.Scalar %s)" (scalar_lit s)
  | Types.Vector (s, n) ->
    Printf.sprintf "(Ty.Vector (%s, %d))" (scalar_lit s) n
  | Types.Ptr s -> Printf.sprintf "(Ty.Ptr %s)" (scalar_lit s)

let int64_lit (x : int64) = Printf.sprintf "(%LdL)" x

(* Floats are rendered through their bit pattern: exact for every value
   including nans, infinities and signed zeros. *)
let float_lit (x : float) =
  Printf.sprintf "(Int64.float_of_bits %s)" (int64_lit (Int64.bits_of_float x))

let rec value_lit (v : Value.t) =
  match v with
  | Value.Int (s, x) ->
    Printf.sprintf "(V.Int (%s, %s))" (scalar_lit s) (int64_lit x)
  | Value.Float (s, x) ->
    Printf.sprintf "(V.Float (%s, %s))" (scalar_lit s) (float_lit x)
  | Value.Vec elems ->
    if Array.length elems = 0 then unsupported "empty vector constant";
    "(V.Vec [| "
    ^ String.concat "; " (Array.to_list (Array.map value_lit elems))
    ^ " |])"

(* [Value.normalize s] applied to int64 expression [e] (identity at I64). *)
let nrm (s : Types.scalar) e =
  match s with
  | Types.I64 -> e
  | Types.I8 ->
    Printf.sprintf "(Int64.shift_right (Int64.shift_left %s 56) 56)" e
  | Types.I16 ->
    Printf.sprintf "(Int64.shift_right (Int64.shift_left %s 48) 48)" e
  | Types.I32 ->
    Printf.sprintf "(Int64.shift_right (Int64.shift_left %s 32) 32)" e
  | Types.F32 | Types.F64 -> unsupported "normalize of float scalar"

(* [Value.unsigned s] applied to int64 expression [e]. *)
let uns (s : Types.scalar) e =
  match s with
  | Types.I64 -> e
  | Types.I8 -> Printf.sprintf "(Int64.logand %s 0xFFL)" e
  | Types.I16 -> Printf.sprintf "(Int64.logand %s 0xFFFFL)" e
  | Types.I32 -> Printf.sprintf "(Int64.logand %s 0xFFFFFFFFL)" e
  | Types.F32 | Types.F64 -> unsupported "unsigned view of float scalar"

(* [Value.normalize_float s] applied to expression [e]. *)
let fnrm (s : Types.scalar) e =
  match s with
  | Types.F64 -> e
  | Types.F32 -> Printf.sprintf "(Int32.float_of_bits (Int32.bits_of_float %s))" e
  | _ -> unsupported "float-normalize of integer scalar"

(* Narrow-int (native [int]) variants.  A w-bit sign-normalization in a
   63-bit int is [lsl (63-w)] then [asr (63-w)]: the 63-bit wraparound of
   OCaml ints preserves the low w bits of every add/sub/mul exactly, and
   the shift pair recovers the signed value — the same payload
   [Value.int] would compute. *)
let nrm_i (s : Types.scalar) e =
  match s with
  | Types.I8 -> Printf.sprintf "(((%s) lsl 55) asr 55)" e
  | Types.I16 -> Printf.sprintf "(((%s) lsl 47) asr 47)" e
  | Types.I32 -> Printf.sprintf "(((%s) lsl 31) asr 31)" e
  | _ -> unsupported "narrow normalize at wide scalar"

let uns_i (s : Types.scalar) e =
  match s with
  | Types.I8 -> Printf.sprintf "((%s) land 0xFF)" e
  | Types.I16 -> Printf.sprintf "((%s) land 0xFFFF)" e
  | Types.I32 -> Printf.sprintf "((%s) land 0xFFFFFFFF)" e
  | _ -> unsupported "narrow unsigned view at wide scalar"

(* ------------------------------------------------------------------ *)
(* Per-function generation state                                       *)

type st = {
  buf : Buffer.t;
  fn : Func.t;
  dispatch : int;
  classes : (int, cls) Hashtbl.t;
  wide_slot : (int, int) Hashtbl.t;  (** KWide reg → index in ir_ *)
  float_slot : (int, int) Hashtbl.t;  (** KFloat reg → index in fr_ *)
  block_local : IntSet.t;
      (** regs whose every read follows a same-block def: emitted as
          shadowing [let] bindings (kept in machine registers), with no
          persistent storage at all *)
  guarded : IntSet.t;
  fnindex : (string, int) Hashtbl.t;  (** program function name → index *)
  img : Pvvm.Image.t;
  mutable ind : string;  (** current indentation *)
  mutable assigned : IntSet.t;  (** regs provably assigned at this point *)
  mutable pc : int;  (** pending cycles *)
  mutable pi : int;  (** pending instruction count *)
}

let line st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.buf st.ind;
      Buffer.add_string st.buf s;
      Buffer.add_char st.buf '\n')
    fmt

let reg_class st r =
  match Hashtbl.find_opt st.classes r with
  | Some c -> c
  | None ->
    let ty =
      try Func.reg_type st.fn r
      with Invalid_argument m -> unsupported "%s" m
    in
    let c = cls_of ty in
    Hashtbl.replace st.classes r c;
    c

(* Deref of register [r]: an expression of the class's raw type ([int],
   [int64], [float] or [V.t]).  Guards have already been emitted. *)
let rd st r =
  if IntSet.mem r st.block_local then Printf.sprintf "t%d_" r
  else
    match reg_class st r with
    | KNarrow _ -> Printf.sprintf "!ri_%d" r
    | KWide ->
      Printf.sprintf "(Bigarray.Array1.unsafe_get ir_ %d)"
        (Hashtbl.find st.wide_slot r)
    | KFloat _ ->
      Printf.sprintf "(Array.unsafe_get fr_ %d)" (Hashtbl.find st.float_slot r)
    | KBox -> Printf.sprintf "!rb_%d" r

(* Assignment of raw expression [e] (of the class's raw type) to [d].
   Block-local regs become shadowing [let] bindings — no store at all. *)
let emit_set st d e =
  if IntSet.mem d st.block_local then line st "let t%d_ = %s in" d e
  else
    match reg_class st d with
    | KNarrow _ -> line st "ri_%d := %s;" d e
    | KWide ->
      line st "Bigarray.Array1.unsafe_set ir_ %d (%s);"
        (Hashtbl.find st.wide_slot d) e
    | KFloat _ ->
      line st "Array.unsafe_set fr_ %d (%s);" (Hashtbl.find st.float_slot d) e
    | KBox -> line st "rb_%d := %s;" d e

(* Box register [r] back into a [Value.t] expression. *)
let boxed st r =
  match reg_class st r with
  | KNarrow s ->
    Printf.sprintf "(V.Int (%s, Int64.of_int %s))" (scalar_lit s) (rd st r)
  | KWide -> Printf.sprintf "(V.Int (Ty.I64, %s))" (rd st r)
  | KFloat s -> Printf.sprintf "(V.Float (%s, %s))" (scalar_lit s) (rd st r)
  | KBox -> rd st r

(* ------------------------------------------------------------------ *)
(* Batched accounting                                                  *)

let add_charge st n =
  st.pc <- st.pc + n;
  st.pi <- st.pi + 1

(** Materialize pending charges: two additions and one fuel check.
    Must run before anything that can raise, call out or branch. *)
let flush st =
  if st.pi > 0 then begin
    if st.pc > 0 then line st "ctx.A.cycles <- ctx.A.cycles + %d;" st.pc;
    line st "ctx.A.instrs <- ctx.A.instrs + %d;" st.pi;
    line st "if ctx.A.instrs > ctx.A.fuel then raise ctx.A.fuel_exn;";
    st.pc <- 0;
    st.pi <- 0
  end

(* ------------------------------------------------------------------ *)
(* Uninitialized-register guards                                       *)

let read_may_trap st rs =
  List.exists (fun r -> not (IntSet.mem r st.assigned)) rs

(** Emit the guard-flag check for a read of [r], if the must-assign
    analysis could not discharge it.  The caller has already flushed. *)
let emit_guard st r =
  if not (IntSet.mem r st.assigned) then begin
    if not (IntSet.mem r st.guarded) then
      unsupported "register r%d read outside the guarded set" r;
    line st "if not !gu_%d then raise (ctx.A.trap %S);" r
      (Printf.sprintf "read of uninitialized register r%d in %s" r
         st.fn.Func.name);
    st.assigned <- IntSet.add r st.assigned
  end

(** Record a definition of [d]; sets the runtime flag for guarded regs. *)
let mark_def st d =
  st.assigned <- IntSet.add d st.assigned;
  if IntSet.mem d st.guarded then line st "gu_%d := true;" d

(* ------------------------------------------------------------------ *)
(* Operand read order (must match the engines' trap order exactly)     *)

let reads_in_order (i : Instr.t) : Instr.reg list =
  match i with
  | Instr.Const _ | Instr.Gaddr _ | Instr.Alloca _ -> []
  | Instr.Mov (_, a)
  | Instr.Unop (_, _, a)
  | Instr.Conv (_, _, a)
  | Instr.Splat (_, a)
  | Instr.Extract (_, a, _)
  | Instr.Reduce (_, _, a) -> [ a ]
  | Instr.Binop (_, _, a, b) -> [ a; b ]
  | Instr.Cmp (_, _, a, b) -> [ b; a ]
  | Instr.Select (_, c, a, b) -> [ b; a; c ]
  | Instr.Load (_, _, base, _) -> [ base ]
  | Instr.Store (_, src, base, _) -> [ base; src ]
  | Instr.Call (_, _, args) -> args

(* ------------------------------------------------------------------ *)
(* Scalar operation bodies (exact mirrors of Pvir.Eval)                *)

let is_div_op (op : Instr.binop) =
  match op with
  | Instr.Div | Instr.Udiv | Instr.Rem | Instr.Urem -> true
  | _ -> false

(** Integer binop at scalar [s] in the boxed-int64 domain (used for
    KWide, where [s] is always I64 so [nrm]/[uns] are identities):
    expression computing the raw [int64] result from operand expressions
    [xa]/[xb].  Mirrors [Eval.int_binop], including the
    [Value.int]-normalization applied to every result.  Division
    operators embed their zero check; the caller must have flushed. *)
let int_binop_expr _st (op : Instr.binop) s xa xb =
  let n e = nrm s e in
  match op with
  | Instr.Add -> n (Printf.sprintf "(Int64.add %s %s)" xa xb)
  | Instr.Sub -> n (Printf.sprintf "(Int64.sub %s %s)" xa xb)
  | Instr.Mul -> n (Printf.sprintf "(Int64.mul %s %s)" xa xb)
  | Instr.Div ->
    Printf.sprintf
      "(if (%s : int64) = 0L then raise (ctx.A.trap \"division by zero\") \
       else %s)"
      xb
      (n (Printf.sprintf "(Int64.div %s %s)" xa xb))
  | Instr.Udiv ->
    Printf.sprintf
      "(if (%s : int64) = 0L then raise (ctx.A.trap \"division by zero\") \
       else %s)"
      xb
      (n (Printf.sprintf "(Int64.unsigned_div %s %s)" (uns s xa) (uns s xb)))
  | Instr.Rem ->
    Printf.sprintf
      "(if (%s : int64) = 0L then raise (ctx.A.trap \"division by zero\") \
       else %s)"
      xb
      (n (Printf.sprintf "(Int64.rem %s %s)" xa xb))
  | Instr.Urem ->
    Printf.sprintf
      "(if (%s : int64) = 0L then raise (ctx.A.trap \"division by zero\") \
       else %s)"
      xb
      (n (Printf.sprintf "(Int64.unsigned_rem %s %s)" (uns s xa) (uns s xb)))
  | Instr.And -> n (Printf.sprintf "(Int64.logand %s %s)" xa xb)
  | Instr.Or -> n (Printf.sprintf "(Int64.logor %s %s)" xa xb)
  | Instr.Xor -> n (Printf.sprintf "(Int64.logxor %s %s)" xa xb)
  | Instr.Shl ->
    n (Printf.sprintf "(Int64.shift_left %s (Int64.to_int %s land 63))" xa xb)
  | Instr.Lshr ->
    n
      (Printf.sprintf
         "(Int64.shift_right_logical %s (Int64.to_int %s land 63))" (uns s xa)
         xb)
  | Instr.Ashr ->
    n (Printf.sprintf "(Int64.shift_right %s (Int64.to_int %s land 63))" xa xb)
  | Instr.Min ->
    n (Printf.sprintf "(if (%s : int64) <= %s then %s else %s)" xa xb xa xb)
  | Instr.Max ->
    n (Printf.sprintf "(if (%s : int64) >= %s then %s else %s)" xa xb xa xb)
  | Instr.Umin ->
    (* [unsigned_compare a b] is [compare (sub a min_int) (sub b min_int)] *)
    n
      (Printf.sprintf
         "(if Int64.sub %s Int64.min_int <= Int64.sub %s Int64.min_int then \
          %s else %s)"
         (uns s xa) (uns s xb) xa xb)
  | Instr.Umax ->
    n
      (Printf.sprintf
         "(if Int64.sub %s Int64.min_int >= Int64.sub %s Int64.min_int then \
          %s else %s)"
         (uns s xa) (uns s xb) xa xb)

(** Integer binop at narrow scalar [s] in the native-int domain.  All
    payloads are width-normalized (≤ 33 significant bits), so 63-bit
    wraparound preserves the low [w] bits of every result exactly; shift
    amounts are masked [land 63] exactly like the engines' ([lsl]/[lsr]/
    [asr] are specified for counts up to [Sys.int_size] = 63). *)
let narrow_binop_expr (op : Instr.binop) s xa xb =
  let n e = nrm_i s e in
  let u e = uns_i s e in
  match op with
  | Instr.Add -> n (Printf.sprintf "(%s + %s)" xa xb)
  | Instr.Sub -> n (Printf.sprintf "(%s - %s)" xa xb)
  | Instr.Mul -> n (Printf.sprintf "(%s * %s)" xa xb)
  | Instr.Div ->
    Printf.sprintf
      "(if %s = 0 then raise (ctx.A.trap \"division by zero\") else %s)" xb
      (n (Printf.sprintf "(%s / %s)" xa xb))
  | Instr.Udiv ->
    Printf.sprintf
      "(if %s = 0 then raise (ctx.A.trap \"division by zero\") else %s)" xb
      (n (Printf.sprintf "(%s / %s)" (u xa) (u xb)))
  | Instr.Rem ->
    Printf.sprintf
      "(if %s = 0 then raise (ctx.A.trap \"division by zero\") else %s)" xb
      (n (Printf.sprintf "(%s mod %s)" xa xb))
  | Instr.Urem ->
    Printf.sprintf
      "(if %s = 0 then raise (ctx.A.trap \"division by zero\") else %s)" xb
      (n (Printf.sprintf "(%s mod %s)" (u xa) (u xb)))
  | Instr.And -> n (Printf.sprintf "(%s land %s)" xa xb)
  | Instr.Or -> n (Printf.sprintf "(%s lor %s)" xa xb)
  | Instr.Xor -> n (Printf.sprintf "(%s lxor %s)" xa xb)
  | Instr.Shl -> n (Printf.sprintf "(%s lsl (%s land 63))" xa xb)
  | Instr.Lshr -> n (Printf.sprintf "(%s lsr (%s land 63))" (u xa) xb)
  | Instr.Ashr -> n (Printf.sprintf "(%s asr (%s land 63))" xa xb)
  | Instr.Min ->
    n (Printf.sprintf "(if %s <= %s then %s else %s)" xa xb xa xb)
  | Instr.Max ->
    n (Printf.sprintf "(if %s >= %s then %s else %s)" xa xb xa xb)
  | Instr.Umin ->
    n (Printf.sprintf "(if %s <= %s then %s else %s)" (u xa) (u xb) xa xb)
  | Instr.Umax ->
    n (Printf.sprintf "(if %s >= %s then %s else %s)" (u xa) (u xb) xa xb)

(** Float binop at scalar [s]; mirrors [Eval.float_binop] (every result
    through [Value.float]'s normalization). *)
let float_binop_expr (op : Instr.binop) s xa xb =
  let n e = fnrm s e in
  match op with
  | Instr.Add -> n (Printf.sprintf "(%s +. %s)" xa xb)
  | Instr.Sub -> n (Printf.sprintf "(%s -. %s)" xa xb)
  | Instr.Mul -> n (Printf.sprintf "(%s *. %s)" xa xb)
  | Instr.Div -> n (Printf.sprintf "(%s /. %s)" xa xb)
  | Instr.Min -> n (Printf.sprintf "(Float.min %s %s)" xa xb)
  | Instr.Max -> n (Printf.sprintf "(Float.max %s %s)" xa xb)
  | _ -> unsupported "binop %s on float" (Instr.binop_name op)

let int_cmp_expr (op : Instr.relop) s xa xb =
  (* direct operators at a statically-annotated int64 type compile to
     unboxed compares; [Int64.unsigned_compare a b] is
     [compare (sub a min_int) (sub b min_int)] *)
  let ucmp rel =
    Printf.sprintf "(Int64.sub %s Int64.min_int %s Int64.sub %s Int64.min_int)"
      (uns s xa) rel (uns s xb)
  in
  match op with
  | Instr.Eq -> Printf.sprintf "((%s : int64) = %s)" xa xb
  | Instr.Ne -> Printf.sprintf "((%s : int64) <> %s)" xa xb
  | Instr.Slt -> Printf.sprintf "((%s : int64) < %s)" xa xb
  | Instr.Sle -> Printf.sprintf "((%s : int64) <= %s)" xa xb
  | Instr.Sgt -> Printf.sprintf "((%s : int64) > %s)" xa xb
  | Instr.Sge -> Printf.sprintf "((%s : int64) >= %s)" xa xb
  | Instr.Ult -> ucmp "<"
  | Instr.Ule -> ucmp "<="
  | Instr.Ugt -> ucmp ">"
  | Instr.Uge -> ucmp ">="

(** Comparison at narrow scalar [s] in the native-int domain: normalized
    payloads compare identically to their int64 counterparts. *)
let narrow_cmp_expr (op : Instr.relop) s xa xb =
  let u e = uns_i s e in
  match op with
  | Instr.Eq -> Printf.sprintf "(%s = %s)" xa xb
  | Instr.Ne -> Printf.sprintf "(%s <> %s)" xa xb
  | Instr.Slt -> Printf.sprintf "(%s < %s)" xa xb
  | Instr.Sle -> Printf.sprintf "(%s <= %s)" xa xb
  | Instr.Sgt -> Printf.sprintf "(%s > %s)" xa xb
  | Instr.Sge -> Printf.sprintf "(%s >= %s)" xa xb
  | Instr.Ult -> Printf.sprintf "(%s < %s)" (u xa) (u xb)
  | Instr.Ule -> Printf.sprintf "(%s <= %s)" (u xa) (u xb)
  | Instr.Ugt -> Printf.sprintf "(%s > %s)" (u xa) (u xb)
  | Instr.Uge -> Printf.sprintf "(%s >= %s)" (u xa) (u xb)

let float_cmp_expr (op : Instr.relop) xa xb =
  match op with
  | Instr.Eq -> Printf.sprintf "(%s = %s)" xa xb
  | Instr.Ne -> Printf.sprintf "(%s <> %s)" xa xb
  | Instr.Slt -> Printf.sprintf "(%s < %s)" xa xb
  | Instr.Sle -> Printf.sprintf "(%s <= %s)" xa xb
  | Instr.Sgt -> Printf.sprintf "(%s > %s)" xa xb
  | Instr.Sge -> Printf.sprintf "(%s >= %s)" xa xb
  | _ -> unsupported "unsigned comparison on float"

(* Rendered constructor name for ops delegated to Eval. *)
let binop_ctor op = "Pvir.Instr." ^ String.capitalize_ascii (Instr.binop_name op)
let relop_ctor op = "Pvir.Instr." ^ String.capitalize_ascii (Instr.relop_name op)
let unop_ctor op = "Pvir.Instr." ^ String.capitalize_ascii (Instr.unop_name op)
let conv_ctor k = "Pvir.Instr." ^ String.capitalize_ascii (Instr.conv_name k)
let redop_ctor op = "Pvir.Instr." ^ String.capitalize_ascii (Instr.redop_name op)

(* ------------------------------------------------------------------ *)
(* Result unboxing for calls / Eval delegations                        *)

(** Emit [RES := <expr : V.t>] where RES is register [d]; shape mismatch
    is unreachable for verified programs. *)
let emit_unbox_value st d expr =
  let e =
    match reg_class st d with
    | KNarrow _ ->
      Printf.sprintf
        "(match %s with V.Int (_, x_) -> Int64.to_int x_ | _ -> assert false)"
        expr
    | KWide ->
      Printf.sprintf "(match %s with V.Int (_, x_) -> x_ | _ -> assert false)"
        expr
    | KFloat _ ->
      Printf.sprintf
        "(match %s with V.Float (_, x_) -> x_ | _ -> assert false)" expr
    | KBox -> expr
  in
  emit_set st d e

(** Emit the result handling for a call producing a [V.t option]. *)
let emit_call_result st (d : Instr.reg option) name call_expr =
  let no_value =
    Printf.sprintf "raise (ctx.A.trap %S)"
      (Printf.sprintf "call to %s produced no value" name)
  in
  match d with
  | None -> line st "ignore (%s : V.t option);" call_expr
  | Some d ->
    let e =
      match reg_class st d with
      | KNarrow _ ->
        Printf.sprintf
          "(match %s with Some (V.Int (_, x_)) -> Int64.to_int x_ | None -> \
           %s | Some _ -> assert false)"
          call_expr no_value
      | KWide ->
        Printf.sprintf
          "(match %s with Some (V.Int (_, x_)) -> x_ | None -> %s | Some _ \
           -> assert false)"
          call_expr no_value
      | KFloat _ ->
        Printf.sprintf
          "(match %s with Some (V.Float (_, x_)) -> x_ | None -> %s | Some _ \
           -> assert false)"
          call_expr no_value
      | KBox ->
        Printf.sprintf "(match %s with Some v_ -> v_ | None -> %s)" call_expr
          no_value
    in
    emit_set st d e

(* ------------------------------------------------------------------ *)
(* Instruction emission                                                *)

let scalar_size_of s = Types.scalar_size s

(** Emit the inline bounds check + direct byte access prelude for a
    memory operation at [a_] of [sz] bytes.  The slow path re-runs the
    engine's own checker, which raises the exact [Memory.Fault]. *)
let emit_bounds st sz =
  line st "if a_ < ng_ || a_ + %d > sz_ then M.check mem_ a_ %d;" sz sz

(** Emit [let a_ = <byte address> in] from the base register + offset. *)
let emit_addr st base off =
  match reg_class st base with
  | KNarrow _ -> line st "let a_ = %s + %d in" (rd st base) off
  | KWide -> line st "let a_ = Int64.to_int %s + %d in" (rd st base) off
  | _ -> unsupported "memory base r%d is not an integer register" base

let emit_instr st (i : Instr.t) =
  let d_cost = st.dispatch in
  match i with
  | Instr.Const (d, v) ->
    add_charge st (d_cost + 1);
    (match (reg_class st d, v) with
    | KNarrow s, Value.Int (s', x) when s = s' ->
      (* payloads are width-normalized, so they always fit an int; be
         defensive about hand-built un-normalized constants anyway *)
      if not (Int64.equal (Int64.of_int (Int64.to_int x)) x) then
        unsupported "un-normalized narrow constant for r%d" d;
      emit_set st d (Printf.sprintf "(%d)" (Int64.to_int x))
    | KWide, Value.Int (Types.I64, x) -> emit_set st d (int64_lit x)
    | KFloat s, Value.Float (s', x) when s = s' -> emit_set st d (float_lit x)
    | KBox, (Value.Vec _ as v) -> emit_set st d (value_lit v)
    | _ -> unsupported "constant shape mismatch for r%d" d);
    mark_def st d
  | Instr.Mov (d, a) ->
    add_charge st (d_cost + 1);
    if read_may_trap st [ a ] then flush st;
    emit_guard st a;
    if not (same_cls (reg_class st d) (reg_class st a)) then
      unsupported "mov class mismatch r%d := r%d" d a;
    emit_set st d (rd st a);
    mark_def st d
  | Instr.Gaddr (d, g) ->
    add_charge st (d_cost + 1);
    let addr =
      try Pvvm.Image.global_address st.img g
      with Invalid_argument m -> unsupported "%s" m
    in
    (match reg_class st d with
    | KWide -> emit_set st d (int64_lit (Int64.of_int addr))
    | _ -> unsupported "gaddr into non-i64 register r%d" d);
    mark_def st d
  | Instr.Binop (op, d, a, b) -> (
    (* the engines read [a] (for the lane count) before charging *)
    if read_may_trap st [ a ] then flush st;
    emit_guard st a;
    let cls_a = reg_class st a in
    let lanes =
      Types.lanes
        (try Func.reg_type st.fn a
         with Invalid_argument m -> unsupported "%s" m)
    in
    add_charge st (d_cost + lanes);
    if
      (not (same_cls cls_a (reg_class st b)))
      || not (same_cls (reg_class st d) cls_a)
    then unsupported "binop class mismatch at r%d" d;
    match cls_a with
    | KNarrow s ->
      if is_div_op op || read_may_trap st [ b ] then flush st;
      emit_guard st b;
      emit_set st d (narrow_binop_expr op s (rd st a) (rd st b));
      mark_def st d
    | KWide ->
      if is_div_op op || read_may_trap st [ b ] then flush st;
      emit_guard st b;
      emit_set st d (int_binop_expr st op Types.I64 (rd st a) (rd st b));
      mark_def st d
    | KFloat s ->
      if read_may_trap st [ b ] then flush st;
      emit_guard st b;
      emit_set st d (float_binop_expr op s (rd st a) (rd st b));
      mark_def st d
    | KBox ->
      flush st;
      emit_guard st b;
      emit_set st d
        (Printf.sprintf
           "(try Ev.binop %s %s %s with Ev.Division_by_zero -> raise \
            (ctx.A.trap \"division by zero\"))"
           (binop_ctor op) (rd st a) (rd st b));
      mark_def st d)
  | Instr.Unop (op, d, a) -> (
    add_charge st (d_cost + 1);
    if read_may_trap st [ a ] then flush st;
    emit_guard st a;
    if not (same_cls (reg_class st d) (reg_class st a)) then
      unsupported "unop class mismatch at r%d" d;
    match reg_class st a with
    | KNarrow s ->
      let e =
        match op with
        | Instr.Neg -> nrm_i s (Printf.sprintf "(- %s)" (rd st a))
        | Instr.Not -> nrm_i s (Printf.sprintf "(lnot %s)" (rd st a))
      in
      emit_set st d e;
      mark_def st d
    | KWide ->
      let e =
        match op with
        | Instr.Neg -> Printf.sprintf "(Int64.neg %s)" (rd st a)
        | Instr.Not -> Printf.sprintf "(Int64.lognot %s)" (rd st a)
      in
      emit_set st d e;
      mark_def st d
    | KFloat s ->
      (match op with
      | Instr.Neg ->
        emit_set st d (fnrm s (Printf.sprintf "(-. %s)" (rd st a)))
      | Instr.Not -> unsupported "not on float");
      mark_def st d
    | KBox ->
      flush st;
      emit_set st d (Printf.sprintf "(Ev.unop %s %s)" (unop_ctor op) (rd st a));
      mark_def st d)
  | Instr.Conv (kind, d, a) -> (
    add_charge st (d_cost + 1);
    if read_may_trap st [ a ] then flush st;
    emit_guard st a;
    let cd = reg_class st d and ca = reg_class st a in
    match (cd, ca) with
    | KBox, KBox ->
      flush st;
      let dst_ty =
        try Func.reg_type st.fn d
        with Invalid_argument m -> unsupported "%s" m
      in
      emit_set st d
        (Printf.sprintf "(Ev.conv %s %s %s)" (conv_ctor kind) (ty_lit dst_ty)
           (rd st a));
      mark_def st d
    | KBox, _ | _, KBox -> unsupported "mixed scalar/vector conversion"
    | _ ->
      let x = rd st a in
      let e =
        match (kind, ca, cd) with
        (* integer → integer; the int64 mirror is nrm_dst (uns_src x) for
           Zext and nrm_dst x for Sext/Trunc, transported between the
           native-int and int64 domains as needed (Int64.to_int keeps the
           low 63 bits, and every narrow result takes only the low w). *)
        | Instr.Zext, KNarrow sa, KNarrow sd -> nrm_i sd (uns_i sa x)
        | (Instr.Sext | Instr.Trunc), KNarrow _, KNarrow sd -> nrm_i sd x
        | Instr.Zext, KNarrow sa, KWide ->
          Printf.sprintf "(Int64.of_int %s)" (uns_i sa x)
        | (Instr.Sext | Instr.Trunc), KNarrow _, KWide ->
          Printf.sprintf "(Int64.of_int %s)" x
        | (Instr.Zext | Instr.Sext | Instr.Trunc), KWide, KNarrow sd ->
          nrm_i sd (Printf.sprintf "(Int64.to_int %s)" x)
        | (Instr.Zext | Instr.Sext | Instr.Trunc), KWide, KWide -> x
        (* integer → float (exact: narrow magnitudes are < 2^33) *)
        | Instr.Sitofp, KNarrow _, KFloat sd ->
          fnrm sd (Printf.sprintf "(float_of_int %s)" x)
        | Instr.Uitofp, KNarrow sa, KFloat sd ->
          fnrm sd (Printf.sprintf "(float_of_int %s)" (uns_i sa x))
        | Instr.Sitofp, KWide, KFloat sd ->
          fnrm sd (Printf.sprintf "(Int64.to_float %s)" x)
        | Instr.Uitofp, KWide, KFloat sd ->
          fnrm sd
            (Printf.sprintf
               "(let u_ = %s in if Int64.compare u_ 0L >= 0 then \
                Int64.to_float u_ else Int64.to_float u_ +. 0x1p64)"
               x)
        (* float → integer: always through the same Int64.of_float
           primitive the engines use, so even its out-of-range results
           match bit for bit *)
        | Instr.Fptosi, KFloat _, KNarrow sd ->
          nrm_i sd (Printf.sprintf "(Int64.to_int (Int64.of_float %s))" x)
        | Instr.Fptosi, KFloat _, KWide ->
          Printf.sprintf "(Int64.of_float %s)" x
        | Instr.Fptoui, KFloat _, KNarrow sd ->
          nrm_i sd
            (Printf.sprintf
               "(Int64.to_int (let x_ = %s in if x_ >= 0x1p63 then Int64.add \
                Int64.min_int (Int64.of_float (x_ -. 0x1p63)) else \
                Int64.of_float x_))"
               x)
        | Instr.Fptoui, KFloat _, KWide ->
          Printf.sprintf
            "(let x_ = %s in if x_ >= 0x1p63 then Int64.add Int64.min_int \
             (Int64.of_float (x_ -. 0x1p63)) else Int64.of_float x_)"
            x
        | Instr.Fpconv, KFloat _, KFloat sd -> fnrm sd x
        | _ -> unsupported "ill-typed conversion %s" (Instr.conv_name kind)
      in
      emit_set st d e;
      mark_def st d)
  | Instr.Cmp (op, d, a, b) -> (
    add_charge st (d_cost + 1);
    if read_may_trap st [ b; a ] then flush st;
    emit_guard st b;
    emit_guard st a;
    (match reg_class st d with
    | KNarrow Types.I32 -> ()
    | _ -> unsupported "cmp destination r%d is not i32" d);
    let ca = reg_class st a in
    if not (same_cls ca (reg_class st b)) then
      unsupported "cmp class mismatch at r%d" d;
    match ca with
    | KNarrow s ->
      emit_set st d
        (Printf.sprintf "(if %s then 1 else 0)"
           (narrow_cmp_expr op s (rd st a) (rd st b)));
      mark_def st d
    | KWide ->
      emit_set st d
        (Printf.sprintf "(if %s then 1 else 0)"
           (int_cmp_expr op Types.I64 (rd st a) (rd st b)));
      mark_def st d
    | KFloat _ ->
      emit_set st d
        (Printf.sprintf "(if %s then 1 else 0)"
           (float_cmp_expr op (rd st a) (rd st b)));
      mark_def st d
    | KBox ->
      flush st;
      emit_unbox_value st d
        (Printf.sprintf "(Ev.cmp %s %s %s)" (relop_ctor op) (rd st a) (rd st b));
      mark_def st d)
  | Instr.Select (d, c, a, b) ->
    add_charge st (d_cost + 1);
    let cond_boxed = reg_class st c = KBox in
    if cond_boxed || read_may_trap st [ b; a; c ] then flush st;
    emit_guard st b;
    emit_guard st a;
    emit_guard st c;
    if
      (not (same_cls (reg_class st d) (reg_class st a)))
      || not (same_cls (reg_class st a) (reg_class st b))
    then unsupported "select class mismatch at r%d" d;
    let cond =
      match reg_class st c with
      | KNarrow _ -> Printf.sprintf "(%s <> 0)" (rd st c)
      | KWide -> Printf.sprintf "(%s <> 0L)" (rd st c)
      | KFloat _ -> Printf.sprintf "(%s <> 0.0)" (rd st c)
      | KBox -> Printf.sprintf "(V.to_bool %s)" (rd st c)
    in
    emit_set st d
      (Printf.sprintf "(if %s then %s else %s)" cond (rd st a) (rd st b));
    mark_def st d
  | Instr.Load (ty, d, base, off) -> (
    add_charge st (d_cost + Types.lanes ty);
    flush st;
    emit_guard st base;
    emit_addr st base off;
    (match (ty, reg_class st d) with
    | Types.Scalar Types.I8, KNarrow Types.I8 ->
      emit_bounds st 1;
      emit_set st d "(Bytes.get_int8 buf_ a_)"
    | Types.Scalar Types.I16, KNarrow Types.I16 ->
      emit_bounds st 2;
      emit_set st d "(Bytes.get_int16_le buf_ a_)"
    | Types.Scalar Types.I32, KNarrow Types.I32 ->
      emit_bounds st 4;
      emit_set st d "(Int32.to_int (Bytes.get_int32_le buf_ a_))"
    | (Types.Scalar Types.I64 | Types.Ptr _), KWide ->
      emit_bounds st 8;
      emit_set st d "(Bytes.get_int64_le buf_ a_)"
    | Types.Scalar Types.F32, KFloat Types.F32 ->
      emit_bounds st 4;
      emit_set st d "(Int32.float_of_bits (Bytes.get_int32_le buf_ a_))"
    | Types.Scalar Types.F64, KFloat Types.F64 ->
      emit_bounds st 8;
      emit_set st d "(Int64.float_of_bits (Bytes.get_int64_le buf_ a_))"
    | Types.Vector _, KBox ->
      emit_set st d (Printf.sprintf "(M.load mem_ a_ %s)" (ty_lit ty))
    | _ -> unsupported "load type/class mismatch at r%d" d);
    mark_def st d)
  | Instr.Store (ty, src, base, off) ->
    add_charge st (d_cost + Types.lanes ty);
    flush st;
    emit_guard st base;
    emit_addr st base off;
    emit_guard st src;
    (match (ty, reg_class st src) with
    | Types.Scalar Types.I8, KNarrow Types.I8 ->
      emit_bounds st 1;
      line st "Bytes.set_uint8 buf_ a_ (%s land 0xFF);" (rd st src)
    | Types.Scalar Types.I16, KNarrow Types.I16 ->
      emit_bounds st 2;
      line st "Bytes.set_uint16_le buf_ a_ (%s land 0xFFFF);" (rd st src)
    | Types.Scalar Types.I32, KNarrow Types.I32 ->
      emit_bounds st 4;
      line st "Bytes.set_int32_le buf_ a_ (Int32.of_int %s);" (rd st src)
    | (Types.Scalar Types.I64 | Types.Ptr _), KWide ->
      emit_bounds st 8;
      line st "Bytes.set_int64_le buf_ a_ %s;" (rd st src)
    | Types.Scalar Types.F32, KFloat Types.F32 ->
      emit_bounds st 4;
      line st "Bytes.set_int32_le buf_ a_ (Int32.bits_of_float %s);" (rd st src)
    | Types.Scalar Types.F64, KFloat Types.F64 ->
      emit_bounds st 8;
      line st "Bytes.set_int64_le buf_ a_ (Int64.bits_of_float %s);" (rd st src)
    | Types.Vector _, KBox -> line st "M.store mem_ a_ %s;" (rd st src)
    | _ -> unsupported "store type/class mismatch at r%d" src)
  | Instr.Alloca (d, bytes) ->
    add_charge st (d_cost + 1);
    flush st;
    line st "ctx.A.sp <- ctx.A.sp - %d;" bytes;
    line st
      "if ctx.A.sp < ctx.A.globals_end then raise (ctx.A.trap \"stack \
       overflow\");";
    (match reg_class st d with
    | KWide -> emit_set st d "(Int64.of_int ctx.A.sp)"
    | _ -> unsupported "alloca into non-i64 register r%d" d);
    mark_def st d
  | Instr.Call (d, name, args) ->
    add_charge st (d_cost + 1);
    flush st;
    List.iter (fun r -> emit_guard st r) args;
    let argv = String.concat "; " (List.map (boxed st) args) in
    let call_expr =
      match Hashtbl.find_opt st.fnindex name with
      | Some k -> Printf.sprintf "(f_%d ctx [ %s ])" k argv
      | None -> Printf.sprintf "(ctx.A.intr %S [ %s ])" name argv
    in
    emit_call_result st d name call_expr;
    (match d with Some d -> mark_def st d | None -> ())
  | Instr.Splat (d, a) -> (
    add_charge st (d_cost + 1);
    let dst_ty =
      try Func.reg_type st.fn d with Invalid_argument m -> unsupported "%s" m
    in
    match dst_ty with
    | Types.Vector (_, n) ->
      if read_may_trap st [ a ] then flush st;
      emit_guard st a;
      (match reg_class st d with
      | KBox -> ()
      | _ -> unsupported "splat destination class mismatch at r%d" d);
      emit_set st d
        (Printf.sprintf "(V.Vec (Array.make %d %s))" n (boxed st a));
      mark_def st d
    | _ ->
      (* still bind [d] so later (unreachable) reads stay well-formed *)
      flush st;
      emit_set st d
        "(raise (ctx.A.trap \"splat destination is not a vector\"))";
      mark_def st d)
  | Instr.Extract (d, a, lane) ->
    add_charge st (d_cost + 1);
    flush st;
    emit_guard st a;
    (match reg_class st a with
    | KBox -> ()
    | _ -> unsupported "extract source r%d is not a vector register" a);
    emit_unbox_value st d (Printf.sprintf "(Ev.extract %s %d)" (rd st a) lane);
    mark_def st d
  | Instr.Reduce (op, d, a) ->
    add_charge st (d_cost + 1);
    flush st;
    emit_guard st a;
    (match reg_class st a with
    | KBox -> ()
    | _ -> unsupported "reduce source r%d is not a vector register" a);
    emit_unbox_value st d
      (Printf.sprintf "(Ev.reduce %s %s)" (redop_ctor op) (rd st a));
    mark_def st d

(* ------------------------------------------------------------------ *)
(* Must-assign dataflow                                                *)

(** Forward must-analysis over block indices.  [None] = not yet reached
    (⊤).  IN[entry] starts at the parameter set; IN[b] = ∩ OUT[preds].
    Conservative in both directions: a smaller IN set only adds runtime
    guard checks, never changes semantics. *)
let must_assigned (fn : Func.t) (blocks : Func.block array)
    (label_index : int -> int option) : IntSet.t option array =
  let n = Array.length blocks in
  let defs =
    Array.map
      (fun (b : Func.block) ->
        List.fold_left
          (fun s i ->
            match Instr.def i with Some d -> IntSet.add d s | None -> s)
          IntSet.empty b.Func.instrs)
      blocks
  in
  let in_ : IntSet.t option array = Array.make n None in
  if n > 0 then in_.(0) <- Some (IntSet.of_list fn.Func.params);
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = 0 to n - 1 do
      match in_.(bi) with
      | None -> ()
      | Some inb ->
        let outb = IntSet.union inb defs.(bi) in
        List.iter
          (fun l ->
            match label_index l with
            | None -> ()
            | Some si ->
              let next =
                match in_.(si) with
                | None -> outb
                | Some s -> IntSet.inter s outb
              in
              (match in_.(si) with
              | Some cur when IntSet.equal cur next -> ()
              | _ ->
                in_.(si) <- Some next;
                changed := true))
          (Instr.successors blocks.(bi).Func.term)
    done
  done;
  in_

(** Registers with at least one read the analysis cannot prove assigned:
    these get a runtime [bool ref] flag. *)
let guarded_regs (blocks : Func.block array)
    (in_ : IntSet.t option array) : IntSet.t =
  let guarded = ref IntSet.empty in
  Array.iteri
    (fun bi (b : Func.block) ->
      match in_.(bi) with
      | None -> ()
      | Some inb ->
        let set = ref inb in
        let read r =
          if not (IntSet.mem r !set) then begin
            guarded := IntSet.add r !guarded;
            set := IntSet.add r !set
          end
        in
        List.iter
          (fun i ->
            List.iter read (reads_in_order i);
            match Instr.def i with
            | Some d -> set := IntSet.add d !set
            | None -> ())
          b.Func.instrs;
        List.iter read (Instr.term_uses b.Func.term))
    blocks;
  !guarded

(** Registers whose every read is preceded, in the same block, by a def
    in that block.  These need no persistent storage: each def becomes a
    shadowing [let] binding, which the native compiler keeps in machine
    registers.  Params are excluded (their def is the entry unpacking). *)
let block_locals (fn : Func.t) (blocks : Func.block array)
    (in_ : IntSet.t option array) : IntSet.t =
  let nonlocal = ref (IntSet.of_list fn.Func.params) in
  let all = ref IntSet.empty in
  Array.iteri
    (fun bi (b : Func.block) ->
      if in_.(bi) <> None then begin
        let defs = ref IntSet.empty in
        let read r =
          all := IntSet.add r !all;
          if not (IntSet.mem r !defs) then nonlocal := IntSet.add r !nonlocal
        in
        List.iter
          (fun i ->
            List.iter read (reads_in_order i);
            match Instr.def i with
            | Some d ->
              all := IntSet.add d !all;
              defs := IntSet.add d !defs
            | None -> ())
          b.Func.instrs;
        List.iter read (Instr.term_uses b.Func.term)
      end)
    blocks;
  IntSet.diff !all !nonlocal

(* ------------------------------------------------------------------ *)
(* Function emission                                                   *)

let emit_terminator st blocks label_index (term : Instr.term) =
  (* block dispatch costs one charge of [dispatch_cost] cycles *)
  st.pc <- st.pc + st.dispatch;
  st.pi <- st.pi + 1;
  flush st;
  let target l =
    match label_index l with
    | Some j when j < Array.length blocks -> j
    | _ -> unsupported "branch to unknown block %d" l
  in
  match term with
  | Instr.Br l -> line st "b_%d ()" (target l)
  | Instr.Cbr (c, l1, l2) ->
    emit_guard st c;
    let cond =
      match reg_class st c with
      | KNarrow _ -> Printf.sprintf "%s <> 0" (rd st c)
      | KWide -> Printf.sprintf "%s <> 0L" (rd st c)
      | KFloat _ -> Printf.sprintf "%s <> 0.0" (rd st c)
      | KBox -> Printf.sprintf "V.to_bool %s" (rd st c)
    in
    line st "if %s then b_%d () else b_%d ()" cond (target l1) (target l2)
  | Instr.Ret None ->
    line st "(ctx.A.sp <- saved_sp_; None)"
  | Instr.Ret (Some r) ->
    emit_guard st r;
    line st "(let rv_ = %s in ctx.A.sp <- saved_sp_; Some rv_)" (boxed st r)

let emit_function buf img fnindex ~dispatch_cost ~first idx (fn : Func.t) =
  let blocks = Array.of_list fn.Func.blocks in
  let label_tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i (b : Func.block) ->
      if not (Hashtbl.mem label_tbl b.Func.label) then
        Hashtbl.add label_tbl b.Func.label i)
    blocks;
  let label_index l = Hashtbl.find_opt label_tbl l in
  let in_ = must_assigned fn blocks label_index in
  let guarded = guarded_regs blocks in_ in
  let block_local = block_locals fn blocks in_ in
  let st =
    {
      buf;
      fn;
      dispatch = dispatch_cost;
      classes = Hashtbl.create 32;
      wide_slot = Hashtbl.create 16;
      float_slot = Hashtbl.create 16;
      block_local;
      guarded;
      fnindex;
      img;
      ind = "";
      assigned = IntSet.empty;
      pc = 0;
      pi = 0;
    }
  in
  (* Collect every register that appears in reachable code, so that all
     bindings exist before the block bodies reference them. *)
  let appearing = ref (IntSet.of_list fn.Func.params) in
  Array.iteri
    (fun bi (b : Func.block) ->
      if in_.(bi) <> None then begin
        List.iter
          (fun i ->
            List.iter
              (fun r -> appearing := IntSet.add r !appearing)
              (Instr.uses i);
            match Instr.def i with
            | Some d -> appearing := IntSet.add d !appearing
            | None -> ())
          b.Func.instrs;
        List.iter
          (fun r -> appearing := IntSet.add r !appearing)
          (Instr.term_uses b.Func.term)
      end)
    blocks;
  (* Assign storage: KWide regs get indices in the [ir_] scratch,
     KFloat regs get indices in the [fr_] float array.  Block-local regs
     live purely in [let] bindings and get no storage at all. *)
  let nwide = ref 0 and nfloat = ref 0 in
  IntSet.iter
    (fun r ->
      if not (IntSet.mem r block_local) then
        match reg_class st r with
        | KWide ->
          Hashtbl.replace st.wide_slot r !nwide;
          incr nwide
        | KFloat _ ->
          Hashtbl.replace st.float_slot r !nfloat;
          incr nfloat
        | KNarrow _ | KBox -> ())
    !appearing;
  let kw = if first then "let rec" else "and" in
  line st "%s f_%d (ctx : A.ctx) (args_ : V.t list) : V.t option =" kw idx;
  st.ind <- "  ";
  line st "ctx.A.calls <- ctx.A.calls + 1;";
  let nparams = List.length fn.Func.params in
  let pat =
    if nparams = 0 then "[]"
    else
      "[ "
      ^ String.concat "; "
          (List.mapi (fun i _ -> Printf.sprintf "p%d_" i) fn.Func.params)
      ^ " ]"
  in
  line st "match args_ with";
  line st "| %s ->" pat;
  st.ind <- "    ";
  if Array.length blocks = 0 then
    (* dcall's exact no-blocks error, after call count and arity *)
    line st "invalid_arg %S"
      (Printf.sprintf "Func.entry: %s has no blocks" fn.Func.name)
  else begin
    line st "let mem_ = ctx.A.mem in";
    line st "let buf_ = mem_.M.bytes in";
    line st "let ng_ = mem_.M.null_guard in";
    line st "let sz_ = mem_.M.size in";
    line st "let saved_sp_ = ctx.A.sp in";
    line st "ignore buf_; ignore ng_; ignore sz_;";
    if !nwide > 0 then begin
      (* the static type annotation is what lets the compiler specialize
         unsafe_get/unsafe_set to raw unboxed 64-bit access *)
      line st
        "let ir_ : (int64, Bigarray.int64_elt, Bigarray.c_layout) \
         Bigarray.Array1.t =";
      line st
        "  Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout %d in"
        !nwide;
      line st "Bigarray.Array1.fill ir_ 0L;"
    end;
    if !nfloat > 0 then line st "let fr_ = Array.make %d 0.0 in" !nfloat;
    (* parameter unpacking into class-typed storage *)
    List.iteri
      (fun i r ->
        match reg_class st r with
        | KNarrow _ ->
          line st
            "let ri_%d = ref (match p%d_ with V.Int (_, x_) -> Int64.to_int \
             x_ | _ -> assert false) in"
            r i
        | KWide ->
          line st
            "Bigarray.Array1.unsafe_set ir_ %d (match p%d_ with V.Int (_, \
             x_) -> x_ | _ -> assert false);"
            (Hashtbl.find st.wide_slot r)
            i
        | KFloat _ ->
          line st
            "Array.unsafe_set fr_ %d (match p%d_ with V.Float (_, x_) -> x_ \
             | _ -> assert false);"
            (Hashtbl.find st.float_slot r)
            i
        | KBox -> line st "let rb_%d = ref p%d_ in" r i)
      fn.Func.params;
    (* remaining ref-class register bindings (wide/float slots are
       already zeroed storage) *)
    let params = IntSet.of_list fn.Func.params in
    IntSet.iter
      (fun r ->
        if not (IntSet.mem r params || IntSet.mem r block_local) then
          match reg_class st r with
          | KNarrow _ -> line st "let ri_%d = ref 0 in" r
          | KBox -> line st "let rb_%d = ref (V.Vec [||]) in" r
          | KWide | KFloat _ -> ())
      !appearing;
    (* guard flags: params start assigned *)
    IntSet.iter
      (fun r ->
        line st "let gu_%d = ref %b in" r (IntSet.mem r params))
      guarded;
    (* block bodies *)
    Array.iteri
      (fun bi (b : Func.block) ->
        match in_.(bi) with
        | None -> ()  (* unreachable: never emitted, never entered *)
        | Some inb ->
          let kw = if bi = 0 then "let rec" else "and" in
          line st "%s b_%d () : V.t option =" kw bi;
          st.ind <- "      ";
          st.assigned <- inb;
          st.pc <- 0;
          st.pi <- 0;
          List.iter (emit_instr st) b.Func.instrs;
          emit_terminator st blocks label_index b.Func.term;
          st.ind <- "    ")
      blocks;
    line st "in b_0 ()"
  end;
  st.ind <- "  ";
  line st "| _ -> raise (ctx.A.trap %S)"
    (Printf.sprintf "arity mismatch calling %s" fn.Func.name)

(* ------------------------------------------------------------------ *)
(* Program emission                                                    *)

let header =
  String.concat "\n"
    [
      "(* Generated by pvaot (interpreter backend); do not edit. *)";
      (* Aliases name the wrapped units directly: [module A = Pvvm.Aotabi]
         would project from the [Pvvm] wrapper's module block at init
         time, and hosts drop the (pure-alias) wrapper implementation at
         link time — the plugin would fail to load with "no
         implementation available for Pvvm". *)
      "module V = Pvir__Value";
      "module Ty = Pvir__Types";
      "module Ev = Pvir__Eval";
      "module A = Pvvm__Aotabi";
      "module M = Pvvm__Memory";
      "";
    ]

(** Generate plugin source for every function of the image's program.
    Returns [(digest, src_digest, source)] where [src_digest] identifies
    the generated body (the loader's staleness check); raises
    {!Unsupported} (or any exception out of program introspection) when
    exact compilation is not possible — callers treat every exception as
    "fall back". *)
let generate (img : Pvvm.Image.t) ~dispatch_cost : string * string * string =
  let prog = img.Pvvm.Image.prog in
  (* The pretty-printed program alone under-keys the cache: [Pp] never
     prints global annotations, so two programs differing only in their
     annotation sets would collide.  Fold the canonical annotation dump
     in as its own section. *)
  let digest =
    Build.digest_of_dump
      (Printf.sprintf "interp\x00%d\x00%s\x00annots\x00%s" dispatch_cost
         (Pvir.Pp.program_to_string prog)
         (Pvir.Prog.annotations_dump prog))
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf header;
  let fnindex = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Func.t) ->
      if not (Hashtbl.mem fnindex f.Func.name) then
        Hashtbl.add fnindex f.Func.name i)
    prog.Pvir.Prog.funcs;
  List.iteri
    (fun i (f : Func.t) ->
      (* duplicate names: only the first is callable, but all are emitted
         so indices stay aligned *)
      emit_function buf img fnindex ~dispatch_cost ~first:(i = 0) i f)
    prog.Pvir.Prog.funcs;
  (* digest of the generated body so far — baked into the plugin's
     registration and re-derived by the loader from the current
     generator's output, so a cached artifact built by an older
     generator is rejected at load time (the staleness guard) *)
  let src_digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  Buffer.add_string buf "\nlet () =\n";
  Buffer.add_string buf
    (Printf.sprintf "  A.register_src %S ~src:%S\n" digest src_digest);
  (* one entry per distinct name, bound to its first definition *)
  let entries =
    List.filteri
      (fun i (f : Func.t) -> Hashtbl.find_opt fnindex f.Func.name = Some i)
      prog.Pvir.Prog.funcs
    |> List.map (fun (f : Func.t) ->
           Printf.sprintf "(%S, f_%d)" f.Func.name
             (Hashtbl.find fnindex f.Func.name))
  in
  Buffer.add_string buf
    ("    [ " ^ String.concat "; " entries ^ " ]\n");
  (digest, src_digest, Buffer.contents buf)
