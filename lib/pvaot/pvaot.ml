(** AOT native backend: PVIR (and JIT-lowered MIR) compiled to OCaml,
    loaded with [Dynlink], and run behind the existing engine interface.

    [install ()] points the [Pvvm.Interp.aot_hook] / [Pvvm.Sim.aot_hook]
    inversion points at runners in this module.  Each runner prepares
    compiled code for the engine's program (memoized per image / code
    snapshot, backed by a digest-keyed on-disk artifact cache), seeds an
    {!Pvvm.Aotabi.ctx} from the engine state, runs the plugin entry and
    flushes counters back — falling back to the threaded engine whenever
    the toolchain is unavailable, the program uses something the
    generator does not support, or the entry arguments do not match the
    declared parameter shapes.  Fallback preserves observable behaviour
    exactly, so selecting the AOT engine is always safe. *)

module Aotabi = Pvvm.Aotabi

(* Re-exported for tests and harnesses: toolchain probe, compile retry
   knobs, cache layout, and the source generators (cache-key regression
   tests digest through them directly). *)
module Build = Build
module Interp_gen = Interp_gen

(* ------------------------------------------------------------------ *)
(* Degradation ledger                                                  *)

(* All module-level mutable state below (ledger cell, once-flags, the
   three prepared-code memos) is process-global and may be touched from
   several Domains at once — [mu] covers every read-modify-write.  The
   out-of-process compile itself runs outside the lock (it is the slow
   part and [Build] serializes the disk cache internally). *)
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let ledger : Pvtrace.Ledger.t option ref = ref None
let unavailable_recorded = ref false

let set_ledger l =
  locked (fun () ->
      ledger := l;
      unavailable_recorded := false)

(** One ledger entry per process (or per [set_ledger]): the fallback
    itself is per-call, but the operator only needs to learn once that
    the AOT tier is dark. *)
let record_unavailable ~subject reason =
  let fresh =
    locked (fun () ->
        if !unavailable_recorded then false
        else begin
          unavailable_recorded := true;
          true
        end)
  in
  if fresh then
    Pvtrace.Ledger.record_opt !ledger Pvtrace.Ledger.Aot_unavailable ~subject
      ~detail:reason

(* Re-exported probe controls (see {!Build}). *)
let set_forced_unavailable = Build.set_forced_unavailable
let set_cache_dir = Build.set_cache_dir
let available = Build.available

let unavailable_reason () =
  match Build.toolchain () with Ok _ -> None | Error e -> Some e

(* ------------------------------------------------------------------ *)
(* Prepared-code memos                                                 *)

type prepared = {
  digest : string;
  entries : (string * Aotabi.entry) list;
  origin : string;  (** "compiled" | "disk-cache" | "memo" *)
}

type outcome = Ready of prepared | Fallback of string

(* Loaded plugins by digest: a second image of the same program (the
   oracle reloads constantly) reuses the already-linked code. *)
let digest_memo : (string, (string * Aotabi.entry) list) Hashtbl.t =
  Hashtbl.create 8

(* Per-image outcome memo, keyed by physical identity: the hot path
   (bench loops re-running one image) must not re-generate source just
   to rediscover the digest. *)
let interp_memo : (Pvvm.Image.t * int * outcome) list ref = ref []
let memo_cap = 8

(* Per-simulator memo: the outcome is valid only for the code-cache
   snapshot it was generated from, so each hit re-validates the snapshot
   by physical identity (an [add_func] invalidates it). *)
type sim_memo_entry = {
  sm_sim : Pvvm.Sim.t;
  sm_snapshot : (string * Pvmach.Mir.func) list;
  sm_outcome : outcome;
}

let sim_memo : sim_memo_entry list ref = ref []

let reset_memos () =
  locked (fun () ->
      interp_memo := [];
      sim_memo := [];
      Hashtbl.reset digest_memo)

(** Compile (or fetch) plugin entries for [digest]/[source], with
    per-phase spans on the JIT track of [tr].

    [src_digest] is the digest of the generated source body the current
    generator produces; every loaded plugin (fresh or cached) must
    register the same one.  A mismatch means the artifact cache holds
    output of an older generator — e.g. a codegen change without a
    [Build.codegen_version] bump — and is handled loudly: a ledger entry,
    eviction of the stale artifact, one fresh recompile.  If even the
    fresh build registers the wrong digest the generator itself is
    broken, and the backend degrades to threaded. *)
let build_entries tr ~subject ~digest ~src_digest ~source : outcome =
  match locked (fun () -> Hashtbl.find_opt digest_memo digest) with
  | Some entries -> Ready { digest; entries; origin = "memo" }
  | None ->
    let span name f =
      Pvtrace.Trace.with_span tr ~tid:Pvtrace.Trace.track_jit ~cat:"aot"
        ~args:[ ("digest", digest) ]
        name f
    in
    let load_verified path =
      match span "aot:load" (fun () -> Build.load_plugin ~digest path) with
      | Error e -> Error ("load: " ^ e)
      | Ok reg ->
        if reg.Aotabi.src_digest = Some src_digest then Ok reg.Aotabi.entries
        else
          Error
            (Printf.sprintf
               "stale artifact: plugin built from source %s, generator now \
                emits %s"
               (match reg.Aotabi.src_digest with
               | Some d -> d
               | None -> "<unstamped>")
               src_digest)
    in
    let ready entries origin =
      locked (fun () -> Hashtbl.replace digest_memo digest entries);
      Ready { digest; entries; origin }
    in
    (match
       span "aot:compile" (fun () -> Build.ensure_artifact ~digest ~source)
     with
    | Error e ->
      record_unavailable ~subject e;
      Fallback ("compile: " ^ e)
    | Ok (path, origin) -> (
      match load_verified path with
      | Ok entries -> ready entries (Build.origin_name origin)
      | Error e when origin = Build.Disk_cache -> (
        (* A cached artifact that fails verification (or fails to load at
           all) is evicted and rebuilt once from the current generator. *)
        Pvtrace.Ledger.record_opt !ledger
          (Pvtrace.Ledger.Other "aot-stale-cache") ~subject ~detail:e;
        (try Sys.remove path with Sys_error _ -> ());
        match
          span "aot:compile" (fun () -> Build.ensure_artifact ~digest ~source)
        with
        | Error e2 ->
          record_unavailable ~subject e2;
          Fallback ("compile: " ^ e2)
        | Ok (path2, _) -> (
          match load_verified path2 with
          | Ok entries -> ready entries "recompiled"
          | Error e2 ->
            record_unavailable ~subject e2;
            Fallback e2))
      | Error e ->
        record_unavailable ~subject e;
        Fallback e))

(* ------------------------------------------------------------------ *)
(* Entry argument validation                                           *)

(* The generated code unboxes parameters by their *declared* class; a
   caller-supplied value of a different runtime shape would be
   mis-unboxed, so such calls run threaded instead. *)
let rec value_matches (ty : Pvir.Types.t) (v : Pvir.Value.t) =
  match (ty, v) with
  | Pvir.Types.Scalar s, Pvir.Value.Int (s', _) ->
    (not (Pvir.Types.is_float_scalar s)) && s = s'
  | Pvir.Types.Ptr _, Pvir.Value.Int (Pvir.Types.I64, _) -> true
  | Pvir.Types.Scalar s, Pvir.Value.Float (s', _) ->
    Pvir.Types.is_float_scalar s && s = s'
  | Pvir.Types.Vector (s, n), Pvir.Value.Vec es ->
    Array.length es = n
    && Array.for_all (fun e -> value_matches (Pvir.Types.Scalar s) e) es
  | _ -> false

let args_match (fn : Pvir.Func.t) (args : Pvir.Value.t list) =
  List.length args = List.length fn.Pvir.Func.params
  && List.for_all2
       (fun p v ->
         match Pvir.Func.reg_type fn p with
         | ty -> value_matches ty v
         | exception Invalid_argument _ -> false)
       fn.Pvir.Func.params args

(* ------------------------------------------------------------------ *)
(* Interpreter runner                                                  *)

let clamp_fuel (fuel : int64) =
  if Int64.compare fuel (Int64.of_int max_int) >= 0 then max_int
  else Int64.to_int fuel

let interp_ctx (t : Pvvm.Interp.t) : Aotabi.ctx =
  {
    Aotabi.mem = t.Pvvm.Interp.img.Pvvm.Image.mem;
    globals_end = t.Pvvm.Interp.img.Pvvm.Image.globals_end;
    sp = t.Pvvm.Interp.sp;
    cycles = Int64.to_int t.Pvvm.Interp.stats.Pvvm.Interp.cycles;
    instrs = Int64.to_int t.Pvvm.Interp.stats.Pvvm.Interp.instrs;
    spills = 0;
    calls = t.Pvvm.Interp.stats.Pvvm.Interp.calls;
    fuel = clamp_fuel t.Pvvm.Interp.fuel;
    trap = (fun m -> Pvvm.Interp.Trap m);
    fuel_exn = Pvvm.Interp.Trap Pvvm.Interp.fuel_exhausted_msg;
    intr = (fun name args -> Pvvm.Interp.intrinsic t name args);
  }

let flush_interp_ctx (t : Pvvm.Interp.t) (c : Aotabi.ctx) =
  t.Pvvm.Interp.stats.Pvvm.Interp.cycles <- Int64.of_int c.Aotabi.cycles;
  t.Pvvm.Interp.stats.Pvvm.Interp.instrs <- Int64.of_int c.Aotabi.instrs;
  t.Pvvm.Interp.stats.Pvvm.Interp.calls <- c.Aotabi.calls;
  t.Pvvm.Interp.sp <- c.Aotabi.sp

(** Prepare (or fetch) compiled code for an interpreter's image. *)
let prepare_interp (t : Pvvm.Interp.t) : outcome =
  let img = t.Pvvm.Interp.img in
  let dc = t.Pvvm.Interp.dispatch_cost in
  match
    locked (fun () ->
        List.find_opt (fun (i, d, _) -> i == img && d = dc) !interp_memo)
  with
  | Some (_, _, o) -> o
  | None ->
    let o =
      match Build.toolchain () with
      | Error e ->
        record_unavailable ~subject:"interp" e;
        Fallback ("toolchain: " ^ e)
      | Ok _ -> (
        match
          Pvtrace.Trace.with_span t.Pvvm.Interp.tr
            ~tid:Pvtrace.Trace.track_jit ~cat:"aot" "aot:codegen" (fun () ->
              Interp_gen.generate img ~dispatch_cost:dc)
        with
        | exception e -> Fallback ("codegen: " ^ Printexc.to_string e)
        | digest, src_digest, source ->
          build_entries t.Pvvm.Interp.tr ~subject:"interp" ~digest ~src_digest
            ~source:(fun () -> source))
    in
    locked (fun () ->
        interp_memo :=
          (img, dc, o)
          :: (if List.length !interp_memo >= memo_cap then
                List.filteri (fun i _ -> i < memo_cap - 1) !interp_memo
              else !interp_memo));
    o

let interp_runner (t : Pvvm.Interp.t) (fn : Pvir.Func.t)
    (args : Pvir.Value.t list) : Pvir.Value.t option =
  let fallback () = Pvvm.Interp.threaded_call t fn args in
  (* An armed checkpoint needs safepoint polls and virtual-register
     capture, which compiled code cannot provide mid-activation: the
     whole activation runs threaded instead (accounting-identical by
     construction), so the snapshot is bit-identical to every other
     engine's. *)
  if Pvvm.Interp.ckpt_armed t then fallback ()
  else if t.Pvvm.Interp.profile <> None then fallback ()
    (* the sampler needs block-entry polls and the shadow activation
       stack, neither of which generated code maintains — same contract
       as the checkpoint fallback above, and accounting-identical, so
       the sampled stream matches the other engines bit for bit *)
  else if t.Pvvm.Interp.sampler <> None then fallback ()
  else
    match Pvvm.Image.find_func t.Pvvm.Interp.img fn.Pvir.Func.name with
    | Some f when f == fn -> (
      match prepare_interp t with
      | Fallback _ -> fallback ()
      | Ready p -> (
        match List.assoc_opt fn.Pvir.Func.name p.entries with
        | None -> fallback ()
        | Some entry ->
          (* wrong arity goes through: the plugin raises the engine's
             exact arity trap; wrong shapes cannot be unboxed safely *)
          if
            List.length args = List.length fn.Pvir.Func.params
            && not (args_match fn args)
          then fallback ()
          else
            let c = interp_ctx t in
            Fun.protect
              ~finally:(fun () -> flush_interp_ctx t c)
              (fun () -> entry c args)))
    | _ -> fallback ()

(* ------------------------------------------------------------------ *)
(* Simulator runner                                                    *)

let sim_snapshot (t : Pvvm.Sim.t) : (string * Pvmach.Mir.func) list =
  Hashtbl.fold
    (fun name (ce : Pvvm.Sim.centry) acc -> (name, ce.Pvvm.Sim.cfn) :: acc)
    t.Pvvm.Sim.code []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, f1) (n2, f2) -> String.equal n1 n2 && f1 == f2)
       a b

let sim_ctx (t : Pvvm.Sim.t) : Aotabi.ctx =
  {
    Aotabi.mem = t.Pvvm.Sim.img.Pvvm.Image.mem;
    globals_end = t.Pvvm.Sim.img.Pvvm.Image.globals_end;
    sp = t.Pvvm.Sim.sp;
    cycles = Int64.to_int t.Pvvm.Sim.stats.Pvvm.Sim.cycles;
    instrs = Int64.to_int t.Pvvm.Sim.stats.Pvvm.Sim.instrs;
    spills = Int64.to_int t.Pvvm.Sim.stats.Pvvm.Sim.spill_ops;
    calls = 0;
    fuel = clamp_fuel t.Pvvm.Sim.fuel;
    trap = (fun m -> Pvvm.Sim.Trap m);
    fuel_exn = Pvvm.Sim.Trap Pvvm.Sim.fuel_exhausted_msg;
    intr = (fun name args -> Pvvm.Sim.intrinsic t name args);
  }

let flush_sim_ctx (t : Pvvm.Sim.t) (c : Aotabi.ctx) =
  t.Pvvm.Sim.stats.Pvvm.Sim.cycles <- Int64.of_int c.Aotabi.cycles;
  t.Pvvm.Sim.stats.Pvvm.Sim.instrs <- Int64.of_int c.Aotabi.instrs;
  t.Pvvm.Sim.stats.Pvvm.Sim.spill_ops <- Int64.of_int c.Aotabi.spills;
  t.Pvvm.Sim.sp <- c.Aotabi.sp

(** Prepare (or fetch) compiled code for a simulator's current code
    cache. *)
let prepare_sim (t : Pvvm.Sim.t) : outcome =
  let snap = sim_snapshot t in
  match locked (fun () -> List.find_opt (fun e -> e.sm_sim == t) !sim_memo) with
  | Some e when snapshot_equal snap e.sm_snapshot -> e.sm_outcome
  | hit ->
    let o =
      match Build.toolchain () with
      | Error e ->
        record_unavailable ~subject:"sim" e;
        Fallback ("toolchain: " ^ e)
      | Ok _ -> (
        match
          Pvtrace.Trace.with_span t.Pvvm.Sim.tr ~tid:Pvtrace.Trace.track_jit
            ~cat:"aot" "aot:codegen" (fun () ->
              Sim_gen.generate t.Pvvm.Sim.machine snap)
        with
        | exception e -> Fallback ("codegen: " ^ Printexc.to_string e)
        | digest, src_digest, source ->
          build_entries t.Pvvm.Sim.tr ~subject:"sim" ~digest ~src_digest
            ~source:(fun () -> source))
    in
    let entry = { sm_sim = t; sm_snapshot = snap; sm_outcome = o } in
    locked (fun () ->
        let rest =
          match hit with
          | Some _ -> List.filter (fun e -> not (e.sm_sim == t)) !sim_memo
          | None ->
            if List.length !sim_memo >= memo_cap then
              List.filteri (fun i _ -> i < memo_cap - 1) !sim_memo
            else !sim_memo
        in
        sim_memo := entry :: rest);
    o

let sim_runner (t : Pvvm.Sim.t) (fn : Pvmach.Mir.func)
    (args : Pvir.Value.t list) : Pvir.Value.t option =
  let fallback () = Pvvm.Sim.threaded_call t fn args in
  match Hashtbl.find_opt t.Pvvm.Sim.code fn.Pvmach.Mir.mname with
  | Some ce when ce.Pvvm.Sim.cfn == fn -> (
    match prepare_sim t with
    | Fallback _ -> fallback ()
    | Ready p -> (
      match List.assoc_opt fn.Pvmach.Mir.mname p.entries with
      | None -> fallback ()
      | Some entry ->
        (* everything stays boxed in the generated code, so no argument
           shape validation is needed; arity mismatches raise the
           engine's exact trap inside the plugin *)
        let c = sim_ctx t in
        Fun.protect
          ~finally:(fun () -> flush_sim_ctx t c)
          (fun () -> entry c args)))
  | _ -> fallback ()

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)

let installed = ref false

(** Point the engines' AOT hooks here.  Idempotent; [ledger] (when
    given) receives one [Aot_unavailable] entry if the backend cannot
    run. *)
let install ?(ledger : Pvtrace.Ledger.t option) () =
  (match ledger with Some _ -> set_ledger ledger | None -> ());
  let first =
    locked (fun () ->
        if !installed then false
        else begin
          installed := true;
          true
        end)
  in
  if first then begin
    Pvvm.Interp.aot_hook := interp_runner;
    Pvvm.Sim.aot_hook := sim_runner
  end

(* ------------------------------------------------------------------ *)
(* Test introspection                                                  *)

(** [interp_status t] — what would the AOT engine do for this
    interpreter?  [Ok (digest, origin)] when compiled code is ready
    (origin one of "compiled", "disk-cache", "memo"), [Error reason]
    when calls would fall back to the threaded engine. *)
let interp_status (t : Pvvm.Interp.t) : (string * string, string) result =
  if t.Pvvm.Interp.profile <> None then Error "profiling enabled"
  else if t.Pvvm.Interp.sampler <> None then Error "sampling enabled"
  else
    match prepare_interp t with
    | Ready p -> Ok (p.digest, p.origin)
    | Fallback r -> Error r

(** [sim_status t] — same, for a simulator's code cache. *)
let sim_status (t : Pvvm.Sim.t) : (string * string, string) result =
  match prepare_sim t with
  | Ready p -> Ok (p.digest, p.origin)
  | Fallback r -> Error r
