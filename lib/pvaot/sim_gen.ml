(** MIR → OCaml code generation for the AOT simulator engine.

    One OCaml function per code-cache entry, basic blocks as a
    tail-recursive nest of local functions, registers and spill slots as
    [let]-bound [Pvir.Value.t ref]s sharing the engines' uninitialized
    sentinel trick (a unique empty-vector block recognized by physical
    identity).  Values stay boxed and all arithmetic delegates to
    {!Pvir.Eval} — the same code both simulator engines run — so results
    are bit-identical by construction.

    Unlike the interpreter backend, accounting is charged *immediately*
    per executed instruction (the {!Pvmach.Cost} numbers are baked into
    the generated source as constants), so cycles, instructions and
    spill traffic match the tree-walk and threaded engines on every
    outcome — fuel exhaustion included.  The differential oracle
    therefore compares simulator-AOT accounting unconditionally.

    Calls are resolved statically against a snapshot of the simulator's
    code cache: a callee in the snapshot becomes a direct call to its
    generated function, anything else goes to the host's intrinsic
    dispatcher — exactly the dynamic [Hashtbl.find_opt] split of the
    engines, valid because the runner re-validates the snapshot (by
    physical identity) before reusing compiled code.

    Like the interpreter backend, generated code polls no safepoints —
    checkpoint and sampling thresholds are block-entry concerns of the
    interpreting engines, and activations that need them run threaded
    via the runner's fallback (see [pvaot.ml]).

    Anything the generator cannot prove it can compile exactly —
    malformed instruction shapes, statically out-of-range physical
    registers, branches to unknown labels — raises {!Unsupported}; the
    caller falls back to the threaded engine, which owns the runtime
    trap messages for those cases. *)

open Pvmach
module Value = Pvir.Value

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* Literal rendering is shared with the interpreter backend; its
   [Unsupported] (empty vector constants) is also ours to raise. *)
let value_lit (v : Value.t) =
  try Interp_gen.value_lit v
  with Interp_gen.Unsupported m -> unsupported "%s" m

let ty_lit = Interp_gen.ty_lit

(* ------------------------------------------------------------------ *)
(* Registers and slots                                                 *)

let reg_name (r : Mir.reg) =
  match r with
  | Mir.V v -> Printf.sprintf "rv_%d" v
  | Mir.P (Mir.Gpr, i) -> Printf.sprintf "rg_%d" i
  | Mir.P (Mir.Fpr, i) -> Printf.sprintf "rf_%d" i
  | Mir.P (Mir.Vec, i) -> Printf.sprintf "rx_%d" i

let slot_name slot = Printf.sprintf "sl_%d" slot

(* The engines size physical files as [max 1 count] and range-check
   indices against the array length; an index the check would reject is
   compiled by falling back (the threaded engine owns the trap). *)
let check_reg (m : Machine.t) (r : Mir.reg) =
  match r with
  | Mir.V _ -> ()
  | Mir.P (cls, i) ->
    let count =
      match cls with
      | Mir.Gpr -> max 1 m.Machine.int_regs
      | Mir.Fpr -> max 1 m.Machine.fp_regs
      | Mir.Vec -> max 1 m.Machine.vec_regs
    in
    if i < 0 || i >= count then
      unsupported "physical register index %d out of range" i

(* Read of register [r] as an expression: the uninitialized sentinel
   raises the engines' exact trap message. *)
let reg_read (r : Mir.reg) =
  let msg =
    match r with
    | Mir.V v -> Printf.sprintf "read of uninitialized virtual register v%d" v
    | Mir.P _ ->
      Printf.sprintf "read of uninitialized register %s" (Mir.reg_to_string r)
  in
  Printf.sprintf
    "(let x_ = !%s in if x_ == uninit_ then raise (ctx.A.trap %S) else x_)"
    (reg_name r) msg

(* ------------------------------------------------------------------ *)
(* Per-function generation state                                       *)

type st = {
  buf : Buffer.t;
  fn : Mir.func;
  machine : Machine.t;
  fnindex : (string, int) Hashtbl.t;  (** snapshot name → index *)
  mutable ind : string;
}

let line st fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string st.buf st.ind;
      Buffer.add_string st.buf s;
      Buffer.add_char st.buf '\n')
    fmt

(* Operand [k] of [i]: a register read or the folded immediate (always
   the last operand). *)
let operand st (i : Mir.inst) k =
  let n = List.length i.Mir.srcs in
  if k < n then begin
    let r = List.nth i.Mir.srcs k in
    check_reg st.machine r;
    reg_read r
  end
  else
    match i.Mir.imm with
    | Some v when k = n -> value_lit v
    | _ -> unsupported "instruction lacks operand %d" k

let dst st (i : Mir.inst) =
  match i.Mir.dst with
  | Some d ->
    check_reg st.machine d;
    d
  | None -> unsupported "instruction lacks a destination"

let set st d expr = line st "%s := %s;" (reg_name d) expr

(* ------------------------------------------------------------------ *)
(* Instruction emission                                                *)

(* Multi-operand reads happen right-to-left (function-application order
   of the tree-walker, explicit in the threaded engine), so that
   uninitialized-read traps pick the same register. *)
let emit_inst st (i : Mir.inst) =
  line st "chg_ ctx %d;" (Cost.of_inst st.machine i);
  (match i.Mir.op with
  | Mir.Mframe_ld _ | Mir.Mframe_st _ ->
    line st "ctx.A.spills <- ctx.A.spills + 1;"
  | _ -> ());
  match i.Mir.op with
  | Mir.Mli v -> set st (dst st i) (value_lit v)
  | Mir.Mmov -> set st (dst st i) (operand st i 0)
  | Mir.Mbin op ->
    let d = dst st i in
    line st "let o1_ = %s in" (operand st i 1);
    line st "let o0_ = %s in" (operand st i 0);
    line st
      "(try %s := Ev.binop %s o0_ o1_ with Ev.Division_by_zero -> raise \
       (ctx.A.trap \"division by zero\"));"
      (reg_name d)
      (Interp_gen.binop_ctor op)
  | Mir.Mun op ->
    set st (dst st i)
      (Printf.sprintf "Ev.unop %s %s" (Interp_gen.unop_ctor op)
         (operand st i 0))
  | Mir.Mconv kind ->
    set st (dst st i)
      (Printf.sprintf "Ev.conv %s %s %s" (Interp_gen.conv_ctor kind)
         (ty_lit i.Mir.ty) (operand st i 0))
  | Mir.Mcmp op ->
    let d = dst st i in
    line st "let o1_ = %s in" (operand st i 1);
    line st "let o0_ = %s in" (operand st i 0);
    set st d
      (Printf.sprintf "Ev.cmp %s o0_ o1_" (Interp_gen.relop_ctor op))
  | Mir.Msel ->
    let d = dst st i in
    line st "let o2_ = %s in" (operand st i 2);
    line st "let o1_ = %s in" (operand st i 1);
    line st "let o0_ = %s in" (operand st i 0);
    set st d "Ev.select o0_ o1_ o2_"
  | Mir.Mload off ->
    let d = dst st i in
    line st "let a_ = Int64.to_int (V.to_int64 %s) + %d in" (operand st i 0)
      off;
    set st d (Printf.sprintf "M.load mem_ a_ %s" (ty_lit i.Mir.ty))
  | Mir.Mstore off ->
    (* (value, base) with the base read first, like both engines *)
    let value, base =
      match (i.Mir.srcs, i.Mir.imm) with
      | [ s; b ], None ->
        check_reg st.machine s;
        check_reg st.machine b;
        (reg_read s, b)
      | [ b ], Some v ->
        check_reg st.machine b;
        (value_lit v, b)
      | _ -> unsupported "store expects (value, base)"
    in
    line st "let b_ = %s in" (reg_read base);
    line st "let v_ = %s in" value;
    line st "M.store mem_ (Int64.to_int (V.to_int64 b_) + %d) v_;" off
  | Mir.Mframe_addr off ->
    set st (dst st i) (Printf.sprintf "V.i64 (Int64.of_int (fp_ + %d))" off)
  | Mir.Mframe_ld slot ->
    let d = dst st i in
    line st "let x_ = !%s in" (slot_name slot);
    line st "if x_ == uninit_ then raise (ctx.A.trap %S);"
      (Printf.sprintf "reload of empty spill slot %d in %s" slot
         st.fn.Mir.mname);
    set st d "x_"
  | Mir.Mframe_st slot ->
    line st "%s := %s;" (slot_name slot) (operand st i 0)
  | Mir.Msplat -> (
    match i.Mir.ty with
    | Pvir.Types.Vector (_, n) ->
      set st (dst st i) (Printf.sprintf "Ev.splat %d %s" n (operand st i 0))
    | _ -> unsupported "splat at non-vector type")
  | Mir.Mextract lane ->
    set st (dst st i)
      (Printf.sprintf "Ev.extract %s %d" (operand st i 0) lane)
  | Mir.Mreduce op ->
    set st (dst st i)
      (Printf.sprintf "Ev.reduce %s %s" (Interp_gen.redop_ctor op)
         (operand st i 0))
  | Mir.Mcall name -> (
    List.iter (check_reg st.machine) i.Mir.srcs;
    (* arguments left-to-right, like the engines' [List.map] *)
    List.iteri
      (fun k r -> line st "let a%d_ = %s in" k (reg_read r))
      i.Mir.srcs;
    let argv =
      String.concat "; " (List.mapi (fun k _ -> Printf.sprintf "a%d_" k) i.Mir.srcs)
    in
    let call_expr =
      match Hashtbl.find_opt st.fnindex name with
      | Some k -> Printf.sprintf "f_%d ctx [ %s ]" k argv
      | None -> Printf.sprintf "ctx.A.intr %S [ %s ]" name argv
    in
    match i.Mir.dst with
    | None -> line st "ignore (%s : V.t option);" call_expr
    | Some d ->
      check_reg st.machine d;
      line st
        "(match %s with Some x_ -> %s := x_ | None -> raise (ctx.A.trap %S));"
        call_expr (reg_name d)
        (Printf.sprintf "call to %s produced no value" name))

(* ------------------------------------------------------------------ *)
(* Function emission                                                   *)

let emit_function buf machine fnindex ~first idx (fn : Mir.func) =
  let st = { buf; fn; machine; fnindex; ind = "" } in
  let blocks = Array.of_list fn.Mir.mblocks in
  (* label → index of its first block, like [Mir.block_table] *)
  let label_tbl = Hashtbl.create 16 in
  Array.iteri
    (fun i (b : Mir.block) ->
      if not (Hashtbl.mem label_tbl b.Mir.mlabel) then
        Hashtbl.add label_tbl b.Mir.mlabel i)
    blocks;
  let target l =
    match Hashtbl.find_opt label_tbl l with
    | Some j -> j
    | None -> unsupported "branch to unknown block %d" l
  in
  (* every register and spill slot appearing anywhere in the function *)
  let regs = Hashtbl.create 32 and slots = Hashtbl.create 8 in
  let note_reg r =
    check_reg machine r;
    Hashtbl.replace regs (reg_name r) r
  in
  let note_slot s = Hashtbl.replace slots s () in
  List.iter note_reg fn.Mir.mparams;
  List.iter (fun (s, _) -> note_slot s) fn.Mir.marg_slots;
  Array.iter
    (fun (b : Mir.block) ->
      List.iter
        (fun (i : Mir.inst) ->
          Option.iter note_reg i.Mir.dst;
          List.iter note_reg i.Mir.srcs;
          match i.Mir.op with
          | Mir.Mframe_ld s | Mir.Mframe_st s -> note_slot s
          | _ -> ())
        b.Mir.insts;
      List.iter note_reg (Mir.term_uses b.Mir.mterm))
    blocks;
  let kw = if first then "let rec" else "and" in
  line st "%s f_%d (ctx : A.ctx) (args_ : V.t list) : V.t option =" kw idx;
  st.ind <- "  ";
  line st "chg_ ctx %d;" machine.Machine.call_cost;
  let n_reg = List.length fn.Mir.mparams in
  let n_args = n_reg + List.length fn.Mir.marg_slots in
  let pat =
    if n_args = 0 then "[]"
    else
      "[ "
      ^ String.concat "; " (List.init n_args (Printf.sprintf "p%d_"))
      ^ " ]"
  in
  line st "match args_ with";
  line st "| %s ->" pat;
  st.ind <- "    ";
  line st "let saved_sp_ = ctx.A.sp in";
  line st "ctx.A.sp <- ctx.A.sp - %d;" fn.Mir.frame_size;
  line st "if ctx.A.sp < ctx.A.globals_end then raise (ctx.A.trap %S);"
    (Printf.sprintf "stack overflow in %s" fn.Mir.mname);
  if Array.length blocks = 0 then
    (* [Mir.entry]'s exact no-blocks error, an [Invalid_argument] rather
       than a trap, raised after the sp adjustment like both engines *)
    line st "invalid_arg %S"
      (Printf.sprintf "Mir.entry: %s has no blocks" fn.Mir.mname)
  else begin
    line st "let fp_ = ctx.A.sp in";
    line st "let mem_ = ctx.A.mem in";
    line st "ignore fp_; ignore mem_;";
    (* leading args in registers, the rest in argument frame slots *)
    let params = Array.of_list fn.Mir.mparams in
    Array.iteri
      (fun k r -> line st "let %s = ref p%d_ in" (reg_name r) k)
      params;
    List.iteri
      (fun k (slot, _) ->
        line st "let %s = ref p%d_ in" (slot_name slot) (n_reg + k))
      fn.Mir.marg_slots;
    let bound = Hashtbl.create 16 in
    Array.iter (fun r -> Hashtbl.replace bound (reg_name r) ()) params;
    Hashtbl.iter
      (fun name _ ->
        if not (Hashtbl.mem bound name) then
          line st "let %s = ref uninit_ in" name)
      regs;
    let arg_slots =
      List.fold_left (fun acc (s, _) -> s :: acc) [] fn.Mir.marg_slots
    in
    Hashtbl.iter
      (fun s () ->
        if not (List.mem s arg_slots) then
          line st "let %s = ref uninit_ in" (slot_name s))
      slots;
    Array.iteri
      (fun bi (b : Mir.block) ->
        let kw = if bi = 0 then "let rec" else "and" in
        line st "%s b_%d () : V.t option =" kw bi;
        st.ind <- "      ";
        List.iter (emit_inst st) b.Mir.insts;
        line st "chg_ ctx %d;" (Cost.of_term machine b.Mir.mterm);
        (match b.Mir.mterm with
        | Mir.Tbr l -> line st "b_%d ()" (target l)
        | Mir.Tcbr (c, l1, l2) ->
          check_reg machine c;
          line st "if V.to_bool %s then b_%d () else b_%d ()" (reg_read c)
            (target l1) (target l2)
        | Mir.Tret None -> line st "None"
        | Mir.Tret (Some r) ->
          check_reg machine r;
          line st "Some %s" (reg_read r));
        st.ind <- "    ")
      blocks;
    line st "in";
    (* normal return restores sp; a trap leaves it, like the engines *)
    line st "let r_ = b_0 () in";
    line st "ctx.A.sp <- saved_sp_;";
    line st "r_"
  end;
  st.ind <- "  ";
  line st "| _ -> raise (ctx.A.trap %S)"
    (Printf.sprintf "arity mismatch calling %s" fn.Mir.mname)

(* ------------------------------------------------------------------ *)
(* Program emission                                                    *)

let header =
  String.concat "\n"
    [
      "(* Generated by pvaot (simulator backend); do not edit. *)";
      (* Mangled-unit aliases for the same reason as the interpreter
         backend: a [Pvvm.Aotabi] alias would import the pure-alias
         [Pvvm] wrapper implementation, which hosts drop at link time. *)
      "module V = Pvir__Value";
      "module Ty = Pvir__Types";
      "module Ev = Pvir__Eval";
      "module A = Pvvm__Aotabi";
      "module M = Pvvm__Memory";
      "";
      "let uninit_ : V.t = V.Vec [||]";
      "";
      "let chg_ (ctx : A.ctx) n =";
      "  ctx.A.cycles <- ctx.A.cycles + n;";
      "  ctx.A.instrs <- ctx.A.instrs + 1;";
      "  if ctx.A.instrs > ctx.A.fuel then raise ctx.A.fuel_exn";
      "";
    ]

(* Everything the baked costs and calling convention depend on (the
   machine name alone would not survive a descriptor edit).  Shared with
   the service cache key, so both sides agree on what "same machine"
   means. *)
let machine_dump = Machine.descriptor_dump

(* [Mir.func_to_string] covers blocks, types, offsets and immediates but
   not the calling convention; append it. *)
let func_dump (fn : Mir.func) =
  Printf.sprintf "%sparams=%s slots=%s\n" (Mir.func_to_string fn)
    (String.concat "," (List.map Mir.reg_to_string fn.Mir.mparams))
    (String.concat ","
       (List.map
          (fun (s, ty) -> Printf.sprintf "%d:%s" s (Pvir.Types.to_string ty))
          fn.Mir.marg_slots))

(** Generate plugin source for a code-cache snapshot (sorted by name for
    a deterministic digest).  Returns [(digest, src_digest, source)]
    where [src_digest] identifies the generated body (the loader's
    staleness check); raises {!Unsupported} (or a [Cost] error) when
    exact compilation is not possible — callers treat every exception as
    "fall back". *)
let generate (machine : Machine.t)
    (snapshot : (string * Mir.func) list) : string * string * string =
  let snapshot =
    List.sort (fun (a, _) (b, _) -> String.compare a b) snapshot
  in
  let digest =
    Build.digest_of_dump
      (Printf.sprintf "sim\x00%s\x00%s" (machine_dump machine)
         (String.concat "\x00"
            (List.map (fun (_, fn) -> func_dump fn) snapshot)))
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf header;
  let fnindex = Hashtbl.create 16 in
  List.iteri (fun i (name, _) -> Hashtbl.replace fnindex name i) snapshot;
  List.iteri
    (fun i (_, fn) -> emit_function buf machine fnindex ~first:(i = 0) i fn)
    snapshot;
  (* staleness guard: digest of the body so far, re-derived by the
     loader from the current generator and checked against what the
     plugin registers (see [Pvvm.Aotabi.register_src]) *)
  let src_digest = Digest.to_hex (Digest.string (Buffer.contents buf)) in
  Buffer.add_string buf "\nlet () =\n";
  Buffer.add_string buf
    (Printf.sprintf "  A.register_src %S ~src:%S\n" digest src_digest);
  let entries =
    List.mapi
      (fun i (name, _) -> Printf.sprintf "(%S, f_%d)" name i)
      snapshot
  in
  Buffer.add_string buf ("    [ " ^ String.concat "; " entries ^ " ]\n");
  (digest, src_digest, Buffer.contents buf)
