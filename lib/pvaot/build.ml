(** Out-of-process plugin builds for the AOT backend.

    The generated source (see {!Interp_gen}/{!Sim_gen}) references host
    library modules ([Pvir.Value], [Pvvm.Aotabi], ...) directly, so the
    only thing a plugin compile needs beyond a working compiler is the
    [.cmi] files of those libraries.  We find them by walking up from the
    running executable (and the cwd) to dune's [_build/default] tree —
    the plugin is compiled against the *same* build tree that produced
    the host, which keeps interface CRCs consistent by construction.

    Everything here is probed exactly once per process, through a lazy
    canary that generates, compiles and loads a trivial plugin end to
    end.  If any step fails the backend reports itself unavailable and
    engines degrade to the threaded interpreter; correctness never
    depends on the toolchain working. *)

(* Bumping this invalidates every cached artifact: it participates in the
   source digest alongside the compiler version.  6: plugins register
   through [Aotabi.register_src], carrying the generated-body digest the
   loader verifies on every load (the cache staleness guard). *)
let codegen_version = 6

type toolchain = {
  native : bool;  (** true: ocamlopt -shared -> .cmxs; false: ocamlc -> .cmo *)
  compiler : string;  (** command prefix, e.g. ["ocamlfind ocamlopt"] *)
  incdirs : string list;  (** -I dirs holding the host libraries' .cmi *)
}

(* Tests force degradation through this knob; it wins over the probe. *)
let forced_unavailable : string option ref = ref None
let set_forced_unavailable r = forced_unavailable := r

(* ------------------------------------------------------------------ *)
(* Cache directory                                                     *)

let cache_override : string option ref = ref None
let set_cache_dir d = cache_override := d

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let cache_dir () =
  let dir =
    match !cache_override with
    | Some d -> d
    | None -> (
      match Sys.getenv_opt "PVAOT_CACHE" with
      | Some d -> d
      | None ->
        (* Under dune (tests, benches) never litter the workspace. *)
        if Sys.getenv_opt "INSIDE_DUNE" <> None then
          Filename.concat (Filename.get_temp_dir_name ()) "pvaot-cache"
        else "_pvaot-cache")
  in
  mkdir_p dir;
  dir

(* ------------------------------------------------------------------ *)
(* Toolchain discovery                                                 *)

let command_ok cmd =
  (* Existence + runnability probe; all output squelched. *)
  Sys.command (cmd ^ " -version >/dev/null 2>/dev/null") = 0

let find_compiler () =
  let candidates =
    if Dynlink.is_native then
      [ "ocamlfind ocamlopt"; "ocamlopt.opt"; "ocamlopt" ]
    else [ "ocamlfind ocamlc"; "ocamlc.opt"; "ocamlc" ]
  in
  List.find_opt command_ok candidates

(* The host libraries whose interfaces generated code refers to. *)
let needed_libs = [ "pvir"; "pvmach"; "pvvm"; "pvtrace" ]

let objs_dir root lib =
  List.fold_left Filename.concat root
    [ "lib"; lib; Printf.sprintf ".%s.objs" lib; "byte" ]

let looks_like_build_root d = Sys.file_exists (objs_dir d "pvvm")

let rec ancestors d acc =
  let parent = Filename.dirname d in
  if String.equal parent d then List.rev (d :: acc)
  else ancestors parent (d :: acc)

(** Locate dune's [_build/default] holding our .cmi files.  Checked from
    the executable's directory first (tests and binaries live inside the
    build tree), then from the cwd (covers [dune exec] from the root). *)
let find_build_root () =
  let starts =
    [ Filename.dirname Sys.executable_name; Sys.getcwd () ]
  in
  let candidates =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun d -> [ d; Filename.concat d (Filename.concat "_build" "default") ])
          (ancestors s []))
      starts
  in
  List.find_opt looks_like_build_root candidates

(* ------------------------------------------------------------------ *)
(* Compiling and loading                                               *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let artifact_ext tc = if tc.native then ".cmxs" else ".cmo"

(** One compile attempt of [src_path] to [out_path].  Returns
    [Error diagnostics] with the compiler's stderr on failure. *)
let compile_once tc ~src_path ~out_path =
  let err_path = out_path ^ ".err" in
  let incs =
    String.concat " "
      (List.map (fun d -> "-I " ^ Filename.quote d) tc.incdirs)
  in
  let cmd =
    if tc.native then
      Printf.sprintf "%s -shared -w -a %s -o %s %s 2>%s" tc.compiler incs
        (Filename.quote out_path) (Filename.quote src_path)
        (Filename.quote err_path)
    else
      (* No [-o]: ocamlc derives the unit name from the output file, and
         the unit name must stay [Pvaot_<digest>].  The .cmo lands next
         to the source with the source's basename. *)
      Printf.sprintf "%s -c -w -a %s %s 2>%s" tc.compiler incs
        (Filename.quote src_path) (Filename.quote err_path)
  in
  let rc = Sys.command cmd in
  let diag = try read_file err_path with Sys_error _ -> "" in
  (try Sys.remove err_path with Sys_error _ -> ());
  if (not tc.native) && rc = 0 then begin
    let produced = Filename.chop_extension src_path ^ ".cmo" in
    if Sys.file_exists produced && not (String.equal produced out_path) then
      Sys.rename produced out_path
  end;
  if rc = 0 && Sys.file_exists out_path then Ok ()
  else
    Error
      (Printf.sprintf "compiler exited %d: %s" rc
         (String.trim diag))

(* The out-of-process compile can fail transiently (a PATH hiccup, an
   OOM-killed cc, a filesystem race on a shared cache dir), so it gets a
   short, deterministic, capped retry schedule before the backend
   degrades to the threaded engine.  The schedule is a knob so tests can
   zero the delays; [compile_attempts] makes the retries observable.

   Both are process-global state shared across Domains.  The attempt
   counter is bumped atomically; the delay schedule is a test knob set
   before any Domain is spawned, so a plain ref suffices there. *)
let default_retry_delays = [ 0.05; 0.2 ]
let retry_delays = ref default_retry_delays
let set_retry_delays ds = retry_delays := ds
let compile_attempts_a = Atomic.make 0
let compile_attempts () = Atomic.get compile_attempts_a
let reset_compile_attempts () = Atomic.set compile_attempts_a 0

(** Compile [src_path] to [out_path], retrying on the bounded
    [retry_delays] schedule.  The final [Error] carries the last
    attempt's diagnostics and the attempt count — it flows verbatim into
    the [Aot_unavailable] ledger entry when the backend degrades. *)
let compile tc ~src_path ~out_path =
  let rec go attempt delays =
    Atomic.incr compile_attempts_a;
    match compile_once tc ~src_path ~out_path with
    | Ok () -> Ok ()
    | Error e -> (
      match delays with
      | d :: rest ->
        if d > 0.0 then Unix.sleepf d;
        go (attempt + 1) rest
      | [] ->
        Error
          (if attempt = 1 then e
           else Printf.sprintf "after %d attempts: %s" attempt e))
  in
  go 1 !retry_delays

(** Load a plugin artifact and claim the entries it registered.

    The artifact is copied to a fresh unique path first: the native
    loader dlopens by path and re-loading an already-seen path would
    *not* re-run the module initializer, so [take_pending] would come up
    empty.  A fresh path per load also lets one process load the same
    cached artifact repeatedly (the cache-correctness test does). *)
let load_artifact ~digest ~ext path =
  let tmp = Filename.temp_file "pvaot_load_" ext in
  write_file tmp (read_file path);
  let result =
    match Dynlink.loadfile_private tmp with
    | () -> (
      match Pvvm.Aotabi.take_pending digest with
      | Some reg -> Ok reg
      | None -> Error "plugin loaded but registered no entries")
    | exception Dynlink.Error e -> Error (Dynlink.error_message e)
    | exception exn -> Error (Printexc.to_string exn)
  in
  (try Sys.remove tmp with Sys_error _ -> ());
  result

(* ------------------------------------------------------------------ *)
(* Canary probe                                                        *)

let canary_digest = "pvaot-canary"

let canary_source =
  String.concat "\n"
    [
      "let __pvaot_canary (ctx : Pvvm.Aotabi.ctx) (_ : Pvir.Value.t list) =";
      "  ctx.Pvvm.Aotabi.cycles <- ctx.Pvvm.Aotabi.cycles + 1;";
      "  Some (Pvir.Value.i64 42L)";
      "let () = Pvvm.Aotabi.register \"" ^ canary_digest
      ^ "\" [ (\"canary\", __pvaot_canary) ]";
      "";
    ]

let run_canary tc =
  let dir = cache_dir () in
  let src = Filename.concat dir "pvaot_canary.ml" in
  let out = Filename.concat dir ("pvaot_canary" ^ artifact_ext tc) in
  write_file src canary_source;
  match compile tc ~src_path:src ~out_path:out with
  | Error e -> Error ("canary compile failed: " ^ e)
  | Ok () -> (
    match load_artifact ~digest:canary_digest ~ext:(artifact_ext tc) out with
    | Error e -> Error ("canary load failed: " ^ e)
    | Ok reg -> (
      match List.assoc_opt "canary" reg.Pvvm.Aotabi.entries with
      | None -> Error "canary registered the wrong entries"
      | Some _ -> Ok ()))

let probe () =
  match find_compiler () with
  | None -> Error "no usable OCaml compiler found on PATH"
  | Some compiler -> (
    match find_build_root () with
    | None -> Error "could not locate the dune build tree (_build/default)"
    | Some root ->
      let incdirs = List.map (objs_dir root) needed_libs in
      let missing = List.filter (fun d -> not (Sys.file_exists d)) incdirs in
      if missing <> [] then
        Error ("missing interface dirs: " ^ String.concat ", " missing)
      else
        let tc = { native = Dynlink.is_native; compiler; incdirs } in
        (match run_canary tc with Ok () -> Ok tc | Error e -> Error e))

(* Probed once per process.  Not a [lazy]: two Domains forcing one lazy
   concurrently is a race in OCaml 5 (the loser observes
   [CamlinternalLazy.Undefined]), so the memo is an explicit
   mutex-guarded cell.  The same mutex serializes on-disk artifact
   production below — two workers may not compile into one temp path. *)
let build_mu = Mutex.create ()
let probe_memo : (toolchain, string) result option ref = ref None

let with_build_lock f =
  Mutex.lock build_mu;
  match f () with
  | v ->
    Mutex.unlock build_mu;
    v
  | exception e ->
    Mutex.unlock build_mu;
    raise e

let probe_once () =
  with_build_lock (fun () ->
      match !probe_memo with
      | Some r -> r
      | None ->
        let r = probe () in
        probe_memo := Some r;
        r)

let toolchain () =
  match !forced_unavailable with
  | Some reason -> Error reason
  | None -> probe_once ()

let available () = match toolchain () with Ok _ -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Digest-keyed cache                                                  *)

(** Digest of a canonical program dump: compiler + codegen version fold
    in so artifacts never survive either changing. *)
let digest_of_dump dump =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ Sys.ocaml_version; string_of_int codegen_version; dump ]))

type origin = Fresh_compile | Disk_cache

let origin_name = function
  | Fresh_compile -> "compiled"
  | Disk_cache -> "disk-cache"

(** Ensure [digest]'s artifact exists on disk, compiling [source ()] if
    the cache misses.  Returns the artifact path and where it came from.
    Writes are atomic (temp + rename) so concurrent test processes
    sharing a cache directory cannot observe torn files; within one
    process, [build_mu] additionally serializes compiles so two Domains
    missing on the same digest cannot race on the shared temp path. *)
let ensure_artifact ~digest ~(source : unit -> string) :
    (string * origin, string) result =
  match toolchain () with
  | Error e -> Error e
  | Ok tc ->
    with_build_lock @@ fun () ->
    let dir = cache_dir () in
    let ext = artifact_ext tc in
    let base = "pvaot_" ^ digest in
    let artifact = Filename.concat dir (base ^ ext) in
    if Sys.file_exists artifact then Ok (artifact, Disk_cache)
    else
      let src_path = Filename.concat dir (base ^ ".ml") in
      write_file src_path (source ());
      let tmp_out = Filename.concat dir (base ^ ".tmp" ^ ext) in
      (match compile tc ~src_path:src_path ~out_path:tmp_out with
      | Error e -> Error e
      | Ok () ->
        (try Sys.rename tmp_out artifact
         with Sys_error e -> if not (Sys.file_exists artifact) then failwith e);
        Ok (artifact, Fresh_compile))

(** Load a cached/compiled plugin artifact and claim its entries. *)
let load_plugin ~digest path =
  load_artifact ~digest ~ext:(Filename.extension path) path
