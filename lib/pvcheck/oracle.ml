(** Differential oracle: run one program through every execution path of
    the toolchain and compare what each path observed.

    The observation of a run is everything the paper's contract makes
    portable — the returned value, the intrinsic output, the trap (if
    any), and the final contents of every global — plus accounting
    invariants that must hold between host execution engines of the same
    virtual machine:

    - the tree-walk and threaded interpreters must agree on cycles,
      instructions and calls (the pre-decoded engine is a host-side
      speedup, not a semantic change);
    - the tree-walk and threaded simulators must agree on cycles,
      instructions and spill traffic for the same compiled code;
    - a JIT report claiming zero spilled registers must come with zero
      executed spill operations.

    Paths are named so a harness can subset them ([--engines]):
    [interp-tw], [interp-th], [serial] (binary encode/decode round-trip),
    [text] (printer/parser round-trip), and [jit-MACHINE] for every
    registered machine descriptor. *)

open Pvir

type outcome = Finished of Value.t option | Trapped of string

type obs = {
  outcome : outcome;
  output : string;
  globals : (string * Value.t array) list;
}

(** One disagreement between a path and the reference observation. *)
type mismatch = { path : string; what : string; detail : string }

let outcome_to_string = function
  | Finished None -> "finished (no value)"
  | Finished (Some v) -> Printf.sprintf "finished %s" (Value.to_string v)
  | Trapped m -> Printf.sprintf "trap: %s" m

let outcome_equal a b =
  match (a, b) with
  | Finished None, Finished None -> true
  | Finished (Some x), Finished (Some y) -> Value.equal x y
  | Trapped x, Trapped y -> String.equal x y
  | _ -> false

(* Each path runs against its own freshly loaded image, so memory state
   never leaks between paths. *)
let read_globals (img : Pvvm.Image.t) =
  List.map
    (fun (g : Prog.global) -> (g.Prog.gname, Pvvm.Image.read_global img g.Prog.gname))
    img.Pvvm.Image.prog.Prog.globals

(** Fuel far above anything the generator's bounded loops can burn (worst
    observed legitimate runs are under 100k instructions), but small
    enough that a shrinker candidate which accidentally closes an
    infinite loop costs milliseconds, not seconds. *)
let fuel = 2_000_000L

type interp_run = { iobs : obs; icycles : int64; iinstrs : int64; icalls : int }

let run_interp (prog : Prog.t) (engine : Pvvm.Interp.engine) : interp_run =
  let img = Pvvm.Image.load (Prog.copy prog) in
  let it = Pvvm.Interp.create ~fuel ~engine img in
  let outcome =
    match Pvvm.Interp.run it "main" [] with
    | v -> Finished v
    | exception Pvvm.Interp.Trap m -> Trapped m
  in
  let st = it.Pvvm.Interp.stats in
  {
    iobs = { outcome; output = Pvvm.Interp.output it; globals = read_globals img };
    icycles = st.Pvvm.Interp.cycles;
    iinstrs = st.Pvvm.Interp.instrs;
    icalls = st.Pvvm.Interp.calls;
  }

type jit_run = {
  jobs : obs;
  jcycles : int64;
  jinstrs : int64;
  jspill_ops : int64;
  jspilled_regs : int;  (** static, summed over the report *)
}

let run_jit (prog : Prog.t) (machine : Pvmach.Machine.t)
    (hints : Pvjit.Jit.hints) (engine : Pvvm.Sim.engine) : jit_run =
  let img = Pvvm.Image.load (Prog.copy prog) in
  let sim, report = Pvjit.Jit.compile_program ~machine ~hints img in
  sim.Pvvm.Sim.engine <- engine;
  sim.Pvvm.Sim.fuel <- fuel;
  let outcome =
    match Pvvm.Sim.run sim "main" [] with
    | v -> Finished v
    | exception Pvvm.Sim.Trap m -> Trapped m
  in
  let st = sim.Pvvm.Sim.stats in
  {
    jobs = { outcome; output = Pvvm.Sim.output sim; globals = read_globals img };
    jcycles = st.Pvvm.Sim.cycles;
    jinstrs = st.Pvvm.Sim.instrs;
    jspill_ops = st.Pvvm.Sim.spill_ops;
    jspilled_regs =
      List.fold_left
        (fun acc (f : Pvjit.Jit.func_report) ->
          acc + f.Pvjit.Jit.ra.Pvjit.Regalloc.spilled_regs)
        0 report.Pvjit.Jit.funcs;
  }

(* -- comparison ------------------------------------------------------- *)

let globals_diff ref_gs gs =
  List.find_map
    (fun (name, vs) ->
      match List.assoc_opt name ref_gs with
      | None -> Some (Printf.sprintf "global @%s missing from reference" name)
      | Some rvs ->
        if Array.length rvs <> Array.length vs then
          Some (Printf.sprintf "global @%s length %d vs %d" name
                  (Array.length rvs) (Array.length vs))
        else
          let bad = ref None in
          Array.iteri
            (fun i v ->
              if !bad = None && not (Value.equal rvs.(i) v) then
                bad :=
                  Some
                    (Printf.sprintf "global @%s[%d]: %s vs %s" name i
                       (Value.to_string rvs.(i)) (Value.to_string v)))
            vs;
          !bad)
    gs

let compare_obs ~path (reference : obs) (obs : obs) : mismatch list =
  let ms = ref [] in
  let add what detail = ms := { path; what; detail } :: !ms in
  if not (outcome_equal reference.outcome obs.outcome) then
    add "result"
      (Printf.sprintf "%s vs %s"
         (outcome_to_string reference.outcome)
         (outcome_to_string obs.outcome));
  if not (String.equal reference.output obs.output) then
    add "output"
      (Printf.sprintf "%S vs %S" reference.output obs.output);
  (match globals_diff reference.globals obs.globals with
  | Some d -> add "globals" d
  | None -> ());
  List.rev !ms

(* -- the path matrix -------------------------------------------------- *)

let all_paths : string list =
  [ "interp-tw"; "interp-th"; "interp-aot"; "serial"; "text" ]
  @ List.map
      (fun (m : Pvmach.Machine.t) -> "jit-" ^ m.Pvmach.Machine.name)
      Pvmach.Machine.all

let path_known name = List.mem name all_paths

(** [check ?paths prog] — the full differential matrix; [paths] subsets
    it by name ([interp-tw] is always run as the reference). *)
let check ?(paths = all_paths) (prog : Prog.t) : mismatch list =
  if paths = [] then []
  else begin
  let want p = List.mem p paths in
  let ms = ref [] in
  let add l = ms := !ms @ l in
  let reference = run_interp prog Pvvm.Interp.Tree_walk in
  (* threaded interpreter: same observation *and* same accounting *)
  if want "interp-th" then begin
    let th = run_interp prog Pvvm.Interp.Threaded in
    add (compare_obs ~path:"interp-th" reference.iobs th.iobs);
    if
      reference.icycles <> th.icycles
      || reference.iinstrs <> th.iinstrs
      || reference.icalls <> th.icalls
    then
      add
        [
          {
            path = "interp-th";
            what = "accounting";
            detail =
              Printf.sprintf
                "tree-walk %Ld cycles/%Ld instrs/%d calls vs threaded %Ld/%Ld/%d"
                reference.icycles reference.iinstrs reference.icalls th.icycles
                th.iinstrs th.icalls;
          };
        ]
  end;
  (* AOT-compiled interpreter: same observation, and bit-identical
     accounting on every outcome except fuel exhaustion.  Block-batched
     charging means the counter values observed *inside* a fuel trap may
     differ from the per-instruction engines (the trap itself, its
     message, and everything observable still match — see DESIGN.md
     §10). *)
  if want "interp-aot" then begin
    Pvaot.install ();
    let aot = run_interp prog Pvvm.Interp.Aot in
    add (compare_obs ~path:"interp-aot" reference.iobs aot.iobs);
    let fuel_out =
      match reference.iobs.outcome with
      | Trapped m -> String.equal m Pvvm.Interp.fuel_exhausted_msg
      | Finished _ -> false
    in
    if
      (not fuel_out)
      && (reference.icycles <> aot.icycles
         || reference.iinstrs <> aot.iinstrs
         || reference.icalls <> aot.icalls)
    then
      add
        [
          {
            path = "interp-aot";
            what = "accounting";
            detail =
              Printf.sprintf
                "tree-walk %Ld cycles/%Ld instrs/%d calls vs aot %Ld/%Ld/%d"
                reference.icycles reference.iinstrs reference.icalls
                aot.icycles aot.iinstrs aot.icalls;
          };
        ]
  end;
  (* distribution round-trips re-interpreted with the reference engine *)
  if want "serial" then begin
    match Serial.decode (Serial.encode prog) with
    | decoded ->
      add (compare_obs ~path:"serial" reference.iobs
             (run_interp decoded Pvvm.Interp.Tree_walk).iobs)
    | exception Serial.Corrupt c ->
      add
        [
          {
            path = "serial";
            what = "decode";
            detail = Serial.corruption_to_string c;
          };
        ]
  end;
  if want "text" then begin
    match Parse.program (Pp.program_to_string prog) with
    | parsed ->
      add (compare_obs ~path:"text" reference.iobs
             (run_interp parsed Pvvm.Interp.Tree_walk).iobs)
    | exception e ->
      add
        [
          { path = "text"; what = "parse"; detail = Printexc.to_string e };
        ]
  end;
  (* every registered machine: JIT + both simulator engines *)
  List.iter
    (fun (m : Pvmach.Machine.t) ->
      let path = "jit-" ^ m.Pvmach.Machine.name in
      if want path then begin
        let hints = Pvjit.Jit.Hints_recompute in
        let th = run_jit prog m hints Pvvm.Sim.Threaded in
        add (compare_obs ~path reference.iobs th.jobs);
        let tw = run_jit prog m hints Pvvm.Sim.Tree_walk in
        add (compare_obs ~path:(path ^ "-tw") reference.iobs tw.jobs);
        (* the AOT sim engine charges per instruction, so its accounting
           is compared unconditionally (fuel outcomes included) *)
        Pvaot.install ();
        let ao = run_jit prog m hints Pvvm.Sim.Aot in
        add (compare_obs ~path:(path ^ "-aot") reference.iobs ao.jobs);
        if
          th.jcycles <> ao.jcycles
          || th.jinstrs <> ao.jinstrs
          || th.jspill_ops <> ao.jspill_ops
        then
          add
            [
              {
                path = path ^ "-aot";
                what = "accounting";
                detail =
                  Printf.sprintf
                    "threaded %Ld cycles/%Ld instrs/%Ld spills vs aot \
                     %Ld/%Ld/%Ld"
                    th.jcycles th.jinstrs th.jspill_ops ao.jcycles ao.jinstrs
                    ao.jspill_ops;
              };
            ];
        if
          th.jcycles <> tw.jcycles
          || th.jinstrs <> tw.jinstrs
          || th.jspill_ops <> tw.jspill_ops
        then
          add
            [
              {
                path;
                what = "accounting";
                detail =
                  Printf.sprintf
                    "threaded %Ld cycles/%Ld instrs/%Ld spills vs tree-walk \
                     %Ld/%Ld/%Ld"
                    th.jcycles th.jinstrs th.jspill_ops tw.jcycles tw.jinstrs
                    tw.jspill_ops;
              };
            ];
        if th.jspilled_regs = 0 && th.jspill_ops <> 0L then
          add
            [
              {
                path;
                what = "spill-invariant";
                detail =
                  Printf.sprintf
                    "report says 0 spilled registers but %Ld spill ops executed"
                    th.jspill_ops;
              };
            ]
      end)
    Pvmach.Machine.all;
  !ms
  end
