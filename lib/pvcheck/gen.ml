(** Seeded generator of well-formed PVIR programs.

    Every program this module emits passes [Pvir.Verify.program] *by
    construction* and — the harder property — is observationally
    deterministic across every execution path of the toolchain, so that a
    differential oracle can compare engines without false alarms:

    - {b trap-free}: integer divisors are forced odd ([or rhs, 1] through a
      never-redefined constant-one register), shifts are masked by the
      semantics, and every memory access is a static in-bounds offset off a
      never-redefined base pointer;
    - {b init-before-use}: every pooled register is defined in the entry
      block, before any branching, so no path reads an uninitialized
      register;
    - {b bounded}: loops run a small constant trip count through dedicated
      counter registers no random instruction may clobber, and calls form a
      DAG (a function only calls later ones), so fuel is never a worry;
    - {b address-opaque}: pointer values are only ever used as load/store
      bases.  Allocas appear only in the entry block (the JIT assigns one
      static frame slot per alloca).  Stack addresses differ between the
      interpreter and a compiled target, so they must never flow into
      results, stores, or prints — globals' *contents* are the observable,
      not their addresses.

    Randomness is an explicit splitmix64 stream ({!Pvinject.Inject.rng}),
    so every program is a pure function of its seed. *)

open Pvir
module R = Pvinject.Inject

type t = {
  r : R.rng;
  prog : Prog.t;
  scalars : Types.scalar list;  (** scalar types in play this program *)
  vecs : Types.t list;  (** vector types in play this program *)
}

let pick g xs = List.nth xs (R.rand_int g.r (List.length xs))
let chance g pct = R.rand_int g.r 100 < pct

(* -- interesting constants ------------------------------------------ *)

let int_const g (s : Types.scalar) : Value.t =
  let v =
    match R.rand_int g.r 6 with
    | 0 -> Int64.of_int (R.rand_int g.r 17)
    | 1 -> Int64.of_int (R.rand_int g.r 256)
    | 2 -> Int64.neg (Int64.of_int (1 + R.rand_int g.r 128))
    | 3 -> Int64.shift_left 1L (R.rand_int g.r 63)
    | 4 -> R.next_int64 g.r
    | _ -> [ 0L; 1L; -1L; 127L; 128L; 255L; 32767L; 65535L ] |> fun l ->
           List.nth l (R.rand_int g.r (List.length l))
  in
  Value.int s v

let float_pool = [ 0.; 1.; -1.; 0.5; 2.5; 3.25; 1000.; -7.75; 0.125; 42. ]

let float_const g (s : Types.scalar) : Value.t =
  Value.float s (List.nth float_pool (R.rand_int g.r (List.length float_pool)))

let scalar_const g (s : Types.scalar) : Value.t =
  if Types.is_float_scalar s then float_const g s else int_const g s

(* -- per-function generation context -------------------------------- *)

(** A global the function may address: name, element scalar, element
    count, and the (immutable) pointer register holding its address. *)
type gslot = { gl_name : string; gl_elem : Types.scalar; gl_count : int; gl_ptr : Instr.reg }

(** A frame slot from an entry-block alloca. *)
type aslot = { al_elem : Types.scalar; al_count : int; al_ptr : Instr.reg }

type fctx = {
  g : t;
  fn : Func.t;
  pool : (Types.t * Instr.reg list) list;  (** readable registers, per type *)
  mut : (Types.t * Instr.reg list) list;  (** redefinable registers *)
  ones : (Types.t * Instr.reg) list;  (** constant-one, never redefined *)
  gslots : gslot list;
  aslots : aslot list;
  callees : (string * Types.t list * Types.t option) list;
      (** later functions only: keeps the call graph a DAG *)
  calls_ok : bool;
      (** false for KPN node bodies: no calls, not even prints — the
          kernel must be a pure function of its arguments *)
}

let pool_of c ty = List.assoc ty c.pool
let mut_of c ty = List.assoc ty c.mut
let use c ty = pick c.g (pool_of c ty)
let def c ty = pick c.g (mut_of c ty)

let all_types c = List.map fst c.pool
let int_scalar_types c =
  List.filter
    (fun ty -> match ty with Types.Scalar s -> not (Types.is_float_scalar s) | _ -> false)
    (all_types c)
let scalar_types c =
  List.filter (fun ty -> match ty with Types.Scalar _ -> true | _ -> false) (all_types c)
let vector_types c = List.filter Types.is_vector (all_types c)

(* -- single random instructions ------------------------------------- *)

(** Binops that cannot trap given odd divisors; division-family ops are
    rewritten to read an [or rhs, 1] temporary. *)
let gen_binop c (emit : Instr.t -> unit) =
  let ty = pick c.g (all_types c) in
  let s = Types.elem ty in
  let ops =
    List.filter (fun op -> Instr.binop_valid_on op s) Instr.all_binops
  in
  let op = pick c.g ops in
  let d = def c ty and a = use c ty and b = use c ty in
  match op with
  | Instr.Div | Instr.Udiv | Instr.Rem | Instr.Urem
    when not (Types.is_float_scalar s) ->
    (* force the divisor odd: [b | 1] can never be zero *)
    let one = List.assoc ty c.ones in
    let t = Func.fresh_reg c.fn ty in
    emit (Instr.Binop (Instr.Or, t, b, one));
    emit (Instr.Binop (op, d, a, t))
  | _ -> emit (Instr.Binop (op, d, a, b))

let gen_unop c emit =
  let ty = pick c.g (all_types c) in
  let op =
    if Types.is_float ty then Instr.Neg
    else if chance c.g 50 then Instr.Neg
    else Instr.Not
  in
  emit (Instr.Unop (op, def c ty, use c ty))

let gen_conv c emit =
  let stys = scalar_types c in
  let dty = pick c.g stys and aty = pick c.g stys in
  let kind =
    match (Types.is_float dty, Types.is_float aty) with
    | false, false ->
      pick c.g [ Instr.Zext; Instr.Sext; Instr.Trunc ]
    | true, false -> if chance c.g 50 then Instr.Sitofp else Instr.Uitofp
    | false, true -> if chance c.g 50 then Instr.Fptosi else Instr.Fptoui
    | true, true -> Instr.Fpconv
  in
  emit (Instr.Conv (kind, def c dty, use c aty))

let gen_cmp c emit =
  let ty = pick c.g (scalar_types c) in
  let rels =
    if Types.is_float ty then
      [ Instr.Eq; Instr.Ne; Instr.Slt; Instr.Sle; Instr.Sgt; Instr.Sge ]
    else Instr.all_relops
  in
  emit (Instr.Cmp (pick c.g rels, def c Types.i32, use c ty, use c ty))

let gen_select c emit =
  let ty = pick c.g (all_types c) in
  emit (Instr.Select (def c ty, use c Types.i32, use c ty, use c ty))

let gen_mov c emit =
  let ty = pick c.g (all_types c) in
  emit (Instr.Mov (def c ty, use c ty))

let gen_const c emit =
  let ty = pick c.g (scalar_types c) in
  emit (Instr.Const (def c ty, scalar_const c.g (Types.elem ty)))

(** An in-bounds access to a global or frame slot: (base, elem, offset
    choices are always multiples of the element size that fit). *)
let gen_mem_access c ~(lanes : int) :
    (Instr.reg * Types.scalar * int) option =
  let cands =
    List.filter_map
      (fun gs ->
        if gs.gl_count >= lanes then Some (gs.gl_ptr, gs.gl_elem, gs.gl_count)
        else None)
      c.gslots
    @ List.filter_map
        (fun al ->
          if al.al_count >= lanes then Some (al.al_ptr, al.al_elem, al.al_count)
          else None)
        c.aslots
  in
  match cands with
  | [] -> None
  | _ ->
    let base, elem, count = pick c.g cands in
    let k = R.rand_int c.g.r (count - lanes + 1) in
    Some (base, elem, k * Types.scalar_size elem)

let gen_load c emit =
  (* scalar or, when a matching vector type is pooled, vector access *)
  let vec_choices =
    List.filter_map
      (fun ty ->
        match ty with Types.Vector (s, n) -> Some (ty, s, n) | _ -> None)
      (vector_types c)
  in
  if vec_choices <> [] && chance c.g 35 then begin
    let ty, s, n = pick c.g vec_choices in
    match gen_mem_access c ~lanes:n with
    | Some (base, elem, off) when elem = s ->
      emit (Instr.Load (ty, def c ty, base, off))
    | _ -> ()
  end
  else
    match gen_mem_access c ~lanes:1 with
    | Some (base, elem, off) ->
      let ty = Types.Scalar elem in
      if List.mem_assoc ty c.mut then
        emit (Instr.Load (ty, def c ty, base, off))
    | None -> ()

let gen_store c emit =
  let vec_choices =
    List.filter_map
      (fun ty ->
        match ty with Types.Vector (s, n) -> Some (ty, s, n) | _ -> None)
      (vector_types c)
  in
  if vec_choices <> [] && chance c.g 35 then begin
    let ty, s, n = pick c.g vec_choices in
    match gen_mem_access c ~lanes:n with
    | Some (base, elem, off) when elem = s ->
      emit (Instr.Store (ty, use c ty, base, off))
    | _ -> ()
  end
  else
    match gen_mem_access c ~lanes:1 with
    | Some (base, elem, off) ->
      let ty = Types.Scalar elem in
      if List.mem_assoc ty c.pool then
        emit (Instr.Store (ty, use c ty, base, off))
    | None -> ()

let gen_vec c emit =
  match vector_types c with
  | [] -> ()
  | vtys -> (
    let ty = pick c.g vtys in
    let s = Types.elem ty and n = Types.lanes ty in
    let sty = Types.Scalar s in
    match R.rand_int c.g.r 3 with
    | 0 -> emit (Instr.Splat (def c ty, use c sty))
    | 1 ->
      emit (Instr.Extract (def c sty, use c ty, R.rand_int c.g.r n))
    | _ ->
      let reds =
        if Types.is_float_scalar s then [ Instr.Radd; Instr.Rmin; Instr.Rmax ]
        else Instr.all_redops
      in
      emit (Instr.Reduce (pick c.g reds, def c sty, use c ty)))

let gen_call c emit =
  if not c.calls_ok then gen_binop c emit
  else
  let printable =
    (if List.mem_assoc Types.i64 c.pool then
       [ (None, "print_i64", [ Types.i64 ]) ]
     else [])
    @
    if List.mem_assoc Types.f64 c.pool then
      [ (None, "print_f64", [ Types.f64 ]) ]
    else []
  in
  let defined =
    List.filter_map
      (fun (name, params, ret) ->
        (* only call when we can supply every argument and land the result *)
        let have ty = List.mem_assoc ty c.pool in
        let land_ok =
          match ret with None -> true | Some ty -> List.mem_assoc ty c.mut
        in
        if List.for_all have params && land_ok then Some (ret, name, params)
        else None)
      c.callees
  in
  let cands = printable @ defined in
  if cands <> [] then begin
    let ret, name, params = pick c.g cands in
    let args = List.map (fun ty -> use c ty) params in
    let dst = Option.map (fun ty -> def c ty) ret in
    emit (Instr.Call (dst, name, args))
  end

let gen_instr c emit =
  match R.rand_int c.g.r 100 with
  | n when n < 28 -> gen_binop c emit
  | n when n < 36 -> gen_cmp c emit
  | n when n < 43 -> gen_select c emit
  | n when n < 48 -> gen_mov c emit
  | n when n < 56 -> gen_conv c emit
  | n when n < 61 -> gen_unop c emit
  | n when n < 68 -> gen_const c emit
  | n when n < 77 -> gen_load c emit
  | n when n < 85 -> gen_store c emit
  | n when n < 93 -> gen_vec c emit
  | _ -> gen_call c emit

let emit_instrs c (blk : Func.block) n =
  let buf = ref [] in
  let emit i = buf := i :: !buf in
  for _ = 1 to n do
    gen_instr c emit
  done;
  blk.instrs <- blk.instrs @ List.rev !buf

(* -- CFG regions ----------------------------------------------------- *)

(** Append a diamond: cond in [cur], two arms, returns the join block. *)
let region_diamond c cur =
  let ty = pick c.g (scalar_types c) in
  let rels =
    if Types.is_float ty then [ Instr.Eq; Instr.Ne; Instr.Slt; Instr.Sgt ]
    else Instr.all_relops
  in
  let cond = Func.fresh_reg c.fn Types.i32 in
  cur.Func.instrs <-
    cur.Func.instrs @ [ Instr.Cmp (pick c.g rels, cond, use c ty, use c ty) ];
  let t = Func.add_block c.fn and f = Func.add_block c.fn in
  let join = Func.add_block c.fn in
  cur.Func.term <- Instr.Cbr (cond, t.Func.label, f.Func.label);
  emit_instrs c t (1 + R.rand_int c.g.r 4);
  emit_instrs c f (1 + R.rand_int c.g.r 4);
  t.Func.term <- Instr.Br join.Func.label;
  f.Func.term <- Instr.Br join.Func.label;
  join

(** Append a constant-trip-count loop through dedicated registers no
    random instruction can clobber; returns the exit block. *)
let region_loop c cur =
  let i = Func.fresh_reg c.fn Types.i64 in
  let bound = Func.fresh_reg c.fn Types.i64 in
  let cond = Func.fresh_reg c.fn Types.i32 in
  let trip = 1 + R.rand_int c.g.r 6 in
  cur.Func.instrs <-
    cur.Func.instrs
    @ [ Instr.Const (i, Value.i64 0L); Instr.Const (bound, Value.of_int Types.I64 trip) ];
  let body = Func.add_block c.fn in
  let exit = Func.add_block c.fn in
  cur.Func.term <- Instr.Br body.Func.label;
  emit_instrs c body (1 + R.rand_int c.g.r 5);
  let one = List.assoc Types.i64 c.ones in
  body.Func.instrs <-
    body.Func.instrs
    @ [ Instr.Binop (Instr.Add, i, i, one); Instr.Cmp (Instr.Slt, cond, i, bound) ];
  body.Func.term <- Instr.Cbr (cond, body.Func.label, exit.Func.label);
  exit

let region_straight c cur =
  emit_instrs c cur (2 + R.rand_int c.g.r 6);
  cur

(* -- whole functions -------------------------------------------------- *)

(** Build the register pools and the entry-block prologue that defines
    every pooled register before any branching.  [reserved] registers
    (e.g. a recursion fuel counter) stay readable but are kept out of the
    redefinable pool so no random instruction can clobber them. *)
let build_pools ?(reserved : Instr.reg list = []) g (fn : Func.t) entry
    ~(globals : Prog.global list) =
  let prologue = ref [] in
  let emit i = prologue := i :: !prologue in
  let pool = ref [] and mut = ref [] and ones = ref [] in
  let add_pool ty regs = pool := (ty, regs) :: !pool in
  let add_mut ty regs = mut := (ty, regs) :: !mut in
  (* scalar pools: params of that type join the pool for free *)
  List.iter
    (fun s ->
      let ty = Types.Scalar s in
      let param_regs =
        List.filter (fun r -> Types.equal (Func.reg_type fn r) ty) fn.Func.params
      in
      let n = 2 + R.rand_int g.r 3 in
      let fresh = List.init n (fun _ -> Func.fresh_reg fn ty) in
      List.iter (fun r -> emit (Instr.Const (r, scalar_const g s))) fresh;
      if not (Types.is_float_scalar s) then begin
        let one = Func.fresh_reg fn ty in
        emit (Instr.Const (one, Value.int s 1L));
        ones := (ty, one) :: !ones
      end;
      let writable =
        List.filter (fun r -> not (List.mem r reserved)) param_regs
      in
      add_pool ty (param_regs @ fresh);
      add_mut ty (writable @ fresh))
    g.scalars;
  (* vector pools: splat from a scalar of the lane type *)
  List.iter
    (fun vty ->
      let s = Types.elem vty in
      let lane_pool = List.assoc (Types.Scalar s) !pool in
      let n = 2 + R.rand_int g.r 2 in
      let fresh = List.init n (fun _ -> Func.fresh_reg fn vty) in
      List.iter
        (fun r -> emit (Instr.Splat (r, List.nth lane_pool (R.rand_int g.r (List.length lane_pool)))))
        fresh;
      if not (Types.is_float vty) then begin
        let one = Func.fresh_reg fn vty in
        let one_scalar = List.assoc (Types.Scalar s) !ones in
        emit (Instr.Splat (one, one_scalar));
        ones := (vty, one) :: !ones
      end;
      add_pool vty fresh;
      add_mut vty fresh)
    g.vecs;
  (* global base pointers *)
  let gslots =
    List.map
      (fun (gl : Prog.global) ->
        let p = Func.fresh_reg fn (Types.Ptr gl.Prog.gelem) in
        emit (Instr.Gaddr (p, gl.Prog.gname));
        { gl_name = gl.Prog.gname; gl_elem = gl.Prog.gelem;
          gl_count = gl.Prog.gcount; gl_ptr = p })
      globals
  in
  (* entry-block-only frame slots *)
  let aslots =
    List.init (R.rand_int g.r 3) (fun _ ->
        let s = List.nth g.scalars (R.rand_int g.r (List.length g.scalars)) in
        let count = 4 + R.rand_int g.r 5 in
        let bytes = (count * Types.scalar_size s + 7) land lnot 7 in
        let p = Func.fresh_reg fn (Types.Ptr s) in
        emit (Instr.Alloca (p, bytes));
        { al_elem = s; al_count = count; al_ptr = p })
  in
  entry.Func.instrs <- entry.Func.instrs @ List.rev !prologue;
  (!pool, !mut, !ones, gslots, aslots)

let fill_func g (fn : Func.t)
    ~(callees : (string * Types.t list * Types.t option) list) =
  let entry = Func.add_block fn in
  let pool, mut, ones, gslots, aslots =
    build_pools g fn entry ~globals:g.prog.Prog.globals
  in
  let c = { g; fn; pool; mut; ones; gslots; aslots; callees; calls_ok = true } in
  emit_instrs c entry (1 + R.rand_int g.r 4);
  let cur = ref entry in
  let regions = 1 + R.rand_int g.r 3 in
  for _ = 1 to regions do
    cur :=
      match R.rand_int g.r 3 with
      | 0 -> region_straight c !cur
      | 1 -> region_diamond c !cur
      | _ -> region_loop c !cur
  done;
  (* main prints one value so every run has observable output *)
  if fn.Func.name = "main" then begin
    let v = use c Types.i64 in
    (!cur).Func.instrs <- (!cur).Func.instrs @ [ Instr.Call (None, "print_i64", [ v ]) ]
  end;
  ((!cur).Func.term <-
     (match fn.Func.ret with
     | Some ty -> Instr.Ret (Some (use c ty))
     | None -> Instr.Ret None));
  (* an unreachable after-trap block: no terminator targets it *)
  if chance g 40 then begin
    let dead = Func.add_block fn in
    dead.Func.instrs <- [ Instr.Call (None, "abort", []) ];
    dead.Func.term <-
      (match fn.Func.ret with
      | Some ty -> Instr.Ret (Some (use c ty))
      | None -> Instr.Ret None)
  end

(* -- whole programs --------------------------------------------------- *)

let subset g xs pct = List.filter (fun _ -> chance g pct) xs

(** [program ~seed] — a fresh, verified, deterministic program. *)
let program ~(seed : int) : Prog.t =
  let r = R.rng seed in
  let prog = Prog.create (Printf.sprintf "fuzz%d" seed) in
  let g0 = { r; prog; scalars = []; vecs = [] } in
  let scalars =
    [ Types.I32; Types.I64 ]
    @ subset g0 [ Types.I8; Types.I16; Types.F32; Types.F64 ] 50
  in
  let nvec = R.rand_int r 3 in
  let vecs =
    List.init nvec (fun _ ->
        let s = List.nth scalars (R.rand_int r (List.length scalars)) in
        Types.Vector (s, if R.rand_int r 2 = 0 then 2 else 4))
  in
  (* dedup vector types so pools stay one-per-type *)
  let vecs = List.sort_uniq compare vecs in
  let g = { g0 with scalars; vecs } in
  (* globals, with initializers drawn from the same constant pools *)
  let nglob = 1 + R.rand_int r 3 in
  for i = 0 to nglob - 1 do
    let s = List.nth scalars (R.rand_int r (List.length scalars)) in
    let count = 4 + R.rand_int r 13 in
    let init = Array.init count (fun _ -> scalar_const g s) in
    Prog.add_global prog ~init (Printf.sprintf "g%d" i) s count
  done;
  (* signatures first, so earlier functions can call later ones *)
  let nfun = 1 + R.rand_int r 3 in
  let sigs =
    List.init nfun (fun i ->
        if i = 0 then ("main", [], Some Types.i64)
        else
          let nparams = R.rand_int r 3 in
          let params =
            List.init nparams (fun _ ->
                Types.Scalar (List.nth scalars (R.rand_int r (List.length scalars))))
          in
          let ret = Types.Scalar (List.nth scalars (R.rand_int r (List.length scalars))) in
          (Printf.sprintf "f%d" i, params, Some ret))
  in
  let fns =
    List.map
      (fun (name, params, ret) -> Func.create ~name ~params ~ret)
      sigs
  in
  List.iter (Prog.add_func prog) fns;
  List.iteri
    (fun i fn ->
      let callees =
        List.filteri (fun j _ -> j > i) sigs
      in
      fill_func g fn ~callees)
    fns;
  Verify.program prog;
  prog

(* -- bounded recursion ------------------------------------------------- *)

let recursion_fuel_min = 2
let recursion_fuel_max = 5

(** Fill a recursion-group member [r_k(fuel : i64, x : i64) : i64].
    The fuel counter is register 0, reserved from the redefinable pool so
    no random instruction can clobber it; the entry block branches on
    [fuel <= 0] to a call-free base arm, and the recursive arm passes
    [fuel - 1] to every callee — so the call tree is bounded by the
    constant initial fuel [main] supplies, whatever the group's call
    pattern (self or mutual). *)
let fill_recursive g (fn : Func.t)
    ~(group : (string * Types.t list * Types.t option) list) =
  let entry = Func.add_block fn in
  let fuel = List.hd fn.Func.params in
  let pool, mut, ones, gslots, aslots =
    build_pools ~reserved:[ fuel ] g fn entry ~globals:g.prog.Prog.globals
  in
  let c =
    { g; fn; pool; mut; ones; gslots; aslots; callees = []; calls_ok = true }
  in
  let zero = Func.fresh_reg fn Types.i64 in
  let cond = Func.fresh_reg fn Types.i32 in
  entry.Func.instrs <-
    entry.Func.instrs
    @ [ Instr.Const (zero, Value.i64 0L); Instr.Cmp (Instr.Sle, cond, fuel, zero) ];
  let base = Func.add_block fn in
  let recur = Func.add_block fn in
  entry.Func.term <- Instr.Cbr (cond, base.Func.label, recur.Func.label);
  (* base arm: straight-line work only *)
  emit_instrs c base (1 + R.rand_int g.r 4);
  base.Func.term <- Instr.Ret (Some (use c Types.i64));
  (* recursive arm: decrement the dedicated counter, call group members *)
  emit_instrs c recur (1 + R.rand_int g.r 4);
  let one = List.assoc Types.i64 c.ones in
  let fuel' = Func.fresh_reg fn Types.i64 in
  recur.Func.instrs <-
    recur.Func.instrs @ [ Instr.Binop (Instr.Sub, fuel', fuel, one) ];
  let ncalls = 1 + R.rand_int g.r 2 in
  let acc = ref (use c Types.i64) in
  for _ = 1 to ncalls do
    let callee, _, _ = pick g group in
    let d = Func.fresh_reg fn Types.i64 in
    let s = Func.fresh_reg fn Types.i64 in
    recur.Func.instrs <-
      recur.Func.instrs
      @ [
          Instr.Call (Some d, callee, [ fuel'; use c Types.i64 ]);
          Instr.Binop (Instr.Add, s, !acc, d);
        ];
    acc := s
  done;
  recur.Func.term <- Instr.Ret (Some !acc)

(** [program_recursive ~seed] — a verified program whose call graph is a
    recursion group (1–2 self/mutually recursive functions) driven from
    [main] with a small constant fuel, so total call depth is bounded by
    construction (never by the VM's fuel).  Same determinism guarantees
    as {!program}; recursion functions are never random-call targets, so
    the only fuel values in play are the generated decreasing chain. *)
let program_recursive ~(seed : int) : Prog.t =
  let r = R.rng seed in
  let prog = Prog.create (Printf.sprintf "rec%d" seed) in
  let g0 = { r; prog; scalars = []; vecs = [] } in
  let scalars = [ Types.I32; Types.I64 ] @ subset g0 [ Types.I16; Types.F64 ] 40 in
  let g = { g0 with scalars } in
  let nglob = 1 + R.rand_int r 2 in
  for i = 0 to nglob - 1 do
    let s = List.nth scalars (R.rand_int r (List.length scalars)) in
    let count = 4 + R.rand_int r 9 in
    let init = Array.init count (fun _ -> scalar_const g s) in
    Prog.add_global prog ~init (Printf.sprintf "g%d" i) s count
  done;
  let nrec = 1 + R.rand_int r 2 in
  let group =
    List.init nrec (fun i ->
        (Printf.sprintf "r%d" i, [ Types.i64; Types.i64 ], Some Types.i64))
  in
  let main = Func.create ~name:"main" ~params:[] ~ret:(Some Types.i64) in
  let rec_fns =
    List.map (fun (name, params, ret) -> Func.create ~name ~params ~ret) group
  in
  Prog.add_func prog main;
  List.iter (Prog.add_func prog) rec_fns;
  List.iter (fun fn -> fill_recursive g fn ~group) rec_fns;
  (* main: a small regular body, then one rooted call with constant fuel *)
  let fuel0 =
    recursion_fuel_min
    + R.rand_int r (recursion_fuel_max - recursion_fuel_min + 1)
  in
  let entry = Func.add_block main in
  let pool, mut, ones, gslots, aslots =
    build_pools g main entry ~globals:prog.Prog.globals
  in
  let c =
    { g; fn = main; pool; mut; ones; gslots; aslots; callees = [];
      calls_ok = true }
  in
  emit_instrs c entry (1 + R.rand_int r 4);
  let cur = ref entry in
  let regions = R.rand_int r 2 in
  for _ = 1 to regions do
    cur :=
      match R.rand_int r 3 with
      | 0 -> region_straight c !cur
      | 1 -> region_diamond c !cur
      | _ -> region_loop c !cur
  done;
  let fr = Func.fresh_reg main Types.i64 in
  let d = Func.fresh_reg main Types.i64 in
  (!cur).Func.instrs <-
    (!cur).Func.instrs
    @ [
        Instr.Const (fr, Value.of_int Types.I64 fuel0);
        Instr.Call (Some d, "r0", [ fr; use c Types.i64 ]);
        Instr.Call (None, "print_i64", [ d ]);
      ];
  (!cur).Func.term <- Instr.Ret (Some d);
  Verify.program prog;
  prog

(* -- KPN node kernels -------------------------------------------------- *)

(** Fill a pure KPN node body: no globals, no calls, no prints — the
    function is observationally a pure [i64^arity -> i64], so firing it
    from any engine in any scheduling order yields identical streams. *)
let fill_node g (fn : Func.t) =
  let entry = Func.add_block fn in
  let pool, mut, ones, gslots, aslots =
    build_pools g fn entry ~globals:[]
  in
  let c =
    { g; fn; pool; mut; ones; gslots; aslots; callees = []; calls_ok = false }
  in
  emit_instrs c entry (1 + R.rand_int g.r 4);
  let cur = ref entry in
  let regions = 1 + R.rand_int g.r 2 in
  for _ = 1 to regions do
    cur :=
      match R.rand_int g.r 3 with
      | 0 -> region_straight c !cur
      | 1 -> region_diamond c !cur
      | _ -> region_loop c !cur
  done;
  (!cur).Func.term <- Instr.Ret (Some (use c Types.i64))

(** [node_program ~seed ~count] — a verified, global-free program of
    [count] pure kernel functions [n0 .. n{count-1}], each taking 1–3
    i64 arguments and returning i64.  Returns the program and the
    [(name, arity)] pool for the network generator to draw node bodies
    from. *)
let node_program ~(seed : int) ~(count : int) : Prog.t * (string * int) list =
  let r = R.rng seed in
  let prog = Prog.create (Printf.sprintf "kpn%d" seed) in
  let g0 = { r; prog; scalars = []; vecs = [] } in
  let g = { g0 with scalars = [ Types.I32; Types.I64 ] } in
  let sigs =
    List.init count (fun i ->
        let arity = 1 + R.rand_int r 3 in
        (Printf.sprintf "n%d" i, arity))
  in
  List.iter
    (fun (name, arity) ->
      let params = List.init arity (fun _ -> Types.i64) in
      let fn = Func.create ~name ~params ~ret:(Some Types.i64) in
      Prog.add_func prog fn;
      fill_node g fn)
    sigs;
  Verify.program prog;
  (prog, sigs)
