(** Feature map for coverage-guided seed scheduling.

    A feature is any cheap observation about a generated input or its
    execution — a structural property of a process network, an executed
    basic block from a {!Pvvm.Profile} — hashed down to an integer id.
    The fuzz driver keeps one global map per campaign; an input that
    lights up at least one previously unseen feature is "interesting"
    and earns a place in the seed corpus, so mutation concentrates on
    the frontier of behaviors instead of resampling the same ones.

    Hashing uses OCaml's structural hash on the string parts, which is
    deterministic for a given runtime — campaigns replay exactly from
    their seed. *)

type t = {
  seen : (int, unit) Hashtbl.t;
  mutable observations : int;  (** total features noted, duplicates included *)
}

let create () = { seen = Hashtbl.create 256; observations = 0 }

(** Hash a feature description (e.g. [["blk"; "n3"; "2"]]) to its id. *)
let feature (parts : string list) : int = Hashtbl.hash parts

(** Note one feature; [true] iff it was new. *)
let note t fid =
  t.observations <- t.observations + 1;
  if Hashtbl.mem t.seen fid then false
  else begin
    Hashtbl.replace t.seen fid ();
    true
  end

(** Note a batch; returns how many were new. *)
let note_all t fids =
  List.fold_left (fun acc f -> if note t f then acc + 1 else acc) 0 fids

(** Distinct features seen so far. *)
let count t = Hashtbl.length t.seen
