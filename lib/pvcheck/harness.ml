(** Fuzzing harness: generate → differential oracle → per-pass
    equivalence → (optionally) shrink.

    Case [i] of a run seeded with [seed] draws its generator seed from
    one splitmix64 stream, so any failing case is replayable from
    [(seed, i)] alone — and [replay_seed] exposes the mapping so a CLI or
    a CI log can print the exact one-case reproduction command. *)

open Pvir
module R = Pvinject.Inject

(** One confirmed disagreement.  [prog] is the generated program as it
    failed; [shrunk] is its reduction when shrinking was requested. *)
type finding = {
  case : int;  (** case index within the run *)
  gen_seed : int;  (** exact generator seed: replays without the run *)
  stage : string;  (** oracle path or pass stage that disagreed *)
  what : string;
  detail : string;
  prog : Prog.t;
  shrunk : Prog.t option;
}

(** Generator seed of case [case] of a run seeded with [seed]. *)
let replay_seed ~seed ~case =
  let r = R.rng seed in
  let s = ref 0 in
  for _ = 0 to case do
    s := Int64.to_int (Int64.logand (R.next_int64 r) 0x3FFFFFFFFFFFFFFFL)
  done;
  !s

(** Every failure of one case, as (stage, what, detail) triples. *)
let check_case ?(paths = Oracle.all_paths) ?(passes = Passcheck.all_passes)
    ?jit (prog : Prog.t) : (string * string * string) list =
  let oracle =
    List.map
      (fun (m : Oracle.mismatch) -> (m.Oracle.path, m.Oracle.what, m.Oracle.detail))
      (Oracle.check ~paths prog)
  in
  let pass_fs =
    if passes = [] then []
    else
      List.map
        (fun (f : Passcheck.failure) ->
          (f.Passcheck.stage, f.Passcheck.what, f.Passcheck.detail))
        (Passcheck.check ~passes ?jit prog)
  in
  oracle @ pass_fs

let prefix ~pre s =
  String.length s >= String.length pre
  && String.equal (String.sub s 0 (String.length pre)) pre

let strip_suffix ~suf s =
  if
    String.length s > String.length suf
    && String.equal (String.sub s (String.length s - String.length suf) (String.length suf)) suf
  then String.sub s 0 (String.length s - String.length suf)
  else s

(** The cheapest configuration that can still reproduce a failure at
    [stage]: one oracle path, or one pass in isolation, or the pipeline
    prefix up to the failing pass.  The predicate runs many times per
    shrink, so this narrowing is what makes shrinking fast. *)
let narrow_for_stage ~passes ~stage =
  if Oracle.path_known stage then ([ stage ], [], false)
  else if Oracle.path_known (strip_suffix ~suf:"-tw" stage) then
    ([ strip_suffix ~suf:"-tw" stage ], [], false)
  else if prefix ~pre:"pipeline:" stage then
    let pname = String.sub stage 9 (String.length stage - 9) in
    if pname = "jit-uchost" then ([], passes, true)
    else
      (* keep the pipeline prefix: a failure at pass N can depend on the
         state passes 1..N-1 left behind *)
      let rec take = function
        | [] -> []
        | (p : Passcheck.pass) :: tl ->
          if p.Passcheck.pname = pname then [ p ] else p :: take tl
      in
      ([], take passes, false)
  else
    ( [],
      List.filter (fun (p : Passcheck.pass) -> p.Passcheck.pname = stage) passes,
      false )

(** Shrink [prog] while it keeps failing with the same [stage]/[what]
    signature (the detail may drift as the program shrinks). *)
let shrink_finding ?budget ~passes ~stage ~what (prog : Prog.t) : Prog.t =
  let paths, passes, jit = narrow_for_stage ~passes ~stage in
  let pred q =
    List.exists
      (fun (s, w, _) -> s = stage && w = what)
      (check_case ~paths ~passes ~jit q)
  in
  if pred prog then Shrink.run ?budget ~pred prog else prog

type progress = Case_ok of int | Case_failed of finding

(** [run ~seed ~count] — fuzz [count] cases.  Stops at [max_findings]
    (default 1: the first failure is the actionable one).  [on_progress]
    sees every case, for CLI reporting.  [gen] swaps the program shape —
    e.g. {!Gen.program_recursive} — without touching the campaign
    plumbing; the default is the classic DAG-call generator. *)
let run ?(paths = Oracle.all_paths) ?(passes = Passcheck.all_passes)
    ?(gen = fun ~seed -> Gen.program ~seed) ?(shrink = false) ?shrink_budget
    ?(max_findings = 1)
    ?(on_progress = fun (_ : progress) -> ()) ~seed ~count () : finding list =
  let r = R.rng seed in
  let findings = ref [] in
  let case = ref 0 in
  while !case < count && List.length !findings < max_findings do
    let gen_seed =
      Int64.to_int (Int64.logand (R.next_int64 r) 0x3FFFFFFFFFFFFFFFL)
    in
    let prog = gen ~seed:gen_seed in
    (match check_case ~paths ~passes prog with
    | [] -> on_progress (Case_ok !case)
    | (stage, what, detail) :: _ ->
      let shrunk =
        if shrink then
          Some (shrink_finding ?budget:shrink_budget ~passes ~stage ~what prog)
        else None
      in
      let f =
        { case = !case; gen_seed; stage; what; detail; prog; shrunk }
      in
      findings := !findings @ [ f ];
      on_progress (Case_failed f));
    incr case
  done;
  !findings
