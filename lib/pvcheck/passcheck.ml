(** Per-pass observational-equivalence driver.

    Every pvopt pass must be a semantic no-op: applied to a copy of a
    program, the copy must still verify and must produce the reference
    observation (result, output, globals).  This module checks each pass
    in isolation and then cumulatively in pipeline order, and finally the
    whole pipeline output through the spill-heaviest JIT target — the
    closest thing to the paper's shipped artifact.

    The pass list is a parameter so a harness (or a test) can inject a
    deliberately broken pass and watch the driver catch it. *)

open Pvir

type pass = { pname : string; papply : Prog.t -> unit }

let per_func f (p : Prog.t) = List.iter (fun fn -> ignore (f fn)) p.Prog.funcs

let all_passes : pass list =
  [
    { pname = "constfold"; papply = per_func (Pvopt.Constfold.run ?account:None) };
    { pname = "copyprop"; papply = per_func (Pvopt.Copyprop.run ?account:None) };
    { pname = "cse"; papply = per_func (Pvopt.Cse.run ?account:None) };
    { pname = "dce"; papply = per_func (Pvopt.Dce.run ?account:None) };
    { pname = "ifconv"; papply = per_func (Pvopt.Ifconv.run ?account:None) };
    { pname = "idiom"; papply = per_func (Pvopt.Idiom.run ?account:None) };
    { pname = "licm"; papply = per_func (Pvopt.Licm.run ?account:None) };
    { pname = "simplify_cfg"; papply = per_func (Pvopt.Simplify_cfg.run ?account:None) };
    { pname = "strength"; papply = per_func (Pvopt.Strength.run ?account:None) };
    {
      pname = "unroll";
      papply = (fun p -> per_func (fun fn -> Pvopt.Unroll.run ~factor:2 p fn) p);
    };
    { pname = "inline"; papply = (fun p -> ignore (Pvopt.Inline.run p)) };
    { pname = "vectorize"; papply = (fun p -> ignore (Pvopt.Vectorize.run p)) };
  ]

let pass_known name = List.exists (fun p -> p.pname = name) all_passes

let find_passes names =
  List.map
    (fun n ->
      match List.find_opt (fun p -> p.pname = n) all_passes with
      | Some p -> p
      | None -> invalid_arg (Printf.sprintf "Passcheck.find_passes: unknown pass %s" n))
    names

(** One equivalence failure: which application of which pass, and how the
    observation diverged (or how the verifier complained). *)
type failure = { stage : string; what : string; detail : string }

let reference (prog : Prog.t) : Oracle.obs =
  (Oracle.run_interp prog Pvvm.Interp.Tree_walk).Oracle.iobs

(* A pass application can itself raise (a pass crash is as much a bug as
   a miscompile); fold that into a failure rather than killing the run. *)
let apply_stage ~stage (pass : pass) (q : Prog.t) : failure option =
  match pass.papply q with
  | () -> None
  | exception e ->
    Some { stage; what = "exception"; detail = Printexc.to_string e }

let check_stage ~stage (ref_obs : Oracle.obs) (q : Prog.t) : failure list =
  match Verify.program_result q with
  | Error m -> [ { stage; what = "verify"; detail = m } ]
  | Ok () ->
    let obs = reference q in
    List.map
      (fun (m : Oracle.mismatch) ->
        { stage; what = m.Oracle.what; detail = m.Oracle.detail })
      (Oracle.compare_obs ~path:stage ref_obs obs)

(** [check ?passes prog] — each pass in isolation on a fresh copy, then
    the same list cumulatively (pipeline order), then (unless [jit] is
    false) the pipelined program compiled for the most register-starved
    target. *)
let check ?(passes = all_passes) ?(jit = true) (prog : Prog.t) : failure list =
  let ref_obs = reference prog in
  let failures = ref [] in
  let add fs = failures := !failures @ fs in
  (* isolation *)
  List.iter
    (fun pass ->
      let q = Prog.copy prog in
      let stage = pass.pname in
      match apply_stage ~stage pass q with
      | Some f -> add [ f ]
      | None -> add (check_stage ~stage ref_obs q))
    passes;
  (* pipeline order: keep folding passes into one copy, checking after
     every step so the first broken stage is named, not the last *)
  let q = Prog.copy prog in
  List.iter
    (fun pass ->
      let stage = "pipeline:" ^ pass.pname in
      match apply_stage ~stage pass q with
      | Some f -> add [ f ]
      | None -> add (check_stage ~stage ref_obs q))
    passes;
  (* the fully optimized program must also survive the split JIT on the
     spill-heaviest machine *)
  (if jit && Verify.program_result q = Ok () then
     let jr =
       Oracle.run_jit q Pvmach.Machine.uchost Pvjit.Jit.Hints_recompute
         Pvvm.Sim.Threaded
     in
     add
       (List.map
          (fun (m : Oracle.mismatch) ->
            { stage = "pipeline:jit-uchost"; what = m.Oracle.what; detail = m.Oracle.detail })
          (Oracle.compare_obs ~path:"pipeline:jit-uchost" ref_obs jr.Oracle.jobs)));
  !failures
