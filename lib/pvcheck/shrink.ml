(** Greedy reducer for failing programs.

    Given a predicate that holds on a failing program (e.g. "the oracle
    still reports a mismatch of this kind"), repeatedly try structural
    simplifications — drop whole functions, sever branch edges, drop
    blocks, drop instruction runs, narrow constants, drop globals — and
    keep any candidate that still {e verifies} and still satisfies the
    predicate.  Every accepted candidate restarts the scan, so the result
    is a local minimum: no single remaining simplification preserves the
    failure.

    The predicate typically re-runs several engines, so evaluations are
    the cost unit: [budget] caps them and the reducer returns the best
    program found when it runs out. *)

open Pvir

(** Instruction count, terminators excluded — the "size" a reproducer is
    judged by. *)
let size (p : Prog.t) : int =
  List.fold_left
    (fun acc (fn : Func.t) ->
      List.fold_left
        (fun a (b : Func.block) -> a + List.length b.instrs)
        acc fn.Func.blocks)
    0 p.Prog.funcs

(* -- candidate constructors ------------------------------------------ *)

let with_func (p : Prog.t) name (tf : Func.t -> unit) : Prog.t =
  let q = Prog.copy p in
  (match Prog.find_func q name with Some fn -> tf fn | None -> ());
  q

let drop_func (p : Prog.t) name : Prog.t =
  let q = Prog.copy p in
  q.Prog.funcs <- List.filter (fun (f : Func.t) -> f.Func.name <> name) q.Prog.funcs;
  q

let drop_global (p : Prog.t) name : Prog.t =
  let q = Prog.copy p in
  q.Prog.globals <-
    List.filter (fun (g : Prog.global) -> g.Prog.gname <> name) q.Prog.globals;
  q

let drop_block fname label p =
  with_func p fname (fun fn ->
      fn.Func.blocks <-
        List.filter (fun (b : Func.block) -> b.Func.label <> label) fn.Func.blocks)

(** Replace a conditional branch by one of its arms: severing edges first
    is what makes whole blocks droppable afterwards. *)
let sever fname label keep_first p =
  with_func p fname (fun fn ->
      List.iter
        (fun (b : Func.block) ->
          if b.Func.label = label then
            match b.Func.term with
            | Instr.Cbr (_, l1, l2) ->
              b.Func.term <- Instr.Br (if keep_first then l1 else l2)
            | _ -> ())
        fn.Func.blocks)

(** Drop [len] instructions of a block starting at [start]. *)
let drop_range fname label start len p =
  with_func p fname (fun fn ->
      List.iter
        (fun (b : Func.block) ->
          if b.Func.label = label then
            b.Func.instrs <-
              List.filteri (fun i _ -> i < start || i >= start + len) b.Func.instrs)
        fn.Func.blocks)

let replace_instr fname label idx ni p =
  with_func p fname (fun fn ->
      List.iter
        (fun (b : Func.block) ->
          if b.Func.label = label then
            b.Func.instrs <-
              List.mapi (fun i old -> if i = idx then ni else old) b.Func.instrs)
        fn.Func.blocks)

(* -- candidate enumeration ------------------------------------------- *)

let narrowings (v : Value.t) : Value.t list =
  match v with
  | Value.Int (s, x) when x <> 0L && x <> 1L ->
    [ Value.int s 0L; Value.int s 1L; Value.int s (Int64.shift_right x 1) ]
  | Value.Float (s, x) when x <> 0.0 && x <> 1.0 ->
    [ Value.float s 0.0; Value.float s 1.0 ]
  | _ -> []

(** All single-step simplifications of [p], most aggressive first, as
    thunks so rejected candidates cost nothing to the ones behind them. *)
let candidate_thunks (p : Prog.t) : (unit -> Prog.t) list =
  let thunks = ref [] in
  let add t = thunks := t :: !thunks in
  (* globals last (cheapest wins, but rarely load-bearing) *)
  List.iter
    (fun (g : Prog.global) -> add (fun () -> drop_global p g.Prog.gname))
    p.Prog.globals;
  (* per-instruction constant narrowing *)
  List.iter
    (fun (fn : Func.t) ->
      List.iter
        (fun (b : Func.block) ->
          List.iteri
            (fun i instr ->
              match instr with
              | Instr.Const (d, v) ->
                List.iter
                  (fun v' ->
                    add (fun () ->
                        replace_instr fn.Func.name b.Func.label i
                          (Instr.Const (d, v')) p))
                  (narrowings v)
              | _ -> ())
            b.Func.instrs)
        fn.Func.blocks)
    p.Prog.funcs;
  (* single instructions, then halves (reversed below => halves first) *)
  List.iter
    (fun (fn : Func.t) ->
      List.iter
        (fun (b : Func.block) ->
          let n = List.length b.Func.instrs in
          List.iteri
            (fun i _ -> add (fun () -> drop_range fn.Func.name b.Func.label i 1 p))
            b.Func.instrs;
          if n >= 4 then begin
            add (fun () -> drop_range fn.Func.name b.Func.label 0 (n / 2) p);
            add (fun () -> drop_range fn.Func.name b.Func.label (n / 2) (n - (n / 2)) p)
          end)
        fn.Func.blocks)
    p.Prog.funcs;
  (* sever edges, drop non-entry blocks *)
  List.iter
    (fun (fn : Func.t) ->
      List.iter
        (fun (b : Func.block) ->
          match b.Func.term with
          | Instr.Cbr _ ->
            add (fun () -> sever fn.Func.name b.Func.label false p);
            add (fun () -> sever fn.Func.name b.Func.label true p)
          | _ -> ())
        fn.Func.blocks;
      match fn.Func.blocks with
      | _entry :: rest ->
        List.iter
          (fun (b : Func.block) ->
            add (fun () -> drop_block fn.Func.name b.Func.label p))
          rest
      | [] -> ())
    p.Prog.funcs;
  (* whole functions first of all *)
  List.iter
    (fun (fn : Func.t) ->
      if fn.Func.name <> "main" then add (fun () -> drop_func p fn.Func.name))
    p.Prog.funcs;
  !thunks

(* -- the greedy loop -------------------------------------------------- *)

(** [run ~pred p] — a locally minimal program still verifying and still
    satisfying [pred].  [pred] must hold on [p] itself. *)
let run ?(budget = 4000) ~(pred : Prog.t -> bool) (p : Prog.t) : Prog.t =
  let left = ref budget in
  let ok q =
    (* verification is the cheap filter; only then pay for the engines *)
    match Verify.program_result q with
    | Error _ -> false
    | Ok () ->
      if !left <= 0 then false
      else begin
        decr left;
        pred q
      end
  in
  let rec improve p =
    if !left <= 0 then p
    else
      match
        List.find_map
          (fun th ->
            let q = th () in
            if ok q then Some q else None)
          (candidate_thunks p)
      with
      | Some q -> improve q
      | None -> p
  in
  improve p

(** Render a reproducer in the parseable textual syntax. *)
let to_pvir (p : Prog.t) : string = Pp.program_to_string p
