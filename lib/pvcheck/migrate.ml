(** Migration oracle: kill an accelerator at a random safepoint and
    prove the migrated run indistinguishable from the unmigrated one.

    One scenario is [(program, kill point, source engine, target
    engine)], the kill drawn by {!Pvinject.Inject.gen_kill} from the
    reference run's retired-instruction count.  The contract checked:

    - the source engine, armed at the kill point, either completes first
      (observation- and accounting-identical to the reference) or
      deposits a snapshot at the next safepoint;
    - that snapshot survives an encode/decode round-trip byte-for-byte
      (it crosses the migration channel as untrusted bytes);
    - the target engine armed at the same point captures the {e same
      bytes} — safepoint state is engine-neutral;
    - restoring the snapshot into a fresh VM under the target engine and
      resuming yields the reference observation — result, output,
      globals — and, except under fuel exhaustion (where block-batched
      charging makes trap-time counters engine-specific, DESIGN.md
      section 10), bit-identical cycle/instruction/call accounting.

    Any violation is reported as an {!Oracle.mismatch} whose path names
    the engine pair, e.g. [migrate-th->aot]. *)

open Pvir
module R = Pvinject.Inject

let engines =
  [| Pvvm.Interp.Tree_walk; Pvvm.Interp.Threaded; Pvvm.Interp.Aot |]

let engine_name = function
  | Pvvm.Interp.Tree_walk -> "tw"
  | Pvvm.Interp.Threaded -> "th"
  | Pvvm.Interp.Aot -> "aot"

(* one armed run: completed (or trapped) before the kill point fired, or
   checkpointed at the first safepoint at/past it *)
type armed =
  | Ran of Oracle.obs * int64 * int64 * int  (** obs, cycles, instrs, calls *)
  | Snapped of Ckpt.t

let observe (it : Pvvm.Interp.t) outcome : Oracle.obs =
  {
    Oracle.outcome;
    output = Pvvm.Interp.output it;
    globals = Oracle.read_globals it.Pvvm.Interp.img;
  }

let ran (it : Pvvm.Interp.t) outcome =
  let st = it.Pvvm.Interp.stats in
  Ran
    ( observe it outcome,
      st.Pvvm.Interp.cycles,
      st.Pvvm.Interp.instrs,
      st.Pvvm.Interp.calls )

let armed_run (prog : Prog.t) (engine : Pvvm.Interp.engine) ~at : armed =
  let img = Pvvm.Image.load (Prog.copy prog) in
  let it = Pvvm.Interp.create ~fuel:Oracle.fuel ~engine img in
  match Pvvm.Snapshot.run_until it "main" [] ~at with
  | Pvvm.Snapshot.Completed v -> ran it (Oracle.Finished v)
  | Pvvm.Snapshot.Checkpointed s -> Snapped s
  | exception Pvvm.Interp.Trap m -> ran it (Oracle.Trapped m)

let is_fuel_outcome = function
  | Oracle.Trapped m -> String.equal m Pvvm.Interp.fuel_exhausted_msg
  | Oracle.Finished _ -> false

(** Check one explicit scenario against an already-taken reference run.
    Exposed so a harness can sweep kill points exhaustively; most
    callers want {!check}. *)
let check_scenario (prog : Prog.t) (reference : Oracle.interp_run)
    (k : R.kill_scenario) : Oracle.mismatch list =
  let src = engines.(k.R.kill_src) and dst = engines.(k.R.kill_dst) in
  if src = Pvvm.Interp.Aot || dst = Pvvm.Interp.Aot then Pvaot.install ();
  let path =
    Printf.sprintf "migrate-%s->%s" (engine_name src) (engine_name dst)
  in
  let ms = ref [] in
  let add what detail = ms := !ms @ [ { Oracle.path; what; detail } ] in
  let check_accounting tag cycles instrs calls =
    if not (is_fuel_outcome reference.Oracle.iobs.Oracle.outcome) then
      if
        reference.Oracle.icycles <> cycles
        || reference.Oracle.iinstrs <> instrs
        || reference.Oracle.icalls <> calls
      then
        add "accounting"
          (Printf.sprintf
             "%s: reference %Ld cycles/%Ld instrs/%d calls vs %Ld/%Ld/%d" tag
             reference.Oracle.icycles reference.Oracle.iinstrs
             reference.Oracle.icalls cycles instrs calls)
  in
  (match armed_run prog src ~at:k.R.kill_at with
  | Ran (obs, cycles, instrs, calls) ->
    (* completion beat the kill point: the armed run must be the
       reference run, full stop *)
    ms :=
      !ms
      @ Oracle.compare_obs ~path:(path ^ "/uninterrupted")
          reference.Oracle.iobs obs;
    check_accounting "uninterrupted" cycles instrs calls
  | Snapped snap ->
    let bytes = Ckpt.encode snap in
    (* the snapshot crosses the migration channel as bytes: it must
       round-trip exactly *)
    (match Ckpt.decode_result bytes with
    | Error c ->
      add "codec" ("own snapshot rejected: " ^ Serial.corruption_to_string c)
    | Ok snap' ->
      if not (String.equal (Ckpt.encode snap') bytes) then
        add "codec" "decode/re-encode changed the snapshot bytes");
    (* safepoint state is engine-neutral: the target engine armed at the
       same threshold captures byte-identical state *)
    (if src <> dst then
       match armed_run prog dst ~at:k.R.kill_at with
       | Snapped snap_dst ->
         if not (String.equal bytes (Ckpt.encode snap_dst)) then
           add "snapshot-identity"
             (Printf.sprintf
                "engines %s and %s captured different snapshots at instr %Ld"
                (engine_name src) (engine_name dst) k.R.kill_at)
       | Ran _ ->
         add "snapshot-identity"
           (Printf.sprintf
              "engine %s completed where %s checkpointed (instr %Ld)"
              (engine_name dst) (engine_name src) k.R.kill_at));
    (* restore on the survivor and run to the end *)
    let t2 = Pvvm.Snapshot.interp_for ~engine:dst (Prog.copy prog) snap in
    (match
       match Pvvm.Snapshot.resume t2 snap with
       | v -> Ok (Oracle.Finished v)
       | exception Pvvm.Interp.Trap m -> Ok (Oracle.Trapped m)
       | exception Pvvm.Snapshot.Invalid m -> Error m
     with
    | Error m -> add "restore" ("own snapshot failed validation: " ^ m)
    | Ok outcome ->
      ms :=
        !ms @ Oracle.compare_obs ~path reference.Oracle.iobs (observe t2 outcome);
      let st = t2.Pvvm.Interp.stats in
      check_accounting "migrated" st.Pvvm.Interp.cycles st.Pvvm.Interp.instrs
        st.Pvvm.Interp.calls));
  !ms

(** [check ~kill_seed prog] — reference run, one seeded kill scenario,
    full contract.  Programs whose reference run retires no instructions
    have no safepoint to kill at and pass vacuously. *)
let check ~kill_seed (prog : Prog.t) : Oracle.mismatch list =
  let reference = Oracle.run_interp prog Pvvm.Interp.Tree_walk in
  let total = Int64.to_int reference.Oracle.iinstrs in
  if total < 1 then []
  else
    let r = R.rng kill_seed in
    let k = R.gen_kill r ~total ~n_engines:(Array.length engines) in
    check_scenario prog reference k

(** Fuzz campaign over generated programs: case [i] of a run seeded with
    [seed] draws a generator seed and a kill seed from one splitmix64
    stream, so any failure replays from [(seed, i)] alone.  Findings
    reuse {!Harness.finding} so reporting and reproducer dumping are
    shared with the differential fuzzer. *)
let campaign ?(shrink = false) ?shrink_budget ?(max_findings = 1)
    ?(on_progress = fun (_ : Harness.progress) -> ()) ~seed ~count () :
    Harness.finding list =
  let r = R.rng seed in
  let findings = ref [] in
  let case = ref 0 in
  while !case < count && List.length !findings < max_findings do
    let draw () =
      Int64.to_int (Int64.logand (R.next_int64 r) 0x3FFFFFFFFFFFFFFFL)
    in
    let gen_seed = draw () in
    let kill_seed = draw () in
    let prog = Gen.program ~seed:gen_seed in
    (match check ~kill_seed prog with
    | [] -> on_progress (Harness.Case_ok !case)
    | (m : Oracle.mismatch) :: _ ->
      let shrunk =
        if shrink then
          let pred q =
            List.exists
              (fun (m' : Oracle.mismatch) ->
                String.equal m'.Oracle.path m.Oracle.path
                && String.equal m'.Oracle.what m.Oracle.what)
              (check ~kill_seed q)
          in
          if pred prog then Some (Shrink.run ?budget:shrink_budget ~pred prog)
          else None
        else None
      in
      let f =
        {
          Harness.case = !case;
          gen_seed;
          stage = m.Oracle.path;
          what = m.Oracle.what;
          detail = m.Oracle.detail;
          prog;
          shrunk;
        }
      in
      findings := !findings @ [ f ];
      on_progress (Harness.Case_failed f));
    incr case
  done;
  !findings
